// Reproduces paper Table 5: Tesla K20 and Tegra K1 GPUs running SLIC versus
// the S-SLIC accelerator, including the 28nm -> 16nm process normalization
// and the headline efficiency ratios (>500x vs K20, >250x vs TK1).
//
// GPU raw cells are the paper's published measurements (we cannot run CUDA
// on K20/TK1 silicon here; see DESIGN.md §1). All derived cells are
// recomputed.
#include <iostream>

#include "bench_common.h"
#include "hw/accelerator_model.h"
#include "hw/gpu_reference.h"

int main(int argc, char** argv) {
  using namespace sslic;
  using namespace sslic::hw;
  bench::BenchConfig config = bench::BenchConfig::parse(argc, argv);
  config.width = 1920;
  config.height = 1080;
  config.superpixels = 5000;
  bench::banner("Table 5 — GPU vs S-SLIC accelerator (model + published GPU cells)",
                config);

  const GpuReference k20 = tesla_k20();
  const GpuReference tk1 = tegra_k1();
  const FrameReport acc = AcceleratorModel(AcceleratorDesign{}).evaluate();

  Table table("Platform comparison, 1920x1080, K = 5000");
  table.set_header({"", "Tesla K20", "TK1", "This work (model)"});
  table.add_row({"Algorithm", k20.algorithm, tk1.algorithm, "S-SLIC"});
  table.add_row({"Technology", "28nm (0.81V)", "28nm (0.81V)", "16nm (0.72V)"});
  table.add_row({"On-chip memory", Table::num(k20.onchip_memory_kb, 0) + "kB",
                 Table::num(tk1.onchip_memory_kb, 0) + "kB",
                 Table::num(acc.onchip_storage_bytes / 1024.0, 0) + "kB"});
  table.add_row({"Core count", std::to_string(k20.core_count),
                 std::to_string(tk1.core_count), "1"});
  table.add_row({"Average power", Table::num(k20.average_power_w, 0) + "W",
                 Table::num(tk1.average_power_w * 1e3, 0) + "mW",
                 Table::num(acc.average_power_w * 1e3, 0) + "mW"});
  table.add_row({"Power (normalized to 16nm)",
                 Table::num(normalized_power_w(k20), 0) + "W",
                 Table::num(normalized_power_w(tk1) * 1e3, 0) + "mW",
                 Table::num(acc.average_power_w * 1e3, 0) + "mW"});
  table.add_row({"Latency", Table::num(k20.latency_ms, 1) + "ms",
                 Table::num(tk1.latency_ms, 0) + "ms",
                 Table::num(acc.total_s * 1e3, 1) + "ms"});
  table.add_row({"Energy/frame (normalized)",
                 Table::num(normalized_energy_per_frame_j(k20) * 1e3, 0) + "mJ",
                 Table::num(normalized_energy_per_frame_j(tk1) * 1e3, 0) + "mJ",
                 Table::num(acc.energy_per_frame_j * 1e3, 1) + "mJ"});
  table.add_note("paper cells: K20 86W/22.3ms -> 39W, 867mJ; TK1 "
                 "332mW/2713ms -> 150mW, 407mJ; accelerator 49mW/32.8ms, "
                 "1.6mJ, 20kB on-chip.");
  table.add_note("normalization 28nm->16nm: x1.25 (voltage^2) * x1.75 "
                 "(capacitance) = /2.1875 (paper rounds to 2.2).");
  std::cout << table;

  const double vs_k20 = normalized_energy_per_frame_j(k20) / acc.energy_per_frame_j;
  const double vs_tk1 = normalized_energy_per_frame_j(tk1) / acc.energy_per_frame_j;
  std::cout << "\nheadline efficiency ratios (paper: >500x vs K20, >250x vs TK1):\n"
            << "  vs Tesla K20: " << Table::num(vs_k20, 0) << "x\n"
            << "  vs Tegra K1:  " << Table::num(vs_tk1, 0) << "x\n"
            << "real-time:      " << (acc.real_time() ? "yes" : "NO") << " ("
            << Table::num(acc.fps, 1) << " fps; requirement 30 fps)\n"
            << "TK1 misses real-time by "
            << Table::num(tk1.latency_ms / 33.3, 0)
            << "x (paper: a factor of ~80)\n";
  return 0;
}

// Temporal superpixel segmentation for video streams — the deployment
// scenario that motivates the accelerator (paper Section 1: real-time
// mobile vision at 30 fps).
//
// Consecutive video frames are nearly identical, so the cluster centers of
// frame t are an excellent initialization for frame t+1: the k-means-style
// iteration starts near its fixed point and needs far fewer subset
// iterations to converge. This wrapper manages that state and falls back
// to cold (grid) initialization on the first frame, on a resolution/K
// change, or after reset() (e.g. at a scene cut).
//
// All per-frame working memory (Lab conversion buffer, segmentation
// output, iteration scratch) lives in the wrapper, so a steady-state
// stream — same resolution and K from frame 2 on — runs with zero heap
// allocations per frame (asserted by tests/test_fused.cpp).
#pragma once

#include <vector>

#include "slic/subsampled.h"

namespace sslic {

/// Stateful frame-to-frame S-SLIC segmenter with warm starting.
class TemporalSlic {
 public:
  /// `warm_iterations` is the (smaller) iteration budget used when warm
  /// state is available; 0 picks half the cold budget (at least one full
  /// round-robin of the subsets).
  explicit TemporalSlic(SlicParams params,
                        DataWidth data_width = DataWidth::float64(),
                        int warm_iterations = 0);

  /// Segments the next frame of the stream. The returned reference points
  /// at internal state that stays valid until the next call (or
  /// destruction); copy it if you need it longer.
  [[nodiscard]] const Segmentation& next_frame(
      const RgbImage& frame, Instrumentation* instrumentation = nullptr,
      PhaseTimer* phases = nullptr);

  /// Drops the warm state (call at scene cuts).
  void reset() { previous_centers_.clear(); }

  /// True when the next frame will be warm-started.
  [[nodiscard]] bool has_state() const { return !previous_centers_.empty(); }

  [[nodiscard]] const SlicParams& params() const { return params_; }
  [[nodiscard]] int warm_iterations() const { return warm_iterations_; }

 private:
  SlicParams params_;
  DataWidth data_width_;
  int warm_iterations_;
  int state_width_ = 0;
  int state_height_ = 0;
  std::vector<ClusterCenter> previous_centers_;
  // Per-frame buffers, reused across calls.
  LabImage lab_;
  Segmentation result_;
  IterationScratch scratch_;
};

}  // namespace sslic

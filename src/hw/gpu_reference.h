// Published GPU baseline measurements (paper Table 5) and the process-
// normalization arithmetic of Section 7.
//
// These are the only numbers in the repository taken directly from the
// paper rather than produced by our own code: we cannot execute CUDA on
// Tesla K20 / Tegra K1 silicon in this environment (see DESIGN.md §1).
// Every *derived* Table-5 cell (normalized power, energy per frame,
// efficiency ratios) is recomputed from these raw cells.
#pragma once

#include <string>

namespace sslic::hw {

/// Raw measured cells for one GPU platform (paper Table 5).
struct GpuReference {
  std::string name;
  std::string algorithm;
  int technology_nm = 28;
  double voltage_v = 0.81;
  double onchip_memory_kb = 0.0;
  int core_count = 0;
  double average_power_w = 0.0;  ///< measured at 28 nm
  double latency_ms = 0.0;       ///< 1920x1080, K = 5000
};

/// Tesla K20 (server-class GPU) running SLIC.
GpuReference tesla_k20();

/// Tegra K1 (mobile SoC GPU) running SLIC.
GpuReference tegra_k1();

/// Process normalization 28 nm -> 16 nm (paper Section 7): multiplicative
/// factors of 1.25 for voltage^2 and 1.75 for capacitance, 2.1875 total;
/// the paper rounds the product to 2.2.
inline constexpr double kVoltageFactor = 1.25;
inline constexpr double kCapacitanceFactor = 1.75;
inline constexpr double kProcessNormalization = kVoltageFactor * kCapacitanceFactor;

/// Power the GPU would draw in a 16 nm process (divide by the factor).
double normalized_power_w(const GpuReference& gpu);

/// Energy per frame at the normalized power, joules.
double normalized_energy_per_frame_j(const GpuReference& gpu);

}  // namespace sslic::hw

#include "hw/dram_model.h"

namespace sslic::hw {

const DramModel& default_dram_model() {
  static const DramModel model{};
  return model;
}

}  // namespace sslic::hw

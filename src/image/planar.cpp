#include "image/planar.h"

#include "common/thread_pool.h"

namespace sslic {

LabPlanes split_lab_planes(const LabImage& lab) {
  LabPlanes planes;
  split_lab_planes(lab, planes);
  return planes;
}

void split_lab_planes(const LabImage& lab, LabPlanes& planes) {
  const int w = lab.width();
  const int h = lab.height();
  if (planes.width() != w || planes.height() != h) planes = LabPlanes(w, h);
  const LabF* src = lab.data();
  float* dl = planes.L.data();
  float* da = planes.a.data();
  float* db = planes.b.data();
  parallel_for(0, h, [&](std::int64_t ylo, std::int64_t yhi) {
    const std::size_t begin =
        static_cast<std::size_t>(ylo) * static_cast<std::size_t>(w);
    const std::size_t end =
        static_cast<std::size_t>(yhi) * static_cast<std::size_t>(w);
    for (std::size_t i = begin; i < end; ++i) {
      dl[i] = src[i].L;
      da[i] = src[i].a;
      db[i] = src[i].b;
    }
  });
}

}  // namespace sslic

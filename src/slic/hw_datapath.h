// Bit-exact software model of the S-SLIC accelerator datapath (paper
// Fig. 4): LUT-based color conversion into 8-bit planar scratch pads, a
// Cluster Update Unit with nine integer color-distance calculators, a 9:1
// minimum tree, six-field integer sigma registers, and an integer Center
// Update Unit divider.
//
// This is the "synthesizable C" algorithm model: every arithmetic step is
// integer with hardware-realizable widths, and the result is the exact
// label map the accelerator would produce. The performance/energy model in
// src/hw costs this same schedule; the two share HwConfig so design-space
// choices stay consistent.
#pragma once

#include <cstdint>
#include <vector>

#include "color/lut_color_unit.h"
#include "image/image.h"
#include "slic/types.h"

namespace sslic {

/// Accelerator algorithm configuration.
struct HwConfig {
  int num_superpixels = 5000;   ///< K (Tables 4-5 use 5000)
  double compactness = 10.0;    ///< m of Eq. 5
  int iterations = 9;           ///< fixed FSM iteration count (Section 7)
  double subsample_ratio = 0.5; ///< S-SLIC pixel subsampling (1/n)
  /// Width of the distance register leaving each color-distance calculator.
  /// 0 keeps the exact integer comparison; 8 models the paper's "returns
  /// the 8-bit distance" register by keeping the top 8 bits (saturating).
  int distance_register_bits = 0;
  /// Run the software connectivity post-pass on the result (the paper's
  /// accelerator leaves this to software, Section 4.1).
  bool enforce_connectivity = true;
  /// Color conversion unit configuration (LUT sizes).
  LutColorUnit::Config color;
};

/// Integer cluster center registers: 8-bit Lab8 color plus pixel
/// coordinates (x, y fit in 11/12 bits at 1080p).
struct HwCenter {
  std::int32_t L = 0;  // Lab8-encoded, 0..255
  std::int32_t a = 0;
  std::int32_t b = 0;
  std::int32_t x = 0;
  std::int32_t y = 0;
};

/// Event counts of one accelerator run, consumed by the performance model.
struct HwRunStats {
  std::uint64_t pixels_converted = 0;  ///< color conversion unit activations
  std::uint64_t pixels_visited = 0;    ///< cluster-update pixel slots
  std::uint64_t tiles_processed = 0;
  std::uint64_t center_updates = 0;    ///< centers recomputed (sum over iters)
  std::uint64_t iterations = 0;

  // 8-bit datapath DRAM traffic convention (bytes): channel data is 1 B per
  // pixel per channel; the index map is 1 B per pixel (K <= 256 per tile
  // candidate set, global ids remapped per tile); centers are 8 B.
  std::uint64_t dram_image_read = 0;
  std::uint64_t dram_index_read = 0;
  std::uint64_t dram_index_write = 0;
  std::uint64_t dram_center_read = 0;
  std::uint64_t dram_center_write = 0;

  [[nodiscard]] std::uint64_t dram_total() const {
    return dram_image_read + dram_index_read + dram_index_write +
           dram_center_read + dram_center_write;
  }
};

/// The accelerator golden model.
class HwSlic {
 public:
  explicit HwSlic(HwConfig config);

  /// Runs the full FSM schedule on an RGB frame: color conversion, static
  /// candidate assignment, `iterations` cluster/center updates.
  [[nodiscard]] Segmentation segment(const RgbImage& image,
                                     HwRunStats* stats = nullptr) const;

  [[nodiscard]] const HwConfig& config() const { return config_; }

  /// The integer combined distance (Eq. 5 squared, integer datapath) —
  /// exposed for unit tests. `weight_q8` is round(m^2/S^2 * 256).
  static std::int32_t integer_distance(const Lab8& pixel, int px, int py,
                                       const HwCenter& center,
                                       std::int32_t weight_q8);

  /// Saturating top-bits reduction of a distance value to `bits` bits with
  /// the run's `shift`; exposed for unit tests.
  static std::int32_t quantize_distance(std::int32_t d, int bits, int shift);

 private:
  HwConfig config_;
  LutColorUnit color_unit_;
};

}  // namespace sslic

// Cluster Update Unit model (paper Section 6.2, Table 3).
//
// The unit performs three functions per pixel: 9 color-space distance
// calculations, a 9:1 minimum search, and a 6-field sigma accumulation.
// Each function is either iterative (time-multiplexed on narrow hardware)
// or parallel (fully pipelined). Configurations are named d-m-a by the
// number of parallel ways per function: the paper evaluates 1-1-1, 9-1-1,
// 1-9-1, 1-1-6, and 9-9-6.
//
// Latency and initiation-interval structure (validated against Table 3):
//   latency = 3 (fetch/writeback/control stages)
//           + 9/d_ways rounded up (1 stage when fully parallel)
//           + 9/m_ways rounded up (2 tree stages when fully parallel)
//           + 6/a_ways rounded up (1 stage when fully parallel)
//   II (cycles per pixel) = max over functions of their iteration count.
#pragma once

#include <cstdint>
#include <string>

#include "hw/area_model.h"
#include "hw/energy_model.h"

namespace sslic::hw {

/// One d-m-a parallelism configuration of the Cluster Update Unit.
struct ClusterUnitConfig {
  int distance_ways = 9;  ///< parallel distance calculators (1..9)
  int min_ways = 9;       ///< 9 = comparator tree, else iterative lanes
  int adder_ways = 6;     ///< parallel sigma-accumulation adders (1..6)

  [[nodiscard]] std::string name() const;  // e.g. "9-9-6"

  /// The five configurations of Table 3.
  static ClusterUnitConfig way_111() { return {1, 1, 1}; }
  static ClusterUnitConfig way_911() { return {9, 1, 1}; }
  static ClusterUnitConfig way_191() { return {1, 9, 1}; }
  static ClusterUnitConfig way_116() { return {1, 1, 6}; }
  static ClusterUnitConfig way_996() { return {9, 9, 6}; }
};

/// Derived hardware characteristics of a configuration.
class ClusterUnit {
 public:
  ClusterUnit(ClusterUnitConfig config,
              const EnergyModel& energy = default_energy_model(),
              const AreaModel& area = default_area_model());

  [[nodiscard]] const ClusterUnitConfig& config() const { return config_; }

  /// Pipeline latency in cycles for one pixel.
  [[nodiscard]] int latency_cycles() const { return latency_; }

  /// Initiation interval: cycles between successive pixels.
  [[nodiscard]] int initiation_interval() const { return ii_; }

  /// Throughput in pixels per cycle (1 / II).
  [[nodiscard]] double throughput_pixels_per_cycle() const {
    return 1.0 / ii_;
  }

  /// Silicon area of the unit, mm^2.
  [[nodiscard]] double area_mm2() const { return area_mm2_; }

  /// Dynamic energy to process one pixel slot (9 distances, min, sigma,
  /// registers, control), pJ.
  [[nodiscard]] double energy_per_pixel_pj() const { return energy_px_pj_; }

  /// Active power when streaming pixels back-to-back at `clock_hz`, watts.
  [[nodiscard]] double active_power_w(double clock_hz) const;

  /// Compute time for one full-image iteration of `pixels` pixels split
  /// into `tiles` tiles (per-tile pipeline refill included), seconds.
  [[nodiscard]] double iteration_compute_seconds(std::uint64_t pixels,
                                                 std::uint64_t tiles,
                                                 double clock_hz) const;

  /// Dynamic energy for one full-image iteration, joules.
  [[nodiscard]] double iteration_energy_j(std::uint64_t pixels) const;

 private:
  ClusterUnitConfig config_;
  int latency_ = 0;
  int ii_ = 0;
  double area_mm2_ = 0.0;
  double energy_px_pj_ = 0.0;
};

}  // namespace sslic::hw

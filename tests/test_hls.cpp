// Tests for the synthesizable-style accelerator top (src/hls): FIFO
// contracts, datapath unit behaviour, bit-exact equivalence with the
// algorithmic golden model, and cycle-count agreement with the standalone
// cycle simulator.
#include <gtest/gtest.h>

#include "dataset/synthetic.h"
#include "hls/accelerator_top.h"
#include "hls/datapath_units.h"
#include "hls/stream.h"
#include "metrics/segmentation_metrics.h"

namespace sslic::hls {
namespace {

// ------------------------------------------------------------------ Stream

TEST(Stream, FifoOrderPreserved) {
  Stream<int, 4> fifo;
  fifo.write(1);
  fifo.write(2);
  fifo.write(3);
  EXPECT_EQ(fifo.read(), 1);
  fifo.write(4);
  EXPECT_EQ(fifo.read(), 2);
  EXPECT_EQ(fifo.read(), 3);
  EXPECT_EQ(fifo.read(), 4);
  EXPECT_TRUE(fifo.empty());
}

TEST(Stream, WrapsAroundManyTimes) {
  Stream<int, 3> fifo;
  for (int i = 0; i < 100; ++i) {
    fifo.write(i);
    EXPECT_EQ(fifo.read(), i);
  }
}

TEST(Stream, OverflowIsContractViolation) {
  Stream<int, 2> fifo;
  fifo.write(1);
  fifo.write(2);
  EXPECT_TRUE(fifo.full());
  EXPECT_THROW(fifo.write(3), ContractViolation);
}

TEST(Stream, UnderflowIsContractViolation) {
  Stream<int, 2> fifo;
  EXPECT_THROW(fifo.read(), ContractViolation);
  EXPECT_THROW((void)fifo.front(), ContractViolation);
}

TEST(Stream, FrontDoesNotConsume) {
  Stream<int, 2> fifo;
  fifo.write(7);
  EXPECT_EQ(fifo.front(), 7);
  EXPECT_EQ(fifo.size(), 1u);
  EXPECT_EQ(fifo.read(), 7);
}

TEST(Stream, ClearEmpties) {
  Stream<int, 2> fifo;
  fifo.write(1);
  fifo.clear();
  EXPECT_TRUE(fifo.empty());
}

// ---------------------------------------------------------- datapath units

TEST(DatapathUnits, MinimumPicksLowestSlotOnTies) {
  std::array<std::int32_t, 9> d{5, 3, 3, 9, 9, 9, 9, 9, 9};
  EXPECT_EQ(MinimumFunction9::select(d), 1);
  d.fill(7);
  EXPECT_EQ(MinimumFunction9::select(d), 0);
}

TEST(DatapathUnits, DistanceCalculatorMatchesGoldenKernel) {
  ColorDistanceCalculator unit;
  unit.weight_q8 = 100;
  const PixelRegs pixel{120, 90, 200, 15, 22};
  CenterRegs center;
  center.L = 100;
  center.a = 95;
  center.b = 180;
  center.x = 10;
  center.y = 20;
  const Lab8 lab{120, 90, 200};
  const HwCenter hw_center{100, 95, 180, 10, 20};
  EXPECT_EQ(unit.compute(pixel, center),
            HwSlic::integer_distance(lab, 15, 22, hw_center, 100));
}

TEST(DatapathUnits, SigmaAccumulatesSixFields) {
  SigmaRegs sigma;
  sigma.accumulate({10, 20, 30, 4, 5});
  sigma.accumulate({1, 2, 3, 6, 7});
  EXPECT_EQ(sigma.L, 11);
  EXPECT_EQ(sigma.a, 22);
  EXPECT_EQ(sigma.b, 33);
  EXPECT_EQ(sigma.x, 10);
  EXPECT_EQ(sigma.y, 12);
  EXPECT_EQ(sigma.count, 2);
}

TEST(DatapathUnits, DividerRoundsToNearest) {
  EXPECT_EQ(CenterUpdateDivider::divide(10, 4), 3);   // 2.5 -> 3 (half up)
  EXPECT_EQ(CenterUpdateDivider::divide(9, 4), 2);    // 2.25 -> 2
  EXPECT_EQ(CenterUpdateDivider::divide(100, 10), 10);
}

// ------------------------------------------------------------- equivalence

GroundTruthImage hls_case(std::uint64_t seed) {
  SyntheticParams p;
  p.width = 160;
  p.height = 120;
  p.min_regions = 5;
  p.max_regions = 10;
  return generate_synthetic(p, seed);
}

HwConfig hls_algorithm() {
  HwConfig config;
  config.num_superpixels = 60;
  config.iterations = 8;
  config.subsample_ratio = 0.5;
  return config;
}

TEST(AcceleratorTop, BitExactWithGoldenModel) {
  const GroundTruthImage gt = hls_case(50);
  const HwConfig algo = hls_algorithm();
  const hw::AcceleratorDesign design;  // 4 kB pads

  const Segmentation golden = HwSlic(algo).segment(gt.image);
  const HlsRunResult hls = AcceleratorTop(algo, design).run(gt.image);
  EXPECT_EQ(hls.segmentation.labels, golden.labels);
  ASSERT_EQ(hls.segmentation.centers.size(), golden.centers.size());
  for (std::size_t i = 0; i < golden.centers.size(); ++i)
    EXPECT_EQ(hls.segmentation.centers[i], golden.centers[i]) << "center " << i;
}

TEST(AcceleratorTop, BitExactAcrossConfigs) {
  const GroundTruthImage gt = hls_case(51);
  for (const double ratio : {1.0, 0.5, 0.25}) {
    for (const int reg_bits : {0, 8}) {
      HwConfig algo = hls_algorithm();
      algo.subsample_ratio = ratio;
      algo.distance_register_bits = reg_bits;
      const Segmentation golden = HwSlic(algo).segment(gt.image);
      const HlsRunResult hls =
          AcceleratorTop(algo, hw::AcceleratorDesign{}).run(gt.image);
      EXPECT_EQ(hls.segmentation.labels, golden.labels)
          << "ratio " << ratio << " reg_bits " << reg_bits;
    }
  }
}

TEST(AcceleratorTop, BufferSizeDoesNotChangeResults) {
  // The pads are pure rate-matching storage: grouping must not affect the
  // computation (only the cycle count).
  const GroundTruthImage gt = hls_case(52);
  const HwConfig algo = hls_algorithm();
  hw::AcceleratorDesign small;
  small.channel_buffer_bytes = 512;
  hw::AcceleratorDesign big;
  big.channel_buffer_bytes = 16384;

  const HlsRunResult a = AcceleratorTop(algo, small).run(gt.image);
  const HlsRunResult b = AcceleratorTop(algo, big).run(gt.image);
  EXPECT_EQ(a.segmentation.labels, b.segmentation.labels);
  EXPECT_GT(a.cycles.dram_stall_cycles, b.cycles.dram_stall_cycles);
}

TEST(AcceleratorTop, TileBiggerThanPadThrows) {
  const GroundTruthImage gt = hls_case(53);
  HwConfig algo = hls_algorithm();
  algo.num_superpixels = 4;  // huge tiles
  hw::AcceleratorDesign tiny;
  tiny.channel_buffer_bytes = 256;
  EXPECT_THROW((void)AcceleratorTop(algo, tiny).run(gt.image),
               ContractViolation);
}

// ------------------------------------------------------- cycle agreement

TEST(AcceleratorTop, CycleCountTracksCycleSimulator) {
  const GroundTruthImage gt = hls_case(54);
  const HwConfig algo = hls_algorithm();
  hw::AcceleratorDesign design;
  design.width = gt.image.width();
  design.height = gt.image.height();
  design.num_superpixels = algo.num_superpixels;
  design.subsample_ratio = algo.subsample_ratio;
  design.full_sweeps = algo.iterations / 2;  // 8 subset iters = 4 sweeps
  design.channel_buffer_bytes = 4096;

  const HlsRunResult hls = AcceleratorTop(algo, design).run(gt.image);
  const hw::CycleReport sim = hw::CycleSimulator(design).run();
  // The simulator rounds subset sizes per tile; the HLS top counts the
  // actual checkerboard population — a few percent at this image size.
  EXPECT_NEAR(static_cast<double>(hls.cycles.total_cycles),
              static_cast<double>(sim.total_cycles),
              static_cast<double>(sim.total_cycles) * 0.05);
  EXPECT_EQ(hls.cycles.iterations, sim.iterations);
  EXPECT_EQ(hls.cycles.tiles_processed, sim.tiles_processed);
}

TEST(AcceleratorTop, BreakdownSumsToTotal) {
  const GroundTruthImage gt = hls_case(55);
  const HlsRunResult hls =
      AcceleratorTop(hls_algorithm(), hw::AcceleratorDesign{}).run(gt.image);
  const hw::CycleReport& c = hls.cycles;
  EXPECT_EQ(c.total_cycles, c.conv_cycles + c.cluster_pixel_cycles +
                                c.tile_overhead_cycles + c.center_update_cycles +
                                c.dram_stall_cycles);
  EXPECT_GT(c.dram_bytes, 0u);
}

TEST(AcceleratorTop, QualityMatchesExpectation) {
  const GroundTruthImage gt = hls_case(56);
  const HlsRunResult hls =
      AcceleratorTop(hls_algorithm(), hw::AcceleratorDesign{}).run(gt.image);
  EXPECT_GT(achievable_segmentation_accuracy(hls.segmentation.labels, gt.truth),
            0.9);
}

}  // namespace
}  // namespace sslic::hls

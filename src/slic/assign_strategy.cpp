#include "slic/assign_strategy.h"

#include <atomic>
#include <cstdint>
#include <cstdlib>

#include "common/logging.h"

namespace sslic {
namespace {

// -1 = no override (use the environment), else the AssignStrategy value.
std::atomic<int> g_override{-1};

AssignStrategy env_default() {
  static const AssignStrategy value = [] {
    const char* env = std::getenv("SSLIC_ASSIGN");
    if (env == nullptr || env[0] == '\0') return AssignStrategy::kAuto;
    AssignStrategy parsed = AssignStrategy::kAuto;
    if (parse_assign_strategy(env, &parsed)) return parsed;
    SSLIC_WARN("unknown SSLIC_ASSIGN value \""
               << env << "\"; accepted: auto|row|cluster — using auto");
    return AssignStrategy::kAuto;
  }();
  return value;
}

std::string to_lower(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

}  // namespace

const char* assign_strategy_name(AssignStrategy strategy) {
  switch (strategy) {
    case AssignStrategy::kAuto:
      return "auto";
    case AssignStrategy::kRow:
      return "row";
    case AssignStrategy::kCluster:
      return "cluster";
  }
  return "auto";
}

bool parse_assign_strategy(const std::string& text, AssignStrategy* out) {
  const std::string name = to_lower(text);
  if (name == "auto") {
    *out = AssignStrategy::kAuto;
  } else if (name == "row") {
    *out = AssignStrategy::kRow;
  } else if (name == "cluster") {
    *out = AssignStrategy::kCluster;
  } else {
    return false;
  }
  return true;
}

AssignStrategy assign_strategy() {
  const int override_value = g_override.load(std::memory_order_relaxed);
  if (override_value >= 0) return static_cast<AssignStrategy>(override_value);
  return env_default();
}

AssignStrategy resolve_assign_strategy(simd::Isa isa, int num_centers,
                                       int width, int height) {
  const AssignStrategy configured = assign_strategy();
  if (configured != AssignStrategy::kAuto) return configured;
  (void)isa;
  // Both schedules evaluate, per pixel, exactly the covering centers (the
  // byte-identity contract), so cluster can only win on memory traffic and
  // per-call kernel efficiency — and its per-span bookkeeping amortizes
  // over span length, which scales with the center spacing S =
  // sqrt(pixels / K). bench/simd_kernels' end-to-end section measures the
  // crossover on this software build: cluster reaches parity-to-ahead once
  // S is large (long spans, few kernel calls) and trails the streaming row
  // sweep when S is small (K large relative to the frame), where each span
  // is a handful of pixels and call overhead dominates. Pick cluster only
  // in the measured-win regime; see DESIGN.md §4g for the analysis.
  const std::int64_t pixels =
      static_cast<std::int64_t>(width) * static_cast<std::int64_t>(height);
  const std::int64_t k = num_centers > 0 ? num_centers : 1;
  const std::int64_t spacing_sq = pixels / k;  // S^2
  return spacing_sq >= 96 * 96 ? AssignStrategy::kCluster
                               : AssignStrategy::kRow;
}

void set_assign_strategy(AssignStrategy strategy) {
  g_override.store(static_cast<int>(strategy), std::memory_order_relaxed);
}

void clear_assign_strategy_override() {
  g_override.store(-1, std::memory_order_relaxed);
}

AssignStrategyGuard::AssignStrategyGuard(AssignStrategy strategy)
    : previous_override_(g_override.load(std::memory_order_relaxed)) {
  set_assign_strategy(strategy);
}

AssignStrategyGuard::~AssignStrategyGuard() {
  g_override.store(previous_override_, std::memory_order_relaxed);
}

}  // namespace sslic

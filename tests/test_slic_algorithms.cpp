// Behavioural tests for the SLIC algorithm family: baseline CPA SLIC,
// S-SLIC PPA/CPA subsampling, data-width quantization, the preemptive
// extension, instrumentation, and convergence (paper Sections 2-4).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <tuple>
#include <utility>

#include "dataset/synthetic.h"
#include "slic/grid.h"
#include "metrics/segmentation_metrics.h"
#include "slic/subset_schedule.h"
#include "slic/connectivity.h"
#include "slic/segmenter.h"
#include "slic/slic_baseline.h"
#include "slic/subsampled.h"
#include "slic/temporal.h"

namespace sslic {
namespace {

SyntheticParams test_image_params() {
  SyntheticParams p;
  p.width = 120;
  p.height = 80;
  p.min_regions = 4;
  p.max_regions = 8;
  return p;
}

const GroundTruthImage& test_case() {
  static const GroundTruthImage gt = generate_synthetic(test_image_params(), 7);
  return gt;
}

SlicParams quick_params() {
  SlicParams p;
  p.num_superpixels = 40;
  p.compactness = 10.0;
  p.max_iterations = 8;
  return p;
}

void expect_valid_segmentation(const Segmentation& seg, int width, int height) {
  EXPECT_EQ(seg.labels.width(), width);
  EXPECT_EQ(seg.labels.height(), height);
  for (const auto label : seg.labels.pixels()) EXPECT_GE(label, 0);
}

// ----------------------------------------------------------- baseline SLIC

TEST(CpaSlic, ProducesValidConnectedSegmentation) {
  const auto& gt = test_case();
  const Segmentation seg = CpaSlic(quick_params()).segment(gt.image);
  expect_valid_segmentation(seg, 120, 80);
  EXPECT_TRUE(is_fully_connected(seg.labels));
}

TEST(CpaSlic, LabelCountNearRequestedK) {
  const auto& gt = test_case();
  const Segmentation seg = CpaSlic(quick_params()).segment(gt.image);
  const int count = count_labels(seg.labels);
  EXPECT_GE(count, 20);
  EXPECT_LE(count, 70);
}

TEST(CpaSlic, SuperpixelsRespectColorBoundaries) {
  const auto& gt = test_case();
  const Segmentation seg = CpaSlic(quick_params()).segment(gt.image);
  // Superpixels must align well enough with ground truth for a high ASA.
  EXPECT_GT(achievable_segmentation_accuracy(seg.labels, gt.truth), 0.90);
  EXPECT_LT(undersegmentation_error_min(seg.labels, gt.truth), 0.10);
}

TEST(CpaSlic, TraceHasOneEntryPerIteration) {
  const auto& gt = test_case();
  SlicParams p = quick_params();
  p.max_iterations = 5;
  const Segmentation seg = CpaSlic(p).segment(gt.image);
  EXPECT_EQ(seg.iterations_run, 5);
  ASSERT_EQ(seg.trace.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(seg.trace[static_cast<std::size_t>(i)].iteration, i);
}

TEST(CpaSlic, CenterMovementDecays) {
  const auto& gt = test_case();
  SlicParams p = quick_params();
  p.max_iterations = 10;
  const Segmentation seg = CpaSlic(p).segment(gt.image);
  // k-means-style convergence: late movement well below early movement.
  const double early = seg.trace.front().center_movement;
  const double late = seg.trace.back().center_movement;
  EXPECT_LT(late, early * 0.5 + 1e-9);
}

TEST(CpaSlic, ConvergenceThresholdStopsEarly) {
  const auto& gt = test_case();
  SlicParams p = quick_params();
  p.max_iterations = 50;
  p.convergence_threshold = 0.5;
  const Segmentation seg = CpaSlic(p).segment(gt.image);
  EXPECT_LT(seg.iterations_run, 50);
}

TEST(CpaSlic, CallbackSeesEveryIteration) {
  const auto& gt = test_case();
  SlicParams p = quick_params();
  p.max_iterations = 4;
  int calls = 0;
  const Segmentation seg = CpaSlic(p).segment(
      gt.image, [&](const IterationStats& stats, const LabelImage& labels,
                    const std::vector<ClusterCenter>& centers) {
        EXPECT_EQ(stats.iteration, calls);
        EXPECT_EQ(labels.width(), 120);
        EXPECT_FALSE(centers.empty());
        ++calls;
      });
  EXPECT_EQ(calls, 4);
  EXPECT_EQ(seg.iterations_run, 4);
}

TEST(CpaSlic, PhaseTimerCoversAllPhases) {
  const auto& gt = test_case();
  PhaseTimer phases;
  (void)CpaSlic(quick_params()).segment(gt.image, {}, nullptr, &phases);
  EXPECT_GT(phases.phase_ms(CpaSlic::kPhaseColorConversion), 0.0);
  EXPECT_GT(phases.phase_ms(CpaSlic::kPhaseDistanceMin), 0.0);
  EXPECT_GT(phases.phase_ms(CpaSlic::kPhaseCenterUpdate), 0.0);
  EXPECT_GT(phases.phase_ms(CpaSlic::kPhaseOther), 0.0);
}

TEST(CpaSlic, InstrumentationCountsWindowScans) {
  const auto& gt = test_case();
  SlicParams p = quick_params();
  p.max_iterations = 3;
  p.enforce_connectivity = false;
  Instrumentation instr;
  (void)CpaSlic(p).segment(gt.image, {}, &instr);
  EXPECT_EQ(instr.iterations, 3u);
  // Each pixel lies in ~4 overlapping 2Sx2S windows (Section 4.2).
  const double evals_per_pixel_iter =
      static_cast<double>(instr.ops.distance_evals) / (120.0 * 80.0 * 3.0);
  EXPECT_GT(evals_per_pixel_iter, 2.5);
  EXPECT_LT(evals_per_pixel_iter, 6.0);
}

TEST(CpaSlic, InvalidParamsThrow) {
  SlicParams p = quick_params();
  p.num_superpixels = 0;
  EXPECT_THROW(CpaSlic{p}, ContractViolation);
  p = quick_params();
  p.compactness = 0.0;
  EXPECT_THROW(CpaSlic{p}, ContractViolation);
  p = quick_params();
  p.max_iterations = 0;
  EXPECT_THROW(CpaSlic{p}, ContractViolation);
}

// ---------------------------------------------------------------- PPA SLIC

TEST(PpaSlic, ProducesValidConnectedSegmentation) {
  const auto& gt = test_case();
  SlicParams p = quick_params();
  p.subsample_ratio = 0.5;
  const Segmentation seg = PpaSlic(p).segment(gt.image);
  expect_valid_segmentation(seg, 120, 80);
  EXPECT_TRUE(is_fully_connected(seg.labels));
}

TEST(PpaSlic, QualityComparableToBaseline) {
  const auto& gt = test_case();
  const Segmentation base = CpaSlic(quick_params()).segment(gt.image);

  SlicParams p = quick_params();
  p.subsample_ratio = 0.5;
  p.max_iterations = 16;  // same number of full sweeps (8)
  const Segmentation sub = PpaSlic(p).segment(gt.image);

  const double use_base = undersegmentation_error_min(base.labels, gt.truth);
  const double use_sub = undersegmentation_error_min(sub.labels, gt.truth);
  // The paper's core claim (Fig. 2): subsampling does not degrade quality.
  EXPECT_LT(use_sub, use_base + 0.02);
}

TEST(PpaSlic, SubsetIterationVisitsRatioOfPixels) {
  const auto& gt = test_case();
  for (const double ratio : {1.0, 0.5, 0.25}) {
    SlicParams p = quick_params();
    p.subsample_ratio = ratio;
    p.max_iterations = 4;
    const Segmentation seg = PpaSlic(p).segment(gt.image);
    for (const auto& stats : seg.trace) {
      EXPECT_NEAR(static_cast<double>(stats.pixels_visited), 120 * 80 * ratio,
                  120 * 80 * ratio * 0.02)
          << "ratio " << ratio;
    }
  }
}

TEST(PpaSlic, NineDistancesPerVisitedPixel) {
  const auto& gt = test_case();
  SlicParams p = quick_params();
  p.subsample_ratio = 0.5;
  p.max_iterations = 4;
  p.enforce_connectivity = false;
  Instrumentation instr;
  const Segmentation seg = PpaSlic(p).segment(gt.image, {}, &instr);
  std::uint64_t visited = 0;
  for (const auto& stats : seg.trace) visited += stats.pixels_visited;
  EXPECT_EQ(instr.ops.distance_evals, 9u * visited);
  EXPECT_EQ(instr.ops.compare_ops, 8u * visited);
  EXPECT_EQ(instr.ops.accumulate_ops, 6u * visited);
}

TEST(PpaSlic, LabelsAlwaysFromCandidateSet) {
  // Before connectivity enforcement, every pixel's label must be one of its
  // 9 static candidates.
  const auto& gt = test_case();
  SlicParams p = quick_params();
  p.enforce_connectivity = false;
  p.subsample_ratio = 0.5;
  const Segmentation seg = PpaSlic(p).segment(gt.image);

  const CenterGrid grid(120, 80, p.num_superpixels);
  const auto candidates = build_candidate_map(grid);
  for (int y = 0; y < 80; ++y) {
    for (int x = 0; x < 120; ++x) {
      const auto& list = candidates[static_cast<std::size_t>(
          grid.center_index(grid.cell_x(x), grid.cell_y(y)))];
      EXPECT_NE(std::find(list.begin(), list.end(), seg.labels(x, y)), list.end())
          << "pixel " << x << ',' << y;
    }
  }
}

TEST(PpaSlic, RatioOneMatchesGslicStyleFullScan) {
  const auto& gt = test_case();
  SlicParams p = quick_params();
  p.subsample_ratio = 1.0;
  const Segmentation seg = PpaSlic(p).segment(gt.image);
  for (const auto& stats : seg.trace)
    EXPECT_EQ(stats.pixels_visited, 120u * 80u);
  EXPECT_GT(achievable_segmentation_accuracy(seg.labels, gt.truth), 0.90);
}

// ------------------------------------------------- data-width quantization

TEST(PpaSlic, EightBitMatchesFloatClosely) {
  // Section 6.1's headline: at 8 bits the quality deltas are ~0.003 USE.
  const auto& gt = test_case();
  SlicParams p = quick_params();
  p.subsample_ratio = 0.5;
  p.max_iterations = 12;

  const Segmentation f64 = PpaSlic(p, DataWidth::float64()).segment(gt.image);
  const Segmentation fx8 = PpaSlic(p, DataWidth::fixed(8)).segment(gt.image);

  const double use_f = undersegmentation_error_min(f64.labels, gt.truth);
  const double use_8 = undersegmentation_error_min(fx8.labels, gt.truth);
  EXPECT_NEAR(use_8, use_f, 0.015);
}

TEST(PpaSlic, FourBitVisiblyWorseThanEightBit) {
  const auto& gt = test_case();
  SlicParams p = quick_params();
  p.subsample_ratio = 0.5;
  p.max_iterations = 12;

  const Segmentation fx8 = PpaSlic(p, DataWidth::fixed(8)).segment(gt.image);
  const Segmentation fx4 = PpaSlic(p, DataWidth::fixed(4)).segment(gt.image);

  const double asa_8 = achievable_segmentation_accuracy(fx8.labels, gt.truth);
  const double asa_4 = achievable_segmentation_accuracy(fx4.labels, gt.truth);
  EXPECT_LT(asa_4, asa_8 + 1e-9);
}

// --------------------------------------------------------------- CPA S-SLIC

TEST(CpaSubsampled, HalfRatioUpdatesHalfTheCenters) {
  const auto& gt = test_case();
  SlicParams p = quick_params();
  p.subsample_ratio = 0.5;
  p.max_iterations = 4;
  const Segmentation seg = CpaSlic(p).segment(gt.image);
  expect_valid_segmentation(seg, 120, 80);
  // Each iteration scans roughly half the window pixels of a full pass.
  SlicParams full = quick_params();
  full.max_iterations = 4;
  const Segmentation fseg = CpaSlic(full).segment(gt.image);
  EXPECT_LT(seg.trace[1].pixels_visited, fseg.trace[1].pixels_visited * 6 / 10);
}

TEST(CpaSubsampled, QualityReasonable) {
  const auto& gt = test_case();
  SlicParams p = quick_params();
  p.subsample_ratio = 0.5;
  p.max_iterations = 16;
  const Segmentation seg = CpaSlic(p).segment(gt.image);
  EXPECT_GT(achievable_segmentation_accuracy(seg.labels, gt.truth), 0.85);
}

// ------------------------------------------------------------- preemptive

TEST(Preemptive, SkipsTilesOnEasyImage) {
  // A flat image converges immediately: after two calm updates most tiles
  // must be skipped.
  RgbImage flat(120, 80, Rgb8{120, 130, 140});
  SlicParams p = quick_params();
  p.subsample_ratio = 1.0;
  p.max_iterations = 10;
  p.preemptive = true;
  Instrumentation instr;
  (void)PpaSlic(p).segment(flat, {}, &instr);
  EXPECT_GT(instr.tiles_skipped, 0u);
}

TEST(Preemptive, QualityPreservedOnTestImage) {
  const auto& gt = test_case();
  SlicParams p = quick_params();
  p.subsample_ratio = 0.5;
  p.max_iterations = 16;
  const Segmentation plain = PpaSlic(p).segment(gt.image);
  p.preemptive = true;
  const Segmentation pre = PpaSlic(p).segment(gt.image);
  const double asa_plain = achievable_segmentation_accuracy(plain.labels, gt.truth);
  const double asa_pre = achievable_segmentation_accuracy(pre.labels, gt.truth);
  EXPECT_NEAR(asa_pre, asa_plain, 0.03);
}

// ------------------------------------------------------ subset pattern (PPA)

TEST(PpaSlic, RowInterleavedVisitsRatioOfPixels) {
  const auto& gt = test_case();
  SlicParams p = quick_params();
  p.subsample_ratio = 0.5;
  p.subset_pattern = SubsetPattern::kRowInterleaved;
  p.max_iterations = 4;
  const Segmentation seg = PpaSlic(p).segment(gt.image);
  for (const auto& stats : seg.trace)
    EXPECT_EQ(stats.pixels_visited, 120u * 80u / 2u);
}

TEST(PpaSlic, RowInterleavedQualityCloseToDithered) {
  const auto& gt = test_case();
  SlicParams p = quick_params();
  p.subsample_ratio = 0.5;
  p.max_iterations = 16;
  const Segmentation dithered = PpaSlic(p).segment(gt.image);
  p.subset_pattern = SubsetPattern::kRowInterleaved;
  const Segmentation rows = PpaSlic(p).segment(gt.image);
  const double asa_d = achievable_segmentation_accuracy(dithered.labels, gt.truth);
  const double asa_r = achievable_segmentation_accuracy(rows.labels, gt.truth);
  EXPECT_NEAR(asa_r, asa_d, 0.03);
}

// Parameterized sweep: the PPA stays valid across K, ratio, and pattern.
class PpaConfigSweep
    : public ::testing::TestWithParam<std::tuple<int, double, SubsetPattern>> {};

TEST_P(PpaConfigSweep, ValidSegmentationEverywhere) {
  const auto [k, ratio, pattern] = GetParam();
  const auto& gt = test_case();
  SlicParams p = quick_params();
  p.num_superpixels = k;
  p.subsample_ratio = ratio;
  p.subset_pattern = pattern;
  p.max_iterations = 6;
  const Segmentation seg = PpaSlic(p).segment(gt.image);
  expect_valid_segmentation(seg, 120, 80);
  EXPECT_TRUE(is_fully_connected(seg.labels));
  EXPECT_GE(count_labels(seg.labels), 1);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, PpaConfigSweep,
    ::testing::Combine(::testing::Values(6, 40, 150),
                       ::testing::Values(1.0, 0.5, 0.25),
                       ::testing::Values(SubsetPattern::kDithered,
                                         SubsetPattern::kRowInterleaved)));

// ----------------------------------------------------------- temporal warm start

TEST(TemporalSlic, WarmFramesUseFewerIterations) {
  const auto& gt = test_case();
  SlicParams p = quick_params();
  p.subsample_ratio = 0.5;
  p.max_iterations = 16;
  TemporalSlic video(p);
  EXPECT_FALSE(video.has_state());

  const Segmentation first = video.next_frame(gt.image);
  EXPECT_TRUE(video.has_state());
  EXPECT_EQ(first.iterations_run, 16);

  const Segmentation second = video.next_frame(gt.image);
  EXPECT_EQ(second.iterations_run, video.warm_iterations());
  EXPECT_LT(second.iterations_run, first.iterations_run);
}

TEST(TemporalSlic, WarmQualityMatchesColdOnStaticScene) {
  const auto& gt = test_case();
  SlicParams p = quick_params();
  p.subsample_ratio = 0.5;
  p.max_iterations = 16;
  TemporalSlic video(p);
  (void)video.next_frame(gt.image);
  const Segmentation warm = video.next_frame(gt.image);

  const Segmentation cold = PpaSlic(p).segment(gt.image);
  const double asa_warm = achievable_segmentation_accuracy(warm.labels, gt.truth);
  const double asa_cold = achievable_segmentation_accuracy(cold.labels, gt.truth);
  EXPECT_NEAR(asa_warm, asa_cold, 0.01);
}

TEST(TemporalSlic, ResetAndResolutionChangeGoCold) {
  const auto& gt = test_case();
  SlicParams p = quick_params();
  p.max_iterations = 6;
  TemporalSlic video(p);
  (void)video.next_frame(gt.image);
  video.reset();
  EXPECT_FALSE(video.has_state());

  (void)video.next_frame(gt.image);
  EXPECT_TRUE(video.has_state());
  // A different resolution cannot reuse the centers: cold restart.
  RgbImage other(64, 48, Rgb8{90, 90, 90});
  const Segmentation seg = video.next_frame(other);
  EXPECT_EQ(seg.iterations_run, 6);
  EXPECT_EQ(seg.labels.width(), 64);
}

TEST(TemporalSlic, WarmStartSizeMismatchThrows) {
  const auto& gt = test_case();
  SlicParams p = quick_params();
  const PpaSlic segmenter(p);
  const LabImage lab = srgb_to_lab(gt.image);
  const std::vector<ClusterCenter> wrong(3);
  EXPECT_THROW((void)segmenter.segment_lab_warm(lab, wrong), ContractViolation);
}

// --------------------------------------------------------------- segmenter

TEST(Segmenter, NamesAreDescriptive) {
  EXPECT_EQ(algorithm_name(Algorithm::kSlic, 1.0), "SLIC");
  EXPECT_EQ(algorithm_name(Algorithm::kSslicPpa, 0.5), "S-SLIC-PPA (0.5)");
  EXPECT_EQ(algorithm_name(Algorithm::kSslicCpa, 0.25), "S-SLIC-CPA (0.25)");
}

TEST(Segmenter, DispatchesAllAlgorithms) {
  const auto& gt = test_case();
  SlicParams p = quick_params();
  p.subsample_ratio = 0.5;
  p.max_iterations = 4;
  for (const auto algorithm :
       {Algorithm::kSlic, Algorithm::kSslicPpa, Algorithm::kSslicCpa}) {
    const Segmentation seg = run_segmenter(algorithm, p, gt.image);
    expect_valid_segmentation(seg, 120, 80);
  }
}

TEST(Segmenter, LabEntryPointMatchesRgbEntryPoint) {
  const auto& gt = test_case();
  SlicParams p = quick_params();
  p.max_iterations = 3;
  const LabImage lab = srgb_to_lab(gt.image);
  const Segmentation a = run_segmenter(Algorithm::kSslicPpa, p, gt.image);
  const Segmentation b = run_segmenter_lab(Algorithm::kSslicPpa, p, lab);
  EXPECT_EQ(a.labels, b.labels);
}

// Parameterized determinism sweep: all algorithms produce identical results
// across repeated runs (no hidden state).
class DeterminismSweep
    : public ::testing::TestWithParam<std::pair<Algorithm, double>> {};

TEST_P(DeterminismSweep, RepeatableLabelMaps) {
  const auto [algorithm, ratio] = GetParam();
  const auto& gt = test_case();
  SlicParams p = quick_params();
  p.subsample_ratio = ratio;
  p.max_iterations = 4;
  const Segmentation a = run_segmenter(algorithm, p, gt.image);
  const Segmentation b = run_segmenter(algorithm, p, gt.image);
  EXPECT_EQ(a.labels, b.labels);
}

INSTANTIATE_TEST_SUITE_P(
    Algorithms, DeterminismSweep,
    ::testing::Values(std::pair{Algorithm::kSlic, 1.0},
                      std::pair{Algorithm::kSslicPpa, 1.0},
                      std::pair{Algorithm::kSslicPpa, 0.5},
                      std::pair{Algorithm::kSslicPpa, 0.25},
                      std::pair{Algorithm::kSslicCpa, 0.5}));

}  // namespace
}  // namespace sslic

// Cross-validation of the two independent performance models: the
// closed-form analytical model (hw/accelerator_model) versus the
// cycle-stepped simulator (hw/cycle_sim). This is the repository's
// substitute for the paper's RTL-simulation cross-check of the HLS design
// (Synopsys VCS on the Catapult netlist, Fig. 5).
#include <cmath>
#include <iostream>

#include "bench_common.h"
#include "hw/cycle_sim.h"

int main(int argc, char** argv) {
  using namespace sslic;
  using namespace sslic::hw;
  bench::BenchConfig config = bench::BenchConfig::parse(argc, argv);
  config.width = 1920;
  config.height = 1080;
  config.superpixels = 5000;
  bench::banner("Model validation — analytical model vs cycle simulator", config);

  Table table("Frame latency: analytical vs cycle-stepped (ms)");
  table.set_header({"design point", "analytic", "cycle-sim", "delta",
                    "sim conv", "sim pixels", "sim tiles", "sim centers",
                    "sim dram"});

  double worst_delta = 0.0;
  const auto add_point = [&](const std::string& name, AcceleratorDesign d) {
    const FrameReport analytic = AcceleratorModel(d).evaluate();
    const CycleReport sim = CycleSimulator(d).run();
    const double a_ms = analytic.total_s * 1e3;
    const double s_ms = sim.seconds(d.clock_hz) * 1e3;
    const double delta = (s_ms - a_ms) / a_ms * 100.0;
    worst_delta = std::max(worst_delta, std::fabs(delta));
    const auto ms = [&](std::uint64_t cycles) {
      return Table::num(static_cast<double>(cycles) / d.clock_hz * 1e3, 1);
    };
    table.add_row({name, Table::num(a_ms, 2), Table::num(s_ms, 2),
                   Table::num(delta, 1) + "%", ms(sim.conv_cycles),
                   ms(sim.cluster_pixel_cycles), ms(sim.tile_overhead_cycles),
                   ms(sim.center_update_cycles), ms(sim.dram_stall_cycles)});
  };

  AcceleratorDesign base;
  add_point("HD, 4kB, 9-9-6 (paper)", base);
  for (const double buffer : {1024.0, 2048.0, 8192.0, 32768.0}) {
    AcceleratorDesign d = base;
    d.channel_buffer_bytes = buffer;
    add_point("HD, " + Table::num(buffer / 1024, 0) + "kB", d);
  }
  {
    AcceleratorDesign d = base;
    d.width = 1280;
    d.height = 768;
    d.channel_buffer_bytes = 1024;
    add_point("720p, 1kB", d);
  }
  {
    AcceleratorDesign d = base;
    d.width = 640;
    d.height = 480;
    d.channel_buffer_bytes = 1024;
    add_point("VGA, 1kB", d);
  }
  {
    AcceleratorDesign d = base;
    d.subsample_ratio = 1.0;
    add_point("HD, full sampling", d);
  }
  {
    AcceleratorDesign d = base;
    d.cluster = ClusterUnitConfig::way_111();
    add_point("HD, 1-1-1 cluster", d);
  }

  table.add_note("the analytical model hides a calibrated fraction of DRAM "
                 "fill latency; the simulator derives the exposure from the "
                 "single-buffered load/process/store schedule. Agreement "
                 "within a few percent validates both.");
  std::cout << table;
  std::cout << "\nworst disagreement: " << Table::num(worst_delta, 1) << "%\n";
  return worst_delta < 10.0 ? 0 : 1;
}

#include "slic/slic_baseline.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/check.h"
#include "common/perf_counters.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "image/planar.h"
#include "slic/assign_kernels.h"
#include "slic/center_update.h"
#include "slic/connectivity.h"
#include "slic/distance.h"
#include "slic/fusion.h"
#include "slic/grid.h"
#include "slic/subset_schedule.h"

namespace sslic {

CpaSlic::CpaSlic(SlicParams params) : params_(params) {
  SSLIC_CHECK(params_.num_superpixels >= 1);
  SSLIC_CHECK(params_.compactness > 0.0);
  SSLIC_CHECK(params_.max_iterations >= 1);
}

Segmentation CpaSlic::segment(const RgbImage& image,
                              const IterationCallback& callback,
                              Instrumentation* instrumentation,
                              PhaseTimer* phases) const {
  LabImage lab;
  {
    Stopwatch watch;
    lab = srgb_to_lab(image);
    if (phases != nullptr) phases->add(kPhaseColorConversion, watch.elapsed_ms());
  }
  return segment_lab(lab, callback, instrumentation, phases);
}

Segmentation CpaSlic::segment_lab(const LabImage& lab,
                                  const IterationCallback& callback,
                                  Instrumentation* instrumentation,
                                  PhaseTimer* phases) const {
  Segmentation result;
  IterationScratch scratch;
  segment_lab_into(lab, result, scratch, callback, instrumentation, phases);
  return result;
}

void CpaSlic::segment_lab_into(const LabImage& lab, Segmentation& result,
                               IterationScratch& scratch,
                               const IterationCallback& callback,
                               Instrumentation* instrumentation,
                               PhaseTimer* phases) const {
  SSLIC_CHECK(!lab.empty());
  SSLIC_TRACE_SCOPE("cpa.segment");
  SSLIC_PERF_SCOPE("cpa.segment");
  const int w = lab.width();
  const int h = lab.height();
  const std::size_t n = lab.size();

  Instrumentation local_instr;
  Instrumentation& instr = instrumentation != nullptr ? *instrumentation : local_instr;
  instr = Instrumentation{};
  const bool fused = fusion_enabled();
  instr.fused = fused;

  Stopwatch init_watch;
  trace::Interval init_span;
  perf::IntervalSample init_perf;
  const CenterGrid grid(w, h, params_.num_superpixels);
  const double spacing = grid.spacing();
  const DistanceCalculator dist(params_.compactness, spacing);
  const SubsetSchedule schedule = SubsetSchedule::from_ratio(params_.subsample_ratio);
  const int num_centers = grid.num_centers();
  const auto num_centers_z = static_cast<std::size_t>(num_centers);

  result.centers = seed_centers(grid, lab, params_.perturb_centers);
  initial_labels(grid, result.labels);
  result.iterations_run = 0;
  result.trace.clear();
  result.trace.reserve(static_cast<std::size_t>(params_.max_iterations));

  // Persistent minimum-distance buffer ("two memory buffers as large as the
  // image", paper Section 2). For full SLIC it is reset every iteration.
  std::vector<double>& min_dist = scratch.min_dist;
  min_dist.assign(n, std::numeric_limits<double>::infinity());
  const bool subsampled = schedule.count() > 1;
  if (subsampled) {
    // Subsampled CPA keeps the buffer across iterations, so it must start
    // with the distance to the initially-assigned center. Row-parallel:
    // every pixel is independent.
    const std::int32_t* labels_ptr = result.labels.pixels().data();
    parallel_for(0, h, [&](std::int64_t ylo, std::int64_t yhi) {
      for (int y = static_cast<int>(ylo); y < static_cast<int>(yhi); ++y) {
        for (int x = 0; x < w; ++x) {
          const std::size_t flat =
              static_cast<std::size_t>(y) * static_cast<std::size_t>(w) +
              static_cast<std::size_t>(x);
          const auto label = static_cast<std::size_t>(labels_ptr[flat]);
          min_dist[flat] = dist.squared(lab(x, y), x, y, result.centers[label]);
        }
      }
    });
    instr.ops.distance_evals += n;
  }

  std::vector<Sigma>& sigmas = scratch.sigmas;
  sigmas.assign(num_centers_z, Sigma{});
  std::vector<std::uint8_t>& active = scratch.active;
  active.assign(num_centers_z, 1);
  std::vector<ScanWindow>& windows = scratch.windows;
  windows.resize(num_centers_z);

  // Fused iteration: the image is split into the same fixed band budget the
  // two-pass parallel_reduce uses (kReduceChunks, clamped to the height).
  // Band boundaries depend only on the image height, never on the thread
  // count, so the per-band sigma partials — and the ascending-order merge
  // below — rebuild the exact floating-point reduction tree of the
  // two-pass code. Labels are band-partition-invariant anyway (each pixel
  // sees its candidate centers in ascending index order regardless of the
  // split), so both paths are bit-identical end to end.
  const std::size_t bands =
      std::min<std::size_t>(detail::kReduceChunks, static_cast<std::size_t>(h));
  if (fused) scratch.ensure_band_sigmas(bands, num_centers_z);

  // One planar split per frame feeds the vectorized assignment kernels
  // (SoA channel planes; see image/planar.h). Resolved kernel table is
  // fetched once — dispatch never runs inside the pixel loops.
  split_lab_planes(lab, scratch.planes);
  const LabPlanes& planes = scratch.planes;
  const kernels::KernelTable& kt = kernels::active();
  const double spatial_weight = dist.spatial_weight();
  if (phases != nullptr) phases->add(kPhaseOther, init_watch.elapsed_ms());
  init_span.complete("cpa.init");
  init_perf.complete("cpa.init");

  // 2S x 2S search rectangle centred on each SP (paper Section 2): +/- S.
  const int window = std::max(1, static_cast<int>(std::lround(spacing)));
  double callback_ms_total = 0.0;

  for (int iter = 0; iter < params_.max_iterations; ++iter) {
    SSLIC_TRACE_SCOPE("cpa.iter", iter);
    Stopwatch iter_watch;
    IterationStats stats;
    stats.iteration = iter;

    // --- Assignment: scan each active center's 2Sx2S window. ---
    Stopwatch assign_watch;
    trace::Interval assign_span;
    perf::IntervalSample iter_perf;
    if (!subsampled) {
      // Full SLIC resets the minimum-distance plane every iteration. The
      // fused path folds the reset into each band's sweep (same writes,
      // one less full-image pass); the traffic charge is identical.
      if (!fused) {
        parallel_for(0, static_cast<std::int64_t>(n),
                     [&](std::int64_t lo, std::int64_t hi) {
                       std::fill(min_dist.begin() + lo, min_dist.begin() + hi,
                                 std::numeric_limits<double>::infinity());
                     });
      }
      instr.traffic.distance_write += n * MemTraffic::kDistanceBytes;
    }

    // Serial prelude over the K centers: activity flags, clamped windows,
    // and the full instrumentation for this iteration. Op/traffic counts
    // are derived analytically from the window geometry — (x1-x0+1)*
    // (y1-y0+1) pixels per window under the streaming-writeback convention
    // (see instrumentation.h) — so the hot loop below carries no counter
    // updates at all, and the totals stay exact regardless of how the rows
    // are split across worker threads.
    const int active_subset = schedule.active_subset(iter);
    for (std::size_t ci = 0; ci < result.centers.size(); ++ci) {
      const bool is_active =
          !subsampled || static_cast<int>(ci) % schedule.count() == active_subset;
      active[ci] = is_active ? 1 : 0;
      if (!is_active) continue;

      const ClusterCenter& c = result.centers[ci];
      const int cx = static_cast<int>(std::lround(c.x));
      const int cy = static_cast<int>(std::lround(c.y));
      ScanWindow& win = windows[ci];
      win.x0 = std::max(0, cx - window);
      win.x1 = std::min(w - 1, cx + window);
      win.y0 = std::max(0, cy - window);
      win.y1 = std::min(h - 1, cy + window);

      const std::uint64_t wpix = win.pixels();
      instr.traffic.center_read += MemTraffic::kCenterBytes;
      instr.ops.distance_evals += wpix;
      instr.ops.compare_ops += wpix;
      instr.traffic.image_read += wpix * MemTraffic::kLabBytes;
      instr.traffic.distance_read += wpix * MemTraffic::kDistanceBytes;
      instr.traffic.distance_write += wpix * MemTraffic::kDistanceBytes;
      instr.traffic.label_write += wpix * MemTraffic::kLabelBytes;
      stats.pixels_visited += wpix;
    }

    // Row-band tiling: each band owns a disjoint range of rows and scans
    // the row-intersection of every active window with its band. A pixel
    // is owned by exactly one band and sees its candidate centers in the
    // same ascending-index order as the serial loop, so labels (including
    // tie-breaks, which favour the lower index) are identical for every
    // band partition and thread count. No locks or atomics are needed on
    // the pixel arrays.
    std::int32_t* labels_ptr = result.labels.pixels().data();
    const auto scan_band = [&](int ylo, int yhi) {
      for (std::size_t ci = 0; ci < result.centers.size(); ++ci) {
        if (active[ci] == 0) continue;
        const ScanWindow& win = windows[ci];
        const int y0 = std::max(win.y0, ylo);
        const int y1 = std::min(win.y1, yhi - 1);
        if (y0 > y1) continue;
        SSLIC_TRACE_SCOPE_AT(1, "cpa.assign.center",
                             static_cast<std::int64_t>(ci));
        const ClusterCenter& c = result.centers[ci];
        const kernels::CenterOperand op{c.L, c.a, c.b, c.x, c.y,
                                        static_cast<std::int32_t>(ci)};
        const std::int32_t count = win.x1 - win.x0 + 1;
        for (int y = y0; y <= y1; ++y) {
          SSLIC_TRACE_SCOPE_AT(2, "cpa.kernel.row", y);
          const std::size_t off =
              static_cast<std::size_t>(y) * static_cast<std::size_t>(w) +
              static_cast<std::size_t>(win.x0);
          kt.assign_center_row(planes.L.data() + off, planes.a.data() + off,
                               planes.b.data() + off, win.x0, count,
                               static_cast<double>(y), op, spatial_weight,
                               min_dist.data() + off, labels_ptr + off);
        }
      }
    };

    bool fused_sigmas_merged = false;
    if (!fused) {
      parallel_for(0, h, [&](std::int64_t ylo, std::int64_t yhi) {
        SSLIC_TRACE_SCOPE("cpa.assign.band", ylo);
        scan_band(static_cast<int>(ylo), static_cast<int>(yhi));
      });
    } else {
      // Fused band sweep: reset (full SLIC), assign, then immediately
      // accumulate this band's sigma partials — after the ascending-index
      // center scan every pixel of the band holds its final label for this
      // iteration, so the accumulation is legal band-locally and the Lab
      // rows are still warm in cache. One full-image pass instead of three.
      const auto band_body = [&](std::size_t band, std::vector<Sigma>& pool) {
        const auto [blo, bhi] = detail::chunk_bounds(0, h, bands, band);
        if (blo >= bhi) return;
        SSLIC_TRACE_SCOPE("cpa.assign.band", blo);
        const int ylo = static_cast<int>(blo);
        const int yhi = static_cast<int>(bhi);
        if (!subsampled) {
          const auto begin = static_cast<std::size_t>(ylo) * static_cast<std::size_t>(w);
          const auto end = static_cast<std::size_t>(yhi) * static_cast<std::size_t>(w);
          std::fill(min_dist.begin() + static_cast<std::ptrdiff_t>(begin),
                    min_dist.begin() + static_cast<std::ptrdiff_t>(end),
                    std::numeric_limits<double>::infinity());
        }
        scan_band(ylo, yhi);
        SSLIC_TRACE_SCOPE_AT(1, "cpa.band_accumulate",
                             static_cast<std::int64_t>(band));
        pool.assign(num_centers_z, Sigma{});
        for (int y = ylo; y < yhi; ++y) {
          const std::size_t off =
              static_cast<std::size_t>(y) * static_cast<std::size_t>(w);
          kt.accumulate_row(planes.L.data() + off, planes.a.data() + off,
                            planes.b.data() + off, 0, w, y, labels_ptr + off,
                            pool.data());
        }
      };
      ThreadPool& pool = ThreadPool::global();
      if (pool.threads() <= 1 || bands <= 1 || ThreadPool::in_parallel_region()) {
        // Serial sweep: one pool serves every band, folded into the totals
        // as soon as its band completes. The per-band partial values and
        // the ascending merge order are exactly those of the parallel
        // per-band pools — bit-identical results — but the single K-sigma
        // partial stays cache-resident across all bands instead of
        // streaming bands * K sigmas through memory every iteration.
        std::vector<Sigma>& band_pool = scratch.band_sigmas[0];
        for (std::size_t band = 0; band < bands; ++band) {
          band_body(band, band_pool);
          // Seed by copy, then fold — the same chain as the merge below
          // (bands = min(kReduceChunks, h) so no band is ever empty).
          if (band == 0) {
            sigmas = band_pool;
          } else {
            merge_sigmas(sigmas, band_pool);
          }
        }
        fused_sigmas_merged = true;
      } else {
        pool.run_chunks(bands, [&](std::size_t band) {
          band_body(band, scratch.band_sigmas[band]);
        });
      }
    }
    if (phases != nullptr) phases->add(kPhaseDistanceMin, assign_watch.elapsed_ms());
    assign_span.complete("cpa.assign", iter);
    iter_perf.complete("cpa.assign");

    // --- Center update: merge sigma partials, then divide. ---
    // Either path merges per-band partials in ascending band order with
    // band boundaries fixed by the image height (parallel_reduce uses the
    // same kReduceChunks budget), so the floating-point reduction tree —
    // and hence every center, bit for bit — is the same at any thread
    // count, fused or not.
    Stopwatch update_watch;
    trace::Interval update_span;
    if (!fused) {
      sigmas = parallel_reduce<std::vector<Sigma>>(
          0, h,
          [&](std::vector<Sigma>& partial, std::int64_t ylo, std::int64_t yhi) {
            partial.assign(num_centers_z, Sigma{});
            for (int y = static_cast<int>(ylo); y < static_cast<int>(yhi); ++y) {
              for (int x = 0; x < w; ++x) {
                const auto label = static_cast<std::size_t>(result.labels(x, y));
                partial[label].add(lab(x, y), x, y);
              }
            }
          },
          [&](std::vector<Sigma>& into, std::vector<Sigma>&& from) {
            if (from.empty()) return;
            if (into.empty()) {
              into = std::move(from);
              return;
            }
            merge_sigmas(into, from);
          });
      // Two-pass accounting: the standalone sigma pass re-reads the whole
      // image and label plane from DRAM. The fused path inherits both
      // streams from the assignment pass, so it drops these two charges —
      // the ~n*16 B/iteration the ISSUE's motivation cites.
      instr.traffic.image_read += n * MemTraffic::kLabBytes;
      instr.traffic.label_read += n * MemTraffic::kLabelBytes;
    } else if (!fused_sigmas_merged) {
      // Parallel fused sweep left one partial pool per band. The first
      // band's pool seeds the totals by value copy (mirroring the reduce
      // merge's move-from-empty), the rest fold in ascending order.
      sigmas = scratch.band_sigmas[0];
      for (std::size_t band = 1; band < bands; ++band)
        merge_sigmas(sigmas, scratch.band_sigmas[band]);
    }
    instr.ops.accumulate_ops += 6 * n;

    stats.center_movement = update_centers(result.centers, sigmas,
                                           subsampled ? active
                                                      : std::vector<std::uint8_t>{},
                                           &instr.ops);
    instr.traffic.center_write +=
        static_cast<std::uint64_t>(num_centers) * MemTraffic::kCenterBytes;
    if (phases != nullptr) phases->add(kPhaseCenterUpdate, update_watch.elapsed_ms());
    update_span.complete(fused ? "cpa.fused_accumulate" : "cpa.update", iter);
    iter_perf.complete(fused ? "cpa.fused_accumulate" : "cpa.update");

    instr.iterations += 1;
    result.iterations_run = iter + 1;
    stats.elapsed_ms = iter_watch.elapsed_ms();
    result.trace.push_back(stats);

    if (callback) {
      Stopwatch cb_watch;
      callback(stats, result.labels, result.centers);
      callback_ms_total += cb_watch.elapsed_ms();
    }
    if (params_.convergence_threshold > 0.0 &&
        stats.center_movement < params_.convergence_threshold &&
        iter + 1 >= schedule.count()) {
      break;  // every subset has been visited at least once
    }
  }
  (void)callback_ms_total;  // callbacks are excluded from phase totals by design

  if (params_.enforce_connectivity) {
    Stopwatch conn_watch;
    SSLIC_TRACE_SCOPE("cpa.connectivity");
    SSLIC_PERF_SCOPE("cpa.connectivity");
    enforce_connectivity(result.labels, params_.num_superpixels,
                         &scratch.connectivity);
    if (phases != nullptr) phases->add(kPhaseOther, conn_watch.elapsed_ms());
  }
}

}  // namespace sslic

// Owning image containers.
//
// Image<T> is a single-plane row-major raster; RgbImage is an interleaved
// 8-bit RGB raster (the accelerator's external-memory input format: single-
// byte R,G,B per pixel stored contiguously in raster-scan order, Section
// 4.3); LabImage is a three-plane floating-point CIELAB raster used by the
// reference algorithm path.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/span2d.h"

namespace sslic {

/// Owning single-plane row-major raster of T.
template <typename T>
class Image {
 public:
  Image() = default;

  Image(int width, int height, T fill = T{})
      : width_(width),
        height_(height),
        data_(static_cast<std::size_t>(width) * static_cast<std::size_t>(height),
              fill) {
    SSLIC_CHECK(width >= 0 && height >= 0);
  }

  [[nodiscard]] int width() const { return width_; }
  [[nodiscard]] int height() const { return height_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  [[nodiscard]] Span2d<T> view() { return {data_.data(), width_, height_}; }
  [[nodiscard]] Span2d<const T> view() const {
    return {data_.data(), width_, height_};
  }

  T& operator()(int x, int y) {
    SSLIC_DCHECK(x >= 0 && x < width_ && y >= 0 && y < height_);
    return data_[static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
                 static_cast<std::size_t>(x)];
  }
  const T& operator()(int x, int y) const {
    SSLIC_DCHECK(x >= 0 && x < width_ && y >= 0 && y < height_);
    return data_[static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
                 static_cast<std::size_t>(x)];
  }

  [[nodiscard]] T* data() { return data_.data(); }
  [[nodiscard]] const T* data() const { return data_.data(); }

  [[nodiscard]] std::vector<T>& pixels() { return data_; }
  [[nodiscard]] const std::vector<T>& pixels() const { return data_; }

  void fill(T value) { data_.assign(data_.size(), value); }

  friend bool operator==(const Image& a, const Image& b) {
    return a.width_ == b.width_ && a.height_ == b.height_ && a.data_ == b.data_;
  }

 private:
  int width_ = 0;
  int height_ = 0;
  std::vector<T> data_;
};

/// One interleaved 8-bit RGB pixel.
struct Rgb8 {
  std::uint8_t r = 0;
  std::uint8_t g = 0;
  std::uint8_t b = 0;

  friend bool operator==(const Rgb8&, const Rgb8&) = default;
};

/// Interleaved 8-bit RGB raster — the accelerator's DRAM input layout.
using RgbImage = Image<Rgb8>;

/// One CIELAB pixel in floating point (reference algorithm path).
struct LabF {
  float L = 0.0f;  // lightness, nominal range [0, 100]
  float a = 0.0f;  // green–red, roughly [-110, 110]
  float b = 0.0f;  // blue–yellow, roughly [-110, 110]

  friend bool operator==(const LabF&, const LabF&) = default;
};

/// Floating-point CIELAB raster.
using LabImage = Image<LabF>;

/// Label map produced by segmentation: one superpixel index per pixel.
using LabelImage = Image<std::int32_t>;

/// Three separate 8-bit planes — the accelerator's scratch-pad channel
/// layout (channel memories 1..3 of Fig. 4).
struct Planar8 {
  Image<std::uint8_t> ch1;  // L (or R before conversion)
  Image<std::uint8_t> ch2;  // a (or G)
  Image<std::uint8_t> ch3;  // b (or B)

  Planar8() = default;
  Planar8(int width, int height)
      : ch1(width, height), ch2(width, height), ch3(width, height) {}

  [[nodiscard]] int width() const { return ch1.width(); }
  [[nodiscard]] int height() const { return ch1.height(); }
};

}  // namespace sslic

// Portable pixmap (PPM/PGM) reading and writing.
//
// PPM P6 is the interchange format for example inputs/outputs so the library
// has no external image dependencies; PGM is used to dump label maps and
// gradient images for inspection.
#pragma once

#include <string>

#include "image/image.h"

namespace sslic {

/// Reads a binary (P6) or ASCII (P3) PPM file. Throws std::runtime_error on
/// malformed input or I/O failure.
RgbImage read_ppm(const std::string& path);

/// Writes a binary (P6) PPM file. Throws std::runtime_error on I/O failure.
void write_ppm(const std::string& path, const RgbImage& image);

/// Writes an 8-bit binary (P5) PGM file.
void write_pgm(const std::string& path, const Image<std::uint8_t>& image);

/// Reads a binary (P5) or ASCII (P2) 8-bit PGM file.
Image<std::uint8_t> read_pgm(const std::string& path);

/// Writes a label map as a PGM, mapping labels onto 0..255 (labels are
/// multiplied by a large odd constant then folded, so adjacent superpixels
/// get visually distinct grey levels).
void write_label_pgm(const std::string& path, const LabelImage& labels);

}  // namespace sslic

#include "dataset/bsds.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace sslic {
namespace {

[[noreturn]] void seg_fail(const std::string& path, const std::string& why) {
  throw std::runtime_error("bsds .seg error (" + path + "): " + why);
}

}  // namespace

LabelImage read_bsds_seg(const std::string& path) {
  std::ifstream in(path);
  if (!in) seg_fail(path, "cannot open for reading");

  int width = -1;
  int height = -1;
  int segments = -1;
  std::string line;
  bool in_data = false;
  while (std::getline(in, line)) {
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    if (key.empty()) continue;
    if (key == "data") {
      in_data = true;
      break;
    }
    if (key == "width") ls >> width;
    else if (key == "height") ls >> height;
    else if (key == "segments") ls >> segments;
    // other header keys (format/date/image/user/gray/invert/flipflop) are
    // informational and skipped.
  }
  if (!in_data) seg_fail(path, "no data section");
  if (width <= 0 || height <= 0) seg_fail(path, "missing width/height");
  if (width > (1 << 15) || height > (1 << 15)) seg_fail(path, "absurd size");

  LabelImage labels(width, height, -1);
  int segment = 0, row = 0, col_first = 0, col_last = 0;
  while (in >> segment >> row >> col_first >> col_last) {
    if (segment < 0) seg_fail(path, "negative segment id");
    if (row < 0 || row >= height) seg_fail(path, "row out of range");
    if (col_first < 0 || col_last < col_first || col_last >= width)
      seg_fail(path, "column run out of range");
    for (int x = col_first; x <= col_last; ++x) labels(x, row) = segment;
  }
  for (const auto v : labels.pixels())
    if (v < 0) seg_fail(path, "pixels left uncovered by the runs");
  if (segments > 0) {
    // The header's segment count is advisory; validate it loosely.
    std::int32_t max_seen = 0;
    for (const auto v : labels.pixels()) max_seen = std::max(max_seen, v);
    if (max_seen >= segments * 4)
      seg_fail(path, "segment ids wildly exceed the declared count");
  }
  return labels;
}

void write_bsds_seg(const std::string& path, const LabelImage& labels) {
  std::ofstream out(path);
  if (!out) seg_fail(path, "cannot open for writing");

  std::int32_t max_label = 0;
  for (const auto v : labels.pixels()) max_label = std::max(max_label, v);

  out << "format ascii cr\n"
      << "date written by sslic\n"
      << "image 0\n"
      << "user 0\n"
      << "width " << labels.width() << '\n'
      << "height " << labels.height() << '\n'
      << "segments " << (max_label + 1) << '\n'
      << "gray 0\n"
      << "invert 0\n"
      << "flipflop 0\n"
      << "data\n";
  for (int y = 0; y < labels.height(); ++y) {
    int x = 0;
    while (x < labels.width()) {
      const std::int32_t label = labels(x, y);
      int end = x;
      while (end + 1 < labels.width() && labels(end + 1, y) == label) ++end;
      out << label << ' ' << y << ' ' << x << ' ' << end << '\n';
      x = end + 1;
    }
  }
  if (!out) seg_fail(path, "write failed");
}

std::vector<LabelImage> read_bsds_annotators(
    const std::vector<std::string>& seg_paths) {
  std::vector<LabelImage> truths;
  truths.reserve(seg_paths.size());
  for (const auto& path : seg_paths) {
    truths.push_back(read_bsds_seg(path));
    if (truths.size() > 1 &&
        (truths.back().width() != truths.front().width() ||
         truths.back().height() != truths.front().height())) {
      seg_fail(path, "annotator dimensions disagree with the first file");
    }
  }
  return truths;
}

}  // namespace sslic

#include "color/lut_color_unit.h"

#include <algorithm>
#include <cmath>

#include "color/color_convert.h"
#include "common/check.h"
#include "common/thread_pool.h"
#include "common/trace.h"

namespace sslic {
namespace {

std::int32_t to_fx(double v, int frac_bits) {
  return static_cast<std::int32_t>(std::lround(v * std::ldexp(1.0, frac_bits)));
}

}  // namespace

LutColorUnit::LutColorUnit() : LutColorUnit(Config{}) {}

LutColorUnit::LutColorUnit(Config config) : config_(config) {
  SSLIC_CHECK(config_.internal_frac_bits >= 6 && config_.internal_frac_bits <= 20);
  SSLIC_CHECK(config_.pwl_segments >= 2 && config_.pwl_segments <= 16);
  // Node collapse on the fixed-point grid is caught below (span > 0), so no
  // segments/frac-bits coupling is required with adaptive node placement.
  const int frac = config_.internal_frac_bits;
  one_fx_ = std::int32_t{1} << frac;

  // 256-entry inverse-gamma LUT (Eq. 1).
  for (int v = 0; v < 256; ++v)
    gamma_lut_[static_cast<std::size_t>(v)] =
        to_fx(srgb_inverse_gamma(v / 255.0), frac);

  // White-folded conversion matrix (Eq. 2 with Eq. 4's normalization).
  for (int row = 0; row < 3; ++row) {
    for (int col = 0; col < 3; ++col) {
      const std::size_t i = static_cast<std::size_t>(row * 3 + col);
      matrix_fx_[i] =
          to_fx(kSrgbToXyz[i] / kReferenceWhite[static_cast<std::size_t>(row)],
                frac);
    }
  }

  // PWL nodes: greedy max-error splitting. Start from {0, knee, 1} — f is
  // exactly linear below the knee (Eq. 4), so all refinement goes to the
  // cube-root region, concentrating segments where curvature lives.
  const int n = config_.pwl_segments;
  std::vector<double> nodes{0.0, kLabEpsilon, 1.0};
  const auto chord_error = [](double lo, double hi) {
    const double f_lo = lab_f(lo);
    const double f_hi = lab_f(hi);
    double worst = 0.0;
    for (int i = 1; i < 16; ++i) {
      const double t = lo + (hi - lo) * i / 16.0;
      const double chord = f_lo + (f_hi - f_lo) * (t - lo) / (hi - lo);
      worst = std::max(worst, std::fabs(chord - lab_f(t)));
    }
    return worst;
  };
  while (static_cast<int>(nodes.size()) < n + 1) {
    std::size_t worst_seg = 0;
    double worst_err = -1.0;
    for (std::size_t s = 0; s + 1 < nodes.size(); ++s) {
      const double err = chord_error(nodes[s], nodes[s + 1]);
      if (err > worst_err) {
        worst_err = err;
        worst_seg = s;
      }
    }
    nodes.insert(nodes.begin() + static_cast<std::ptrdiff_t>(worst_seg) + 1,
                 0.5 * (nodes[worst_seg] + nodes[worst_seg + 1]));
  }

  node_t_.resize(nodes.size());
  node_f_.resize(nodes.size());
  slope_fx_.resize(nodes.size() - 1);
  for (std::size_t s = 0; s < nodes.size(); ++s) {
    node_t_[s] = to_fx(nodes[s], frac);
    node_f_[s] = to_fx(lab_f(nodes[s]), frac);
  }
  for (std::size_t s = 0; s + 1 < nodes.size(); ++s) {
    const std::int64_t span = node_t_[s + 1] - node_t_[s];
    SSLIC_CHECK_MSG(span > 0, "PWL nodes collapsed; raise internal_frac_bits");
    // Slope in Q(frac): f-delta scaled by 2^frac / span, rounded.
    const std::int64_t df = node_f_[s + 1] - node_f_[s];
    slope_fx_[s] = (df * one_fx_ + span / 2) / span;
  }
}

std::int32_t LutColorUnit::pwl_lab_f(std::int32_t t_fx) const {
  const std::int32_t t = std::clamp(t_fx, std::int32_t{0}, one_fx_);
  // Segment selection: a comparator chain / priority encoder in hardware.
  std::size_t seg = 0;
  while (seg + 1 < slope_fx_.size() && t >= node_t_[seg + 1]) ++seg;
  const std::int64_t dt = t - node_t_[seg];
  const std::int64_t half = std::int64_t{1} << (config_.internal_frac_bits - 1);
  return node_f_[seg] +
         static_cast<std::int32_t>((dt * slope_fx_[seg] + half) >>
                                   config_.internal_frac_bits);
}

Lab8 LutColorUnit::convert(Rgb8 rgb) const {
  const int frac = config_.internal_frac_bits;
  const std::int64_t half = std::int64_t{1} << (frac - 1);

  const std::int64_t lin_r = gamma_lut_[rgb.r];
  const std::int64_t lin_g = gamma_lut_[rgb.g];
  const std::int64_t lin_b = gamma_lut_[rgb.b];

  // Matrix multiply; each row already divides by the reference white.
  const auto dot = [&](int row) {
    const std::size_t i = static_cast<std::size_t>(3 * row);
    const std::int64_t acc = matrix_fx_[i] * lin_r + matrix_fx_[i + 1] * lin_g +
                             matrix_fx_[i + 2] * lin_b;
    return static_cast<std::int32_t>((acc + half) >> frac);
  };
  const std::int32_t fx = pwl_lab_f(dot(0));
  const std::int32_t fy = pwl_lab_f(dot(1));
  const std::int32_t fz = pwl_lab_f(dot(2));

  // L in [0,100] scaled straight to the byte range: L8 = (116 fy - 16)*2.55.
  const std::int64_t l_fx = 116ll * fy - (16ll << frac);
  std::int64_t l8 = (l_fx * 255ll / 100ll + half) >> frac;
  // a8/b8: signed offset-128 encoding.
  const std::int64_t a_fx = 500ll * (fx - fy);
  const std::int64_t b_fx = 200ll * (fy - fz);
  std::int64_t a8 = ((a_fx + (a_fx >= 0 ? half : -half)) >> frac) + 128;
  std::int64_t b8 = ((b_fx + (b_fx >= 0 ? half : -half)) >> frac) + 128;

  l8 = std::clamp<std::int64_t>(l8, 0, 255);
  a8 = std::clamp<std::int64_t>(a8, 0, 255);
  b8 = std::clamp<std::int64_t>(b8, 0, 255);
  return {static_cast<std::uint8_t>(l8), static_cast<std::uint8_t>(a8),
          static_cast<std::uint8_t>(b8)};
}

Planar8 LutColorUnit::convert(const RgbImage& image) const {
  SSLIC_TRACE_SCOPE("lut.convert");
  Planar8 planes(image.width(), image.height());
  // The software model of the color unit is a pure per-pixel map, so the
  // image-level conversion is row-parallel; the per-pixel LUT datapath
  // itself stays bit-exact and single-pixel (hardware fidelity lives
  // there, not in the image iteration order).
  parallel_for(0, static_cast<std::int64_t>(image.size()),
               [&](std::int64_t lo, std::int64_t hi) {
                 for (std::int64_t i = lo; i < hi; ++i) {
                   const auto idx = static_cast<std::size_t>(i);
                   const Lab8 lab = convert(image.pixels()[idx]);
                   planes.ch1.pixels()[idx] = lab.L;
                   planes.ch2.pixels()[idx] = lab.a;
                   planes.ch3.pixels()[idx] = lab.b;
                 }
               });
  return planes;
}

Image<Lab8> LutColorUnit::convert_interleaved(const RgbImage& image) const {
  SSLIC_TRACE_SCOPE("lut.convert_interleaved");
  Image<Lab8> out(image.width(), image.height());
  parallel_for(0, static_cast<std::int64_t>(image.size()),
               [&](std::int64_t lo, std::int64_t hi) {
                 for (std::int64_t i = lo; i < hi; ++i) {
                   const auto idx = static_cast<std::size_t>(i);
                   out.pixels()[idx] = convert(image.pixels()[idx]);
                 }
               });
  return out;
}

std::size_t LutColorUnit::lut_storage_bytes() const {
  // Gamma LUT: 256 entries; PWL: node t and f values plus one slope per
  // segment. Entries are internal_frac_bits+1 wide; hardware packs them
  // into ceil(bits/8) bytes.
  const std::size_t entry_bytes =
      static_cast<std::size_t>((config_.internal_frac_bits + 1 + 7) / 8);
  return (256 + node_t_.size() + node_f_.size() + slope_fx_.size()) *
         entry_bytes;
}

}  // namespace sslic

// Round-robin subset schedules for S-SLIC (paper Section 3).
//
// "The image pixels are split into subsets of equal size. At each
//  iteration, a different subset is used to update the SPs. The subsets
//  are traversed in a round-robin fashion to guarantee that all image
//  pixels are considered."
//
// Subsets must be spatially uniform — every superpixel must see a
// representative sample of its pixels each iteration or its center estimate
// becomes biased (the OS-EM/stochastic-gradient convergence argument the
// paper invokes). We therefore use dithered spatial patterns, not scanline
// blocks: 2 subsets form a checkerboard, 4 subsets a 2x2 Bayer block, and
// other counts fall back to diagonal striping.
#pragma once

#include "common/check.h"

namespace sslic {

/// How the pixel lattice is carved into subsets.
enum class SubsetPattern {
  /// Maximally dispersed dither (checkerboard / Bayer / diagonal): the
  /// statistically best-behaved choice — every superpixel sees a uniform
  /// sample each iteration (default).
  kDithered,
  /// Whole rows round-robin (rows where y % count == iteration % count).
  /// Hardware-friendly: inactive rows are whole DRAM bursts that can be
  /// skipped, which is how the accelerator banks its bandwidth saving.
  /// Slightly less uniform vertically.
  kRowInterleaved,
};

/// Spatially-uniform partition of the pixel lattice into `count` subsets.
class SubsetSchedule {
 public:
  explicit SubsetSchedule(int count,
                          SubsetPattern pattern = SubsetPattern::kDithered);

  /// Builds the schedule corresponding to a subsampling ratio: ratio 1.0 ->
  /// 1 subset (plain SLIC), 0.5 -> 2, 0.25 -> 4. The ratio must be 1/n for
  /// an integer n in [1, 64].
  static SubsetSchedule from_ratio(double ratio,
                                   SubsetPattern pattern = SubsetPattern::kDithered);

  [[nodiscard]] int count() const { return count_; }
  [[nodiscard]] SubsetPattern pattern_kind() const {
    return pattern_ == Pattern::kRows ? SubsetPattern::kRowInterleaved
                                      : SubsetPattern::kDithered;
  }

  /// Subset index of pixel (x, y), in [0, count).
  [[nodiscard]] int subset_of(int x, int y) const {
    switch (pattern_) {
      case Pattern::kAll:
        return 0;
      case Pattern::kCheckerboard:
        return (x + y) & 1;
      case Pattern::kBayer2x2:
        return (x & 1) | ((y & 1) << 1);
      case Pattern::kDiagonal:
        return (x + 2 * y) % count_;
      case Pattern::kRows:
        return y % count_;
    }
    return 0;
  }

  /// True when pixel (x, y) is active in iteration `iteration` (subsets are
  /// visited round-robin).
  [[nodiscard]] bool active(int x, int y, int iteration) const {
    return subset_of(x, y) == iteration % count_;
  }

  /// The subset visited at iteration `iteration`.
  [[nodiscard]] int active_subset(int iteration) const {
    SSLIC_DCHECK(iteration >= 0);
    return iteration % count_;
  }

 private:
  enum class Pattern { kAll, kCheckerboard, kBayer2x2, kDiagonal, kRows };

  int count_ = 1;
  Pattern pattern_ = Pattern::kAll;
};

}  // namespace sslic

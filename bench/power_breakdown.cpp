// Per-unit power/energy breakdown of the HD design point — the Section-6.3
// methodology made visible ("the power for each unit is computed using the
// peak active power from power analysis ... multiplied by the utilization;
// we assume the external memory and scratch pads are at full utilization").
#include <iostream>

#include "bench_common.h"
#include "hw/accelerator_model.h"

int main(int argc, char** argv) {
  using namespace sslic;
  using namespace sslic::hw;
  bench::BenchConfig config = bench::BenchConfig::parse(argc, argv);
  config.width = 1920;
  config.height = 1080;
  config.superpixels = 5000;
  bench::banner("Per-unit power/energy breakdown at the HD design point (model)",
                config);

  const AcceleratorDesign design;
  const FrameReport r = AcceleratorModel(design).evaluate();
  const double frame_s = r.total_s;

  Table table("Component breakdown, 1920x1080 @ 30 fps, 16 nm / 0.72 V");
  table.set_header({"component", "energy/frame uJ", "avg power mW", "share",
                    "accounting"});
  struct Row {
    const char* name;
    double energy_j;
    const char* accounting;
  };
  const Row rows[] = {
      {"cluster update unit", r.cluster_energy_j, "actual utilization"},
      {"color conversion unit", r.conv_energy_j, "actual utilization"},
      {"center update unit", r.center_energy_j, "actual utilization"},
      {"scratch pads (4x)", r.sram_energy_j, "full utilization (paper)"},
      {"DRAM interface (PHY)", r.phy_energy_j, "full utilization (paper)"},
      {"clock tree", r.clock_energy_j, "10% of compute dynamic"},
      {"leakage", r.leakage_energy_j, "area x 20 mW/mm2"},
  };
  for (const Row& row : rows) {
    table.add_row({row.name, Table::num(row.energy_j * 1e6, 1),
                   Table::num(row.energy_j / frame_s * 1e3, 2),
                   Table::num(row.energy_j / r.energy_per_frame_j * 100.0, 1) + "%",
                   row.accounting});
  }
  table.add_separator();
  table.add_row({"total", Table::num(r.energy_per_frame_j * 1e6, 1),
                 Table::num(r.average_power_w * 1e3, 2), "100.0%", ""});
  table.add_note("paper Table 4: 49 mW / 1.6 mJ per frame.");
  table.add_note("off-chip DRAM device energy (not accelerator power): " +
                 Table::num(r.dram_device_energy_j * 1e3, 2) +
                 " mJ/frame under the Section-4.2 2500x model — the " +
                 "memory-dominance argument that selected the PPA.");
  std::cout << table;

  std::cout << "\nlatency decomposition (paper: 1.4 / 20.3 / 11.1 ms):\n"
            << "  color conversion: " << Table::num(r.color_conversion_s * 1e3, 2)
            << " ms\n"
            << "  cluster compute:  "
            << Table::num((r.cluster_compute_s + r.center_update_s) * 1e3, 2)
            << " ms\n"
            << "  cluster memory:   " << Table::num(r.cluster_memory_s * 1e3, 2)
            << " ms\n"
            << "  total:            " << Table::num(r.total_s * 1e3, 2)
            << " ms (" << Table::num(r.fps, 1) << " fps)\n";
  return 0;
}

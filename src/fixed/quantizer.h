// Runtime-configurable quantization for the bit-width design-space
// exploration (paper Section 6.1).
//
// The sweep varies the datapath width from 64-bit floating point down to
// 4-bit fixed point. A compile-time Fixed<W,F> cannot express a runtime
// sweep, so Quantizer models an arbitrary-width two's-complement datapath
// at runtime: values are clamped to the representable range and rounded to
// the representable grid.
#pragma once

#include <cstdint>
#include <string>

#include "common/check.h"

namespace sslic {

/// Rounding mode applied when a real value is quantized to the grid.
enum class Rounding {
  kNearest,   // round half away from zero (AC_RND)
  kTruncate,  // round toward zero (AC_TRN)
};

/// Runtime-width fixed-point quantizer: `total_bits` two's-complement bits
/// of which `frac_bits` are fractional. `total_bits == 0` means "no
/// quantization" (the 64-bit floating-point reference configuration).
class Quantizer {
 public:
  Quantizer() = default;  // identity (floating point reference)

  Quantizer(int total_bits, int frac_bits, Rounding rounding = Rounding::kNearest);

  /// The floating-point reference configuration (identity).
  static Quantizer float64() { return Quantizer{}; }

  /// True when this quantizer is the floating-point identity.
  [[nodiscard]] bool is_identity() const { return total_bits_ == 0; }

  [[nodiscard]] int total_bits() const { return total_bits_; }
  [[nodiscard]] int frac_bits() const { return frac_bits_; }

  /// Largest / smallest representable value.
  [[nodiscard]] double max_value() const;
  [[nodiscard]] double min_value() const;

  /// Grid step between adjacent representable values.
  [[nodiscard]] double resolution() const;

  /// Quantizes `v`: clamps to range and snaps to the grid.
  [[nodiscard]] double apply(double v) const;

  /// Human-readable description, e.g. "fx8.0" or "float64".
  [[nodiscard]] std::string name() const;

 private:
  int total_bits_ = 0;  // 0 => identity
  int frac_bits_ = 0;
  Rounding rounding_ = Rounding::kNearest;
  double scale_ = 1.0;
  double raw_max_ = 0.0;
  double raw_min_ = 0.0;
};

}  // namespace sslic

// Center Perspective Architecture (CPA) SLIC — the original algorithm of
// Achanta et al. as the paper's Fig. 1a describes it, plus the
// center-subsampled S-SLIC CPA variant of Section 3.
//
// With subsample_ratio == 1 this is exact baseline SLIC: every iteration
// resets the minimum-distance buffer, scans the 2Sx2S window of every
// center, reassigns every pixel, and recomputes every center.
//
// With subsample_ratio == 1/n the centers are split into n equal
// round-robin subsets; each iteration scans only the active subset's
// windows, so the minimum-distance buffer persists across iterations
// (distances of inactive centers age — the accuracy cost the paper observes
// for CPA subsampling relative to PPA).
#pragma once

#include "color/color_convert.h"
#include "common/stopwatch.h"
#include "slic/instrumentation.h"
#include "slic/iteration_scratch.h"
#include "slic/types.h"

namespace sslic {

/// CPA SLIC segmenter (baseline SLIC when subsample_ratio == 1).
class CpaSlic {
 public:
  explicit CpaSlic(SlicParams params);

  /// Segments an RGB image (color conversion timed as its own phase).
  [[nodiscard]] Segmentation segment(const RgbImage& image,
                                     const IterationCallback& callback = {},
                                     Instrumentation* instrumentation = nullptr,
                                     PhaseTimer* phases = nullptr) const;

  /// Segments an already-converted Lab image.
  [[nodiscard]] Segmentation segment_lab(const LabImage& lab,
                                         const IterationCallback& callback = {},
                                         Instrumentation* instrumentation = nullptr,
                                         PhaseTimer* phases = nullptr) const;

  /// Buffer-reusing variant: writes into `result` and draws every working
  /// buffer from `scratch`. Repeated calls at an unchanged geometry reuse
  /// all prior allocations and run with zero heap allocations (seeding
  /// included). Results are identical to segment_lab.
  void segment_lab_into(const LabImage& lab, Segmentation& result,
                        IterationScratch& scratch,
                        const IterationCallback& callback = {},
                        Instrumentation* instrumentation = nullptr,
                        PhaseTimer* phases = nullptr) const;

  [[nodiscard]] const SlicParams& params() const { return params_; }

  /// Phase names used with PhaseTimer (Table 1's row categories).
  static constexpr const char* kPhaseColorConversion = "color_conversion";
  static constexpr const char* kPhaseDistanceMin = "distance_min";
  static constexpr const char* kPhaseCenterUpdate = "center_update";
  static constexpr const char* kPhaseOther = "other";

 private:
  SlicParams params_;
};

}  // namespace sslic

#include "slic/assign_kernels.h"

#include <atomic>

#include "common/telemetry.h"

namespace sslic::kernels {

bool backend_compiled(simd::Isa isa) {
  switch (isa) {
    case simd::Isa::kScalar:
      return true;
    case simd::Isa::kSse2:
#if defined(SSLIC_KERNELS_SSE2)
      return true;
#else
      return false;
#endif
    case simd::Isa::kAvx2:
#if defined(SSLIC_KERNELS_AVX2)
      return true;
#else
      return false;
#endif
    case simd::Isa::kNeon:
#if defined(SSLIC_KERNELS_NEON)
      return true;
#else
      return false;
#endif
    case simd::Isa::kAvx512:
#if defined(SSLIC_KERNELS_AVX512)
      return true;
#else
      return false;
#endif
  }
  return false;
}

const KernelTable& table_for(simd::Isa isa) {
  switch (isa) {
    case simd::Isa::kScalar:
      break;
    case simd::Isa::kSse2:
#if defined(SSLIC_KERNELS_SSE2)
      return sse2_table();
#else
      break;
#endif
    case simd::Isa::kAvx2:
#if defined(SSLIC_KERNELS_AVX2)
      return avx2_table();
#else
      break;
#endif
    case simd::Isa::kNeon:
#if defined(SSLIC_KERNELS_NEON)
      return neon_table();
#else
      break;
#endif
    case simd::Isa::kAvx512:
#if defined(SSLIC_KERNELS_AVX512)
      return avx512_table();
#else
      break;
#endif
  }
  return scalar_table();
}

simd::Isa active_isa() {
  simd::Isa isa = simd::preferred_isa();
  // Degrade along the same ladder the CPU clamp uses, but against the
  // backends compiled into this binary.
  if (isa == simd::Isa::kAvx512 && !backend_compiled(isa))
    isa = simd::Isa::kAvx2;
  if (isa == simd::Isa::kAvx2 && !backend_compiled(isa)) isa = simd::Isa::kSse2;
  if (!backend_compiled(isa)) isa = simd::Isa::kScalar;
  // Gauge, not counter: re-resolution is idempotent, and tests/tools read
  // the *effective* backend after env/CPU/binary clamping. Published only
  // when the resolved value changes — the registry lookup takes a mutex
  // and builds a std::string key, neither of which belongs on the
  // per-frame path (test_fused asserts steady-state frames allocate
  // nothing). A gauge reference is never cached across calls because
  // MetricsRegistry::clear() invalidates it.
  static std::atomic<int> last_published{-1};
  const int value = static_cast<int>(isa);
  if (last_published.exchange(value, std::memory_order_relaxed) != value) {
    telemetry::MetricsRegistry::global()
        .gauge("sslic.simd.active_isa")
        .set(static_cast<double>(value));
  }
  return isa;
}

const KernelTable& active() { return table_for(active_isa()); }

}  // namespace sslic::kernels

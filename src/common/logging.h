// Minimal leveled logging to stderr. Benches and examples use INFO for
// progress; libraries only log at WARN and above.
//
// Emission is multithread-safe: each message is written with a single
// fwrite (so interleaved worker logs never shear mid-line) and carries a
// monotonic timestamp plus a compact thread id. The threshold defaults to
// kInfo, overridable with `SSLIC_LOG_LEVEL=debug|info|warn|error` (or 0-3)
// in the environment; set_log_level() takes precedence once called.
#pragma once

#include <sstream>
#include <string>

namespace sslic {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global log threshold; messages below it are dropped. Default: kInfo or
/// the SSLIC_LOG_LEVEL environment override.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_emit(LogLevel level, const std::string& message);
}

}  // namespace sslic

#define SSLIC_LOG(level, expr)                                           \
  do {                                                                   \
    if (static_cast<int>(level) >= static_cast<int>(::sslic::log_level())) { \
      std::ostringstream sslic_log_os_;                                  \
      sslic_log_os_ << expr;                                             \
      ::sslic::detail::log_emit(level, sslic_log_os_.str());             \
    }                                                                    \
  } while (false)

#define SSLIC_DEBUG(expr) SSLIC_LOG(::sslic::LogLevel::kDebug, expr)
#define SSLIC_INFO(expr) SSLIC_LOG(::sslic::LogLevel::kInfo, expr)
#define SSLIC_WARN(expr) SSLIC_LOG(::sslic::LogLevel::kWarn, expr)
#define SSLIC_ERROR(expr) SSLIC_LOG(::sslic::LogLevel::kError, expr)

// Reproduces paper Fig. 6: frame processing time versus per-channel
// scratch-pad buffer size (9-9-6 configuration, 1920x1080, K = 5000).
// The real-time threshold is 33.3 ms (30 fps); the paper selects 4 kB as
// the smallest real-time buffer.
#include <iostream>

#include "bench_common.h"
#include "hw/dse.h"

int main(int argc, char** argv) {
  using namespace sslic;
  using namespace sslic::hw;
  bench::BenchConfig config = bench::BenchConfig::parse(argc, argv);
  config.width = 1920;
  config.height = 1080;
  config.superpixels = 5000;
  bench::banner("Fig. 6 — frame time vs per-channel buffer size (model)", config);

  AcceleratorDesign base;
  base.width = config.width;
  base.height = config.height;
  base.num_superpixels = config.superpixels;
  const DesignSpaceExplorer dse(base);

  const std::vector<double> sizes = {1024,  2048,  4096,   8192,
                                     16384, 32768, 65536,  131072};
  const auto points = dse.sweep_buffer_sizes(sizes);

  Table table("Processing time vs scratch-pad size (paper Fig. 6 curve)");
  table.set_header({"buffer/channel", "time ms", "fps", "real-time?",
                    "mem frac", "area mm2", "energy mJ", "bar (31.5..34.5ms)"});
  for (const auto& p : points) {
    const double ms = p.report.total_s * 1e3;
    const int bar_len = std::max(
        0, std::min(40, static_cast<int>((ms - 31.5) / (34.5 - 31.5) * 40.0)));
    std::string label = p.design.channel_buffer_bytes >= 1024
                            ? Table::num(p.design.channel_buffer_bytes / 1024, 0) + "kB"
                            : Table::num(p.design.channel_buffer_bytes, 0) + "B";
    table.add_row({label, Table::num(ms, 2), Table::num(p.report.fps, 1),
                   p.report.real_time() ? "yes" : "no",
                   Table::num(p.report.memory_time_fraction, 2),
                   Table::num(p.report.area_mm2, 4),
                   Table::num(p.report.energy_per_frame_j * 1e3, 2),
                   std::string(static_cast<std::size_t>(bar_len), '#')});
  }
  table.add_note("paper: real-time requires >= 4 kB; larger buffers give only "
                 "slightly better frame time at higher area/energy, so 4 kB "
                 "is chosen. Paper reports memory access = 35% of execution "
                 "at 4 kB.");
  std::cout << table;

  const DsePoint* best = DesignSpaceExplorer::best_real_time(points);
  if (best != nullptr) {
    std::cout << "\nselected design point: "
              << best->design.channel_buffer_bytes / 1024.0
              << " kB per channel buffer (minimum-energy real-time point; "
                 "paper chooses 4 kB)\n";
  }
  return 0;
}

// Multithreaded execution layer: a persistent worker pool plus chunked
// parallel-for / parallel-reduce primitives.
//
// Design goals, in order:
//   1. Determinism. Results must be bit-identical for every thread count
//      (including 1). Work is therefore split into *chunks* whose boundaries
//      depend only on the problem (range length, a fixed chunk budget) —
//      never on the thread count — and reductions merge per-chunk partials
//      in ascending chunk order on the calling thread. Which worker executes
//      which chunk is dynamic (work stealing off a shared counter), but
//      chunk -> data mapping is fixed, so schedules cannot leak into results.
//   2. Zero-cost serial fallback. With one thread (or one chunk) the body
//      runs inline on the caller with no allocation, locking, or atomics.
//   3. Safety. Exceptions thrown by a chunk are captured, the remaining
//      chunks are abandoned, and the first exception is rethrown on the
//      caller. Calls from inside a worker (nested parallelism) degrade to
//      serial inline execution instead of deadlocking.
//
// Thread count resolution: `ThreadPool::global()` sizes itself from the
// `SSLIC_THREADS` environment variable when set, otherwise from
// `std::thread::hardware_concurrency()`. Benches and examples expose a
// `--threads=N` flag that calls `ThreadPool::set_global_threads(N)`.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

namespace sslic {

/// Non-owning reference to a `void(std::size_t chunk)` callable. run_chunks
/// is a blocking call, so the referenced callable always outlives the job —
/// a type-erased pointer pair is enough, and unlike `std::function` it
/// never heap-allocates (capturing lambdas larger than the small-buffer
/// threshold would otherwise cost one allocation per parallel region, which
/// the zero-allocation video steady state cannot afford).
class ChunkFn {
 public:
  ChunkFn() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, ChunkFn> &&
                std::is_invocable_v<const std::decay_t<F>&, std::size_t>>>
  ChunkFn(const F& fn)  // NOLINT(google-explicit-constructor)
      : ctx_(&fn), call_(&call_impl<F>) {}

  void operator()(std::size_t chunk) const { call_(ctx_, chunk); }

  [[nodiscard]] explicit operator bool() const { return call_ != nullptr; }

 private:
  template <typename F>
  static void call_impl(const void* ctx, std::size_t chunk) {
    (*static_cast<const F*>(ctx))(chunk);
  }

  const void* ctx_ = nullptr;
  void (*call_)(const void*, std::size_t) = nullptr;
};

/// Persistent pool of `threads - 1` workers; the caller participates as the
/// remaining thread. `threads == 1` spawns no workers at all.
class ThreadPool {
 public:
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Configured degree of parallelism (>= 1).
  [[nodiscard]] int threads() const { return threads_; }

  /// Per-thread execution statistics, telemetry-only (monotonic since pool
  /// construction; relaxed counters, so totals are exact only at quiescent
  /// points). Slot 0 is the calling thread's participation in run_chunks;
  /// slots 1..threads-1 are the pool workers.
  struct WorkerStats {
    std::uint64_t chunks_executed = 0;
    std::uint64_t jobs_participated = 0;
    std::uint64_t busy_ns = 0;  ///< wall time spent inside drain()
  };

  /// Snapshot of every slot's stats; empty for a single-threaded pool
  /// (serial execution is not tracked). See telemetry::export_thread_pool.
  [[nodiscard]] std::vector<WorkerStats> stats() const;

  /// Jobs dispatched to the workers (serial fallbacks are not counted).
  [[nodiscard]] std::uint64_t jobs_run() const;

  /// Executes `fn(chunk)` for every chunk in [0, num_chunks), distributing
  /// chunks dynamically over the workers and the calling thread. Blocks
  /// until all chunks finish; rethrows the first chunk exception. Safe to
  /// call from inside a chunk body — whether that body runs on a pool
  /// worker or on the participating caller thread — by degrading to serial
  /// inline execution (one level of parallelism, no deadlock, no state
  /// corruption). The callable behind `fn` must stay alive for the call
  /// (always true for a lambda written at the call site).
  void run_chunks(std::size_t num_chunks, ChunkFn fn);

  /// The process-wide pool used by `parallel_for` / `parallel_reduce`.
  static ThreadPool& global();

  /// Resizes the global pool (e.g. from a `--threads` flag). Destroys the
  /// previous pool, so it must only be called at quiescent points — before
  /// any other thread uses (or holds a reference from) `global()`; asserts
  /// that no parallel region is running on this thread and that no pool job
  /// is in flight. `threads <= 0` restores the default (`SSLIC_THREADS` env
  /// or hardware concurrency).
  static void set_global_threads(int threads);

  /// Thread count the global pool would use if created now.
  static int default_threads();

  /// True while the current thread is executing inside a parallel region
  /// (pool worker, or the caller participating in run_chunks). Nested
  /// parallel primitives use this to fall back to serial execution.
  static bool in_parallel_region();

 private:
  struct Impl;

  int threads_ = 1;
  Impl* impl_ = nullptr;  // null when threads_ == 1 (no workers)
};

namespace detail {

/// Fixed chunk budget for deterministic reductions: enough chunks to keep
/// any realistic core count busy, few enough that partial storage stays
/// small. Deliberately *not* derived from the thread count (see header
/// comment on determinism).
inline constexpr std::size_t kReduceChunks = 64;

/// Chunk budget for order-independent loops; oversubscription smooths load
/// imbalance from dynamic scheduling.
[[nodiscard]] std::size_t default_for_chunks(std::int64_t range);

/// Inclusive-exclusive bounds of chunk `c` when [begin, end) is split into
/// `num_chunks` near-equal contiguous pieces.
[[nodiscard]] inline std::pair<std::int64_t, std::int64_t> chunk_bounds(
    std::int64_t begin, std::int64_t end, std::size_t num_chunks,
    std::size_t c) {
  const auto range = static_cast<std::uint64_t>(end - begin);
  const auto lo = begin + static_cast<std::int64_t>(range * c / num_chunks);
  const auto hi =
      begin + static_cast<std::int64_t>(range * (c + 1) / num_chunks);
  return {lo, hi};
}

}  // namespace detail

/// Runs `body(lo, hi)` over contiguous sub-ranges covering [begin, end).
/// The body must be safe to run concurrently on disjoint ranges and must
/// not care how the range is partitioned (per-element independent work).
/// Serial (inline, single call) when the pool has one thread.
template <typename Body>
void parallel_for(std::int64_t begin, std::int64_t end, Body&& body) {
  if (begin >= end) return;
  ThreadPool& pool = ThreadPool::global();
  const std::size_t chunks = detail::default_for_chunks(end - begin);
  if (pool.threads() <= 1 || chunks <= 1 || ThreadPool::in_parallel_region()) {
    body(begin, end);
    return;
  }
  const auto fn = [&](std::size_t c) {
    const auto [lo, hi] = detail::chunk_bounds(begin, end, chunks, c);
    if (lo < hi) body(lo, hi);
  };
  pool.run_chunks(chunks, fn);
}

/// Deterministic chunked reduction. [begin, end) is split into a *fixed*
/// number of chunks (independent of thread count); `body(partial, lo, hi)`
/// accumulates one chunk into its own Partial (default-constructed), and
/// `merge(into, from)` folds the partials in ascending chunk order on the
/// calling thread. Bit-identical results for every thread count, including
/// the serial fallback, because the reduction tree never changes shape.
template <typename Partial, typename Body, typename Merge>
Partial parallel_reduce(std::int64_t begin, std::int64_t end, Body&& body,
                        Merge&& merge,
                        std::size_t num_chunks = detail::kReduceChunks) {
  Partial result{};
  if (begin >= end) return result;
  const std::size_t chunks =
      std::min(num_chunks, static_cast<std::size_t>(end - begin));
  ThreadPool& pool = ThreadPool::global();
  if (chunks <= 1) {
    body(result, begin, end);
    return result;
  }
  std::vector<Partial> partials(chunks);
  const auto fn = [&](std::size_t c) {
    const auto [lo, hi] = detail::chunk_bounds(begin, end, chunks, c);
    if (lo < hi) body(partials[c], lo, hi);
  };
  if (pool.threads() <= 1 || ThreadPool::in_parallel_region()) {
    for (std::size_t c = 0; c < chunks; ++c) fn(c);
  } else {
    pool.run_chunks(chunks, fn);
  }
  for (std::size_t c = 0; c < chunks; ++c) merge(result, std::move(partials[c]));
  return result;
}

}  // namespace sslic

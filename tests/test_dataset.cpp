// Tests for src/dataset: noise fields and the synthetic Berkeley-like
// corpus generator (the BSDS substitution, DESIGN.md §1).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>

#include "common/check.h"
#include "common/rng.h"
#include "dataset/bsds.h"
#include "dataset/noise.h"
#include "dataset/synthetic.h"

namespace sslic {
namespace {

// -------------------------------------------------------------------- noise

TEST(ValueNoise, OutputBounded) {
  Rng rng(1);
  ValueNoise noise(rng, 16, 10.0);
  for (double y = 0; y < 100; y += 3.7) {
    for (double x = 0; x < 100; x += 3.1) {
      const double v = noise.sample(x, y);
      EXPECT_GE(v, -1.0);
      EXPECT_LE(v, 1.0);
    }
  }
}

TEST(ValueNoise, SmoothBetweenLatticePoints) {
  Rng rng(2);
  ValueNoise noise(rng, 16, 20.0);
  // Samples 1px apart must differ far less than the full range.
  for (double x = 0; x < 60; x += 1.0) {
    const double d = std::fabs(noise.sample(x, 10.0) - noise.sample(x + 1.0, 10.0));
    EXPECT_LT(d, 0.4);
  }
}

TEST(ValueNoise, DeterministicForSeed) {
  Rng rng1(3), rng2(3);
  ValueNoise a(rng1, 16, 8.0), b(rng2, 16, 8.0);
  EXPECT_DOUBLE_EQ(a.sample(12.3, 4.5), b.sample(12.3, 4.5));
}

TEST(FractalNoise, BoundedAndNonConstant) {
  Rng rng(4);
  FractalNoise noise(rng, 3, 32.0);
  double lo = 1e9, hi = -1e9;
  for (double y = 0; y < 200; y += 7) {
    for (double x = 0; x < 200; x += 7) {
      const double v = noise.sample(x, y);
      EXPECT_GE(v, -1.0);
      EXPECT_LE(v, 1.0);
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  EXPECT_GT(hi - lo, 0.3);  // actually varies
}

TEST(FractalNoise, InvalidParamsThrow) {
  Rng rng(5);
  EXPECT_THROW(FractalNoise(rng, 0, 32.0), ContractViolation);
  EXPECT_THROW(FractalNoise(rng, 3, 1.0), ContractViolation);
}

// ---------------------------------------------------------------- synthetic

SyntheticParams small_params() {
  SyntheticParams p;
  p.width = 96;
  p.height = 64;
  return p;
}

TEST(Synthetic, ImageAndTruthShapesMatch) {
  const GroundTruthImage gt = generate_synthetic(small_params(), 1);
  EXPECT_EQ(gt.image.width(), 96);
  EXPECT_EQ(gt.image.height(), 64);
  EXPECT_EQ(gt.truth.width(), 96);
  EXPECT_EQ(gt.truth.height(), 64);
}

TEST(Synthetic, TruthLabelsCompactAndCounted) {
  const GroundTruthImage gt = generate_synthetic(small_params(), 2);
  std::set<std::int32_t> labels(gt.truth.pixels().begin(), gt.truth.pixels().end());
  EXPECT_EQ(static_cast<int>(labels.size()), gt.num_regions);
  EXPECT_EQ(*labels.begin(), 0);
  EXPECT_EQ(*labels.rbegin(), gt.num_regions - 1);
}

TEST(Synthetic, RegionCountWithinConfiguredBounds) {
  SyntheticParams p = small_params();
  p.min_regions = 4;
  p.max_regions = 9;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const GroundTruthImage gt = generate_synthetic(p, seed);
    // Merging can only reduce the count below max; it can fall below min
    // only if a region ends up with no pixels, which the generator permits
    // but should be rare. Require at least 2 and at most max.
    EXPECT_GE(gt.num_regions, 2);
    EXPECT_LE(gt.num_regions, 9);
  }
}

TEST(Synthetic, DeterministicForSeed) {
  const GroundTruthImage a = generate_synthetic(small_params(), 77);
  const GroundTruthImage b = generate_synthetic(small_params(), 77);
  EXPECT_EQ(a.image, b.image);
  EXPECT_EQ(a.truth, b.truth);
  EXPECT_EQ(a.num_regions, b.num_regions);
}

TEST(Synthetic, DifferentSeedsProduceDifferentImages) {
  const GroundTruthImage a = generate_synthetic(small_params(), 1);
  const GroundTruthImage b = generate_synthetic(small_params(), 2);
  EXPECT_FALSE(a.image == b.image);
}

TEST(Synthetic, RegionsAreColorDistinct) {
  // Pixels inside one region should be far closer to their region mean than
  // region means are to each other — the piecewise-smooth property USE and
  // boundary recall rely on.
  const GroundTruthImage gt = generate_synthetic(small_params(), 10);
  struct Acc {
    double r = 0, g = 0, b = 0;
    int n = 0;
  };
  std::vector<Acc> mean(static_cast<std::size_t>(gt.num_regions));
  for (std::size_t i = 0; i < gt.image.size(); ++i) {
    Acc& a = mean[static_cast<std::size_t>(gt.truth.pixels()[i])];
    a.r += gt.image.pixels()[i].r;
    a.g += gt.image.pixels()[i].g;
    a.b += gt.image.pixels()[i].b;
    a.n += 1;
  }
  double within = 0.0;
  std::size_t count = 0;
  for (std::size_t i = 0; i < gt.image.size(); ++i) {
    const Acc& a = mean[static_cast<std::size_t>(gt.truth.pixels()[i])];
    if (a.n == 0) continue;
    const double dr = gt.image.pixels()[i].r - a.r / a.n;
    const double dg = gt.image.pixels()[i].g - a.g / a.n;
    const double db = gt.image.pixels()[i].b - a.b / a.n;
    within += std::sqrt(dr * dr + dg * dg + db * db);
    ++count;
  }
  within /= static_cast<double>(count);
  // Mean within-region deviation must be modest (texture+noise only).
  EXPECT_LT(within, 40.0);
  EXPECT_GT(within, 0.5);  // but not degenerate-flat
}

TEST(Synthetic, InvalidParamsThrow) {
  SyntheticParams p = small_params();
  p.width = 4;
  EXPECT_THROW(generate_synthetic(p, 0), ContractViolation);
  p = small_params();
  p.min_regions = 10;
  p.max_regions = 5;
  EXPECT_THROW(generate_synthetic(p, 0), ContractViolation);
}

// ------------------------------------------------------------------ corpus

TEST(Corpus, GeneratesRequestedCount) {
  const SyntheticCorpus corpus(small_params(), 3, 500);
  EXPECT_EQ(corpus.size(), 3);
  const GroundTruthImage img0 = corpus.generate(0);
  EXPECT_EQ(img0.image.width(), 96);
}

TEST(Corpus, IndexIsSeedOffset) {
  const SyntheticCorpus corpus(small_params(), 3, 500);
  const GroundTruthImage direct = generate_synthetic(small_params(), 502);
  const GroundTruthImage via = corpus.generate(2);
  EXPECT_EQ(direct.image, via.image);
}

TEST(Corpus, OutOfRangeThrows) {
  const SyntheticCorpus corpus(small_params(), 2, 0);
  EXPECT_THROW(corpus.generate(2), ContractViolation);
  EXPECT_THROW(corpus.generate(-1), ContractViolation);
}

// ----------------------------------------------------------- multi-annotator

TEST(MultiAnnotator, AnnotatorZeroMatchesSingleGenerator) {
  const SyntheticParams p = small_params();
  const GroundTruthImage single = generate_synthetic(p, 33);
  const MultiAnnotatorImage multi = generate_multi_annotator(p, 33, 4);
  EXPECT_EQ(multi.image, single.image);
  ASSERT_EQ(multi.truths.size(), 4u);
  EXPECT_EQ(multi.truths[0], single.truth);
}

TEST(MultiAnnotator, AnnotatorsDisagreeButCorrelate) {
  const MultiAnnotatorImage multi =
      generate_multi_annotator(small_params(), 34, 3);
  // Different annotators differ somewhere...
  EXPECT_FALSE(multi.truths[0] == multi.truths[1]);
  // ...but agree on most of the image (they describe the same scene).
  std::size_t agree = 0;
  // Labels are independently compacted, so compare co-membership of
  // horizontally adjacent pixel pairs instead of raw ids.
  std::size_t total = 0;
  const LabelImage& a = multi.truths[0];
  const LabelImage& b = multi.truths[1];
  for (int y = 0; y < a.height(); ++y) {
    for (int x = 0; x + 1 < a.width(); ++x) {
      agree += (a(x, y) == a(x + 1, y)) == (b(x, y) == b(x + 1, y));
      ++total;
    }
  }
  EXPECT_GT(static_cast<double>(agree) / static_cast<double>(total), 0.8);
}

TEST(MultiAnnotator, GranularityMergesReduceOrKeepRegionCount) {
  const MultiAnnotatorImage multi =
      generate_multi_annotator(small_params(), 35, 5);
  std::vector<int> counts;
  for (const auto& truth : multi.truths) {
    LabelImage copy = truth;
    counts.push_back(compact_labels(copy));
  }
  for (std::size_t a = 1; a < counts.size(); ++a)
    EXPECT_LE(counts[a], counts[0] + 1) << "annotator " << a;
}

TEST(MultiAnnotator, DeterministicAndValidated) {
  const MultiAnnotatorImage a = generate_multi_annotator(small_params(), 36, 3);
  const MultiAnnotatorImage b = generate_multi_annotator(small_params(), 36, 3);
  for (std::size_t i = 0; i < a.truths.size(); ++i)
    EXPECT_EQ(a.truths[i], b.truths[i]);
  EXPECT_THROW(generate_multi_annotator(small_params(), 1, 0), ContractViolation);
}

// ------------------------------------------------------------ BSDS .seg IO

std::string seg_temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(BsdsSeg, RoundTripsLabelMaps) {
  LabelImage labels(24, 12);
  for (int y = 0; y < 12; ++y)
    for (int x = 0; x < 24; ++x) labels(x, y) = (x / 8) + 3 * (y / 6);
  const std::string path = seg_temp_path("sslic_roundtrip.seg");
  write_bsds_seg(path, labels);
  const LabelImage back = read_bsds_seg(path);
  EXPECT_EQ(back, labels);
  std::remove(path.c_str());
}

TEST(BsdsSeg, ParsesHandWrittenFile) {
  const std::string path = seg_temp_path("sslic_hand.seg");
  {
    std::ofstream out(path);
    out << "format ascii cr\ndate today\nimage 42\nuser 1\n"
        << "width 4\nheight 2\nsegments 2\ngray 0\ninvert 0\nflipflop 0\n"
        << "data\n0 0 0 1\n1 0 2 3\n1 1 0 3\n";
  }
  const LabelImage labels = read_bsds_seg(path);
  EXPECT_EQ(labels.width(), 4);
  EXPECT_EQ(labels.height(), 2);
  EXPECT_EQ(labels(0, 0), 0);
  EXPECT_EQ(labels(2, 0), 1);
  EXPECT_EQ(labels(0, 1), 1);
  std::remove(path.c_str());
}

TEST(BsdsSeg, UncoveredPixelsRejected) {
  const std::string path = seg_temp_path("sslic_uncovered.seg");
  {
    std::ofstream out(path);
    out << "width 4\nheight 2\ndata\n0 0 0 3\n";  // row 1 missing
  }
  EXPECT_THROW(read_bsds_seg(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(BsdsSeg, BadRunsRejected) {
  const std::string path = seg_temp_path("sslic_badrun.seg");
  {
    std::ofstream out(path);
    out << "width 4\nheight 1\ndata\n0 0 2 9\n";  // run past the row end
  }
  EXPECT_THROW(read_bsds_seg(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(BsdsSeg, MissingHeaderRejected) {
  const std::string path = seg_temp_path("sslic_nohdr.seg");
  {
    std::ofstream out(path);
    out << "data\n0 0 0 1\n";
  }
  EXPECT_THROW(read_bsds_seg(path), std::runtime_error);
  std::remove(path.c_str());
  EXPECT_THROW(read_bsds_seg("/nonexistent/missing.seg"), std::runtime_error);
}

TEST(BsdsSeg, AnnotatorLoaderChecksDimensions) {
  const std::string a = seg_temp_path("sslic_ann_a.seg");
  const std::string b = seg_temp_path("sslic_ann_b.seg");
  LabelImage la(8, 4, 0);
  LabelImage lb(6, 4, 0);
  write_bsds_seg(a, la);
  write_bsds_seg(b, lb);
  EXPECT_THROW(read_bsds_annotators({a, b}), std::runtime_error);
  const auto truths = read_bsds_annotators({a, a});
  EXPECT_EQ(truths.size(), 2u);
  std::remove(a.c_str());
  std::remove(b.c_str());
}

TEST(BsdsSeg, RoundTripsSyntheticGroundTruth) {
  // The full loop a BSDS user would exercise: synthetic truth -> .seg file
  // -> loader -> metrics.
  const GroundTruthImage gt = generate_synthetic(small_params(), 60);
  const std::string path = seg_temp_path("sslic_synth.seg");
  write_bsds_seg(path, gt.truth);
  const LabelImage back = read_bsds_seg(path);
  EXPECT_EQ(back, gt.truth);
  std::remove(path.c_str());
}

// ---------------------------------------------------------- compact_labels

TEST(CompactLabels, FirstAppearanceOrder) {
  LabelImage labels(3, 1);
  labels(0, 0) = 7;
  labels(1, 0) = 3;
  labels(2, 0) = 7;
  EXPECT_EQ(compact_labels(labels), 2);
  EXPECT_EQ(labels(0, 0), 0);
  EXPECT_EQ(labels(1, 0), 1);
  EXPECT_EQ(labels(2, 0), 0);
}

}  // namespace
}  // namespace sslic

#include "dataset/synthetic.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "color/color_convert.h"
#include "common/check.h"
#include "common/thread_pool.h"
#include "dataset/noise.h"

namespace sslic {
namespace {

struct Site {
  double x = 0.0;
  double y = 0.0;
  int region = 0;
};

/// The image-independent scene layout: Voronoi sites grouped into regions.
struct Scene {
  std::vector<Site> region_seeds;
  std::vector<Site> sites;
  int num_raw_regions = 0;  // region ids before rasterization/compaction
};

Scene build_scene(Rng& rng, const SyntheticParams& params) {
  Scene scene;
  const int num_regions = rng.next_int(params.min_regions, params.max_regions);
  const int num_sites = num_regions * params.sites_per_region;
  scene.num_raw_regions = num_regions;

  scene.region_seeds.resize(static_cast<std::size_t>(num_regions));
  for (auto& s : scene.region_seeds) {
    s.x = rng.next_double(0.0, params.width);
    s.y = rng.next_double(0.0, params.height);
  }
  scene.sites.resize(static_cast<std::size_t>(num_sites));
  for (auto& s : scene.sites) {
    s.x = rng.next_double(0.0, params.width);
    s.y = rng.next_double(0.0, params.height);
    double best = std::numeric_limits<double>::max();
    for (std::size_t r = 0; r < scene.region_seeds.size(); ++r) {
      const double dx = s.x - scene.region_seeds[r].x;
      const double dy = s.y - scene.region_seeds[r].y;
      const double d = dx * dx + dy * dy;
      if (d < best) {
        best = d;
        s.region = static_cast<int>(r);
      }
    }
  }
  return scene;
}

/// Rasterizes the scene's partition with a fresh warp field drawn from
/// `warp_rng`. `merge_map`, when given, remaps raw region ids (annotator
/// granularity disagreement). Output labels are compacted.
LabelImage rasterize_partition(const Scene& scene, const SyntheticParams& params,
                               Rng& warp_rng,
                               const std::vector<std::int32_t>* merge_map,
                               int* num_regions_out) {
  FractalNoise warp_x(warp_rng, 2, params.warp_cell);
  FractalNoise warp_y(warp_rng, 2, params.warp_cell);

  LabelImage truth(params.width, params.height);
  // The nearest-site search is the generator's hot loop (O(pixels * sites))
  // and every pixel is independent: the warp fields are immutable after
  // construction and the RNG was consumed up front, so row-parallel
  // rasterization is exactly deterministic.
  parallel_for(0, params.height, [&](std::int64_t ylo, std::int64_t yhi) {
    for (int y = static_cast<int>(ylo); y < static_cast<int>(yhi); ++y) {
      for (int x = 0; x < params.width; ++x) {
        const double wx = x + params.warp_amplitude * warp_x.sample(x, y);
        const double wy = y + params.warp_amplitude * warp_y.sample(x, y);
        double best = std::numeric_limits<double>::max();
        int best_region = 0;
        for (const auto& s : scene.sites) {
          const double dx = wx - s.x;
          const double dy = wy - s.y;
          const double d = dx * dx + dy * dy;
          if (d < best) {
            best = d;
            best_region = s.region;
          }
        }
        if (merge_map != nullptr)
          best_region = (*merge_map)[static_cast<std::size_t>(best_region)];
        truth(x, y) = best_region;
      }
    }
  });
  const int count = compact_labels(truth);
  if (num_regions_out != nullptr) *num_regions_out = count;
  return truth;
}

/// Renders the image for a compacted partition, consuming `rng` for colors,
/// textures, and noise.
RgbImage render_image(const LabelImage& truth, int num_regions,
                      const SyntheticParams& params, Rng& rng) {
  SSLIC_CHECK(params.palette_size >= 1);
  struct BaseColor {
    double L, a, b, texture_gain;
  };
  std::vector<BaseColor> palette(static_cast<std::size_t>(params.palette_size));
  for (auto& c : palette) {
    c.L = rng.next_double(25.0, 85.0);
    c.a = rng.next_double(-38.0, 38.0);
    c.b = rng.next_double(-38.0, 38.0);
    c.texture_gain = 0.0;
  }
  std::vector<BaseColor> base(static_cast<std::size_t>(num_regions));
  for (auto& c : base) {
    const BaseColor& p = palette[rng.next_below(palette.size())];
    c.L = p.L + params.palette_offset_sigma * rng.next_gaussian();
    c.a = p.a + params.palette_offset_sigma * rng.next_gaussian();
    c.b = p.b + params.palette_offset_sigma * rng.next_gaussian();
    c.texture_gain = rng.next_double(0.4, 1.4);
  }

  Rng tex_rng = rng.fork();
  FractalNoise texture(tex_rng, 3, 24.0);
  FractalNoise texture_ab(tex_rng, 2, 32.0);
  FractalNoise illumination(tex_rng, 2, 160.0);

  RgbImage image(params.width, params.height);
  for (int y = 0; y < params.height; ++y) {
    for (int x = 0; x < params.width; ++x) {
      const auto region = static_cast<std::size_t>(truth(x, y));
      const BaseColor& c = base[region];
      // Offset texture sampling per region so texture does not align across
      // boundaries (regions look like different surfaces).
      const double ox = static_cast<double>(region) * 71.0;
      LabF lab;
      lab.L = static_cast<float>(
          c.L + params.illumination_amplitude * illumination.sample(x, y) +
          params.texture_amplitude * c.texture_gain *
              texture.sample(x + ox, y - ox) +
          params.noise_sigma * rng.next_gaussian());
      lab.a = static_cast<float>(c.a +
                                 0.6 * params.texture_amplitude * c.texture_gain *
                                     texture_ab.sample(x - ox, y + ox) +
                                 params.noise_sigma * rng.next_gaussian());
      lab.b = static_cast<float>(c.b +
                                 0.6 * params.texture_amplitude * c.texture_gain *
                                     texture_ab.sample(x + ox, y + ox) +
                                 params.noise_sigma * rng.next_gaussian());
      lab.L = std::clamp(lab.L, 0.0f, 100.0f);
      lab.a = std::clamp(lab.a, -110.0f, 110.0f);
      lab.b = std::clamp(lab.b, -110.0f, 110.0f);
      image(x, y) = lab_to_srgb(lab);
    }
  }
  return image;
}

void check_params(const SyntheticParams& params) {
  SSLIC_CHECK(params.width >= 16 && params.height >= 16);
  SSLIC_CHECK(params.min_regions >= 1 && params.max_regions >= params.min_regions);
  SSLIC_CHECK(params.sites_per_region >= 1);
}

}  // namespace

int compact_labels(LabelImage& labels) {
  std::unordered_map<std::int32_t, std::int32_t> remap;
  for (auto& label : labels.pixels()) {
    const auto [it, inserted] =
        remap.emplace(label, static_cast<std::int32_t>(remap.size()));
    label = it->second;
  }
  return static_cast<int>(remap.size());
}

GroundTruthImage generate_synthetic(const SyntheticParams& params,
                                    std::uint64_t seed) {
  check_params(params);
  Rng rng(seed);
  const Scene scene = build_scene(rng, params);
  Rng warp_rng = rng.fork();

  GroundTruthImage out;
  out.truth =
      rasterize_partition(scene, params, warp_rng, nullptr, &out.num_regions);
  out.image = render_image(out.truth, out.num_regions, params, rng);
  return out;
}

SyntheticCorpus::SyntheticCorpus(SyntheticParams params, int size,
                                 std::uint64_t base_seed)
    : params_(params), size_(size), base_seed_(base_seed) {
  SSLIC_CHECK(size >= 0);
}

GroundTruthImage SyntheticCorpus::generate(int index) const {
  SSLIC_CHECK(index >= 0 && index < size_);
  return generate_synthetic(params_, base_seed_ + static_cast<std::uint64_t>(index));
}

MultiAnnotatorImage generate_multi_annotator(const SyntheticParams& params,
                                             std::uint64_t seed, int annotators) {
  check_params(params);
  SSLIC_CHECK(annotators >= 1 && annotators <= 16);

  // Annotator 0 and the rendered image replicate generate_synthetic(seed)
  // exactly (same RNG consumption order).
  Rng rng(seed);
  const Scene scene = build_scene(rng, params);
  Rng warp_rng = rng.fork();

  MultiAnnotatorImage out;
  int num_regions = 0;
  out.truths.push_back(
      rasterize_partition(scene, params, warp_rng, nullptr, &num_regions));
  out.image = render_image(out.truths.front(), num_regions, params, rng);

  // Further annotators: fresh boundary warps (localization disagreement)
  // plus random merges of region pairs (granularity disagreement).
  for (int a = 1; a < annotators; ++a) {
    Rng annotator_rng = rng.fork();
    std::vector<std::int32_t> merge_map(
        static_cast<std::size_t>(scene.num_raw_regions));
    for (std::size_t r = 0; r < merge_map.size(); ++r)
      merge_map[r] = static_cast<std::int32_t>(r);
    for (std::size_t r = 0; r < merge_map.size(); ++r) {
      if (!annotator_rng.next_bool(0.2) || merge_map.size() < 2) continue;
      // Merge region r into its nearest other region (by seed distance).
      double best = std::numeric_limits<double>::max();
      std::size_t target = r;
      for (std::size_t q = 0; q < merge_map.size(); ++q) {
        if (q == r) continue;
        const double dx = scene.region_seeds[r].x - scene.region_seeds[q].x;
        const double dy = scene.region_seeds[r].y - scene.region_seeds[q].y;
        const double d = dx * dx + dy * dy;
        if (d < best) {
          best = d;
          target = q;
        }
      }
      merge_map[r] = merge_map[target];
    }
    out.truths.push_back(
        rasterize_partition(scene, params, annotator_rng, &merge_map, nullptr));
  }
  return out;
}

}  // namespace sslic

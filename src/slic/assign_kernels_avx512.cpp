// AVX-512 backend: 8 f64 lanes / 16 i32 lanes using the Skylake-SP subset
// (F+BW+DQ+VL — detection in common/simd.cpp requires all four). This TU
// is the only code in the binary compiled with -mavx512*; dispatch never
// selects it unless the CPU reports the full feature set at runtime, so no
// AVX-512 instruction can execute on an older machine. Comparisons produce
// opmask registers (__mmask8/__mmask16) natively — select_* are single
// masked blends, and select_lab needs no f64->i32 mask compression like
// AVX2 does. -ffp-contract=off keeps the multiply/add sequence identical
// to the scalar reference (no FMA even though the ISA has it).
#include <immintrin.h>

// GCC's maskless AVX-512 intrinsics expand to masked forms seeded with
// _mm512_undefined_*(), which trips -Wmaybe-uninitialized (GCC PR 105593).
// The shared template is warning-checked in every other backend TU.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wuninitialized"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

#include "slic/assign_kernels_impl.h"

namespace sslic::kernels {
namespace {

struct Avx512Backend {
  static constexpr int kLanesF64 = 8;
  static constexpr int kLanesI32 = 16;
  using VD = __m512d;
  using VL = __m256i;  // 8 labels
  using MD = __mmask8;
  using VI = __m512i;
  using MI = __mmask16;

  static VD load_f32(const float* p) {
    return _mm512_cvtps_pd(_mm256_loadu_ps(p));
  }
  static VD loadu_f64(const double* p) { return _mm512_loadu_pd(p); }
  static void storeu_f64(double* p, VD v) { _mm512_storeu_pd(p, v); }
  static VD set1_f64(double v) { return _mm512_set1_pd(v); }
  static VD iota_f64(double base) {
    return _mm512_add_pd(
        _mm512_set1_pd(base),
        _mm512_setr_pd(0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0));
  }
  static VD add(VD a, VD b) { return _mm512_add_pd(a, b); }
  static VD sub(VD a, VD b) { return _mm512_sub_pd(a, b); }
  static VD mul(VD a, VD b) { return _mm512_mul_pd(a, b); }
  static MD cmplt_f64(VD a, VD b) {
    return _mm512_cmp_pd_mask(a, b, _CMP_LT_OQ);
  }
  static VD select_f64(MD m, VD a, VD b) {
    return _mm512_mask_blend_pd(m, b, a);
  }
  static VL loadu_lab(const std::int32_t* p) {
    return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  }
  static void storeu_lab(std::int32_t* p, VL v) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
  }
  static VL set1_lab(std::int32_t v) { return _mm256_set1_epi32(v); }
  static VL select_lab(MD m, VL a, VL b) {
    return _mm256_mask_blend_epi32(m, b, a);
  }
  static MD mask_f64_from_bytes(const std::uint8_t* p) {
    const __m128i bytes =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(p));
    return static_cast<MD>(
        _mm_cmpneq_epi8_mask(bytes, _mm_setzero_si128()) & 0xff);
  }

  static VI load_u8_i32(const std::uint8_t* p) {
    return _mm512_cvtepu8_epi32(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p)));
  }
  static VI loadu_i32(const std::int32_t* p) {
    return _mm512_loadu_si512(reinterpret_cast<const void*>(p));
  }
  static void storeu_i32(std::int32_t* p, VI v) {
    _mm512_storeu_si512(reinterpret_cast<void*>(p), v);
  }
  static VI set1_i32(std::int32_t v) { return _mm512_set1_epi32(v); }
  static VI iota_i32(std::int32_t base) {
    return _mm512_add_epi32(
        _mm512_set1_epi32(base),
        _mm512_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14,
                          15));
  }
  static VI add_i32(VI a, VI b) { return _mm512_add_epi32(a, b); }
  static VI sub_i32(VI a, VI b) { return _mm512_sub_epi32(a, b); }
  static VI mul_i32(VI a, VI b) { return _mm512_mullo_epi32(a, b); }
  static VI mulw_shr8(VI v, std::int32_t weight) {
    // Exact (int64)weight * v >> 8 per lane via even/odd widening products
    // (both operands non-negative, so unsigned widening is exact).
    const __m512i w = _mm512_set1_epi32(weight);
    const __m512i even = _mm512_srli_epi64(_mm512_mul_epu32(v, w), 8);
    const __m512i odd = _mm512_srli_epi64(
        _mm512_mul_epu32(_mm512_srli_epi64(v, 32), w), 8);
    return _mm512_mask_blend_epi32(static_cast<__mmask16>(0xaaaa), even,
                                   _mm512_slli_epi64(odd, 32));
  }
  static VI sra_i32(VI v, int count) {
    return _mm512_sra_epi32(v, _mm_cvtsi32_si128(count));
  }
  static VI min_i32(VI a, VI b) { return _mm512_min_epi32(a, b); }
  static MI cmplt_i32(VI a, VI b) { return _mm512_cmplt_epi32_mask(a, b); }
  static VI select_i32(MI m, VI a, VI b) {
    return _mm512_mask_blend_epi32(m, b, a);
  }
  static MI mask_i32_from_bytes(const std::uint8_t* p) {
    const __m128i bytes =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
    return _mm_cmpneq_epi8_mask(bytes, _mm_setzero_si128());
  }
  static bool all_eq_i32(VI a, VI b) {
    return _mm512_cmpeq_epi32_mask(a, b) == static_cast<__mmask16>(0xffff);
  }
};

}  // namespace

const KernelTable& avx512_table() {
  static const KernelTable table = make_table<Avx512Backend>();
  return table;
}

}  // namespace sslic::kernels

// Portable SIMD instruction-set selection: runtime CPU detection plus a
// process-wide preference that benches, examples, and tests can override
// (`SSLIC_SIMD` environment variable or a `--simd=NAME` flag).
//
// This header only names instruction sets and resolves which one to *ask*
// for; the vector kernels themselves live in per-ISA translation units
// (see slic/assign_kernels.h) compiled with the matching architecture
// flags, and the kernel dispatcher clamps the preference to the backends
// that were actually compiled in. Selection is resolved once (first query
// reads the environment) and is cheap to re-query afterwards.
#pragma once

#include <string>

namespace sslic::simd {

/// Instruction sets a kernel backend can target. Order encodes x86
/// preference (kAvx2 over kSse2 over kScalar); kNeon is the ARM lane.
enum class Isa {
  kScalar = 0,  ///< plain C++, always available
  kSse2 = 1,    ///< x86-64 baseline, 2 f64 / 4 i32 lanes
  kAvx2 = 2,    ///< 4 f64 / 8 i32 lanes
  kNeon = 3,    ///< AArch64 baseline, 2 f64 / 4 i32 lanes
};

/// Lower-case name used by `SSLIC_SIMD` / `--simd` ("scalar", "sse2",
/// "avx2", "neon").
const char* isa_name(Isa isa);

/// Parses an ISA name (case-insensitive; "off" is an alias for "scalar").
/// Returns false and leaves `out` untouched on an unknown name.
bool parse_isa(const std::string& text, Isa* out);

/// Best instruction set the *CPU this process runs on* supports
/// (independent of what was compiled). Detected once via CPUID (x86) or
/// the architecture baseline (AArch64), then cached.
Isa detect_cpu_isa();

/// True when the running CPU can execute `isa` (kScalar always can).
bool cpu_supports(Isa isa);

/// The ISA the process should use: the `SSLIC_SIMD` environment variable
/// or the last `set_preferred_isa` call, clamped to what the CPU supports
/// (an unsupported or cross-architecture request degrades toward
/// kScalar). Defaults to `detect_cpu_isa()`.
Isa preferred_isa();

/// Overrides the preference (e.g. from a `--simd=NAME` flag or a test
/// that pins the scalar path). Clamped to CPU support on the next
/// `preferred_isa()` query.
void set_preferred_isa(Isa isa);

/// String-flavoured override; returns false (and changes nothing) when
/// `text` is not a recognized ISA name.
bool set_preferred_isa(const std::string& text);

/// Drops any override and re-reads `SSLIC_SIMD` on the next query (used
/// by tests that sweep backends).
void reset_preferred_isa();

}  // namespace sslic::simd

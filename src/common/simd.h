// Portable SIMD instruction-set selection: runtime CPU detection plus a
// process-wide preference that benches, examples, and tests can override
// (`SSLIC_SIMD` environment variable or a `--simd=NAME` flag).
//
// This header only names instruction sets and resolves which one to *ask*
// for; the vector kernels themselves live in per-ISA translation units
// (see slic/assign_kernels.h) compiled with the matching architecture
// flags, and the kernel dispatcher clamps the preference to the backends
// that were actually compiled in. Selection is resolved once (first query
// reads the environment) and is cheap to re-query afterwards.
#pragma once

#include <string>

namespace sslic::simd {

/// Instruction sets a kernel backend can target. The x86 lanes form a
/// preference ladder (kAvx512 over kAvx2 over kSse2 over kScalar); kNeon
/// is the ARM lane.
enum class Isa {
  kScalar = 0,  ///< plain C++, always available
  kSse2 = 1,    ///< x86-64 baseline, 2 f64 / 4 i32 lanes
  kAvx2 = 2,    ///< 4 f64 / 8 i32 lanes
  kNeon = 3,    ///< AArch64 baseline, 2 f64 / 4 i32 lanes
  kAvx512 = 4,  ///< 8 f64 / 16 i32 lanes (requires F+BW+DQ+VL)
};

/// Lower-case name used by `SSLIC_SIMD` / `--simd` ("scalar", "sse2",
/// "avx2", "neon", "avx512"). Round-trips through parse_isa for every
/// enum value.
const char* isa_name(Isa isa);

/// Parses an ISA name (case-insensitive; "off" is an alias for "scalar").
/// Returns false and leaves `out` untouched on an unknown name.
bool parse_isa(const std::string& text, Isa* out);

/// Best instruction set the *CPU this process runs on* supports
/// (independent of what was compiled). Detected once via CPUID (x86) or
/// the architecture baseline (AArch64), then cached.
Isa detect_cpu_isa();

/// True when the running CPU can execute `isa` (kScalar always can).
bool cpu_supports(Isa isa);

/// The ISA the process should use: the `SSLIC_SIMD` environment variable
/// or the last `set_preferred_isa` call, clamped to what the CPU supports
/// (an unsupported request degrades down the x86 ladder
/// avx512 -> avx2 -> sse2 -> scalar; a cross-architecture request degrades
/// straight to kScalar). Defaults to `detect_cpu_isa()`. An unrecognized
/// `SSLIC_SIMD` value logs one WARN naming the accepted set and falls back
/// to detection.
Isa preferred_isa();

/// Overrides the preference (e.g. from a `--simd=NAME` flag or a test
/// that pins the scalar path). Clamped to CPU support on the next
/// `preferred_isa()` query.
void set_preferred_isa(Isa isa);

/// String-flavoured override; returns false (and changes nothing) when
/// `text` is not a recognized ISA name.
bool set_preferred_isa(const std::string& text);

/// Drops any override and re-reads `SSLIC_SIMD` on the next query (used
/// by tests that sweep backends).
void reset_preferred_isa();

}  // namespace sslic::simd

// Design-space exploration driver (paper Section 6): sweeps the cluster-
// unit parallelism, scratch-pad buffer sizes, core count, and resolution,
// and selects configurations under the real-time (30 fps) constraint.
#pragma once

#include <vector>

#include "hw/accelerator_model.h"

namespace sslic::hw {

/// One explored design point with its evaluation.
struct DsePoint {
  AcceleratorDesign design;
  FrameReport report;
};

/// Sweeps derived from a base design (only the swept field changes).
class DesignSpaceExplorer {
 public:
  explicit DesignSpaceExplorer(AcceleratorDesign base) : base_(base) {}

  [[nodiscard]] const AcceleratorDesign& base() const { return base_; }

  /// Evaluates one design.
  [[nodiscard]] static DsePoint evaluate(const AcceleratorDesign& design);

  /// Table-3 style sweep over cluster-unit configurations.
  [[nodiscard]] std::vector<DsePoint> sweep_cluster_configs(
      const std::vector<ClusterUnitConfig>& configs) const;

  /// Fig.-6 style sweep over per-channel buffer sizes (bytes).
  [[nodiscard]] std::vector<DsePoint> sweep_buffer_sizes(
      const std::vector<double>& buffer_bytes) const;

  /// Table-4 style sweep over frame resolutions (width, height, buffer).
  struct Resolution {
    int width;
    int height;
    double channel_buffer_bytes;
  };
  [[nodiscard]] std::vector<DsePoint> sweep_resolutions(
      const std::vector<Resolution>& resolutions) const;

  /// Extension: multi-core scaling sweep.
  [[nodiscard]] std::vector<DsePoint> sweep_cores(
      const std::vector<int>& core_counts) const;

  /// Full cartesian product of cluster configs and buffer sizes.
  [[nodiscard]] std::vector<DsePoint> full_grid(
      const std::vector<ClusterUnitConfig>& configs,
      const std::vector<double>& buffer_bytes) const;

  /// The real-time point with the lowest energy per frame, breaking ties by
  /// area; nullptr when none meets 30 fps.
  [[nodiscard]] static const DsePoint* best_real_time(
      const std::vector<DsePoint>& points);

 private:
  AcceleratorDesign base_;
};

}  // namespace sslic::hw

#include "slic/connectivity.h"

#include <vector>

#include "common/check.h"
#include "common/trace.h"

namespace sslic {
namespace {

constexpr int kDx[4] = {-1, 1, 0, 0};
constexpr int kDy[4] = {0, 0, -1, 1};

}  // namespace

ConnectivityResult enforce_connectivity(LabelImage& labels,
                                        int expected_superpixels,
                                        ConnectivityScratch* scratch) {
  SSLIC_TRACE_SCOPE("slic.connectivity");
  SSLIC_CHECK(expected_superpixels >= 1);
  const int w = labels.width();
  const int h = labels.height();
  SSLIC_CHECK(w > 0 && h > 0);
  const std::size_t n = labels.size();
  const std::size_t min_size =
      std::max<std::size_t>(1, n / static_cast<std::size_t>(expected_superpixels) / 4);

  ConnectivityScratch local_scratch;
  ConnectivityScratch& sc = scratch != nullptr ? *scratch : local_scratch;
  if (sc.out.width() != w || sc.out.height() != h) {
    sc.out = LabelImage(w, h, -1);
    // Worst case is one component spanning the whole image; reserving it up
    // front keeps every later call at this size allocation-free.
    sc.stack.reserve(n);
    sc.members.reserve(n);
  } else {
    sc.out.fill(-1);
  }
  LabelImage& out = sc.out;
  std::vector<std::int32_t>& stack = sc.stack;
  ConnectivityResult result;
  std::int32_t next_label = 0;

  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      if (out(x, y) >= 0) continue;

      // The component merged into when this one turns out to be a stray
      // fragment: the most recent already-relabelled 4-neighbour in scan
      // order (exists for every component except the first).
      std::int32_t adjacent_label = next_label > 0 ? 0 : -1;
      for (int d = 0; d < 4; ++d) {
        const int nx2 = x + kDx[d];
        const int ny2 = y + kDy[d];
        if (nx2 >= 0 && nx2 < w && ny2 >= 0 && ny2 < h && out(nx2, ny2) >= 0)
          adjacent_label = out(nx2, ny2);
      }

      // Flood-fill this component under the original labelling.
      const std::int32_t original = labels(x, y);
      out(x, y) = next_label;
      stack.clear();
      stack.push_back(static_cast<std::int32_t>(y) * w + x);
      std::vector<std::int32_t>& member_indices = sc.members;
      member_indices.clear();
      member_indices.push_back(stack.back());
      while (!stack.empty()) {
        const std::int32_t flat = stack.back();
        stack.pop_back();
        const int cx = flat % w;
        const int cy = flat / w;
        for (int d = 0; d < 4; ++d) {
          const int nx2 = cx + kDx[d];
          const int ny2 = cy + kDy[d];
          if (nx2 < 0 || nx2 >= w || ny2 < 0 || ny2 >= h) continue;
          if (out(nx2, ny2) >= 0 || labels(nx2, ny2) != original) continue;
          out(nx2, ny2) = next_label;
          const std::int32_t nf = static_cast<std::int32_t>(ny2) * w + nx2;
          stack.push_back(nf);
          member_indices.push_back(nf);
        }
      }

      if (member_indices.size() < min_size && adjacent_label >= 0) {
        for (const std::int32_t flat : member_indices)
          out.pixels()[static_cast<std::size_t>(flat)] = adjacent_label;
        result.components_merged += 1;
        result.pixels_moved += member_indices.size();
      } else {
        ++next_label;
      }
    }
  }

  // Swap instead of move: the caller gets the relabelled plane and the
  // scratch keeps a right-sized buffer for the next frame.
  std::swap(labels, out);
  result.final_label_count = next_label;
  return result;
}

bool is_fully_connected(const LabelImage& labels) {
  const int w = labels.width();
  const int h = labels.height();
  if (w == 0 || h == 0) return true;
  Image<std::uint8_t> seen(w, h, 0);
  std::vector<bool> label_seen;
  std::vector<std::int32_t> stack;

  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      if (seen(x, y)) continue;
      const std::int32_t label = labels(x, y);
      SSLIC_CHECK(label >= 0);
      if (static_cast<std::size_t>(label) >= label_seen.size())
        label_seen.resize(static_cast<std::size_t>(label) + 1, false);
      if (label_seen[static_cast<std::size_t>(label)]) return false;  // 2nd component
      label_seen[static_cast<std::size_t>(label)] = true;

      seen(x, y) = 1;
      stack.clear();
      stack.push_back(static_cast<std::int32_t>(y) * w + x);
      while (!stack.empty()) {
        const std::int32_t flat = stack.back();
        stack.pop_back();
        const int cx = flat % w;
        const int cy = flat / w;
        for (int d = 0; d < 4; ++d) {
          const int nx2 = cx + kDx[d];
          const int ny2 = cy + kDy[d];
          if (nx2 < 0 || nx2 >= w || ny2 < 0 || ny2 >= h) continue;
          if (seen(nx2, ny2) || labels(nx2, ny2) != label) continue;
          seen(nx2, ny2) = 1;
          stack.push_back(static_cast<std::int32_t>(ny2) * w + nx2);
        }
      }
    }
  }
  return true;
}

}  // namespace sslic

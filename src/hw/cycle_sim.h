// Cycle-stepped simulator of the S-SLIC accelerator (paper Fig. 4,
// Section 4.3).
//
// The analytical model (accelerator_model.h) costs the FSM schedule in
// closed form; this simulator *executes* it cycle by cycle — an FSM walking
// the Section-4.3 states, a DRAM channel with request latency and peak
// bandwidth, single-ported scratch pads, the pipelined cluster update unit,
// and the iterative center-update divider — and reports where every cycle
// went. The two are independent implementations of the same
// micro-architecture; bench/cycle_sim_validation checks they agree, which
// is the repository's substitute for the paper's RTL-simulation
// cross-check (VCS on the Catapult-generated netlist).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "hw/accelerator_model.h"

namespace sslic::hw {

/// Where the simulated cycles went, per top-level FSM activity.
struct CycleReport {
  std::uint64_t total_cycles = 0;

  std::uint64_t conv_cycles = 0;          ///< color conversion (incl. its DRAM)
  std::uint64_t cluster_pixel_cycles = 0; ///< pixels issuing down the pipeline
  std::uint64_t tile_overhead_cycles = 0; ///< refill + register/sigma transfer
  std::uint64_t center_update_cycles = 0; ///< divider busy
  std::uint64_t dram_stall_cycles = 0;    ///< FSM blocked on tile DRAM traffic

  std::uint64_t dram_bytes = 0;           ///< total DRAM traffic
  std::uint64_t dram_requests = 0;        ///< buffer-fill requests issued
  std::uint64_t tiles_processed = 0;
  std::uint64_t iterations = 0;

  /// Seconds at the design clock.
  [[nodiscard]] double seconds(double clock_hz) const {
    return static_cast<double>(total_cycles) / clock_hz;
  }
};

/// Cycle-stepped execution of one frame's schedule for a design point.
///
/// The simulator is workload-shape-exact (tile geometry from the real
/// CenterGrid, subset sizes from the subsampling ratio) but data-oblivious:
/// it does not need pixel values, because the schedule of the accelerator
/// is data-independent (fixed iteration count, fixed tile order — the FSM
/// of Section 4.3 has no data-dependent branches).
class CycleSimulator {
 public:
  explicit CycleSimulator(AcceleratorDesign design,
                          const DramModel& dram = default_dram_model());

  /// Runs the frame schedule and returns the cycle breakdown.
  [[nodiscard]] CycleReport run() const;

  [[nodiscard]] const AcceleratorDesign& design() const { return design_; }

 private:
  AcceleratorDesign design_;
  DramModel dram_;
};

}  // namespace sslic::hw

#include "common/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <ostream>
#include <vector>

namespace sslic::trace {

std::uint64_t now_ns() {
  static const auto epoch = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch)
          .count());
}

#if SSLIC_TRACING_ENABLED

namespace detail {
std::atomic<bool> g_armed{false};
std::atomic<int> g_detail{0};
}  // namespace detail

namespace {

struct Event {
  const char* name;
  std::uint64_t begin_ns;
  std::uint64_t end_ns;
  std::int64_t arg;
};

std::size_t buffer_capacity() {
  static const std::size_t capacity = [] {
    if (const char* env = std::getenv("SSLIC_TRACE_BUFFER_EVENTS")) {
      char* end = nullptr;
      const long parsed = std::strtol(env, &end, 10);
      if (end != env && *end == '\0' && parsed >= 1024 && parsed <= (1L << 22))
        return static_cast<std::size_t>(parsed);
    }
    return static_cast<std::size_t>(1) << 16;
  }();
  return capacity;
}

// One per recording thread, registered below and intentionally never freed
// so dumps can read events of threads that already exited. `events` is
// allocated lazily on the first record (set_thread_name alone must not cost
// megabytes); slots are write-once, published via a release store on
// `count` and read below an acquire load — no wrapping, no locks.
struct ThreadBuffer {
  std::vector<Event> events;
  std::atomic<std::size_t> count{0};
  std::atomic<std::uint64_t> dropped{0};
  std::uint64_t last_end_ns = 0;  // producer-private: per-thread monotonizer
  int tid = 0;
  std::string name;  // guarded by g_registry_mutex
};

// Leaked on purpose (like the buffers themselves): the atexit dump runs
// after function-local statics constructed later than its registration are
// destroyed, so the registry must never be destroyed at all.
std::mutex& registry_mutex() {
  static std::mutex* m = new std::mutex;
  return *m;
}

std::vector<ThreadBuffer*>& registry() {
  static std::vector<ThreadBuffer*>* buffers = new std::vector<ThreadBuffer*>;
  return *buffers;
}

thread_local ThreadBuffer* t_buffer = nullptr;

ThreadBuffer& thread_buffer() {
  if (t_buffer == nullptr) {
    auto* buffer = new ThreadBuffer;  // process-lifetime, see struct comment
    const std::lock_guard<std::mutex> lock(registry_mutex());
    buffer->tid = static_cast<int>(registry().size());
    registry().push_back(buffer);
    t_buffer = buffer;
  }
  return *t_buffer;
}

std::mutex g_path_mutex;
std::string g_path;  // guarded by g_path_mutex

void escape_into(std::string& out, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) >= 0x20) out.push_back(c);
  }
}

void dump_at_exit() {
  if (!detail::g_armed.load(std::memory_order_acquire)) return;
  detail::g_armed.store(false, std::memory_order_release);
  std::string path;
  {
    const std::lock_guard<std::mutex> lock(g_path_mutex);
    path = g_path;
  }
  if (path.empty()) return;
  std::size_t events = 0;
  {
    const std::lock_guard<std::mutex> lock(registry_mutex());
    for (const ThreadBuffer* b : registry())
      events += b->count.load(std::memory_order_acquire);
  }
  if (write_file(path)) {
    std::fprintf(stderr, "[trace] wrote %s (%zu events, %llu dropped)\n",
                 path.c_str(), events,
                 static_cast<unsigned long long>(dropped_events()));
  } else {
    std::fprintf(stderr, "[trace] FAILED to write %s\n", path.c_str());
  }
}

// Arms at startup when SSLIC_TRACE / SSLIC_TRACE_DETAIL are set, so every
// binary (tests included) is traceable without code changes.
const struct TraceEnvInit {
  TraceEnvInit() {
    if (const char* env = std::getenv("SSLIC_TRACE"); env != nullptr && *env != '\0')
      arm(env);
    if (const char* env = std::getenv("SSLIC_TRACE_DETAIL")) {
      char* end = nullptr;
      const long parsed = std::strtol(env, &end, 10);
      if (end != env && *end == '\0') set_detail_level(static_cast<int>(parsed));
    }
  }
} g_trace_env_init;

}  // namespace

namespace detail {

void record(const char* name, std::uint64_t begin_ns, std::uint64_t end_ns,
            std::int64_t arg) {
  ThreadBuffer& buffer = thread_buffer();
  if (buffer.events.empty()) buffer.events.resize(buffer_capacity());
  const std::size_t c = buffer.count.load(std::memory_order_relaxed);
  if (c >= buffer.events.size()) {
    buffer.dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // Per-thread strictly-increasing completion times: spans end in program
  // order on one thread, so only equal-nanosecond stamps need nudging.
  if (end_ns <= buffer.last_end_ns) end_ns = buffer.last_end_ns + 1;
  buffer.last_end_ns = end_ns;
  if (begin_ns > end_ns) begin_ns = end_ns;
  buffer.events[c] = Event{name, begin_ns, end_ns, arg};
  buffer.count.store(c + 1, std::memory_order_release);
}

}  // namespace detail

void arm(const std::string& path) {
  {
    const std::lock_guard<std::mutex> lock(g_path_mutex);
    g_path = path;
  }
  static const bool registered = [] {
    std::atexit(&dump_at_exit);
    return true;
  }();
  static_cast<void>(registered);
  detail::g_armed.store(true, std::memory_order_release);
}

void disarm() { detail::g_armed.store(false, std::memory_order_release); }

bool armed() { return detail::g_armed.load(std::memory_order_relaxed); }

void set_armed(bool armed_now) {
  detail::g_armed.store(armed_now, std::memory_order_release);
}

int detail_level() { return detail::g_detail.load(std::memory_order_relaxed); }

void set_detail_level(int level) {
  detail::g_detail.store(level, std::memory_order_relaxed);
}

void set_thread_name(const std::string& name) {
  ThreadBuffer& buffer = thread_buffer();
  const std::lock_guard<std::mutex> lock(registry_mutex());
  buffer.name = name;
}

void serialize(std::ostream& os) {
  const std::lock_guard<std::mutex> lock(registry_mutex());
  os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  std::string line;
  char buf[160];
  for (const ThreadBuffer* buffer : registry()) {
    if (!buffer->name.empty()) {
      line.clear();
      line += "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": ";
      line += std::to_string(buffer->tid);
      line += ", \"args\": {\"name\": \"";
      escape_into(line, buffer->name);
      line += "\"}}";
      os << (first ? "\n" : ",\n") << line;
      first = false;
    }
    const std::size_t n = std::min(buffer->count.load(std::memory_order_acquire),
                                   buffer->events.size());
    for (std::size_t i = 0; i < n; ++i) {
      const Event& e = buffer->events[i];
      line.clear();
      line += "{\"name\": \"";
      escape_into(line, e.name);
      // Timestamps in microseconds with nanosecond precision, per the
      // Chrome trace-event format.
      std::snprintf(buf, sizeof(buf),
                    "\", \"ph\": \"X\", \"cat\": \"sslic\", \"pid\": 1, "
                    "\"tid\": %d, \"ts\": %.3f, \"dur\": %.3f",
                    buffer->tid, static_cast<double>(e.begin_ns) / 1000.0,
                    static_cast<double>(e.end_ns - e.begin_ns) / 1000.0);
      line += buf;
      if (e.arg != kNoArg) {
        line += ", \"args\": {\"n\": ";
        line += std::to_string(e.arg);
        line += "}";
      }
      line += "}";
      os << (first ? "\n" : ",\n") << line;
      first = false;
    }
  }
  os << (first ? "" : "\n") << "]}\n";
}

bool write_file(const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  serialize(out);
  return static_cast<bool>(out);
}

void reset() {
  const std::lock_guard<std::mutex> lock(registry_mutex());
  for (ThreadBuffer* buffer : registry()) {
    buffer->count.store(0, std::memory_order_release);
    buffer->dropped.store(0, std::memory_order_relaxed);
    // last_end_ns is left alone: the monotonizer must never move backwards.
  }
}

std::uint64_t dropped_events() {
  const std::lock_guard<std::mutex> lock(registry_mutex());
  std::uint64_t total = 0;
  for (const ThreadBuffer* buffer : registry())
    total += buffer->dropped.load(std::memory_order_relaxed);
  return total;
}

#else  // !SSLIC_TRACING_ENABLED — stubs keeping every call site linkable

void arm(const std::string&) {}
void disarm() {}
bool armed() { return false; }
void set_armed(bool) {}
int detail_level() { return 0; }
void set_detail_level(int) {}
void set_thread_name(const std::string&) {}
void serialize(std::ostream& os) { os << "{\"traceEvents\": []}\n"; }
bool write_file(const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  serialize(out);
  return static_cast<bool>(out);
}
void reset() {}
std::uint64_t dropped_events() { return 0; }

#endif  // SSLIC_TRACING_ENABLED

}  // namespace sslic::trace

#include "common/thread_pool.h"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "common/check.h"
#include "common/trace.h"

namespace sslic {
namespace {

// True while this thread is inside a parallel region: set for the lifetime
// of a pool worker, and transiently on the calling thread while it drains
// chunks of its own job. Guards nested calls against reentering the
// single-job Impl state.
thread_local bool t_in_parallel = false;

}  // namespace

struct ThreadPool::Impl {
  // One outstanding job at a time; run_chunks is a blocking call, so the
  // state is reused across jobs and guarded by `mutex`. `job_mutex` is held
  // for a whole job: a second external thread submitting concurrently
  // fails the try_lock and runs its chunks serially on itself instead
  // (e.g. the video pipeline's conversion thread overlapping a clustering
  // job that owns the pool).
  std::mutex job_mutex;
  std::mutex mutex;
  std::condition_variable work_ready;
  std::condition_variable work_done;
  std::uint64_t generation = 0;  // bumped per job; workers wait for a bump
  bool shutting_down = false;

  ChunkFn fn;  // non-owning; valid while the submitting run_chunks blocks
  std::size_t num_chunks = 0;
  std::atomic<std::size_t> next_chunk{0};
  std::size_t done_chunks = 0;   // guarded by mutex
  std::size_t busy_workers = 0;  // workers currently inside drain(); guarded
  std::atomic<bool> failed{false};
  std::exception_ptr exception;  // first failure, guarded by mutex

  std::vector<std::thread> workers;

  // Telemetry slots, one per thread (slot 0 = the participating caller),
  // cache-line padded so workers never contend on each other's counters.
  // Relaxed atomics: these are statistics, not synchronization.
  struct alignas(64) StatSlot {
    std::atomic<std::uint64_t> chunks{0};
    std::atomic<std::uint64_t> jobs{0};
    std::atomic<std::uint64_t> busy_ns{0};
  };
  std::unique_ptr<StatSlot[]> stat_slots;
  std::atomic<std::uint64_t> jobs_submitted{0};

  // Timed, traced drain: every thread's share of a job becomes one
  // "pool.drain" span (so a trace shows worker occupancy per job) and one
  // busy-time/chunk-count update in its stat slot.
  std::size_t drain_with_stats(std::size_t slot) {
    const std::uint64_t t0 = trace::now_ns();
    std::size_t completed;
    {
      SSLIC_TRACE_SCOPE("pool.drain");
      completed = drain();
    }
    StatSlot& stats = stat_slots[slot];
    stats.busy_ns.fetch_add(trace::now_ns() - t0, std::memory_order_relaxed);
    stats.chunks.fetch_add(completed, std::memory_order_relaxed);
    stats.jobs.fetch_add(1, std::memory_order_relaxed);
    return completed;
  }

  // Claims and runs chunks until the job is exhausted; returns the number
  // of chunks this thread completed (including abandoned ones — a chunk
  // skipped after a failure still counts toward completion so the caller's
  // wait terminates).
  std::size_t drain() {
    std::size_t completed = 0;
    for (;;) {
      const std::size_t c = next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (c >= num_chunks) break;
      if (!failed.load(std::memory_order_relaxed)) {
        try {
          fn(c);
        } catch (...) {
          bool expected = false;
          if (failed.compare_exchange_strong(expected, true)) {
            const std::lock_guard<std::mutex> lock(mutex);
            exception = std::current_exception();
          }
        }
      }
      ++completed;
    }
    return completed;
  }

  // A job is complete only when every chunk ran AND every worker has left
  // drain() — otherwise a straggler could observe the next job's freshly
  // reset counters mid-claim and double-run a chunk.
  void worker_loop(std::size_t slot) {
    t_in_parallel = true;
    trace::set_thread_name("sslic-worker-" + std::to_string(slot));
    std::uint64_t seen_generation = 0;
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(mutex);
        work_ready.wait(lock, [&] {
          return shutting_down || generation != seen_generation;
        });
        if (shutting_down) return;
        seen_generation = generation;
        busy_workers += 1;
      }
      const std::size_t completed = drain_with_stats(slot);
      {
        const std::lock_guard<std::mutex> lock(mutex);
        done_chunks += completed;
        busy_workers -= 1;
        // Notify whenever the last worker leaves drain(): the caller waits
        // for job completion, and the *next* run_chunks waits for stragglers
        // before recycling the job state — both key off busy_workers == 0.
        if (busy_workers == 0) work_done.notify_all();
      }
    }
  }
};

ThreadPool::ThreadPool(int threads) : threads_(std::max(1, threads)) {
  if (threads_ == 1) return;
  impl_ = new Impl;
  impl_->stat_slots =
      std::make_unique<Impl::StatSlot[]>(static_cast<std::size_t>(threads_));
  impl_->workers.reserve(static_cast<std::size_t>(threads_ - 1));
  for (int i = 0; i < threads_ - 1; ++i) {
    const auto slot = static_cast<std::size_t>(i + 1);
    impl_->workers.emplace_back([this, slot] { impl_->worker_loop(slot); });
  }
}

ThreadPool::~ThreadPool() {
  if (impl_ == nullptr) return;
  {
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->shutting_down = true;
  }
  impl_->work_ready.notify_all();
  for (auto& worker : impl_->workers) worker.join();
  delete impl_;
}

void ThreadPool::run_chunks(std::size_t num_chunks, ChunkFn fn) {
  if (num_chunks == 0) return;
  // Serial fallbacks: one thread, one chunk, or a nested call from a chunk
  // body already running on this pool (a worker parking on work_done, or
  // the caller reentering run_chunks mid-drain, would deadlock or corrupt
  // the in-flight job state).
  if (impl_ == nullptr || num_chunks == 1 || t_in_parallel) {
    for (std::size_t c = 0; c < num_chunks; ++c) fn(c);
    return;
  }

  Impl& impl = *impl_;
  const std::unique_lock<std::mutex> job_lock(impl.job_mutex, std::try_to_lock);
  if (!job_lock.owns_lock()) {
    for (std::size_t c = 0; c < num_chunks; ++c) fn(c);
    return;
  }
  {
    std::unique_lock<std::mutex> lock(impl.mutex);
    // Late-waker guard: a worker that slept through the previous job can
    // still satisfy its wake predicate (generation advanced past what it
    // last saw), increment busy_workers, and enter drain() *after* that
    // job's caller has already returned. Its drain() exits immediately —
    // the old chunk counter is exhausted — but until it leaves, the job
    // state it reads must not be recycled, or it could claim chunks of the
    // new job against stale bounds (double-running chunks and overshooting
    // done_chunks). Wait for every straggler to leave before resetting.
    // Wake predicate and busy_workers increment share one critical section
    // with this reset, so a worker either drains before the reset or
    // observes the fully initialized new job.
    impl.work_done.wait(lock, [&] { return impl.busy_workers == 0; });
    impl.fn = fn;
    impl.num_chunks = num_chunks;
    impl.next_chunk.store(0, std::memory_order_relaxed);
    impl.done_chunks = 0;
    impl.failed.store(false, std::memory_order_relaxed);
    impl.exception = nullptr;
    impl.generation += 1;
  }
  impl.jobs_submitted.fetch_add(1, std::memory_order_relaxed);
  impl.work_ready.notify_all();

  t_in_parallel = true;
  const std::size_t completed = impl.drain_with_stats(0);
  t_in_parallel = false;
  {
    std::unique_lock<std::mutex> lock(impl.mutex);
    impl.done_chunks += completed;
    // >= rather than == as defense in depth: an overshot counter must never
    // turn a completed job into a hang.
    impl.work_done.wait(lock, [&] {
      return impl.done_chunks >= num_chunks && impl.busy_workers == 0;
    });
    impl.fn = ChunkFn{};
    if (impl.exception != nullptr) {
      std::exception_ptr e = impl.exception;
      impl.exception = nullptr;
      lock.unlock();
      std::rethrow_exception(e);
    }
  }
}

std::vector<ThreadPool::WorkerStats> ThreadPool::stats() const {
  std::vector<WorkerStats> result;
  if (impl_ == nullptr) return result;
  result.resize(static_cast<std::size_t>(threads_));
  for (std::size_t i = 0; i < result.size(); ++i) {
    const Impl::StatSlot& slot = impl_->stat_slots[i];
    result[i].chunks_executed = slot.chunks.load(std::memory_order_relaxed);
    result[i].jobs_participated = slot.jobs.load(std::memory_order_relaxed);
    result[i].busy_ns = slot.busy_ns.load(std::memory_order_relaxed);
  }
  return result;
}

std::uint64_t ThreadPool::jobs_run() const {
  return impl_ == nullptr
             ? 0
             : impl_->jobs_submitted.load(std::memory_order_relaxed);
}

bool ThreadPool::in_parallel_region() { return t_in_parallel; }

int ThreadPool::default_threads() {
  if (const char* env = std::getenv("SSLIC_THREADS")) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && parsed >= 1 && parsed <= 1024)
      return static_cast<int>(parsed);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

namespace {

std::mutex g_global_mutex;
std::unique_ptr<ThreadPool> g_global_pool;

}  // namespace

ThreadPool& ThreadPool::global() {
  const std::lock_guard<std::mutex> lock(g_global_mutex);
  if (g_global_pool == nullptr)
    g_global_pool = std::make_unique<ThreadPool>(default_threads());
  return *g_global_pool;
}

void ThreadPool::set_global_threads(int threads) {
  SSLIC_CHECK_MSG(!t_in_parallel,
                  "set_global_threads called from inside a parallel region");
  const std::lock_guard<std::mutex> lock(g_global_mutex);
  if (g_global_pool != nullptr && g_global_pool->impl_ != nullptr) {
    // Destroying the live pool invalidates references other threads got
    // from global(). t_in_parallel only covers the calling thread, so also
    // require that no job is in flight anywhere: job_mutex is held for a
    // job's whole duration, making try_lock a reliable in-flight probe.
    // (Best effort — callers must still resize only at quiescent points,
    // e.g. CLI parsing before any concurrent pool use.)
    const std::unique_lock<std::mutex> in_flight(
        g_global_pool->impl_->job_mutex, std::try_to_lock);
    SSLIC_CHECK_MSG(in_flight.owns_lock(),
                    "set_global_threads called while a pool job is in flight");
  }
  g_global_pool =
      std::make_unique<ThreadPool>(threads <= 0 ? default_threads() : threads);
}

namespace detail {

std::size_t default_for_chunks(std::int64_t range) {
  if (range <= 1) return static_cast<std::size_t>(std::max<std::int64_t>(range, 0));
  const int threads = ThreadPool::global().threads();
  if (threads <= 1) return 1;
  const auto target = static_cast<std::size_t>(threads) * 4;
  return std::min(static_cast<std::size_t>(range), target);
}

}  // namespace detail

}  // namespace sslic

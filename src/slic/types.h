// Shared types of the SLIC algorithm family (paper Sections 2-3).
#pragma once

#include <functional>
#include <vector>

#include "image/image.h"
#include "slic/subset_schedule.h"

namespace sslic {

/// A 5-D superpixel cluster center [L, a, b, x, y] (paper Section 2).
struct ClusterCenter {
  double L = 0.0;
  double a = 0.0;
  double b = 0.0;
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const ClusterCenter&, const ClusterCenter&) = default;
};

/// Which elements are subsampled between iterations (paper Section 3).
enum class Perspective {
  kPixel,   // PPA: round-robin subsets of *pixels* update all centers
  kCenter,  // CPA: round-robin subsets of *centers* are updated
};

/// Algorithm parameters shared by every segmenter in the family.
struct SlicParams {
  /// Requested number of superpixels K. The grid initializer may place a
  /// slightly different count (nx*ny) to tile the image evenly.
  int num_superpixels = 900;

  /// Compactness weight m of Eq. 5 (1..40 typical; 10 default).
  double compactness = 10.0;

  /// Maximum number of iterations. For subsampled variants this counts
  /// subset iterations (each touching ratio*N pixels), so `1/ratio`
  /// iterations perform one full-image sweep.
  int max_iterations = 10;

  /// Mean per-center movement (pixels, L1 over x/y) below which iteration
  /// stops. <= 0 disables the convergence test (fixed iteration count, as
  /// the accelerator FSM does).
  double convergence_threshold = 0.0;

  /// Fraction of elements (pixels for PPA, centers for CPA) processed per
  /// iteration: 1.0 = original SLIC, 0.5 = S-SLIC(0.5), 0.25 = S-SLIC(0.25).
  double subsample_ratio = 1.0;

  /// How the pixel subsets are shaped (PPA only): dithered (statistically
  /// uniform, the default) or row-interleaved (DRAM-burst friendly — the
  /// pattern the accelerator's bandwidth saving relies on).
  SubsetPattern subset_pattern = SubsetPattern::kDithered;

  /// Move each initial center to the 3x3-neighbourhood gradient minimum
  /// (paper Section 2). The accelerator omits this (static tiling).
  bool perturb_centers = true;

  /// Run the connectivity-enforcement post-pass (paper Section 2).
  bool enforce_connectivity = true;

  /// Preemptive-SLIC-style extension (paper Section 8): freeze centers
  /// whose movement stayed below `freeze_threshold` for two consecutive
  /// updates and skip tiles whose candidate centers are all frozen.
  bool preemptive = false;
  double freeze_threshold = 0.1;
};

/// Per-iteration trace entry (drives the Fig. 2 quality-vs-time curves and
/// the convergence tests).
struct IterationStats {
  int iteration = 0;
  double center_movement = 0.0;   ///< mean L1 (x,y) movement of updated centers
  std::size_t pixels_visited = 0; ///< pixels whose assignment was recomputed
  double elapsed_ms = 0.0;        ///< wall time of this iteration (callbacks excluded)
};

/// Segmentation result.
struct Segmentation {
  LabelImage labels;
  std::vector<ClusterCenter> centers;
  int iterations_run = 0;
  std::vector<IterationStats> trace;
};

/// Observer invoked after each iteration with the in-progress labelling.
/// Time spent inside the callback is excluded from the recorded iteration
/// times. `labels` is valid only for the duration of the call.
using IterationCallback =
    std::function<void(const IterationStats& stats, const LabelImage& labels,
                       const std::vector<ClusterCenter>& centers)>;

}  // namespace sslic

// NEON (AArch64 Advanced SIMD) backend: 2 f64 lanes / 4 i32 lanes.
// vmulq_f64/vaddq_f64 are plain unfused IEEE operations and the TU builds
// with -ffp-contract=off, so the multiply/add sequence matches the scalar
// reference bit for bit. The widening vmull_s32 + arithmetic shift + narrow
// reproduces the scalar (int64)weight * ds2 >> 8 truncated to int32.
#include <arm_neon.h>

#include <cstring>

#include "slic/assign_kernels_impl.h"

namespace sslic::kernels {
namespace {

struct NeonBackend {
  static constexpr int kLanesF64 = 2;
  static constexpr int kLanesI32 = 4;
  using VD = float64x2_t;
  using VL = int32x2_t;  // 2 labels
  using MD = uint64x2_t;
  using VI = int32x4_t;
  using MI = uint32x4_t;

  static VD load_f32(const float* p) { return vcvt_f64_f32(vld1_f32(p)); }
  static VD loadu_f64(const double* p) { return vld1q_f64(p); }
  static void storeu_f64(double* p, VD v) { vst1q_f64(p, v); }
  static VD set1_f64(double v) { return vdupq_n_f64(v); }
  static VD iota_f64(double base) {
    const VD ramp = vcombine_f64(vdup_n_f64(0.0), vdup_n_f64(1.0));
    return vaddq_f64(vdupq_n_f64(base), ramp);
  }
  static VD add(VD a, VD b) { return vaddq_f64(a, b); }
  static VD sub(VD a, VD b) { return vsubq_f64(a, b); }
  static VD mul(VD a, VD b) { return vmulq_f64(a, b); }
  static MD cmplt_f64(VD a, VD b) { return vcltq_f64(a, b); }
  static VD select_f64(MD m, VD a, VD b) { return vbslq_f64(m, a, b); }
  static VL loadu_lab(const std::int32_t* p) { return vld1_s32(p); }
  static void storeu_lab(std::int32_t* p, VL v) { vst1_s32(p, v); }
  static VL set1_lab(std::int32_t v) { return vdup_n_s32(v); }
  static VL select_lab(MD m, VL a, VL b) {
    return vbsl_s32(vmovn_u64(m), a, b);
  }
  static MD mask_f64_from_bytes(const std::uint8_t* p) {
    return vcombine_u64(vcreate_u64(p[0] != 0 ? ~0ULL : 0ULL),
                        vcreate_u64(p[1] != 0 ? ~0ULL : 0ULL));
  }

  static VI load_u8_i32(const std::uint8_t* p) {
    std::uint32_t packed;
    std::memcpy(&packed, p, sizeof(packed));
    const uint16x8_t w16 = vmovl_u8(vcreate_u8(packed));
    return vreinterpretq_s32_u32(vmovl_u16(vget_low_u16(w16)));
  }
  static VI loadu_i32(const std::int32_t* p) { return vld1q_s32(p); }
  static void storeu_i32(std::int32_t* p, VI v) { vst1q_s32(p, v); }
  static VI set1_i32(std::int32_t v) { return vdupq_n_s32(v); }
  static VI iota_i32(std::int32_t base) {
    static const std::int32_t ramp[4] = {0, 1, 2, 3};
    return vaddq_s32(vdupq_n_s32(base), vld1q_s32(ramp));
  }
  static VI add_i32(VI a, VI b) { return vaddq_s32(a, b); }
  static VI sub_i32(VI a, VI b) { return vsubq_s32(a, b); }
  static VI mul_i32(VI a, VI b) { return vmulq_s32(a, b); }
  static VI mulw_shr8(VI v, std::int32_t weight) {
    const int32x2_t w = vdup_n_s32(weight);
    const int64x2_t lo = vshrq_n_s64(vmull_s32(vget_low_s32(v), w), 8);
    const int64x2_t hi = vshrq_n_s64(vmull_s32(vget_high_s32(v), w), 8);
    return vcombine_s32(vmovn_s64(lo), vmovn_s64(hi));
  }
  static VI sra_i32(VI v, int count) {
    return vshlq_s32(v, vdupq_n_s32(-count));
  }
  static VI min_i32(VI a, VI b) { return vminq_s32(a, b); }
  static MI cmplt_i32(VI a, VI b) { return vcltq_s32(a, b); }
  static VI select_i32(MI m, VI a, VI b) { return vbslq_s32(m, a, b); }
  static MI mask_i32_from_bytes(const std::uint8_t* p) {
    return vcgtq_s32(load_u8_i32(p), vdupq_n_s32(0));
  }
  static bool all_eq_i32(VI a, VI b) {
    // armv7-safe all-lanes reduction (no vminvq on 32-bit targets).
    const uint32x4_t eq = vceqq_u32(vreinterpretq_u32_s32(a),
                                    vreinterpretq_u32_s32(b));
    uint32x2_t r = vand_u32(vget_low_u32(eq), vget_high_u32(eq));
    r = vand_u32(r, vrev64_u32(r));
    return vget_lane_u32(r, 0) == 0xFFFFFFFFu;
  }
};

}  // namespace

const KernelTable& neon_table() {
  static const KernelTable table = make_table<NeonBackend>();
  return table;
}

}  // namespace sslic::kernels

#include "common/rng.h"

#include <cmath>

#include "common/check.h"

namespace sslic {
namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  SSLIC_CHECK(bound > 0);
  // Lemire-style rejection to remove modulo bias.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

int Rng::next_int(int lo, int hi) {
  SSLIC_CHECK(lo <= hi);
  const std::uint64_t span =
      static_cast<std::uint64_t>(static_cast<std::int64_t>(hi) - lo) + 1u;
  return lo + static_cast<int>(next_below(span));
}

double Rng::next_double() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::next_double(double lo, double hi) {
  SSLIC_CHECK(lo <= hi);
  return lo + (hi - lo) * next_double();
}

double Rng::next_gaussian() {
  if (have_cached_gaussian_) {
    have_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box–Muller; guard against log(0).
  double u1 = next_double();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = next_double();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.14159265358979323846 * u2;
  cached_gaussian_ = r * std::sin(theta);
  have_cached_gaussian_ = true;
  return r * std::cos(theta);
}

bool Rng::next_bool(double p) { return next_double() < p; }

Rng Rng::fork() { return Rng(next_u64() ^ 0x9e3779b97f4a7c15ull); }

}  // namespace sslic

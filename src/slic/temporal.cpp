#include "slic/temporal.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/stopwatch.h"
#include "slic/slic_baseline.h"
#include "slic/subset_schedule.h"

namespace sslic {

TemporalSlic::TemporalSlic(SlicParams params, DataWidth data_width,
                           int warm_iterations)
    : params_(params), data_width_(data_width), warm_iterations_(warm_iterations) {
  SSLIC_CHECK(warm_iterations >= 0);
  if (warm_iterations_ == 0) {
    const int subsets =
        SubsetSchedule::from_ratio(params_.subsample_ratio).count();
    warm_iterations_ = std::max(subsets, params_.max_iterations / 2);
  }
}

const Segmentation& TemporalSlic::next_frame(const RgbImage& frame,
                                             Instrumentation* instrumentation,
                                             PhaseTimer* phases) {
  const bool can_warm = has_state() && frame.width() == state_width_ &&
                        frame.height() == state_height_;

  {
    Stopwatch watch;
    srgb_to_lab(frame, lab_);
    if (phases != nullptr)
      phases->add(CpaSlic::kPhaseColorConversion, watch.elapsed_ms());
  }

  if (can_warm) {
    SlicParams warm_params = params_;
    warm_params.max_iterations = warm_iterations_;
    const PpaSlic segmenter(warm_params, data_width_);
    segmenter.segment_lab_warm_into(lab_, previous_centers_, result_, scratch_,
                                    {}, instrumentation, phases);
  } else {
    const PpaSlic segmenter(params_, data_width_);
    segmenter.segment_lab_into(lab_, result_, scratch_, {}, instrumentation,
                               phases);
  }

  // Same center count in steady state: copy-assign reuses the storage.
  previous_centers_ = result_.centers;
  state_width_ = frame.width();
  state_height_ = frame.height();
  return result_;
}

}  // namespace sslic

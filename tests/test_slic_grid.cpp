// Tests for SLIC infrastructure: center grid, static 9-candidate tiling,
// subset schedules, and connectivity enforcement.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "common/check.h"
#include "slic/connectivity.h"
#include "slic/grid.h"
#include "slic/subset_schedule.h"

namespace sslic {
namespace {

// --------------------------------------------------------------- CenterGrid

TEST(CenterGrid, SpacingIsSqrtNOverK) {
  const CenterGrid grid(100, 100, 25);
  EXPECT_DOUBLE_EQ(grid.spacing(), std::sqrt(10000.0 / 25.0));
  EXPECT_EQ(grid.nx(), 5);
  EXPECT_EQ(grid.ny(), 5);
  EXPECT_EQ(grid.num_centers(), 25);
}

TEST(CenterGrid, HdAt5000MatchesPaperGeometry) {
  // 1920x1080 with K = 5000: S = 20.36, 94x53 grid (Table 4 setting).
  const CenterGrid grid(1920, 1080, 5000);
  EXPECT_NEAR(grid.spacing(), 20.36, 0.01);
  EXPECT_EQ(grid.nx(), 94);
  EXPECT_EQ(grid.ny(), 53);
  EXPECT_NEAR(grid.num_centers(), 5000, 50);
}

TEST(CenterGrid, CellLookupCoversImage) {
  const CenterGrid grid(97, 53, 30);  // awkward sizes
  for (int y = 0; y < 53; ++y) {
    for (int x = 0; x < 97; ++x) {
      const int gx = grid.cell_x(x);
      const int gy = grid.cell_y(y);
      EXPECT_GE(gx, 0);
      EXPECT_LT(gx, grid.nx());
      EXPECT_GE(gy, 0);
      EXPECT_LT(gy, grid.ny());
    }
  }
}

TEST(CenterGrid, CellLookupMonotone) {
  const CenterGrid grid(100, 60, 24);
  for (int x = 1; x < 100; ++x) EXPECT_GE(grid.cell_x(x), grid.cell_x(x - 1));
  for (int y = 1; y < 60; ++y) EXPECT_GE(grid.cell_y(y), grid.cell_y(y - 1));
}

TEST(CenterGrid, CenterPositionsInsideImage) {
  const CenterGrid grid(64, 48, 12);
  for (int gy = 0; gy < grid.ny(); ++gy) {
    for (int gx = 0; gx < grid.nx(); ++gx) {
      EXPECT_GT(grid.center_pos_x(gx), 0.0);
      EXPECT_LT(grid.center_pos_x(gx), 64.0);
      EXPECT_GT(grid.center_pos_y(gy), 0.0);
      EXPECT_LT(grid.center_pos_y(gy), 48.0);
    }
  }
}

TEST(CenterGrid, TinyImageStillValid) {
  const CenterGrid grid(16, 16, 1);
  EXPECT_EQ(grid.num_centers(), 1);
  EXPECT_EQ(grid.cell_x(15), 0);
}

// ------------------------------------------------------------ seed_centers

TEST(SeedCenters, SamplesColorsAtCenters) {
  LabImage lab(40, 40, LabF{10.0f, 0.0f, 0.0f});
  const CenterGrid grid(40, 40, 4);
  const auto centers = seed_centers(grid, lab, /*perturb=*/false);
  ASSERT_EQ(centers.size(), 4u);
  for (const auto& c : centers) {
    EXPECT_DOUBLE_EQ(c.L, 10.0);
    EXPECT_GE(c.x, 0.0);
    EXPECT_LT(c.x, 40.0);
  }
}

TEST(SeedCenters, PerturbationMovesOffEdges) {
  // Place a step edge so the nominal center position sits on a
  // high-gradient pixel; perturbation must move it to the low-gradient
  // side of its 3x3 neighbourhood.
  LabImage lab(30, 30, LabF{20.0f, 0.0f, 0.0f});
  const CenterGrid grid(30, 30, 1);
  const int cx = static_cast<int>(grid.center_pos_x(0));
  for (int y = 0; y < 30; ++y)
    for (int x = cx; x < 30; ++x) lab(x, y) = {90.0f, 0.0f, 0.0f};
  const auto centers = seed_centers(grid, lab, /*perturb=*/true);
  // Gradient is zero two columns away from the edge but large at cx-1..cx.
  EXPECT_NE(static_cast<int>(centers[0].x), cx);
  EXPECT_NE(static_cast<int>(centers[0].x), cx - 1);
}

TEST(SeedCenters, PerturbationBoundedTo3x3) {
  LabImage lab(60, 60);
  for (int y = 0; y < 60; ++y)
    for (int x = 0; x < 60; ++x)
      lab(x, y) = {static_cast<float>((x * 7 + y * 13) % 50), 0.0f, 0.0f};
  const CenterGrid grid(60, 60, 9);
  const auto plain = seed_centers(grid, lab, false);
  const auto perturbed = seed_centers(grid, lab, true);
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_LE(std::abs(plain[i].x - perturbed[i].x), 1.0);
    EXPECT_LE(std::abs(plain[i].y - perturbed[i].y), 1.0);
  }
}

// ----------------------------------------------------------- candidate map

TEST(CandidateMap, InteriorTileHas9DistinctNeighbours) {
  const CenterGrid grid(100, 100, 25);  // 5x5 grid
  const auto map = build_candidate_map(grid);
  const CandidateList& mid = map[static_cast<std::size_t>(grid.center_index(2, 2))];
  std::set<std::int32_t> unique(mid.begin(), mid.end());
  EXPECT_EQ(unique.size(), 9u);
  // Must contain the tile's own center and all 8 neighbours.
  EXPECT_TRUE(unique.count(grid.center_index(2, 2)));
  EXPECT_TRUE(unique.count(grid.center_index(1, 1)));
  EXPECT_TRUE(unique.count(grid.center_index(3, 3)));
}

TEST(CandidateMap, CornerTileClampsToDuplicates) {
  const CenterGrid grid(100, 100, 25);
  const auto map = build_candidate_map(grid);
  const CandidateList& corner =
      map[static_cast<std::size_t>(grid.center_index(0, 0))];
  std::set<std::int32_t> unique(corner.begin(), corner.end());
  EXPECT_EQ(unique.size(), 4u);  // clamped: only 2x2 distinct neighbours
  EXPECT_TRUE(unique.count(grid.center_index(0, 0)));
}

TEST(CandidateMap, EveryCandidateValid) {
  const CenterGrid grid(97, 53, 30);
  const auto map = build_candidate_map(grid);
  for (const auto& list : map) {
    for (const auto c : list) {
      EXPECT_GE(c, 0);
      EXPECT_LT(c, grid.num_centers());
    }
  }
}

TEST(CandidateMap, CandidatesCoverCpaReach) {
  // Property behind "9 is the minimum number of nearest centers" (Sec 4.2):
  // the initial center of every pixel's own grid cell and all centers whose
  // 2Sx2S window could contain the pixel are among its 9 candidates — the
  // window reaches at most one grid cell away.
  const CenterGrid grid(120, 90, 20);
  const auto map = build_candidate_map(grid);
  for (int y = 0; y < 90; y += 7) {
    for (int x = 0; x < 120; x += 7) {
      const int gx = grid.cell_x(x);
      const int gy = grid.cell_y(y);
      const CandidateList& list =
          map[static_cast<std::size_t>(grid.center_index(gx, gy))];
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
          const int nx = std::clamp(gx + dx, 0, grid.nx() - 1);
          const int ny = std::clamp(gy + dy, 0, grid.ny() - 1);
          const std::int32_t c = grid.center_index(nx, ny);
          EXPECT_NE(std::find(list.begin(), list.end(), c), list.end());
        }
      }
    }
  }
}

TEST(InitialLabels, MatchOwnGridCell) {
  const CenterGrid grid(50, 30, 6);
  const LabelImage labels = initial_labels(grid);
  for (int y = 0; y < 30; ++y)
    for (int x = 0; x < 50; ++x)
      EXPECT_EQ(labels(x, y), grid.center_index(grid.cell_x(x), grid.cell_y(y)));
}

// --------------------------------------------------------- SubsetSchedule

TEST(SubsetSchedule, RatioOneIsAlwaysActive) {
  const SubsetSchedule schedule = SubsetSchedule::from_ratio(1.0);
  EXPECT_EQ(schedule.count(), 1);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(schedule.active(3, 4, i));
}

TEST(SubsetSchedule, HalfIsCheckerboard) {
  const SubsetSchedule schedule = SubsetSchedule::from_ratio(0.5);
  EXPECT_EQ(schedule.count(), 2);
  EXPECT_NE(schedule.subset_of(0, 0), schedule.subset_of(1, 0));
  EXPECT_NE(schedule.subset_of(0, 0), schedule.subset_of(0, 1));
  EXPECT_EQ(schedule.subset_of(0, 0), schedule.subset_of(1, 1));
}

TEST(SubsetSchedule, QuarterIsBayer2x2) {
  const SubsetSchedule schedule = SubsetSchedule::from_ratio(0.25);
  EXPECT_EQ(schedule.count(), 4);
  std::set<int> block;
  block.insert(schedule.subset_of(0, 0));
  block.insert(schedule.subset_of(1, 0));
  block.insert(schedule.subset_of(0, 1));
  block.insert(schedule.subset_of(1, 1));
  EXPECT_EQ(block.size(), 4u);  // every 2x2 block holds all four subsets
}

TEST(SubsetSchedule, NonReciprocalRatioThrows) {
  EXPECT_THROW(SubsetSchedule::from_ratio(0.3), ContractViolation);
  EXPECT_THROW(SubsetSchedule::from_ratio(0.0), ContractViolation);
  EXPECT_THROW(SubsetSchedule::from_ratio(1.5), ContractViolation);
}

// The round-robin coverage property the paper's convergence argument needs:
// every pixel is visited exactly once per `count` consecutive iterations,
// and subsets are equal-sized to within a pixel row.
class SubsetCoverageSweep : public ::testing::TestWithParam<int> {};

TEST_P(SubsetCoverageSweep, EveryPixelVisitedOncePerRound) {
  const int count = GetParam();
  const SubsetSchedule schedule{count};
  const int w = 37, h = 23;
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      int visits = 0;
      for (int iter = 0; iter < count; ++iter)
        visits += schedule.active(x, y, iter);
      EXPECT_EQ(visits, 1) << "pixel " << x << ',' << y;
    }
  }
}

TEST_P(SubsetCoverageSweep, SubsetsBalanced) {
  const int count = GetParam();
  const SubsetSchedule schedule{count};
  const int w = 64, h = 64;
  std::vector<int> size(static_cast<std::size_t>(count), 0);
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w; ++x)
      size[static_cast<std::size_t>(schedule.subset_of(x, y))] += 1;
  const int expected = w * h / count;
  for (const int s : size) EXPECT_NEAR(s, expected, expected / 10.0);
}

TEST_P(SubsetCoverageSweep, SubsetsSpatiallyUniform) {
  // Each subset must appear in every 8x8 neighbourhood — the unbiased-
  // center-estimate precondition.
  const int count = GetParam();
  const SubsetSchedule schedule{count};
  for (int by = 0; by < 32; by += 8) {
    for (int bx = 0; bx < 32; bx += 8) {
      std::set<int> present;
      for (int y = by; y < by + 8; ++y)
        for (int x = bx; x < bx + 8; ++x) present.insert(schedule.subset_of(x, y));
      EXPECT_EQ(static_cast<int>(present.size()), count);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Counts, SubsetCoverageSweep,
                         ::testing::Values(1, 2, 3, 4, 8));

// ------------------------------------------------- row-interleaved pattern

TEST(SubsetScheduleRows, WholeRowsShareSubset) {
  const SubsetSchedule schedule(4, SubsetPattern::kRowInterleaved);
  for (int y = 0; y < 16; ++y) {
    const int expected = schedule.subset_of(0, y);
    for (int x = 1; x < 24; ++x) EXPECT_EQ(schedule.subset_of(x, y), expected);
    EXPECT_EQ(expected, y % 4);
  }
  EXPECT_EQ(schedule.pattern_kind(), SubsetPattern::kRowInterleaved);
}

TEST(SubsetScheduleRows, CoverageOncePerRound) {
  const SubsetSchedule schedule(3, SubsetPattern::kRowInterleaved);
  for (int y = 0; y < 9; ++y) {
    int visits = 0;
    for (int iter = 0; iter < 3; ++iter) visits += schedule.active(5, y, iter);
    EXPECT_EQ(visits, 1);
  }
}

TEST(SubsetScheduleRows, CountOneIgnoresPattern) {
  const SubsetSchedule schedule(1, SubsetPattern::kRowInterleaved);
  EXPECT_TRUE(schedule.active(3, 7, 0));
  EXPECT_EQ(schedule.pattern_kind(), SubsetPattern::kDithered);  // kAll
}

TEST(SubsetScheduleRows, DitheredDefaultUnchanged) {
  const SubsetSchedule schedule(2);
  EXPECT_EQ(schedule.pattern_kind(), SubsetPattern::kDithered);
  EXPECT_NE(schedule.subset_of(0, 0), schedule.subset_of(1, 0));
}

// ------------------------------------------------------------ connectivity

TEST(Connectivity, AlreadyConnectedIsRelabelledOnly) {
  LabelImage labels(8, 8, 0);
  for (int y = 4; y < 8; ++y)
    for (int x = 0; x < 8; ++x) labels(x, y) = 5;
  const ConnectivityResult result = enforce_connectivity(labels, 2);
  EXPECT_EQ(result.final_label_count, 2);
  EXPECT_EQ(result.components_merged, 0);
  EXPECT_TRUE(is_fully_connected(labels));
}

TEST(Connectivity, StrayFragmentAbsorbed) {
  LabelImage labels(16, 16, 0);
  labels(10, 10) = 7;  // single stray pixel of another label
  const ConnectivityResult result = enforce_connectivity(labels, 4);
  EXPECT_EQ(result.final_label_count, 1);
  EXPECT_EQ(result.components_merged, 1);
  EXPECT_EQ(result.pixels_moved, 1u);
  EXPECT_EQ(labels(10, 10), labels(0, 0));
}

TEST(Connectivity, LargeComponentsKept) {
  LabelImage labels(16, 16, 0);
  for (int y = 0; y < 16; ++y)
    for (int x = 8; x < 16; ++x) labels(x, y) = 1;
  const ConnectivityResult result = enforce_connectivity(labels, 2);
  EXPECT_EQ(result.final_label_count, 2);
  EXPECT_EQ(result.components_merged, 0);
}

TEST(Connectivity, DisconnectedSameLabelSplitOrMerged) {
  // Two blobs share label 0 but are disconnected; afterwards labels are
  // 4-connected components.
  LabelImage labels(20, 8, 1);
  for (int y = 0; y < 8; ++y) {
    labels(0, y) = 0;
    labels(19, y) = 0;
  }
  enforce_connectivity(labels, 60);  // tiny min size: keep everything
  EXPECT_TRUE(is_fully_connected(labels));
  EXPECT_NE(labels(0, 0), labels(19, 0));
}

TEST(Connectivity, OutputLabelsCompact) {
  LabelImage labels(24, 24);
  for (int y = 0; y < 24; ++y)
    for (int x = 0; x < 24; ++x) labels(x, y) = (x / 6) * 10 + (y / 6) * 100;
  const ConnectivityResult result = enforce_connectivity(labels, 16);
  std::set<std::int32_t> seen(labels.pixels().begin(), labels.pixels().end());
  EXPECT_EQ(static_cast<int>(seen.size()), result.final_label_count);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), result.final_label_count - 1);
}

TEST(IsFullyConnected, DetectsSplitComponents) {
  LabelImage labels(6, 1, 0);
  labels(2, 0) = 1;  // 0 0 1 0 0 0 -> label 0 split in two
  EXPECT_FALSE(is_fully_connected(labels));
}

TEST(IsFullyConnected, AcceptsSingleLabel) {
  const LabelImage labels(5, 5, 3);
  EXPECT_TRUE(is_fully_connected(labels));
}

}  // namespace
}  // namespace sslic

// Structure-of-arrays pixel layouts for the vectorized assignment kernels.
//
// The accelerator feeds its parallel distance datapath from *banked* planar
// scratch pads (one channel memory per Lab component, Fig. 4 / Section
// 4.3); the interleaved `LabImage` used by the reference algorithm path is
// the wrong shape for that access pattern on a CPU too — a SIMD lane wants
// `lanes` consecutive L values, not L/a/b triples. `LabPlanes` is the
// software analogue of the channel memories for the floating-point path:
// three planar float rasters split once per frame from the AoS image. The
// 8-bit fixed-point path already has its planar form (`Planar8`,
// image/image.h).
#pragma once

#include "image/image.h"

namespace sslic {

/// Three planar float rasters — L, a, b channel planes of one Lab frame.
struct LabPlanes {
  Image<float> L;
  Image<float> a;
  Image<float> b;

  LabPlanes() = default;
  LabPlanes(int width, int height) : L(width, height), a(width, height), b(width, height) {}

  [[nodiscard]] int width() const { return L.width(); }
  [[nodiscard]] int height() const { return L.height(); }
  [[nodiscard]] bool empty() const { return L.empty(); }
};

/// Splits an interleaved Lab image into planar channel planes (row-parallel;
/// a pure data-layout change — every float is copied bit-for-bit).
LabPlanes split_lab_planes(const LabImage& lab);

/// In-place variant: splits into `planes`, resizing only when the
/// dimensions change (allocation-free at steady state).
void split_lab_planes(const LabImage& lab, LabPlanes& planes);

}  // namespace sslic

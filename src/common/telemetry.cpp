#include "common/telemetry.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "common/alloc_counter.h"
#include "common/check.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"

namespace sslic::telemetry {

namespace {

void atomic_add(std::atomic<double>& target, double delta) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& target, double value) {
  double current = target.load(std::memory_order_relaxed);
  while (value < current &&
         !target.compare_exchange_weak(current, value,
                                       std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& target, double value) {
  double current = target.load(std::memory_order_relaxed);
  while (value > current &&
         !target.compare_exchange_weak(current, value,
                                       std::memory_order_relaxed)) {
  }
}

std::string escaped_name(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

std::string num(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

std::vector<double> exponential_buckets(double lo, double hi, int count) {
  SSLIC_CHECK(lo > 0.0 && hi > lo && count >= 2);
  std::vector<double> bounds(static_cast<std::size_t>(count));
  const double ratio = std::pow(hi / lo, 1.0 / (count - 1));
  double bound = lo;
  for (auto& b : bounds) {
    b = bound;
    bound *= ratio;
  }
  bounds.back() = hi;  // close the range exactly despite rounding
  return bounds;
}

std::vector<double> linear_buckets(double lo, double step, int count) {
  SSLIC_CHECK(step > 0.0 && count >= 1);
  std::vector<double> bounds(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i)
    bounds[static_cast<std::size_t>(i)] = lo + step * i;
  return bounds;
}

const std::vector<double>& default_latency_buckets_ms() {
  static const std::vector<double> bounds =
      exponential_buckets(0.01, 10000.0, 128);
  return bounds;
}

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)),
      buckets_(new std::atomic<std::uint64_t>[bounds_.size() + 1]),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  SSLIC_CHECK(!bounds_.empty());
  SSLIC_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()));
  for (std::size_t i = 0; i + 1 < bounds_.size(); ++i)
    SSLIC_CHECK(bounds_[i] < bounds_[i + 1]);
  for (std::size_t i = 0; i <= bounds_.size(); ++i)
    buckets_[i].store(0, std::memory_order_relaxed);
}

void Histogram::record(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const auto bucket = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, value);
  atomic_min(min_, value);
  atomic_max(max_, value);
}

double Histogram::sum() const { return sum_.load(std::memory_order_relaxed); }

double Histogram::mean() const {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

double Histogram::min() const {
  return count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
}

double Histogram::max() const {
  return count() == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
}

double Histogram::percentile(double p) const {
  SSLIC_CHECK(p >= 0.0 && p <= 100.0);
  // Snapshot the buckets once so concurrent records cannot tear the
  // cumulative walk.
  std::vector<std::uint64_t> counts(bounds_.size() + 1);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) return 0.0;
  const double lo_observed = min_.load(std::memory_order_relaxed);
  const double hi_observed = max_.load(std::memory_order_relaxed);

  // Nearest-rank with linear interpolation inside the winning bucket.
  const double rank = p / 100.0 * static_cast<double>(total);
  const double target = std::max(1.0, std::min(static_cast<double>(total), rank));
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < counts.size(); ++b) {
    if (counts[b] == 0) continue;
    const auto before = static_cast<double>(cumulative);
    cumulative += counts[b];
    if (static_cast<double>(cumulative) < target) continue;
    double lower = b == 0 ? lo_observed : bounds_[b - 1];
    double upper = b < bounds_.size() ? bounds_[b] : hi_observed;
    lower = std::clamp(lower, lo_observed, hi_observed);
    upper = std::clamp(upper, lo_observed, hi_observed);
    const double fraction = (target - before) / static_cast<double>(counts[b]);
    return lower + fraction * (upper - lower);
  }
  return hi_observed;  // unreachable: total > 0 guarantees a winning bucket
}

void LogSink::write(const MetricSample& sample) {
  if (sample.kind == MetricSample::Kind::kHistogram) {
    SSLIC_INFO(sample.name << " count=" << sample.count << " mean="
                           << sample.value << " p50=" << sample.p50
                           << " p95=" << sample.p95 << " p99=" << sample.p99);
  } else {
    SSLIC_INFO(sample.name << " = " << sample.value);
  }
}

void JsonSink::write(const MetricSample& sample) {
  if (!body_.empty()) body_ += ",\n";
  body_ += "  \"" + escaped_name(sample.name) + "\": ";
  switch (sample.kind) {
    case MetricSample::Kind::kCounter:
      body_ += "{\"kind\": \"counter\", \"value\": " + num(sample.value) + "}";
      break;
    case MetricSample::Kind::kGauge:
      body_ += "{\"kind\": \"gauge\", \"value\": " + num(sample.value) + "}";
      break;
    case MetricSample::Kind::kHistogram:
      body_ += "{\"kind\": \"histogram\", \"count\": " +
               num(static_cast<double>(sample.count)) +
               ", \"sum\": " + num(sample.sum) + ", \"min\": " + num(sample.min) +
               ", \"max\": " + num(sample.max) + ", \"mean\": " + num(sample.value) +
               ", \"p50\": " + num(sample.p50) + ", \"p95\": " + num(sample.p95) +
               ", \"p99\": " + num(sample.p99) + "}";
      break;
  }
}

std::string JsonSink::text() const {
  return body_.empty() ? "{}" : "{\n" + body_ + "\n}";
}

namespace {

/// Prometheus metric names admit [a-zA-Z0-9_:] only; everything else
/// (the dots of the sslic.<unit>.<metric> convention) maps to '_'.
std::string prometheus_name(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

}  // namespace

void PrometheusSink::write(const MetricSample& sample) {
  const std::string name = prometheus_name(sample.name);
  switch (sample.kind) {
    case MetricSample::Kind::kCounter:
      body_ += "# TYPE " + name + " counter\n";
      body_ += name + " " + num(sample.value) + "\n";
      break;
    case MetricSample::Kind::kGauge:
      body_ += "# TYPE " + name + " gauge\n";
      body_ += name + " " + num(sample.value) + "\n";
      break;
    case MetricSample::Kind::kHistogram:
      body_ += "# TYPE " + name + " summary\n";
      body_ += name + "{quantile=\"0.5\"} " + num(sample.p50) + "\n";
      body_ += name + "{quantile=\"0.95\"} " + num(sample.p95) + "\n";
      body_ += name + "{quantile=\"0.99\"} " + num(sample.p99) + "\n";
      body_ += name + "_sum " + num(sample.sum) + "\n";
      body_ += name + "_count " + num(static_cast<double>(sample.count)) + "\n";
      break;
  }
}

Counter& MetricsRegistry::counter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const std::vector<double>& bounds) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(bounds);
  return *slot;
}

void MetricsRegistry::flush_to(TelemetrySink& sink) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, counter] : counters_) {
    MetricSample sample;
    sample.name = name;
    sample.kind = MetricSample::Kind::kCounter;
    sample.value = static_cast<double>(counter->value());
    sink.write(sample);
  }
  for (const auto& [name, gauge] : gauges_) {
    MetricSample sample;
    sample.name = name;
    sample.kind = MetricSample::Kind::kGauge;
    sample.value = gauge->value();
    sink.write(sample);
  }
  for (const auto& [name, histogram] : histograms_) {
    MetricSample sample;
    sample.name = name;
    sample.kind = MetricSample::Kind::kHistogram;
    sample.count = histogram->count();
    sample.sum = histogram->sum();
    sample.value = histogram->mean();
    sample.min = histogram->min();
    sample.max = histogram->max();
    sample.p50 = histogram->p50();
    sample.p95 = histogram->p95();
    sample.p99 = histogram->p99();
    sink.write(sample);
  }
}

std::string MetricsRegistry::export_prometheus() const {
  PrometheusSink sink;
  flush_to(sink);
  return sink.text();
}

void MetricsRegistry::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

void export_phase_timer(const PhaseTimer& timer, const std::string& unit,
                        MetricsRegistry& registry) {
  const std::string prefix = "sslic." + unit;
  for (const auto& [phase, ms] : timer.phases())
    registry.gauge(prefix + ".phase_ms." + phase).set(ms);
  registry.gauge(prefix + ".total_ms").set(timer.total_ms());
}

void export_thread_pool(const ThreadPool& pool, MetricsRegistry& registry) {
  registry.counter("sslic.pool.jobs").set(pool.jobs_run());
  registry.counter("sslic.pool.threads")
      .set(static_cast<std::uint64_t>(pool.threads()));
  const std::vector<ThreadPool::WorkerStats> stats = pool.stats();
  for (std::size_t i = 0; i < stats.size(); ++i) {
    const std::string prefix = "sslic.pool.worker." + std::to_string(i);
    registry.counter(prefix + ".chunks").set(stats[i].chunks_executed);
    registry.counter(prefix + ".jobs").set(stats[i].jobs_participated);
    registry.gauge(prefix + ".busy_ms")
        .set(static_cast<double>(stats[i].busy_ns) / 1e6);
  }
}

void export_allocations(MetricsRegistry& registry) {
  registry.counter("sslic.alloc.total").set(alloc_counter::allocations());
}

}  // namespace sslic::telemetry

// Reproduces paper Table 2: memory bandwidth and operation count per
// iteration for the Center Perspective Architecture (CPA) and the Pixel
// Perspective Architecture (PPA) at 1920x1080 with K = 5000, plus the
// Section-4.2 energy-model argument that picks the PPA.
#include <iostream>

#include "bench_common.h"
#include "hw/energy_model.h"
#include "slic/fusion.h"
#include "slic/slic_baseline.h"
#include "slic/subsampled.h"

int main(int argc, char** argv) {
  using namespace sslic;
  bench::BenchConfig config = bench::BenchConfig::parse(argc, argv);
  // Paper-model table: Table 2's 318 MB CPA figure counts the two-pass
  // update loop's image+label re-reads; the fused loop eliminates them
  // (measured in bench/fused_iteration). Pin the classic accounting.
  set_fusion(false);
  // Same reasoning for the assignment schedule: the row sweep's
  // window-based traffic charges are the paper's convention; the cluster
  // schedule's once-per-pixel accounting would skew the modelled bytes.
  set_assign_strategy(AssignStrategy::kRow);
  config.width = 1920;
  config.height = 1080;
  config.superpixels = 5000;
  config.images = 1;
  bench::banner("Table 2 — CPA vs PPA: memory traffic & operations (CPU, instrumented)",
                config);

  const GroundTruthImage gt =
      generate_synthetic(config.dataset_params(), config.seed);

  SlicParams params = config.slic_params();
  params.max_iterations = 1;
  params.enforce_connectivity = false;
  params.subsample_ratio = 1.0;

  Instrumentation cpa;
  (void)CpaSlic(params).segment(gt.image, {}, &cpa);
  Instrumentation ppa;
  (void)PpaSlic(params).segment(gt.image, {}, &ppa);

  const double n = static_cast<double>(config.width) * config.height;

  Table table("Per-iteration cost (measured vs paper)");
  table.set_header({"", "CPA", "(paper)", "PPA", "(paper)"});
  table.add_row({"Memory traffic / iter",
                 Table::si(cpa.traffic_bytes_per_iteration(), 0) + "B", "318MB",
                 Table::si(ppa.traffic_bytes_per_iteration(), 0) + "B", "100MB"});
  table.add_row({"Distance OPs / iter",
                 Table::si(cpa.distance_ops_per_iteration(), 0), "58M",
                 Table::si(ppa.distance_ops_per_iteration(), 0), "130M"});
  table.add_row({"Distance evals / pixel",
                 Table::num(static_cast<double>(cpa.ops.distance_evals) / n, 2),
                 "~4",
                 Table::num(static_cast<double>(ppa.ops.distance_evals) / n, 2),
                 "9"});
  table.add_note("conventions documented in slic/instrumentation.h (7 ops per "
                 "5-D distance; float software-prototype buffer sizes).");
  table.add_note("paper ratios: CPA needs ~3.2x the bandwidth; PPA needs "
                 "2.25x the distance operations.");
  std::cout << table;

  const double bw_ratio =
      cpa.traffic_bytes_per_iteration() / ppa.traffic_bytes_per_iteration();
  const double op_ratio =
      ppa.distance_ops_per_iteration() / cpa.distance_ops_per_iteration();
  std::cout << "\nmeasured ratios: bandwidth CPA/PPA = " << Table::num(bw_ratio, 2)
            << "x (paper 3.2x), ops PPA/CPA = " << Table::num(op_ratio, 2)
            << "x (paper 2.25x)\n";

  // Section 4.2's simple energy model: DRAM reference = 2500x an 8-bit add.
  const auto& e = hw::default_energy_model();
  const double cpa_energy =
      static_cast<double>(cpa.traffic.total()) * e.dram_device_pj_per_byte +
      static_cast<double>(cpa.ops.total_ops()) * e.add8_pj;
  const double ppa_energy =
      static_cast<double>(ppa.traffic.total()) * e.dram_device_pj_per_byte +
      static_cast<double>(ppa.ops.total_ops()) * e.add8_pj;
  Table energy("Section 4.2 energy model (per iteration, DRAM @ 2500x 8b-add)");
  energy.set_header({"", "CPA", "PPA"});
  energy.add_row({"DRAM energy (uJ)",
                  Table::num(static_cast<double>(cpa.traffic.total()) *
                                 e.dram_device_pj_per_byte * 1e-6, 1),
                  Table::num(static_cast<double>(ppa.traffic.total()) *
                                 e.dram_device_pj_per_byte * 1e-6, 1)});
  energy.add_row({"Compute energy (uJ)",
                  Table::num(static_cast<double>(cpa.ops.total_ops()) *
                                 e.add8_pj * 1e-6, 1),
                  Table::num(static_cast<double>(ppa.ops.total_ops()) *
                                 e.add8_pj * 1e-6, 1)});
  energy.add_row({"Total (uJ)", Table::num(cpa_energy * 1e-6, 1),
                  Table::num(ppa_energy * 1e-6, 1)});
  energy.add_note("DRAM dominates both: the lower-bandwidth PPA wins despite "
                  "2.25x the distance ops — the paper's architectural choice.");
  std::cout << '\n' << energy;

  if (ppa_energy < cpa_energy) {
    std::cout << "\nconclusion: PPA is "
              << Table::num(cpa_energy / ppa_energy, 2)
              << "x more energy-efficient under the Section-4.2 model "
                 "(reproduces the paper's choice of PPA).\n";
  } else {
    std::cout << "\nWARNING: PPA did not win under the energy model — "
                 "investigate instrumentation conventions.\n";
  }
  return 0;
}

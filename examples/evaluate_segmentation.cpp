// Evaluation tool: run the whole algorithm family on one image and score it
// against one or more ground-truth annotations — the per-image version of
// the paper's quality evaluation, usable on real BSDS data.
//
//   evaluate_segmentation --image=img.ppm --truth=a.seg --truth=b.seg ...
//   evaluate_segmentation                       # synthetic demo, 4 annotators
//
// Options: --superpixels=900 --compactness=10 --iterations=20
//          --export-seg=out.seg   (write the S-SLIC result as a .seg file)
#include <iostream>
#include <string>
#include <vector>

#include "color/color_convert.h"
#include "common/cli.h"
#include "common/stopwatch.h"
#include "common/table.h"
#include "dataset/bsds.h"
#include "dataset/synthetic.h"
#include "image/io.h"
#include "metrics/segmentation_metrics.h"
#include "slic/hw_datapath.h"
#include "slic/segmenter.h"

int main(int argc, char** argv) {
  using namespace sslic;
  // Collect repeated --truth flags by scanning argv directly (CliArgs keeps
  // the last occurrence only).
  std::vector<std::string> truth_paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--truth=", 0) == 0) truth_paths.push_back(arg.substr(8));
  }
  const CliArgs args(argc, argv);

  RgbImage image;
  std::vector<LabelImage> truths;
  if (args.has("image")) {
    image = read_ppm(args.get_string("image", ""));
    if (truth_paths.empty()) {
      std::cerr << "with --image you must pass at least one --truth=<file.seg>\n";
      return 1;
    }
    truths = read_bsds_annotators(truth_paths);
    if (truths.front().width() != image.width() ||
        truths.front().height() != image.height()) {
      std::cerr << "ground-truth dimensions do not match the image\n";
      return 1;
    }
  } else {
    const MultiAnnotatorImage demo = generate_multi_annotator(
        SyntheticParams{}, static_cast<std::uint64_t>(args.get_int("seed", 19)), 4);
    image = demo.image;
    truths = demo.truths;
    std::cout << "no --image given: synthetic demo image with "
              << truths.size() << " synthetic annotators\n";
  }

  SlicParams params;
  params.num_superpixels = args.get_int("superpixels", 900);
  params.compactness = args.get_double("compactness", 10.0);
  params.max_iterations = args.get_int("iterations", 20);

  struct Candidate {
    std::string name;
    Segmentation seg;
    double ms = 0.0;
  };
  std::vector<Candidate> candidates;

  {
    SlicParams p = params;
    p.subsample_ratio = 1.0;
    p.max_iterations = params.max_iterations / 2;
    Stopwatch watch;
    Segmentation seg = run_segmenter(Algorithm::kSlic, p, image);
    candidates.push_back({"SLIC", std::move(seg), watch.elapsed_ms()});
  }
  for (const double ratio : {0.5, 0.25}) {
    SlicParams p = params;
    p.subsample_ratio = ratio;
    Stopwatch watch;
    Segmentation seg = run_segmenter(Algorithm::kSslicPpa, p, image);
    candidates.push_back({"S-SLIC (" + Table::num(ratio, 2) + ")",
                          std::move(seg), watch.elapsed_ms()});
  }
  {
    HwConfig hw;
    hw.num_superpixels = params.num_superpixels;
    hw.compactness = params.compactness;
    hw.iterations = params.max_iterations;
    Stopwatch watch;
    Segmentation seg = HwSlic(hw).segment(image);
    candidates.push_back({"accelerator (8-bit)", std::move(seg),
                          watch.elapsed_ms()});
  }

  const LabImage lab = srgb_to_lab(image);
  Table table("Quality over " + std::to_string(truths.size()) +
              " annotator(s), K=" + std::to_string(params.num_superpixels));
  table.set_header({"algorithm", "time ms", "superpixels", "USE mean",
                    "USE best", "recall mean", "recall best", "ASA",
                    "expl.var", "contour"});
  for (const auto& c : candidates) {
    const MultiGroundTruthQuality q =
        evaluate_against_annotators(c.seg.labels, truths, 2);
    table.add_row({c.name, Table::num(c.ms, 1),
                   std::to_string(count_labels(c.seg.labels)),
                   Table::num(q.use_mean, 4), Table::num(q.use_best, 4),
                   Table::num(q.recall_mean, 4), Table::num(q.recall_best, 4),
                   Table::num(q.asa_mean, 4),
                   Table::num(explained_variation(c.seg.labels, lab), 4),
                   Table::num(contour_density(c.seg.labels), 4)});
  }
  std::cout << table;

  if (args.has("export-seg")) {
    const std::string path = args.get_string("export-seg", "out.seg");
    write_bsds_seg(path, candidates[1].seg.labels);  // the S-SLIC(0.5) result
    std::cout << "\nwrote S-SLIC(0.5) labels to " << path << " (.seg format)\n";
  }
  return 0;
}

// Fused single-pass iteration vs the classic two-pass loop (DESIGN.md §4e).
//
// Times the CPA software segmenter on a 1080p synthetic frame with the
// fused loop (assignment + sigma accumulation in one band sweep) and with
// the two-pass escape hatch (--no-fuse path), across thread counts
// 1..hardware, and reports ms/frame plus the modelled DRAM bytes per
// iteration for both. The fused loop's saving is exactly the update pass's
// re-read of the image and labels — n*(12+4) bytes per iteration — and the
// labels/centers are bit-identical either way (cross-checked here; enforced
// exhaustively by tests/test_fused.cpp).
//
// Both arms run through segment_lab_into with a persistent scratch, so the
// measured delta is the fusion itself, not allocation reuse.
//
// Emits BENCH_fused_iteration.json with the sweep, the measured traffic,
// and the paper's Table-2 per-iteration figures (318 MB classic CPA,
// 100 MB PPA) for context.
//
// Two extra arms run at the max-thread point (DESIGN.md §4g): the
// cluster-centric assignment schedule (wall clock plus its once-per-pixel
// modelled traffic, which undercuts the row sweep's per-window re-reads)
// and a BatchSegmenter group that amortizes dispatch/seeding overhead
// across frames. Both are identity-checked before timing is trusted.
//
//   fused_iteration [--frames=5] [--width=1920 --height=1080]
//                   [--superpixels=2000] [--ratio=1.0]
//                   [--simd=scalar|sse2|avx2|avx512|neon]
//                   [--assign=auto|row|cluster]
#include <algorithm>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "color/color_convert.h"
#include "common/thread_pool.h"
#include "slic/batch.h"
#include "slic/fusion.h"
#include "slic/slic_baseline.h"

namespace {

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sslic;
  const CliArgs args(argc, argv);
  const int frames = args.get_int("frames", 5);
  const int width = args.get_int("width", 1920);
  const int height = args.get_int("height", 1080);
  const int superpixels = args.get_int("superpixels", 2000);
  const double ratio = args.get_double("ratio", 1.0);
  const std::string simd_request = args.get_string("simd", "");
  if (!simd_request.empty() && !simd::set_preferred_isa(simd_request)) {
    std::cerr << "unknown --simd value '" << simd_request << "'\n";
    return 2;
  }
  const std::string assign_request = args.get_string("assign", "");
  if (!assign_request.empty()) {
    AssignStrategy assign = AssignStrategy::kAuto;
    if (!parse_assign_strategy(assign_request, &assign)) {
      std::cerr << "unknown --assign value '" << assign_request
                << "' (expected auto|row|cluster)\n";
      return 2;
    }
    set_assign_strategy(assign);
  }

  const int hw_threads = ThreadPool::default_threads();
  std::cout << "==================================================================\n"
            << "Fused iteration vs two-pass — CPA S-SLIC(" << ratio
            << ") software path\n"
            << "workload: " << width << 'x' << height << ", K=" << superpixels
            << ", " << frames << " timed frames per point (median reported)\n"
            << "machine: " << hw_threads << " hardware thread(s), "
            << bench::cpu_model_name() << '\n'
            << "simd: " << simd::isa_name(kernels::active_isa()) << '\n'
            << "==================================================================\n";

  SyntheticParams scene;
  scene.width = width;
  scene.height = height;
  const GroundTruthImage gt = generate_synthetic(scene, 4242);
  const LabImage lab = srgb_to_lab(gt.image);

  SlicParams params;
  params.num_superpixels = superpixels;
  params.subsample_ratio = ratio;
  const CpaSlic slic(params);

  struct Arm {
    double ms = 0.0;
    double bytes_per_iter = 0.0;
  };
  struct Point {
    int threads = 0;
    Arm fused;
    Arm two_pass;
    bool identical = true;
    perf::Delta fused_counters;  ///< calling-thread counters, timed frames
    int fused_counter_frames = 0;
    double fused_ops_per_frame = 0.0;    ///< analytic, one segment() call
    double fused_bytes_per_frame = 0.0;
  };
  std::vector<Point> points;
  std::cout << "perf: " << perf::status() << '\n';

  const double n = static_cast<double>(width) * height;
  const double expected_saving = n * (MemTraffic::kLabBytes + MemTraffic::kLabelBytes);

  Table table("ms/frame and modelled DRAM bytes/iteration");
  table.set_header({"threads", "fused ms", "two-pass ms", "speedup",
                    "fused B/iter", "two-pass B/iter", "identical"});
  for (int threads = 1; threads <= hw_threads; ++threads) {
    ThreadPool::set_global_threads(threads);
    Point point;
    point.threads = threads;
    Segmentation fused_result, two_pass_result;
    IterationScratch scratch;
    // The two arms are timed interleaved (fused, two-pass, fused, ...) so
    // frequency drift and scheduler noise on the host hit both equally;
    // per-arm medians are reported.
    std::vector<double> fused_times, two_pass_times;
    Instrumentation fused_instr, two_pass_instr;
    for (int f = -1; f < frames; ++f) {  // f == -1 warms both arms, untimed
      for (const bool fused : {true, false}) {
        FusionGuard guard(fused);
        Segmentation& result = fused ? fused_result : two_pass_result;
        Instrumentation& instr = fused ? fused_instr : two_pass_instr;
        perf::Delta frame_counters;
        Stopwatch watch;
        {
          // Counters are per-thread; this samples the calling thread, which
          // executes its share of every parallel region alongside the pool.
          perf::ScopedSample sample(&frame_counters);
          slic.segment_lab_into(lab, result, scratch, {}, &instr);
        }
        if (f >= 0) {
          (fused ? fused_times : two_pass_times).push_back(watch.elapsed_ms());
          if (fused && frame_counters.has(perf::Event::kCycles)) {
            point.fused_counters += frame_counters;
            point.fused_counter_frames += 1;
          }
        }
      }
    }
    point.fused.ms = median(std::move(fused_times));
    point.fused.bytes_per_iter = fused_instr.traffic_bytes_per_iteration();
    point.fused_ops_per_frame = static_cast<double>(fused_instr.ops.total_ops());
    point.fused_bytes_per_frame =
        static_cast<double>(fused_instr.traffic.total());
    point.two_pass.ms = median(std::move(two_pass_times));
    point.two_pass.bytes_per_iter = two_pass_instr.traffic_bytes_per_iteration();
    point.identical =
        std::equal(fused_result.labels.pixels().begin(),
                   fused_result.labels.pixels().end(),
                   two_pass_result.labels.pixels().begin()) &&
        std::memcmp(fused_result.centers.data(), two_pass_result.centers.data(),
                    fused_result.centers.size() * sizeof(ClusterCenter)) == 0;
    points.push_back(point);
    table.add_row({std::to_string(threads), Table::num(point.fused.ms, 1),
                   Table::num(point.two_pass.ms, 1),
                   Table::num(point.two_pass.ms / point.fused.ms, 2) + "x",
                   Table::si(point.fused.bytes_per_iter, 1) + "B",
                   Table::si(point.two_pass.bytes_per_iter, 1) + "B",
                   point.identical ? "yes" : "NO (bug!)"});
  }
  table.add_note("traffic uses the software-prototype DRAM convention of "
                 "slic/instrumentation.h; fusion removes the update pass's "
                 "image+label re-read, n*(12+4) = " +
                 Table::si(expected_saving, 1) + "B per iteration.");
  table.add_note("paper Table 2 context (1080p, two-pass accounting): "
                 "318MB/iter classic CPA, 100MB/iter PPA.");
  std::cout << table;

  const Point& last = points.back();
  const double win =
      100.0 * (1.0 - last.fused.ms / std::max(1e-9, last.two_pass.ms));
  const double saved = last.two_pass.bytes_per_iter - last.fused.bytes_per_iter;
  std::cout << "\nat " << last.threads << " thread(s): fused is "
            << Table::num(win, 1) << "% faster per frame and saves "
            << Table::si(saved, 1) << "B modelled DRAM per iteration (expected "
            << Table::si(expected_saving, 1) << "B)\n";

  // Per-frame roofline at the max-thread point: the analytic op/byte counts
  // of the last fused run against its median wall time, with calling-thread
  // counter measurements alongside when the perf backend is live.
  perf::Delta per_frame_counters;
  if (last.fused_counter_frames > 0) {
    per_frame_counters = last.fused_counters;
    for (auto& v : per_frame_counters.value)
      v /= static_cast<double>(last.fused_counter_frames);
  }
  const double analytic_ops = last.fused_ops_per_frame;
  const double analytic_bytes = last.fused_bytes_per_frame;
  if (per_frame_counters.has(perf::Event::kCycles)) {
    std::cout << "roofline (fused, per frame): "
              << Table::num(analytic_ops / std::max(1.0, analytic_bytes), 2)
              << " ops/B analytic intensity, IPC "
              << Table::num(per_frame_counters.ipc(), 2);
    if (per_frame_counters.has(perf::Event::kLlcMisses))
      std::cout << ", measured DRAM "
                << Table::si(per_frame_counters.dram_bytes(), 1) << "B vs "
                << Table::si(analytic_bytes, 1) << "B analytic";
    std::cout << '\n';
  }

  // --- Cluster-schedule arm (DESIGN.md §4g), max-thread point, fused ---
  // The cluster schedule touches each pixel's Lab/distance/label entries
  // once, so its modelled traffic undercuts the row sweep's per-window
  // re-reads deterministically; wall clock is machine-dependent (see the
  // heuristic discussion in §4g). Labels/centers must match the row arm
  // byte for byte.
  double cluster_ms = 0.0;
  double cluster_bytes_per_iter = 0.0;
  bool cluster_identical = true;
  {
    FusionGuard fusion_guard(true);
    Segmentation row_ref;
    Segmentation cluster_result;
    IterationScratch scratch;
    {
      const AssignStrategyGuard row_guard(AssignStrategy::kRow);
      slic.segment_lab_into(lab, row_ref, scratch);
    }
    const AssignStrategyGuard cluster_guard(AssignStrategy::kCluster);
    Instrumentation cluster_instr;
    std::vector<double> times;
    for (int f = -1; f < frames; ++f) {  // f == -1 warms the arm, untimed
      Stopwatch watch;
      slic.segment_lab_into(lab, cluster_result, scratch, {}, &cluster_instr);
      if (f >= 0) times.push_back(watch.elapsed_ms());
    }
    cluster_ms = median(std::move(times));
    cluster_bytes_per_iter = cluster_instr.traffic_bytes_per_iteration();
    cluster_identical =
        std::equal(cluster_result.labels.pixels().begin(),
                   cluster_result.labels.pixels().end(),
                   row_ref.labels.pixels().begin()) &&
        std::memcmp(cluster_result.centers.data(), row_ref.centers.data(),
                    cluster_result.centers.size() * sizeof(ClusterCenter)) == 0;
    std::cout << "cluster schedule (fused, " << last.threads
              << " thread(s)): " << Table::num(cluster_ms, 1) << " ms/frame, "
              << Table::si(cluster_bytes_per_iter, 1)
              << "B modelled DRAM/iteration, labels/centers "
              << (cluster_identical ? "identical to row" : "DIVERGED (bug!)")
              << '\n';
  }

  // --- Batched arm: BatchSegmenter over a small frame group ---
  // Amortizes per-frame dispatch, center seeding, and trace overhead; each
  // frame's output must equal its single-frame run bit for bit (the batch
  // runs frames as pool chunks with serial inner segmenters).
  const int batch_group = 4;
  double batch_ms_per_frame = 0.0;
  bool batch_identical = true;
  {
    const std::vector<LabImage> group(static_cast<std::size_t>(batch_group),
                                      lab);
    BatchSegmenter batch(params);
    Segmentation single;
    IterationScratch scratch;
    slic.segment_lab_into(lab, single, scratch);
    std::vector<double> times;
    for (int f = -1; f < frames; ++f) {  // f == -1 warms the slot pools
      Stopwatch watch;
      batch.segment_lab_batch(group);
      if (f >= 0) times.push_back(watch.elapsed_ms() / batch_group);
    }
    batch_ms_per_frame = median(std::move(times));
    for (const Segmentation& r : batch.results()) {
      batch_identical =
          batch_identical &&
          std::equal(r.labels.pixels().begin(), r.labels.pixels().end(),
                     single.labels.pixels().begin()) &&
          std::memcmp(r.centers.data(), single.centers.data(),
                      r.centers.size() * sizeof(ClusterCenter)) == 0;
    }
    std::cout << "batched (" << batch_group << " frames/batch, "
              << last.threads << " thread(s)): "
              << Table::num(batch_ms_per_frame, 1) << " ms/frame vs "
              << Table::num(last.fused.ms, 1) << " single ("
              << Table::num(last.fused.ms / batch_ms_per_frame, 2)
              << "x), outputs "
              << (batch_identical ? "identical to single-frame runs"
                                  : "DIVERGED (bug!)")
              << '\n';
  }

  bench::GateMetrics gate;
  // Wall-clock metrics get a wide tolerance (shared CI runners); the
  // analytic traffic model is deterministic, so it gates tightly.
  gate.lower_is_better("fused_ms_per_frame", last.fused.ms, "ms", 0.15)
      .higher_is_better("fused_vs_two_pass_speedup",
                        last.two_pass.ms / last.fused.ms, "x", 0.15)
      .lower_is_better("fused_bytes_per_iteration", last.fused.bytes_per_iter,
                       "bytes", 0.01)
      .lower_is_better("two_pass_bytes_per_iteration",
                       last.two_pass.bytes_per_iter, "bytes", 0.01)
      .lower_is_better("cluster_ms_per_frame", cluster_ms, "ms", 0.15)
      .lower_is_better("cluster_bytes_per_iteration", cluster_bytes_per_iter,
                       "bytes", 0.01)
      .lower_is_better("batch_ms_per_frame", batch_ms_per_frame, "ms", 0.15);

  bench::Json sweep = bench::Json::array();
  for (const Point& p : points) {
    sweep.push(bench::Json::object()
                   .set("threads", p.threads)
                   .set("fused_ms", p.fused.ms)
                   .set("two_pass_ms", p.two_pass.ms)
                   .set("speedup", p.two_pass.ms / p.fused.ms)
                   .set("fused_bytes_per_iteration", p.fused.bytes_per_iter)
                   .set("two_pass_bytes_per_iteration", p.two_pass.bytes_per_iter)
                   .set("labels_and_centers_identical", p.identical));
  }
  bench::Json::object()
      .set("bench", "fused_iteration")
      .set("config", bench::Json::object()
                         .set("width", width)
                         .set("height", height)
                         .set("superpixels", superpixels)
                         .set("ratio", ratio)
                         .set("frames", frames))
      .set("expected_bytes_saved_per_iteration", expected_saving)
      .set("paper_table2_mb_per_iteration",
           bench::Json::object().set("cpa_two_pass", 318).set("ppa", 100))
      .set("sweep", std::move(sweep))
      .set("cluster", bench::Json::object()
                          .set("ms_per_frame", cluster_ms)
                          .set("bytes_per_iteration", cluster_bytes_per_iter)
                          .set("identical_to_row", cluster_identical))
      .set("batch", bench::Json::object()
                        .set("frames_per_batch", batch_group)
                        .set("ms_per_frame", batch_ms_per_frame)
                        .set("identical_to_single", batch_identical))
      .set("roofline",
           bench::roofline_json(analytic_ops, analytic_bytes, last.fused.ms,
                                per_frame_counters))
      .set("perf_status", perf::status())
      .set("gate", gate.json())
      .set("machine", bench::machine_json())
      .write_file("BENCH_fused_iteration.json");
  return 0;
}

// Thread-scaling sweep for the multithreaded software path.
//
// Runs the CPA S-SLIC software segmenter on a 1080p synthetic frame at
// thread counts {1, 2, 4, 8, hardware_concurrency} and reports ms/frame
// plus speedup over the serial run. Sweep points that oversubscribe the
// machine (threads > hardware threads) are skipped by default — timing an
// 8-thread run on a 2-core box produces numbers that look like scaling data
// but measure scheduler thrash; pass --oversubscribe=1 to keep them.
//
// Each frame is timed end to end (color conversion included) with a
// per-stage breakdown — convert / assign (distance+min) / center update /
// other — so regressions can be attributed to a stage. Labels are
// cross-checked against the serial result at every thread count — the
// determinism contract says they must be bit-identical (see DESIGN.md
// "Parallel execution").
//
// Emits BENCH_thread_scaling.json with the sweep, per-stage medians, and
// machine metadata (CPU model, hardware threads, SIMD ISA) so CI or
// plotting scripts can consume the numbers directly. Unmeasurable sweep
// points are still emitted, as {"threads": N, "skipped": true,
// "skip_reason": ...} rows — the sweep array has the same shape on a
// 1-core container as on a 16-core workstation, so bench-gate baselines
// stay schema-stable across machines.
//
//   thread_scaling [--frames=5] [--superpixels=2000] [--ratio=0.5]
//                  [--width=1920 --height=1080] [--oversubscribe=1]
//                  [--simd=scalar|sse2|avx2|avx512|neon]
#include <algorithm>
#include <iostream>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "color/color_convert.h"
#include "common/thread_pool.h"
#include "slic/slic_baseline.h"

namespace {

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sslic;
  const CliArgs args(argc, argv);
  const int frames = args.get_int("frames", 5);
  const int width = args.get_int("width", 1920);
  const int height = args.get_int("height", 1080);
  const int superpixels = args.get_int("superpixels", 2000);
  const double ratio = args.get_double("ratio", 0.5);
  const bool oversubscribe = args.get_bool("oversubscribe", false);
  const std::string simd_request = args.get_string("simd", "");
  if (!simd_request.empty() && !simd::set_preferred_isa(simd_request)) {
    std::cerr << "unknown --simd value '" << simd_request << "'\n";
    return 2;
  }

  const int hw_threads = ThreadPool::default_threads();
  std::set<int> sweep = {1, 2, 4, 8};
  sweep.insert(hw_threads);
  std::vector<int> skipped;
  if (!oversubscribe) {
    for (auto it = sweep.begin(); it != sweep.end();) {
      if (*it > hw_threads) {
        skipped.push_back(*it);
        it = sweep.erase(it);
      } else {
        ++it;
      }
    }
  }

  std::cout << "==================================================================\n"
            << "Thread scaling — CPA S-SLIC(" << ratio << ") software path\n"
            << "workload: " << width << 'x' << height << ", K=" << superpixels
            << ", " << frames << " timed frames per point (median reported)\n"
            << "machine: " << hw_threads << " hardware thread(s), "
            << bench::cpu_model_name() << '\n'
            << "simd: " << simd::isa_name(kernels::active_isa()) << '\n'
            << "==================================================================\n";
  for (const int threads : skipped) {
    std::cout << "skipping " << threads
              << "-thread point: oversubscribes the " << hw_threads
              << "-thread machine (--oversubscribe=1 to force)\n";
  }

  SyntheticParams scene;
  scene.width = width;
  scene.height = height;
  const GroundTruthImage gt = generate_synthetic(scene, 4242);

  SlicParams params;
  params.num_superpixels = superpixels;
  params.subsample_ratio = ratio;
  const CpaSlic slic(params);

  // Stage keys, in reporting order. "assign" is the distance+min phase the
  // SIMD kernels accelerate; "convert" is sRGB->Lab.
  const std::vector<std::pair<std::string, std::string>> stages = {
      {"convert", CpaSlic::kPhaseColorConversion},
      {"assign", CpaSlic::kPhaseDistanceMin},
      {"update", CpaSlic::kPhaseCenterUpdate},
      {"other", CpaSlic::kPhaseOther}};

  struct Point {
    int threads = 0;
    double ms = 0.0;
    double speedup = 1.0;
    bool identical = true;
    std::map<std::string, double> stage_ms;  // median per stage
  };
  std::vector<Point> points;
  LabelImage serial_labels;

  for (const int threads : sweep) {
    ThreadPool::set_global_threads(threads);
    Point point;
    point.threads = ThreadPool::global().threads();

    std::vector<double> samples;
    std::map<std::string, std::vector<double>> stage_samples;
    Segmentation seg;
    for (int f = 0; f < frames; ++f) {
      PhaseTimer phases;
      Stopwatch watch;
      seg = slic.segment(gt.image, {}, nullptr, &phases);
      samples.push_back(watch.elapsed_ms());
      for (const auto& [key, phase] : stages)
        stage_samples[key].push_back(phases.phase_ms(phase));
    }
    point.ms = median(samples);
    for (const auto& [key, phase] : stages)
      point.stage_ms[key] = median(stage_samples[key]);

    if (threads == 1)
      serial_labels = seg.labels;
    else
      point.identical = seg.labels.pixels() == serial_labels.pixels();
    points.push_back(point);
  }
  ThreadPool::set_global_threads(0);

  const double serial_ms = points.front().ms;
  Table table("1080p frame time vs thread count");
  table.set_header({"threads", "ms/frame", "fps", "speedup", "convert", "assign",
                    "update", "other", "labels vs serial"});
  for (auto& point : points) {
    point.speedup = serial_ms / point.ms;
    table.add_row({std::to_string(point.threads), Table::num(point.ms, 1),
                   Table::num(1000.0 / point.ms, 1),
                   Table::num(point.speedup, 2) + "x",
                   Table::num(point.stage_ms.at("convert"), 1),
                   Table::num(point.stage_ms.at("assign"), 1),
                   Table::num(point.stage_ms.at("update"), 1),
                   Table::num(point.stage_ms.at("other"), 1),
                   point.identical ? "identical" : "DIFFER (bug!)"});
  }
  std::cout << table;

  // Measured and skipped points interleave in ascending thread order so
  // the sweep array keeps one row per requested point on every machine.
  bench::Json sweep_json = bench::Json::array();
  {
    std::size_t next_point = 0;
    std::size_t next_skipped = 0;
    while (next_point < points.size() || next_skipped < skipped.size()) {
      const bool take_skipped =
          next_point == points.size() ||
          (next_skipped < skipped.size() &&
           skipped[next_skipped] < points[next_point].threads);
      if (take_skipped) {
        sweep_json.push(
            bench::Json::object()
                .set("threads", skipped[next_skipped])
                .set("skipped", true)
                .set("skip_reason",
                     "oversubscribes the " + std::to_string(hw_threads) +
                         "-thread machine (--oversubscribe=1 to force)"));
        ++next_skipped;
        continue;
      }
      const Point& point = points[next_point++];
      bench::Json stages_json = bench::Json::object();
      for (const auto& [key, phase] : stages)
        stages_json.set(key, point.stage_ms.at(key));
      sweep_json.push(bench::Json::object()
                          .set("threads", point.threads)
                          .set("skipped", false)
                          .set("ms_per_frame", point.ms)
                          .set("fps", 1000.0 / point.ms)
                          .set("speedup_vs_serial", point.speedup)
                          .set("stage_ms", std::move(stages_json))
                          .set("labels_identical_to_serial", point.identical));
    }
  }
  bench::Json skipped_json = bench::Json::array();
  for (const int threads : skipped) skipped_json.push(threads);
  bench::Json::object()
      .set("bench", "thread_scaling")
      .set("workload", bench::Json::object()
                           .set("width", width)
                           .set("height", height)
                           .set("superpixels", superpixels)
                           .set("subsample_ratio", ratio)
                           .set("timed_frames", frames))
      .set("hardware_threads", hw_threads)
      .set("machine", bench::machine_json())
      .set("oversubscribed_points_skipped", std::move(skipped_json))
      .set("sweep", std::move(sweep_json))
      .set("gate",
           bench::GateMetrics()
               .lower_is_better("serial_ms_per_frame", serial_ms, "ms", 0.25)
               .lower_is_better("max_threads_ms_per_frame", points.back().ms,
                                "ms", 0.25)
               .higher_is_better("max_threads_speedup", points.back().speedup,
                                 "x", 0.25)
               .json())
      .write_file("BENCH_thread_scaling.json");

  const bool all_identical =
      std::all_of(points.begin(), points.end(),
                  [](const Point& p) { return p.identical; });
  std::cout << "determinism: "
            << (all_identical ? "labels bit-identical at every thread count"
                              : "MISMATCH across thread counts")
            << '\n';
  return all_identical ? 0 : 1;
}

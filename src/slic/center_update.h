// Sigma accumulation and center recomputation shared by every SLIC variant
// (paper Section 4.3: the sigma registers hold accumulated L, a, b, x, y
// and the member-pixel count; the Center Update Unit divides them out).
#pragma once

#include <cstdint>
#include <vector>

#include "image/image.h"
#include "slic/instrumentation.h"
#include "slic/types.h"

namespace sslic {

/// One sigma accumulator: six fields, exactly the hardware register layout.
struct Sigma {
  double L = 0.0;
  double a = 0.0;
  double b = 0.0;
  double x = 0.0;
  double y = 0.0;
  std::uint64_t count = 0;

  void add(const LabF& color, int px, int py) {
    L += static_cast<double>(color.L);
    a += static_cast<double>(color.a);
    b += static_cast<double>(color.b);
    x += px;
    y += py;
    count += 1;
  }

  /// Field-order merge (L, a, b, x, y, count — the same order `add` uses).
  /// Every reduction in the codebase folds partials through this operator
  /// so the IEEE summation sequence is fixed by construction.
  Sigma& operator+=(const Sigma& other) {
    L += other.L;
    a += other.a;
    b += other.b;
    x += other.x;
    y += other.y;
    count += other.count;
    return *this;
  }

  void clear() { *this = Sigma{}; }
};

/// Folds one partial sigma pool into the running totals, element-wise in
/// ascending center order. Both pools must have the same size. Shared by
/// the CPA two-pass reduction and the fused band merge — one definition,
/// one operation order, bit-identical centers either way.
inline void merge_sigmas(std::vector<Sigma>& into,
                         const std::vector<Sigma>& from) {
  for (std::size_t i = 0; i < into.size(); ++i) into[i] += from[i];
}

/// Recomputes `centers[i]` from `sigmas[i]` for every i with
/// `active[i] && sigmas[i].count > 0`; pass an empty `active` to update all.
/// Returns the mean L1 (x, y) movement of the centers actually updated
/// (0 when none were). Counts 5 divides per updated center and 6 adds per
/// accumulated pixel into `ops` when provided.
inline double update_centers(std::vector<ClusterCenter>& centers,
                             const std::vector<Sigma>& sigmas,
                             const std::vector<std::uint8_t>& active,
                             OpCounts* ops = nullptr) {
  double movement = 0.0;
  std::size_t updated = 0;
  for (std::size_t i = 0; i < centers.size(); ++i) {
    if (!active.empty() && !active[i]) continue;
    const Sigma& s = sigmas[i];
    if (s.count == 0) continue;
    const double inv = 1.0 / static_cast<double>(s.count);
    ClusterCenter next{s.L * inv, s.a * inv, s.b * inv, s.x * inv, s.y * inv};
    movement += std::abs(next.x - centers[i].x) + std::abs(next.y - centers[i].y);
    centers[i] = next;
    ++updated;
    if (ops != nullptr) ops->divide_ops += 5;
  }
  return updated == 0 ? 0.0 : movement / static_cast<double>(updated);
}

}  // namespace sslic

// Reproduction scoreboard: every headline claim of the paper's abstract and
// conclusions, checked in one run. Each row prints the paper's claim, this
// repository's measurement, and a PASS/FAIL verdict; the exit code is the
// number of failing claims.
#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "hw/dse.h"
#include "hw/gpu_reference.h"
#include "slic/connectivity.h"
#include "slic/fusion.h"
#include "slic/slic_baseline.h"
#include "slic/subsampled.h"

namespace {

using namespace sslic;

struct Claim {
  std::string description;
  std::string paper;
  std::string measured;
  bool pass = false;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace sslic::hw;
  bench::BenchConfig config = bench::BenchConfig::parse(argc, argv);
  // Paper-model scoreboard: keep the classic two-pass accounting the
  // paper's numbers are stated in (fused mode drops the update pass's
  // redundant image/label reads from CPA traffic).
  set_fusion(false);
  // Same reasoning for the assignment schedule: the row sweep's
  // window-based traffic charges are the paper's convention; the cluster
  // schedule's once-per-pixel accounting would skew the modelled bytes.
  set_assign_strategy(AssignStrategy::kRow);
  if (!CliArgs(argc, argv).has("images")) config.images = 6;
  bench::banner("Reproduction scoreboard — the paper's headline claims", config);

  std::vector<Claim> claims;
  const FrameReport hd = AcceleratorModel(AcceleratorDesign{}).evaluate();

  // --- Abstract: real-time performance. ---
  claims.push_back({"30 fps on 1920x1080 (real time)", "30.5 fps",
                    Table::num(hd.fps, 1) + " fps", hd.fps >= 30.0});

  // --- Abstract: 250x energy efficiency vs the mobile GPU. ---
  const double vs_tk1 =
      normalized_energy_per_frame_j(tegra_k1()) / hd.energy_per_frame_j;
  claims.push_back({"energy efficiency vs Tegra K1 (mobile GPU)", ">= 250x",
                    Table::num(vs_tk1, 0) + "x", vs_tk1 >= 250.0});
  const double vs_k20 =
      normalized_energy_per_frame_j(tesla_k20()) / hd.energy_per_frame_j;
  claims.push_back({"energy efficiency vs Tesla K20", "> 500x",
                    Table::num(vs_k20, 0) + "x", vs_k20 > 500.0});

  // --- Conclusions: 0.066 mm2, 49 mW, 1.6 mJ/frame. ---
  claims.push_back({"silicon area at the HD design point", "0.066 mm2",
                    Table::num(hd.area_mm2, 3) + " mm2",
                    std::fabs(hd.area_mm2 - 0.066) < 0.066 * 0.05});
  claims.push_back({"average power at the HD design point", "49 mW",
                    Table::num(hd.average_power_w * 1e3, 0) + " mW",
                    std::fabs(hd.average_power_w - 0.049) < 0.049 * 0.06});
  claims.push_back({"energy per frame", "1.6 mJ",
                    Table::num(hd.energy_per_frame_j * 1e3, 2) + " mJ",
                    std::fabs(hd.energy_per_frame_j - 1.6e-3) < 1.6e-3 * 0.06});

  // --- Abstract: 1.8x memory-bandwidth reduction from subsampling.
  // Measured with the instrumented software-prototype traffic convention
  // (the one Table 2 is stated in): PPA at full sampling vs S-SLIC(0.5) at
  // the same number of iterations ("the same number of full iterations",
  // Table 1's framing). ---
  {
    const GroundTruthImage gt =
        generate_synthetic(config.dataset_params(), config.seed);
    SlicParams p = config.slic_params();
    p.enforce_connectivity = false;
    Instrumentation full_instr;
    p.subsample_ratio = 1.0;
    (void)PpaSlic(p).segment(gt.image, {}, &full_instr);
    Instrumentation half_instr;
    p.subsample_ratio = 0.5;
    (void)PpaSlic(p).segment(gt.image, {}, &half_instr);
    const double reduction = static_cast<double>(full_instr.traffic.total()) /
                             static_cast<double>(half_instr.traffic.total());
    claims.push_back({"bandwidth reduction from pixel subsampling", "1.8x",
                      Table::num(reduction, 2) + "x",
                      reduction > 1.5 && reduction < 2.2});
  }

  // --- Section 6.3 / Fig. 6: 4 kB is the smallest real-time buffer. ---
  {
    const DesignSpaceExplorer dse{AcceleratorDesign{}};
    const auto pts = dse.sweep_buffer_sizes({1024, 2048, 4096});
    const bool ok = !pts[0].report.real_time() && !pts[1].report.real_time() &&
                    pts[2].report.real_time();
    claims.push_back({"smallest real-time channel buffer", "4 kB",
                      ok ? "4 kB" : "differs", ok});
  }

  // --- Section 6.2: the 9-9-6 cluster configuration wins the DSE. ---
  {
    const DesignSpaceExplorer dse{AcceleratorDesign{}};
    const auto pts = dse.sweep_cluster_configs(
        {ClusterUnitConfig::way_111(), ClusterUnitConfig::way_911(),
         ClusterUnitConfig::way_191(), ClusterUnitConfig::way_116(),
         ClusterUnitConfig::way_996()});
    const DsePoint* best = DesignSpaceExplorer::best_real_time(pts);
    const std::string name = best != nullptr ? best->design.cluster.name() : "none";
    claims.push_back({"DSE-selected cluster configuration", "9-9-6", name,
                      name == "9-9-6"});
  }

  // --- Fig. 2 (CPU): S-SLIC reaches SLIC's quality in less time. ---
  {
    double slic_time = 0.0, slic_use = 0.0;
    double sslic_time = -1.0;
    // SLIC converged quality and time.
    std::vector<double> use_curve;
    std::vector<double> time_curve;
    for (int i = 0; i < config.images; ++i) {
      const GroundTruthImage gt =
          generate_synthetic(config.dataset_params(),
                             config.seed + static_cast<std::uint64_t>(i));
      SlicParams p = config.slic_params();
      p.enforce_connectivity = false;
      const Segmentation seg = CpaSlic(p).segment(gt.image);
      double cumulative = 0.0;
      for (const auto& s : seg.trace) cumulative += s.elapsed_ms;
      LabelImage labels = seg.labels;
      enforce_connectivity(labels, p.num_superpixels);
      slic_time += cumulative;
      slic_use += undersegmentation_error(labels, gt.truth);
    }
    slic_time /= config.images;
    slic_use /= config.images;

    // S-SLIC(0.5): earliest mean time reaching that USE.
    const int subset_iters = config.iterations * 2;
    std::vector<double> use_at(static_cast<std::size_t>(subset_iters), 0.0);
    std::vector<double> time_at(static_cast<std::size_t>(subset_iters), 0.0);
    for (int i = 0; i < config.images; ++i) {
      const GroundTruthImage gt =
          generate_synthetic(config.dataset_params(),
                             config.seed + static_cast<std::uint64_t>(i));
      SlicParams p = config.slic_params();
      p.subsample_ratio = 0.5;
      p.max_iterations = subset_iters;
      p.enforce_connectivity = false;
      double cumulative = 0.0;
      (void)PpaSlic(p).segment(
          gt.image, [&](const IterationStats& stats, const LabelImage& labels,
                        const std::vector<ClusterCenter>&) {
            cumulative += stats.elapsed_ms;
            LabelImage snapshot = labels;
            enforce_connectivity(snapshot, p.num_superpixels);
            const auto idx = static_cast<std::size_t>(stats.iteration);
            use_at[idx] += undersegmentation_error(snapshot, gt.truth);
            time_at[idx] += cumulative;
          });
    }
    for (std::size_t i = 0; i < use_at.size(); ++i) {
      use_at[i] /= config.images;
      time_at[i] /= config.images;
      if (sslic_time < 0.0 && use_at[i] <= slic_use * 1.02) sslic_time = time_at[i];
    }
    const double saving =
        sslic_time < 0.0 ? -1.0 : (1.0 - sslic_time / slic_time) * 100.0;
    claims.push_back({"S-SLIC(0.5) reaches SLIC's USE in less time (CPU)",
                      "~25% less",
                      sslic_time < 0.0 ? "not reached"
                                       : Table::num(saving, 0) + "% less",
                      saving > 0.0});
  }

  // --- Section 6.1: 8-bit datapath costs ~nothing (CPU). ---
  {
    double use_f64 = 0.0, use_fx8 = 0.0;
    for (int i = 0; i < config.images; ++i) {
      const GroundTruthImage gt =
          generate_synthetic(config.dataset_params(),
                             config.seed + static_cast<std::uint64_t>(i));
      SlicParams p = config.slic_params();
      p.subsample_ratio = 0.5;
      p.max_iterations = config.iterations * 2;
      use_f64 += undersegmentation_error(
          PpaSlic(p, DataWidth::float64()).segment(gt.image).labels, gt.truth);
      use_fx8 += undersegmentation_error(
          PpaSlic(p, DataWidth::fixed(8)).segment(gt.image).labels, gt.truth);
    }
    const double delta = (use_fx8 - use_f64) / config.images;
    std::string delta_str = delta >= 0 ? "+" : "";
    delta_str += Table::num(delta, 4);
    claims.push_back({"8-bit datapath USE penalty vs float64 (CPU)",
                      "+0.003", std::move(delta_str),
                      std::fabs(delta) < 0.01});
  }

  // --- Render the scoreboard. ---
  Table table("Headline claims");
  table.set_header({"claim", "paper", "measured", "verdict"});
  int failures = 0;
  for (const auto& claim : claims) {
    table.add_row({claim.description, claim.paper, claim.measured,
                   claim.pass ? "PASS" : "FAIL"});
    failures += claim.pass ? 0 : 1;
  }
  std::cout << table << '\n';
  if (failures == 0)
    std::cout << "all headline claims reproduce.\n";
  else
    std::cout << failures << " claim(s) FAILED.\n";
  return failures;
}

// SSE2 backend: 2 f64 lanes / 4 i32 lanes. Baseline x86-64 — no SSE4.1,
// so 32-bit multiply low, 32-bit min, and blends are composed from SSE2
// primitives (widening _mm_mul_epu32 pairs, compare + and/andnot/or). The
// low 32 bits of a product are sign-agnostic, and the Q8 spatial weighting
// multiplies two non-negative operands, so the unsigned widening multiply
// reproduces the scalar int64 arithmetic exactly.
#include <emmintrin.h>

#include <cstring>

#include "slic/assign_kernels_impl.h"

namespace sslic::kernels {
namespace {

struct Sse2Backend {
  static constexpr int kLanesF64 = 2;
  static constexpr int kLanesI32 = 4;
  using VD = __m128d;
  using VL = __m128i;  // 2 labels in the low 64 bits
  using MD = __m128d;
  using VI = __m128i;
  using MI = __m128i;

  static VD load_f32(const float* p) {
    __m128 f = _mm_castsi128_ps(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(p)));
    return _mm_cvtps_pd(f);
  }
  static VD loadu_f64(const double* p) { return _mm_loadu_pd(p); }
  static void storeu_f64(double* p, VD v) { _mm_storeu_pd(p, v); }
  static VD set1_f64(double v) { return _mm_set1_pd(v); }
  static VD iota_f64(double base) {
    return _mm_add_pd(_mm_set1_pd(base), _mm_setr_pd(0.0, 1.0));
  }
  static VD add(VD a, VD b) { return _mm_add_pd(a, b); }
  static VD sub(VD a, VD b) { return _mm_sub_pd(a, b); }
  static VD mul(VD a, VD b) { return _mm_mul_pd(a, b); }
  static MD cmplt_f64(VD a, VD b) { return _mm_cmplt_pd(a, b); }
  static VD select_f64(MD m, VD a, VD b) {
    return _mm_or_pd(_mm_and_pd(m, a), _mm_andnot_pd(m, b));
  }
  static VL loadu_lab(const std::int32_t* p) {
    return _mm_loadl_epi64(reinterpret_cast<const __m128i*>(p));
  }
  static void storeu_lab(std::int32_t* p, VL v) {
    _mm_storel_epi64(reinterpret_cast<__m128i*>(p), v);
  }
  static VL set1_lab(std::int32_t v) { return _mm_set1_epi32(v); }
  static VL select_lab(MD m, VL a, VL b) {
    // Compress the two 64-bit f64 mask lanes to two 32-bit label lanes.
    const __m128i m32 =
        _mm_shuffle_epi32(_mm_castpd_si128(m), _MM_SHUFFLE(3, 3, 2, 0));
    return _mm_or_si128(_mm_and_si128(m32, a), _mm_andnot_si128(m32, b));
  }
  static MD mask_f64_from_bytes(const std::uint8_t* p) {
    return _mm_castsi128_pd(
        _mm_set_epi64x(p[1] != 0 ? -1 : 0, p[0] != 0 ? -1 : 0));
  }

  static VI load_u8_i32(const std::uint8_t* p) {
    std::uint32_t packed;
    std::memcpy(&packed, p, sizeof(packed));
    const __m128i zero = _mm_setzero_si128();
    const __m128i bytes =
        _mm_cvtsi32_si128(static_cast<int>(packed));
    return _mm_unpacklo_epi16(_mm_unpacklo_epi8(bytes, zero), zero);
  }
  static VI loadu_i32(const std::int32_t* p) {
    return _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
  }
  static void storeu_i32(std::int32_t* p, VI v) {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(p), v);
  }
  static VI set1_i32(std::int32_t v) { return _mm_set1_epi32(v); }
  static VI iota_i32(std::int32_t base) {
    return _mm_add_epi32(_mm_set1_epi32(base), _mm_setr_epi32(0, 1, 2, 3));
  }
  static VI add_i32(VI a, VI b) { return _mm_add_epi32(a, b); }
  static VI sub_i32(VI a, VI b) { return _mm_sub_epi32(a, b); }
  static VI mul_i32(VI a, VI b) {
    // mullo via widening even/odd products (low 32 bits are sign-agnostic).
    const __m128i even = _mm_mul_epu32(a, b);
    const __m128i odd =
        _mm_mul_epu32(_mm_srli_epi64(a, 32), _mm_srli_epi64(b, 32));
    return _mm_unpacklo_epi32(
        _mm_shuffle_epi32(even, _MM_SHUFFLE(0, 0, 2, 0)),
        _mm_shuffle_epi32(odd, _MM_SHUFFLE(0, 0, 2, 0)));
  }
  static VI mulw_shr8(VI v, std::int32_t weight) {
    // Exact (int64)weight * v >> 8 per lane: both operands non-negative,
    // so the unsigned widening multiply matches the signed scalar product.
    const __m128i w = _mm_set1_epi32(weight);
    const __m128i even = _mm_srli_epi64(_mm_mul_epu32(v, w), 8);
    const __m128i odd =
        _mm_srli_epi64(_mm_mul_epu32(_mm_srli_epi64(v, 32), w), 8);
    return _mm_unpacklo_epi32(
        _mm_shuffle_epi32(even, _MM_SHUFFLE(0, 0, 2, 0)),
        _mm_shuffle_epi32(odd, _MM_SHUFFLE(0, 0, 2, 0)));
  }
  static VI sra_i32(VI v, int count) {
    return _mm_sra_epi32(v, _mm_cvtsi32_si128(count));
  }
  static VI min_i32(VI a, VI b) {
    const __m128i m = _mm_cmplt_epi32(a, b);
    return select_i32(m, a, b);
  }
  static MI cmplt_i32(VI a, VI b) { return _mm_cmplt_epi32(a, b); }
  static VI select_i32(MI m, VI a, VI b) {
    return _mm_or_si128(_mm_and_si128(m, a), _mm_andnot_si128(m, b));
  }
  static MI mask_i32_from_bytes(const std::uint8_t* p) {
    return _mm_cmpgt_epi32(load_u8_i32(p), _mm_setzero_si128());
  }
  static bool all_eq_i32(VI a, VI b) {
    return _mm_movemask_epi8(_mm_cmpeq_epi32(a, b)) == 0xFFFF;
  }
};

}  // namespace

const KernelTable& sse2_table() {
  static const KernelTable table = make_table<Sse2Backend>();
  return table;
}

}  // namespace sslic::kernels

// Deterministic, seedable pseudo-random number generation.
//
// All stochastic components of the reproduction (dataset synthesis, property
// tests) draw from this generator so every experiment is reproducible
// run-to-run and machine-to-machine (no std::random_device, no libstdc++
// distribution implementation dependence).
#pragma once

#include <cstdint>

namespace sslic {

/// xoshiro256++ PRNG seeded via SplitMix64. Deterministic across platforms.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eedu);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform in [0, bound). bound must be > 0. Uses rejection sampling for
  /// exact uniformity.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in the closed interval [lo, hi].
  int next_int(int lo, int hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform double in [lo, hi).
  double next_double(double lo, double hi);

  /// Standard normal variate (Box–Muller, deterministic).
  double next_gaussian();

  /// Bernoulli trial with probability p of returning true.
  bool next_bool(double p = 0.5);

  /// Forks an independent stream (distinct sequence for a sub-task without
  /// perturbing this stream's position).
  Rng fork();

 private:
  std::uint64_t s_[4];
  bool have_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace sslic

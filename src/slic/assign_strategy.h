// Runtime switch between the two CPA assignment schedules (DESIGN.md §4g):
//
//   row      The original center-perspective sweep: each active center
//            streams the rows of its 2Sx2S window through assign_center_row,
//            updating the min-distance/label planes in memory once per
//            covering center.
//   cluster  The gSLICr-style cluster-centric schedule: each grid-column x
//            row-band block gathers the centers whose windows intersect it,
//            partitions every row into spans with a constant covering set,
//            and resolves each span with one best-of-candidates kernel call
//            — the running minimum lives in registers, each pixel's Lab,
//            distance, and label entries are touched exactly once.
//
// Both schedules visit, per pixel, the same centers in the same ascending
// index order with the same strict-< IEEE arithmetic, so labels and centers
// are bit-identical either way (tests/test_fused.cpp sweeps both). PPA is
// natively cluster-centric (its tile loop *is* the per-block candidate
// scan), so the switch applies to CPA only.
//
// Resolution order mirrors fusion.h: a set_assign_strategy() override wins,
// otherwise the SSLIC_ASSIGN environment variable ("row", "cluster",
// "auto"), otherwise auto. Auto picks per run via
// resolve_assign_strategy(); benches and examples expose a `--assign=NAME`
// flag that calls set_assign_strategy().
#pragma once

#include <string>

#include "common/simd.h"

namespace sslic {

/// CPA assignment schedule selector. kAuto defers to
/// resolve_assign_strategy() at segmentation time.
enum class AssignStrategy {
  kAuto = 0,
  kRow = 1,
  kCluster = 2,
};

/// Lower-case name used by `SSLIC_ASSIGN` / `--assign` ("auto", "row",
/// "cluster"); round-trips through parse_assign_strategy.
const char* assign_strategy_name(AssignStrategy strategy);

/// Parses a strategy name (case-insensitive). Returns false and leaves
/// `out` untouched on an unknown name.
bool parse_assign_strategy(const std::string& text, AssignStrategy* out);

/// The configured strategy: override, else SSLIC_ASSIGN, else kAuto. May
/// return kAuto — segmenters resolve that per run.
AssignStrategy assign_strategy();

/// Resolves kAuto against the run's shape: the ISA the kernels will use,
/// the placed center count, and the image dimensions. Never returns kAuto.
/// An explicit row/cluster configuration is returned unchanged.
AssignStrategy resolve_assign_strategy(simd::Isa isa, int num_centers,
                                       int width, int height);

/// Process-wide override (e.g. from a `--assign` flag or a test sweeping
/// both schedules). Call at quiescent points only — mid-segmentation
/// toggles are not observed until the next segment() call.
void set_assign_strategy(AssignStrategy strategy);

/// Drops any override and falls back to the SSLIC_ASSIGN environment
/// default (used by tests that sweep both schedules).
void clear_assign_strategy_override();

/// RAII helper for tests: pins a strategy, restores the previous
/// resolution on destruction.
class AssignStrategyGuard {
 public:
  explicit AssignStrategyGuard(AssignStrategy strategy);
  ~AssignStrategyGuard();

  AssignStrategyGuard(const AssignStrategyGuard&) = delete;
  AssignStrategyGuard& operator=(const AssignStrategyGuard&) = delete;

 private:
  int previous_override_;  // -1 = none
};

}  // namespace sslic

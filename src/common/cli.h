// Minimal command-line flag parsing shared by the examples and benches.
// Flags take the form --name=value or --name value; bare --name sets a bool.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace sslic {

/// Parses `--key=value` / `--key value` / `--flag` style arguments.
/// Unrecognized positional arguments are collected in order.
class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv);

  /// True if `--name` was given (with or without a value).
  [[nodiscard]] bool has(const std::string& name) const;

  [[nodiscard]] std::string get_string(const std::string& name,
                                       const std::string& fallback) const;
  [[nodiscard]] int get_int(const std::string& name, int fallback) const;
  [[nodiscard]] double get_double(const std::string& name, double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;

  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  [[nodiscard]] const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace sslic

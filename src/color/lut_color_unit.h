// Bit-exact software model of the accelerator's color conversion unit
// (paper Fig. 4, Section 6.1).
//
// The unit converts 8-bit sRGB to 8-bit CIELAB entirely in integer
// arithmetic using two lookup structures:
//   * a 256-entry LUT implementing the inverse-gamma power function of
//     Eq. 1 (indexed directly by the 8-bit channel value), and
//   * an 8-segment piecewise-linear approximation of the cube-root-style
//     f(.) of Eq. 4. Segment boundaries are placed adaptively (greedy
//     max-error splitting, seeded with the linear/cube-root knee of Eq. 4)
//     and each segment stores a precomputed slope, so evaluation is one
//     compare-select, one multiply, and one add — the standard PWL
//     function-unit structure.
// The white-point normalization of Eq. 4 is folded into the matrix of
// Eq. 2 so the PWL input is already X/Xr, Y/Yr, Z/Zr.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "color/lab8.h"
#include "image/image.h"

namespace sslic {

/// Integer LUT-based sRGB -> Lab8 converter (hardware golden model).
class LutColorUnit {
 public:
  struct Config {
    /// Fractional bits of the internal fixed-point representation
    /// (gamma-LUT output, matrix coefficients, PWL nodes). The accelerator
    /// uses 12; tests sweep it to quantify the precision/size trade-off.
    int internal_frac_bits = 12;
    /// Number of piecewise-linear segments for Eq. 4's f(.). The
    /// accelerator uses 8 (paper Section 6.1).
    int pwl_segments = 8;
  };

  LutColorUnit();
  explicit LutColorUnit(Config config);

  /// Converts one pixel (bit-exact integer datapath).
  [[nodiscard]] Lab8 convert(Rgb8 rgb) const;

  /// Converts a full image into the scratch-pad planar layout
  /// (channel 1 = L, channel 2 = a, channel 3 = b; Section 4.3).
  [[nodiscard]] Planar8 convert(const RgbImage& image) const;

  /// Converts a full image into an interleaved Lab8 raster.
  [[nodiscard]] Image<Lab8> convert_interleaved(const RgbImage& image) const;

  [[nodiscard]] const Config& config() const { return config_; }

  /// Bytes of LUT storage the hardware would instantiate (gamma LUT + PWL
  /// node tables); consumed by the area model.
  [[nodiscard]] std::size_t lut_storage_bytes() const;

  /// Exposed for tests: the PWL approximation of Eq. 4's f(.) on a
  /// fixed-point input t (Q`internal_frac_bits`, clamped to [0,1]); returns
  /// f(t) in the same fixed-point format.
  [[nodiscard]] std::int32_t pwl_lab_f(std::int32_t t_fx) const;

 private:
  Config config_;
  std::int32_t one_fx_ = 0;  // 1.0 in Q(internal_frac_bits)

  // 256-entry inverse-gamma LUT, output in Q(internal_frac_bits).
  std::array<std::int32_t, 256> gamma_lut_{};

  // White-folded matrix coefficients in Q(internal_frac_bits):
  // row i computes (XYZ_i / white_i).
  std::array<std::int32_t, 9> matrix_fx_{};

  // PWL node positions, f values, and per-segment slopes, all in
  // Q(internal_frac_bits). node_t_/node_f_ have pwl_segments + 1 entries;
  // slope_fx_ has pwl_segments entries.
  std::vector<std::int32_t> node_t_;
  std::vector<std::int32_t> node_f_;
  std::vector<std::int64_t> slope_fx_;
};

}  // namespace sslic

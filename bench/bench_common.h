// Shared infrastructure for the paper-reproduction bench harness.
//
// Every bench binary accepts:
//   --images=N   corpus size for CPU experiments (default kept small enough
//                for a quick full-harness run; raise to the paper's 100-200
//                for publication-grade statistics)
//   --width/--height/--superpixels/--compactness to override the workload.
// Each binary prints the paper's published values next to the measured ones
// so the reproduction can be eyeballed directly.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#if defined(_WIN32)
#else
#include <unistd.h>
#endif

#include "common/cli.h"
#include "common/perf_counters.h"
#include "common/simd.h"
#include "common/stopwatch.h"
#include "common/table.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "dataset/synthetic.h"
#include "metrics/segmentation_metrics.h"
#include "slic/assign_kernels.h"
#include "slic/assign_strategy.h"
#include "slic/segmenter.h"

namespace sslic::bench {

/// Common workload configuration parsed from the command line.
struct BenchConfig {
  int images = 20;           ///< corpus size (paper: 100-200 BSDS images)
  int width = 481;           ///< BSDS image size
  int height = 321;
  int superpixels = 900;     ///< K for the quality experiments (Fig. 2)
  double compactness = 10.0;
  int iterations = 10;
  int annotators = 1;  ///< ground-truth annotations per image (BSDS has ~5)
  int threads = 0;     ///< worker threads; 0 = SSLIC_THREADS env or all cores
  std::uint64_t seed = 1000;

  /// Parses the common flags. As a side effect, `--threads=N` (or the
  /// `SSLIC_THREADS` environment variable when the flag is absent) resizes
  /// the global thread pool, `--simd=scalar|sse2|avx2|avx512|neon` (or the
  /// `SSLIC_SIMD` environment variable) selects the assignment-kernel ISA
  /// for the whole bench run, `--assign=auto|row|cluster` (or the
  /// `SSLIC_ASSIGN` environment variable) pins the CPA assignment
  /// schedule, and `--trace=out.json` arms the tracing session (dumped at
  /// process exit; see common/trace.h).
  static BenchConfig parse(int argc, const char* const* argv) {
    const CliArgs args(argc, argv);
    BenchConfig config;
    config.images = args.get_int("images", config.images);
    config.width = args.get_int("width", config.width);
    config.height = args.get_int("height", config.height);
    config.superpixels = args.get_int("superpixels", config.superpixels);
    config.compactness = args.get_double("compactness", config.compactness);
    config.iterations = args.get_int("iterations", config.iterations);
    config.annotators = args.get_int("annotators", config.annotators);
    config.threads = args.get_int("threads", config.threads);
    config.seed = static_cast<std::uint64_t>(args.get_int("seed", 1000));
    ThreadPool::set_global_threads(config.threads);
    config.threads = ThreadPool::global().threads();
    const std::string simd_request = args.get_string("simd", "");
    if (!simd_request.empty() && !simd::set_preferred_isa(simd_request)) {
      std::cerr << "unknown --simd value '" << simd_request
                << "' (expected scalar|sse2|avx2|avx512|neon)\n";
      std::exit(2);
    }
    const std::string assign_request = args.get_string("assign", "");
    if (!assign_request.empty()) {
      AssignStrategy strategy = AssignStrategy::kAuto;
      if (!parse_assign_strategy(assign_request, &strategy)) {
        std::cerr << "unknown --assign value '" << assign_request
                  << "' (expected auto|row|cluster)\n";
        std::exit(2);
      }
      set_assign_strategy(strategy);
    }
    const std::string trace_path = args.get_string("trace", "");
    if (!trace_path.empty()) {
      if (trace::compiled()) {
        trace::arm(trace_path);
      } else {
        std::cerr << "warning: --trace requested but this binary was built "
                     "with -DSSLIC_TRACING=OFF; no spans will be recorded\n";
      }
    }
    return config;
  }

  [[nodiscard]] SyntheticParams dataset_params() const {
    SyntheticParams p;
    p.width = width;
    p.height = height;
    return p;
  }

  [[nodiscard]] SlicParams slic_params() const {
    SlicParams p;
    p.num_superpixels = superpixels;
    p.compactness = compactness;
    p.max_iterations = iterations;
    return p;
  }
};

/// The CPU model string from /proc/cpuinfo ("unknown" when unavailable).
inline std::string cpu_model_name() {
  std::ifstream cpuinfo("/proc/cpuinfo");
  std::string line;
  while (std::getline(cpuinfo, line)) {
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    if (line.rfind("model name", 0) == 0)
      return line.substr(line.find_first_not_of(" \t", colon + 1));
  }
  return "unknown";
}

/// First line of a small /proc or /sys file, "" when unreadable — the
/// best-effort probe behind the machine-fingerprint metadata.
inline std::string read_sys_line(const std::string& path) {
  std::ifstream file(path);
  std::string line;
  if (!std::getline(file, line)) return "";
  while (!line.empty() && (line.back() == '\n' || line.back() == '\r'))
    line.pop_back();
  return line;
}

/// Kernel release string (uname -r), "unknown" when unavailable.
inline std::string kernel_release() {
  const std::string osrelease = read_sys_line("/proc/sys/kernel/osrelease");
  return osrelease.empty() ? "unknown" : osrelease;
}

/// CPU frequency-scaling hints from /sys, best effort: the governor and the
/// min/max scaling frequencies of cpu0. A bench run under the "powersave"
/// governor is not comparable to one under "performance" — the bench gate's
/// machine fingerprint records this so CI only compares like-for-like.
/// Fields are "" / 0 when the cpufreq sysfs tree is absent (containers,
/// VMs without frequency scaling exposed).
struct CpuFreqHints {
  std::string governor;
  long scaling_min_khz = 0;
  long scaling_max_khz = 0;
};

inline CpuFreqHints cpufreq_hints() {
  CpuFreqHints hints;
  const std::string base = "/sys/devices/system/cpu/cpu0/cpufreq/";
  hints.governor = read_sys_line(base + "scaling_governor");
  const std::string min_s = read_sys_line(base + "scaling_min_freq");
  const std::string max_s = read_sys_line(base + "scaling_max_freq");
  if (!min_s.empty()) hints.scaling_min_khz = std::atol(min_s.c_str());
  if (!max_s.empty()) hints.scaling_max_khz = std::atol(max_s.c_str());
  return hints;
}

/// The system page size in bytes (0 when unavailable).
inline long page_size_bytes() {
#if defined(_WIN32)
  return 0;
#else
  const long size = sysconf(_SC_PAGESIZE);
  return size > 0 ? size : 0;
#endif
}

/// Prints the standard bench banner.
inline void banner(const std::string& title, const BenchConfig& config) {
  std::cout << "==================================================================\n"
            << title << '\n'
            << "workload: " << config.images << " synthetic Berkeley-like images, "
            << config.width << 'x' << config.height << ", K=" << config.superpixels
            << ", m=" << config.compactness << ", threads=" << config.threads
            << ", simd=" << simd::isa_name(kernels::active_isa())
            << ", assign=" << assign_strategy_name(assign_strategy()) << '\n'
            << "(see DESIGN.md §1 for the BSDS substitution; --images=N to scale)\n"
            << "==================================================================\n";
}

/// Minimal JSON value tree for machine-readable bench artifacts
/// (BENCH_*.json). Supports exactly what the benches need: objects with
/// insertion-ordered keys, arrays, numbers, strings, and booleans.
class Json {
 public:
  static Json object() { return Json(Kind::kObject); }
  static Json array() { return Json(Kind::kArray); }
  Json(double v) : kind_(Kind::kNumber), number_(v) {}                // NOLINT
  Json(int v) : Json(static_cast<double>(v)) {}                      // NOLINT
  Json(std::int64_t v) : Json(static_cast<double>(v)) {}             // NOLINT
  Json(std::uint64_t v) : Json(static_cast<double>(v)) {}            // NOLINT
  Json(bool v) : kind_(Kind::kBool), bool_(v) {}                     // NOLINT
  Json(std::string v) : kind_(Kind::kString), string_(std::move(v)) {}  // NOLINT
  Json(const char* v) : Json(std::string(v)) {}                      // NOLINT

  Json& set(const std::string& key, Json value) {
    members_.emplace_back(key, std::make_shared<Json>(std::move(value)));
    return *this;
  }
  Json& push(Json value) {
    elements_.push_back(std::make_shared<Json>(std::move(value)));
    return *this;
  }

  void dump(std::ostream& out, int indent = 0) const {
    const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
    const std::string pad_in(static_cast<std::size_t>(indent + 1) * 2, ' ');
    switch (kind_) {
      case Kind::kObject: {
        out << "{";
        for (std::size_t i = 0; i < members_.size(); ++i) {
          out << (i == 0 ? "\n" : ",\n") << pad_in << '"'
              << escaped(members_[i].first) << "\": ";
          members_[i].second->dump(out, indent + 1);
        }
        out << (members_.empty() ? "" : "\n" + pad) << "}";
        break;
      }
      case Kind::kArray: {
        out << "[";
        for (std::size_t i = 0; i < elements_.size(); ++i) {
          out << (i == 0 ? "\n" : ",\n") << pad_in;
          elements_[i]->dump(out, indent + 1);
        }
        out << (elements_.empty() ? "" : "\n" + pad) << "]";
        break;
      }
      case Kind::kNumber: {
        std::ostringstream s;
        s.precision(12);
        s << number_;
        out << s.str();
        break;
      }
      case Kind::kString:
        out << '"' << escaped(string_) << '"';
        break;
      case Kind::kBool:
        out << (bool_ ? "true" : "false");
        break;
    }
  }

  /// Writes the tree to `path`; reports the artifact on stdout.
  void write_file(const std::string& path) const {
    std::ofstream out(path);
    dump(out);
    out << '\n';
    std::cout << "wrote " << path << '\n';
  }

 private:
  enum class Kind { kObject, kArray, kNumber, kString, kBool };
  explicit Json(Kind kind) : kind_(kind) {}

  static std::string escaped(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
      switch (c) {
        case '"':
          out += "\\\"";
          break;
        case '\\':
          out += "\\\\";
          break;
        case '\n':
          out += "\\n";
          break;
        case '\t':
          out += "\\t";
          break;
        case '\r':
          out += "\\r";
          break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x",
                          static_cast<unsigned>(static_cast<unsigned char>(c)));
            out += buf;
          } else {
            out.push_back(c);
          }
      }
    }
    return out;
  }

  Kind kind_ = Kind::kObject;
  double number_ = 0.0;
  std::string string_;
  bool bool_ = false;
  std::vector<std::pair<std::string, std::shared_ptr<Json>>> members_;
  std::vector<std::shared_ptr<Json>> elements_;
};

/// Standard machine-description block for BENCH_*.json artifacts: CPU
/// model, hardware thread count, the assignment-kernel ISA actually
/// selected (after env/flag override and CPU/binary clamping), plus the
/// fingerprint metadata the bench gate matches on: kernel release, page
/// size, and frequency-scaling hints.
inline Json machine_json() {
  Json backends = Json::array();
  for (const simd::Isa isa : {simd::Isa::kScalar, simd::Isa::kSse2,
                              simd::Isa::kAvx2, simd::Isa::kAvx512,
                              simd::Isa::kNeon}) {
    if (kernels::backend_compiled(isa) && simd::cpu_supports(isa))
      backends.push(simd::isa_name(isa));
  }
  const CpuFreqHints freq = cpufreq_hints();
  return Json::object()
      .set("cpu_model", cpu_model_name())
      .set("hardware_threads",
           static_cast<int>(std::thread::hardware_concurrency()))
      .set("simd_isa_selected", simd::isa_name(kernels::active_isa()))
      .set("simd_isas_available", std::move(backends))
      .set("kernel_release", kernel_release())
      .set("page_size_bytes", static_cast<std::int64_t>(page_size_bytes()))
      .set("cpufreq_governor",
           freq.governor.empty() ? "unknown" : freq.governor)
      .set("cpufreq_min_khz", static_cast<std::int64_t>(freq.scaling_min_khz))
      .set("cpufreq_max_khz", static_cast<std::int64_t>(freq.scaling_max_khz));
}

/// Builder for the normalized "gate" section of a BENCH_*.json artifact —
/// the part tools/bench_gate/bench_gate.py compares against the checked-in
/// baselines. Each metric carries its own unit, direction, and relative
/// noise tolerance so the gate needs no out-of-band threshold table:
///
///   "gate": {
///     "schema_version": 1,
///     "metrics": {
///       "fused_ms_per_image": {
///         "value": 12.3, "unit": "ms",
///         "direction": "lower_is_better", "tolerance": 0.10
///       }, ...
///     }
///   }
///
/// The machine fingerprint the gate matches lives in the artifact's
/// top-level "machine" block (machine_json() above).
class GateMetrics {
 public:
  static constexpr int kSchemaVersion = 1;

  GateMetrics& lower_is_better(const std::string& name, double value,
                               const std::string& unit, double tolerance) {
    return add(name, value, unit, "lower_is_better", tolerance);
  }
  GateMetrics& higher_is_better(const std::string& name, double value,
                                const std::string& unit, double tolerance) {
    return add(name, value, unit, "higher_is_better", tolerance);
  }

  [[nodiscard]] Json json() const {
    Json metrics = Json::object();
    for (const Entry& e : entries_) {
      metrics.set(e.name, Json::object()
                              .set("value", e.value)
                              .set("unit", e.unit)
                              .set("direction", e.direction)
                              .set("tolerance", e.tolerance));
    }
    return Json::object()
        .set("schema_version", kSchemaVersion)
        .set("metrics", std::move(metrics));
  }

 private:
  struct Entry {
    std::string name;
    double value;
    std::string unit;
    std::string direction;
    double tolerance;
  };

  GateMetrics& add(const std::string& name, double value,
                   const std::string& unit, const std::string& direction,
                   double tolerance) {
    entries_.push_back({name, value, unit, direction, tolerance});
    return *this;
  }

  std::vector<Entry> entries_;
};

/// Per-phase roofline summary rows shared by the benches: analytic
/// arithmetic intensity plus counter-measured IPC and DRAM traffic when the
/// perf backend is live (omitted when degraded). `elapsed_ms` is the wall
/// time the analytic bytes/ops were accumulated over, so achieved GB/s and
/// GOP/s can be derived.
inline Json roofline_json(double analytic_ops, double analytic_bytes,
                          double elapsed_ms, const perf::Delta& counters) {
  const double seconds = elapsed_ms / 1e3;
  Json row = Json::object();
  row.set("analytic_ops", analytic_ops)
      .set("analytic_bytes", analytic_bytes)
      .set("arithmetic_intensity_ops_per_byte",
           analytic_bytes > 0.0 ? analytic_ops / analytic_bytes : 0.0)
      .set("elapsed_ms", elapsed_ms)
      .set("analytic_gops_per_s",
           seconds > 0.0 ? analytic_ops / seconds / 1e9 : 0.0)
      .set("analytic_gb_per_s",
           seconds > 0.0 ? analytic_bytes / seconds / 1e9 : 0.0);
  if (counters.has(perf::Event::kCycles) &&
      counters.has(perf::Event::kInstructions)) {
    row.set("ipc", counters.ipc());
    row.set("instructions", counters[perf::Event::kInstructions]);
    row.set("cycles", counters[perf::Event::kCycles]);
  }
  if (counters.has(perf::Event::kLlcMisses)) {
    const double measured_bytes = counters.dram_bytes();
    row.set("measured_dram_bytes", measured_bytes);
    row.set("measured_gb_per_s",
            seconds > 0.0 ? measured_bytes / seconds / 1e9 : 0.0);
    if (analytic_bytes > 0.0)
      row.set("measured_vs_analytic_bytes", measured_bytes / analytic_bytes);
  }
  return row;
}

/// Quality metrics of one segmentation against ground truth.
struct Quality {
  double use = 0.0;       ///< Achanta undersegmentation error
  double use_min = 0.0;   ///< Neubert min-variant
  double recall = 0.0;    ///< boundary recall, tolerance 2
  double asa = 0.0;

  Quality& operator+=(const Quality& other) {
    use += other.use;
    use_min += other.use_min;
    recall += other.recall;
    asa += other.asa;
    return *this;
  }
  Quality& operator/=(double n) {
    use /= n;
    use_min /= n;
    recall /= n;
    asa /= n;
    return *this;
  }
};

inline Quality measure_quality(const LabelImage& labels, const LabelImage& truth) {
  const OverlapTable table(labels, truth);
  Quality q;
  q.use = undersegmentation_error(table);
  q.use_min = undersegmentation_error_min(table);
  q.recall = boundary_recall(labels, truth, 2);
  q.asa = achievable_segmentation_accuracy(table);
  return q;
}

/// Quality averaged over several annotators (the BSDS protocol).
inline Quality measure_quality(const LabelImage& labels,
                               const std::vector<LabelImage>& truths) {
  const MultiGroundTruthQuality m = evaluate_against_annotators(labels, truths, 2);
  Quality q;
  q.use = m.use_mean;
  q.use_min = m.use_min_mean;
  q.recall = m.recall_mean;
  q.asa = m.asa_mean;
  return q;
}

/// One point of a quality-versus-time curve (Fig. 2 axes).
struct CurvePoint {
  double time_ms = 0.0;  ///< cumulative iteration wall time (mean per image)
  Quality quality;
  std::size_t pixels_visited = 0;  ///< cumulative, mean per image
};

}  // namespace sslic::bench

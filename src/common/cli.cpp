#include "common/cli.h"

#include <cstdlib>

#include "common/check.h"

namespace sslic {

CliArgs::CliArgs(int argc, const char* const* argv) {
  SSLIC_CHECK(argc >= 1);
  program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      flags_[body.substr(0, eq)] = body.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[body] = argv[++i];
    } else {
      flags_[body] = "true";
    }
  }
}

bool CliArgs::has(const std::string& name) const { return flags_.count(name) > 0; }

std::string CliArgs::get_string(const std::string& name,
                                const std::string& fallback) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

int CliArgs::get_int(const std::string& name, int fallback) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? fallback : std::atoi(it->second.c_str());
}

double CliArgs::get_double(const std::string& name, double fallback) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? fallback : std::atof(it->second.c_str());
}

bool CliArgs::get_bool(const std::string& name, bool fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace sslic

// Heap-allocation counter for zero-allocation assertions.
//
// A translation unit that expands SSLIC_INSTALL_COUNTING_ALLOCATOR() at
// namespace scope replaces the global operator new/delete family for its
// whole binary with malloc/free-backed versions that bump a counter on
// every allocation. tests/test_fused.cpp uses it to prove TemporalSlic's
// steady state allocates nothing per frame; examples/video_pipeline.cpp
// uses it for the per-frame allocation column of its summary.
//
// The macro must be expanded in exactly one TU of a binary (ODR: these are
// definitions of the global replacement functions). Counting uses relaxed
// atomics — the counter is read only at quiescent points, never used for
// synchronization.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>

namespace sslic::alloc_counter {

inline std::atomic<std::uint64_t> g_allocations{0};

/// Total operator-new calls (all variants) since process start.
inline std::uint64_t allocations() {
  return g_allocations.load(std::memory_order_relaxed);
}

/// Counts allocations performed by `fn()`.
template <typename Fn>
std::uint64_t count_allocations(Fn&& fn) {
  const std::uint64_t before = allocations();
  fn();
  return allocations() - before;
}

}  // namespace sslic::alloc_counter

// clang-format off
#define SSLIC_INSTALL_COUNTING_ALLOCATOR()                                     \
  static void* sslic_counted_alloc(std::size_t size, std::size_t align) {      \
    sslic::alloc_counter::g_allocations.fetch_add(1,                           \
        std::memory_order_relaxed);                                            \
    if (size == 0) size = 1;                                                   \
    void* p = align <= alignof(std::max_align_t)                               \
                  ? std::malloc(size)                                          \
                  : std::aligned_alloc(align, (size + align - 1) / align * align); \
    return p;                                                                  \
  }                                                                            \
  void* operator new(std::size_t size) {                                       \
    void* p = sslic_counted_alloc(size, alignof(std::max_align_t));            \
    if (p == nullptr) throw std::bad_alloc{};                                  \
    return p;                                                                  \
  }                                                                            \
  void* operator new[](std::size_t size) { return ::operator new(size); }      \
  void* operator new(std::size_t size, std::align_val_t align) {               \
    void* p = sslic_counted_alloc(size, static_cast<std::size_t>(align));      \
    if (p == nullptr) throw std::bad_alloc{};                                  \
    return p;                                                                  \
  }                                                                            \
  void* operator new[](std::size_t size, std::align_val_t align) {             \
    return ::operator new(size, align);                                        \
  }                                                                            \
  void* operator new(std::size_t size, const std::nothrow_t&) noexcept {       \
    return sslic_counted_alloc(size, alignof(std::max_align_t));               \
  }                                                                            \
  void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {     \
    return sslic_counted_alloc(size, alignof(std::max_align_t));               \
  }                                                                            \
  void operator delete(void* p) noexcept { std::free(p); }                     \
  void operator delete[](void* p) noexcept { std::free(p); }                   \
  void operator delete(void* p, std::size_t) noexcept { std::free(p); }        \
  void operator delete[](void* p, std::size_t) noexcept { std::free(p); }      \
  void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }   \
  void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); } \
  void operator delete(void* p, std::size_t, std::align_val_t) noexcept {      \
    std::free(p);                                                              \
  }                                                                            \
  void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {    \
    std::free(p);                                                              \
  }                                                                            \
  void operator delete(void* p, const std::nothrow_t&) noexcept {              \
    std::free(p);                                                              \
  }                                                                            \
  void operator delete[](void* p, const std::nothrow_t&) noexcept {            \
    std::free(p);                                                              \
  }                                                                            \
  static_assert(true, "require a trailing semicolon")
// clang-format on

// Low-overhead scoped tracing spans serialized as Chrome trace-event JSON
// (loadable in Perfetto or chrome://tracing).
//
// Recording model: each thread owns a fixed-capacity buffer of complete
// events ({name, begin_ns, end_ns, arg}); a span writes exactly one event at
// scope exit, into its own buffer, with no locks on the hot path. Buffers
// are registered in a process-wide list (and intentionally never freed), so
// a dump sees events from threads that have already exited. When a buffer
// fills, further events from that thread are counted as dropped rather than
// wrapping — slots are write-once, which is what makes concurrent
// serialization race-free (events are published with a release store on the
// buffer's count; the reader only touches slots below its acquire load).
//
// Arming: spans record only while the session is armed. `SSLIC_TRACE=<path>`
// in the environment arms at startup and dumps to <path> at process exit;
// examples and benches also expose `--trace=<path>`. A disarmed span costs
// one relaxed atomic load — no clock reads, no stores.
//
// Detail levels: `SSLIC_TRACE_SCOPE` records whenever armed. Finer spans
// (per tile/center, per SIMD kernel call) use `SSLIC_TRACE_SCOPE_AT(level,
// ...)` and record only when `SSLIC_TRACE_DETAIL` >= level, so the default
// armed trace stays cheap and small.
//
// Compile-out: building with -DSSLIC_TRACING=OFF defines
// SSLIC_TRACING_ENABLED=0; the macros expand to nothing, Span/Interval
// become empty types, and the session functions compile to stubs — the
// no-op path is covered by a CI job.
#pragma once

#ifndef SSLIC_TRACING_ENABLED
#define SSLIC_TRACING_ENABLED 1
#endif

#include <cstdint>
#include <iosfwd>
#include <string>

#if SSLIC_TRACING_ENABLED
#include <atomic>
#endif

namespace sslic::trace {

/// Sentinel for "span carries no argument".
inline constexpr std::int64_t kNoArg = INT64_MIN;

/// True when spans are compiled in (SSLIC_TRACING build option).
constexpr bool compiled() { return SSLIC_TRACING_ENABLED != 0; }

/// Monotonic nanoseconds since the process trace epoch.
std::uint64_t now_ns();

/// Arms the session and schedules a dump of the trace to `path` at process
/// exit (idempotent; the last path wins). A no-op stub when compiled out.
void arm(const std::string& path);

/// Disarms without dumping (cancels a pending exit dump).
void disarm();

/// True while spans record.
bool armed();

/// Raises/lowers recording without touching the exit-dump path — for tests
/// and benches that serialize explicitly.
void set_armed(bool armed);

/// Detail threshold for SSLIC_TRACE_SCOPE_AT (default 0; `SSLIC_TRACE_DETAIL`
/// env). Level 1 adds per-tile/per-center spans, level 2 per-kernel-call.
int detail_level();
void set_detail_level(int level);

/// Names the calling thread in the trace (Perfetto thread track label).
void set_thread_name(const std::string& name);

/// Writes the Chrome trace-event JSON for everything recorded so far.
/// Callers must ensure recording threads are quiescent (or disarm first).
void serialize(std::ostream& os);

/// serialize() to a file; returns false on I/O failure.
bool write_file(const std::string& path);

/// Discards all recorded events (buffers stay registered). Quiescence
/// required, as with serialize().
void reset();

/// Events lost to full per-thread buffers since the last reset().
std::uint64_t dropped_events();

#if SSLIC_TRACING_ENABLED

namespace detail {
extern std::atomic<bool> g_armed;
extern std::atomic<int> g_detail;
void record(const char* name, std::uint64_t begin_ns, std::uint64_t end_ns,
            std::int64_t arg);
}  // namespace detail

/// RAII span: one complete event from construction to destruction.
/// `name` must have static storage duration (only the pointer is stored).
class Span {
 public:
  explicit Span(const char* name, std::int64_t arg = kNoArg)
      : name_(name), arg_(arg),
        armed_(detail::g_armed.load(std::memory_order_relaxed)) {
    if (armed_) begin_ = now_ns();
  }
  ~Span() {
    if (armed_) detail::record(name_, begin_, now_ns(), arg_);
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;
  std::int64_t arg_;
  bool armed_;
  std::uint64_t begin_ = 0;
};

/// Span recorded only at or above a detail level (see detail_level()).
class DetailSpan {
 public:
  DetailSpan(int level, const char* name, std::int64_t arg = kNoArg)
      : name_(name), arg_(arg),
        armed_(detail::g_armed.load(std::memory_order_relaxed) &&
               detail::g_detail.load(std::memory_order_relaxed) >= level) {
    if (armed_) begin_ = now_ns();
  }
  ~DetailSpan() {
    if (armed_) detail::record(name_, begin_, now_ns(), arg_);
  }

  DetailSpan(const DetailSpan&) = delete;
  DetailSpan& operator=(const DetailSpan&) = delete;

 private:
  const char* name_;
  std::int64_t arg_;
  bool armed_;
  std::uint64_t begin_ = 0;
};

/// Manual begin/complete spans for back-to-back regions that straddle block
/// boundaries (mirrors the Stopwatch-per-phase pattern): complete() records
/// the region since construction (or the previous complete()) and re-arms
/// for the next one.
class Interval {
 public:
  Interval()
      : armed_(detail::g_armed.load(std::memory_order_relaxed)),
        begin_(armed_ ? now_ns() : 0) {}

  void complete(const char* name, std::int64_t arg = kNoArg) {
    if (armed_) detail::record(name, begin_, now_ns(), arg);
    armed_ = detail::g_armed.load(std::memory_order_relaxed);
    begin_ = armed_ ? now_ns() : 0;
  }

 private:
  bool armed_;
  std::uint64_t begin_;
};

#else  // !SSLIC_TRACING_ENABLED — empty types, zero code at call sites

class Span {
 public:
  explicit Span(const char*, std::int64_t = kNoArg) {}
};
class DetailSpan {
 public:
  DetailSpan(int, const char*, std::int64_t = kNoArg) {}
};
class Interval {
 public:
  void complete(const char*, std::int64_t = kNoArg) {}
};

#endif  // SSLIC_TRACING_ENABLED

}  // namespace sslic::trace

#define SSLIC_TRACE_CONCAT2(a, b) a##b
#define SSLIC_TRACE_CONCAT(a, b) SSLIC_TRACE_CONCAT2(a, b)

#if SSLIC_TRACING_ENABLED
#define SSLIC_TRACE_SCOPE(...) \
  ::sslic::trace::Span SSLIC_TRACE_CONCAT(sslic_trace_span_, __LINE__)(__VA_ARGS__)
#define SSLIC_TRACE_SCOPE_AT(level, ...)                               \
  ::sslic::trace::DetailSpan SSLIC_TRACE_CONCAT(sslic_trace_span_,     \
                                                __LINE__)(level, __VA_ARGS__)
#else
#define SSLIC_TRACE_SCOPE(...) static_cast<void>(0)
#define SSLIC_TRACE_SCOPE_AT(...) static_cast<void>(0)
#endif

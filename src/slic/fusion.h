// Runtime switch between the fused single-pass iteration loop (assignment
// and sigma accumulation in one band sweep — the software analogue of the
// accelerator's tile-resident update unit, paper Section 5) and the
// original two-pass loop it replaced.
//
// Fusion is on by default; the two-pass path is kept alive as an escape
// hatch for A/B measurement and for CI golden cross-checks (labels and
// centers are bit-identical either way — tests/test_fused.cpp enforces it).
// Resolution order: a set_fusion() override wins, otherwise the SSLIC_FUSE
// environment variable ("0" disables), otherwise on. Benches and examples
// expose a `--no-fuse` flag that calls set_fusion(false).
#pragma once

namespace sslic {

/// True when segmenters should run the fused single-pass iteration loop.
bool fusion_enabled();

/// Process-wide override (e.g. from a `--no-fuse` flag or a test sweeping
/// both paths). Call at quiescent points only — mid-segmentation toggles
/// are not observed until the next segment() call.
void set_fusion(bool enabled);

/// Drops any override and falls back to the SSLIC_FUSE environment default
/// (used by tests that sweep both paths).
void clear_fusion_override();

/// RAII helper for tests: pins fusion on/off, restores the previous
/// resolution on destruction.
class FusionGuard {
 public:
  explicit FusionGuard(bool enabled);
  ~FusionGuard();

  FusionGuard(const FusionGuard&) = delete;
  FusionGuard& operator=(const FusionGuard&) = delete;

 private:
  int previous_override_;  // -1 = none
};

}  // namespace sslic

#include "image/draw.h"

#include <algorithm>
#include <vector>

#include "common/check.h"

namespace sslic {

Image<std::uint8_t> boundary_mask(const LabelImage& labels) {
  const int w = labels.width();
  const int h = labels.height();
  Image<std::uint8_t> mask(w, h, 0);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      const std::int32_t here = labels(x, y);
      if ((x + 1 < w && labels(x + 1, y) != here) ||
          (y + 1 < h && labels(x, y + 1) != here)) {
        mask(x, y) = 1;
      }
    }
  }
  return mask;
}

RgbImage overlay_boundaries(const RgbImage& image, const LabelImage& labels,
                            Rgb8 color) {
  SSLIC_CHECK(image.width() == labels.width() && image.height() == labels.height());
  RgbImage out = image;
  const Image<std::uint8_t> mask = boundary_mask(labels);
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (mask.pixels()[i] != 0) out.pixels()[i] = color;
  }
  return out;
}

RgbImage mean_color_abstraction(const RgbImage& image, const LabelImage& labels) {
  SSLIC_CHECK(image.width() == labels.width() && image.height() == labels.height());
  std::int32_t max_label = 0;
  for (const auto label : labels.pixels()) {
    SSLIC_CHECK(label >= 0);
    max_label = std::max(max_label, label);
  }
  struct Acc {
    std::uint64_t r = 0, g = 0, b = 0, n = 0;
  };
  std::vector<Acc> acc(static_cast<std::size_t>(max_label) + 1);
  for (std::size_t i = 0; i < image.size(); ++i) {
    Acc& a = acc[static_cast<std::size_t>(labels.pixels()[i])];
    a.r += image.pixels()[i].r;
    a.g += image.pixels()[i].g;
    a.b += image.pixels()[i].b;
    a.n += 1;
  }
  RgbImage out(image.width(), image.height());
  for (std::size_t i = 0; i < image.size(); ++i) {
    const Acc& a = acc[static_cast<std::size_t>(labels.pixels()[i])];
    const auto mean = [&](std::uint64_t sum) {
      return static_cast<std::uint8_t>(a.n == 0 ? 0 : (sum + a.n / 2) / a.n);
    };
    out.pixels()[i] = {mean(a.r), mean(a.g), mean(a.b)};
  }
  return out;
}

}  // namespace sslic

#include "slic/subset_schedule.h"

#include <cmath>

namespace sslic {

SubsetSchedule::SubsetSchedule(int count, SubsetPattern pattern)
    : count_(count) {
  SSLIC_CHECK_MSG(count >= 1 && count <= 64, "subset count " << count);
  if (count == 1)
    pattern_ = Pattern::kAll;
  else if (pattern == SubsetPattern::kRowInterleaved)
    pattern_ = Pattern::kRows;
  else if (count == 2)
    pattern_ = Pattern::kCheckerboard;
  else if (count == 4)
    pattern_ = Pattern::kBayer2x2;
  else
    pattern_ = Pattern::kDiagonal;
}

SubsetSchedule SubsetSchedule::from_ratio(double ratio, SubsetPattern pattern) {
  SSLIC_CHECK_MSG(ratio > 0.0 && ratio <= 1.0, "subsample ratio " << ratio);
  const double inv = 1.0 / ratio;
  const int count = static_cast<int>(std::lround(inv));
  SSLIC_CHECK_MSG(std::fabs(inv - count) < 1e-9,
                  "subsample ratio must be 1/n, got " << ratio);
  return SubsetSchedule(count, pattern);
}

}  // namespace sslic

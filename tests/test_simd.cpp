// Tests for the SIMD assignment kernels and their runtime dispatch: every
// vector backend compiled into the binary (and supported by this CPU) must
// produce byte-identical min-distances and labels to the scalar reference —
// across odd widths, unaligned row starts, every tail length, subset masks,
// and distance ties (equal distances must keep the lowest center index).
// The end-to-end tests assert the same for whole CpaSlic/PpaSlic/HwSlic
// runs through the ISA override.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/simd.h"
#include "common/telemetry.h"
#include "dataset/synthetic.h"
#include "slic/assign_kernels.h"
#include "slic/assign_strategy.h"
#include "slic/hw_datapath.h"
#include "slic/slic_baseline.h"
#include "slic/subsampled.h"
#include "slic/types.h"

namespace sslic {
namespace {

/// Restores the process-wide ISA preference (env/auto detection) on scope
/// exit so tests cannot leak an override into each other.
struct IsaGuard {
  ~IsaGuard() { simd::reset_preferred_isa(); }
};

/// The vector backends this binary can both execute and has compiled in.
std::vector<simd::Isa> testable_vector_isas() {
  std::vector<simd::Isa> isas;
  for (const simd::Isa isa :
       {simd::Isa::kSse2, simd::Isa::kAvx2, simd::Isa::kAvx512,
        simd::Isa::kNeon}) {
    if (kernels::backend_compiled(isa) && simd::cpu_supports(isa))
      isas.push_back(isa);
  }
  return isas;
}

TEST(SimdDispatch, ParseNamesRoundTrip) {
  // Every enum value must round-trip through its name — including ISAs this
  // binary or CPU cannot run (parsing is pure string handling).
  for (const simd::Isa isa :
       {simd::Isa::kScalar, simd::Isa::kSse2, simd::Isa::kAvx2,
        simd::Isa::kAvx512, simd::Isa::kNeon}) {
    simd::Isa parsed = simd::Isa::kScalar;
    ASSERT_TRUE(simd::parse_isa(simd::isa_name(isa), &parsed));
    EXPECT_EQ(parsed, isa);
  }
  simd::Isa parsed = simd::Isa::kAvx2;
  EXPECT_TRUE(simd::parse_isa("off", &parsed));
  EXPECT_EQ(parsed, simd::Isa::kScalar);
  EXPECT_TRUE(simd::parse_isa("NONE", &parsed));
  EXPECT_EQ(parsed, simd::Isa::kScalar);
  // Unknown names fail and leave the output untouched.
  parsed = simd::Isa::kAvx2;
  EXPECT_FALSE(simd::parse_isa("avx1024", &parsed));
  EXPECT_EQ(parsed, simd::Isa::kAvx2);
}

TEST(SimdDispatch, OverrideClampsToCpuAndBinary) {
  IsaGuard guard;
  simd::set_preferred_isa(simd::Isa::kScalar);
  EXPECT_EQ(kernels::active_isa(), simd::Isa::kScalar);
  // Requesting more than the CPU/binary offers degrades, never crashes —
  // for every rung of the ladder.
  for (const simd::Isa want :
       {simd::Isa::kSse2, simd::Isa::kAvx2, simd::Isa::kAvx512,
        simd::Isa::kNeon}) {
    simd::set_preferred_isa(want);
    const simd::Isa resolved = kernels::active_isa();
    EXPECT_TRUE(kernels::backend_compiled(resolved))
        << "want=" << simd::isa_name(want);
    EXPECT_TRUE(simd::cpu_supports(resolved))
        << "want=" << simd::isa_name(want);
  }
  // A scalar table is always available.
  EXPECT_TRUE(kernels::backend_compiled(simd::Isa::kScalar));
}

TEST(SimdDispatch, ClampIsDeterministicAndReportedViaTelemetry) {
  // Requesting an ISA the CPU or binary lacks (e.g. SSLIC_SIMD=avx512 on an
  // AVX2-only host) must clamp downward to the same effective ISA on every
  // resolution, and that effective ISA must be visible to telemetry readers
  // as the `sslic.simd.active_isa` gauge.
  IsaGuard guard;
  auto& registry = telemetry::MetricsRegistry::global();
  for (const simd::Isa want :
       {simd::Isa::kScalar, simd::Isa::kSse2, simd::Isa::kAvx2,
        simd::Isa::kAvx512, simd::Isa::kNeon}) {
    simd::set_preferred_isa(want);
    const simd::Isa first = kernels::active_isa();
    const simd::Isa second = kernels::active_isa();
    ASSERT_EQ(first, second) << "want=" << simd::isa_name(want);
    // The clamp never resolves upward past the request on the x86 ladder,
    // and always lands on something this machine can actually run.
    EXPECT_TRUE(kernels::backend_compiled(first))
        << "want=" << simd::isa_name(want);
    EXPECT_TRUE(simd::cpu_supports(first)) << "want=" << simd::isa_name(want);
    EXPECT_EQ(registry.gauge("sslic.simd.active_isa").value(),
              static_cast<double>(first))
        << "want=" << simd::isa_name(want);
  }
  // String overrides clamp identically (the SSLIC_SIMD env path).
  simd::set_preferred_isa("avx512");
  const simd::Isa via_string = kernels::active_isa();
  simd::set_preferred_isa(simd::Isa::kAvx512);
  EXPECT_EQ(kernels::active_isa(), via_string);
  EXPECT_EQ(registry.gauge("sslic.simd.active_isa").value(),
            static_cast<double>(via_string));
}

/// Shared fuzz fixture state: planar float rows with a deliberately odd
/// amount of slack so the kernels see arbitrary (unaligned) row starts.
struct FloatRows {
  std::vector<float> L, a, b;
  std::vector<double> min_dist;
  std::vector<std::int32_t> labels;
  std::vector<std::uint8_t> active;
};

FloatRows make_float_rows(Rng& rng, std::size_t size) {
  FloatRows rows;
  rows.L.resize(size);
  rows.a.resize(size);
  rows.b.resize(size);
  rows.min_dist.resize(size);
  rows.labels.resize(size);
  rows.active.resize(size);
  for (std::size_t i = 0; i < size; ++i) {
    rows.L[i] = static_cast<float>(rng.next_double(0.0, 100.0));
    rows.a[i] = static_cast<float>(rng.next_double(-90.0, 90.0));
    rows.b[i] = static_cast<float>(rng.next_double(-90.0, 90.0));
    // Mix of "fresh" (infinity) and already-tight running minima so both
    // branches of the compare are exercised.
    rows.min_dist[i] = rng.next_bool(0.3)
                           ? std::numeric_limits<double>::infinity()
                           : rng.next_double(0.0, 4000.0);
    rows.labels[i] = rng.next_int(0, 500);
    rows.active[i] = rng.next_bool(0.6) ? 1 : 0;
  }
  return rows;
}

kernels::CenterOperand random_center(Rng& rng, int max_xy,
                                     std::int32_t index) {
  return {rng.next_double(0.0, 100.0), rng.next_double(-90.0, 90.0),
          rng.next_double(-90.0, 90.0),
          rng.next_double(0.0, static_cast<double>(max_xy)),
          rng.next_double(0.0, static_cast<double>(max_xy)), index};
}

TEST(SimdKernels, AssignCenterRowMatchesScalarExactly) {
  const std::vector<simd::Isa> isas = testable_vector_isas();
  if (isas.empty()) GTEST_SKIP() << "no vector backend compiled for this CPU";
  const kernels::KernelTable& scalar = kernels::scalar_table();

  Rng rng(0x51c0ffee);
  for (int trial = 0; trial < 300; ++trial) {
    // Odd widths and every tail length 0..lanes-1 (widths 1..37 cover both
    // 2-, 4-, and 8-lane tails), plus an arbitrary start offset so rows are
    // unaligned relative to the allocation.
    const std::int32_t count = rng.next_int(1, 37);
    const std::size_t offset = static_cast<std::size_t>(rng.next_int(0, 7));
    const std::int32_t x0 = rng.next_int(0, 400);
    const double y = static_cast<double>(rng.next_int(0, 300));
    const double weight = rng.next_double(0.001, 2.0);
    const kernels::CenterOperand center =
        random_center(rng, 400, rng.next_int(0, 99));
    const FloatRows base =
        make_float_rows(rng, offset + static_cast<std::size_t>(count));

    FloatRows ref = base;
    scalar.assign_center_row(ref.L.data() + offset, ref.a.data() + offset,
                             ref.b.data() + offset, x0, count, y, center,
                             weight, ref.min_dist.data() + offset,
                             ref.labels.data() + offset);
    for (const simd::Isa isa : isas) {
      FloatRows got = base;
      kernels::table_for(isa).assign_center_row(
          got.L.data() + offset, got.a.data() + offset, got.b.data() + offset,
          x0, count, y, center, weight, got.min_dist.data() + offset,
          got.labels.data() + offset);
      ASSERT_EQ(std::memcmp(got.min_dist.data(), ref.min_dist.data(),
                            ref.min_dist.size() * sizeof(double)),
                0)
          << "min_dist diverged, isa=" << simd::isa_name(isa)
          << " trial=" << trial;
      ASSERT_EQ(got.labels, ref.labels)
          << "labels diverged, isa=" << simd::isa_name(isa)
          << " trial=" << trial;
    }
  }
}

TEST(SimdKernels, AssignCenterRowTieKeepsExistingLabel) {
  // Re-running the identical center with a different index produces equal
  // distances everywhere; the strict `<` must keep the first label.
  const std::vector<simd::Isa> isas = testable_vector_isas();
  Rng rng(7);
  const std::int32_t count = 23;
  const FloatRows base = make_float_rows(rng, static_cast<std::size_t>(count));
  kernels::CenterOperand center = random_center(rng, 100, 3);
  std::vector<simd::Isa> all = isas;
  all.push_back(simd::Isa::kScalar);
  for (const simd::Isa isa : all) {
    FloatRows rows = base;
    const kernels::KernelTable& kt = kernels::table_for(isa);
    kt.assign_center_row(rows.L.data(), rows.a.data(), rows.b.data(), 5, count,
                         9.0, center, 0.5, rows.min_dist.data(),
                         rows.labels.data());
    const std::vector<std::int32_t> first = rows.labels;
    kernels::CenterOperand twin = center;
    twin.index = 77;
    kt.assign_center_row(rows.L.data(), rows.a.data(), rows.b.data(), 5, count,
                         9.0, twin, 0.5, rows.min_dist.data(),
                         rows.labels.data());
    EXPECT_EQ(rows.labels, first) << "isa=" << simd::isa_name(isa);
  }
}

TEST(SimdKernels, AssignCandidatesRowMatchesScalarExactly) {
  const std::vector<simd::Isa> isas = testable_vector_isas();
  if (isas.empty()) GTEST_SKIP() << "no vector backend compiled for this CPU";
  const kernels::KernelTable& scalar = kernels::scalar_table();

  Rng rng(0xbadc0de);
  for (int trial = 0; trial < 300; ++trial) {
    const std::int32_t count = rng.next_int(1, 37);
    const std::size_t offset = static_cast<std::size_t>(rng.next_int(0, 7));
    const std::int32_t x0 = rng.next_int(0, 400);
    const double y = static_cast<double>(rng.next_int(0, 300));
    const double weight = rng.next_double(0.001, 2.0);
    const std::int32_t ncand = rng.next_int(1, 9);
    std::array<kernels::CenterOperand, 9> cands;
    for (std::int32_t k = 0; k < ncand; ++k)
      cands[static_cast<std::size_t>(k)] = random_center(rng, 400, k * 11);
    if (ncand >= 2 && rng.next_bool(0.5)) {
      // Duplicate candidate with a different index: equal distances must
      // resolve to the earlier slot in every lane.
      kernels::CenterOperand dup = cands[0];
      dup.index = 999;
      cands[static_cast<std::size_t>(ncand - 1)] = dup;
    }
    const FloatRows base =
        make_float_rows(rng, offset + static_cast<std::size_t>(count));
    // Mask modes: all pixels (null), random subset, every pixel masked off.
    const int mask_mode = rng.next_int(0, 2);

    FloatRows ref = base;
    if (mask_mode == 2)
      std::fill(ref.active.begin(), ref.active.end(), std::uint8_t{0});
    const std::uint8_t* ref_mask =
        mask_mode == 0 ? nullptr : ref.active.data() + offset;
    scalar.assign_candidates_row(ref.L.data() + offset, ref.a.data() + offset,
                                 ref.b.data() + offset, x0, count, y,
                                 cands.data(), ncand, weight, ref_mask,
                                 ref.min_dist.data() + offset,
                                 ref.labels.data() + offset);
    for (const simd::Isa isa : isas) {
      FloatRows got = base;
      if (mask_mode == 2)
        std::fill(got.active.begin(), got.active.end(), std::uint8_t{0});
      const std::uint8_t* got_mask =
          mask_mode == 0 ? nullptr : got.active.data() + offset;
      kernels::table_for(isa).assign_candidates_row(
          got.L.data() + offset, got.a.data() + offset, got.b.data() + offset,
          x0, count, y, cands.data(), ncand, weight, got_mask,
          got.min_dist.data() + offset, got.labels.data() + offset);
      ASSERT_EQ(std::memcmp(got.min_dist.data(), ref.min_dist.data(),
                            ref.min_dist.size() * sizeof(double)),
                0)
          << "min_dist diverged, isa=" << simd::isa_name(isa)
          << " trial=" << trial << " mask_mode=" << mask_mode;
      ASSERT_EQ(got.labels, ref.labels)
          << "labels diverged, isa=" << simd::isa_name(isa)
          << " trial=" << trial << " mask_mode=" << mask_mode;
    }
  }
}

TEST(SimdKernels, AssignCandidatesRowSeededMatchesCenterRowChain) {
  // The seeded kernel's contract: one call over an ascending candidate list
  // leaves exactly the bytes that visiting the same centers one by one with
  // assign_center_row leaves (the row-sweep path of the cluster-centric
  // schedule's determinism argument). Reference = scalar center-row chain;
  // every backend's seeded kernel must match it byte for byte.
  std::vector<simd::Isa> isas = testable_vector_isas();
  isas.push_back(simd::Isa::kScalar);
  const kernels::KernelTable& scalar = kernels::scalar_table();

  Rng rng(0x5eeded);
  for (int trial = 0; trial < 300; ++trial) {
    const std::int32_t count = rng.next_int(1, 37);
    const std::size_t offset = static_cast<std::size_t>(rng.next_int(0, 7));
    const std::int32_t x0 = rng.next_int(0, 400);
    const double y = static_cast<double>(rng.next_int(0, 300));
    const double weight = rng.next_double(0.001, 2.0);
    const std::int32_t ncand = rng.next_int(1, 9);
    std::array<kernels::CenterOperand, 9> cands;
    for (std::int32_t k = 0; k < ncand; ++k)
      cands[static_cast<std::size_t>(k)] = random_center(rng, 400, k * 11);
    if (ncand >= 2 && rng.next_bool(0.5)) {
      // Duplicate candidate: the tie must keep the earlier evaluation.
      kernels::CenterOperand dup = cands[0];
      dup.index = 999;
      cands[static_cast<std::size_t>(ncand - 1)] = dup;
    }
    const FloatRows base =
        make_float_rows(rng, offset + static_cast<std::size_t>(count));

    FloatRows ref = base;
    for (std::int32_t k = 0; k < ncand; ++k) {
      scalar.assign_center_row(ref.L.data() + offset, ref.a.data() + offset,
                               ref.b.data() + offset, x0, count, y,
                               cands[static_cast<std::size_t>(k)], weight,
                               ref.min_dist.data() + offset,
                               ref.labels.data() + offset);
    }
    for (const simd::Isa isa : isas) {
      FloatRows got = base;
      kernels::table_for(isa).assign_candidates_row_seeded(
          got.L.data() + offset, got.a.data() + offset, got.b.data() + offset,
          x0, count, y, cands.data(), ncand, weight,
          got.min_dist.data() + offset, got.labels.data() + offset);
      ASSERT_EQ(std::memcmp(got.min_dist.data(), ref.min_dist.data(),
                            ref.min_dist.size() * sizeof(double)),
                0)
          << "min_dist diverged, isa=" << simd::isa_name(isa)
          << " trial=" << trial;
      ASSERT_EQ(got.labels, ref.labels)
          << "labels diverged, isa=" << simd::isa_name(isa)
          << " trial=" << trial;
    }
  }
}

TEST(SimdKernels, AssignCandidatesRowU8MatchesScalarExactly) {
  const std::vector<simd::Isa> isas = testable_vector_isas();
  if (isas.empty()) GTEST_SKIP() << "no vector backend compiled for this CPU";
  const kernels::KernelTable& scalar = kernels::scalar_table();

  Rng rng(0x8b17);
  for (int trial = 0; trial < 300; ++trial) {
    const std::int32_t count = rng.next_int(1, 41);
    const std::size_t offset = static_cast<std::size_t>(rng.next_int(0, 7));
    const std::size_t size = offset + static_cast<std::size_t>(count);
    const std::int32_t x0 = rng.next_int(0, 600);
    const std::int32_t y = rng.next_int(0, 400);
    const std::int32_t weight_q8 = rng.next_int(1, 4096);
    const std::int32_t dist_bits = rng.next_bool(0.5) ? 0 : rng.next_int(4, 16);
    const std::int32_t dist_shift = dist_bits == 0 ? 0 : rng.next_int(0, 10);
    const std::int32_t ncand = rng.next_int(1, 9);
    std::array<kernels::HwCenterOperand, 9> cands;
    for (std::int32_t k = 0; k < ncand; ++k) {
      cands[static_cast<std::size_t>(k)] = {
          rng.next_int(0, 255), rng.next_int(0, 255), rng.next_int(0, 255),
          rng.next_int(0, 700), rng.next_int(0, 500), k * 7};
    }
    if (ncand >= 2 && rng.next_bool(0.5)) {
      kernels::HwCenterOperand dup = cands[0];
      dup.index = 888;
      cands[static_cast<std::size_t>(ncand - 1)] = dup;
    }
    std::vector<std::uint8_t> L(size), a(size), b(size), active(size);
    std::vector<std::int32_t> labels(size);
    for (std::size_t i = 0; i < size; ++i) {
      L[i] = static_cast<std::uint8_t>(rng.next_int(0, 255));
      a[i] = static_cast<std::uint8_t>(rng.next_int(0, 255));
      b[i] = static_cast<std::uint8_t>(rng.next_int(0, 255));
      active[i] = rng.next_bool(0.6) ? 1 : 0;
      labels[i] = rng.next_int(0, 500);
    }
    const int mask_mode = rng.next_int(0, 1);
    const std::uint8_t* mask = mask_mode == 0 ? nullptr : active.data() + offset;

    std::vector<std::int32_t> ref = labels;
    scalar.assign_candidates_row_u8(L.data() + offset, a.data() + offset,
                                    b.data() + offset, x0, count, y,
                                    cands.data(), ncand, weight_q8, dist_bits,
                                    dist_shift, mask, ref.data() + offset);
    for (const simd::Isa isa : isas) {
      std::vector<std::int32_t> got = labels;
      kernels::table_for(isa).assign_candidates_row_u8(
          L.data() + offset, a.data() + offset, b.data() + offset, x0, count,
          y, cands.data(), ncand, weight_q8, dist_bits, dist_shift, mask,
          got.data() + offset);
      ASSERT_EQ(got, ref) << "labels diverged, isa=" << simd::isa_name(isa)
                          << " trial=" << trial;
    }
  }
}

/// End-to-end: a full segmentation must be byte-identical under every ISA.
class SimdEndToEnd : public ::testing::Test {
 protected:
  static RgbImage test_image() {
    SyntheticParams params;
    params.width = 160;
    params.height = 120;
    return generate_synthetic(params, 0x5eed).image;
  }
};

TEST_F(SimdEndToEnd, CpaLabelsAndCentersIdenticalAcrossIsas) {
  IsaGuard guard;
  const RgbImage image = test_image();
  SlicParams params;
  params.num_superpixels = 60;
  params.max_iterations = 4;

  simd::set_preferred_isa(simd::Isa::kScalar);
  const Segmentation ref = CpaSlic(params).segment(image);
  for (const simd::Isa isa : testable_vector_isas()) {
    simd::set_preferred_isa(isa);
    const Segmentation got = CpaSlic(params).segment(image);
    ASSERT_EQ(got.labels.pixels(), ref.labels.pixels())
        << "isa=" << simd::isa_name(isa);
    ASSERT_EQ(std::memcmp(got.centers.data(), ref.centers.data(),
                          ref.centers.size() * sizeof(ClusterCenter)),
              0)
        << "isa=" << simd::isa_name(isa);
  }
}

TEST_F(SimdEndToEnd, CpaClusterStrategyMatchesRowAcrossIsas) {
  // The cluster-centric schedule must be byte-identical to the row sweep on
  // every backend, for both the full (reset-per-iteration) and subsampled
  // (persistent seeded min-distance) CPA variants.
  IsaGuard guard;
  const RgbImage image = test_image();
  for (const double ratio : {1.0, 0.25}) {
    SlicParams params;
    params.num_superpixels = 60;
    params.max_iterations = 4;
    params.subsample_ratio = ratio;

    Segmentation ref;
    {
      AssignStrategyGuard row(AssignStrategy::kRow);
      simd::set_preferred_isa(simd::Isa::kScalar);
      ref = CpaSlic(params).segment(image);
    }
    AssignStrategyGuard cluster(AssignStrategy::kCluster);
    std::vector<simd::Isa> isas = testable_vector_isas();
    isas.push_back(simd::Isa::kScalar);
    for (const simd::Isa isa : isas) {
      simd::set_preferred_isa(isa);
      const Segmentation got = CpaSlic(params).segment(image);
      ASSERT_EQ(got.labels.pixels(), ref.labels.pixels())
          << "isa=" << simd::isa_name(isa) << " ratio=" << ratio;
      ASSERT_EQ(std::memcmp(got.centers.data(), ref.centers.data(),
                            ref.centers.size() * sizeof(ClusterCenter)),
                0)
          << "isa=" << simd::isa_name(isa) << " ratio=" << ratio;
    }
  }
}

TEST_F(SimdEndToEnd, PpaLabelsAndCentersIdenticalAcrossIsas) {
  IsaGuard guard;
  const RgbImage image = test_image();
  SlicParams params;
  params.num_superpixels = 60;
  params.max_iterations = 4;
  params.subsample_ratio = 0.25;

  simd::set_preferred_isa(simd::Isa::kScalar);
  const Segmentation ref = PpaSlic(params).segment(image);
  for (const simd::Isa isa : testable_vector_isas()) {
    simd::set_preferred_isa(isa);
    const Segmentation got = PpaSlic(params).segment(image);
    ASSERT_EQ(got.labels.pixels(), ref.labels.pixels())
        << "isa=" << simd::isa_name(isa);
    ASSERT_EQ(std::memcmp(got.centers.data(), ref.centers.data(),
                          ref.centers.size() * sizeof(ClusterCenter)),
              0)
        << "isa=" << simd::isa_name(isa);
  }
}

TEST_F(SimdEndToEnd, HwLabelsAndCentersIdenticalAcrossIsas) {
  IsaGuard guard;
  const RgbImage image = test_image();
  HwConfig config;
  config.num_superpixels = 60;
  config.iterations = 4;
  config.subsample_ratio = 0.25;
  config.distance_register_bits = 10;

  simd::set_preferred_isa(simd::Isa::kScalar);
  const Segmentation ref = HwSlic(config).segment(image);
  for (const simd::Isa isa : testable_vector_isas()) {
    simd::set_preferred_isa(isa);
    const Segmentation got = HwSlic(config).segment(image);
    ASSERT_EQ(got.labels.pixels(), ref.labels.pixels())
        << "isa=" << simd::isa_name(isa);
    ASSERT_EQ(std::memcmp(got.centers.data(), ref.centers.data(),
                          ref.centers.size() * sizeof(ClusterCenter)),
              0)
        << "isa=" << simd::isa_name(isa);
  }
}

}  // namespace
}  // namespace sslic

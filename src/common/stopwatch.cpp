#include "common/stopwatch.h"

namespace sslic {

Stopwatch::Stopwatch() : start_(std::chrono::steady_clock::now()) {}

void Stopwatch::reset() { start_ = std::chrono::steady_clock::now(); }

double Stopwatch::elapsed_ms() const {
  const auto now = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(now - start_).count();
}

double Stopwatch::elapsed_s() const { return elapsed_ms() / 1000.0; }

void PhaseTimer::add(const std::string& name, double ms) { ms_[name] += ms; }

double PhaseTimer::total_ms() const {
  double total = 0.0;
  for (const auto& [name, ms] : ms_) total += ms;
  return total;
}

double PhaseTimer::phase_ms(const std::string& name) const {
  const auto it = ms_.find(name);
  return it == ms_.end() ? 0.0 : it->second;
}

double PhaseTimer::phase_fraction(const std::string& name) const {
  const double total = total_ms();
  return total <= 0.0 ? 0.0 : phase_ms(name) / total;
}

void PhaseTimer::merge(const PhaseTimer& other) {
  for (const auto& [name, ms] : other.phases()) ms_[name] += ms;
}

}  // namespace sslic

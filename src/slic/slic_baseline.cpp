#include "slic/slic_baseline.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/check.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "image/planar.h"
#include "slic/assign_kernels.h"
#include "slic/center_update.h"
#include "slic/connectivity.h"
#include "slic/distance.h"
#include "slic/grid.h"
#include "slic/subset_schedule.h"

namespace sslic {
namespace {

/// Clamped 2Sx2S scan rectangle of one center.
struct ScanWindow {
  int x0 = 0;
  int x1 = -1;
  int y0 = 0;
  int y1 = -1;

  [[nodiscard]] std::uint64_t pixels() const {
    return static_cast<std::uint64_t>(x1 - x0 + 1) *
           static_cast<std::uint64_t>(y1 - y0 + 1);
  }
};

}  // namespace

CpaSlic::CpaSlic(SlicParams params) : params_(params) {
  SSLIC_CHECK(params_.num_superpixels >= 1);
  SSLIC_CHECK(params_.compactness > 0.0);
  SSLIC_CHECK(params_.max_iterations >= 1);
}

Segmentation CpaSlic::segment(const RgbImage& image,
                              const IterationCallback& callback,
                              Instrumentation* instrumentation,
                              PhaseTimer* phases) const {
  LabImage lab;
  {
    Stopwatch watch;
    lab = srgb_to_lab(image);
    if (phases != nullptr) phases->add(kPhaseColorConversion, watch.elapsed_ms());
  }
  return segment_lab(lab, callback, instrumentation, phases);
}

Segmentation CpaSlic::segment_lab(const LabImage& lab,
                                  const IterationCallback& callback,
                                  Instrumentation* instrumentation,
                                  PhaseTimer* phases) const {
  SSLIC_CHECK(!lab.empty());
  SSLIC_TRACE_SCOPE("cpa.segment");
  const int w = lab.width();
  const int h = lab.height();
  const std::size_t n = lab.size();

  Instrumentation local_instr;
  Instrumentation& instr = instrumentation != nullptr ? *instrumentation : local_instr;
  instr = Instrumentation{};

  Stopwatch init_watch;
  trace::Interval init_span;
  const CenterGrid grid(w, h, params_.num_superpixels);
  const double spacing = grid.spacing();
  const DistanceCalculator dist(params_.compactness, spacing);
  const SubsetSchedule schedule = SubsetSchedule::from_ratio(params_.subsample_ratio);
  const int num_centers = grid.num_centers();

  Segmentation result;
  result.centers = seed_centers(grid, lab, params_.perturb_centers);
  result.labels = initial_labels(grid);

  // Persistent minimum-distance buffer ("two memory buffers as large as the
  // image", paper Section 2). For full SLIC it is reset every iteration.
  std::vector<double> min_dist(n, std::numeric_limits<double>::infinity());
  const bool subsampled = schedule.count() > 1;
  if (subsampled) {
    // Subsampled CPA keeps the buffer across iterations, so it must start
    // with the distance to the initially-assigned center. Row-parallel:
    // every pixel is independent.
    const std::int32_t* labels_ptr = result.labels.pixels().data();
    parallel_for(0, h, [&](std::int64_t ylo, std::int64_t yhi) {
      for (int y = static_cast<int>(ylo); y < static_cast<int>(yhi); ++y) {
        for (int x = 0; x < w; ++x) {
          const std::size_t flat =
              static_cast<std::size_t>(y) * static_cast<std::size_t>(w) +
              static_cast<std::size_t>(x);
          const auto label = static_cast<std::size_t>(labels_ptr[flat]);
          min_dist[flat] = dist.squared(lab(x, y), x, y, result.centers[label]);
        }
      }
    });
    instr.ops.distance_evals += n;
  }

  std::vector<Sigma> sigmas(static_cast<std::size_t>(num_centers));
  std::vector<std::uint8_t> active(static_cast<std::size_t>(num_centers), 1);
  std::vector<ScanWindow> windows(static_cast<std::size_t>(num_centers));

  // One planar split per frame feeds the vectorized assignment kernels
  // (SoA channel planes; see image/planar.h). Resolved kernel table is
  // fetched once — dispatch never runs inside the pixel loops.
  const LabPlanes planes = split_lab_planes(lab);
  const kernels::KernelTable& kt = kernels::active();
  const double spatial_weight = dist.spatial_weight();
  if (phases != nullptr) phases->add(kPhaseOther, init_watch.elapsed_ms());
  init_span.complete("cpa.init");

  // 2S x 2S search rectangle centred on each SP (paper Section 2): +/- S.
  const int window = std::max(1, static_cast<int>(std::lround(spacing)));
  double callback_ms_total = 0.0;

  for (int iter = 0; iter < params_.max_iterations; ++iter) {
    SSLIC_TRACE_SCOPE("cpa.iter", iter);
    Stopwatch iter_watch;
    IterationStats stats;
    stats.iteration = iter;

    // --- Assignment: scan each active center's 2Sx2S window. ---
    Stopwatch assign_watch;
    trace::Interval assign_span;
    if (!subsampled) {
      parallel_for(0, static_cast<std::int64_t>(n),
                   [&](std::int64_t lo, std::int64_t hi) {
                     std::fill(min_dist.begin() + lo, min_dist.begin() + hi,
                               std::numeric_limits<double>::infinity());
                   });
      instr.traffic.distance_write += n * MemTraffic::kDistanceBytes;
    }

    // Serial prelude over the K centers: activity flags, clamped windows,
    // and the full instrumentation for this iteration. Op/traffic counts
    // are derived analytically from the window geometry — (x1-x0+1)*
    // (y1-y0+1) pixels per window under the streaming-writeback convention
    // (see instrumentation.h) — so the hot loop below carries no counter
    // updates at all, and the totals stay exact regardless of how the rows
    // are split across worker threads.
    const int active_subset = schedule.active_subset(iter);
    for (std::size_t ci = 0; ci < result.centers.size(); ++ci) {
      const bool is_active =
          !subsampled || static_cast<int>(ci) % schedule.count() == active_subset;
      active[ci] = is_active ? 1 : 0;
      if (!is_active) continue;

      const ClusterCenter& c = result.centers[ci];
      const int cx = static_cast<int>(std::lround(c.x));
      const int cy = static_cast<int>(std::lround(c.y));
      ScanWindow& win = windows[ci];
      win.x0 = std::max(0, cx - window);
      win.x1 = std::min(w - 1, cx + window);
      win.y0 = std::max(0, cy - window);
      win.y1 = std::min(h - 1, cy + window);

      const std::uint64_t wpix = win.pixels();
      instr.traffic.center_read += MemTraffic::kCenterBytes;
      instr.ops.distance_evals += wpix;
      instr.ops.compare_ops += wpix;
      instr.traffic.image_read += wpix * MemTraffic::kLabBytes;
      instr.traffic.distance_read += wpix * MemTraffic::kDistanceBytes;
      instr.traffic.distance_write += wpix * MemTraffic::kDistanceBytes;
      instr.traffic.label_write += wpix * MemTraffic::kLabelBytes;
      stats.pixels_visited += wpix;
    }

    // Row-band tiling: each band owns a disjoint range of rows and scans
    // the row-intersection of every active window with its band. A pixel
    // is owned by exactly one band and sees its candidate centers in the
    // same ascending-index order as the serial loop, so labels (including
    // tie-breaks, which favour the lower index) are identical for every
    // band partition and thread count. No locks or atomics are needed on
    // the pixel arrays.
    std::int32_t* labels_ptr = result.labels.pixels().data();
    parallel_for(0, h, [&](std::int64_t ylo, std::int64_t yhi) {
      SSLIC_TRACE_SCOPE("cpa.assign.band", ylo);
      for (std::size_t ci = 0; ci < result.centers.size(); ++ci) {
        if (active[ci] == 0) continue;
        const ScanWindow& win = windows[ci];
        const int y0 = std::max(win.y0, static_cast<int>(ylo));
        const int y1 = std::min(win.y1, static_cast<int>(yhi) - 1);
        if (y0 > y1) continue;
        SSLIC_TRACE_SCOPE_AT(1, "cpa.assign.center",
                             static_cast<std::int64_t>(ci));
        const ClusterCenter& c = result.centers[ci];
        const kernels::CenterOperand op{c.L, c.a, c.b, c.x, c.y,
                                        static_cast<std::int32_t>(ci)};
        const std::int32_t count = win.x1 - win.x0 + 1;
        for (int y = y0; y <= y1; ++y) {
          SSLIC_TRACE_SCOPE_AT(2, "cpa.kernel.row", y);
          const std::size_t off =
              static_cast<std::size_t>(y) * static_cast<std::size_t>(w) +
              static_cast<std::size_t>(win.x0);
          kt.assign_center_row(planes.L.data() + off, planes.a.data() + off,
                               planes.b.data() + off, win.x0, count,
                               static_cast<double>(y), op, spatial_weight,
                               min_dist.data() + off, labels_ptr + off);
        }
      }
    });
    if (phases != nullptr) phases->add(kPhaseDistanceMin, assign_watch.elapsed_ms());
    assign_span.complete("cpa.assign", iter);

    // --- Center update: full sigma pass, then divide. ---
    // Per-band sigma accumulators merged in ascending band order. The band
    // boundaries depend only on the image height (parallel_reduce uses a
    // fixed chunk budget), so the floating-point reduction tree — and hence
    // every center, bit for bit — is the same at any thread count.
    Stopwatch update_watch;
    trace::Interval update_span;
    sigmas = parallel_reduce<std::vector<Sigma>>(
        0, h,
        [&](std::vector<Sigma>& partial, std::int64_t ylo, std::int64_t yhi) {
          partial.assign(static_cast<std::size_t>(num_centers), Sigma{});
          for (int y = static_cast<int>(ylo); y < static_cast<int>(yhi); ++y) {
            for (int x = 0; x < w; ++x) {
              const auto label = static_cast<std::size_t>(result.labels(x, y));
              partial[label].add(lab(x, y), x, y);
            }
          }
        },
        [&](std::vector<Sigma>& into, std::vector<Sigma>&& from) {
          if (from.empty()) return;
          if (into.empty()) {
            into = std::move(from);
            return;
          }
          for (std::size_t i = 0; i < into.size(); ++i) {
            into[i].L += from[i].L;
            into[i].a += from[i].a;
            into[i].b += from[i].b;
            into[i].x += from[i].x;
            into[i].y += from[i].y;
            into[i].count += from[i].count;
          }
        });
    instr.ops.accumulate_ops += 6 * n;
    instr.traffic.image_read += n * MemTraffic::kLabBytes;
    instr.traffic.label_read += n * MemTraffic::kLabelBytes;

    stats.center_movement = update_centers(result.centers, sigmas,
                                           subsampled ? active
                                                      : std::vector<std::uint8_t>{},
                                           &instr.ops);
    instr.traffic.center_write +=
        static_cast<std::uint64_t>(num_centers) * MemTraffic::kCenterBytes;
    if (phases != nullptr) phases->add(kPhaseCenterUpdate, update_watch.elapsed_ms());
    update_span.complete("cpa.update", iter);

    instr.iterations += 1;
    result.iterations_run = iter + 1;
    stats.elapsed_ms = iter_watch.elapsed_ms();
    result.trace.push_back(stats);

    if (callback) {
      Stopwatch cb_watch;
      callback(stats, result.labels, result.centers);
      callback_ms_total += cb_watch.elapsed_ms();
    }
    if (params_.convergence_threshold > 0.0 &&
        stats.center_movement < params_.convergence_threshold &&
        iter + 1 >= schedule.count()) {
      break;  // every subset has been visited at least once
    }
  }
  (void)callback_ms_total;  // callbacks are excluded from phase totals by design

  if (params_.enforce_connectivity) {
    Stopwatch conn_watch;
    SSLIC_TRACE_SCOPE("cpa.connectivity");
    enforce_connectivity(result.labels, params_.num_superpixels);
    if (phases != nullptr) phases->add(kPhaseOther, conn_watch.elapsed_ms());
  }
  return result;
}

}  // namespace sslic

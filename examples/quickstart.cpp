// Quickstart: segment an image into superpixels with S-SLIC and write the
// boundary overlay, the mean-color abstraction, and the label map.
//
//   quickstart [input.ppm] [--superpixels=900] [--compactness=10]
//              [--ratio=0.5] [--iterations=20] [--algorithm=ppa|cpa|slic|hw]
//              [--out=prefix]
//
// Without an input file a synthetic Berkeley-like test image is generated
// (with ground truth, so quality metrics are printed too).
#include <iostream>
#include <optional>
#include <string>

#include "common/cli.h"
#include "common/stopwatch.h"
#include "dataset/synthetic.h"
#include "image/draw.h"
#include "image/io.h"
#include "metrics/segmentation_metrics.h"
#include "slic/hw_datapath.h"
#include "slic/segmenter.h"

int main(int argc, char** argv) {
  using namespace sslic;
  const CliArgs args(argc, argv);

  // --- Load or synthesize the input. ---
  RgbImage image;
  std::optional<LabelImage> truth;
  if (!args.positional().empty()) {
    image = read_ppm(args.positional().front());
    std::cout << "loaded " << args.positional().front() << " (" << image.width()
              << 'x' << image.height() << ")\n";
  } else {
    SyntheticParams params;
    const GroundTruthImage gt =
        generate_synthetic(params, static_cast<std::uint64_t>(args.get_int("seed", 7)));
    image = gt.image;
    truth = gt.truth;
    std::cout << "generated synthetic " << image.width() << 'x' << image.height()
              << " test image with " << gt.num_regions
              << " ground-truth regions (pass a .ppm path to use your own)\n";
  }

  // --- Configure and run the segmenter. ---
  SlicParams params;
  params.num_superpixels = args.get_int("superpixels", 900);
  params.compactness = args.get_double("compactness", 10.0);
  params.subsample_ratio = args.get_double("ratio", 0.5);
  params.max_iterations = args.get_int("iterations", 20);

  const std::string algorithm = args.get_string("algorithm", "ppa");
  Stopwatch watch;
  Segmentation seg;
  if (algorithm == "hw") {
    HwConfig hw;
    hw.num_superpixels = params.num_superpixels;
    hw.compactness = params.compactness;
    hw.iterations = params.max_iterations;
    hw.subsample_ratio = params.subsample_ratio;
    seg = HwSlic(hw).segment(image);
  } else {
    const Algorithm alg = algorithm == "slic" ? Algorithm::kSlic
                          : algorithm == "cpa" ? Algorithm::kSslicCpa
                                               : Algorithm::kSslicPpa;
    seg = run_segmenter(alg, params, image);
  }
  const double elapsed = watch.elapsed_ms();

  std::cout << "algorithm " << algorithm << ": "
            << count_labels(seg.labels) << " superpixels in "
            << seg.iterations_run << " iterations, " << elapsed << " ms\n";

  if (truth) {
    std::cout << "quality vs ground truth:\n"
              << "  undersegmentation error: "
              << undersegmentation_error(seg.labels, *truth) << '\n'
              << "  boundary recall (tol 2): "
              << boundary_recall(seg.labels, *truth, 2) << '\n'
              << "  achievable seg accuracy: "
              << achievable_segmentation_accuracy(seg.labels, *truth) << '\n';
  }
  std::cout << "compactness: " << compactness(seg.labels) << '\n';

  // --- Write outputs. ---
  const std::string prefix = args.get_string("out", "quickstart");
  write_ppm(prefix + "_input.ppm", image);
  write_ppm(prefix + "_boundaries.ppm", overlay_boundaries(image, seg.labels));
  write_ppm(prefix + "_abstraction.ppm",
            mean_color_abstraction(image, seg.labels));
  write_label_pgm(prefix + "_labels.pgm", seg.labels);
  std::cout << "wrote " << prefix << "_{input,boundaries,abstraction}.ppm and "
            << prefix << "_labels.pgm\n";
  return 0;
}

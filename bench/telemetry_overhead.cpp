// Tracing-span and perf-counter overhead on the CPA S-SLIC hot path.
//
// Runs the CPA software segmenter on a 1080p synthetic frame with tracing
// (a) disarmed — one relaxed atomic load per span site — (b) armed at
// the default detail level, and (c) tracing disarmed but hardware perf
// counters armed (two read syscalls per sampled scope), and reports
// ns/pixel plus each armed/disarmed overhead ratio. The acceptance budget
// for the default armed trace AND for armed perf counters is <3% each
// (per-iteration and per-band spans only; per-center and per-kernel-call
// spans cost more and are opt-in via SSLIC_TRACE_DETAIL). A build with
// -DSSLIC_TRACING=OFF compiles every span away; the artifact records which
// mode the binary was built in so CI can compare all three. When the perf
// backend is degraded (container, no PMU, SSLIC_PERF=0), the perf mode
// measures the no-op fallback — expected ~0% — and the artifact records
// the degradation.
//
// Labels are cross-checked between all modes — telemetry must never
// perturb results, only observe them.
//
// Emits BENCH_telemetry_overhead.json.
//
//   telemetry_overhead [--frames=5] [--superpixels=2000] [--ratio=0.5]
//                      [--width=1920 --height=1080] [--threads=N]
#include <algorithm>
#include <iostream>
#include <sstream>
#include <vector>

#include "bench_common.h"
#include "color/color_convert.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "slic/slic_baseline.h"

namespace {

double best(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v.front();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sslic;
  const CliArgs args(argc, argv);
  const int frames = args.get_int("frames", 5);
  const int width = args.get_int("width", 1920);
  const int height = args.get_int("height", 1080);
  const int superpixels = args.get_int("superpixels", 2000);
  const double ratio = args.get_double("ratio", 0.5);
  ThreadPool::set_global_threads(args.get_int("threads", 0));
  const std::string simd_request = args.get_string("simd", "");
  if (!simd_request.empty() && !simd::set_preferred_isa(simd_request)) {
    std::cerr << "unknown --simd value '" << simd_request << "'\n";
    return 2;
  }

  std::cout << "==================================================================\n"
            << "Telemetry overhead — tracing spans on the CPA hot path\n"
            << "workload: " << width << 'x' << height << ", K=" << superpixels
            << ", S-SLIC(" << ratio << "), " << frames
            << " timed frames per mode (best-of), "
            << ThreadPool::global().threads() << " thread(s)\n"
            << "tracing compiled: " << (trace::compiled() ? "yes" : "no (spans are no-ops)")
            << "\n==================================================================\n";

  SyntheticParams scene;
  scene.width = width;
  scene.height = height;
  const GroundTruthImage gt = generate_synthetic(scene, 4242);
  const LabImage lab = srgb_to_lab(gt.image);
  const double pixels = static_cast<double>(lab.size());

  SlicParams params;
  params.num_superpixels = superpixels;
  params.subsample_ratio = ratio;
  const CpaSlic slic(params);

  // Ensure a clean session: no env-armed dump interferes with the timing,
  // and every armed rep starts from an empty buffer so recording (not
  // buffer-full dropping) is what gets measured. Perf counters start
  // disarmed so the baseline mode pays only the relaxed-load check.
  trace::disarm();
  const bool perf_available = perf::available();
  perf::set_enabled(false);
  std::cout << "perf: " << perf::status() << '\n';

  // Untimed warm-up so the first timed mode doesn't absorb cold caches,
  // lazy allocations, and page faults on behalf of the other.
  (void)slic.segment_lab(lab);

  struct Mode {
    const char* key = "";
    bool trace_armed = false;
    bool perf_armed = false;
    double ms = 0.0;
    LabelImage labels;
  };
  std::vector<Mode> modes(3);
  modes[0].key = "disarmed";
  modes[1].key = "trace_armed";
  modes[1].trace_armed = true;
  modes[2].key = "perf_armed";
  modes[2].perf_armed = true;

  // Interleave the modes frame by frame so slow drift on the host
  // (thermal, noisy neighbours) cancels instead of biasing one mode.
  std::vector<std::vector<double>> samples(modes.size());
  for (int f = 0; f < frames; ++f) {
    for (std::size_t i = 0; i < modes.size(); ++i) {
      // Alternate which mode goes first so neither always enjoys the
      // warmer caches left by its predecessor.
      const std::size_t m = (f % 2 == 0) ? i : modes.size() - 1 - i;
      trace::reset();
      trace::set_armed(modes[m].trace_armed);
      perf::set_enabled(modes[m].perf_armed);
      Stopwatch watch;
      const Segmentation seg = slic.segment_lab(lab);
      samples[m].push_back(watch.elapsed_ms());
      trace::set_armed(false);
      perf::set_enabled(false);
      if (f == frames - 1) modes[m].labels = seg.labels;
    }
  }
  for (std::size_t m = 0; m < modes.size(); ++m) modes[m].ms = best(samples[m]);
  trace::reset();
  perf::reset_phases();

  const double disarmed_ms = modes[0].ms;
  const double armed_ms = modes[1].ms;
  const double perf_ms = modes[2].ms;
  const double overhead = (armed_ms - disarmed_ms) / disarmed_ms;
  const double perf_overhead = (perf_ms - disarmed_ms) / disarmed_ms;
  const bool identical = modes[0].labels.pixels() == modes[1].labels.pixels() &&
                         modes[0].labels.pixels() == modes[2].labels.pixels();

  Table table("1080p CPA frame time by observability mode");
  table.set_header({"mode", "ms/frame", "ns/pixel", "overhead"});
  table.add_row({"disarmed", Table::num(disarmed_ms, 2),
                 Table::num(disarmed_ms * 1e6 / pixels, 2), "-"});
  table.add_row({"trace armed", Table::num(armed_ms, 2),
                 Table::num(armed_ms * 1e6 / pixels, 2),
                 Table::num(overhead * 100.0, 2) + "%"});
  table.add_row({perf_available ? "perf armed" : "perf armed (degraded no-op)",
                 Table::num(perf_ms, 2), Table::num(perf_ms * 1e6 / pixels, 2),
                 Table::num(perf_overhead * 100.0, 2) + "%"});
  std::cout << table;
  std::cout << "labels across modes: "
            << (identical ? "identical" : "DIFFER (bug!)") << '\n'
            << "armed overhead budget: <3% each (measured trace "
            << Table::num(overhead * 100.0, 2) << "%, perf "
            << Table::num(perf_overhead * 100.0, 2) << "%)\n";

  bench::Json::object()
      .set("bench", "telemetry_overhead")
      .set("workload", bench::Json::object()
                           .set("width", width)
                           .set("height", height)
                           .set("superpixels", superpixels)
                           .set("subsample_ratio", ratio)
                           .set("timed_frames", frames)
                           .set("threads", ThreadPool::global().threads()))
      .set("tracing_compiled", trace::compiled())
      .set("disarmed_ms", disarmed_ms)
      .set("disarmed_ns_per_pixel", disarmed_ms * 1e6 / pixels)
      .set("armed_ms", armed_ms)
      .set("armed_ns_per_pixel", armed_ms * 1e6 / pixels)
      .set("armed_overhead_fraction", overhead)
      .set("perf_available", perf_available)
      .set("perf_status", perf::status())
      .set("perf_armed_ms", perf_ms)
      .set("perf_armed_ns_per_pixel", perf_ms * 1e6 / pixels)
      .set("perf_armed_overhead_fraction", perf_overhead)
      .set("labels_identical", identical)
      .set("gate",
           bench::GateMetrics()
               .lower_is_better("disarmed_ms", disarmed_ms, "ms", 0.25)
               .lower_is_better("trace_armed_ms", armed_ms, "ms", 0.25)
               .lower_is_better("perf_armed_ms", perf_ms, "ms", 0.25)
               .json())
      .set("machine", bench::machine_json())
      .write_file("BENCH_telemetry_overhead.json");

  return identical ? 0 : 1;
}

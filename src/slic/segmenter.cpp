#include "slic/segmenter.h"

#include <sstream>

#include "common/check.h"
#include "slic/slic_baseline.h"
#include "slic/subsampled.h"

namespace sslic {

std::string algorithm_name(Algorithm algorithm, double subsample_ratio) {
  std::ostringstream os;
  switch (algorithm) {
    case Algorithm::kSlic:
      return "SLIC";
    case Algorithm::kSslicPpa:
      os << "S-SLIC-PPA (" << subsample_ratio << ")";
      return os.str();
    case Algorithm::kSslicCpa:
      os << "S-SLIC-CPA (" << subsample_ratio << ")";
      return os.str();
  }
  return "?";
}

Segmentation run_segmenter(Algorithm algorithm, const SlicParams& params,
                           const RgbImage& image, DataWidth data_width,
                           const IterationCallback& callback,
                           Instrumentation* instrumentation,
                           PhaseTimer* phases) {
  switch (algorithm) {
    case Algorithm::kSlic: {
      SlicParams p = params;
      p.subsample_ratio = 1.0;
      return CpaSlic(p).segment(image, callback, instrumentation, phases);
    }
    case Algorithm::kSslicPpa:
      return PpaSlic(params, data_width)
          .segment(image, callback, instrumentation, phases);
    case Algorithm::kSslicCpa:
      return CpaSlic(params).segment(image, callback, instrumentation, phases);
  }
  SSLIC_CHECK_MSG(false, "unknown algorithm");
}

Segmentation run_segmenter_lab(Algorithm algorithm, const SlicParams& params,
                               const LabImage& lab, DataWidth data_width,
                               const IterationCallback& callback,
                               Instrumentation* instrumentation,
                               PhaseTimer* phases) {
  switch (algorithm) {
    case Algorithm::kSlic: {
      SlicParams p = params;
      p.subsample_ratio = 1.0;
      return CpaSlic(p).segment_lab(lab, callback, instrumentation, phases);
    }
    case Algorithm::kSslicPpa:
      return PpaSlic(params, data_width)
          .segment_lab(lab, callback, instrumentation, phases);
    case Algorithm::kSslicCpa:
      return CpaSlic(params).segment_lab(lab, callback, instrumentation, phases);
  }
  SSLIC_CHECK_MSG(false, "unknown algorithm");
}

}  // namespace sslic

// Tests for src/color: the double-precision reference conversion (Eqs. 1-4)
// and the accelerator's LUT color-conversion unit (Fig. 4, Section 6.1).
#include <gtest/gtest.h>

#include <cmath>

#include "color/color_convert.h"
#include "color/lab8.h"
#include "color/lut_color_unit.h"
#include "common/rng.h"

namespace sslic {
namespace {

// ------------------------------------------------------ reference (Eq. 1-4)

TEST(ColorReference, InverseGammaEndpoints) {
  EXPECT_DOUBLE_EQ(srgb_inverse_gamma(0.0), 0.0);
  EXPECT_NEAR(srgb_inverse_gamma(1.0), 1.0, 1e-12);
}

TEST(ColorReference, InverseGammaContinuousAtKnee) {
  const double below = srgb_inverse_gamma(0.04045 - 1e-9);
  const double above = srgb_inverse_gamma(0.04045 + 1e-9);
  EXPECT_NEAR(below, above, 1e-5);
}

TEST(ColorReference, LabFContinuousAtEpsilon) {
  const double below = lab_f(kLabEpsilon - 1e-9);
  const double above = lab_f(kLabEpsilon + 1e-9);
  EXPECT_NEAR(below, above, 1e-5);
}

TEST(ColorReference, WhiteIsL100) {
  const LabF white = srgb_to_lab({255, 255, 255});
  EXPECT_NEAR(white.L, 100.0, 0.01);
  EXPECT_NEAR(white.a, 0.0, 0.05);
  EXPECT_NEAR(white.b, 0.0, 0.05);
}

TEST(ColorReference, BlackIsL0) {
  const LabF black = srgb_to_lab({0, 0, 0});
  EXPECT_NEAR(black.L, 0.0, 1e-6);
  EXPECT_NEAR(black.a, 0.0, 1e-6);
  EXPECT_NEAR(black.b, 0.0, 1e-6);
}

TEST(ColorReference, GreysAreNeutral) {
  for (int v = 10; v <= 250; v += 40) {
    const auto g = static_cast<std::uint8_t>(v);
    const LabF lab = srgb_to_lab({g, g, g});
    EXPECT_NEAR(lab.a, 0.0, 0.05) << "v=" << v;
    EXPECT_NEAR(lab.b, 0.0, 0.05) << "v=" << v;
  }
}

TEST(ColorReference, PrimariesMatchKnownValues) {
  // Standard sRGB(D65) CIELAB coordinates of the primaries.
  const LabF red = srgb_to_lab({255, 0, 0});
  EXPECT_NEAR(red.L, 53.24, 0.1);
  EXPECT_NEAR(red.a, 80.09, 0.2);
  EXPECT_NEAR(red.b, 67.20, 0.2);

  const LabF green = srgb_to_lab({0, 255, 0});
  EXPECT_NEAR(green.L, 87.74, 0.1);
  EXPECT_NEAR(green.a, -86.18, 0.2);
  EXPECT_NEAR(green.b, 83.18, 0.2);

  const LabF blue = srgb_to_lab({0, 0, 255});
  EXPECT_NEAR(blue.L, 32.30, 0.1);
  EXPECT_NEAR(blue.a, 79.19, 0.2);
  EXPECT_NEAR(blue.b, -107.86, 0.2);
}

TEST(ColorReference, LightnessMonotoneInGrey) {
  float prev = -1.0f;
  for (int v = 0; v <= 255; ++v) {
    const auto g = static_cast<std::uint8_t>(v);
    const float L = srgb_to_lab({g, g, g}).L;
    EXPECT_GT(L, prev);
    prev = L;
  }
}

TEST(ColorReference, InverseRoundTrips) {
  Rng rng(99);
  for (int i = 0; i < 500; ++i) {
    const Rgb8 rgb{static_cast<std::uint8_t>(rng.next_int(0, 255)),
                   static_cast<std::uint8_t>(rng.next_int(0, 255)),
                   static_cast<std::uint8_t>(rng.next_int(0, 255))};
    const Rgb8 back = lab_to_srgb(srgb_to_lab(rgb));
    EXPECT_NEAR(back.r, rgb.r, 1) << i;
    EXPECT_NEAR(back.g, rgb.g, 1) << i;
    EXPECT_NEAR(back.b, rgb.b, 1) << i;
  }
}

TEST(ColorReference, FullImageConversionMatchesPerPixel) {
  RgbImage img(3, 2);
  img(0, 0) = {10, 20, 30};
  img(2, 1) = {200, 100, 50};
  const LabImage lab = srgb_to_lab(img);
  EXPECT_EQ(lab(0, 0), srgb_to_lab(img(0, 0)));
  EXPECT_EQ(lab(2, 1), srgb_to_lab(img(2, 1)));
}

// ------------------------------------------------------------------- Lab8

TEST(Lab8, EncodeDecodeEndpoints) {
  EXPECT_EQ(encode_lab8({0.0f, 0.0f, 0.0f}).L, 0);
  EXPECT_EQ(encode_lab8({100.0f, 0.0f, 0.0f}).L, 255);
  EXPECT_EQ(encode_lab8({0.0f, -128.0f, 127.0f}).a, 0);
  EXPECT_EQ(encode_lab8({0.0f, -128.0f, 127.0f}).b, 255);
}

TEST(Lab8, DecodeInvertsEncodeWithinStep) {
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const LabF lab{static_cast<float>(rng.next_double(0.0, 100.0)),
                   static_cast<float>(rng.next_double(-100.0, 100.0)),
                   static_cast<float>(rng.next_double(-100.0, 100.0))};
    const LabF back = decode_lab8(encode_lab8(lab));
    EXPECT_NEAR(back.L, lab.L, 100.0 / 255.0 / 2.0 + 1e-3);
    EXPECT_NEAR(back.a, lab.a, 0.51);
    EXPECT_NEAR(back.b, lab.b, 0.51);
  }
}

TEST(Lab8, EncodeClampsOutOfRange) {
  EXPECT_EQ(encode_lab8({150.0f, 0.0f, 0.0f}).L, 255);
  EXPECT_EQ(encode_lab8({-10.0f, 200.0f, -200.0f}).L, 0);
  EXPECT_EQ(encode_lab8({0.0f, 200.0f, 0.0f}).a, 255);
}

// --------------------------------------------------------- LUT color unit

TEST(LutColorUnit, MatchesReferenceWithinTolerance) {
  // The point of the 8-bit LUT design (Section 6.1): the integer pipeline
  // tracks the double-precision reference closely. The a/b channels
  // amplify the PWL's f(.) error by 500x/200x, so the worst-case envelope
  // is a few 8-bit steps; the mean error must stay below one step. (The
  // segmentation-quality consequence is tested end-to-end in
  // HwSlic.MatchesFloatPpaQuality.)
  const LutColorUnit unit;
  Rng rng(42);
  int max_err = 0;
  double err_sum = 0.0;
  constexpr int kSamples = 4000;
  for (int i = 0; i < kSamples; ++i) {
    const Rgb8 rgb{static_cast<std::uint8_t>(rng.next_int(0, 255)),
                   static_cast<std::uint8_t>(rng.next_int(0, 255)),
                   static_cast<std::uint8_t>(rng.next_int(0, 255))};
    const Lab8 hw = unit.convert(rgb);
    const Lab8 ref = encode_lab8(srgb_to_lab(rgb));
    const int err = std::max({std::abs(hw.L - ref.L), std::abs(hw.a - ref.a),
                              std::abs(hw.b - ref.b)});
    max_err = std::max(max_err, err);
    err_sum += err;
  }
  EXPECT_LE(max_err, 6);
  EXPECT_LE(err_sum / kSamples, 2.5);
}

TEST(LutColorUnit, ExactOnNeutrals) {
  const LutColorUnit unit;
  const Lab8 white = unit.convert({255, 255, 255});
  EXPECT_GE(white.L, 253);
  EXPECT_NEAR(white.a, 128, 2);
  EXPECT_NEAR(white.b, 128, 2);
  const Lab8 black = unit.convert({0, 0, 0});
  EXPECT_LE(black.L, 1);
}

TEST(LutColorUnit, PlanarLayoutMatchesInterleaved) {
  const LutColorUnit unit;
  RgbImage img(4, 3);
  Rng rng(7);
  for (auto& px : img.pixels())
    px = {static_cast<std::uint8_t>(rng.next_int(0, 255)),
          static_cast<std::uint8_t>(rng.next_int(0, 255)),
          static_cast<std::uint8_t>(rng.next_int(0, 255))};
  const Planar8 planes = unit.convert(img);
  const Image<Lab8> inter = unit.convert_interleaved(img);
  for (int y = 0; y < 3; ++y) {
    for (int x = 0; x < 4; ++x) {
      EXPECT_EQ(planes.ch1(x, y), inter(x, y).L);
      EXPECT_EQ(planes.ch2(x, y), inter(x, y).a);
      EXPECT_EQ(planes.ch3(x, y), inter(x, y).b);
    }
  }
}

TEST(LutColorUnit, PwlApproximatesLabF) {
  const LutColorUnit unit;
  const int frac = unit.config().internal_frac_bits;
  const double scale = std::ldexp(1.0, frac);
  double max_err = 0.0;
  for (int t = 0; t <= (1 << frac); t += 3) {
    const double approx = unit.pwl_lab_f(t) / scale;
    const double exact = lab_f(t / scale);
    max_err = std::max(max_err, std::fabs(approx - exact));
  }
  // 8 power-of-two segments keep the PWL within ~1.5% absolute everywhere,
  // enough for 8-bit output accuracy.
  EXPECT_LT(max_err, 0.015);
}

TEST(LutColorUnit, MorePwlSegmentsReduceError) {
  const double scale = std::ldexp(1.0, 12);
  double prev_err = 1e9;
  for (const int segments : {4, 8, 12}) {
    LutColorUnit::Config config;
    config.pwl_segments = segments;
    const LutColorUnit unit(config);
    double max_err = 0.0;
    for (int t = 0; t <= (1 << 12); t += 7) {
      max_err = std::max(max_err,
                         std::fabs(unit.pwl_lab_f(t) / scale - lab_f(t / scale)));
    }
    EXPECT_LT(max_err, prev_err) << segments << " segments";
    prev_err = max_err;
  }
}

TEST(LutColorUnit, LutStorageMatchesConfig) {
  const LutColorUnit unit;
  // 256 gamma entries + 9 node positions + 9 node values + 8 slopes,
  // 13-bit entries packed into 2 bytes each.
  EXPECT_EQ(unit.lut_storage_bytes(), (256u + 9u + 9u + 8u) * 2u);
}

TEST(LutColorUnit, InvalidConfigThrows) {
  LutColorUnit::Config config;
  config.pwl_segments = 30;
  EXPECT_THROW(LutColorUnit{config}, ContractViolation);
  config.pwl_segments = 8;
  config.internal_frac_bits = 2;
  EXPECT_THROW(LutColorUnit{config}, ContractViolation);
}

TEST(LutColorUnit, DeterministicAcrossInstances) {
  const LutColorUnit a, b;
  for (int v = 0; v < 256; v += 5) {
    const Rgb8 rgb{static_cast<std::uint8_t>(v), static_cast<std::uint8_t>(255 - v),
                   static_cast<std::uint8_t>(v / 2)};
    EXPECT_EQ(a.convert(rgb), b.convert(rgb));
  }
}

}  // namespace
}  // namespace sslic

// Reader/writer for the Berkeley Segmentation Dataset ground-truth format
// (".seg" files).
//
// The synthetic corpus substitutes for BSDS in this environment (DESIGN.md
// §1), but the paper's experiments used the real dataset; this module lets
// anyone with a BSDS copy run every quality bench on it. The format is the
// documented BSDS human-segmentation file: an ASCII header terminated by
// "data", followed by one run-length record per line:
//
//   format ascii cr
//   ...
//   width 481
//   height 321
//   segments 12
//   data
//   <segment> <row> <first-column> <last-column>     (all 0-based, inclusive)
#pragma once

#include <string>
#include <vector>

#include "image/image.h"

namespace sslic {

/// Parses one .seg file into a label map. Throws std::runtime_error on
/// malformed input (missing header fields, out-of-range runs, or pixels
/// left uncovered).
LabelImage read_bsds_seg(const std::string& path);

/// Writes a label map in .seg format (one run per maximal row segment).
void write_bsds_seg(const std::string& path, const LabelImage& labels);

/// Loads all annotators of one image: every path in `seg_paths` must have
/// the same dimensions.
std::vector<LabelImage> read_bsds_annotators(
    const std::vector<std::string>& seg_paths);

}  // namespace sslic

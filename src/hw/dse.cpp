#include "hw/dse.h"

namespace sslic::hw {

DsePoint DesignSpaceExplorer::evaluate(const AcceleratorDesign& design) {
  return {design, AcceleratorModel(design).evaluate()};
}

std::vector<DsePoint> DesignSpaceExplorer::sweep_cluster_configs(
    const std::vector<ClusterUnitConfig>& configs) const {
  std::vector<DsePoint> points;
  points.reserve(configs.size());
  for (const auto& config : configs) {
    AcceleratorDesign d = base_;
    d.cluster = config;
    points.push_back(evaluate(d));
  }
  return points;
}

std::vector<DsePoint> DesignSpaceExplorer::sweep_buffer_sizes(
    const std::vector<double>& buffer_bytes) const {
  std::vector<DsePoint> points;
  points.reserve(buffer_bytes.size());
  for (const double bytes : buffer_bytes) {
    AcceleratorDesign d = base_;
    d.channel_buffer_bytes = bytes;
    points.push_back(evaluate(d));
  }
  return points;
}

std::vector<DsePoint> DesignSpaceExplorer::sweep_resolutions(
    const std::vector<Resolution>& resolutions) const {
  std::vector<DsePoint> points;
  points.reserve(resolutions.size());
  for (const auto& res : resolutions) {
    AcceleratorDesign d = base_;
    d.width = res.width;
    d.height = res.height;
    d.channel_buffer_bytes = res.channel_buffer_bytes;
    points.push_back(evaluate(d));
  }
  return points;
}

std::vector<DsePoint> DesignSpaceExplorer::sweep_cores(
    const std::vector<int>& core_counts) const {
  std::vector<DsePoint> points;
  points.reserve(core_counts.size());
  for (const int cores : core_counts) {
    AcceleratorDesign d = base_;
    d.num_cores = cores;
    points.push_back(evaluate(d));
  }
  return points;
}

std::vector<DsePoint> DesignSpaceExplorer::full_grid(
    const std::vector<ClusterUnitConfig>& configs,
    const std::vector<double>& buffer_bytes) const {
  std::vector<DsePoint> points;
  points.reserve(configs.size() * buffer_bytes.size());
  for (const auto& config : configs) {
    for (const double bytes : buffer_bytes) {
      AcceleratorDesign d = base_;
      d.cluster = config;
      d.channel_buffer_bytes = bytes;
      points.push_back(evaluate(d));
    }
  }
  return points;
}

const DsePoint* DesignSpaceExplorer::best_real_time(
    const std::vector<DsePoint>& points) {
  const DsePoint* best = nullptr;
  for (const auto& p : points) {
    if (!p.report.real_time()) continue;
    if (best == nullptr ||
        p.report.energy_per_frame_j < best->report.energy_per_frame_j ||
        (p.report.energy_per_frame_j == best->report.energy_per_frame_j &&
         p.report.area_mm2 < best->report.area_mm2)) {
      best = &p;
    }
  }
  return best;
}

}  // namespace sslic::hw

// Ablation (paper Section 4.3 / Fig. 4): each color-distance calculator
// "returns the 8-bit distance". This bench quantifies the quality impact
// of reducing the distance-register width on the integer golden model —
// the companion experiment to the Section-6.1 *data*-width sweep.
#include <iostream>

#include "bench_common.h"
#include "slic/hw_datapath.h"

int main(int argc, char** argv) {
  using namespace sslic;
  bench::BenchConfig config = bench::BenchConfig::parse(argc, argv);
  if (config.images > 10) config.images = 10;
  config.superpixels = 300;  // keep runtime modest at BSDS size
  bench::banner("Ablation — distance-register width on the golden model", config);

  const SyntheticCorpus corpus(config.dataset_params(), config.images,
                               config.seed);

  struct Row {
    std::string name;
    int bits;
    bench::Quality quality;
  };
  std::vector<Row> rows = {
      {"exact compare (reference)", 0, {}}, {"16-bit register", 16, {}},
      {"12-bit register", 12, {}},          {"10-bit register", 10, {}},
      {"8-bit register (paper)", 8, {}},    {"6-bit register", 6, {}},
      {"4-bit register", 4, {}},
  };

  for (int i = 0; i < corpus.size(); ++i) {
    const GroundTruthImage gt = corpus.generate(i);
    for (auto& row : rows) {
      HwConfig hw;
      hw.num_superpixels = config.superpixels;
      hw.compactness = config.compactness;
      hw.iterations = config.iterations * 2;
      hw.subsample_ratio = 0.5;
      hw.distance_register_bits = row.bits;
      const Segmentation seg = HwSlic(hw).segment(gt.image);
      row.quality += bench::measure_quality(seg.labels, gt.truth);
    }
  }

  const bench::Quality ref = [&] {
    bench::Quality q = rows.front().quality;
    q /= config.images;
    return q;
  }();
  Table table("Distance-register width vs quality (integer golden model)");
  table.set_header({"register", "USE", "dUSE", "recall", "drecall", "ASA"});
  for (auto& row : rows) {
    row.quality /= config.images;
    table.add_row({row.name, Table::num(row.quality.use, 4),
                   Table::num(row.quality.use - ref.use, 4),
                   Table::num(row.quality.recall, 4),
                   Table::num(row.quality.recall - ref.recall, 4),
                   Table::num(row.quality.asa, 4)});
  }
  table.add_note("the 9:1 minimum only needs the *order* of the nine "
                 "distances; keeping the top 8 bits preserves order wherever "
                 "the contenders differ materially (Section 6.1's relative-"
                 "comparison robustness).");
  std::cout << table;
  return 0;
}

// Unit tests for src/common: contracts, Span2d, Rng, PhaseTimer, Table, CLI.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <set>
#include <vector>

#include "common/check.h"
#include "common/cli.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/span2d.h"
#include "common/stopwatch.h"
#include "common/table.h"

namespace sslic {
namespace {

// ---------------------------------------------------------------- contracts

TEST(Check, PassingCheckDoesNothing) { SSLIC_CHECK(1 + 1 == 2); }

TEST(Check, FailingCheckThrowsContractViolation) {
  EXPECT_THROW(SSLIC_CHECK(false), ContractViolation);
}

TEST(Check, MessageIsIncluded) {
  try {
    SSLIC_CHECK_MSG(false, "value was " << 42);
    FAIL() << "expected throw";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("value was 42"), std::string::npos);
  }
}

// ------------------------------------------------------------------- Span2d

TEST(Span2d, DefaultIsEmpty) {
  Span2d<int> s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.width(), 0);
  EXPECT_EQ(s.height(), 0);
}

TEST(Span2d, IndexingIsRowMajor) {
  std::array<int, 6> data{0, 1, 2, 3, 4, 5};
  Span2d<int> s(data.data(), 3, 2);
  EXPECT_EQ(s(0, 0), 0);
  EXPECT_EQ(s(2, 0), 2);
  EXPECT_EQ(s(0, 1), 3);
  EXPECT_EQ(s(2, 1), 5);
}

TEST(Span2d, StrideSkipsPadding) {
  std::array<int, 8> data{0, 1, 2, 9, 3, 4, 5, 9};
  Span2d<int> s(data.data(), 3, 2, 4);
  EXPECT_EQ(s(2, 0), 2);
  EXPECT_EQ(s(0, 1), 3);
}

TEST(Span2d, ClampedAccessClampsAllSides) {
  std::array<int, 4> data{1, 2, 3, 4};
  Span2d<int> s(data.data(), 2, 2);
  EXPECT_EQ(s.at_clamped(-5, -5), 1);
  EXPECT_EQ(s.at_clamped(9, -1), 2);
  EXPECT_EQ(s.at_clamped(-1, 9), 3);
  EXPECT_EQ(s.at_clamped(9, 9), 4);
}

TEST(Span2d, SubviewSharesStorage) {
  std::vector<int> data(16, 0);
  Span2d<int> s(data.data(), 4, 4);
  Span2d<int> sub = s.subview(1, 1, 2, 2);
  sub(0, 0) = 7;
  EXPECT_EQ(s(1, 1), 7);
  EXPECT_EQ(sub.stride(), 4);
}

TEST(Span2d, SubviewOutOfBoundsThrows) {
  std::vector<int> data(16, 0);
  Span2d<int> s(data.data(), 4, 4);
  EXPECT_THROW((void)s.subview(2, 2, 3, 3), ContractViolation);
}

TEST(Span2d, ConstConversion) {
  std::array<int, 4> data{1, 2, 3, 4};
  Span2d<int> s(data.data(), 2, 2);
  Span2d<const int> c = s;
  EXPECT_EQ(c(1, 1), 4);
}

TEST(Span2d, InvalidConstructionThrows) {
  std::array<int, 4> data{};
  EXPECT_THROW(Span2d<int>(data.data(), -1, 2), ContractViolation);
  EXPECT_THROW(Span2d<int>(data.data(), 4, 2, 2), ContractViolation);
  EXPECT_THROW(Span2d<int>(nullptr, 2, 2), ContractViolation);
}

// ---------------------------------------------------------------------- Rng

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.next_u64() == b.next_u64();
  EXPECT_LT(equal, 2);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(17), 17u);
}

TEST(Rng, NextBelowZeroBoundThrows) {
  Rng rng(7);
  EXPECT_THROW(rng.next_below(0), ContractViolation);
}

TEST(Rng, NextIntCoversClosedRange) {
  Rng rng(11);
  std::set<int> seen;
  for (int i = 0; i < 2000; ++i) {
    const int v = rng.next_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextDoubleInHalfOpenUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, NextDoubleMeanIsCentered) {
  Rng rng(17);
  double sum = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / kN, 0.5, 0.02);
}

TEST(Rng, GaussianMomentsAreStandard) {
  Rng rng(19);
  double sum = 0.0, sum2 = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const double g = rng.next_gaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.05);
  EXPECT_NEAR(sum2 / kN, 1.0, 0.05);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(5);
  Rng forked = a.fork();
  // The fork must not replay the parent's sequence.
  Rng b(5);
  b.next_u64();  // advance to match the parent's post-fork state
  EXPECT_NE(forked.next_u64(), b.next_u64());
}

TEST(Rng, BernoulliProbabilityRoughlyHolds) {
  Rng rng(23);
  int hits = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) hits += rng.next_bool(0.25);
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.25, 0.02);
}

// --------------------------------------------------------------- PhaseTimer

TEST(PhaseTimer, AccumulatesByName) {
  PhaseTimer timer;
  timer.add("a", 2.0);
  timer.add("a", 3.0);
  timer.add("b", 5.0);
  EXPECT_DOUBLE_EQ(timer.phase_ms("a"), 5.0);
  EXPECT_DOUBLE_EQ(timer.phase_ms("b"), 5.0);
  EXPECT_DOUBLE_EQ(timer.total_ms(), 10.0);
  EXPECT_DOUBLE_EQ(timer.phase_fraction("a"), 0.5);
}

TEST(PhaseTimer, UnknownPhaseIsZero) {
  PhaseTimer timer;
  EXPECT_DOUBLE_EQ(timer.phase_ms("missing"), 0.0);
  EXPECT_DOUBLE_EQ(timer.phase_fraction("missing"), 0.0);
}

TEST(PhaseTimer, MergeAddsAllPhases) {
  PhaseTimer a, b;
  a.add("x", 1.0);
  b.add("x", 2.0);
  b.add("y", 4.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.phase_ms("x"), 3.0);
  EXPECT_DOUBLE_EQ(a.phase_ms("y"), 4.0);
}

TEST(PhaseTimer, ScopedPhaseRecordsNonNegativeTime) {
  PhaseTimer timer;
  { ScopedPhase scope(timer, "scope"); }
  EXPECT_GE(timer.phase_ms("scope"), 0.0);
}

TEST(Stopwatch, MonotonicNonNegative) {
  Stopwatch w;
  const double t1 = w.elapsed_ms();
  const double t2 = w.elapsed_ms();
  EXPECT_GE(t1, 0.0);
  EXPECT_GE(t2, t1);
  w.reset();
  EXPECT_GE(w.elapsed_ms(), 0.0);
}

// -------------------------------------------------------------------- Table

TEST(Table, RendersHeaderAndRows) {
  Table t("Title");
  t.set_header({"col1", "column2"});
  t.add_row({"a", "b"});
  t.add_row({"longer", "x"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("Title"), std::string::npos);
  EXPECT_NE(out.find("col1"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  Table t;
  t.set_header({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ContractViolation);
}

TEST(Table, NumFormatsDigits) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
}

TEST(Table, SiSuffixes) {
  EXPECT_EQ(Table::si(1500.0, 1), "1.5k");
  EXPECT_EQ(Table::si(2.5e6, 1), "2.5M");
  EXPECT_EQ(Table::si(3.0e9, 1), "3.0G");
  EXPECT_EQ(Table::si(12.0, 1), "12.0");
}

TEST(Table, NotesArePrinted) {
  Table t;
  t.set_header({"x"});
  t.add_row({"1"});
  t.add_note("a footnote");
  EXPECT_NE(t.to_string().find("a footnote"), std::string::npos);
}

// ------------------------------------------------------------------ logging

TEST(Logging, LevelRoundTrips) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(original);
}

TEST(Logging, SuppressedMessageDoesNotEvaluateStream) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::kError);
  int evaluations = 0;
  const auto touch = [&] {
    ++evaluations;
    return "x";
  };
  SSLIC_LOG(LogLevel::kDebug, touch());  // below threshold: not evaluated
  EXPECT_EQ(evaluations, 0);
  SSLIC_ERROR(touch());  // at threshold: evaluated (and printed to stderr)
  EXPECT_EQ(evaluations, 1);
  set_log_level(original);
}

// ---------------------------------------------------------------------- CLI

TEST(Cli, ParsesEqualsForm) {
  const char* argv[] = {"prog", "--count=5", "--name=abc"};
  CliArgs args(3, argv);
  EXPECT_EQ(args.get_int("count", 0), 5);
  EXPECT_EQ(args.get_string("name", ""), "abc");
}

TEST(Cli, ParsesSpaceForm) {
  const char* argv[] = {"prog", "--count", "7"};
  CliArgs args(3, argv);
  EXPECT_EQ(args.get_int("count", 0), 7);
}

TEST(Cli, BareFlagIsTrue) {
  const char* argv[] = {"prog", "--verbose"};
  CliArgs args(2, argv);
  EXPECT_TRUE(args.get_bool("verbose", false));
  EXPECT_TRUE(args.has("verbose"));
}

TEST(Cli, FallbacksWhenMissing) {
  const char* argv[] = {"prog"};
  CliArgs args(1, argv);
  EXPECT_EQ(args.get_int("missing", 42), 42);
  EXPECT_DOUBLE_EQ(args.get_double("missing", 1.5), 1.5);
  EXPECT_FALSE(args.has("missing"));
}

TEST(Cli, PositionalCollected) {
  const char* argv[] = {"prog", "input.ppm", "--k=10", "output.ppm"};
  CliArgs args(4, argv);
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "input.ppm");
  EXPECT_EQ(args.positional()[1], "output.ppm");
}

}  // namespace
}  // namespace sslic

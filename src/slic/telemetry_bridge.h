// Bridges the segmenters' Instrumentation records (ops + DRAM traffic,
// paper Table 2) into the telemetry metrics registry, so one flush_to()
// call exports timing, pool, and algorithm counters through the same
// TelemetrySink. Naming follows the `sslic.<unit>.<metric>` convention
// documented in common/telemetry.h.
#pragma once

#include <string>

#include "common/telemetry.h"
#include "slic/instrumentation.h"

namespace sslic::telemetry {

/// Publishes `instr` under `sslic.<unit>.ops.*` / `sslic.<unit>.traffic.*`
/// counters (plus `.iterations` and `.tiles_skipped`). Counters are set, not
/// accumulated: re-exporting after another run overwrites with the latest
/// totals.
void export_instrumentation(const Instrumentation& instr,
                            const std::string& unit,
                            MetricsRegistry& registry = MetricsRegistry::global());

}  // namespace sslic::telemetry

// Ablation (paper Section 8): Preemptive-SLIC-style cluster freezing is
// described as orthogonal to S-SLIC and combinable with it. This bench
// quantifies the combination: distance-computation savings from skipping
// converged tiles versus the quality cost.
#include <iostream>

#include "bench_common.h"
#include "slic/subsampled.h"

int main(int argc, char** argv) {
  using namespace sslic;
  bench::BenchConfig config = bench::BenchConfig::parse(argc, argv);
  bench::banner("Ablation — S-SLIC + preemptive cluster freezing (CPU)", config);

  const SyntheticCorpus corpus(config.dataset_params(), config.images,
                               config.seed);

  struct Row {
    std::string name;
    bool preemptive;
    double freeze_threshold;
    bench::Quality quality;
    double distance_evals = 0.0;
    double tiles_skipped = 0.0;
    double time_ms = 0.0;
  };
  std::vector<Row> rows = {
      {"S-SLIC(0.5)", false, 0.0, {}, 0, 0, 0},
      {"+ preemptive (eps=0.25)", true, 0.25, {}, 0, 0, 0},
      {"+ preemptive (eps=0.5)", true, 0.5, {}, 0, 0, 0},
      {"+ preemptive (eps=1.0)", true, 1.0, {}, 0, 0, 0},
  };

  for (int i = 0; i < corpus.size(); ++i) {
    const GroundTruthImage gt = corpus.generate(i);
    for (auto& row : rows) {
      SlicParams params = config.slic_params();
      params.subsample_ratio = 0.5;
      params.max_iterations = config.iterations * 2;
      params.preemptive = row.preemptive;
      params.freeze_threshold = row.freeze_threshold;
      Instrumentation instr;
      Stopwatch watch;
      const Segmentation seg = PpaSlic(params).segment(gt.image, {}, &instr);
      row.time_ms += watch.elapsed_ms();
      row.quality += bench::measure_quality(seg.labels, gt.truth);
      row.distance_evals += static_cast<double>(instr.ops.distance_evals);
      row.tiles_skipped += static_cast<double>(instr.tiles_skipped);
    }
  }

  const double base_evals = rows[0].distance_evals;
  Table table("Preemptive freezing: work saved vs quality cost");
  table.set_header({"variant", "dist evals", "saved", "tiles skipped",
                    "time ms/img", "USE", "recall", "ASA"});
  for (auto& row : rows) {
    row.quality /= config.images;
    table.add_row({row.name, Table::si(row.distance_evals / config.images, 1),
                   Table::num((1.0 - row.distance_evals / base_evals) * 100.0, 1) + "%",
                   Table::si(row.tiles_skipped / config.images, 1),
                   Table::num(row.time_ms / config.images, 1),
                   Table::num(row.quality.use, 4),
                   Table::num(row.quality.recall, 4),
                   Table::num(row.quality.asa, 4)});
  }
  table.add_note("paper Section 8: 'the two techniques could be combined; "
                 "the analysis of this combined algorithm is beyond the "
                 "scope of this work' — this bench provides that analysis.");
  std::cout << table;
  return 0;
}

#include "common/stopwatch.h"

namespace sslic {

Stopwatch::Stopwatch() : start_(std::chrono::steady_clock::now()) {}

void Stopwatch::reset() { start_ = std::chrono::steady_clock::now(); }

double Stopwatch::elapsed_ms() const {
  const auto now = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(now - start_).count();
}

double Stopwatch::elapsed_s() const { return elapsed_ms() / 1000.0; }

void PhaseTimer::add(const std::string& name, double ms) {
  const std::lock_guard<std::mutex> lock(mutex_);
  ms_[name] += ms;
}

double PhaseTimer::total_ms() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  double total = 0.0;
  for (const auto& [name, ms] : ms_) total += ms;
  return total;
}

double PhaseTimer::phase_ms(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = ms_.find(name);
  return it == ms_.end() ? 0.0 : it->second;
}

double PhaseTimer::phase_fraction(const std::string& name) const {
  const double total = total_ms();
  return total <= 0.0 ? 0.0 : phase_ms(name) / total;
}

std::map<std::string, double> PhaseTimer::phases() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return ms_;
}

void PhaseTimer::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  ms_.clear();
}

void PhaseTimer::merge(const PhaseTimer& other) {
  // Snapshot the source outside our own lock: self-merge aside, taking the
  // two locks in sequence (never nested) cannot deadlock.
  const std::map<std::string, double> theirs = other.phases();
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, ms] : theirs) ms_[name] += ms;
}

}  // namespace sslic

// Scalar backend TU. Compiled with -ffp-contract=off like every kernel TU,
// so the reference operation sequence has no fused multiply-adds for the
// vector backends to diverge from.
#include "slic/assign_kernels_impl.h"

namespace sslic::kernels {

const KernelTable& scalar_table() {
  static const KernelTable table = make_table<ScalarBackend>();
  return table;
}

}  // namespace sslic::kernels

// Unit and property tests for the fixed-point library (src/fixed), which
// models the HLS ac_fixed datapath types (paper Section 5, 6.1).
#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "fixed/fixed.h"
#include "fixed/quantizer.h"

namespace sslic {
namespace {

// ------------------------------------------------------------- Fixed<W, F>

TEST(Fixed, RoundTripIntegers) {
  for (int v = -128; v <= 127; ++v) {
    const auto f = Fixed<8, 0>::from_double(v);
    EXPECT_DOUBLE_EQ(f.to_double(), v);
  }
}

TEST(Fixed, FractionalResolution) {
  using F = Fixed<16, 8>;
  EXPECT_DOUBLE_EQ(F::resolution(), 1.0 / 256.0);
  EXPECT_DOUBLE_EQ(F::from_double(0.5).to_double(), 0.5);
  EXPECT_DOUBLE_EQ(F::from_double(1.0 / 256.0).to_double(), 1.0 / 256.0);
}

TEST(Fixed, RoundsToNearestTiesAwayFromZero) {
  using F = Fixed<8, 0>;
  EXPECT_DOUBLE_EQ(F::from_double(2.5).to_double(), 3.0);
  EXPECT_DOUBLE_EQ(F::from_double(-2.5).to_double(), -3.0);
  EXPECT_DOUBLE_EQ(F::from_double(2.4).to_double(), 2.0);
}

TEST(Fixed, SaturatesOnConstruction) {
  using F = Fixed<8, 0>;
  EXPECT_DOUBLE_EQ(F::from_double(1000.0).to_double(), 127.0);
  EXPECT_DOUBLE_EQ(F::from_double(-1000.0).to_double(), -128.0);
}

TEST(Fixed, AdditionSaturates) {
  using F = Fixed<8, 0>;
  const F big = F::from_double(100.0);
  EXPECT_DOUBLE_EQ((big + big).to_double(), 127.0);
  const F small = F::from_double(-100.0);
  EXPECT_DOUBLE_EQ((small + small).to_double(), -128.0);
}

TEST(Fixed, SubtractionBasics) {
  using F = Fixed<10, 2>;
  const F a = F::from_double(3.25);
  const F b = F::from_double(1.5);
  EXPECT_DOUBLE_EQ((a - b).to_double(), 1.75);
  EXPECT_DOUBLE_EQ((-b).to_double(), -1.5);
}

TEST(Fixed, MultiplicationRequantizes) {
  using F = Fixed<16, 8>;
  const F a = F::from_double(1.5);
  const F b = F::from_double(2.25);
  EXPECT_NEAR((a * b).to_double(), 3.375, F::resolution());
}

TEST(Fixed, MultiplicationSaturates) {
  using F = Fixed<8, 0>;
  const F a = F::from_double(100.0);
  EXPECT_DOUBLE_EQ((a * a).to_double(), 127.0);
}

TEST(Fixed, ComparisonsFollowRealOrder) {
  using F = Fixed<12, 4>;
  const F a = F::from_double(1.0);
  const F b = F::from_double(2.0);
  EXPECT_LT(a, b);
  EXPECT_LE(a, a);
  EXPECT_GT(b, a);
  EXPECT_EQ(a, F::from_double(1.0));
  EXPECT_NE(a, b);
}

TEST(Fixed, AbsSaturatesAtMin) {
  using F = Fixed<8, 0>;
  EXPECT_DOUBLE_EQ(F::min().abs().to_double(), 127.0);
  EXPECT_DOUBLE_EQ(F::from_double(-5).abs().to_double(), 5.0);
}

TEST(Fixed, CompoundAssignment) {
  using F = Fixed<16, 4>;
  F acc = F::from_double(1.0);
  acc += F::from_double(2.0);
  acc *= F::from_double(3.0);
  acc -= F::from_double(4.0);
  EXPECT_DOUBLE_EQ(acc.to_double(), 5.0);
}

// Property: quantization error of from_double is at most half a ulp.
TEST(Fixed, QuantizationErrorBounded) {
  using F = Fixed<12, 6>;
  for (double v = -30.0; v <= 30.0; v += 0.037) {
    const double err = std::fabs(F::from_double(v).to_double() - v);
    EXPECT_LE(err, F::resolution() / 2.0 + 1e-12) << "v=" << v;
  }
}

// Property: (a+b)-b == a when no saturation occurs.
TEST(Fixed, AddThenSubtractIsIdentityWithoutSaturation) {
  using F = Fixed<16, 4>;
  for (double a = -100.0; a <= 100.0; a += 13.375) {
    for (double b = -100.0; b <= 100.0; b += 17.8125) {
      const F fa = F::from_double(a);
      const F fb = F::from_double(b);
      EXPECT_EQ(((fa + fb) - fb).raw(), fa.raw());
    }
  }
}

// -------------------------------------------------------------- Quantizer

TEST(Quantizer, IdentityPassesThrough) {
  const Quantizer q = Quantizer::float64();
  EXPECT_TRUE(q.is_identity());
  EXPECT_DOUBLE_EQ(q.apply(3.14159), 3.14159);
  EXPECT_EQ(q.name(), "float64");
}

TEST(Quantizer, EightBitIntegerGrid) {
  const Quantizer q(8, 0);
  EXPECT_DOUBLE_EQ(q.apply(3.4), 3.0);
  EXPECT_DOUBLE_EQ(q.apply(3.6), 4.0);
  EXPECT_DOUBLE_EQ(q.apply(300.0), 127.0);
  EXPECT_DOUBLE_EQ(q.apply(-300.0), -128.0);
  EXPECT_EQ(q.name(), "fx8.0");
}

TEST(Quantizer, FractionalGrid) {
  const Quantizer q(8, 4);
  EXPECT_DOUBLE_EQ(q.resolution(), 1.0 / 16.0);
  EXPECT_DOUBLE_EQ(q.apply(0.1), 0.125);  // nearest 1/16 step to 0.1 is 2/16
  EXPECT_DOUBLE_EQ(q.max_value(), 127.0 / 16.0);
}

TEST(Quantizer, TruncateModeRoundsTowardZero) {
  const Quantizer q(8, 0, Rounding::kTruncate);
  EXPECT_DOUBLE_EQ(q.apply(3.9), 3.0);
  EXPECT_DOUBLE_EQ(q.apply(-3.9), -3.0);
}

TEST(Quantizer, InvalidConfigThrows) {
  EXPECT_THROW(Quantizer(1, 0), ContractViolation);
  EXPECT_THROW(Quantizer(8, 8), ContractViolation);
  EXPECT_THROW(Quantizer(63, 0), ContractViolation);
}

// Parameterized property sweep: for every width, quantization is idempotent,
// monotone, and its error is bounded by half the grid step.
class QuantizerWidthSweep : public ::testing::TestWithParam<int> {};

TEST_P(QuantizerWidthSweep, Idempotent) {
  const Quantizer q(GetParam(), 0);
  for (double v = -130.0; v <= 130.0; v += 0.7) {
    const double once = q.apply(v);
    EXPECT_DOUBLE_EQ(q.apply(once), once);
  }
}

TEST_P(QuantizerWidthSweep, Monotone) {
  const Quantizer q(GetParam(), 0);
  double prev = q.apply(-200.0);
  for (double v = -199.0; v <= 200.0; v += 0.51) {
    const double cur = q.apply(v);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

TEST_P(QuantizerWidthSweep, ErrorBoundedInRange) {
  const Quantizer q(GetParam(), 0);
  const double half_step = 0.5;  // frac_bits = 0 -> unit grid
  for (double v = q.min_value(); v <= q.max_value(); v += 0.37) {
    EXPECT_LE(std::fabs(q.apply(v) - v), half_step + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, QuantizerWidthSweep,
                         ::testing::Values(4, 5, 6, 7, 8, 10, 12, 16));

// Property: a finer quantizer never has larger error than a coarser one for
// the same fractional split (the Section-6.1 monotonicity premise).
TEST(Quantizer, FinerWidthNeverWorse) {
  for (int bits = 5; bits <= 12; ++bits) {
    const Quantizer coarse(bits - 1, 0);
    const Quantizer fine(bits, 0);
    for (double v = coarse.min_value(); v <= coarse.max_value(); v += 0.91) {
      EXPECT_LE(std::fabs(fine.apply(v) - v), std::fabs(coarse.apply(v) - v) + 1e-12)
          << "bits=" << bits << " v=" << v;
    }
  }
}

}  // namespace
}  // namespace sslic

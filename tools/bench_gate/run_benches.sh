#!/usr/bin/env sh
# Runs the CI-sized bench set and collects the BENCH_*.json artifacts.
#
#   tools/bench_gate/run_benches.sh <build-dir> <output-dir>
#
# The workload sizes here are the gate's canonical CI configuration: small
# enough for a minutes-long CI step, large enough that per-frame medians are
# stable. Baselines under bench/baselines/ MUST be regenerated with this
# same script (same sizes), or the comparison is meaningless:
#
#   tools/bench_gate/run_benches.sh build bench/baselines
set -eu

BUILD_DIR="${1:?usage: run_benches.sh <build-dir> <output-dir>}"
OUT_DIR="${2:?usage: run_benches.sh <build-dir> <output-dir>}"

mkdir -p "$OUT_DIR"
OUT_DIR="$(cd "$OUT_DIR" && pwd)"
BUILD_DIR="$(cd "$BUILD_DIR" && pwd)"

WORK_DIR="$(mktemp -d)"
trap 'rm -rf "$WORK_DIR"' EXIT
cd "$WORK_DIR"

echo "== fused_iteration =="
"$BUILD_DIR/bench/fused_iteration" --frames=5 --width=640 --height=360 \
    --superpixels=400

echo "== telemetry_overhead =="
"$BUILD_DIR/bench/telemetry_overhead" --frames=5 --width=640 --height=360 \
    --superpixels=400

echo "== thread_scaling =="
"$BUILD_DIR/bench/thread_scaling" --frames=5 --width=640 --height=360 \
    --superpixels=400

echo "== simd_kernels =="
"$BUILD_DIR/bench/simd_kernels" --width=640 --rows=64 --reps=10

cp BENCH_*.json "$OUT_DIR/"
echo "artifacts in $OUT_DIR:"
ls -1 "$OUT_DIR"/BENCH_*.json

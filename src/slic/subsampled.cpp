#include "slic/subsampled.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <vector>

#include "common/check.h"
#include "common/perf_counters.h"
#include "common/trace.h"
#include "image/planar.h"
#include "slic/assign_kernels.h"
#include "slic/center_update.h"
#include "slic/connectivity.h"
#include "slic/fusion.h"
#include "slic/grid.h"
#include "slic/slic_baseline.h"
#include "slic/subset_schedule.h"

namespace sslic {

PpaSlic::PpaSlic(SlicParams params, DataWidth data_width)
    : params_(params), data_width_(data_width) {
  SSLIC_CHECK(params_.num_superpixels >= 1);
  SSLIC_CHECK(params_.compactness > 0.0);
  SSLIC_CHECK(params_.max_iterations >= 1);
}

Segmentation PpaSlic::segment(const RgbImage& image,
                              const IterationCallback& callback,
                              Instrumentation* instrumentation,
                              PhaseTimer* phases) const {
  LabImage lab;
  {
    Stopwatch watch;
    lab = srgb_to_lab(image);
    if (phases != nullptr)
      phases->add(CpaSlic::kPhaseColorConversion, watch.elapsed_ms());
  }
  return segment_lab(lab, callback, instrumentation, phases);
}

Segmentation PpaSlic::segment_lab(const LabImage& lab,
                                  const IterationCallback& callback,
                                  Instrumentation* instrumentation,
                                  PhaseTimer* phases) const {
  Segmentation result;
  IterationScratch scratch;
  segment_impl(lab, nullptr, result, scratch, callback, instrumentation, phases);
  return result;
}

Segmentation PpaSlic::segment_lab_warm(
    const LabImage& lab, const std::vector<ClusterCenter>& initial_centers,
    const IterationCallback& callback, Instrumentation* instrumentation,
    PhaseTimer* phases) const {
  Segmentation result;
  IterationScratch scratch;
  segment_impl(lab, &initial_centers, result, scratch, callback,
               instrumentation, phases);
  return result;
}

void PpaSlic::segment_lab_into(const LabImage& lab, Segmentation& result,
                               IterationScratch& scratch,
                               const IterationCallback& callback,
                               Instrumentation* instrumentation,
                               PhaseTimer* phases) const {
  segment_impl(lab, nullptr, result, scratch, callback, instrumentation,
               phases);
}

void PpaSlic::segment_lab_warm_into(
    const LabImage& lab, const std::vector<ClusterCenter>& initial_centers,
    Segmentation& result, IterationScratch& scratch,
    const IterationCallback& callback, Instrumentation* instrumentation,
    PhaseTimer* phases) const {
  segment_impl(lab, &initial_centers, result, scratch, callback,
               instrumentation, phases);
}

void PpaSlic::segment_impl(const LabImage& lab,
                           const std::vector<ClusterCenter>* warm_centers,
                           Segmentation& result, IterationScratch& scratch,
                           const IterationCallback& callback,
                           Instrumentation* instrumentation,
                           PhaseTimer* phases) const {
  SSLIC_CHECK(!lab.empty());
  SSLIC_TRACE_SCOPE("ppa.segment");
  SSLIC_PERF_SCOPE("ppa.segment");
  const int w = lab.width();
  const int h = lab.height();
  const std::size_t n = lab.size();

  Instrumentation local_instr;
  Instrumentation& instr = instrumentation != nullptr ? *instrumentation : local_instr;
  instr = Instrumentation{};
  const bool fused = fusion_enabled();
  instr.fused = fused;

  Stopwatch init_watch;
  const CenterGrid grid(w, h, params_.num_superpixels);
  const DistanceCalculator dist(params_.compactness, grid.spacing(), data_width_);
  const SubsetSchedule schedule =
      SubsetSchedule::from_ratio(params_.subsample_ratio, params_.subset_pattern);
  const int num_centers = grid.num_centers();
  const auto num_centers_z = static_cast<std::size_t>(num_centers);

  // Model n-bit storage: the image (and, after every update, the centers)
  // are held at the configured data width. At full float width the input
  // image is already in stored form — no copy needed.
  const LabImage* stored_ptr = &lab;
  if (data_width_.color_bits != 0) {
    scratch.stored = lab;
    for (auto& px : scratch.stored.pixels()) px = dist.quantize(px);
    stored_ptr = &scratch.stored;
  }
  const LabImage& stored = *stored_ptr;

  if (warm_centers != nullptr) {
    SSLIC_CHECK_MSG(static_cast<int>(warm_centers->size()) == num_centers,
                    "warm start has " << warm_centers->size()
                                      << " centers, grid needs " << num_centers);
    result.centers.assign(warm_centers->begin(), warm_centers->end());
    for (auto& c : result.centers) {
      c.x = std::clamp(c.x, 0.0, static_cast<double>(w - 1));
      c.y = std::clamp(c.y, 0.0, static_cast<double>(h - 1));
    }
  } else {
    seed_centers(grid, stored, params_.perturb_centers, result.centers,
                 scratch.gradient);
  }
  for (auto& c : result.centers) dist.quantize_center(c);
  initial_labels(grid, result.labels);
  result.iterations_run = 0;
  result.trace.clear();
  result.trace.reserve(static_cast<std::size_t>(params_.max_iterations));

  const std::vector<CandidateList>& candidates = scratch.candidate_map(grid);

  // Running minimum-distance buffer (Fig. 1b keeps one in the software
  // formulation; the accelerator holds the running minimum in registers).
  std::vector<double>& min_dist = scratch.min_dist;
  min_dist.assign(n, std::numeric_limits<double>::infinity());

  // Planar split of the (quantized) stored image feeds the vectorized
  // candidate kernel; the subset mask is materialized per row. Kernel
  // dispatch is resolved once, outside the tile loops.
  split_lab_planes(stored, scratch.planes);
  const LabPlanes& planes = scratch.planes;
  const kernels::KernelTable& kt = kernels::active();
  const double spatial_weight = dist.spatial_weight();
  std::vector<std::uint8_t>& row_active = scratch.row_active;
  row_active.assign(static_cast<std::size_t>(w), 0);

  std::vector<Sigma>& sigmas = scratch.sigmas;
  sigmas.assign(num_centers_z, Sigma{});
  // Preemptive extension state.
  std::vector<std::uint8_t>& frozen = scratch.frozen;
  frozen.assign(num_centers_z, 0);
  std::vector<std::uint8_t>& calm_streak = scratch.calm_streak;
  calm_streak.assign(num_centers_z, 0);
  std::vector<std::uint8_t>& tile_skipped = scratch.tile_skipped;
  tile_skipped.assign(num_centers_z, 0);
  if (phases != nullptr) phases->add(CpaSlic::kPhaseOther, init_watch.elapsed_ms());

  for (int iter = 0; iter < params_.max_iterations; ++iter) {
    SSLIC_TRACE_SCOPE("ppa.iter", iter);
    Stopwatch iter_watch;
    IterationStats stats;
    stats.iteration = iter;

    // --- Per-pixel assignment over the active subset, tile by tile. ---
    // Fused mode accumulates each stripe's sigma contributions right after
    // the stripe's tiles finish (the labels of those rows are final for
    // this iteration); stripes are ascending contiguous row ranges, so the
    // accumulation order is exactly the global row-major order of the
    // two-pass update loop and sigmas match it bit for bit.
    Stopwatch assign_watch;
    trace::Interval assign_span;
    perf::IntervalSample iter_perf;
    std::fill(tile_skipped.begin(), tile_skipped.end(), std::uint8_t{0});
    if (fused) {
      for (auto& s : sigmas) s.clear();
    }
    std::uint64_t accumulated = 0;
    for (int gy = 0; gy < grid.ny(); ++gy) {
      const int y0 = gy * h / grid.ny();
      const int y1 = (gy + 1) * h / grid.ny();
      for (int gx = 0; gx < grid.nx(); ++gx) {
        SSLIC_TRACE_SCOPE_AT(1, "ppa.tile", grid.center_index(gx, gy));
        const CandidateList& cand =
            candidates[static_cast<std::size_t>(grid.center_index(gx, gy))];

        if (params_.preemptive) {
          const bool all_frozen =
              std::all_of(cand.begin(), cand.end(), [&](std::int32_t c) {
                return frozen[static_cast<std::size_t>(c)] != 0;
              });
          if (all_frozen) {
            instr.tiles_skipped += 1;
            tile_skipped[static_cast<std::size_t>(grid.center_index(gx, gy))] = 1;
            continue;
          }
        }

        const int x0 = gx * w / grid.nx();
        const int x1 = (gx + 1) * w / grid.nx();
        instr.traffic.center_read += 9 * MemTraffic::kCenterBytes;

        // Candidate operands in list order — slot order is the tie-break,
        // exactly as the 9:1 minimum tree resolves ties to the lowest slot.
        std::array<kernels::CenterOperand, 9> cand_ops;
        for (std::size_t k = 0; k < cand.size(); ++k) {
          const ClusterCenter& cc =
              result.centers[static_cast<std::size_t>(cand[k])];
          cand_ops[k] = {cc.L, cc.a, cc.b, cc.x, cc.y, cand[k]};
        }
        const std::int32_t count = x1 - x0;
        std::int32_t* labels_ptr = result.labels.pixels().data();
        const bool all_active = schedule.count() == 1;
        for (int y = y0; y < y1; ++y) {
          const std::size_t off =
              static_cast<std::size_t>(y) * static_cast<std::size_t>(w) +
              static_cast<std::size_t>(x0);
          std::uint64_t visited = static_cast<std::uint64_t>(count);
          const std::uint8_t* mask = nullptr;
          if (!all_active) {
            visited = 0;
            for (int x = x0; x < x1; ++x) {
              const bool is_active = schedule.active(x, y, iter);
              row_active[static_cast<std::size_t>(x - x0)] =
                  is_active ? std::uint8_t{1} : std::uint8_t{0};
              visited += is_active ? 1 : 0;
            }
            if (visited == 0) continue;
            mask = row_active.data();
          }
          SSLIC_TRACE_SCOPE_AT(2, "ppa.kernel.row", y);
          kt.assign_candidates_row(
              planes.L.data() + off, planes.a.data() + off,
              planes.b.data() + off, x0, count, static_cast<double>(y),
              cand_ops.data(), static_cast<std::int32_t>(cand.size()),
              spatial_weight, mask, min_dist.data() + off, labels_ptr + off);
          stats.pixels_visited += visited;
        }
        // Software-prototype DRAM convention (see instrumentation.h): per
        // visited pixel Lab(12)+candidates(18)+label r/w(8)+min-dist r/w(8).
        // Counted per pixel below via stats; candidate bytes are also
        // charged per pixel to match the profiled prototype.
      }

      // --- Fused stripe accumulation over rows [y0, y1). ---
      if (fused) {
        SSLIC_TRACE_SCOPE_AT(1, "ppa.fused_accumulate", gy);
        const std::int32_t* labels_ptr = result.labels.pixels().data();
        const bool all_active = schedule.count() == 1;
        if (all_active && !params_.preemptive) {
          // Every pixel contributes: whole rows through the SIMD scatter
          // kernel (bit-equal to the scalar loop; see assign_kernels.h).
          for (int y = y0; y < y1; ++y) {
            const std::size_t off =
                static_cast<std::size_t>(y) * static_cast<std::size_t>(w);
            kt.accumulate_row(planes.L.data() + off, planes.a.data() + off,
                              planes.b.data() + off, 0, w, y,
                              labels_ptr + off, sigmas.data());
          }
          accumulated +=
              static_cast<std::uint64_t>(y1 - y0) * static_cast<std::uint64_t>(w);
        } else {
          // Masked path: identical skip conditions to the two-pass update
          // loop (inactive subset members; tiles the preemptive extension
          // skipped this iteration).
          for (int y = y0; y < y1; ++y) {
            const int cell_gy = grid.cell_y(y);
            for (int x = 0; x < w; ++x) {
              if (!schedule.active(x, y, iter)) continue;
              if (params_.preemptive &&
                  tile_skipped[static_cast<std::size_t>(
                      grid.center_index(grid.cell_x(x), cell_gy))] != 0) {
                continue;
              }
              const std::size_t flat =
                  static_cast<std::size_t>(y) * static_cast<std::size_t>(w) +
                  static_cast<std::size_t>(x);
              sigmas[static_cast<std::size_t>(labels_ptr[flat])].add(
                  stored.pixels()[flat], x, y);
              accumulated += 1;
            }
          }
        }
      }
    }
    // Hoisted out of the inner loop: every visited pixel scans exactly the
    // 9-candidate list (9 distance evals, 8 running-min compares).
    instr.ops.distance_evals += stats.pixels_visited * 9;
    instr.ops.compare_ops += stats.pixels_visited * 8;
    instr.traffic.image_read += stats.pixels_visited * MemTraffic::kLabBytes;
    instr.traffic.candidate_read +=
        stats.pixels_visited * MemTraffic::kCandidateBytes;
    instr.traffic.label_read += stats.pixels_visited * MemTraffic::kLabelBytes;
    instr.traffic.label_write += stats.pixels_visited * MemTraffic::kLabelBytes;
    instr.traffic.distance_read +=
        stats.pixels_visited * MemTraffic::kDistanceBytes;
    instr.traffic.distance_write +=
        stats.pixels_visited * MemTraffic::kDistanceBytes;
    if (phases != nullptr)
      phases->add(CpaSlic::kPhaseDistanceMin, assign_watch.elapsed_ms());
    assign_span.complete("ppa.assign", iter);
    iter_perf.complete("ppa.assign");

    // --- Center update from the subset's accumulations (OS-EM style). ---
    // In two-pass mode the sigma accumulation runs as its own pass (the
    // hardware's cluster update unit accumulates from tile-resident data,
    // so this adds no DRAM traffic) and is charged to the center-update
    // phase, matching the paper's Table-1 accounting. In fused mode it
    // already happened stripe by stripe above; only the division remains.
    Stopwatch update_watch;
    trace::Interval update_span;
    if (!fused) {
      for (auto& s : sigmas) s.clear();
      for (int y = 0; y < h; ++y) {
        const int gy = grid.cell_y(y);
        for (int x = 0; x < w; ++x) {
          if (!schedule.active(x, y, iter)) continue;
          if (params_.preemptive &&
              tile_skipped[static_cast<std::size_t>(
                  grid.center_index(grid.cell_x(x), gy))] != 0) {
            continue;
          }
          const std::size_t flat =
              static_cast<std::size_t>(y) * static_cast<std::size_t>(w) +
              static_cast<std::size_t>(x);
          sigmas[static_cast<std::size_t>(result.labels.pixels()[flat])].add(
              stored.pixels()[flat], x, y);
          accumulated += 1;
        }
      }
    }
    instr.ops.accumulate_ops += 6 * accumulated;
    double movement_sum = 0.0;
    std::size_t updated = 0;
    for (std::size_t ci = 0; ci < result.centers.size(); ++ci) {
      const Sigma& s = sigmas[ci];
      if (s.count == 0) continue;
      const double inv = 1.0 / static_cast<double>(s.count);
      ClusterCenter next{s.L * inv, s.a * inv, s.b * inv, s.x * inv, s.y * inv};
      dist.quantize_center(next);
      const double moved =
          std::abs(next.x - result.centers[ci].x) +
          std::abs(next.y - result.centers[ci].y);
      movement_sum += moved;
      ++updated;
      result.centers[ci] = next;
      instr.ops.divide_ops += 5;

      if (params_.preemptive) {
        if (moved < params_.freeze_threshold) {
          if (calm_streak[ci] < 255) calm_streak[ci] += 1;
          if (calm_streak[ci] >= 2) frozen[ci] = 1;
        } else {
          calm_streak[ci] = 0;
          frozen[ci] = 0;
        }
      }
    }
    stats.center_movement =
        updated == 0 ? 0.0 : movement_sum / static_cast<double>(updated);
    instr.traffic.center_write +=
        static_cast<std::uint64_t>(num_centers) * MemTraffic::kCenterBytes;
    if (phases != nullptr)
      phases->add(CpaSlic::kPhaseCenterUpdate, update_watch.elapsed_ms());
    update_span.complete("ppa.update", iter);
    iter_perf.complete("ppa.update");

    instr.iterations += 1;
    result.iterations_run = iter + 1;
    stats.elapsed_ms = iter_watch.elapsed_ms();
    result.trace.push_back(stats);

    if (callback) callback(stats, result.labels, result.centers);

    if (params_.convergence_threshold > 0.0 &&
        stats.center_movement < params_.convergence_threshold &&
        iter + 1 >= schedule.count()) {
      break;
    }
  }

  if (params_.enforce_connectivity) {
    Stopwatch conn_watch;
    SSLIC_TRACE_SCOPE("ppa.connectivity");
    SSLIC_PERF_SCOPE("ppa.connectivity");
    enforce_connectivity(result.labels, params_.num_superpixels,
                         &scratch.connectivity);
    if (phases != nullptr) phases->add(CpaSlic::kPhaseOther, conn_watch.elapsed_ms());
  }
}

}  // namespace sslic

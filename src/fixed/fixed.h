// Compile-time fixed-point arithmetic, modelling the HLS `ac_fixed` types
// used in the paper's synthesizable C implementation (Section 5).
//
// Fixed<W, F> is a W-bit two's-complement value with F fractional bits
// (so the represented value is raw / 2^F). Arithmetic saturates on overflow,
// matching the saturation mode the accelerator datapath uses; conversion
// from floating point rounds to nearest (ties away from zero), matching
// AC_RND behaviour.
#pragma once

#include <cstdint>
#include <limits>
#include <type_traits>

#include "common/check.h"

namespace sslic {

/// W-bit signed fixed-point number with F fractional bits, saturating.
/// Requires 1 <= W <= 32 and 0 <= F < W so intermediate products fit i64.
template <int W, int F>
class Fixed {
  static_assert(W >= 1 && W <= 32, "width must be in [1,32]");
  static_assert(F >= 0 && F < W, "fractional bits must be in [0,W)");

 public:
  static constexpr int kWidth = W;
  static constexpr int kFracBits = F;
  static constexpr std::int64_t kRawMax = (std::int64_t{1} << (W - 1)) - 1;
  static constexpr std::int64_t kRawMin = -(std::int64_t{1} << (W - 1));
  static constexpr double kScale = static_cast<double>(std::int64_t{1} << F);

  constexpr Fixed() = default;

  /// Constructs from a real value, rounding to nearest and saturating.
  static constexpr Fixed from_double(double v) {
    const double scaled = v * kScale;
    const double rounded = scaled >= 0.0 ? scaled + 0.5 : scaled - 0.5;
    std::int64_t raw;
    if (rounded >= static_cast<double>(kRawMax))
      raw = kRawMax;
    else if (rounded <= static_cast<double>(kRawMin))
      raw = kRawMin;
    else
      raw = static_cast<std::int64_t>(rounded);
    return from_raw_saturated(raw);
  }

  /// Constructs from an already-scaled raw integer, saturating.
  static constexpr Fixed from_raw_saturated(std::int64_t raw) {
    Fixed f;
    f.raw_ = raw > kRawMax ? kRawMax : (raw < kRawMin ? kRawMin : raw);
    return f;
  }

  /// Constructs from a raw integer known to be in range (checked in debug).
  static constexpr Fixed from_raw(std::int64_t raw) {
    SSLIC_DCHECK(raw >= kRawMin && raw <= kRawMax);
    Fixed f;
    f.raw_ = raw;
    return f;
  }

  [[nodiscard]] constexpr std::int64_t raw() const { return raw_; }
  [[nodiscard]] constexpr double to_double() const {
    return static_cast<double>(raw_) / kScale;
  }

  [[nodiscard]] static constexpr Fixed max() { return from_raw(kRawMax); }
  [[nodiscard]] static constexpr Fixed min() { return from_raw(kRawMin); }
  [[nodiscard]] static constexpr double resolution() { return 1.0 / kScale; }

  friend constexpr Fixed operator+(Fixed a, Fixed b) {
    return from_raw_saturated(a.raw_ + b.raw_);
  }
  friend constexpr Fixed operator-(Fixed a, Fixed b) {
    return from_raw_saturated(a.raw_ - b.raw_);
  }
  friend constexpr Fixed operator-(Fixed a) { return from_raw_saturated(-a.raw_); }

  /// Full-precision product re-quantized to (W, F) with round-to-nearest.
  friend constexpr Fixed operator*(Fixed a, Fixed b) {
    const std::int64_t prod = a.raw_ * b.raw_;  // fits: both <= 2^31
    const std::int64_t half = std::int64_t{1} << (F > 0 ? F - 1 : 0);
    const std::int64_t rounded =
        F > 0 ? ((prod >= 0 ? prod + half : prod - half) >> F) : prod;
    return from_raw_saturated(rounded);
  }

  friend constexpr bool operator==(Fixed a, Fixed b) { return a.raw_ == b.raw_; }
  friend constexpr bool operator!=(Fixed a, Fixed b) { return a.raw_ != b.raw_; }
  friend constexpr bool operator<(Fixed a, Fixed b) { return a.raw_ < b.raw_; }
  friend constexpr bool operator<=(Fixed a, Fixed b) { return a.raw_ <= b.raw_; }
  friend constexpr bool operator>(Fixed a, Fixed b) { return a.raw_ > b.raw_; }
  friend constexpr bool operator>=(Fixed a, Fixed b) { return a.raw_ >= b.raw_; }

  Fixed& operator+=(Fixed other) { return *this = *this + other; }
  Fixed& operator-=(Fixed other) { return *this = *this - other; }
  Fixed& operator*=(Fixed other) { return *this = *this * other; }

  /// Absolute value (saturates: |min| -> max).
  [[nodiscard]] constexpr Fixed abs() const {
    return raw_ < 0 ? from_raw_saturated(-raw_) : *this;
  }

 private:
  std::int64_t raw_ = 0;
};

/// The accelerator's pixel/center component type: 8-bit integer-valued
/// fixed point (Section 6.1 selects an 8-bit datapath).
using Fx8 = Fixed<8, 0>;

/// Wider accumulator used by the sigma registers (Section 4.3: accumulated
/// L/a/b/x/y plus pixel count over up to a full superpixel's pixels).
using FxAcc = Fixed<32, 0>;

}  // namespace sslic

// Synthetic Berkeley-like segmentation corpus.
//
// The paper evaluates on 100-200 images of the Berkeley Segmentation
// Dataset (BSDS) with human ground-truth segmentations. BSDS is not
// available in this environment, so this module synthesizes images with the
// statistics the quality metrics actually depend on (see DESIGN.md §1):
// piecewise-smooth color regions with curved boundaries, textured
// interiors, global illumination variation, and sensor noise — together
// with an exact ground-truth partition. Everything is deterministic in the
// seed.
//
// Construction: Voronoi sites are scattered and merged into a target number
// of regions via nearest region-seed assignment; the Voronoi metric is
// warped by a smooth vector noise field so boundaries curve like natural
// object contours. Each region receives a base CIELAB color; pixels add an
// illumination field, per-region fractal texture, and Gaussian noise, then
// convert to 8-bit sRGB.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "image/image.h"

namespace sslic {

/// One synthetic test case: an image and its exact ground-truth partition.
struct GroundTruthImage {
  RgbImage image;
  LabelImage truth;     // region index per pixel, in [0, num_regions)
  int num_regions = 0;  // number of distinct ground-truth regions
};

/// Generation parameters. Defaults match BSDS-like statistics: 481x321
/// images with ~6-30 human-perceived regions. Region colors are drawn from
/// a small per-image palette, so some adjacent regions are nearly
/// isochromatic — the "semantic but not photometric" boundaries that make
/// human ground truth hard for color clustering (and give USE/boundary-
/// recall realistic, non-saturated values).
struct SyntheticParams {
  int width = 481;
  int height = 321;
  int min_regions = 6;       ///< fewest ground-truth regions per image
  int max_regions = 30;      ///< most ground-truth regions per image
  int sites_per_region = 4;  ///< Voronoi granularity before merging
  int palette_size = 5;      ///< distinct base colors shared by the regions
  double palette_offset_sigma = 2.5;  ///< per-region deviation from palette
  double warp_amplitude = 9.0;   ///< boundary curvature, in pixels
  double warp_cell = 48.0;       ///< spatial scale of boundary warping
  double texture_amplitude = 7.0;  ///< per-region Lab texture strength
  double illumination_amplitude = 8.0;  ///< smooth lightness drift
  double noise_sigma = 2.5;        ///< Gaussian sensor noise (Lab units)
};

/// Generates one image+ground-truth pair. Fully determined by (params, seed).
GroundTruthImage generate_synthetic(const SyntheticParams& params,
                                    std::uint64_t seed);

/// One image with several "annotators" — BSDS images carry ~5 human
/// segmentations that differ in boundary placement and granularity. Each
/// synthetic annotator re-draws the region boundaries with its own warp
/// field (localization disagreement, a few pixels) and may merge some
/// adjacent region pairs (granularity disagreement). truths[0] is the
/// partition the image was rendered from.
struct MultiAnnotatorImage {
  RgbImage image;
  std::vector<LabelImage> truths;
};

/// Generates an image with `annotators` ground-truth segmentations
/// (annotators >= 1). Deterministic in (params, seed, annotators).
MultiAnnotatorImage generate_multi_annotator(const SyntheticParams& params,
                                             std::uint64_t seed, int annotators);

/// A corpus of deterministic synthetic images; image i is generated from
/// `base_seed + i` on demand (no state is shared between indices, so
/// corpora can be iterated in any order).
class SyntheticCorpus {
 public:
  SyntheticCorpus(SyntheticParams params, int size, std::uint64_t base_seed = 1000);

  [[nodiscard]] int size() const { return size_; }
  [[nodiscard]] GroundTruthImage generate(int index) const;
  [[nodiscard]] const SyntheticParams& params() const { return params_; }

 private:
  SyntheticParams params_;
  int size_ = 0;
  std::uint64_t base_seed_ = 0;
};

/// Compacts labels to 0..n-1 preserving first-appearance order; returns the
/// number of distinct labels. Exposed for reuse by metrics/segmentation code.
int compact_labels(LabelImage& labels);

}  // namespace sslic

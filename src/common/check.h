// Lightweight runtime-contract checking.
//
// SSLIC_CHECK enforces preconditions/invariants in all build types and
// throws sslic::ContractViolation on failure (per CppCoreGuidelines I.6/E.x:
// report precondition violations through the error-handling mechanism rather
// than silently corrupting state). SSLIC_DCHECK compiles out in NDEBUG and
// is reserved for hot inner loops.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace sslic {

/// Thrown when a checked precondition, postcondition, or invariant fails.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void contract_fail(const char* expr, const char* file, int line,
                                       const std::string& msg) {
  std::ostringstream os;
  os << "contract violation: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw ContractViolation(os.str());
}

}  // namespace detail
}  // namespace sslic

#define SSLIC_CHECK(expr)                                                   \
  do {                                                                      \
    if (!(expr)) ::sslic::detail::contract_fail(#expr, __FILE__, __LINE__, {}); \
  } while (false)

#define SSLIC_CHECK_MSG(expr, msg)                                          \
  do {                                                                      \
    if (!(expr)) {                                                          \
      std::ostringstream sslic_check_os_;                                   \
      sslic_check_os_ << msg;                                               \
      ::sslic::detail::contract_fail(#expr, __FILE__, __LINE__,             \
                                     sslic_check_os_.str());                \
    }                                                                       \
  } while (false)

#ifdef NDEBUG
#define SSLIC_DCHECK(expr) \
  do {                     \
  } while (false)
#else
#define SSLIC_DCHECK(expr) SSLIC_CHECK(expr)
#endif

// Operation and DRAM-traffic accounting (paper Table 2).
//
// Accounting conventions, chosen to match the paper's published figures and
// used consistently by every instrumented implementation:
//
// Operations
//   * One 5-D color-space distance evaluation (Eq. 5) costs 7 arithmetic
//     operations: 5 fused subtract-square-accumulate steps (one per
//     component), 1 spatial scaling by m^2/S^2, and 1 final add. This
//     convention reproduces Table 2 exactly: PPA performs 9 distance
//     evaluations per pixel (9*7*N ≈ 130M OPs/iteration at 1080p) and CPA
//     on average 4 (a pixel lies in 4 overlapping 2Sx2S windows;
//     4*7*N ≈ 58M OPs/iteration).
//   * Minimum-search compares and sigma-accumulation adds are counted in
//     separate fields; the Table-2 "Operation count" row is distance ops
//     only (the paper's 2.25x = 9/4 ratio is exact only for distance ops).
//
// DRAM traffic (bytes), software-prototype convention (floating-point
// buffers, as profiled on the CPU in the paper's Section 4.2):
//   * Lab pixel: 12 B (3 floats). Label: 4 B. Min-distance entry: 4 B.
//     Static 9-nearest-center tile record: 18 B (9 u16 ids).
//   * PPA per iteration: each visited pixel reads Lab (12) + its candidate
//     record (18) + label (4), writes label (4), and reads+writes the
//     running min-distance entry (8) => 46 B per visited pixel.
//   * CPA per iteration: each center streams its 2Sx2S window; a pixel is
//     covered by ~4 windows; each visit reads Lab (12) + min-distance (4)
//     and writes back min-distance (4) + label (4) unconditionally (the
//     streaming-writeback convention: a DRAM-backed buffer line is written
//     whether or not the value improved) => ~96 B per pixel, plus the
//     center-update sigma pass (Lab + label reads, 16 B/px) and the
//     distance-buffer reset.
// The conventions are deliberately explicit so the Table-2 bench can print
// measured traffic next to the paper's 100/318 MB per iteration; the
// measured CPA value (~250 MB) undercuts the paper's 318 MB — the paper
// profiled real cache-miss traffic, which overfetches — but the ordering
// and the "several-fold more than PPA" conclusion reproduce.
#pragma once

#include <cstdint>

namespace sslic {

/// Arithmetic-operation counters.
struct OpCounts {
  std::uint64_t distance_evals = 0;  ///< 5-D distance evaluations (Eq. 5)
  std::uint64_t compare_ops = 0;     ///< minimum-search comparisons
  std::uint64_t accumulate_ops = 0;  ///< sigma-register additions
  std::uint64_t divide_ops = 0;      ///< center-update divisions

  /// Ops per distance evaluation under the documented convention.
  static constexpr std::uint64_t kOpsPerDistance = 7;

  /// Distance-only operation count (the paper's Table-2 row).
  [[nodiscard]] std::uint64_t distance_ops() const {
    return distance_evals * kOpsPerDistance;
  }

  /// All counted arithmetic operations.
  [[nodiscard]] std::uint64_t total_ops() const {
    return distance_ops() + compare_ops + accumulate_ops + divide_ops;
  }

  OpCounts& operator+=(const OpCounts& other) {
    distance_evals += other.distance_evals;
    compare_ops += other.compare_ops;
    accumulate_ops += other.accumulate_ops;
    divide_ops += other.divide_ops;
    return *this;
  }
};

/// DRAM traffic counters in bytes, by stream.
struct MemTraffic {
  std::uint64_t image_read = 0;       ///< Lab pixel data
  std::uint64_t label_read = 0;
  std::uint64_t label_write = 0;
  std::uint64_t distance_read = 0;    ///< min-distance buffer
  std::uint64_t distance_write = 0;
  std::uint64_t candidate_read = 0;   ///< static 9-nearest-center records
  std::uint64_t center_read = 0;      ///< cluster center fetch
  std::uint64_t center_write = 0;     ///< cluster center write-back

  [[nodiscard]] std::uint64_t total() const {
    return image_read + label_read + label_write + distance_read +
           distance_write + candidate_read + center_read + center_write;
  }

  MemTraffic& operator+=(const MemTraffic& other) {
    image_read += other.image_read;
    label_read += other.label_read;
    label_write += other.label_write;
    distance_read += other.distance_read;
    distance_write += other.distance_write;
    candidate_read += other.candidate_read;
    center_read += other.center_read;
    center_write += other.center_write;
    return *this;
  }

  /// Buffer-entry sizes of the software-prototype convention (see header
  /// comment).
  static constexpr std::uint64_t kLabBytes = 12;
  static constexpr std::uint64_t kLabelBytes = 4;
  static constexpr std::uint64_t kDistanceBytes = 4;
  static constexpr std::uint64_t kCandidateBytes = 18;
  static constexpr std::uint64_t kCenterBytes = 20;  // 5 floats
};

/// Combined instrumentation record a segmenter fills per run.
struct Instrumentation {
  OpCounts ops;
  MemTraffic traffic;
  std::uint64_t iterations = 0;
  std::uint64_t tiles_skipped = 0;  ///< preemptive extension: tiles skipped
  /// True when the run used the fused single-pass iteration loop. Fused
  /// measured-software accounting drops the old update pass's redundant
  /// image_read/label_read (the data is already resident from assignment);
  /// every other counter is identical to the two-pass accounting. The
  /// paper-model tables (Table 1/2, abstract claims) pin fusion off so
  /// their analytic numbers keep the paper's unfused convention.
  bool fused = false;

  /// Per-iteration averages (0 when no iteration ran).
  [[nodiscard]] double distance_ops_per_iteration() const {
    return iterations == 0
               ? 0.0
               : static_cast<double>(ops.distance_ops()) /
                     static_cast<double>(iterations);
  }
  [[nodiscard]] double traffic_bytes_per_iteration() const {
    return iterations == 0 ? 0.0
                           : static_cast<double>(traffic.total()) /
                                 static_cast<double>(iterations);
  }
};

}  // namespace sslic

// Connectivity enforcement (paper Section 2): after convergence "a final
// step is performed to enforce the connectivity, ensuring that any stray
// pixels that may still be disjoint are assigned to the closest large SP".
//
// This is Achanta et al.'s post-pass: relabel 4-connected components in
// scan order; components smaller than a quarter of the mean superpixel size
// are absorbed into the previously-labelled adjacent component.
#pragma once

#include "image/image.h"

namespace sslic {

struct ConnectivityResult {
  int final_label_count = 0;    ///< labels after relabelling (0..count-1)
  int components_merged = 0;    ///< stray fragments absorbed
  std::size_t pixels_moved = 0; ///< pixels whose label changed by merging
};

/// Enforces 4-connectivity in place. `expected_superpixels` sets the
/// minimum-fragment threshold to (N / expected_superpixels) / 4, matching
/// the reference SLIC implementation. Output labels are compact (0..n-1).
ConnectivityResult enforce_connectivity(LabelImage& labels,
                                        int expected_superpixels);

/// True when every label forms a single 4-connected component.
bool is_fully_connected(const LabelImage& labels);

}  // namespace sslic

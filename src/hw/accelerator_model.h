// Full-accelerator performance / power / energy / area model (paper
// Sections 4.3, 6.3, 7; Tables 3-5; Fig. 6).
//
// The model costs the exact FSM schedule of the golden datapath model
// (slic/hw_datapath.h): color conversion streams the frame once through the
// LUT unit; each cluster-update iteration streams tiles into the scratch
// pads (load, process, store — single-buffered, which is why buffer size
// matters), and the center update unit divides the sigma registers out
// after every iteration.
//
// Power follows the paper's stated methodology (Section 6.3): compute units
// are charged peak active power times their utilization; the scratch pads
// and the external-memory interface are assumed at full utilization.
#pragma once

#include "hw/area_model.h"
#include "hw/cluster_unit.h"
#include "hw/dram_model.h"
#include "hw/energy_model.h"

namespace sslic::hw {

/// One complete accelerator design point.
struct AcceleratorDesign {
  int width = 1920;
  int height = 1080;
  int num_superpixels = 5000;   ///< K
  double subsample_ratio = 0.5; ///< S-SLIC pixel subsampling
  int full_sweeps = 9;          ///< full-image-equivalent cluster iterations
  ClusterUnitConfig cluster = ClusterUnitConfig::way_996();
  double channel_buffer_bytes = 4096.0;  ///< per channel; 4 pads total
  int num_cores = 1;            ///< parallel cluster pipelines
  double clock_hz = 1.6e9;
  /// Supply voltage. The 16 nm design point is 0.72 V (paper Section 5);
  /// dynamic energy scales with (V/0.72)^2 and leakage ~linearly — the
  /// "ultimately reducing the clock rate" DVFS scaling of Section 6.3.
  double voltage_v = 0.72;

  // Micro-architecture constants (calibrated; see EXPERIMENTS.md).
  int divider_steps_per_division = 16;  ///< iterative divider latency
  int divisions_per_center = 5;         ///< L, a, b, x, y
  int sigma_transfer_cycles_per_tile = 52;  ///< spill/load sigma registers
  int center_load_cycles_per_tile = 18;     ///< load 9 center registers
  double conv_energy_per_pixel_pj = 2.0;    ///< LUT color conversion unit
};

/// Model output for one frame.
struct FrameReport {
  // --- Structure. ---
  int grid_nx = 0;
  int grid_ny = 0;
  std::uint64_t num_centers = 0;
  std::uint64_t subset_iterations = 0;

  // --- Time (seconds). ---
  double color_conversion_s = 0.0;   ///< streaming: max(compute, memory)
  double cluster_compute_s = 0.0;    ///< pixel pipeline + tile overheads
  double center_update_s = 0.0;      ///< divider time (all iterations)
  double cluster_memory_s = 0.0;     ///< tile load/store DRAM time
  double total_s = 0.0;
  double fps = 0.0;

  // --- DRAM traffic (bytes per frame, accelerator 8-bit convention). ---
  double dram_bytes = 0.0;

  // --- Energy (joules per frame). ---
  double cluster_energy_j = 0.0;
  double conv_energy_j = 0.0;
  double center_energy_j = 0.0;
  double sram_energy_j = 0.0;   ///< full-utilization assumption
  double phy_energy_j = 0.0;    ///< full-utilization assumption
  double clock_energy_j = 0.0;
  double leakage_energy_j = 0.0;
  double energy_per_frame_j = 0.0;
  /// DRAM device energy (the paper's 2500x model) — reported separately,
  /// not charged to accelerator power (it is off-chip).
  double dram_device_energy_j = 0.0;

  // --- Derived. ---
  double average_power_w = 0.0;
  double area_mm2 = 0.0;
  double fps_per_mm2 = 0.0;
  /// On-chip storage (4 scratch pads + LUTs + registers), bytes.
  double onchip_storage_bytes = 0.0;
  /// Fraction of total time spent on cluster-update memory access.
  double memory_time_fraction = 0.0;

  [[nodiscard]] bool real_time() const { return fps >= 30.0; }
};

/// Evaluates a design point analytically.
class AcceleratorModel {
 public:
  explicit AcceleratorModel(AcceleratorDesign design,
                            const EnergyModel& energy = default_energy_model(),
                            const AreaModel& area = default_area_model(),
                            const DramModel& dram = default_dram_model());

  [[nodiscard]] FrameReport evaluate() const;

  [[nodiscard]] const AcceleratorDesign& design() const { return design_; }

  /// Total silicon area of the design, mm^2.
  [[nodiscard]] double area_mm2() const;

 private:
  AcceleratorDesign design_;
  EnergyModel energy_;
  AreaModel area_model_;
  DramModel dram_;
};

}  // namespace sslic::hw

// Reproduces paper Table 4: performance summary of the best S-SLIC
// accelerator configurations at 1920x1080, 1280x768, and 640x480, all with
// K = 5000 superpixels.
#include <iostream>

#include "bench_common.h"
#include "hw/dse.h"

int main(int argc, char** argv) {
  using namespace sslic;
  using namespace sslic::hw;
  bench::BenchConfig config = bench::BenchConfig::parse(argc, argv);
  config.superpixels = 5000;
  bench::banner("Table 4 — best S-SLIC configurations per resolution (model)",
                config);

  struct PaperRow {
    const char* resolution;
    DesignSpaceExplorer::Resolution res;
    double area, power_mw, latency_ms, fps, energy_mj, fps_mm2;
    const char* buffer;
  };
  const PaperRow rows[] = {
      {"1920x1080", {1920, 1080, 4096}, 0.066, 49, 32.8, 30.5, 1.60, 461, "4kB"},
      {"1280x768", {1280, 768, 1024}, 0.053, 46, 25.4, 39.0, 1.17, 747, "1kB"},
      {"640x480", {640, 480, 1024}, 0.053, 50, 19.7, 50.3, 0.98, 963, "1kB"},
  };

  AcceleratorDesign base;
  base.num_superpixels = config.superpixels;
  const DesignSpaceExplorer dse(base);

  Table table("Accelerator summary (measured model vs paper)");
  table.set_header({"resolution", "buffer", "cores", "area mm2", "(paper)",
                    "power mW", "(paper)", "latency ms", "(paper)", "fps",
                    "(paper)", "energy mJ", "(paper)", "fps/mm2", "(paper)"});
  for (const auto& row : rows) {
    const auto points = dse.sweep_resolutions({row.res});
    const FrameReport& r = points.front().report;
    table.add_row({row.resolution, row.buffer, "1", Table::num(r.area_mm2, 3),
                   Table::num(row.area, 3),
                   Table::num(r.average_power_w * 1e3, 0),
                   Table::num(row.power_mw, 0), Table::num(r.total_s * 1e3, 1),
                   Table::num(row.latency_ms, 1), Table::num(r.fps, 1),
                   Table::num(row.fps, 1),
                   Table::num(r.energy_per_frame_j * 1e3, 2),
                   Table::num(row.energy_mj, 2), Table::num(r.fps_per_mm2, 0),
                   Table::num(row.fps_mm2, 0)});
  }
  table.add_note("K = 5000 superpixels at every resolution (paper Table 4).");
  table.add_note("model runs faster than the paper at the lower resolutions "
                 "(the paper's K-dependent overheads are larger than our "
                 "calibrated ones); trends — higher fps, lower energy, "
                 "higher fps/mm2 at lower resolution — reproduce. See "
                 "EXPERIMENTS.md.");
  std::cout << table;

  // Extension: multi-core scaling at HD (paper mentions graceful scaling).
  Table cores("Extension: multi-core scaling at 1920x1080 (model only)");
  cores.set_header({"cores", "latency ms", "fps", "area mm2", "power mW",
                    "energy mJ", "bottleneck"});
  for (const auto& p : dse.sweep_cores({1, 2, 4, 8})) {
    const FrameReport& r = p.report;
    const bool mem_bound = r.cluster_memory_s >
                           r.cluster_compute_s + r.center_update_s;
    cores.add_row({std::to_string(p.design.num_cores),
                   Table::num(r.total_s * 1e3, 1), Table::num(r.fps, 1),
                   Table::num(r.area_mm2, 3),
                   Table::num(r.average_power_w * 1e3, 0),
                   Table::num(r.energy_per_frame_j * 1e3, 2),
                   mem_bound ? "memory" : "compute"});
  }
  cores.add_note("cores share one DRAM interface: scaling saturates once "
                 "memory-bound — the Section 4.2 energy argument in action.");
  std::cout << '\n' << cores;

  // Extension: DVFS scaling at VGA ("the accelerator can scale gracefully
  // down to lower resolution streams by reducing the buffer sizes and
  // ultimately reducing the clock rate", Section 6.3).
  Table dvfs("Extension: clock/voltage scaling at 640x480 (model only)");
  dvfs.set_header({"clock GHz", "voltage V", "latency ms", "fps", "real-time",
                   "power mW", "energy mJ"});
  struct DvfsPoint {
    double clock_hz;
    double voltage;
  };
  for (const DvfsPoint point : {DvfsPoint{1.6e9, 0.72}, DvfsPoint{1.0e9, 0.62},
                                DvfsPoint{0.64e9, 0.55}, DvfsPoint{0.4e9, 0.50}}) {
    AcceleratorDesign d = base;
    d.width = 640;
    d.height = 480;
    d.channel_buffer_bytes = 1024;
    d.clock_hz = point.clock_hz;
    d.voltage_v = point.voltage;
    const FrameReport r = AcceleratorModel(d).evaluate();
    dvfs.add_row({Table::num(point.clock_hz / 1e9, 2),
                  Table::num(point.voltage, 2), Table::num(r.total_s * 1e3, 1),
                  Table::num(r.fps, 1), r.real_time() ? "yes" : "no",
                  Table::num(r.average_power_w * 1e3, 1),
                  Table::num(r.energy_per_frame_j * 1e3, 2)});
  }
  dvfs.add_note("lower clock alone saves little energy (work is constant); "
                "the win is the voltage reduction it enables (~V^2).");
  std::cout << '\n' << dvfs;
  return 0;
}

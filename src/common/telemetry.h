// Unified telemetry layer: a thread-safe registry of named counters, gauges,
// and fixed-bucket histograms with percentile queries, drained through one
// TelemetrySink interface.
//
// Naming convention (DESIGN.md §4d): `sslic.<unit>.<metric>`, e.g.
// `sslic.cpa.ops.distance_evals`, `sslic.pool.worker.3.busy_ms`,
// `sslic.video.frame_ms`. Units are the pipeline stages of the paper's
// Table 1 plus the runtime itself (pool, video, trace).
//
// Concurrency: all metric mutation is lock-free (relaxed atomics — the
// counters are statistics, not synchronization); registry lookup takes a
// mutex but returns stable references, so hot paths resolve their metric
// once and then mutate without locking. Reads (percentiles, flush) are safe
// concurrent with writes and see a near-point-in-time snapshot.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace sslic {

class PhaseTimer;
class ThreadPool;

namespace telemetry {

/// Monotonically increasing integer metric.
class Counter {
 public:
  void add(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  /// Overwrites the value — for re-publishing externally accumulated totals
  /// (e.g. an Instrumentation record) into the registry.
  void set(std::uint64_t value) {
    value_.store(value, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-value-wins floating-point metric.
class Gauge {
 public:
  void set(double value) { value_.store(value, std::memory_order_relaxed); }
  void add(double delta) {
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Geometric bucket upper bounds: `count` buckets spanning [lo, hi].
[[nodiscard]] std::vector<double> exponential_buckets(double lo, double hi,
                                                      int count);

/// Linear bucket upper bounds: lo, lo+step, ..., lo+(count-1)*step.
[[nodiscard]] std::vector<double> linear_buckets(double lo, double step,
                                                 int count);

/// Default latency layout: 10 µs .. ~10 s, ~11% resolution per bucket.
[[nodiscard]] const std::vector<double>& default_latency_buckets_ms();

/// Fixed-bucket histogram with interpolated percentile queries. Bucket
/// boundaries are upper bounds (strictly increasing); values above the last
/// bound land in an implicit overflow bucket clamped by the observed max.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void record(double value);

  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const;
  [[nodiscard]] double mean() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

  /// Interpolated percentile, p in [0, 100]. Exact to within one bucket
  /// width (clamped to the observed min/max). Returns 0 when empty.
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] double p50() const { return percentile(50.0); }
  [[nodiscard]] double p95() const { return percentile(95.0); }
  [[nodiscard]] double p99() const { return percentile(99.0); }

  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  // bounds_+1 slots
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
};

/// One metric's state at flush time.
struct MetricSample {
  enum class Kind { kCounter, kGauge, kHistogram };
  std::string name;
  Kind kind = Kind::kCounter;
  double value = 0.0;  ///< counter/gauge value; histogram mean
  // Histogram-only fields:
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Consumer of metric snapshots — the one seam every exporter goes through.
class TelemetrySink {
 public:
  virtual ~TelemetrySink() = default;
  virtual void write(const MetricSample& sample) = 0;
};

/// Sink that emits one SSLIC_INFO line per metric.
class LogSink : public TelemetrySink {
 public:
  void write(const MetricSample& sample) override;
};

/// Sink that accumulates a JSON object `{"name": {...}, ...}`; call text()
/// after the flush.
class JsonSink : public TelemetrySink {
 public:
  void write(const MetricSample& sample) override;
  [[nodiscard]] std::string text() const;

 private:
  std::string body_;
};

/// Sink that accumulates Prometheus text exposition format (version 0.0.4):
/// counters and gauges as-is, histograms as summaries with quantile labels
/// plus `_sum`/`_count`. Metric names are sanitized to the Prometheus
/// charset (`sslic.video.frame_ms` -> `sslic_video_frame_ms`). Suitable for
/// the node-exporter textfile collector or any scrape-format consumer.
class PrometheusSink : public TelemetrySink {
 public:
  void write(const MetricSample& sample) override;
  [[nodiscard]] const std::string& text() const { return body_; }

 private:
  std::string body_;
};

/// Thread-safe registry of named metrics. Lookups are amortized once per
/// call site; the returned references stay valid until clear().
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `bounds` applies only when the histogram is first created.
  Histogram& histogram(const std::string& name,
                       const std::vector<double>& bounds =
                           default_latency_buckets_ms());

  /// Streams every metric through the sink, counters first, then gauges,
  /// then histograms, each group in name order.
  void flush_to(TelemetrySink& sink) const;

  /// The full registry in Prometheus text exposition format (one flush
  /// through a PrometheusSink). Write this to a file per soak snapshot and
  /// standard tooling can watch a long-running pipeline.
  [[nodiscard]] std::string export_prometheus() const;

  /// Drops every metric. Invalidates references handed out earlier.
  void clear();

  /// The process-wide registry used by the exporters below.
  static MetricsRegistry& global();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Publishes a PhaseTimer as gauges `sslic.<unit>.phase_ms.<phase>` plus
/// `sslic.<unit>.total_ms`.
void export_phase_timer(const PhaseTimer& timer, const std::string& unit,
                        MetricsRegistry& registry = MetricsRegistry::global());

/// Publishes pool execution stats: `sslic.pool.jobs`, `sslic.pool.threads`,
/// and per worker `sslic.pool.worker.<i>.{chunks,jobs,busy_ms}` (slot 0 is
/// the caller's participation; see ThreadPool::stats()).
void export_thread_pool(const ThreadPool& pool,
                        MetricsRegistry& registry = MetricsRegistry::global());

/// Publishes the process heap-allocation total from common/alloc_counter.h
/// as `sslic.alloc.total` — nonzero only in binaries that install the
/// counting allocator (video_pipeline, test_fused). Makes the PR-4
/// zero-allocation guarantee visible in `--metrics` output and the soak
/// JSONL, not only in the video_pipeline report.
void export_allocations(MetricsRegistry& registry = MetricsRegistry::global());

}  // namespace telemetry
}  // namespace sslic

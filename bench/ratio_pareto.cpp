// Extension experiment: the quality/energy Pareto of the subsampling ratio.
//
// The paper evaluates ratios 1, 0.5, and 0.25 for quality (Fig. 2) and
// builds the accelerator at 0.5. This bench joins the two halves of the
// repository: for each ratio it measures segmentation quality on the CPU
// (at a fixed full-sweep budget) AND evaluates the accelerator model's
// frame energy/latency for the same configuration — the trade-off a
// designer would actually sweep.
#include <iostream>

#include "bench_common.h"
#include "hw/accelerator_model.h"
#include "slic/subsampled.h"

int main(int argc, char** argv) {
  using namespace sslic;
  bench::BenchConfig config = bench::BenchConfig::parse(argc, argv);
  bench::banner("Extension — subsample-ratio quality/energy Pareto", config);

  const SyntheticCorpus corpus(config.dataset_params(), config.images,
                               config.seed);

  Table table("Quality (CPU corpus) vs accelerator cost (model, 1080p K=5000)");
  table.set_header({"ratio", "USE", "recall", "ASA", "latency ms", "fps",
                    "real-time", "energy mJ", "power mW"});
  for (const double ratio : {1.0, 0.5, 0.25, 0.125}) {
    bench::Quality quality;
    for (int i = 0; i < corpus.size(); ++i) {
      const GroundTruthImage gt = corpus.generate(i);
      SlicParams params = config.slic_params();
      params.subsample_ratio = ratio;
      params.max_iterations = static_cast<int>(config.iterations / ratio);
      const Segmentation seg = PpaSlic(params).segment(gt.image);
      quality += bench::measure_quality(seg.labels, gt.truth);
    }
    quality /= config.images;

    hw::AcceleratorDesign design;  // 1080p, K=5000, 9 sweeps
    design.subsample_ratio = ratio;
    const hw::FrameReport r = hw::AcceleratorModel(design).evaluate();

    table.add_row({Table::num(ratio, 3), Table::num(quality.use, 4),
                   Table::num(quality.recall, 4), Table::num(quality.asa, 4),
                   Table::num(r.total_s * 1e3, 1), Table::num(r.fps, 1),
                   r.real_time() ? "yes" : "no",
                   Table::num(r.energy_per_frame_j * 1e3, 2),
                   Table::num(r.average_power_w * 1e3, 0)});
  }
  table.add_note("quality at matched full-sweep budget; accelerator cost at "
                 "matched sweep count (finer ratios need more subset "
                 "iterations, raising per-frame overheads).");
  table.add_note("reproduction finding: at *matched sweeps* the model favors "
                 "full sampling — the index stream and per-iteration "
                 "overheads do not shrink with the subset. S-SLIC's real "
                 "advantage is convergence: it needs fewer sweeps for equal "
                 "quality (Fig. 2), shown below.");
  std::cout << table;

  // Quality-parity operating points: Fig. 2 measures S-SLIC reaching SLIC's
  // converged quality in substantially less work; running fewer sweeps is
  // how the accelerator banks it.
  Table parity("Same design points at quality-parity sweep budgets (model)");
  parity.set_header({"configuration", "sweeps", "latency ms", "fps",
                     "real-time", "energy mJ"});
  struct Point {
    const char* name;
    double ratio;
    int sweeps;
  };
  for (const Point point : {Point{"full sampling (reference)", 1.0, 9},
                            Point{"S-SLIC(0.5), parity sweeps", 0.5, 6},
                            Point{"S-SLIC(0.25), parity sweeps", 0.25, 4}}) {
    hw::AcceleratorDesign design;
    design.subsample_ratio = point.ratio;
    design.full_sweeps = point.sweeps;
    const hw::FrameReport r = hw::AcceleratorModel(design).evaluate();
    parity.add_row({point.name, std::to_string(point.sweeps),
                    Table::num(r.total_s * 1e3, 1), Table::num(r.fps, 1),
                    r.real_time() ? "yes" : "no",
                    Table::num(r.energy_per_frame_j * 1e3, 2)});
  }
  parity.add_note("parity budgets from the Fig. 2 bench (S-SLIC reaches "
                  "SLIC's converged USE in 40-70% less work on this corpus; "
                  "6/4 sweeps are conservative).");
  std::cout << '\n' << parity;
  return 0;
}

// Shared infrastructure for the paper-reproduction bench harness.
//
// Every bench binary accepts:
//   --images=N   corpus size for CPU experiments (default kept small enough
//                for a quick full-harness run; raise to the paper's 100-200
//                for publication-grade statistics)
//   --width/--height/--superpixels/--compactness to override the workload.
// Each binary prints the paper's published values next to the measured ones
// so the reproduction can be eyeballed directly.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "common/cli.h"
#include "common/stopwatch.h"
#include "common/table.h"
#include "dataset/synthetic.h"
#include "metrics/segmentation_metrics.h"
#include "slic/segmenter.h"

namespace sslic::bench {

/// Common workload configuration parsed from the command line.
struct BenchConfig {
  int images = 20;           ///< corpus size (paper: 100-200 BSDS images)
  int width = 481;           ///< BSDS image size
  int height = 321;
  int superpixels = 900;     ///< K for the quality experiments (Fig. 2)
  double compactness = 10.0;
  int iterations = 10;
  int annotators = 1;  ///< ground-truth annotations per image (BSDS has ~5)
  std::uint64_t seed = 1000;

  static BenchConfig parse(int argc, const char* const* argv) {
    const CliArgs args(argc, argv);
    BenchConfig config;
    config.images = args.get_int("images", config.images);
    config.width = args.get_int("width", config.width);
    config.height = args.get_int("height", config.height);
    config.superpixels = args.get_int("superpixels", config.superpixels);
    config.compactness = args.get_double("compactness", config.compactness);
    config.iterations = args.get_int("iterations", config.iterations);
    config.annotators = args.get_int("annotators", config.annotators);
    config.seed = static_cast<std::uint64_t>(args.get_int("seed", 1000));
    return config;
  }

  [[nodiscard]] SyntheticParams dataset_params() const {
    SyntheticParams p;
    p.width = width;
    p.height = height;
    return p;
  }

  [[nodiscard]] SlicParams slic_params() const {
    SlicParams p;
    p.num_superpixels = superpixels;
    p.compactness = compactness;
    p.max_iterations = iterations;
    return p;
  }
};

/// Prints the standard bench banner.
inline void banner(const std::string& title, const BenchConfig& config) {
  std::cout << "==================================================================\n"
            << title << '\n'
            << "workload: " << config.images << " synthetic Berkeley-like images, "
            << config.width << 'x' << config.height << ", K=" << config.superpixels
            << ", m=" << config.compactness << '\n'
            << "(see DESIGN.md §1 for the BSDS substitution; --images=N to scale)\n"
            << "==================================================================\n";
}

/// Quality metrics of one segmentation against ground truth.
struct Quality {
  double use = 0.0;       ///< Achanta undersegmentation error
  double use_min = 0.0;   ///< Neubert min-variant
  double recall = 0.0;    ///< boundary recall, tolerance 2
  double asa = 0.0;

  Quality& operator+=(const Quality& other) {
    use += other.use;
    use_min += other.use_min;
    recall += other.recall;
    asa += other.asa;
    return *this;
  }
  Quality& operator/=(double n) {
    use /= n;
    use_min /= n;
    recall /= n;
    asa /= n;
    return *this;
  }
};

inline Quality measure_quality(const LabelImage& labels, const LabelImage& truth) {
  const OverlapTable table(labels, truth);
  Quality q;
  q.use = undersegmentation_error(table);
  q.use_min = undersegmentation_error_min(table);
  q.recall = boundary_recall(labels, truth, 2);
  q.asa = achievable_segmentation_accuracy(table);
  return q;
}

/// Quality averaged over several annotators (the BSDS protocol).
inline Quality measure_quality(const LabelImage& labels,
                               const std::vector<LabelImage>& truths) {
  const MultiGroundTruthQuality m = evaluate_against_annotators(labels, truths, 2);
  Quality q;
  q.use = m.use_mean;
  q.use_min = m.use_min_mean;
  q.recall = m.recall_mean;
  q.asa = m.asa_mean;
  return q;
}

/// One point of a quality-versus-time curve (Fig. 2 axes).
struct CurvePoint {
  double time_ms = 0.0;  ///< cumulative iteration wall time (mean per image)
  Quality quality;
  std::size_t pixels_visited = 0;  ///< cumulative, mean per image
};

}  // namespace sslic::bench

// Shared template implementation of the assignment kernels, instantiated
// once per ISA backend (assign_kernels_{scalar,sse2,avx2,neon}.cpp). One
// algorithm definition for every backend guarantees the operation sequence
// — and therefore the bit pattern of every result — cannot drift between
// the scalar reference and the vector paths.
//
// A backend `B` provides:
//   kLanesF64 / kLanesI32   lane counts of the f64 / i32 paths
//   VD / VL / MD            f64 vector, label (i32) vector with kLanesF64
//                           lanes, f64 comparison mask
//   VI / MI                 i32 vector with kLanesI32 lanes and its mask
//   f64 path: load_f32 (widen kLanesF64 floats to doubles), loadu_f64,
//     storeu_f64, set1_f64, iota_f64(base) = {base, base+1, ...},
//     add/sub/mul, cmplt_f64 (strict a < b), select_f64(m, a, b) = m?a:b,
//     loadu_lab/storeu_lab/set1_lab/select_lab on VL,
//     mask_f64_from_bytes (byte != 0 -> lane all-ones)
//   i32 path: load_u8_i32 (widen kLanesI32 bytes), loadu_i32, storeu_i32,
//     set1_i32, iota_i32, add_i32/sub_i32/mul_i32, mulw_shr8 (exact
//     (int64)weight * v >> 8 per lane, low 32 bits kept), sra_i32
//     (arithmetic shift by a uniform runtime count), min_i32, cmplt_i32,
//     select_i32, mask_i32_from_bytes, all_eq_i32 (every lane of a equals
//     the corresponding lane of b).
//
// The distance arithmetic mirrors DistanceCalculator::squared and
// HwSlic::integer_distance term for term:
//   dc2 = ((dl*dl) + (da*da)) + (db*db)
//   ds2 = (dx*dx) + (dy*dy)
//   d   = dc2 + w * ds2              (f64)   /   dc2 + ((w * ds2) >> 8) (i32)
// Plain mul/add only — the per-ISA TUs compile with -ffp-contract=off so
// neither the scalar instantiation nor any fallback code path is fused.
// Vector-width blocks process kLanes pixels; the remainder re-enters the
// same template with the scalar backend, so tails of every length produce
// the same bytes as a full-width lane would.
#pragma once

#include <cstdint>
#include <limits>

#include "slic/assign_kernels.h"

namespace sslic::kernels {

/// The scalar backend: one lane, plain C++ arithmetic. Also the tail
/// handler of every vector backend.
struct ScalarBackend {
  static constexpr int kLanesF64 = 1;
  static constexpr int kLanesI32 = 1;
  using VD = double;
  using VL = std::int32_t;
  using MD = bool;
  using VI = std::int32_t;
  using MI = bool;

  static VD load_f32(const float* p) { return static_cast<double>(*p); }
  static VD loadu_f64(const double* p) { return *p; }
  static void storeu_f64(double* p, VD v) { *p = v; }
  static VD set1_f64(double v) { return v; }
  static VD iota_f64(double base) { return base; }
  static VD add(VD a, VD b) { return a + b; }
  static VD sub(VD a, VD b) { return a - b; }
  static VD mul(VD a, VD b) { return a * b; }
  static MD cmplt_f64(VD a, VD b) { return a < b; }
  static VD select_f64(MD m, VD a, VD b) { return m ? a : b; }
  static VL loadu_lab(const std::int32_t* p) { return *p; }
  static void storeu_lab(std::int32_t* p, VL v) { *p = v; }
  static VL set1_lab(std::int32_t v) { return v; }
  static VL select_lab(MD m, VL a, VL b) { return m ? a : b; }
  static MD mask_f64_from_bytes(const std::uint8_t* p) { return *p != 0; }

  static VI load_u8_i32(const std::uint8_t* p) {
    return static_cast<std::int32_t>(*p);
  }
  static VI loadu_i32(const std::int32_t* p) { return *p; }
  static void storeu_i32(std::int32_t* p, VI v) { *p = v; }
  static VI set1_i32(std::int32_t v) { return v; }
  static VI iota_i32(std::int32_t base) { return base; }
  static VI add_i32(VI a, VI b) { return a + b; }
  static VI sub_i32(VI a, VI b) { return a - b; }
  static VI mul_i32(VI a, VI b) { return a * b; }
  static VI mulw_shr8(VI v, std::int32_t weight) {
    return static_cast<std::int32_t>(
        (static_cast<std::int64_t>(weight) * v) >> 8);
  }
  static VI sra_i32(VI v, int count) { return v >> count; }
  static VI min_i32(VI a, VI b) { return a < b ? a : b; }
  static MI cmplt_i32(VI a, VI b) { return a < b; }
  static VI select_i32(MI m, VI a, VI b) { return m ? a : b; }
  static MI mask_i32_from_bytes(const std::uint8_t* p) { return *p != 0; }
  static bool all_eq_i32(VI a, VI b) { return a == b; }
};

template <typename B>
void assign_center_row_impl(const float* L, const float* a, const float* b,
                            std::int32_t x0, std::int32_t count, double y,
                            const CenterOperand& center, double spatial_weight,
                            double* min_dist, std::int32_t* labels) {
  constexpr std::int32_t kL = B::kLanesF64;
  const auto cl = B::set1_f64(center.L);
  const auto ca = B::set1_f64(center.a);
  const auto cb = B::set1_f64(center.b);
  const auto cx = B::set1_f64(center.x);
  const auto w = B::set1_f64(spatial_weight);
  const auto idx = B::set1_lab(center.index);
  // dy is the same for the whole row; computing it once per row is the
  // identical IEEE operation the scalar code performs per pixel.
  const auto dy = B::sub(B::set1_f64(y), B::set1_f64(center.y));
  const auto dy2 = B::mul(dy, dy);

  std::int32_t i = 0;
  for (; i + kL <= count; i += kL) {
    const auto dl = B::sub(B::load_f32(L + i), cl);
    const auto da = B::sub(B::load_f32(a + i), ca);
    const auto db = B::sub(B::load_f32(b + i), cb);
    const auto dx = B::sub(B::iota_f64(static_cast<double>(x0 + i)), cx);
    const auto dc2 =
        B::add(B::add(B::mul(dl, dl), B::mul(da, da)), B::mul(db, db));
    const auto ds2 = B::add(B::mul(dx, dx), dy2);
    const auto d = B::add(dc2, B::mul(w, ds2));
    const auto cur = B::loadu_f64(min_dist + i);
    const auto m = B::cmplt_f64(d, cur);
    B::storeu_f64(min_dist + i, B::select_f64(m, d, cur));
    const auto lab = B::loadu_lab(labels + i);
    B::storeu_lab(labels + i, B::select_lab(m, idx, lab));
  }
  if constexpr (kL > 1) {
    if (i < count) {
      assign_center_row_impl<ScalarBackend>(L + i, a + i, b + i, x0 + i,
                                            count - i, y, center,
                                            spatial_weight, min_dist + i,
                                            labels + i);
    }
  }
}

template <typename B>
void assign_candidates_row_impl(const float* L, const float* a, const float* b,
                                std::int32_t x0, std::int32_t count, double y,
                                const CenterOperand* cands, std::int32_t ncand,
                                double spatial_weight,
                                const std::uint8_t* active, double* min_dist,
                                std::int32_t* labels) {
  constexpr std::int32_t kL = B::kLanesF64;
  const auto w = B::set1_f64(spatial_weight);
  const auto yv = B::set1_f64(y);
  const auto inf = B::set1_f64(std::numeric_limits<double>::infinity());

  std::int32_t i = 0;
  for (; i + kL <= count; i += kL) {
    const auto pl = B::load_f32(L + i);
    const auto pa = B::load_f32(a + i);
    const auto pb = B::load_f32(b + i);
    const auto xv = B::iota_f64(static_cast<double>(x0 + i));
    auto best = inf;
    auto best_idx = B::set1_lab(cands[0].index);
    for (std::int32_t k = 0; k < ncand; ++k) {
      const CenterOperand& c = cands[k];
      const auto dl = B::sub(pl, B::set1_f64(c.L));
      const auto da = B::sub(pa, B::set1_f64(c.a));
      const auto db = B::sub(pb, B::set1_f64(c.b));
      const auto dx = B::sub(xv, B::set1_f64(c.x));
      const auto dy = B::sub(yv, B::set1_f64(c.y));
      const auto dc2 =
          B::add(B::add(B::mul(dl, dl), B::mul(da, da)), B::mul(db, db));
      const auto ds2 = B::add(B::mul(dx, dx), B::mul(dy, dy));
      const auto d = B::add(dc2, B::mul(w, ds2));
      const auto m = B::cmplt_f64(d, best);
      best = B::select_f64(m, d, best);
      best_idx = B::select_lab(m, B::set1_lab(c.index), best_idx);
    }
    if (active == nullptr) {
      B::storeu_f64(min_dist + i, best);
      B::storeu_lab(labels + i, best_idx);
    } else {
      const auto am = B::mask_f64_from_bytes(active + i);
      B::storeu_f64(min_dist + i,
                    B::select_f64(am, best, B::loadu_f64(min_dist + i)));
      B::storeu_lab(labels + i,
                    B::select_lab(am, best_idx, B::loadu_lab(labels + i)));
    }
  }
  if constexpr (kL > 1) {
    if (i < count) {
      assign_candidates_row_impl<ScalarBackend>(
          L + i, a + i, b + i, x0 + i, count - i, y, cands, ncand,
          spatial_weight, active == nullptr ? nullptr : active + i,
          min_dist + i, labels + i);
    }
  }
}

// Cluster-centric CPA span kernel: identical distance arithmetic and
// candidate order as assign_candidates_row_impl, but the running minimum
// is seeded from the persistent (min_dist, labels) pair and written back
// unconditionally. Seeding from memory instead of infinity reproduces the
// exact strict-< update chain of repeated assign_center_row calls over the
// same ascending candidate list — the seed wins ties, later candidates
// must be strictly smaller — while touching each plane entry once.
template <typename B>
void assign_candidates_row_seeded_impl(const float* L, const float* a,
                                       const float* b, std::int32_t x0,
                                       std::int32_t count, double y,
                                       const CenterOperand* cands,
                                       std::int32_t ncand,
                                       double spatial_weight, double* min_dist,
                                       std::int32_t* labels) {
  constexpr std::int32_t kL = B::kLanesF64;
  const auto w = B::set1_f64(spatial_weight);
  const auto yv = B::set1_f64(y);

  std::int32_t i = 0;
  for (; i + kL <= count; i += kL) {
    const auto pl = B::load_f32(L + i);
    const auto pa = B::load_f32(a + i);
    const auto pb = B::load_f32(b + i);
    const auto xv = B::iota_f64(static_cast<double>(x0 + i));
    auto best = B::loadu_f64(min_dist + i);
    auto best_idx = B::loadu_lab(labels + i);
    for (std::int32_t k = 0; k < ncand; ++k) {
      const CenterOperand& c = cands[k];
      const auto dl = B::sub(pl, B::set1_f64(c.L));
      const auto da = B::sub(pa, B::set1_f64(c.a));
      const auto db = B::sub(pb, B::set1_f64(c.b));
      const auto dx = B::sub(xv, B::set1_f64(c.x));
      const auto dy = B::sub(yv, B::set1_f64(c.y));
      const auto dc2 =
          B::add(B::add(B::mul(dl, dl), B::mul(da, da)), B::mul(db, db));
      const auto ds2 = B::add(B::mul(dx, dx), B::mul(dy, dy));
      const auto d = B::add(dc2, B::mul(w, ds2));
      const auto m = B::cmplt_f64(d, best);
      best = B::select_f64(m, d, best);
      best_idx = B::select_lab(m, B::set1_lab(c.index), best_idx);
    }
    B::storeu_f64(min_dist + i, best);
    B::storeu_lab(labels + i, best_idx);
  }
  if constexpr (kL > 1) {
    if (i < count) {
      assign_candidates_row_seeded_impl<ScalarBackend>(
          L + i, a + i, b + i, x0 + i, count - i, y, cands, ncand,
          spatial_weight, min_dist + i, labels + i);
    }
  }
}

template <typename B>
void assign_candidates_row_u8_impl(
    const std::uint8_t* L, const std::uint8_t* a, const std::uint8_t* b,
    std::int32_t x0, std::int32_t count, std::int32_t y,
    const HwCenterOperand* cands, std::int32_t ncand, std::int32_t weight_q8,
    std::int32_t dist_bits, std::int32_t dist_shift,
    const std::uint8_t* active, std::int32_t* labels) {
  constexpr std::int32_t kL = B::kLanesI32;
  const auto max_quant =
      B::set1_i32(dist_bits != 0 ? (std::int32_t{1} << dist_bits) - 1 : 0);

  std::int32_t i = 0;
  for (; i + kL <= count; i += kL) {
    const auto pl = B::load_u8_i32(L + i);
    const auto pa = B::load_u8_i32(a + i);
    const auto pb = B::load_u8_i32(b + i);
    const auto xv = B::iota_i32(x0 + i);
    auto best = B::set1_i32(std::numeric_limits<std::int32_t>::max());
    auto best_idx = B::set1_i32(cands[0].index);
    for (std::int32_t k = 0; k < ncand; ++k) {
      const HwCenterOperand& c = cands[k];
      const auto dl = B::sub_i32(pl, B::set1_i32(c.L));
      const auto da = B::sub_i32(pa, B::set1_i32(c.a));
      const auto db = B::sub_i32(pb, B::set1_i32(c.b));
      const auto dx = B::sub_i32(xv, B::set1_i32(c.x));
      const std::int32_t dy = y - c.y;
      const auto dc2 = B::add_i32(
          B::add_i32(B::mul_i32(dl, dl), B::mul_i32(da, da)),
          B::mul_i32(db, db));
      const auto ds2 =
          B::add_i32(B::mul_i32(dx, dx), B::set1_i32(dy * dy));
      auto d = B::add_i32(dc2, B::mulw_shr8(ds2, weight_q8));
      if (dist_bits != 0) {
        d = B::min_i32(B::sra_i32(d, dist_shift), max_quant);
      }
      const auto m = B::cmplt_i32(d, best);
      best = B::select_i32(m, d, best);
      best_idx = B::select_i32(m, B::set1_i32(c.index), best_idx);
    }
    if (active == nullptr) {
      B::storeu_i32(labels + i, best_idx);
    } else {
      const auto am = B::mask_i32_from_bytes(active + i);
      B::storeu_i32(labels + i,
                    B::select_i32(am, best_idx, B::loadu_i32(labels + i)));
    }
  }
  if constexpr (kL > 1) {
    if (i < count) {
      assign_candidates_row_u8_impl<ScalarBackend>(
          L + i, a + i, b + i, x0 + i, count - i, y, cands, ncand, weight_q8,
          dist_bits, dist_shift, active == nullptr ? nullptr : active + i,
          labels + i);
    }
  }
}

// Fused-iteration sigma accumulation, bit-equal to the reference per-pixel
// loop (for each pixel, in ascending order: s.L += L; s.a += a; s.b += b;
// s.x += x; s.y += y; s.count += 1). Two reorderings make it fast, neither
// of which can change a single bit:
//
//  1. Run batching. A row is a sequence of label runs (a superpixel is ~S
//     pixels wide), so the row is processed run by run with the sigma's
//     L/a/b fields held in registers for the whole run. The per-FIELD add
//     sequence — the only thing IEEE rounding depends on — is untouched:
//     field chains are independent, so interleaving across fields is free,
//     and `reg = s.L; reg += l_i...; s.L = reg` is the same chain as
//     `s.L += l_i` repeated. (f32 -> f64 widening is exact.)
//  2. Closed forms for the integer fields. x, y and count only ever hold
//     integers (well under 2^53), so every partial sum in the reference
//     loop is exact — the arithmetic-series total for x, y*len, and
//     count+len are the same doubles the per-pixel adds produce.
//
// The summation itself — three dependent double-add chains per run — is
// latency-bound, not throughput-bound, so SIMD widening doesn't pay there.
// What the vector backends do accelerate is finding the run END: the label
// scan compares kLanesI32 labels per step (all_eq_i32 against the splat)
// instead of one, which removes the ~1 cycle/pixel scalar scan from the
// critical path. The scan only locates boundaries — the pixels summed and
// their order are unchanged, so the output stays bit-identical.
template <typename B>
void accumulate_row_impl(const float* L, const float* a, const float* b,
                         std::int32_t x0, std::int32_t count, std::int32_t y,
                         const std::int32_t* labels, Sigma* sigmas) {
  constexpr std::int32_t kL = B::kLanesI32;
  const double yd = static_cast<double>(y);
  std::int32_t i = 0;
  while (i < count) {
    const std::int32_t label = labels[i];
    std::int32_t j = i + 1;
    if constexpr (kL > 1) {
      const auto lv = B::set1_i32(label);
      while (j + kL <= count && B::all_eq_i32(B::loadu_i32(labels + j), lv))
        j += kL;
    }
    while (j < count && labels[j] == label) ++j;
    Sigma& s = sigmas[static_cast<std::size_t>(label)];
    double sl = s.L;
    double sa = s.a;
    double sb = s.b;
    for (std::int32_t k = i; k < j; ++k) {
      sl += static_cast<double>(L[k]);
      sa += static_cast<double>(a[k]);
      sb += static_cast<double>(b[k]);
    }
    s.L = sl;
    s.a = sa;
    s.b = sb;
    const std::int64_t len = j - i;
    const std::int64_t first = x0 + i;
    const std::int64_t last = x0 + j - 1;
    s.x += static_cast<double>((first + last) * len / 2);
    s.y += yd * static_cast<double>(len);
    s.count += static_cast<std::uint64_t>(len);
    i = j;
  }
}

/// Builds one backend's dispatch table from the template instantiations.
template <typename B>
KernelTable make_table() {
  return KernelTable{&assign_center_row_impl<B>, &assign_candidates_row_impl<B>,
                     &assign_candidates_row_seeded_impl<B>,
                     &assign_candidates_row_u8_impl<B>, &accumulate_row_impl<B>};
}

}  // namespace sslic::kernels

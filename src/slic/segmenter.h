// Algorithm-agnostic entry point: the metrics, bench, and example layers
// select a family member by enum and run it through one call.
#pragma once

#include <string>

#include "common/stopwatch.h"
#include "slic/distance.h"
#include "slic/instrumentation.h"
#include "slic/types.h"

namespace sslic {

/// The algorithm family (paper Fig. 1 and Section 4.2).
enum class Algorithm {
  kSlic,      ///< baseline SLIC (CPA, full sampling; Fig. 1a)
  kSslicPpa,  ///< S-SLIC, pixel perspective (Fig. 1b) — the contribution
  kSslicCpa,  ///< S-SLIC, center perspective (Section 3's alternative)
};

/// Human-readable name, e.g. "SLIC", "S-SLIC-PPA (0.5)".
std::string algorithm_name(Algorithm algorithm, double subsample_ratio);

/// Runs the selected algorithm. For kSlic, `params.subsample_ratio` is
/// forced to 1. `data_width` applies to the PPA path only (the bit-width
/// exploration targets the accelerator's datapath).
Segmentation run_segmenter(Algorithm algorithm, const SlicParams& params,
                           const RgbImage& image,
                           DataWidth data_width = DataWidth::float64(),
                           const IterationCallback& callback = {},
                           Instrumentation* instrumentation = nullptr,
                           PhaseTimer* phases = nullptr);

/// Same, starting from a pre-converted Lab image.
Segmentation run_segmenter_lab(Algorithm algorithm, const SlicParams& params,
                               const LabImage& lab,
                               DataWidth data_width = DataWidth::float64(),
                               const IterationCallback& callback = {},
                               Instrumentation* instrumentation = nullptr,
                               PhaseTimer* phases = nullptr);

}  // namespace sslic

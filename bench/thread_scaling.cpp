// Thread-scaling sweep for the multithreaded software path.
//
// Runs the CPA S-SLIC software segmenter on a 1080p synthetic frame at
// thread counts {1, 2, 4, 8, hardware_concurrency} and reports ms/frame
// plus speedup over the serial run. Labels are cross-checked against the
// serial result at every thread count — the determinism contract says they
// must be bit-identical (see DESIGN.md "Parallel execution").
//
// Emits BENCH_thread_scaling.json with the sweep so CI or plotting scripts
// can consume the numbers directly.
//
//   thread_scaling [--frames=5] [--superpixels=2000] [--ratio=0.5]
//                  [--width=1920 --height=1080]
#include <algorithm>
#include <iostream>
#include <set>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "color/color_convert.h"
#include "common/thread_pool.h"
#include "slic/slic_baseline.h"

int main(int argc, char** argv) {
  using namespace sslic;
  const CliArgs args(argc, argv);
  const int frames = args.get_int("frames", 5);
  const int width = args.get_int("width", 1920);
  const int height = args.get_int("height", 1080);
  const int superpixels = args.get_int("superpixels", 2000);
  const double ratio = args.get_double("ratio", 0.5);

  const int hw_threads = ThreadPool::default_threads();
  std::set<int> sweep = {1, 2, 4, 8};
  sweep.insert(hw_threads);

  std::cout << "==================================================================\n"
            << "Thread scaling — CPA S-SLIC(" << ratio << ") software path\n"
            << "workload: " << width << 'x' << height << ", K=" << superpixels
            << ", " << frames << " timed frames per point (median reported)\n"
            << "machine: " << std::thread::hardware_concurrency()
            << " hardware thread(s)\n"
            << "==================================================================\n";

  SyntheticParams scene;
  scene.width = width;
  scene.height = height;
  const GroundTruthImage gt = generate_synthetic(scene, 4242);
  const LabImage lab = srgb_to_lab(gt.image);

  SlicParams params;
  params.num_superpixels = superpixels;
  params.subsample_ratio = ratio;
  const CpaSlic slic(params);

  struct Point {
    int threads = 0;
    double ms = 0.0;
    double speedup = 1.0;
    bool identical = true;
  };
  std::vector<Point> points;
  LabelImage serial_labels;

  for (const int threads : sweep) {
    ThreadPool::set_global_threads(threads);
    Point point;
    point.threads = ThreadPool::global().threads();

    std::vector<double> samples;
    Segmentation seg;
    for (int f = 0; f < frames; ++f) {
      Stopwatch watch;
      seg = slic.segment_lab(lab);
      samples.push_back(watch.elapsed_ms());
    }
    std::sort(samples.begin(), samples.end());
    point.ms = samples[samples.size() / 2];

    if (threads == 1)
      serial_labels = seg.labels;
    else
      point.identical = seg.labels.pixels() == serial_labels.pixels();
    points.push_back(point);
  }
  ThreadPool::set_global_threads(0);

  const double serial_ms = points.front().ms;
  Table table("1080p frame time vs thread count");
  table.set_header({"threads", "ms/frame", "fps", "speedup", "labels vs serial"});
  for (auto& point : points) {
    point.speedup = serial_ms / point.ms;
    table.add_row({std::to_string(point.threads), Table::num(point.ms, 1),
                   Table::num(1000.0 / point.ms, 1),
                   Table::num(point.speedup, 2) + "x",
                   point.identical ? "identical" : "DIFFER (bug!)"});
  }
  std::cout << table;

  bench::Json sweep_json = bench::Json::array();
  for (const Point& point : points) {
    sweep_json.push(bench::Json::object()
                        .set("threads", point.threads)
                        .set("ms_per_frame", point.ms)
                        .set("fps", 1000.0 / point.ms)
                        .set("speedup_vs_serial", point.speedup)
                        .set("labels_identical_to_serial", point.identical));
  }
  bench::Json::object()
      .set("bench", "thread_scaling")
      .set("workload", bench::Json::object()
                           .set("width", width)
                           .set("height", height)
                           .set("superpixels", superpixels)
                           .set("subsample_ratio", ratio)
                           .set("timed_frames", frames))
      .set("hardware_threads",
           static_cast<int>(std::thread::hardware_concurrency()))
      .set("sweep", std::move(sweep_json))
      .write_file("BENCH_thread_scaling.json");

  const bool all_identical =
      std::all_of(points.begin(), points.end(),
                  [](const Point& p) { return p.identical; });
  std::cout << "determinism: "
            << (all_identical ? "labels bit-identical at every thread count"
                              : "MISMATCH across thread counts")
            << '\n';
  return all_identical ? 0 : 1;
}

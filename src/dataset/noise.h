// Deterministic lattice value noise with octave stacking.
//
// Used by the synthetic dataset generator for boundary warping (curved
// region boundaries), illumination fields, and region texture. Value noise
// (bilinear interpolation of random lattice values) is sufficient here; we
// do not need gradient/Perlin noise's isotropy for these purposes.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace sslic {

/// Single-octave lattice value noise over a wrapped lattice of a given
/// period; evaluated at arbitrary (x, y) with bilinear interpolation and
/// smoothstep easing. Output is in [-1, 1].
class ValueNoise {
 public:
  /// `period` is the lattice size (wraps), `cell` the pixel size of one
  /// lattice cell.
  ValueNoise(Rng& rng, int period, double cell);

  [[nodiscard]] double sample(double x, double y) const;

 private:
  int period_;
  double inv_cell_;
  std::vector<double> lattice_;  // period_^2 values in [-1, 1]
};

/// Multi-octave fractal value noise: sum of `octaves` ValueNoise layers,
/// each with half the cell size and `gain` times the amplitude of the
/// previous. Output normalized to [-1, 1].
class FractalNoise {
 public:
  FractalNoise(Rng& rng, int octaves, double base_cell, double gain = 0.5);

  [[nodiscard]] double sample(double x, double y) const;

 private:
  std::vector<ValueNoise> layers_;
  std::vector<double> amplitude_;
  double norm_ = 1.0;
};

}  // namespace sslic

#include "color/color_convert.h"

#include <algorithm>
#include <cmath>

#include "common/perf_counters.h"
#include "common/thread_pool.h"
#include "common/trace.h"

namespace sslic {

double srgb_inverse_gamma(double encoded) {
  if (encoded <= 0.04045) return encoded / 12.92;
  return std::pow((encoded + 0.055) / 1.055, 2.4);
}

double lab_f(double t) {
  if (t > kLabEpsilon) return std::cbrt(t);
  return (kLabKappa * t + 16.0) / 116.0;
}

namespace {

// Inverse gamma is a pure function of the 8-bit channel value; tabulating
// it is exact (not an approximation) and removes the pow() hotspot from
// the conversion phase.
const std::array<double, 256>& gamma_table() {
  static const std::array<double, 256> table = [] {
    std::array<double, 256> t{};
    for (int v = 0; v < 256; ++v)
      t[static_cast<std::size_t>(v)] = srgb_inverse_gamma(v / 255.0);
    return t;
  }();
  return table;
}

}  // namespace

LabF srgb_to_lab(Rgb8 rgb) {
  const double r = gamma_table()[rgb.r];
  const double g = gamma_table()[rgb.g];
  const double b = gamma_table()[rgb.b];

  const double x = kSrgbToXyz[0] * r + kSrgbToXyz[1] * g + kSrgbToXyz[2] * b;
  const double y = kSrgbToXyz[3] * r + kSrgbToXyz[4] * g + kSrgbToXyz[5] * b;
  const double z = kSrgbToXyz[6] * r + kSrgbToXyz[7] * g + kSrgbToXyz[8] * b;

  const double fx = lab_f(x / kReferenceWhite[0]);
  const double fy = lab_f(y / kReferenceWhite[1]);
  const double fz = lab_f(z / kReferenceWhite[2]);

  LabF lab;
  lab.L = static_cast<float>(116.0 * fy - 16.0);
  lab.a = static_cast<float>(500.0 * (fx - fy));
  lab.b = static_cast<float>(200.0 * (fy - fz));
  return lab;
}

LabImage srgb_to_lab(const RgbImage& image) {
  LabImage lab;
  srgb_to_lab(image, lab);
  return lab;
}

void srgb_to_lab(const RgbImage& image, LabImage& lab) {
  SSLIC_TRACE_SCOPE("color.srgb_to_lab");
  SSLIC_PERF_SCOPE("color.srgb_to_lab");
  if (lab.width() != image.width() || lab.height() != image.height())
    lab = LabImage(image.width(), image.height());
  // Pure per-pixel map: identical output for any range partition.
  parallel_for(0, static_cast<std::int64_t>(image.size()),
               [&](std::int64_t lo, std::int64_t hi) {
                 SSLIC_TRACE_SCOPE_AT(1, "color.srgb_to_lab.chunk", lo);
                 for (std::int64_t i = lo; i < hi; ++i) {
                   const auto idx = static_cast<std::size_t>(i);
                   lab.pixels()[idx] = srgb_to_lab(image.pixels()[idx]);
                 }
               });
}

namespace {

double lab_f_inverse(double f) {
  const double f3 = f * f * f;
  if (f3 > kLabEpsilon) return f3;
  return (116.0 * f - 16.0) / kLabKappa;
}

double srgb_forward_gamma(double linear) {
  if (linear <= 0.0031308) return 12.92 * linear;
  return 1.055 * std::pow(linear, 1.0 / 2.4) - 0.055;
}

std::uint8_t to_byte(double channel) {
  const double clamped = std::clamp(channel, 0.0, 1.0);
  return static_cast<std::uint8_t>(std::lround(clamped * 255.0));
}

}  // namespace

Rgb8 lab_to_srgb(const LabF& lab) {
  const double fy = (static_cast<double>(lab.L) + 16.0) / 116.0;
  const double fx = fy + static_cast<double>(lab.a) / 500.0;
  const double fz = fy - static_cast<double>(lab.b) / 200.0;

  const double x = kReferenceWhite[0] * lab_f_inverse(fx);
  const double y = kReferenceWhite[1] * lab_f_inverse(fy);
  const double z = kReferenceWhite[2] * lab_f_inverse(fz);

  // Inverse of kSrgbToXyz (sRGB D65).
  const double r = 3.2404542 * x - 1.5371385 * y - 0.4985314 * z;
  const double g = -0.9692660 * x + 1.8760108 * y + 0.0415560 * z;
  const double b = 0.0556434 * x - 0.2040259 * y + 1.0572252 * z;

  return {to_byte(srgb_forward_gamma(r)), to_byte(srgb_forward_gamma(g)),
          to_byte(srgb_forward_gamma(b))};
}

}  // namespace sslic

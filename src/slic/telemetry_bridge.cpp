#include "slic/telemetry_bridge.h"

namespace sslic::telemetry {

void export_instrumentation(const Instrumentation& instr,
                            const std::string& unit,
                            MetricsRegistry& registry) {
  const std::string prefix = "sslic." + unit;
  registry.counter(prefix + ".ops.distance_evals").set(instr.ops.distance_evals);
  registry.counter(prefix + ".ops.distance_ops").set(instr.ops.distance_ops());
  registry.counter(prefix + ".ops.compare").set(instr.ops.compare_ops);
  registry.counter(prefix + ".ops.accumulate").set(instr.ops.accumulate_ops);
  registry.counter(prefix + ".ops.divide").set(instr.ops.divide_ops);
  registry.counter(prefix + ".ops.total").set(instr.ops.total_ops());

  registry.counter(prefix + ".traffic.image_read").set(instr.traffic.image_read);
  registry.counter(prefix + ".traffic.label_read").set(instr.traffic.label_read);
  registry.counter(prefix + ".traffic.label_write").set(instr.traffic.label_write);
  registry.counter(prefix + ".traffic.distance_read")
      .set(instr.traffic.distance_read);
  registry.counter(prefix + ".traffic.distance_write")
      .set(instr.traffic.distance_write);
  registry.counter(prefix + ".traffic.candidate_read")
      .set(instr.traffic.candidate_read);
  registry.counter(prefix + ".traffic.center_read").set(instr.traffic.center_read);
  registry.counter(prefix + ".traffic.center_write")
      .set(instr.traffic.center_write);
  registry.counter(prefix + ".traffic.total").set(instr.traffic.total());

  registry.counter(prefix + ".iterations").set(instr.iterations);
  registry.counter(prefix + ".tiles_skipped").set(instr.tiles_skipped);
  registry.counter(prefix + ".fused").set(instr.fused ? 1 : 0);
}

}  // namespace sslic::telemetry

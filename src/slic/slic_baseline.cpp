#include "slic/slic_baseline.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <vector>

#include "common/check.h"
#include "common/perf_counters.h"
#include "common/telemetry.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "image/planar.h"
#include "slic/assign_kernels.h"
#include "slic/assign_strategy.h"
#include "slic/center_update.h"
#include "slic/connectivity.h"
#include "slic/distance.h"
#include "slic/fusion.h"
#include "slic/grid.h"
#include "slic/subset_schedule.h"

namespace sslic {

CpaSlic::CpaSlic(SlicParams params) : params_(params) {
  SSLIC_CHECK(params_.num_superpixels >= 1);
  SSLIC_CHECK(params_.compactness > 0.0);
  SSLIC_CHECK(params_.max_iterations >= 1);
}

Segmentation CpaSlic::segment(const RgbImage& image,
                              const IterationCallback& callback,
                              Instrumentation* instrumentation,
                              PhaseTimer* phases) const {
  LabImage lab;
  {
    Stopwatch watch;
    lab = srgb_to_lab(image);
    if (phases != nullptr) phases->add(kPhaseColorConversion, watch.elapsed_ms());
  }
  return segment_lab(lab, callback, instrumentation, phases);
}

Segmentation CpaSlic::segment_lab(const LabImage& lab,
                                  const IterationCallback& callback,
                                  Instrumentation* instrumentation,
                                  PhaseTimer* phases) const {
  Segmentation result;
  IterationScratch scratch;
  segment_lab_into(lab, result, scratch, callback, instrumentation, phases);
  return result;
}

void CpaSlic::segment_lab_into(const LabImage& lab, Segmentation& result,
                               IterationScratch& scratch,
                               const IterationCallback& callback,
                               Instrumentation* instrumentation,
                               PhaseTimer* phases) const {
  SSLIC_CHECK(!lab.empty());
  SSLIC_TRACE_SCOPE("cpa.segment");
  SSLIC_PERF_SCOPE("cpa.segment");
  const int w = lab.width();
  const int h = lab.height();
  const std::size_t n = lab.size();

  Instrumentation local_instr;
  Instrumentation& instr = instrumentation != nullptr ? *instrumentation : local_instr;
  instr = Instrumentation{};
  const bool fused = fusion_enabled();
  instr.fused = fused;

  Stopwatch init_watch;
  trace::Interval init_span;
  perf::IntervalSample init_perf;
  const CenterGrid grid(w, h, params_.num_superpixels);
  const double spacing = grid.spacing();
  const DistanceCalculator dist(params_.compactness, spacing);
  const SubsetSchedule schedule = SubsetSchedule::from_ratio(params_.subsample_ratio);
  const int num_centers = grid.num_centers();
  const auto num_centers_z = static_cast<std::size_t>(num_centers);

  seed_centers(grid, lab, params_.perturb_centers, result.centers,
               scratch.gradient);
  initial_labels(grid, result.labels);
  result.iterations_run = 0;
  result.trace.clear();
  result.trace.reserve(static_cast<std::size_t>(params_.max_iterations));

  // Persistent minimum-distance buffer ("two memory buffers as large as the
  // image", paper Section 2). For full SLIC it is reset every iteration.
  std::vector<double>& min_dist = scratch.min_dist;
  min_dist.assign(n, std::numeric_limits<double>::infinity());
  const bool subsampled = schedule.count() > 1;
  if (subsampled) {
    // Subsampled CPA keeps the buffer across iterations, so it must start
    // with the distance to the initially-assigned center. Row-parallel:
    // every pixel is independent.
    const std::int32_t* labels_ptr = result.labels.pixels().data();
    parallel_for(0, h, [&](std::int64_t ylo, std::int64_t yhi) {
      for (int y = static_cast<int>(ylo); y < static_cast<int>(yhi); ++y) {
        for (int x = 0; x < w; ++x) {
          const std::size_t flat =
              static_cast<std::size_t>(y) * static_cast<std::size_t>(w) +
              static_cast<std::size_t>(x);
          const auto label = static_cast<std::size_t>(labels_ptr[flat]);
          min_dist[flat] = dist.squared(lab(x, y), x, y, result.centers[label]);
        }
      }
    });
    instr.ops.distance_evals += n;
  }

  std::vector<Sigma>& sigmas = scratch.sigmas;
  sigmas.assign(num_centers_z, Sigma{});
  std::vector<std::uint8_t>& active = scratch.active;
  active.assign(num_centers_z, 1);
  std::vector<ScanWindow>& windows = scratch.windows;
  windows.resize(num_centers_z);

  // Fused iteration: the image is split into the same fixed band budget the
  // two-pass parallel_reduce uses (kReduceChunks, clamped to the height).
  // Band boundaries depend only on the image height, never on the thread
  // count, so the per-band sigma partials — and the ascending-order merge
  // below — rebuild the exact floating-point reduction tree of the
  // two-pass code. Labels are band-partition-invariant anyway (each pixel
  // sees its candidate centers in ascending index order regardless of the
  // split), so both paths are bit-identical end to end.
  const std::size_t bands =
      std::min<std::size_t>(detail::kReduceChunks, static_cast<std::size_t>(h));
  if (fused) scratch.ensure_band_sigmas(bands, num_centers_z);

  // One planar split per frame feeds the vectorized assignment kernels
  // (SoA channel planes; see image/planar.h). Resolved kernel table is
  // fetched once — dispatch never runs inside the pixel loops.
  split_lab_planes(lab, scratch.planes);
  const LabPlanes& planes = scratch.planes;
  const simd::Isa kernel_isa = kernels::active_isa();
  const kernels::KernelTable& kt = kernels::table_for(kernel_isa);
  const double spatial_weight = dist.spatial_weight();

  // Assignment schedule (DESIGN.md §4g): the original row sweep or the
  // cluster-centric block schedule. Both are bit-identical; the choice is
  // purely a performance decision resolved once per run.
  const AssignStrategy strategy =
      resolve_assign_strategy(kernel_isa, num_centers, w, h);
  const bool use_cluster = strategy == AssignStrategy::kCluster;
  // Change-only publication: the registry lookup allocates a string key,
  // which would break the zero-allocation steady state of per-frame
  // callers (TemporalSlic, BatchSegmenter).
  static std::atomic<int> last_published_strategy{-1};
  const int strategy_value = static_cast<int>(strategy);
  if (last_published_strategy.exchange(strategy_value,
                                       std::memory_order_relaxed) !=
      strategy_value) {
    telemetry::MetricsRegistry::global()
        .gauge("sslic.assign.strategy")
        .set(static_cast<double>(strategy_value));
  }
  const int ncols = grid.nx();
  if (use_cluster)
    scratch.ensure_cluster_scratch(static_cast<std::size_t>(ncols), bands);
  if (phases != nullptr) phases->add(kPhaseOther, init_watch.elapsed_ms());
  init_span.complete("cpa.init");
  init_perf.complete("cpa.init");

  // 2S x 2S search rectangle centred on each SP (paper Section 2): +/- S.
  const int window = std::max(1, static_cast<int>(std::lround(spacing)));
  double callback_ms_total = 0.0;

  for (int iter = 0; iter < params_.max_iterations; ++iter) {
    SSLIC_TRACE_SCOPE("cpa.iter", iter);
    Stopwatch iter_watch;
    IterationStats stats;
    stats.iteration = iter;

    // --- Assignment: scan each active center's 2Sx2S window. ---
    Stopwatch assign_watch;
    trace::Interval assign_span;
    perf::IntervalSample iter_perf;
    if (!subsampled && !use_cluster) {
      // Full SLIC resets the minimum-distance plane every iteration. The
      // fused path folds the reset into each band's sweep (same writes,
      // one less full-image pass); the traffic charge is identical. The
      // cluster schedule skips the reset entirely: its span kernel starts
      // each covered pixel's running min from infinity in registers and
      // stores unconditionally, and uncovered pixels never read min_dist —
      // the plane is dead scratch between cluster iterations.
      if (!fused) {
        parallel_for(0, static_cast<std::int64_t>(n),
                     [&](std::int64_t lo, std::int64_t hi) {
                       std::fill(min_dist.begin() + lo, min_dist.begin() + hi,
                                 std::numeric_limits<double>::infinity());
                     });
      }
      instr.traffic.distance_write += n * MemTraffic::kDistanceBytes;
    }

    // Serial prelude over the K centers: activity flags, clamped windows,
    // and the full instrumentation for this iteration. Op/traffic counts
    // are derived analytically from the window geometry — (x1-x0+1)*
    // (y1-y0+1) pixels per window under the streaming-writeback convention
    // (see instrumentation.h) — so the hot loop below carries no counter
    // updates at all, and the totals stay exact regardless of how the rows
    // are split across worker threads.
    const int active_subset = schedule.active_subset(iter);
    for (std::size_t ci = 0; ci < result.centers.size(); ++ci) {
      const bool is_active =
          !subsampled || static_cast<int>(ci) % schedule.count() == active_subset;
      active[ci] = is_active ? 1 : 0;
      if (!is_active) continue;

      const ClusterCenter& c = result.centers[ci];
      const int cx = static_cast<int>(std::lround(c.x));
      const int cy = static_cast<int>(std::lround(c.y));
      ScanWindow& win = windows[ci];
      win.x0 = std::max(0, cx - window);
      win.x1 = std::min(w - 1, cx + window);
      win.y0 = std::max(0, cy - window);
      win.y1 = std::min(h - 1, cy + window);

      const std::uint64_t wpix = win.pixels();
      instr.ops.distance_evals += wpix;
      instr.ops.compare_ops += wpix;
      stats.pixels_visited += wpix;
      if (!use_cluster) {
        // Row-sweep traffic: every covering window streams the pixel's Lab,
        // distance, and label entries again. The cluster schedule touches
        // each covered pixel once, so its traffic is tallied from the
        // per-band counters after the sweep instead (ops are schedule-
        // invariant — same distances, same compares — and stay here).
        instr.traffic.center_read += MemTraffic::kCenterBytes;
        instr.traffic.image_read += wpix * MemTraffic::kLabBytes;
        instr.traffic.distance_read += wpix * MemTraffic::kDistanceBytes;
        instr.traffic.distance_write += wpix * MemTraffic::kDistanceBytes;
        instr.traffic.label_write += wpix * MemTraffic::kLabelBytes;
      }
    }

    // Cluster schedule: bucket the active centers by the grid columns their
    // windows x-intersect, in ascending center order (serial loop over an
    // ascending index — every block later drains its bucket in that order,
    // which is what makes the per-pixel visit order match the row sweep).
    // Column g spans [ceil(g*w/ncols), ceil((g+1)*w/ncols)), the partition
    // whose containing-column formula is x*ncols/w.
    if (use_cluster) {
      for (auto& bucket : scratch.column_buckets) bucket.clear();
      for (std::size_t ci = 0; ci < result.centers.size(); ++ci) {
        if (active[ci] == 0) continue;
        const ScanWindow& win = windows[ci];
        const int g0 =
            static_cast<int>(static_cast<std::int64_t>(win.x0) * ncols / w);
        const int g1 =
            static_cast<int>(static_cast<std::int64_t>(win.x1) * ncols / w);
        for (int g = g0; g <= g1; ++g)
          scratch.column_buckets[static_cast<std::size_t>(g)].push_back(
              static_cast<std::int32_t>(ci));
      }
    }

    // Row-band tiling: each band owns a disjoint range of rows and scans
    // the row-intersection of every active window with its band. A pixel
    // is owned by exactly one band and sees its candidate centers in the
    // same ascending-index order as the serial loop, so labels (including
    // tie-breaks, which favour the lower index) are identical for every
    // band partition and thread count. No locks or atomics are needed on
    // the pixel arrays.
    std::int32_t* labels_ptr = result.labels.pixels().data();
    const auto scan_band = [&](int ylo, int yhi) {
      for (std::size_t ci = 0; ci < result.centers.size(); ++ci) {
        if (active[ci] == 0) continue;
        const ScanWindow& win = windows[ci];
        const int y0 = std::max(win.y0, ylo);
        const int y1 = std::min(win.y1, yhi - 1);
        if (y0 > y1) continue;
        SSLIC_TRACE_SCOPE_AT(1, "cpa.assign.center",
                             static_cast<std::int64_t>(ci));
        const ClusterCenter& c = result.centers[ci];
        const kernels::CenterOperand op{c.L, c.a, c.b, c.x, c.y,
                                        static_cast<std::int32_t>(ci)};
        const std::int32_t count = win.x1 - win.x0 + 1;
        for (int y = y0; y <= y1; ++y) {
          SSLIC_TRACE_SCOPE_AT(2, "cpa.kernel.row", y);
          const std::size_t off =
              static_cast<std::size_t>(y) * static_cast<std::size_t>(w) +
              static_cast<std::size_t>(win.x0);
          kt.assign_center_row(planes.L.data() + off, planes.a.data() + off,
                               planes.b.data() + off, win.x0, count,
                               static_cast<double>(y), op, spatial_weight,
                               min_dist.data() + off, labels_ptr + off);
        }
      }
    };

    // Cluster-centric band sweep (DESIGN.md §4g): each grid-column x band
    // block gathers its candidate centers once (registers/L1-resident for
    // the whole block), then partitions every row into spans whose covering
    // set is constant and resolves each span with one best-of-candidates
    // kernel call. Per pixel the candidates are exactly the centers whose
    // clamped windows contain it, drained in ascending index order with the
    // same strict-< IEEE arithmetic and the same starting value the row
    // sweep uses (infinity for full SLIC, the persistent seed for the
    // subsampled variant) — so labels and min-distances are bit-identical
    // to scan_band while each pixel's Lab/distance/label entries move
    // through the core exactly once.
    const auto cluster_scan_band = [&](std::size_t band, int ylo, int yhi) {
      ClusterBandScratch& cbs = scratch.cluster_bands[band];
      cbs.covered_pixels = 0;
      cbs.center_loads = 0;
      for (int gx = 0; gx < ncols; ++gx) {
        const int bx0 = static_cast<int>(
            (static_cast<std::int64_t>(gx) * w + ncols - 1) / ncols);
        const int bx1 = static_cast<int>(
            (static_cast<std::int64_t>(gx + 1) * w + ncols - 1) / ncols);
        if (bx0 >= bx1) continue;
        // Candidates of this (column, band) block, ascending center index.
        cbs.block_cands.clear();
        cbs.block_ops.clear();
        for (const std::int32_t ci :
             scratch.column_buckets[static_cast<std::size_t>(gx)]) {
          const ScanWindow& win = windows[static_cast<std::size_t>(ci)];
          if (win.y1 < ylo || win.y0 >= yhi) continue;
          const ClusterCenter& c = result.centers[static_cast<std::size_t>(ci)];
          cbs.block_cands.push_back(ci);
          cbs.block_ops.push_back(
              kernels::CenterOperand{c.L, c.a, c.b, c.x, c.y, ci});
        }
        if (cbs.block_cands.empty()) continue;
        cbs.center_loads += cbs.block_ops.size();
        SSLIC_TRACE_SCOPE_AT(1, "cpa.cluster.block",
                             static_cast<std::int64_t>(gx));
        // Y-runs: between consecutive window y-edges no candidate starts
        // or ends, so the whole row span structure (covering sets, span
        // breakpoints, gathered operands) is constant and built once per
        // run — the per-row loop below is kernel calls only.
        cbs.ybounds.clear();
        cbs.ybounds.push_back(ylo);
        cbs.ybounds.push_back(yhi);
        for (const std::int32_t ci : cbs.block_cands) {
          const ScanWindow& win = windows[static_cast<std::size_t>(ci)];
          if (win.y0 > ylo && win.y0 < yhi) cbs.ybounds.push_back(win.y0);
          if (win.y1 + 1 > ylo && win.y1 + 1 < yhi)
            cbs.ybounds.push_back(win.y1 + 1);
        }
        std::sort(cbs.ybounds.begin(), cbs.ybounds.end());
        cbs.ybounds.erase(std::unique(cbs.ybounds.begin(), cbs.ybounds.end()),
                          cbs.ybounds.end());
        for (std::size_t r = 0; r + 1 < cbs.ybounds.size(); ++r) {
          const int ya = cbs.ybounds[r];
          const int yb = cbs.ybounds[r + 1];
          // Covering candidates of the run (tested at ya; constant through
          // the run by construction), windows clamped to the block.
          cbs.row_cands.clear();
          for (std::size_t k = 0; k < cbs.block_cands.size(); ++k) {
            const ScanWindow& win =
                windows[static_cast<std::size_t>(cbs.block_cands[k])];
            if (ya < win.y0 || ya > win.y1) continue;
            const std::int32_t xa = std::max(win.x0, bx0);
            const std::int32_t xb = std::min(win.x1, bx1 - 1);
            if (xa > xb) continue;
            cbs.row_cands.push_back({static_cast<std::int32_t>(k), xa, xb});
          }
          if (cbs.row_cands.empty()) continue;
          // Split the run at every candidate x-edge: between consecutive
          // breakpoints the covering set is constant, so each span is one
          // kernel call per row. Candidate counts are <= 9 in practice,
          // so the sort touches a handful of entries.
          cbs.bounds.clear();
          for (const auto& rc : cbs.row_cands) {
            cbs.bounds.push_back(rc.xa);
            cbs.bounds.push_back(rc.xb + 1);
          }
          std::sort(cbs.bounds.begin(), cbs.bounds.end());
          cbs.bounds.erase(std::unique(cbs.bounds.begin(), cbs.bounds.end()),
                           cbs.bounds.end());
          // Pre-gather each span's operands (ascending center index: the
          // row_cands order) into the flat pool.
          cbs.spans.clear();
          cbs.span_ops.clear();
          std::uint64_t row_covered = 0;
          for (std::size_t s = 0; s + 1 < cbs.bounds.size(); ++s) {
            const std::int32_t s0 = cbs.bounds[s];
            const std::int32_t s1 = cbs.bounds[s + 1];
            const auto ops_begin =
                static_cast<std::int32_t>(cbs.span_ops.size());
            for (const auto& rc : cbs.row_cands) {
              if (rc.xa <= s0 && rc.xb >= s1 - 1)
                cbs.span_ops.push_back(
                    cbs.block_ops[static_cast<std::size_t>(rc.op)]);
            }
            const auto ncand =
                static_cast<std::int32_t>(cbs.span_ops.size()) - ops_begin;
            if (ncand == 0) continue;  // gap between disjoint windows
            cbs.spans.push_back({s0, s1, ops_begin, ncand});
            row_covered += static_cast<std::uint64_t>(s1 - s0);
          }
          cbs.covered_pixels += row_covered * static_cast<std::uint64_t>(yb - ya);
          for (int y = ya; y < yb; ++y) {
            SSLIC_TRACE_SCOPE_AT(2, "cpa.cluster.row", y);
            for (const auto& sp : cbs.spans) {
              const std::size_t off =
                  static_cast<std::size_t>(y) * static_cast<std::size_t>(w) +
                  static_cast<std::size_t>(sp.x0);
              if (subsampled) {
                kt.assign_candidates_row_seeded(
                    planes.L.data() + off, planes.a.data() + off,
                    planes.b.data() + off, sp.x0, sp.x1 - sp.x0,
                    static_cast<double>(y),
                    cbs.span_ops.data() + sp.ops_begin, sp.ncand,
                    spatial_weight, min_dist.data() + off, labels_ptr + off);
              } else {
                kt.assign_candidates_row(
                    planes.L.data() + off, planes.a.data() + off,
                    planes.b.data() + off, sp.x0, sp.x1 - sp.x0,
                    static_cast<double>(y),
                    cbs.span_ops.data() + sp.ops_begin, sp.ncand,
                    spatial_weight, nullptr, min_dist.data() + off,
                    labels_ptr + off);
              }
            }
          }
        }
      }
    };

    bool fused_sigmas_merged = false;
    if (!fused && !use_cluster) {
      parallel_for(0, h, [&](std::int64_t ylo, std::int64_t yhi) {
        SSLIC_TRACE_SCOPE("cpa.assign.band", ylo);
        scan_band(static_cast<int>(ylo), static_cast<int>(yhi));
      });
    } else if (!fused) {
      // Two-pass cluster sweep: banded dispatch (the cluster scratch and
      // tallies are per band), same fixed band budget as the fused path.
      // Labels are band-partition-invariant, so this matches the
      // parallel_for row split bit for bit.
      const auto band_assign = [&](std::size_t band) {
        const auto [blo, bhi] = detail::chunk_bounds(0, h, bands, band);
        if (blo >= bhi) return;
        SSLIC_TRACE_SCOPE("cpa.assign.band", blo);
        cluster_scan_band(band, static_cast<int>(blo), static_cast<int>(bhi));
      };
      ThreadPool& pool = ThreadPool::global();
      if (pool.threads() <= 1 || bands <= 1 ||
          ThreadPool::in_parallel_region()) {
        for (std::size_t band = 0; band < bands; ++band) band_assign(band);
      } else {
        pool.run_chunks(bands, band_assign);
      }
    } else {
      // Fused band sweep: reset (full SLIC), assign, then immediately
      // accumulate this band's sigma partials — after the ascending-index
      // center scan every pixel of the band holds its final label for this
      // iteration, so the accumulation is legal band-locally and the Lab
      // rows are still warm in cache. One full-image pass instead of three.
      const auto band_body = [&](std::size_t band, std::vector<Sigma>& pool) {
        const auto [blo, bhi] = detail::chunk_bounds(0, h, bands, band);
        if (blo >= bhi) return;
        SSLIC_TRACE_SCOPE("cpa.assign.band", blo);
        const int ylo = static_cast<int>(blo);
        const int yhi = static_cast<int>(bhi);
        if (!subsampled && !use_cluster) {
          const auto begin = static_cast<std::size_t>(ylo) * static_cast<std::size_t>(w);
          const auto end = static_cast<std::size_t>(yhi) * static_cast<std::size_t>(w);
          std::fill(min_dist.begin() + static_cast<std::ptrdiff_t>(begin),
                    min_dist.begin() + static_cast<std::ptrdiff_t>(end),
                    std::numeric_limits<double>::infinity());
        }
        if (use_cluster) {
          cluster_scan_band(band, ylo, yhi);
        } else {
          scan_band(ylo, yhi);
        }
        SSLIC_TRACE_SCOPE_AT(1, "cpa.band_accumulate",
                             static_cast<std::int64_t>(band));
        pool.assign(num_centers_z, Sigma{});
        for (int y = ylo; y < yhi; ++y) {
          const std::size_t off =
              static_cast<std::size_t>(y) * static_cast<std::size_t>(w);
          kt.accumulate_row(planes.L.data() + off, planes.a.data() + off,
                            planes.b.data() + off, 0, w, y, labels_ptr + off,
                            pool.data());
        }
      };
      ThreadPool& pool = ThreadPool::global();
      if (pool.threads() <= 1 || bands <= 1 || ThreadPool::in_parallel_region()) {
        // Serial sweep: one pool serves every band, folded into the totals
        // as soon as its band completes. The per-band partial values and
        // the ascending merge order are exactly those of the parallel
        // per-band pools — bit-identical results — but the single K-sigma
        // partial stays cache-resident across all bands instead of
        // streaming bands * K sigmas through memory every iteration.
        std::vector<Sigma>& band_pool = scratch.band_sigmas[0];
        for (std::size_t band = 0; band < bands; ++band) {
          band_body(band, band_pool);
          // Seed by copy, then fold — the same chain as the merge below
          // (bands = min(kReduceChunks, h) so no band is ever empty).
          if (band == 0) {
            sigmas = band_pool;
          } else {
            merge_sigmas(sigmas, band_pool);
          }
        }
        fused_sigmas_merged = true;
      } else {
        pool.run_chunks(bands, [&](std::size_t band) {
          band_body(band, scratch.band_sigmas[band]);
        });
      }
    }
    if (use_cluster) {
      // Honest cluster-mode traffic: integer per-band tallies summed in
      // ascending band order (exact and partition-independent). Each
      // covered pixel streams its Lab in and its label + distance out
      // once; center operands are re-gathered per block.
      std::uint64_t covered = 0;
      std::uint64_t center_loads = 0;
      for (std::size_t band = 0; band < bands; ++band) {
        covered += scratch.cluster_bands[band].covered_pixels;
        center_loads += scratch.cluster_bands[band].center_loads;
      }
      instr.traffic.center_read += center_loads * MemTraffic::kCenterBytes;
      instr.traffic.image_read += covered * MemTraffic::kLabBytes;
      instr.traffic.label_write += covered * MemTraffic::kLabelBytes;
      instr.traffic.distance_write += covered * MemTraffic::kDistanceBytes;
      if (subsampled) {
        // The seeded kernel also reads each covered pixel's persistent
        // (distance, label) pair to seed the running minimum.
        instr.traffic.distance_read += covered * MemTraffic::kDistanceBytes;
        instr.traffic.label_read += covered * MemTraffic::kLabelBytes;
      }
    }
    if (phases != nullptr) phases->add(kPhaseDistanceMin, assign_watch.elapsed_ms());
    assign_span.complete("cpa.assign", iter);
    iter_perf.complete("cpa.assign");

    // --- Center update: merge sigma partials, then divide. ---
    // Either path merges per-band partials in ascending band order with
    // band boundaries fixed by the image height (parallel_reduce uses the
    // same kReduceChunks budget), so the floating-point reduction tree —
    // and hence every center, bit for bit — is the same at any thread
    // count, fused or not.
    Stopwatch update_watch;
    trace::Interval update_span;
    if (!fused) {
      sigmas = parallel_reduce<std::vector<Sigma>>(
          0, h,
          [&](std::vector<Sigma>& partial, std::int64_t ylo, std::int64_t yhi) {
            partial.assign(num_centers_z, Sigma{});
            for (int y = static_cast<int>(ylo); y < static_cast<int>(yhi); ++y) {
              for (int x = 0; x < w; ++x) {
                const auto label = static_cast<std::size_t>(result.labels(x, y));
                partial[label].add(lab(x, y), x, y);
              }
            }
          },
          [&](std::vector<Sigma>& into, std::vector<Sigma>&& from) {
            if (from.empty()) return;
            if (into.empty()) {
              into = std::move(from);
              return;
            }
            merge_sigmas(into, from);
          });
      // Two-pass accounting: the standalone sigma pass re-reads the whole
      // image and label plane from DRAM. The fused path inherits both
      // streams from the assignment pass, so it drops these two charges —
      // the ~n*16 B/iteration the ISSUE's motivation cites.
      instr.traffic.image_read += n * MemTraffic::kLabBytes;
      instr.traffic.label_read += n * MemTraffic::kLabelBytes;
    } else if (!fused_sigmas_merged) {
      // Parallel fused sweep left one partial pool per band. The first
      // band's pool seeds the totals by value copy (mirroring the reduce
      // merge's move-from-empty), the rest fold in ascending order.
      sigmas = scratch.band_sigmas[0];
      for (std::size_t band = 1; band < bands; ++band)
        merge_sigmas(sigmas, scratch.band_sigmas[band]);
    }
    instr.ops.accumulate_ops += 6 * n;

    stats.center_movement = update_centers(result.centers, sigmas,
                                           subsampled ? active
                                                      : std::vector<std::uint8_t>{},
                                           &instr.ops);
    instr.traffic.center_write +=
        static_cast<std::uint64_t>(num_centers) * MemTraffic::kCenterBytes;
    if (phases != nullptr) phases->add(kPhaseCenterUpdate, update_watch.elapsed_ms());
    update_span.complete(fused ? "cpa.fused_accumulate" : "cpa.update", iter);
    iter_perf.complete(fused ? "cpa.fused_accumulate" : "cpa.update");

    instr.iterations += 1;
    result.iterations_run = iter + 1;
    stats.elapsed_ms = iter_watch.elapsed_ms();
    result.trace.push_back(stats);

    if (callback) {
      Stopwatch cb_watch;
      callback(stats, result.labels, result.centers);
      callback_ms_total += cb_watch.elapsed_ms();
    }
    if (params_.convergence_threshold > 0.0 &&
        stats.center_movement < params_.convergence_threshold &&
        iter + 1 >= schedule.count()) {
      break;  // every subset has been visited at least once
    }
  }
  (void)callback_ms_total;  // callbacks are excluded from phase totals by design

  if (params_.enforce_connectivity) {
    Stopwatch conn_watch;
    SSLIC_TRACE_SCOPE("cpa.connectivity");
    SSLIC_PERF_SCOPE("cpa.connectivity");
    enforce_connectivity(result.labels, params_.num_superpixels,
                         &scratch.connectivity);
    if (phases != nullptr) phases->add(kPhaseOther, conn_watch.elapsed_ms());
  }
}

}  // namespace sslic

// Video pipeline: the paper's motivating use case — real-time superpixel
// segmentation of a camera stream on a mobile device.
//
// Synthesizes a short "video" (a slowly evolving synthetic scene), runs the
// bit-exact accelerator golden model on every frame, measures software
// throughput and temporal label stability, and projects the frame rate and
// energy the 16nm accelerator would achieve on the same stream using the
// calibrated performance model.
//
// A batch/video mode also times the multithreaded software path as a
// two-stage pipeline: frame N's sRGB->Lab conversion runs on a spare thread
// while frame N-1 is being clustered, hiding the conversion latency behind
// the clustering stage (the labels are identical either way).
//
// Soak monitoring (long-run observability): `--monitor=out.jsonl` appends
// one JSON line every `--monitor-every=N` frames (default 20) with latency
// percentiles, cumulative fps, counter-derived IPC (null when the perf
// backend is degraded), heap-allocation deltas, and thread-pool stats —
// point a dashboard or a validation script at the file while a long run is
// in flight. `--prom=out.prom` additionally rewrites a Prometheus
// text-exposition dump of the full metrics registry at every snapshot (the
// node-exporter textfile-collector pattern).
//
//   video_pipeline [--frames=10] [--width=640 --height=480]
//                  [--superpixels=1200] [--ratio=0.5] [--threads=N]
//                  [--trace=out.json] [--metrics=out.json] [--no-fuse]
//                  [--monitor=out.jsonl] [--monitor-every=20]
//                  [--prom=out.prom]
#include <cmath>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <algorithm>

#include "color/color_convert.h"
#include "common/alloc_counter.h"
#include "common/cli.h"
#include "common/perf_counters.h"
#include "common/rng.h"
#include "common/simd.h"
#include "common/stopwatch.h"
#include "common/table.h"
#include "common/telemetry.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "dataset/synthetic.h"
#include "hw/accelerator_model.h"
#include "image/draw.h"
#include "image/io.h"
#include "metrics/segmentation_metrics.h"
#include "slic/assign_strategy.h"
#include "slic/fusion.h"
#include "slic/hw_datapath.h"
#include "slic/slic_baseline.h"
#include "slic/temporal.h"

// Count every heap allocation so the summary can prove the warm-started
// pipeline's steady state (frame 2 onward) allocates nothing per frame.
SSLIC_INSTALL_COUNTING_ALLOCATOR();

namespace {

using namespace sslic;

/// Temporal-stability proxy that is invariant to label renumbering: the
/// fraction of 4-neighbour pixel pairs whose co-membership ("same
/// superpixel?") agrees between the two frames (a local Rand index).
double label_agreement(const LabelImage& a, const LabelImage& b) {
  std::size_t agree = 0;
  std::size_t total = 0;
  for (int y = 0; y < a.height(); ++y) {
    for (int x = 0; x < a.width(); ++x) {
      if (x + 1 < a.width()) {
        agree += (a(x, y) == a(x + 1, y)) == (b(x, y) == b(x + 1, y));
        ++total;
      }
      if (y + 1 < a.height()) {
        agree += (a(x, y) == a(x, y + 1)) == (b(x, y) == b(x, y + 1));
        ++total;
      }
    }
  }
  return static_cast<double>(agree) / static_cast<double>(total);
}

/// Joins a thread on scope exit so an exception thrown while the thread is
/// running unwinds safely instead of hitting std::terminate in ~thread.
struct ThreadJoiner {
  std::thread& thread;
  ~ThreadJoiner() {
    if (thread.joinable()) thread.join();
  }
};

/// A JSON number, or null for NaN/inf — the degraded-counter marker. JSON
/// has no NaN literal, so consumers see `"ipc": null` when counters are off.
std::string jnum(double v) {
  if (!std::isfinite(v)) return "null";
  std::ostringstream s;
  s.precision(10);
  s << v;
  return s.str();
}

/// Appends periodic JSONL snapshots of a long run, and optionally rewrites
/// a Prometheus text dump of the registry alongside (scrape-file pattern).
class SoakMonitor {
 public:
  SoakMonitor(const std::string& jsonl_path, const std::string& prom_path)
      : prom_path_(prom_path) {
    if (!jsonl_path.empty())
      jsonl_.open(jsonl_path, std::ios::out | std::ios::app);
    jsonl_path_ = jsonl_path;
  }

  [[nodiscard]] bool active() const {
    return jsonl_.is_open() || !prom_path_.empty();
  }
  [[nodiscard]] bool ok() const { return !failed_; }
  [[nodiscard]] const std::string& jsonl_path() const { return jsonl_path_; }

  /// One snapshot after `frames_done` frames. `window` holds the counter
  /// delta accumulated since the previous snapshot; `window_allocs` the
  /// warm pipeline's heap allocations in that window (must be 0 once
  /// steady); `steady` whether the window lies entirely in the warm steady
  /// state (frame 2 onward).
  void snapshot(int frames_done, double elapsed_s,
                const telemetry::Histogram& golden,
                const telemetry::Histogram& warm, double golden_total_ms,
                double warm_total_ms, const perf::Delta& window,
                std::uint64_t window_allocs, bool steady) {
    if (jsonl_.is_open()) {
      const ThreadPool& pool = ThreadPool::global();
      std::uint64_t busy_ns = 0;
      for (const ThreadPool::WorkerStats& w : pool.stats())
        busy_ns += w.busy_ns;
      std::ostringstream line;
      line << "{\"frame\": " << frames_done
           << ", \"elapsed_s\": " << jnum(elapsed_s)
           << ", \"golden_ms\": {\"p50\": " << jnum(golden.p50())
           << ", \"p95\": " << jnum(golden.p95())
           << ", \"p99\": " << jnum(golden.p99())
           << ", \"mean\": " << jnum(golden.mean()) << "}"
           << ", \"warm_ms\": {\"p50\": " << jnum(warm.p50())
           << ", \"p95\": " << jnum(warm.p95())
           << ", \"p99\": " << jnum(warm.p99()) << "}"
           << ", \"golden_fps\": "
           << jnum(1000.0 * frames_done / golden_total_ms)
           << ", \"warm_fps\": " << jnum(1000.0 * frames_done / warm_total_ms)
           << ", \"ipc\": " << jnum(window.ipc())
           << ", \"cycles\": "
           << (window.has(perf::Event::kCycles)
                   ? jnum(window[perf::Event::kCycles])
                   : "null")
           << ", \"llc_misses\": "
           << (window.has(perf::Event::kLlcMisses)
                   ? jnum(window[perf::Event::kLlcMisses])
                   : "null")
           << ", \"heap_allocs_total\": " << alloc_counter::allocations()
           << ", \"warm_heap_allocs_window\": " << window_allocs
           << ", \"steady_state\": " << (steady ? "true" : "false")
           << ", \"pool_threads\": " << pool.threads()
           << ", \"pool_jobs_run\": " << pool.jobs_run()
           << ", \"pool_busy_ms\": " << jnum(static_cast<double>(busy_ns) / 1e6)
           << "}";
      jsonl_ << line.str() << '\n' << std::flush;
      if (!jsonl_) failed_ = true;
    }
    if (!prom_path_.empty()) {
      // Refresh the registry-backed exports, then rewrite the whole dump —
      // scrapers read a consistent file, not an append log.
      telemetry::MetricsRegistry& registry = telemetry::MetricsRegistry::global();
      telemetry::export_thread_pool(ThreadPool::global(), registry);
      telemetry::export_allocations(registry);
      perf::export_phases(registry);
      std::ofstream prom(prom_path_, std::ios::out | std::ios::trunc);
      prom << registry.export_prometheus();
      if (!prom) failed_ = true;
    }
  }

 private:
  std::ofstream jsonl_;
  std::string jsonl_path_;
  std::string prom_path_;
  bool failed_ = false;
};

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const int frames = args.get_int("frames", 10);
  const int width = args.get_int("width", 640);
  const int height = args.get_int("height", 480);
  const int superpixels = args.get_int("superpixels", 1200);
  const double ratio = args.get_double("ratio", 0.5);
  ThreadPool::set_global_threads(args.get_int("threads", 0));
  const std::string simd_request = args.get_string("simd", "");
  if (!simd_request.empty() && !sslic::simd::set_preferred_isa(simd_request)) {
    std::cerr << "unknown --simd value '" << simd_request
              << "' (expected scalar|sse2|avx2|avx512|neon)\n";
    return 2;
  }
  const std::string assign_request = args.get_string("assign", "");
  if (!assign_request.empty()) {
    sslic::AssignStrategy assign = sslic::AssignStrategy::kAuto;
    if (!sslic::parse_assign_strategy(assign_request, &assign)) {
      std::cerr << "unknown --assign value '" << assign_request
                << "' (expected auto|row|cluster)\n";
      return 2;
    }
    sslic::set_assign_strategy(assign);
  }
  if (args.has("no-fuse")) set_fusion(false);
  const std::string trace_path = args.get_string("trace", "");
  const std::string metrics_path = args.get_string("metrics", "");
  const std::string monitor_path = args.get_string("monitor", "");
  const int monitor_every = std::max(1, args.get_int("monitor-every", 20));
  const std::string prom_path = args.get_string("prom", "");
  SoakMonitor monitor(monitor_path, prom_path);
  if (monitor.active())
    std::cout << "soak monitor: snapshot every " << monitor_every
              << " frames; " << perf::status() << '\n';
  if (!trace_path.empty()) {
    if (trace::compiled()) {
      trace::arm(trace_path);
    } else {
      std::cerr << "warning: --trace requested but this binary was built with "
                   "-DSSLIC_TRACING=OFF; no spans will be recorded\n";
    }
  }

  std::cout << "segmenting a synthetic " << width << 'x' << height << " stream, "
            << frames << " frames, K=" << superpixels << ", S-SLIC(" << ratio
            << ") golden model, " << ThreadPool::global().threads()
            << " thread(s), simd=" << sslic::simd::isa_name(sslic::simd::preferred_isa())
            << ", assign=" << sslic::assign_strategy_name(sslic::assign_strategy())
            << ", fused iteration " << (fusion_enabled() ? "on" : "off")
            << "\n\n";

  HwConfig config;
  config.num_superpixels = superpixels;
  config.subsample_ratio = ratio;
  config.iterations = 9;
  const HwSlic segmenter(config);

  SyntheticParams scene;
  scene.width = width;
  scene.height = height;

  // Warm-started software pipeline (temporal extension): frame t's centers
  // initialize frame t+1, cutting the iteration budget roughly in half.
  SlicParams temporal_params;
  temporal_params.num_superpixels = superpixels;
  temporal_params.subsample_ratio = ratio;
  temporal_params.max_iterations = 18;
  TemporalSlic temporal(temporal_params);

  // Pre-generate the stream so the timed loops below measure segmentation,
  // not synthesis. A slowly evolving scene: the layout (seed) changes every
  // few frames (a "cut"); between cuts each frame gets fresh sensor noise
  // and a drifting exposure, like consecutive camera frames.
  std::vector<RgbImage> stream;
  std::vector<LabelImage> stream_truth;
  stream.reserve(static_cast<std::size_t>(frames));
  stream_truth.reserve(static_cast<std::size_t>(frames));
  Rng jitter_rng(77);
  for (int f = 0; f < frames; ++f) {
    GroundTruthImage gt =
        generate_synthetic(scene, 9000 + static_cast<std::uint64_t>(f / 4));
    const double exposure = 1.0 + 0.04 * std::sin(0.9 * f);
    for (auto& px : gt.image.pixels()) {
      const auto jitter = [&](std::uint8_t v) {
        const double noisy = v * exposure + 2.0 * jitter_rng.next_gaussian();
        return static_cast<std::uint8_t>(std::clamp(noisy, 0.0, 255.0));
      };
      px = {jitter(px.r), jitter(px.g), jitter(px.b)};
    }
    stream.push_back(std::move(gt.image));
    stream_truth.push_back(std::move(gt.truth));
  }

  Table table("Per-frame results (golden model + warm-started software)");
  table.set_header({"frame", "sw ms", "superpixels", "ASA", "recall",
                    "stability vs prev", "warm ms", "warm ASA"});
  // Per-frame latencies also feed the telemetry registry so the exit summary
  // can report p50/p95/p99 — the tail, not just the mean, is what decides
  // whether a mobile vision pipeline holds its frame deadline.
  telemetry::MetricsRegistry& registry = telemetry::MetricsRegistry::global();
  telemetry::Histogram& frame_hist = registry.histogram("sslic.video.frame_ms");
  telemetry::Histogram& warm_hist =
      registry.histogram("sslic.video.warm_frame_ms");

  LabelImage previous;
  double total_ms = 0.0;
  double warm_total_ms = 0.0;
  // Heap allocations per warm frame, counted tightly around next_frame.
  // Frame 0 is cold (buffers grow); from frame 2 on the count must be 0.
  std::vector<std::uint64_t> warm_allocs;
  warm_allocs.reserve(static_cast<std::size_t>(frames));
  // Soak-window state: counter delta, allocation delta, and steadiness of
  // the frames since the previous snapshot.
  Stopwatch soak_watch;
  perf::Delta soak_window;
  std::uint64_t soak_window_warm_allocs = 0;
  int soak_window_first_frame = 0;
  for (int f = 0; f < frames; ++f) {
    SSLIC_TRACE_SCOPE("frame", f);
    const auto fi = static_cast<std::size_t>(f);
    perf::Delta frame_counters;
    Stopwatch watch;
    double ms = 0.0;
    Segmentation seg;
    double warm_ms = 0.0;
    const Segmentation* warm_ptr = nullptr;
    {
      // One scoped sample covers both segmenters: the calling thread's
      // cycles/instructions/misses for the whole frame.
      perf::ScopedSample frame_sample(&frame_counters);
      {
        SSLIC_TRACE_SCOPE("frame.golden", f);
        seg = segmenter.segment(stream[fi]);
        ms = watch.elapsed_ms();
      }
      Stopwatch warm_watch;
      {
        SSLIC_TRACE_SCOPE("frame.warm", f);
        const std::uint64_t allocs_before = alloc_counter::allocations();
        warm_ptr = &temporal.next_frame(stream[fi]);
        warm_allocs.push_back(alloc_counter::allocations() - allocs_before);
        warm_ms = warm_watch.elapsed_ms();
      }
    }
    total_ms += ms;
    frame_hist.record(ms);
    const Segmentation& warm = *warm_ptr;
    warm_total_ms += warm_ms;
    warm_hist.record(warm_ms);
    soak_window += frame_counters;
    soak_window_warm_allocs += warm_allocs.back();

    if (monitor.active() &&
        ((f + 1) % monitor_every == 0 || f == frames - 1)) {
      monitor.snapshot(f + 1, soak_watch.elapsed_ms() / 1e3, frame_hist,
                       warm_hist, total_ms, warm_total_ms, soak_window,
                       soak_window_warm_allocs,
                       /*steady=*/soak_window_first_frame >= 2);
      soak_window = perf::Delta{};
      soak_window_warm_allocs = 0;
      soak_window_first_frame = f + 1;
    }

    table.add_row(
        {std::to_string(f), Table::num(ms, 1),
         std::to_string(count_labels(seg.labels)),
         Table::num(achievable_segmentation_accuracy(seg.labels, stream_truth[fi]), 3),
         Table::num(boundary_recall(seg.labels, stream_truth[fi], 2), 3),
         previous.empty() ? "-" : Table::num(label_agreement(seg.labels, previous), 3),
         Table::num(warm_ms, 1),
         Table::num(achievable_segmentation_accuracy(warm.labels, stream_truth[fi]), 3)});
    previous = seg.labels;
    if (f == 0) {
      write_ppm("video_frame0_boundaries.ppm",
                overlay_boundaries(stream[fi], seg.labels));
    }
  }
  std::cout << table;
  std::cout << "\nsoftware golden model: "
            << Table::num(1000.0 * frames / total_ms, 1)
            << " fps on this CPU; warm-started software pipeline: "
            << Table::num(1000.0 * frames / warm_total_ms, 1) << " fps\n";

  // Steady-state allocation report: all per-frame buffers (Lab conversion,
  // labels, sigmas, connectivity scratch) live in TemporalSlic and are
  // reused, so frames 2..N must not touch the heap at all.
  if (warm_allocs.size() > 2) {
    std::uint64_t steady = 0;
    for (std::size_t f = 2; f < warm_allocs.size(); ++f) steady += warm_allocs[f];
    std::cout << "warm pipeline heap allocations: frame 0 (cold) "
              << warm_allocs[0] << ", frames 2.." << warm_allocs.size() - 1
              << " total " << steady
              << (steady == 0 ? " (zero-allocation steady state)\n"
                              : " (expected 0 — buffer reuse regressed!)\n");
  }

  // --- Batch mode: two-stage software pipeline. ---
  // Stage A (sRGB->Lab) of frame N overlaps stage B (clustering) of frame
  // N-1. Conversion runs on its own thread: while the pool is owned by the
  // clustering job, a concurrent submitter degrades to serial on itself,
  // which is exactly the intended division of labour. Labels are identical
  // to the sequential path — only the schedule changes.
  {
    SlicParams sw_params;
    sw_params.num_superpixels = superpixels;
    sw_params.subsample_ratio = ratio;
    sw_params.max_iterations = 9;
    const CpaSlic sw(sw_params);

    // The conversion buffer, segmentation output, and iteration scratch are
    // hoisted out of both loops: after the first frame every buffer is
    // already right-sized and the loops run allocation-free.
    Stopwatch sequential_watch;
    std::vector<int> sequential_label_counts;
    LabImage lab;
    Segmentation seg;
    IterationScratch scratch;
    for (const RgbImage& frame : stream) {
      SSLIC_TRACE_SCOPE("frame.batch_sequential");
      srgb_to_lab(frame, lab);
      sw.segment_lab_into(lab, seg, scratch);
      sequential_label_counts.push_back(count_labels(seg.labels));
    }
    const double sequential_ms = sequential_watch.elapsed_ms();

    Stopwatch pipeline_watch;
    std::vector<int> pipelined_label_counts;
    LabImage current = srgb_to_lab(stream.front());
    LabImage next;
    for (std::size_t f = 0; f < stream.size(); ++f) {
      SSLIC_TRACE_SCOPE("frame.batch_pipelined",
                        static_cast<std::int64_t>(f));
      std::thread prefetch;
      const ThreadJoiner prefetch_guard{prefetch};
      if (f + 1 < stream.size()) {
        prefetch = std::thread([&] {
          trace::set_thread_name("convert-prefetch");
          srgb_to_lab(stream[f + 1], next);
        });
      }
      sw.segment_lab_into(current, seg, scratch);
      pipelined_label_counts.push_back(count_labels(seg.labels));
      if (prefetch.joinable()) prefetch.join();
      std::swap(current, next);
    }
    const double pipeline_ms = pipeline_watch.elapsed_ms();

    std::cout << "\nbatch software pipeline (CPA S-SLIC(" << ratio << "), "
              << ThreadPool::global().threads() << " thread(s)):\n"
              << "  sequential convert+cluster: "
              << Table::num(1000.0 * frames / sequential_ms, 1) << " fps ("
              << Table::num(sequential_ms / frames, 1) << " ms/frame)\n"
              << "  overlapped conversion:      "
              << Table::num(1000.0 * frames / pipeline_ms, 1) << " fps ("
              << Table::num(pipeline_ms / frames, 1) << " ms/frame), results "
              << (pipelined_label_counts == sequential_label_counts
                      ? "identical"
                      : "DIFFER (bug!)")
              << '\n';
  }

  // Accelerator projection for this stream.
  hw::AcceleratorDesign design;
  design.width = width;
  design.height = height;
  design.num_superpixels = superpixels;
  design.subsample_ratio = ratio;
  design.channel_buffer_bytes = width * height >= 1920 * 1080 ? 4096 : 1024;
  const hw::FrameReport r = hw::AcceleratorModel(design).evaluate();
  std::cout << "16nm S-SLIC accelerator projection for this stream:\n"
            << "  " << Table::num(r.fps, 1) << " fps ("
            << Table::num(r.total_s * 1e3, 1) << " ms/frame), "
            << Table::num(r.average_power_w * 1e3, 1) << " mW, "
            << Table::num(r.energy_per_frame_j * 1e3, 2) << " mJ/frame, "
            << Table::num(r.area_mm2, 3) << " mm2\n"
            << "  real-time (30 fps): " << (r.real_time() ? "yes" : "no")
            << "; wrote video_frame0_boundaries.ppm\n";

  // --- Telemetry summary: tail latency, pool utilisation, allocations,
  // and per-phase perf counters. ---
  telemetry::export_thread_pool(ThreadPool::global(), registry);
  telemetry::export_allocations(registry);
  perf::export_phases(registry);
  std::cout << "\nframe latency (golden model, " << frame_hist.count()
            << " frames): p50 " << Table::num(frame_hist.p50(), 1) << " ms, p95 "
            << Table::num(frame_hist.p95(), 1) << " ms, p99 "
            << Table::num(frame_hist.p99(), 1) << " ms, mean "
            << Table::num(frame_hist.mean(), 1) << " ms ("
            << Table::num(1000.0 / frame_hist.mean(), 1) << " fps)\n"
            << "frame latency (warm software): p50 "
            << Table::num(warm_hist.p50(), 1) << " ms, p95 "
            << Table::num(warm_hist.p95(), 1) << " ms, p99 "
            << Table::num(warm_hist.p99(), 1) << " ms\n";
  if (!metrics_path.empty()) {
    telemetry::JsonSink sink;
    registry.flush_to(sink);
    std::ofstream out(metrics_path);
    out << sink.text() << '\n';
    if (out) {
      std::cout << "wrote metrics to " << metrics_path << '\n';
    } else {
      std::cerr << "failed to write metrics to " << metrics_path << '\n';
      return 1;
    }
  }
  if (!trace_path.empty() && trace::compiled()) {
    std::cout << "tracing armed; will write " << trace_path << " at exit ("
              << trace::dropped_events() << " events dropped so far)\n";
  }
  if (monitor.active()) {
    if (!monitor.ok()) {
      std::cerr << "soak monitor: write failure on " << monitor.jsonl_path()
                << " or the --prom file\n";
      return 1;
    }
    if (!monitor.jsonl_path().empty())
      std::cout << "soak monitor: appended snapshots to "
                << monitor.jsonl_path() << '\n';
  }
  return 0;
}

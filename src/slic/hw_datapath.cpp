#include "slic/hw_datapath.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/perf_counters.h"
#include "common/trace.h"
#include "slic/assign_kernels.h"
#include "slic/connectivity.h"
#include "slic/grid.h"
#include "slic/subset_schedule.h"

namespace sslic {

HwSlic::HwSlic(HwConfig config) : config_(config), color_unit_(config.color) {
  SSLIC_CHECK(config_.num_superpixels >= 1);
  SSLIC_CHECK(config_.compactness > 0.0);
  SSLIC_CHECK(config_.iterations >= 1);
  SSLIC_CHECK(config_.distance_register_bits == 0 ||
              (config_.distance_register_bits >= 4 &&
               config_.distance_register_bits <= 24));
}

std::int32_t HwSlic::integer_distance(const Lab8& pixel, int px, int py,
                                      const HwCenter& center,
                                      std::int32_t weight_q8) {
  const std::int32_t dl = static_cast<std::int32_t>(pixel.L) - center.L;
  const std::int32_t da = static_cast<std::int32_t>(pixel.a) - center.a;
  const std::int32_t db = static_cast<std::int32_t>(pixel.b) - center.b;
  const std::int32_t dx = px - center.x;
  const std::int32_t dy = py - center.y;
  const std::int32_t dc2 = dl * dl + da * da + db * db;   // <= 3*255^2, 18 bits
  const std::int32_t ds2 = dx * dx + dy * dy;             // <= 2*(2S)^2
  // Spatial weighting m^2/S^2 as a Q8 multiplier, shifted back down — one
  // multiply and one shift in hardware.
  const std::int32_t spatial = static_cast<std::int32_t>(
      (static_cast<std::int64_t>(weight_q8) * ds2) >> 8);
  return dc2 + spatial;
}

std::int32_t HwSlic::quantize_distance(std::int32_t d, int bits, int shift) {
  if (bits == 0) return d;
  const std::int32_t reduced = d >> shift;
  const std::int32_t max_val = (std::int32_t{1} << bits) - 1;
  return std::min(reduced, max_val);
}

Segmentation HwSlic::segment(const RgbImage& image, HwRunStats* stats) const {
  SSLIC_CHECK(!image.empty());
  SSLIC_TRACE_SCOPE("hw.segment");
  SSLIC_PERF_SCOPE("hw.segment");
  const int w = image.width();
  const int h = image.height();
  const std::size_t n = image.size();

  HwRunStats local_stats;
  HwRunStats& st = stats != nullptr ? *stats : local_stats;
  st = HwRunStats{};

  // --- Color conversion: RGB loaded into channel memories, converted via
  // the LUT unit, written back as L/a/b planes (Section 4.3). ---
  trace::Interval color_span;
  const Planar8 planes = color_unit_.convert(image);
  color_span.complete("hw.color_convert");
  st.pixels_converted = n;
  st.dram_image_read += 3 * n;  // RGB bytes in

  // --- Static initialization: grid, candidate tiling, initial labels. ---
  const CenterGrid grid(w, h, config_.num_superpixels);
  const std::vector<CandidateList> candidates = build_candidate_map(grid);
  const SubsetSchedule schedule =
      SubsetSchedule::from_ratio(config_.subsample_ratio);

  const std::int32_t weight_q8 = std::max<std::int32_t>(
      1, static_cast<std::int32_t>(std::lround(
             config_.compactness * config_.compactness /
             (grid.spacing() * grid.spacing()) * 256.0)));

  // Distance-register reduction shift: keep the top `bits` of the widest
  // representable combined distance.
  int dist_shift = 0;
  if (config_.distance_register_bits != 0) {
    const double max_ds2 = 2.0 * (2.0 * grid.spacing()) * (2.0 * grid.spacing());
    const double max_combined =
        3.0 * 255.0 * 255.0 + (weight_q8 * max_ds2) / 256.0;
    int bits_needed = 1;
    while (std::ldexp(1.0, bits_needed) <= max_combined) ++bits_needed;
    dist_shift = std::max(0, bits_needed - config_.distance_register_bits);
  }

  const int num_centers = grid.num_centers();
  std::vector<HwCenter> centers(static_cast<std::size_t>(num_centers));
  for (int gy = 0; gy < grid.ny(); ++gy) {
    for (int gx = 0; gx < grid.nx(); ++gx) {
      const int px = std::clamp(static_cast<int>(grid.center_pos_x(gx)), 0, w - 1);
      const int py = std::clamp(static_cast<int>(grid.center_pos_y(gy)), 0, h - 1);
      HwCenter& c = centers[static_cast<std::size_t>(grid.center_index(gx, gy))];
      c.L = planes.ch1(px, py);
      c.a = planes.ch2(px, py);
      c.b = planes.ch3(px, py);
      c.x = px;
      c.y = py;
    }
  }

  Segmentation result;
  result.labels = initial_labels(grid);

  // Six-field integer sigma registers, one set per center (the hardware
  // keeps 9 live in the cluster update unit and spills per tile to the
  // center update unit; the total accumulation is identical).
  struct HwSigma {
    std::int64_t L = 0, a = 0, b = 0, x = 0, y = 0, count = 0;
  };
  std::vector<HwSigma> sigmas(static_cast<std::size_t>(num_centers));

  // The Planar8 channel memories are already the SoA layout the vectorized
  // datapath kernel consumes; the subset mask is materialized per row.
  const kernels::KernelTable& kt = kernels::active();
  std::vector<std::uint8_t> row_active(static_cast<std::size_t>(w), 0);
  std::int32_t* labels_ptr = result.labels.pixels().data();
  const bool all_active = schedule.count() == 1;

  for (int iter = 0; iter < config_.iterations; ++iter) {
    SSLIC_TRACE_SCOPE("hw.iter", iter);
    IterationStats iter_stats;
    iter_stats.iteration = iter;
    for (auto& s : sigmas) s = HwSigma{};

    for (int gy = 0; gy < grid.ny(); ++gy) {
      const int y0 = gy * h / grid.ny();
      const int y1 = (gy + 1) * h / grid.ny();
      for (int gx = 0; gx < grid.nx(); ++gx) {
        SSLIC_TRACE_SCOPE_AT(1, "hw.tile", grid.center_index(gx, gy));
        const int x0 = gx * w / grid.nx();
        const int x1 = (gx + 1) * w / grid.nx();
        const CandidateList& cand =
            candidates[static_cast<std::size_t>(grid.center_index(gx, gy))];
        st.tiles_processed += 1;
        // Tile streaming: 3 channel bytes per pixel in, 1 index byte in and
        // out (whole tiles move in DRAM bursts regardless of the subset).
        const std::uint64_t tile_pixels =
            static_cast<std::uint64_t>(x1 - x0) * static_cast<std::uint64_t>(y1 - y0);
        st.dram_image_read += 3 * tile_pixels;
        st.dram_index_read += tile_pixels;
        st.dram_index_write += tile_pixels;
        st.dram_center_read += 9 * 8;

        // Visited-pixel counting is hoisted out of the pixel loop: one
        // register-resident tile counter, added back per tile, keeps the
        // totals exact without taxing the datapath's inner loop.
        // Nine distance calculators feeding the 9:1 minimum tree; ties
        // resolve to the lowest slot, as a hardware tree does. The center
        // registers are snapshotted into kernel operands in slot order.
        std::array<kernels::HwCenterOperand, 9> cand_ops;
        for (std::size_t k = 0; k < cand.size(); ++k) {
          const HwCenter& hc = centers[static_cast<std::size_t>(cand[k])];
          cand_ops[k] = {hc.L, hc.a, hc.b, hc.x, hc.y, cand[k]};
        }
        const std::int32_t count = x1 - x0;

        std::uint64_t tile_visited = 0;
        for (int y = y0; y < y1; ++y) {
          const std::size_t off =
              static_cast<std::size_t>(y) * static_cast<std::size_t>(w) +
              static_cast<std::size_t>(x0);
          std::uint64_t visited = static_cast<std::uint64_t>(count);
          const std::uint8_t* mask = nullptr;
          if (!all_active) {
            visited = 0;
            for (int x = x0; x < x1; ++x) {
              const bool is_active = schedule.active(x, y, iter);
              row_active[static_cast<std::size_t>(x - x0)] =
                  is_active ? std::uint8_t{1} : std::uint8_t{0};
              visited += is_active ? 1 : 0;
            }
            if (visited == 0) continue;
            mask = row_active.data();
          }
          SSLIC_TRACE_SCOPE_AT(2, "hw.kernel.row", y);
          kt.assign_candidates_row_u8(
              planes.ch1.data() + off, planes.ch2.data() + off,
              planes.ch3.data() + off, x0, count, y, cand_ops.data(),
              static_cast<std::int32_t>(cand.size()), weight_q8,
              config_.distance_register_bits, dist_shift, mask,
              labels_ptr + off);

          // Cluster-update accumulation from the freshly written labels —
          // same x-ascending order and integer sums as the fused loop.
          for (int x = x0; x < x1; ++x) {
            if (mask != nullptr &&
                row_active[static_cast<std::size_t>(x - x0)] == 0) {
              continue;
            }
            const std::size_t flat =
                off + static_cast<std::size_t>(x - x0);
            HwSigma& s = sigmas[static_cast<std::size_t>(labels_ptr[flat])];
            s.L += planes.ch1.pixels()[flat];
            s.a += planes.ch2.pixels()[flat];
            s.b += planes.ch3.pixels()[flat];
            s.x += x;
            s.y += y;
            s.count += 1;
          }
          tile_visited += visited;
        }
        st.pixels_visited += tile_visited;
        iter_stats.pixels_visited += tile_visited;
      }
    }

    // --- Center update unit: one rounded integer division per field. ---
    SSLIC_TRACE_SCOPE("hw.update", iter);
    double movement = 0.0;
    std::size_t updated = 0;
    for (std::size_t ci = 0; ci < centers.size(); ++ci) {
      const HwSigma& s = sigmas[ci];
      if (s.count == 0) continue;
      const auto divide = [&](std::int64_t sum) {
        return static_cast<std::int32_t>((sum + s.count / 2) / s.count);
      };
      HwCenter next{divide(s.L), divide(s.a), divide(s.b), divide(s.x),
                    divide(s.y)};
      movement += std::abs(next.x - centers[ci].x) +
                  std::abs(next.y - centers[ci].y);
      centers[ci] = next;
      ++updated;
      st.center_updates += 1;
      st.dram_center_write += 8;
    }
    iter_stats.center_movement =
        updated == 0 ? 0.0 : movement / static_cast<double>(updated);
    st.iterations += 1;
    result.iterations_run = iter + 1;
    result.trace.push_back(iter_stats);
  }

  // Export final centers in the common floating-point form (decoded Lab8).
  result.centers.resize(centers.size());
  for (std::size_t i = 0; i < centers.size(); ++i) {
    const LabF lab = decode_lab8({static_cast<std::uint8_t>(centers[i].L),
                                  static_cast<std::uint8_t>(centers[i].a),
                                  static_cast<std::uint8_t>(centers[i].b)});
    result.centers[i] = {static_cast<double>(lab.L), static_cast<double>(lab.a),
                         static_cast<double>(lab.b),
                         static_cast<double>(centers[i].x),
                         static_cast<double>(centers[i].y)};
  }

  if (config_.enforce_connectivity) {
    SSLIC_TRACE_SCOPE("hw.connectivity");
    enforce_connectivity(result.labels, config_.num_superpixels);
  }
  return result;
}

}  // namespace sslic

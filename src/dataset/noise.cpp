#include "dataset/noise.h"

#include <cmath>

#include "common/check.h"

namespace sslic {
namespace {

double smoothstep(double t) { return t * t * (3.0 - 2.0 * t); }

int wrap(int v, int period) {
  const int m = v % period;
  return m < 0 ? m + period : m;
}

}  // namespace

ValueNoise::ValueNoise(Rng& rng, int period, double cell)
    : period_(period), inv_cell_(1.0 / cell) {
  SSLIC_CHECK(period >= 2 && cell > 0.0);
  lattice_.resize(static_cast<std::size_t>(period) * static_cast<std::size_t>(period));
  for (auto& v : lattice_) v = rng.next_double(-1.0, 1.0);
}

double ValueNoise::sample(double x, double y) const {
  const double fx = x * inv_cell_;
  const double fy = y * inv_cell_;
  const int x0 = static_cast<int>(std::floor(fx));
  const int y0 = static_cast<int>(std::floor(fy));
  const double tx = smoothstep(fx - std::floor(fx));
  const double ty = smoothstep(fy - std::floor(fy));

  const auto at = [&](int ix, int iy) {
    return lattice_[static_cast<std::size_t>(wrap(iy, period_)) *
                        static_cast<std::size_t>(period_) +
                    static_cast<std::size_t>(wrap(ix, period_))];
  };
  const double v00 = at(x0, y0), v10 = at(x0 + 1, y0);
  const double v01 = at(x0, y0 + 1), v11 = at(x0 + 1, y0 + 1);
  const double top = v00 + (v10 - v00) * tx;
  const double bot = v01 + (v11 - v01) * tx;
  return top + (bot - top) * ty;
}

FractalNoise::FractalNoise(Rng& rng, int octaves, double base_cell, double gain) {
  SSLIC_CHECK(octaves >= 1 && octaves <= 10 && base_cell >= 2.0);
  SSLIC_CHECK(gain > 0.0 && gain <= 1.0);
  double amp = 1.0;
  double cell = base_cell;
  double total = 0.0;
  for (int o = 0; o < octaves; ++o) {
    layers_.emplace_back(rng, 17 + 2 * o, cell);
    amplitude_.push_back(amp);
    total += amp;
    amp *= gain;
    cell = std::max(2.0, cell * 0.5);
  }
  norm_ = 1.0 / total;
}

double FractalNoise::sample(double x, double y) const {
  double acc = 0.0;
  for (std::size_t i = 0; i < layers_.size(); ++i)
    acc += amplitude_[i] * layers_[i].sample(x, y);
  return acc * norm_;
}

}  // namespace sslic

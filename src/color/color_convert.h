// Reference (double-precision) sRGB -> CIELAB conversion, paper Eqs. 1-4.
//
// Two transcription notes versus the paper text, both obvious typos against
// the standard sRGB/CIELAB definitions the paper cites:
//   * Eq. 1 prints (x+0.05)/1.055; the sRGB standard (and every SLIC
//     implementation) uses (x+0.055)/1.055. We implement the standard form.
//   * Eq. 3 prints b = 200*(fY - fX); the CIELAB definition is
//     b = 200*(fY - fZ). We implement the standard form.
#pragma once

#include <array>

#include "image/image.h"

namespace sslic {

/// Row-major 3x3 sRGB(D65) -> XYZ matrix, the paper's M (Eq. 2).
inline constexpr std::array<double, 9> kSrgbToXyz = {
    0.4124564, 0.3575761, 0.1804375,  //
    0.2126729, 0.7151522, 0.0721750,  //
    0.0193339, 0.1191920, 0.9503041,
};

/// D65 reference white [Xr, Yr, Zr] (Eq. 4's normalizer).
inline constexpr std::array<double, 3> kReferenceWhite = {0.950456, 1.0,
                                                          1.088754};

/// CIELAB linearization threshold (Eq. 4): (6/29)^3.
inline constexpr double kLabEpsilon = 0.008856;
/// CIELAB linear-segment slope (Eq. 4): 903.3 = (29/3)^3.
inline constexpr double kLabKappa = 903.3;

/// Inverse sRGB gamma (Eq. 1): maps an encoded channel in [0,1] to linear.
double srgb_inverse_gamma(double encoded);

/// CIELAB f(t) (Eq. 4) applied to an XYZ component already divided by the
/// reference white.
double lab_f(double t);

/// Converts one 8-bit sRGB pixel to CIELAB (L in [0,100], a/b roughly
/// [-110,110]).
LabF srgb_to_lab(Rgb8 rgb);

/// Converts a full image (reference path used by the software SLIC
/// implementations and as the golden model for the LUT unit's tests).
LabImage srgb_to_lab(const RgbImage& image);

/// In-place variant: converts into `lab`, resizing only when the
/// dimensions change. Allocation-free at steady state (the video loop
/// reuses one Lab frame across the stream).
void srgb_to_lab(const RgbImage& image, LabImage& lab);

/// Inverse conversion (CIELAB -> 8-bit sRGB, channels clamped), used by the
/// dataset generator to synthesize images with prescribed Lab statistics.
Rgb8 lab_to_srgb(const LabF& lab);

}  // namespace sslic

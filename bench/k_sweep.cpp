// Extension experiment: quality versus superpixel count K — the standard
// superpixel evaluation curve (SLIC TPAMI Fig. 4 style), here comparing
// SLIC against S-SLIC(0.5) across K. The paper evaluates at K = 900
// (quality) and K = 5000 (accelerator); this sweep shows the subsampling
// equivalence holds across the whole operating range.
#include <iostream>

#include "bench_common.h"
#include "slic/slic_baseline.h"
#include "slic/subsampled.h"

int main(int argc, char** argv) {
  using namespace sslic;
  bench::BenchConfig config = bench::BenchConfig::parse(argc, argv);
  if (config.images > 10) config.images = 10;  // 5 K values x 2 variants
  bench::banner("Extension — quality vs superpixel count K (CPU)", config);

  const SyntheticCorpus corpus(config.dataset_params(), config.images,
                               config.seed);

  Table table("Quality vs K, SLIC vs S-SLIC(0.5), matched full sweeps");
  table.set_header({"K", "variant", "USE", "USE(min)", "recall", "ASA",
                    "compactness"});
  for (const int k : {200, 500, 900, 1500, 2500}) {
    for (const bool subsampled : {false, true}) {
      bench::Quality quality;
      double compact = 0.0;
      for (int i = 0; i < corpus.size(); ++i) {
        const GroundTruthImage gt = corpus.generate(i);
        SlicParams params = config.slic_params();
        params.num_superpixels = k;
        Segmentation seg;
        if (subsampled) {
          params.subsample_ratio = 0.5;
          params.max_iterations = config.iterations * 2;
          seg = PpaSlic(params).segment(gt.image);
        } else {
          seg = CpaSlic(params).segment(gt.image);
        }
        quality += bench::measure_quality(seg.labels, gt.truth);
        compact += compactness(seg.labels);
      }
      quality /= config.images;
      compact /= config.images;
      table.add_row({std::to_string(k), subsampled ? "S-SLIC(0.5)" : "SLIC",
                     Table::num(quality.use, 4), Table::num(quality.use_min, 4),
                     Table::num(quality.recall, 4), Table::num(quality.asa, 4),
                     Table::num(compact, 3)});
    }
    table.add_separator();
  }
  table.add_note("expected shape: USE falls and recall rises with K for both "
                 "variants, and S-SLIC(0.5) tracks SLIC at every K — the "
                 "subsampling equivalence is not a K=900 artifact.");
  std::cout << table;
  return 0;
}

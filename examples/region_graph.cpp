// Downstream computer-vision use of superpixels (the paper's Section-1
// motivation: superpixels "reduce the complexity of image processing tasks
// later in the pipeline"): build a region-adjacency graph over the
// superpixels and greedily merge similar neighbours into object-level
// regions — a classic superpixel-based segmentation consumer.
//
//   region_graph [input.ppm] [--superpixels=900] [--regions=12] [--out=prefix]
#include <algorithm>
#include <iostream>
#include <map>
#include <optional>
#include <queue>
#include <vector>

#include "color/color_convert.h"
#include "common/check.h"
#include "common/cli.h"
#include "common/table.h"
#include "dataset/synthetic.h"
#include "image/draw.h"
#include "image/io.h"
#include "metrics/segmentation_metrics.h"
#include "slic/segmenter.h"

namespace {

using namespace sslic;

/// Mean Lab color and size per superpixel.
struct Region {
  double L = 0.0, a = 0.0, b = 0.0;
  std::int64_t size = 0;
  std::int32_t parent = -1;  // union-find
};

std::int32_t find_root(std::vector<Region>& regions, std::int32_t i) {
  while (regions[static_cast<std::size_t>(i)].parent != i) {
    const auto p = regions[static_cast<std::size_t>(i)].parent;
    regions[static_cast<std::size_t>(i)].parent =
        regions[static_cast<std::size_t>(p)].parent;
    i = regions[static_cast<std::size_t>(i)].parent;
  }
  return i;
}

double color_distance(const Region& x, const Region& y) {
  const double dl = x.L - y.L, da = x.a - y.a, db = x.b - y.b;
  return std::sqrt(dl * dl + da * da + db * db);
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);

  RgbImage image;
  std::optional<LabelImage> truth;
  if (!args.positional().empty()) {
    image = read_ppm(args.positional().front());
  } else {
    const GroundTruthImage gt = generate_synthetic(
        SyntheticParams{}, static_cast<std::uint64_t>(args.get_int("seed", 11)));
    image = gt.image;
    truth = gt.truth;
  }
  const int target_regions = args.get_int("regions", 12);

  // --- Stage 1: superpixels (the accelerator's job). ---
  SlicParams params;
  params.num_superpixels = args.get_int("superpixels", 900);
  params.subsample_ratio = 0.5;
  params.max_iterations = 20;
  const Segmentation seg = run_segmenter(Algorithm::kSslicPpa, params, image);
  const int num_superpixels = count_labels(seg.labels);
  std::cout << "stage 1: " << num_superpixels << " superpixels over "
            << image.size() << " pixels ("
            << Table::num(static_cast<double>(image.size()) / num_superpixels, 0)
            << " px/superpixel complexity reduction)\n";

  // --- Stage 2: region statistics + adjacency graph. ---
  const LabImage lab = srgb_to_lab(image);
  std::vector<Region> regions(static_cast<std::size_t>(num_superpixels));
  for (std::size_t i = 0; i < regions.size(); ++i)
    regions[i].parent = static_cast<std::int32_t>(i);
  for (int y = 0; y < image.height(); ++y) {
    for (int x = 0; x < image.width(); ++x) {
      Region& r = regions[static_cast<std::size_t>(seg.labels(x, y))];
      r.L += static_cast<double>(lab(x, y).L);
      r.a += static_cast<double>(lab(x, y).a);
      r.b += static_cast<double>(lab(x, y).b);
      r.size += 1;
    }
  }
  for (auto& r : regions) {
    SSLIC_CHECK(r.size > 0);
    r.L /= static_cast<double>(r.size);
    r.a /= static_cast<double>(r.size);
    r.b /= static_cast<double>(r.size);
  }

  std::map<std::pair<std::int32_t, std::int32_t>, int> edges;
  for (int y = 0; y < image.height(); ++y) {
    for (int x = 0; x < image.width(); ++x) {
      const std::int32_t here = seg.labels(x, y);
      for (const auto& [nx, ny] :
           {std::pair{x + 1, y}, std::pair{x, y + 1}}) {
        if (nx >= image.width() || ny >= image.height()) continue;
        const std::int32_t there = seg.labels(nx, ny);
        if (there != here)
          edges[{std::min(here, there), std::max(here, there)}] += 1;
      }
    }
  }
  std::cout << "stage 2: region-adjacency graph with " << regions.size()
            << " nodes, " << edges.size() << " edges\n";

  // --- Stage 3: greedy merging of the most similar adjacent regions. ---
  struct Candidate {
    double distance;
    std::int32_t a, b;
    bool operator>(const Candidate& other) const { return distance > other.distance; }
  };
  std::priority_queue<Candidate, std::vector<Candidate>, std::greater<>> queue;
  for (const auto& [edge, strength] : edges) {
    queue.push({color_distance(regions[static_cast<std::size_t>(edge.first)],
                               regions[static_cast<std::size_t>(edge.second)]),
                edge.first, edge.second});
  }
  int alive = num_superpixels;
  while (alive > target_regions && !queue.empty()) {
    const Candidate c = queue.top();
    queue.pop();
    const std::int32_t ra = find_root(regions, c.a);
    const std::int32_t rb = find_root(regions, c.b);
    if (ra == rb) continue;
    Region& a = regions[static_cast<std::size_t>(ra)];
    Region& b = regions[static_cast<std::size_t>(rb)];
    // Lazy refresh: if the stored distance is stale, re-queue.
    const double current = color_distance(a, b);
    if (current > c.distance + 1e-9) {
      queue.push({current, ra, rb});
      continue;
    }
    const double total = static_cast<double>(a.size + b.size);
    a.L = (a.L * static_cast<double>(a.size) + b.L * static_cast<double>(b.size)) / total;
    a.a = (a.a * static_cast<double>(a.size) + b.a * static_cast<double>(b.size)) / total;
    a.b = (a.b * static_cast<double>(a.size) + b.b * static_cast<double>(b.size)) / total;
    a.size += b.size;
    b.parent = ra;
    --alive;
  }

  LabelImage merged(image.width(), image.height());
  for (int y = 0; y < image.height(); ++y)
    for (int x = 0; x < image.width(); ++x)
      merged(x, y) = find_root(regions, seg.labels(x, y));
  compact_labels(merged);
  std::cout << "stage 3: merged to " << count_labels(merged) << " regions\n";

  if (truth) {
    std::cout << "object-level quality vs ground truth ("
              << count_labels(*truth) << " true regions):\n"
              << "  achievable accuracy: "
              << achievable_segmentation_accuracy(merged, *truth) << '\n'
              << "  boundary recall:     " << boundary_recall(merged, *truth, 2)
              << '\n';
  }

  const std::string prefix = args.get_string("out", "region_graph");
  write_ppm(prefix + "_superpixels.ppm", overlay_boundaries(image, seg.labels));
  write_ppm(prefix + "_regions.ppm",
            overlay_boundaries(mean_color_abstraction(image, merged), merged,
                               {255, 255, 60}));
  std::cout << "wrote " << prefix << "_{superpixels,regions}.ppm\n";
  return 0;
}

// Non-owning bounds-checked 2-D view over contiguous row-major storage.
// Used throughout to pass image planes and label maps without copying.
#pragma once

#include <cstddef>

#include "common/check.h"

namespace sslic {

/// Non-owning row-major 2-D view. `T` may be const-qualified for read views.
/// Bounds are checked via SSLIC_DCHECK (debug builds) on element access and
/// via SSLIC_CHECK on construction.
template <typename T>
class Span2d {
 public:
  Span2d() = default;

  Span2d(T* data, int width, int height, int stride)
      : data_(data), width_(width), height_(height), stride_(stride) {
    SSLIC_CHECK(width >= 0 && height >= 0 && stride >= width);
    SSLIC_CHECK(data != nullptr || (width == 0 && height == 0));
  }

  Span2d(T* data, int width, int height) : Span2d(data, width, height, width) {}

  /// Implicit conversion Span2d<T> -> Span2d<const T>.
  operator Span2d<const T>() const { return {data_, width_, height_, stride_}; }

  [[nodiscard]] int width() const { return width_; }
  [[nodiscard]] int height() const { return height_; }
  [[nodiscard]] int stride() const { return stride_; }
  [[nodiscard]] std::size_t size() const {
    return static_cast<std::size_t>(width_) * static_cast<std::size_t>(height_);
  }
  [[nodiscard]] bool empty() const { return size() == 0; }
  [[nodiscard]] T* data() const { return data_; }

  [[nodiscard]] bool contains(int x, int y) const {
    return x >= 0 && x < width_ && y >= 0 && y < height_;
  }

  T& operator()(int x, int y) const {
    SSLIC_DCHECK(contains(x, y));
    return data_[static_cast<std::size_t>(y) * static_cast<std::size_t>(stride_) +
                 static_cast<std::size_t>(x)];
  }

  /// Clamped access: coordinates outside the view are clamped to the border.
  T& at_clamped(int x, int y) const {
    const int cx = x < 0 ? 0 : (x >= width_ ? width_ - 1 : x);
    const int cy = y < 0 ? 0 : (y >= height_ ? height_ - 1 : y);
    return (*this)(cx, cy);
  }

  [[nodiscard]] T* row(int y) const {
    SSLIC_DCHECK(y >= 0 && y < height_);
    return data_ + static_cast<std::size_t>(y) * static_cast<std::size_t>(stride_);
  }

  /// Rectangular sub-view; the rectangle must lie fully inside this view.
  [[nodiscard]] Span2d subview(int x0, int y0, int w, int h) const {
    SSLIC_CHECK(x0 >= 0 && y0 >= 0 && w >= 0 && h >= 0);
    SSLIC_CHECK(x0 + w <= width_ && y0 + h <= height_);
    return {data_ + static_cast<std::size_t>(y0) * static_cast<std::size_t>(stride_) + x0,
            w, h, stride_};
  }

 private:
  T* data_ = nullptr;
  int width_ = 0;
  int height_ = 0;
  int stride_ = 0;
};

}  // namespace sslic

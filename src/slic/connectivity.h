// Connectivity enforcement (paper Section 2): after convergence "a final
// step is performed to enforce the connectivity, ensuring that any stray
// pixels that may still be disjoint are assigned to the closest large SP".
//
// This is Achanta et al.'s post-pass: relabel 4-connected components in
// scan order; components smaller than a quarter of the mean superpixel size
// are absorbed into the previously-labelled adjacent component.
#pragma once

#include <cstdint>
#include <vector>

#include "image/image.h"

namespace sslic {

struct ConnectivityResult {
  int final_label_count = 0;    ///< labels after relabelling (0..count-1)
  int components_merged = 0;    ///< stray fragments absorbed
  std::size_t pixels_moved = 0; ///< pixels whose label changed by merging
};

/// Reusable working buffers of enforce_connectivity. A caller that keeps
/// one of these across frames (e.g. TemporalSlic's IterationScratch) makes
/// the pass allocation-free at steady state: `stack` and `members` are
/// reserved to the worst case (one component covering the image) on the
/// first call per image size, and the relabelled output plane is recycled
/// by swapping it with the caller's label image.
struct ConnectivityScratch {
  LabelImage out;
  std::vector<std::int32_t> stack;    ///< flood-fill worklist (flat indices)
  std::vector<std::int32_t> members;  ///< current component's flat indices
};

/// Enforces 4-connectivity in place. `expected_superpixels` sets the
/// minimum-fragment threshold to (N / expected_superpixels) / 4, matching
/// the reference SLIC implementation. Output labels are compact (0..n-1).
/// `scratch` is optional; passing one amortizes all working allocations
/// across calls.
ConnectivityResult enforce_connectivity(LabelImage& labels,
                                        int expected_superpixels,
                                        ConnectivityScratch* scratch = nullptr);

/// True when every label forms a single 4-connected component.
bool is_fully_connected(const LabelImage& labels);

}  // namespace sslic

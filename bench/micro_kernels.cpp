// google-benchmark microbenchmarks of the hot kernels: color conversion
// (reference float and LUT integer), the 9-way distance + 9:1 minimum inner
// loop, full algorithm iterations, the quality metrics, and connectivity
// enforcement.
#include <benchmark/benchmark.h>

#include <vector>

#include "color/color_convert.h"
#include "color/lut_color_unit.h"
#include "dataset/synthetic.h"
#include "metrics/segmentation_metrics.h"
#include "slic/connectivity.h"
#include "slic/hw_datapath.h"
#include "slic/slic_baseline.h"
#include "slic/subsampled.h"

namespace {

using namespace sslic;

const GroundTruthImage& test_image() {
  static const GroundTruthImage gt = [] {
    SyntheticParams p;  // BSDS-sized
    return generate_synthetic(p, 42);
  }();
  return gt;
}

void BM_ColorConvertReference(benchmark::State& state) {
  const RgbImage& img = test_image().image;
  for (auto _ : state) {
    LabImage lab = srgb_to_lab(img);
    benchmark::DoNotOptimize(lab.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(img.size()));
}
BENCHMARK(BM_ColorConvertReference);

void BM_ColorConvertLut(benchmark::State& state) {
  const RgbImage& img = test_image().image;
  const LutColorUnit unit;
  for (auto _ : state) {
    Planar8 planes = unit.convert(img);
    benchmark::DoNotOptimize(planes.ch1.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(img.size()));
}
BENCHMARK(BM_ColorConvertLut);

void BM_NineWayIntegerDistanceMin(benchmark::State& state) {
  // The cluster-update inner loop: 9 distances + 9:1 min per pixel.
  std::vector<HwCenter> centers(9);
  for (int i = 0; i < 9; ++i)
    centers[static_cast<std::size_t>(i)] = {i * 20, 128 - i, 128 + i, i * 10,
                                            i * 7};
  const Lab8 pixel{90, 130, 120};
  for (auto _ : state) {
    std::int32_t best = INT32_MAX;
    std::int32_t best_i = 0;
    for (std::int32_t i = 0; i < 9; ++i) {
      const std::int32_t d = HwSlic::integer_distance(
          pixel, 45, 33, centers[static_cast<std::size_t>(i)], 64);
      if (d < best) {
        best = d;
        best_i = i;
      }
    }
    benchmark::DoNotOptimize(best_i);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_NineWayIntegerDistanceMin);

void BM_PpaIteration(benchmark::State& state) {
  const GroundTruthImage& gt = test_image();
  const LabImage lab = srgb_to_lab(gt.image);
  SlicParams params;
  params.num_superpixels = 900;
  params.max_iterations = static_cast<int>(state.range(0));
  params.subsample_ratio = 0.5;
  params.enforce_connectivity = false;
  const PpaSlic slic(params);
  for (auto _ : state) {
    Segmentation seg = slic.segment_lab(lab);
    benchmark::DoNotOptimize(seg.labels.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(lab.size()) *
                          state.range(0) / 2);
}
BENCHMARK(BM_PpaIteration)->Arg(1)->Arg(4);

void BM_CpaIteration(benchmark::State& state) {
  const GroundTruthImage& gt = test_image();
  const LabImage lab = srgb_to_lab(gt.image);
  SlicParams params;
  params.num_superpixels = 900;
  params.max_iterations = 1;
  params.enforce_connectivity = false;
  const CpaSlic slic(params);
  for (auto _ : state) {
    Segmentation seg = slic.segment_lab(lab);
    benchmark::DoNotOptimize(seg.labels.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(lab.size()));
}
BENCHMARK(BM_CpaIteration);

void BM_HwGoldenModelFrame(benchmark::State& state) {
  const GroundTruthImage& gt = test_image();
  HwConfig config;
  config.num_superpixels = 900;
  config.iterations = 4;
  for (auto _ : state) {
    Segmentation seg = HwSlic(config).segment(gt.image);
    benchmark::DoNotOptimize(seg.labels.data());
  }
}
BENCHMARK(BM_HwGoldenModelFrame);

void BM_UndersegmentationError(benchmark::State& state) {
  const GroundTruthImage& gt = test_image();
  SlicParams params;
  params.num_superpixels = 900;
  params.max_iterations = 2;
  const Segmentation seg = PpaSlic(params).segment(gt.image);
  for (auto _ : state) {
    const double use = undersegmentation_error(seg.labels, gt.truth);
    benchmark::DoNotOptimize(use);
  }
}
BENCHMARK(BM_UndersegmentationError);

void BM_BoundaryRecall(benchmark::State& state) {
  const GroundTruthImage& gt = test_image();
  SlicParams params;
  params.num_superpixels = 900;
  params.max_iterations = 2;
  const Segmentation seg = PpaSlic(params).segment(gt.image);
  for (auto _ : state) {
    const double recall = boundary_recall(seg.labels, gt.truth, 2);
    benchmark::DoNotOptimize(recall);
  }
}
BENCHMARK(BM_BoundaryRecall);

void BM_ConnectivityEnforcement(benchmark::State& state) {
  const GroundTruthImage& gt = test_image();
  SlicParams params;
  params.num_superpixels = 900;
  params.max_iterations = 2;
  params.enforce_connectivity = false;
  const Segmentation seg = PpaSlic(params).segment(gt.image);
  for (auto _ : state) {
    LabelImage labels = seg.labels;
    enforce_connectivity(labels, 900);
    benchmark::DoNotOptimize(labels.data());
  }
}
BENCHMARK(BM_ConnectivityEnforcement);

}  // namespace

BENCHMARK_MAIN();

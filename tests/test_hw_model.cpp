// Tests for src/hw: the calibrated performance/energy/area model. The
// anchor tests assert the model reproduces the paper's published cells
// (Table 3, Table 4, Fig. 6, Table 5 ratios) within stated tolerances —
// these are the reproduction's acceptance tests.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <tuple>

#include "common/check.h"
#include "hw/accelerator_model.h"
#include "hw/cluster_unit.h"
#include "hw/cycle_sim.h"
#include "hw/dram_model.h"
#include "hw/dse.h"
#include "hw/energy_model.h"
#include "hw/gpu_reference.h"

namespace sslic::hw {
namespace {

constexpr double kHdPixels = 1920.0 * 1080.0;
constexpr double kClock = 1.6e9;

void expect_within(double actual, double expected, double rel_tol,
                   const char* what) {
  EXPECT_NEAR(actual, expected, std::fabs(expected) * rel_tol) << what;
}

// ------------------------------------------------------------ cluster unit

struct Table3Row {
  ClusterUnitConfig config;
  double area_mm2;
  double power_mw;
  int latency;
  int ii;
  double time_ms;
  double energy_uj;
};

const Table3Row kTable3[] = {
    {ClusterUnitConfig::way_111(), 0.0020, 3.3, 27, 9, 11.8, 38.9},
    {ClusterUnitConfig::way_911(), 0.0149, 3.6, 19, 9, 11.8, 42.5},
    {ClusterUnitConfig::way_191(), 0.0023, 3.2, 20, 9, 11.8, 37.5},
    {ClusterUnitConfig::way_116(), 0.0025, 3.25, 22, 9, 11.8, 38.3},
    {ClusterUnitConfig::way_996(), 0.0156, 30.9, 7, 1, 1.3, 40.6},
};

class Table3Anchor : public ::testing::TestWithParam<Table3Row> {};

TEST_P(Table3Anchor, LatencyAndThroughputExact) {
  const Table3Row& row = GetParam();
  const ClusterUnit unit(row.config);
  EXPECT_EQ(unit.latency_cycles(), row.latency) << row.config.name();
  EXPECT_EQ(unit.initiation_interval(), row.ii) << row.config.name();
}

TEST_P(Table3Anchor, AreaWithin5Percent) {
  const Table3Row& row = GetParam();
  const ClusterUnit unit(row.config);
  expect_within(unit.area_mm2(), row.area_mm2, 0.05, row.config.name().c_str());
}

TEST_P(Table3Anchor, IterationTimeWithin2Percent) {
  const Table3Row& row = GetParam();
  const ClusterUnit unit(row.config);
  const double t =
      unit.iteration_compute_seconds(static_cast<std::uint64_t>(kHdPixels),
                                     4982, kClock) * 1e3;
  expect_within(t, row.time_ms, 0.02, row.config.name().c_str());
}

TEST_P(Table3Anchor, EnergyWithin5Percent) {
  const Table3Row& row = GetParam();
  const ClusterUnit unit(row.config);
  const double e = unit.iteration_energy_j(static_cast<std::uint64_t>(kHdPixels));
  expect_within(e * 1e6, row.energy_uj, 0.05, row.config.name().c_str());
}

TEST_P(Table3Anchor, PowerWithin6Percent) {
  const Table3Row& row = GetParam();
  const ClusterUnit unit(row.config);
  expect_within(unit.active_power_w(kClock) * 1e3, row.power_mw, 0.06,
                row.config.name().c_str());
}

INSTANTIATE_TEST_SUITE_P(PaperRows, Table3Anchor, ::testing::ValuesIn(kTable3),
                         [](const auto& param_info) {
                           std::string name = param_info.param.config.name();
                           for (auto& c : name)
                             if (c == '-') c = '_';
                           return "config_" + name;
                         });

TEST(ClusterUnit, FullyParallelDominates) {
  // The 9-9-6 design: 9x throughput at ~7.8x area (Section 6.2).
  const ClusterUnit slow(ClusterUnitConfig::way_111());
  const ClusterUnit fast(ClusterUnitConfig::way_996());
  EXPECT_EQ(slow.initiation_interval() / fast.initiation_interval(), 9);
  const double area_ratio = fast.area_mm2() / slow.area_mm2();
  EXPECT_GT(area_ratio, 7.0);
  EXPECT_LT(area_ratio, 8.5);
  // Energy per iteration grows only marginally (paper: 38.9 -> 40.6 uJ).
  const double energy_ratio =
      fast.iteration_energy_j(1000000) / slow.iteration_energy_j(1000000);
  EXPECT_LT(energy_ratio, 1.10);
}

TEST(ClusterUnit, IntermediateWaysAreValid) {
  // Generalized configs beyond the paper's five (DSE extension).
  const ClusterUnit unit({3, 3, 2});
  EXPECT_EQ(unit.initiation_interval(), 3);
  EXPECT_GT(unit.area_mm2(), ClusterUnit(ClusterUnitConfig::way_111()).area_mm2());
}

// Property sweep over the full d-m-a configuration grid.
class ClusterGridSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(ClusterGridSweep, StructuralInvariants) {
  const auto [d, m, a] = GetParam();
  const ClusterUnit unit({d, m, a});
  const int dist_iters = (9 + d - 1) / d;
  const int min_iters = (9 + m - 1) / m;
  const int add_iters = (6 + a - 1) / a;
  // II is the slowest function's iteration count.
  EXPECT_EQ(unit.initiation_interval(),
            std::max({dist_iters, min_iters, add_iters}));
  // Latency bounded by the fully-parallel and fully-iterative extremes.
  EXPECT_GE(unit.latency_cycles(), 7);
  EXPECT_LE(unit.latency_cycles(), 27);
  // Energy per pixel stays within a plausible band around the Table-3
  // calibration (the arithmetic work is configuration-independent).
  EXPECT_GT(unit.energy_per_pixel_pj(), 15.0);
  EXPECT_LT(unit.energy_per_pixel_pj(), 25.0);
  // Area grows monotonically with each way count.
  if (d > 1) {
    EXPECT_GT(unit.area_mm2(), ClusterUnit({d - 1, m, a}).area_mm2());
  }
  if (a > 1) {
    EXPECT_GT(unit.area_mm2(), ClusterUnit({d, m, a - 1}).area_mm2());
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllWays, ClusterGridSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 5, 9),
                       ::testing::Values(1, 3, 9),
                       ::testing::Values(1, 2, 3, 6)));

TEST(ClusterUnit, InvalidWaysThrow) {
  EXPECT_THROW(ClusterUnit({0, 1, 1}), ContractViolation);
  EXPECT_THROW(ClusterUnit({1, 10, 1}), ContractViolation);
  EXPECT_THROW(ClusterUnit({1, 1, 7}), ContractViolation);
}

// -------------------------------------------------------------- DRAM model

TEST(DramModel, MoreBytesTakeLonger) {
  const DramModel dram;
  EXPECT_GT(dram.transfer_cycles(2e6, 4096), dram.transfer_cycles(1e6, 4096));
}

TEST(DramModel, LargerChunksAmortizeLatency) {
  const DramModel dram;
  double prev = dram.transfer_cycles(1e7, 512);
  for (const double chunk : {1024.0, 2048.0, 4096.0, 16384.0}) {
    const double cur = dram.transfer_cycles(1e7, chunk);
    EXPECT_LT(cur, prev);
    prev = cur;
  }
}

TEST(DramModel, BandwidthFloorHolds) {
  // Even with infinite chunks, the burst time remains.
  const DramModel dram;
  const double bytes = 1e8;
  EXPECT_GE(dram.transfer_cycles(bytes, 1e9), bytes / dram.bytes_per_cycle);
}

TEST(DramModel, ZeroBytesIsFree) {
  EXPECT_DOUBLE_EQ(DramModel{}.transfer_cycles(0.0, 4096), 0.0);
}

// ------------------------------------------------------- accelerator model

TEST(AcceleratorModel, Table4HdAnchors) {
  const AcceleratorDesign design;  // defaults = the paper's HD design point
  const FrameReport r = AcceleratorModel(design).evaluate();

  expect_within(r.total_s * 1e3, 32.8, 0.03, "latency");        // 32.8 ms
  EXPECT_TRUE(r.real_time());                                    // 30.5 fps
  expect_within(r.energy_per_frame_j * 1e3, 1.6, 0.05, "energy");  // 1.6 mJ
  expect_within(r.average_power_w * 1e3, 49.0, 0.05, "power");     // 49 mW
  expect_within(r.area_mm2, 0.066, 0.03, "area");                  // 0.066 mm2
  expect_within(r.fps_per_mm2, 461.0, 0.05, "fps/mm2");            // 461
}

TEST(AcceleratorModel, HdLatencyDecomposition) {
  // Section 7: color conversion 1.4 ms; cluster update 31.4 ms of which
  // memory 11.1 ms and computation 20.3 ms.
  const FrameReport r = AcceleratorModel(AcceleratorDesign{}).evaluate();
  expect_within(r.color_conversion_s * 1e3, 1.4, 0.10, "conv");
  expect_within(r.cluster_memory_s * 1e3, 11.1, 0.05, "memory");
  expect_within((r.cluster_compute_s + r.center_update_s) * 1e3, 20.3, 0.05,
                "compute");
  // "memory access takes 35% of total execution time" (Section 6.3).
  EXPECT_GT(r.memory_time_fraction, 0.30);
  EXPECT_LT(r.memory_time_fraction, 0.38);
}

TEST(AcceleratorModel, Fig6BufferSweepShape) {
  // Fig. 6: 4 kB is the smallest per-channel buffer achieving 30 fps;
  // larger buffers improve only marginally.
  const auto eval = [](double bytes) {
    AcceleratorDesign d;
    d.channel_buffer_bytes = bytes;
    return AcceleratorModel(d).evaluate();
  };
  const FrameReport k1 = eval(1024), k2 = eval(2048), k4 = eval(4096),
                    k8 = eval(8192), k128 = eval(131072);
  EXPECT_FALSE(k1.real_time());
  EXPECT_FALSE(k2.real_time());
  EXPECT_TRUE(k4.real_time());
  EXPECT_TRUE(k8.real_time());
  // Monotone improvement with diminishing returns.
  EXPECT_GT(k1.total_s, k2.total_s);
  EXPECT_GT(k2.total_s, k4.total_s);
  EXPECT_GT(k4.total_s, k8.total_s);
  EXPECT_GT(k4.total_s - k8.total_s, k8.total_s - k128.total_s);
  // The whole sweep spans only a few ms (Fig. 6's 31.5-34.5 axis).
  EXPECT_LT(k1.total_s - k128.total_s, 4e-3);
}

TEST(AcceleratorModel, Table4LowerResolutions) {
  // 1280x768 and 640x480 at 1 kB buffers: smaller area, higher fps
  // (Table 4's scaling story; absolute latencies deviate, EXPERIMENTS.md).
  AcceleratorDesign hd;  // 4 kB
  AcceleratorDesign p720;
  p720.width = 1280;
  p720.height = 768;
  p720.channel_buffer_bytes = 1024;
  AcceleratorDesign vga;
  vga.width = 640;
  vga.height = 480;
  vga.channel_buffer_bytes = 1024;

  const FrameReport r_hd = AcceleratorModel(hd).evaluate();
  const FrameReport r_720 = AcceleratorModel(p720).evaluate();
  const FrameReport r_vga = AcceleratorModel(vga).evaluate();

  expect_within(r_720.area_mm2, 0.053, 0.03, "720p area");
  expect_within(r_vga.area_mm2, 0.053, 0.03, "VGA area");
  EXPECT_GT(r_720.fps, r_hd.fps);
  EXPECT_GT(r_vga.fps, r_720.fps);
  EXPECT_LT(r_720.energy_per_frame_j, r_hd.energy_per_frame_j);
  EXPECT_LT(r_vga.energy_per_frame_j, r_720.energy_per_frame_j);
  EXPECT_GT(r_vga.fps_per_mm2, r_hd.fps_per_mm2);
}

TEST(AcceleratorModel, OnChipStorageTiny) {
  // Table 5: ~20 kB on-chip storage versus megabytes in the GPUs.
  const FrameReport r = AcceleratorModel(AcceleratorDesign{}).evaluate();
  EXPECT_LT(r.onchip_storage_bytes, 24.0 * 1024.0);
  EXPECT_GT(r.onchip_storage_bytes, 12.0 * 1024.0);
}

TEST(AcceleratorModel, MultiCoreScalesCompute) {
  AcceleratorDesign one;
  AcceleratorDesign two = one;
  two.num_cores = 2;
  const FrameReport r1 = AcceleratorModel(one).evaluate();
  const FrameReport r2 = AcceleratorModel(two).evaluate();
  EXPECT_LT(r2.cluster_compute_s, r1.cluster_compute_s);
  EXPECT_GT(r2.area_mm2, r1.area_mm2);
  // Memory time is unchanged: the second core saturates on bandwidth.
  EXPECT_DOUBLE_EQ(r2.cluster_memory_s, r1.cluster_memory_s);
}

TEST(AcceleratorModel, DramDeviceEnergyDominatesCompute) {
  // The Section-4.2 architectural argument: off-chip DRAM device energy
  // dwarfs on-chip compute energy.
  const FrameReport r = AcceleratorModel(AcceleratorDesign{}).evaluate();
  EXPECT_GT(r.dram_device_energy_j, r.cluster_energy_j);
}

TEST(AcceleratorModel, DvfsLowersEnergyAtSameClock) {
  AcceleratorDesign nominal;
  AcceleratorDesign scaled = nominal;
  scaled.voltage_v = 0.55;
  const FrameReport rn = AcceleratorModel(nominal).evaluate();
  const FrameReport rs = AcceleratorModel(scaled).evaluate();
  EXPECT_DOUBLE_EQ(rs.total_s, rn.total_s);  // timing model is voltage-free
  EXPECT_LT(rs.energy_per_frame_j, rn.energy_per_frame_j);
  // Dynamic components scale ~(0.55/0.72)^2 = 0.583.
  EXPECT_NEAR(rs.cluster_energy_j / rn.cluster_energy_j, 0.583, 0.01);
}

TEST(AcceleratorModel, DvfsPlusClockScalingStaysRealTimeAtVga) {
  // "The accelerator can scale gracefully down to lower resolution streams
  // by reducing the buffer sizes and ultimately reducing the clock rate"
  // (Section 6.3): VGA at less than half the clock and 0.55 V still makes
  // 30 fps, at a fraction of the energy.
  AcceleratorDesign vga;
  vga.width = 640;
  vga.height = 480;
  vga.channel_buffer_bytes = 1024;
  const FrameReport full = AcceleratorModel(vga).evaluate();

  AcceleratorDesign slow = vga;
  slow.clock_hz = 0.64e9;
  slow.voltage_v = 0.55;
  const FrameReport r = AcceleratorModel(slow).evaluate();
  EXPECT_TRUE(r.real_time());
  EXPECT_LT(r.energy_per_frame_j, full.energy_per_frame_j);
}

TEST(AcceleratorModel, InvalidVoltageThrows) {
  AcceleratorDesign d;
  d.voltage_v = 1.2;
  EXPECT_THROW(AcceleratorModel{d}, ContractViolation);
  d.voltage_v = 0.2;
  EXPECT_THROW(AcceleratorModel{d}, ContractViolation);
}

TEST(AcceleratorModel, InvalidDesignThrows) {
  AcceleratorDesign d;
  d.channel_buffer_bytes = 16;
  EXPECT_THROW(AcceleratorModel{d}, ContractViolation);
  d = AcceleratorDesign{};
  d.subsample_ratio = 0.0;
  EXPECT_THROW(AcceleratorModel{d}, ContractViolation);
}

// ---------------------------------------------------------------- Table 5

TEST(GpuReference, PublishedCells) {
  const GpuReference k20 = tesla_k20();
  EXPECT_DOUBLE_EQ(k20.average_power_w, 86.0);
  EXPECT_DOUBLE_EQ(k20.latency_ms, 22.3);
  EXPECT_EQ(k20.core_count, 2496);
  const GpuReference tk1 = tegra_k1();
  EXPECT_DOUBLE_EQ(tk1.average_power_w, 0.332);
  EXPECT_DOUBLE_EQ(tk1.latency_ms, 2713.0);
}

TEST(GpuReference, NormalizationMatchesPaper) {
  // Paper Table 5: K20 normalized 39 W, TK1 normalized 150 mW.
  expect_within(normalized_power_w(tesla_k20()), 39.0, 0.02, "K20 power");
  expect_within(normalized_power_w(tegra_k1()) * 1e3, 150.0, 0.02, "TK1 power");
  // Energy/frame: 867 mJ and 407 mJ.
  expect_within(normalized_energy_per_frame_j(tesla_k20()) * 1e3, 867.0, 0.02,
                "K20 energy");
  expect_within(normalized_energy_per_frame_j(tegra_k1()) * 1e3, 407.0, 0.02,
                "TK1 energy");
}

TEST(GpuReference, EfficiencyRatiosMatchAbstract) {
  // ">500x more energy efficient than K20, >250x more than TK1" at 30 fps.
  const FrameReport r = AcceleratorModel(AcceleratorDesign{}).evaluate();
  const double vs_k20 =
      normalized_energy_per_frame_j(tesla_k20()) / r.energy_per_frame_j;
  const double vs_tk1 =
      normalized_energy_per_frame_j(tegra_k1()) / r.energy_per_frame_j;
  EXPECT_GT(vs_k20, 500.0);
  EXPECT_GT(vs_tk1, 250.0);
}

// --------------------------------------------------------------------- DSE

TEST(Dse, ClusterSweepPicks996) {
  const DesignSpaceExplorer dse{AcceleratorDesign{}};
  const auto points = dse.sweep_cluster_configs(
      {ClusterUnitConfig::way_111(), ClusterUnitConfig::way_911(),
       ClusterUnitConfig::way_191(), ClusterUnitConfig::way_116(),
       ClusterUnitConfig::way_996()});
  const DsePoint* best = DesignSpaceExplorer::best_real_time(points);
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->design.cluster.name(), "9-9-6");  // Section 6.2's choice
}

TEST(Dse, OnlyFullyPipelinedConfigIsRealTime) {
  const DesignSpaceExplorer dse{AcceleratorDesign{}};
  const auto points = dse.sweep_cluster_configs(
      {ClusterUnitConfig::way_111(), ClusterUnitConfig::way_996()});
  EXPECT_FALSE(points[0].report.real_time());  // 9 cycles/pixel: ~9x too slow
  EXPECT_TRUE(points[1].report.real_time());
}

TEST(Dse, BufferSweepPicks4kB) {
  const DesignSpaceExplorer dse{AcceleratorDesign{}};
  const auto points =
      dse.sweep_buffer_sizes({1024, 2048, 4096, 8192, 16384, 32768});
  const DsePoint* best = DesignSpaceExplorer::best_real_time(points);
  ASSERT_NE(best, nullptr);
  // Minimum-energy real-time point: the smallest real-time buffer wins
  // because bigger pads cost leakage+access energy for marginal time gains
  // — the paper's Section 6.3 reasoning for choosing 4 kB.
  EXPECT_DOUBLE_EQ(best->design.channel_buffer_bytes, 4096.0);
}

TEST(Dse, FullGridContainsAllCombinations) {
  const DesignSpaceExplorer dse{AcceleratorDesign{}};
  const auto points = dse.full_grid(
      {ClusterUnitConfig::way_111(), ClusterUnitConfig::way_996()},
      {1024, 4096});
  EXPECT_EQ(points.size(), 4u);
}

TEST(Dse, BestIsNullWhenNothingMeetsRealTime) {
  AcceleratorDesign slow;
  slow.cluster = ClusterUnitConfig::way_111();
  const DesignSpaceExplorer dse{slow};
  const auto points = dse.sweep_buffer_sizes({1024, 4096});
  EXPECT_EQ(DesignSpaceExplorer::best_real_time(points), nullptr);
}

TEST(Dse, CoreSweepMonotoneFps) {
  const DesignSpaceExplorer dse{AcceleratorDesign{}};
  const auto points = dse.sweep_cores({1, 2, 4});
  EXPECT_LT(points[0].report.fps, points[1].report.fps);
  EXPECT_LT(points[1].report.fps, points[2].report.fps);
}

// ----------------------------------------------------------- cycle simulator

TEST(CycleSim, AgreesWithAnalyticalModelAtPaperPoint) {
  const AcceleratorDesign design;
  const double analytic = AcceleratorModel(design).evaluate().total_s;
  const double simulated = CycleSimulator(design).run().seconds(design.clock_hz);
  EXPECT_NEAR(simulated, analytic, analytic * 0.03);
}

TEST(CycleSim, AgreesAcrossBufferSizes) {
  for (const double buffer : {1024.0, 4096.0, 16384.0, 65536.0}) {
    AcceleratorDesign d;
    d.channel_buffer_bytes = buffer;
    const double analytic = AcceleratorModel(d).evaluate().total_s;
    const double simulated = CycleSimulator(d).run().seconds(d.clock_hz);
    EXPECT_NEAR(simulated, analytic, analytic * 0.05) << "buffer " << buffer;
  }
}

TEST(CycleSim, CycleBreakdownSumsToTotal) {
  const AcceleratorDesign design;
  const CycleReport r = CycleSimulator(design).run();
  EXPECT_EQ(r.total_cycles, r.conv_cycles + r.cluster_pixel_cycles +
                                r.tile_overhead_cycles + r.center_update_cycles +
                                r.dram_stall_cycles);
}

TEST(CycleSim, ProcessesEveryTileEveryIteration) {
  AcceleratorDesign design;
  design.width = 640;
  design.height = 480;
  design.num_superpixels = 1000;
  const CycleReport r = CycleSimulator(design).run();
  EXPECT_EQ(r.tiles_processed, r.iterations * (r.tiles_processed / r.iterations));
  EXPECT_EQ(r.iterations,
            static_cast<std::uint64_t>(design.full_sweeps) * 2u);  // ratio 0.5
}

TEST(CycleSim, SmallerBufferMeansMoreStall) {
  AcceleratorDesign small;
  small.channel_buffer_bytes = 512;
  AcceleratorDesign big;
  big.channel_buffer_bytes = 16384;
  const CycleReport rs = CycleSimulator(small).run();
  const CycleReport rb = CycleSimulator(big).run();
  EXPECT_GT(rs.dram_stall_cycles, rb.dram_stall_cycles);
  // Compute-side cycles are buffer-independent.
  EXPECT_EQ(rs.cluster_pixel_cycles, rb.cluster_pixel_cycles);
  EXPECT_EQ(rs.center_update_cycles, rb.center_update_cycles);
}

TEST(CycleSim, FullSamplingRaisesPixelCyclesAndTraffic) {
  AcceleratorDesign half;  // default ratio 0.5
  AcceleratorDesign full = half;
  full.subsample_ratio = 1.0;
  full.full_sweeps = half.full_sweeps;  // same sweep count
  const CycleReport rh = CycleSimulator(half).run();
  const CycleReport rf = CycleSimulator(full).run();
  // Same total pixel visits (sweep parity) but half as many iterations for
  // full sampling, so less per-tile overhead and center-update work.
  EXPECT_NEAR(static_cast<double>(rf.cluster_pixel_cycles),
              static_cast<double>(rh.cluster_pixel_cycles),
              static_cast<double>(rh.cluster_pixel_cycles) * 0.01);
  EXPECT_LT(rf.center_update_cycles, rh.center_update_cycles);
}

TEST(CycleSim, InvalidDesignThrows) {
  AcceleratorDesign d;
  d.channel_buffer_bytes = 64;
  EXPECT_THROW(CycleSimulator{d}, ContractViolation);
}

// ------------------------------------------------------------ energy model

TEST(EnergyModel, DramIs2500xAdd8) {
  const EnergyModel& e = default_energy_model();
  EXPECT_DOUBLE_EQ(e.dram_device_pj_per_byte, 2500.0 * e.add8_pj);
}

TEST(EnergyModel, SramEnergyGrowsWithCapacity) {
  const EnergyModel& e = default_energy_model();
  EXPECT_LT(e.sram_access_pj_per_byte(1.0), e.sram_access_pj_per_byte(4.0));
  EXPECT_LT(e.sram_access_pj_per_byte(4.0), e.sram_access_pj_per_byte(128.0));
}

TEST(AreaModel, ScratchpadScalesLinearly) {
  const AreaModel& a = default_area_model();
  EXPECT_DOUBLE_EQ(a.scratchpad(8192.0), 2.0 * a.scratchpad(4096.0));
}

}  // namespace
}  // namespace sslic::hw

#include "image/io.h"

#include <cctype>
#include <fstream>
#include <stdexcept>

namespace sslic {
namespace {

[[noreturn]] void io_fail(const std::string& path, const std::string& why) {
  throw std::runtime_error("ppm i/o error (" + path + "): " + why);
}

// Reads the next header token, skipping whitespace and '#' comments.
std::string next_token(std::istream& in) {
  std::string token;
  int c = in.get();
  for (;;) {
    while (c != EOF && std::isspace(c)) c = in.get();
    if (c == '#') {
      while (c != EOF && c != '\n') c = in.get();
      continue;
    }
    break;
  }
  while (c != EOF && !std::isspace(c)) {
    token.push_back(static_cast<char>(c));
    c = in.get();
  }
  return token;
}

int parse_nonnegative(std::istream& in, const std::string& path,
                      const char* what) {
  const std::string tok = next_token(in);
  if (tok.empty()) io_fail(path, std::string("missing ") + what);
  int value = 0;
  for (const char ch : tok) {
    if (!std::isdigit(static_cast<unsigned char>(ch)))
      io_fail(path, std::string("non-numeric ") + what + ": " + tok);
    value = value * 10 + (ch - '0');
    if (value > 1 << 20) io_fail(path, std::string("absurd ") + what);
  }
  return value;
}

int parse_positive(std::istream& in, const std::string& path, const char* what) {
  const int value = parse_nonnegative(in, path, what);
  if (value <= 0) io_fail(path, std::string("non-positive ") + what);
  return value;
}

}  // namespace

RgbImage read_ppm(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) io_fail(path, "cannot open for reading");

  const std::string magic = next_token(in);
  if (magic != "P6" && magic != "P3") io_fail(path, "not a PPM (magic " + magic + ")");
  const int width = parse_positive(in, path, "width");
  const int height = parse_positive(in, path, "height");
  const int maxval = parse_positive(in, path, "maxval");
  if (maxval != 255) io_fail(path, "only maxval 255 supported");

  RgbImage image(width, height);
  if (magic == "P6") {
    // next_token already consumed the single whitespace byte after maxval.
    const std::size_t bytes = image.size() * 3;
    std::vector<char> buf(bytes);
    in.read(buf.data(), static_cast<std::streamsize>(bytes));
    if (static_cast<std::size_t>(in.gcount()) != bytes)
      io_fail(path, "truncated pixel data");
    for (std::size_t i = 0; i < image.size(); ++i) {
      image.pixels()[i] = {static_cast<std::uint8_t>(buf[3 * i]),
                           static_cast<std::uint8_t>(buf[3 * i + 1]),
                           static_cast<std::uint8_t>(buf[3 * i + 2])};
    }
  } else {
    for (std::size_t i = 0; i < image.size(); ++i) {
      const int r = parse_nonnegative(in, path, "red sample") & 0xff;
      const int g = parse_nonnegative(in, path, "green sample") & 0xff;
      const int b = parse_nonnegative(in, path, "blue sample") & 0xff;
      image.pixels()[i] = {static_cast<std::uint8_t>(r),
                           static_cast<std::uint8_t>(g),
                           static_cast<std::uint8_t>(b)};
    }
  }
  return image;
}

void write_ppm(const std::string& path, const RgbImage& image) {
  std::ofstream out(path, std::ios::binary);
  if (!out) io_fail(path, "cannot open for writing");
  out << "P6\n" << image.width() << ' ' << image.height() << "\n255\n";
  std::vector<char> buf(image.size() * 3);
  for (std::size_t i = 0; i < image.size(); ++i) {
    const Rgb8 p = image.pixels()[i];
    buf[3 * i] = static_cast<char>(p.r);
    buf[3 * i + 1] = static_cast<char>(p.g);
    buf[3 * i + 2] = static_cast<char>(p.b);
  }
  out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
  if (!out) io_fail(path, "write failed");
}

void write_pgm(const std::string& path, const Image<std::uint8_t>& image) {
  std::ofstream out(path, std::ios::binary);
  if (!out) io_fail(path, "cannot open for writing");
  out << "P5\n" << image.width() << ' ' << image.height() << "\n255\n";
  out.write(reinterpret_cast<const char*>(image.data()),
            static_cast<std::streamsize>(image.size()));
  if (!out) io_fail(path, "write failed");
}

Image<std::uint8_t> read_pgm(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) io_fail(path, "cannot open for reading");

  const std::string magic = next_token(in);
  if (magic != "P5" && magic != "P2") io_fail(path, "not a PGM (magic " + magic + ")");
  const int width = parse_positive(in, path, "width");
  const int height = parse_positive(in, path, "height");
  const int maxval = parse_positive(in, path, "maxval");
  if (maxval != 255) io_fail(path, "only maxval 255 supported");

  Image<std::uint8_t> image(width, height);
  if (magic == "P5") {
    // next_token consumed the single whitespace byte after maxval.
    in.read(reinterpret_cast<char*>(image.data()),
            static_cast<std::streamsize>(image.size()));
    if (static_cast<std::size_t>(in.gcount()) != image.size())
      io_fail(path, "truncated pixel data");
  } else {
    for (auto& px : image.pixels())
      px = static_cast<std::uint8_t>(parse_nonnegative(in, path, "sample") & 0xff);
  }
  return image;
}

void write_label_pgm(const std::string& path, const LabelImage& labels) {
  Image<std::uint8_t> grey(labels.width(), labels.height());
  for (std::size_t i = 0; i < labels.size(); ++i) {
    const auto folded = static_cast<std::uint32_t>(labels.pixels()[i]) * 2654435761u;
    grey.pixels()[i] = static_cast<std::uint8_t>((folded >> 24) & 0xff);
  }
  write_pgm(path, grey);
}

}  // namespace sslic

// Tests for src/metrics: undersegmentation error, boundary recall/precision,
// ASA, compactness (paper Section 3's quality metrics).
#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "metrics/segmentation_metrics.h"

namespace sslic {
namespace {

/// Left/right split ground truth on a w x h canvas.
LabelImage split_vertical(int w, int h, int split_x) {
  LabelImage gt(w, h, 0);
  for (int y = 0; y < h; ++y)
    for (int x = split_x; x < w; ++x) gt(x, y) = 1;
  return gt;
}

/// Regular grid superpixels with cells of size cw x ch.
LabelImage grid_labels(int w, int h, int cw, int ch) {
  LabelImage labels(w, h);
  const int nx = (w + cw - 1) / cw;
  for (int y = 0; y < h; ++y)
    for (int x = 0; x < w; ++x) labels(x, y) = (y / ch) * nx + (x / cw);
  return labels;
}

// ------------------------------------------------------------ OverlapTable

TEST(OverlapTable, CountsAndSizes) {
  const LabelImage gt = split_vertical(8, 4, 4);
  const LabelImage sp = split_vertical(8, 4, 2);
  const OverlapTable table(sp, gt);
  EXPECT_EQ(table.num_superpixels(), 2);
  EXPECT_EQ(table.num_regions(), 2);
  EXPECT_EQ(table.num_pixels(), 32u);
  EXPECT_EQ(table.superpixel_sizes()[0], 8);   // 2 columns x 4 rows
  EXPECT_EQ(table.superpixel_sizes()[1], 24);  // 6 columns x 4 rows
  EXPECT_EQ(table.region_sizes()[0], 16);
  // Overlaps: sp0 fully in gt0 (8), sp1 split 8/16 across gt0/gt1.
  ASSERT_EQ(table.overlaps().size(), 3u);
}

TEST(OverlapTable, MismatchedSizesThrow) {
  const LabelImage a(4, 4, 0);
  const LabelImage b(5, 4, 0);
  EXPECT_THROW(OverlapTable(a, b), ContractViolation);
}

TEST(OverlapTable, NegativeLabelThrows) {
  LabelImage a(2, 2, 0);
  LabelImage b(2, 2, 0);
  a(0, 0) = -3;
  EXPECT_THROW(OverlapTable(a, b), ContractViolation);
}

// --------------------------------------------------- undersegmentation err

TEST(Use, PerfectSegmentationIsZero) {
  const LabelImage gt = split_vertical(16, 8, 8);
  EXPECT_DOUBLE_EQ(undersegmentation_error(gt, gt), 0.0);
  EXPECT_DOUBLE_EQ(undersegmentation_error_min(gt, gt), 0.0);
}

TEST(Use, RefinementOfTruthIsZero) {
  // Superpixels strictly finer than ground truth never leak.
  const LabelImage gt = split_vertical(16, 8, 8);
  const LabelImage sp = grid_labels(16, 8, 4, 4);  // aligned to the split
  EXPECT_DOUBLE_EQ(undersegmentation_error(sp, gt), 0.0);
  EXPECT_DOUBLE_EQ(undersegmentation_error_min(sp, gt), 0.0);
}

TEST(Use, LeakingSuperpixelIsCharged) {
  const LabelImage gt = split_vertical(16, 8, 8);
  // One superpixel covering everything: maximal leak.
  const LabelImage sp(16, 8, 0);
  // Achanta USE: the superpixel is charged its full size |sp| = N against
  // both regions => 2N/N - 1 = 1.
  EXPECT_DOUBLE_EQ(undersegmentation_error(sp, gt), 1.0);
  // Min-variant: each of the two overlap pairs contributes
  // min(N/2, N - N/2) = N/2, so the total charge is N and USE_min = 1.
  EXPECT_NEAR(undersegmentation_error_min(sp, gt), 1.0, 1e-12);
}

TEST(Use, SmallLeakBelowThresholdIgnored) {
  // Superpixel leaks 1 pixel across the boundary: below the 5% threshold
  // it must not be charged by the Achanta variant but is charged (just 1px)
  // by the min variant.
  LabelImage gt = split_vertical(40, 10, 20);
  LabelImage sp = grid_labels(40, 10, 10, 10);  // 4 superpixels of 100 px
  // Move one boundary pixel of sp cell 1 into gt region 1's territory:
  sp(20, 0) = 1;  // cell index 2 pixel claimed by sp 1 -> sp1 leaks 1 px
  const double achanta = undersegmentation_error(sp, gt, 0.05);
  EXPECT_DOUBLE_EQ(achanta, 0.0);
  // Min-variant charges both overlap pairs of sp1: min(100,1) + min(1,100).
  const double min_variant = undersegmentation_error_min(sp, gt);
  EXPECT_NEAR(min_variant, 2.0 / 400.0, 1e-12);
}

TEST(Use, MonotoneInLeakSize) {
  const LabelImage gt = split_vertical(40, 10, 20);
  double prev = -1.0;
  for (const int shift : {0, 2, 4, 6}) {
    // Superpixels misaligned with the boundary by `shift` columns.
    const LabelImage sp = [&] {
      LabelImage s(40, 10, 0);
      for (int y = 0; y < 10; ++y)
        for (int x = 20 + shift; x < 40; ++x) s(x, y) = 1;
      return s;
    }();
    const double use = undersegmentation_error_min(sp, gt);
    EXPECT_GE(use, prev);
    prev = use;
  }
}

// ---------------------------------------------------------- boundary recall

TEST(BoundaryRecall, PerfectWhenIdentical) {
  const LabelImage gt = split_vertical(16, 8, 8);
  EXPECT_DOUBLE_EQ(boundary_recall(gt, gt, 0), 1.0);
}

TEST(BoundaryRecall, ZeroWhenNoBoundaries) {
  const LabelImage gt = split_vertical(32, 8, 16);
  const LabelImage sp(32, 8, 0);  // single superpixel: no boundaries at all
  EXPECT_DOUBLE_EQ(boundary_recall(sp, gt, 2), 0.0);
}

TEST(BoundaryRecall, ToleranceForgivesSmallOffsets) {
  const LabelImage gt = split_vertical(32, 8, 16);
  const LabelImage sp = split_vertical(32, 8, 18);  // boundary off by 2
  EXPECT_DOUBLE_EQ(boundary_recall(sp, gt, 0), 0.0);
  EXPECT_DOUBLE_EQ(boundary_recall(sp, gt, 3), 1.0);
}

TEST(BoundaryRecall, OneWhenTruthHasNoBoundary) {
  const LabelImage gt(8, 8, 0);
  const LabelImage sp = grid_labels(8, 8, 4, 4);
  EXPECT_DOUBLE_EQ(boundary_recall(sp, gt, 2), 1.0);  // vacuous recall
}

TEST(BoundaryRecall, MonotoneInTolerance) {
  const LabelImage gt = split_vertical(64, 16, 32);
  const LabelImage sp = split_vertical(64, 16, 37);
  double prev = -1.0;
  for (int tol = 0; tol <= 6; ++tol) {
    const double r = boundary_recall(sp, gt, tol);
    EXPECT_GE(r, prev);
    prev = r;
  }
  EXPECT_DOUBLE_EQ(prev, 1.0);
}

TEST(BoundaryPrecision, PenalizesExtraBoundaries) {
  const LabelImage gt = split_vertical(32, 32, 16);
  const LabelImage sp = grid_labels(32, 32, 4, 4);  // many extra boundaries
  EXPECT_LT(boundary_precision(sp, gt, 1), 0.6);
  EXPECT_DOUBLE_EQ(boundary_recall(sp, gt, 1), 1.0);
}

// -------------------------------------------------------------------- ASA

TEST(Asa, PerfectForRefinement) {
  const LabelImage gt = split_vertical(16, 8, 8);
  const LabelImage sp = grid_labels(16, 8, 4, 4);
  EXPECT_DOUBLE_EQ(achievable_segmentation_accuracy(sp, gt), 1.0);
}

TEST(Asa, HalfForMaximalConfusion) {
  const LabelImage gt = split_vertical(16, 8, 8);
  const LabelImage sp(16, 8, 0);  // one superpixel split 50/50
  EXPECT_DOUBLE_EQ(achievable_segmentation_accuracy(sp, gt), 0.5);
}

TEST(Asa, BetweenZeroAndOne) {
  const LabelImage gt = split_vertical(20, 10, 7);
  const LabelImage sp = grid_labels(20, 10, 6, 5);
  const double asa = achievable_segmentation_accuracy(sp, gt);
  EXPECT_GT(asa, 0.5);
  EXPECT_LE(asa, 1.0);
}

// ------------------------------------------------------------- compactness

TEST(Compactness, SquaresBeatStripes) {
  const LabelImage squares = grid_labels(32, 32, 8, 8);
  const LabelImage stripes = grid_labels(32, 32, 2, 32);
  EXPECT_GT(compactness(squares), compactness(stripes));
}

TEST(Compactness, InUnitInterval) {
  const LabelImage labels = grid_labels(30, 20, 7, 5);
  const double c = compactness(labels);
  EXPECT_GT(c, 0.0);
  EXPECT_LE(c, 1.0);
}

// -------------------------------------------------------- extended metrics

TEST(ExplainedVariation, PerfectWhenSuperpixelsMatchColorRegions) {
  LabImage lab(16, 8, LabF{20.0f, 0.0f, 0.0f});
  for (int y = 0; y < 8; ++y)
    for (int x = 8; x < 16; ++x) lab(x, y) = {80.0f, 10.0f, -10.0f};
  const LabelImage sp = split_vertical(16, 8, 8);
  EXPECT_NEAR(explained_variation(sp, lab), 1.0, 1e-12);
}

TEST(ExplainedVariation, ZeroWhenSuperpixelsIgnoreColor) {
  // Horizontal color split, horizontal-blind vertical superpixels that each
  // contain the same mix: means equal the global mean -> nothing explained.
  LabImage lab(16, 8, LabF{20.0f, 0.0f, 0.0f});
  for (int y = 4; y < 8; ++y)
    for (int x = 0; x < 16; ++x) lab(x, y) = {80.0f, 0.0f, 0.0f};
  const LabelImage sp = split_vertical(16, 8, 8);  // vertical split
  EXPECT_NEAR(explained_variation(sp, lab), 0.0, 1e-12);
}

TEST(ExplainedVariation, FlatImageIsFullyExplained) {
  const LabImage lab(8, 8, LabF{50.0f, 0.0f, 0.0f});
  const LabelImage sp = grid_labels(8, 8, 4, 4);
  EXPECT_DOUBLE_EQ(explained_variation(sp, lab), 1.0);
}

TEST(ExplainedVariation, MonotoneInPartitionRefinement) {
  // A finer partition can only explain at least as much variance.
  LabImage lab(32, 32);
  for (int y = 0; y < 32; ++y)
    for (int x = 0; x < 32; ++x)
      lab(x, y) = {static_cast<float>((x * 13 + y * 7) % 60), 0.0f, 0.0f};
  const double coarse = explained_variation(grid_labels(32, 32, 16, 16), lab);
  const double fine = explained_variation(grid_labels(32, 32, 4, 4), lab);
  EXPECT_GE(fine, coarse - 1e-12);
}

TEST(ContourDensity, CountsBoundaryFraction) {
  const LabelImage one(8, 8, 0);
  EXPECT_DOUBLE_EQ(contour_density(one), 0.0);
  const LabelImage split = split_vertical(8, 8, 4);
  EXPECT_DOUBLE_EQ(contour_density(split), 8.0 / 64.0);  // one column
  EXPECT_GT(contour_density(grid_labels(8, 8, 2, 2)),
            contour_density(grid_labels(8, 8, 4, 4)));
}

TEST(VariationOfInformation, ZeroForIdenticalUpToRelabeling) {
  const LabelImage a = split_vertical(16, 8, 8);
  LabelImage b = a;
  for (auto& v : b.pixels()) v = 1 - v;  // swap labels
  EXPECT_NEAR(variation_of_information(a, b), 0.0, 1e-12);
}

TEST(VariationOfInformation, SymmetricAndPositiveForDifferentPartitions) {
  const LabelImage a = split_vertical(16, 8, 8);
  const LabelImage b = grid_labels(16, 8, 4, 4);
  const double ab = variation_of_information(a, b);
  const double ba = variation_of_information(b, a);
  EXPECT_GT(ab, 0.0);
  EXPECT_NEAR(ab, ba, 1e-12);
}

TEST(VariationOfInformation, SingleLabelVsSplitIsEntropy) {
  // VI(trivial, 50/50 split) = H(split) = ln 2.
  const LabelImage trivial(16, 8, 0);
  const LabelImage split = split_vertical(16, 8, 8);
  EXPECT_NEAR(variation_of_information(trivial, split), std::log(2.0), 1e-12);
}

// ---------------------------------------------------- multi-annotator eval

TEST(MultiGt, SingleAnnotatorMatchesScalarMetrics) {
  const LabelImage gt = split_vertical(32, 16, 16);
  const LabelImage sp = grid_labels(32, 16, 8, 8);
  const MultiGroundTruthQuality q = evaluate_against_annotators(sp, {gt}, 2);
  EXPECT_EQ(q.annotators, 1);
  EXPECT_DOUBLE_EQ(q.use_mean, undersegmentation_error(sp, gt));
  EXPECT_DOUBLE_EQ(q.use_best, q.use_mean);
  EXPECT_DOUBLE_EQ(q.recall_mean, boundary_recall(sp, gt, 2));
  EXPECT_DOUBLE_EQ(q.asa_mean, achievable_segmentation_accuracy(sp, gt));
}

TEST(MultiGt, BestBoundsMean) {
  const LabelImage sp = grid_labels(32, 16, 8, 8);
  const std::vector<LabelImage> truths = {split_vertical(32, 16, 16),
                                          split_vertical(32, 16, 13),
                                          split_vertical(32, 16, 20)};
  const MultiGroundTruthQuality q = evaluate_against_annotators(sp, truths, 2);
  EXPECT_EQ(q.annotators, 3);
  EXPECT_LE(q.use_best, q.use_mean);
  EXPECT_GE(q.recall_best, q.recall_mean);
}

TEST(MultiGt, EmptyAnnotatorListThrows) {
  const LabelImage sp = grid_labels(8, 8, 4, 4);
  EXPECT_THROW(evaluate_against_annotators(sp, {}), ContractViolation);
}

// ------------------------------------------------------------ count_labels

TEST(CountLabels, CountsDistinct) {
  LabelImage labels(4, 1, 0);
  labels(1, 0) = 5;
  labels(2, 0) = 5;
  labels(3, 0) = 2;
  EXPECT_EQ(count_labels(labels), 3);
}

// Parameterized sweep: USE and recall behave sanely across grid coarseness.
class GridCoarsenessSweep : public ::testing::TestWithParam<int> {};

TEST_P(GridCoarsenessSweep, MetricsInRange) {
  const int cell = GetParam();
  const LabelImage gt = split_vertical(48, 24, 20);
  const LabelImage sp = grid_labels(48, 24, cell, cell);
  const double use = undersegmentation_error(sp, gt);
  const double use_min = undersegmentation_error_min(sp, gt);
  const double recall = boundary_recall(sp, gt, 2);
  EXPECT_GE(use, 0.0);
  EXPECT_GE(use_min, 0.0);
  EXPECT_LE(use_min, 0.5);
  EXPECT_GE(recall, 0.0);
  EXPECT_LE(recall, 1.0);
  // The min variant is never more pessimistic than Achanta's.
  EXPECT_LE(use_min, use + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Cells, GridCoarsenessSweep,
                         ::testing::Values(2, 3, 4, 6, 8, 12));

}  // namespace
}  // namespace sslic

// Unit tests for src/image: containers, PPM/PGM I/O, gradients, drawing.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "image/draw.h"
#include "image/gradient.h"
#include "image/image.h"
#include "image/io.h"

namespace sslic {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// -------------------------------------------------------------------- Image

TEST(Image, ConstructionFills) {
  Image<int> img(4, 3, 7);
  EXPECT_EQ(img.width(), 4);
  EXPECT_EQ(img.height(), 3);
  EXPECT_EQ(img.size(), 12u);
  for (int y = 0; y < 3; ++y)
    for (int x = 0; x < 4; ++x) EXPECT_EQ(img(x, y), 7);
}

TEST(Image, ViewAliasesStorage) {
  Image<int> img(3, 3, 0);
  img.view()(1, 2) = 5;
  EXPECT_EQ(img(1, 2), 5);
}

TEST(Image, EqualityComparesContents) {
  Image<int> a(2, 2, 1), b(2, 2, 1);
  EXPECT_EQ(a, b);
  b(0, 0) = 2;
  EXPECT_FALSE(a == b);
}

TEST(Image, FillOverwrites) {
  Image<int> img(2, 2, 1);
  img.fill(9);
  EXPECT_EQ(img(1, 1), 9);
}

// ----------------------------------------------------------------- PPM I/O

TEST(PpmIo, RoundTripBinary) {
  RgbImage img(5, 4);
  for (int y = 0; y < 4; ++y)
    for (int x = 0; x < 5; ++x)
      img(x, y) = {static_cast<std::uint8_t>(x * 50),
                   static_cast<std::uint8_t>(y * 60),
                   static_cast<std::uint8_t>(x + y)};
  const std::string path = temp_path("sslic_roundtrip.ppm");
  write_ppm(path, img);
  const RgbImage back = read_ppm(path);
  EXPECT_EQ(img, back);
  std::remove(path.c_str());
}

TEST(PpmIo, ReadsAsciiP3) {
  const std::string path = temp_path("sslic_ascii.ppm");
  {
    std::ofstream out(path);
    out << "P3\n# comment line\n2 1\n255\n255 0 0  0 255 0\n";
  }
  const RgbImage img = read_ppm(path);
  EXPECT_EQ(img.width(), 2);
  EXPECT_EQ(img.height(), 1);
  EXPECT_EQ(img(0, 0), (Rgb8{255, 0, 0}));
  EXPECT_EQ(img(1, 0), (Rgb8{0, 255, 0}));
  std::remove(path.c_str());
}

TEST(PpmIo, MissingFileThrows) {
  EXPECT_THROW(read_ppm("/nonexistent/definitely_missing.ppm"),
               std::runtime_error);
}

TEST(PpmIo, BadMagicThrows) {
  const std::string path = temp_path("sslic_bad.ppm");
  {
    std::ofstream out(path);
    out << "Q9\n2 2\n255\n";
  }
  EXPECT_THROW(read_ppm(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(PpmIo, TruncatedPixelDataThrows) {
  const std::string path = temp_path("sslic_trunc.ppm");
  {
    std::ofstream out(path, std::ios::binary);
    out << "P6\n4 4\n255\n";
    out << "onlyafewbytes";
  }
  EXPECT_THROW(read_ppm(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(PgmIo, WritesLabelMap) {
  LabelImage labels(4, 4, 0);
  labels(2, 2) = 3;
  const std::string path = temp_path("sslic_labels.pgm");
  write_label_pgm(path, labels);
  std::ifstream in(path, std::ios::binary);
  std::string magic;
  in >> magic;
  EXPECT_EQ(magic, "P5");
  std::remove(path.c_str());
}

// ---------------------------------------------------------------- gradient

TEST(Gradient, FlatImageHasZeroGradient) {
  LabImage lab(8, 8, LabF{50.0f, 0.0f, 0.0f});
  const Image<float> g = lab_gradient_magnitude(lab);
  for (const float v : g.pixels()) EXPECT_FLOAT_EQ(v, 0.0f);
}

TEST(Gradient, VerticalEdgeDetected) {
  LabImage lab(8, 8, LabF{20.0f, 0.0f, 0.0f});
  for (int y = 0; y < 8; ++y)
    for (int x = 4; x < 8; ++x) lab(x, y) = {80.0f, 0.0f, 0.0f};
  const Image<float> g = lab_gradient_magnitude(lab);
  // Gradient peaks on the columns adjacent to the edge.
  EXPECT_GT(g(4, 4), g(1, 4));
  EXPECT_GT(g(3, 4), g(6, 4));
}

TEST(Gradient, ArgminAvoidsEdgePixel) {
  Image<float> g(8, 8, 1.0f);
  g(4, 4) = 100.0f;  // high-gradient pixel
  g(5, 4) = 0.1f;    // low-gradient neighbour
  const Point p = argmin_gradient_3x3(g, 4, 4);
  EXPECT_EQ(p.x, 5);
  EXPECT_EQ(p.y, 4);
}

TEST(Gradient, ArgminClampsNearBorder) {
  Image<float> g(8, 8, 1.0f);
  const Point p = argmin_gradient_3x3(g, 0, 0);
  EXPECT_GE(p.x, 0);
  EXPECT_GE(p.y, 0);
  EXPECT_LT(p.x, 8);
  EXPECT_LT(p.y, 8);
}

TEST(Gradient, SobelFlatIsZero) {
  Image<std::uint8_t> grey(6, 6, 100);
  const Image<float> g = sobel_magnitude(grey);
  for (const float v : g.pixels()) EXPECT_FLOAT_EQ(v, 0.0f);
}

// -------------------------------------------------------------------- draw

TEST(Draw, BoundaryMaskMarksLabelChanges) {
  LabelImage labels(4, 2, 0);
  labels(2, 0) = labels(3, 0) = labels(2, 1) = labels(3, 1) = 1;
  const Image<std::uint8_t> mask = boundary_mask(labels);
  EXPECT_EQ(mask(1, 0), 1);  // right neighbour differs
  EXPECT_EQ(mask(0, 0), 0);
  EXPECT_EQ(mask(3, 1), 0);
}

TEST(Draw, OverlayPaintsBoundaries) {
  RgbImage img(4, 2, Rgb8{0, 0, 0});
  LabelImage labels(4, 2, 0);
  labels(2, 0) = labels(3, 0) = labels(2, 1) = labels(3, 1) = 1;
  const RgbImage out = overlay_boundaries(img, labels, {255, 0, 0});
  EXPECT_EQ(out(1, 0), (Rgb8{255, 0, 0}));
  EXPECT_EQ(out(0, 0), (Rgb8{0, 0, 0}));
}

TEST(Draw, MeanColorAbstractionAveragesRegions) {
  RgbImage img(4, 1);
  img(0, 0) = {10, 0, 0};
  img(1, 0) = {30, 0, 0};
  img(2, 0) = {100, 200, 0};
  img(3, 0) = {100, 200, 0};
  LabelImage labels(4, 1, 0);
  labels(2, 0) = labels(3, 0) = 1;
  const RgbImage out = mean_color_abstraction(img, labels);
  EXPECT_EQ(out(0, 0).r, 20);
  EXPECT_EQ(out(1, 0).r, 20);
  EXPECT_EQ(out(2, 0), (Rgb8{100, 200, 0}));
}

TEST(Draw, MismatchedSizesThrow) {
  RgbImage img(4, 4);
  LabelImage labels(3, 3, 0);
  EXPECT_THROW(overlay_boundaries(img, labels), ContractViolation);
  EXPECT_THROW(mean_color_abstraction(img, labels), ContractViolation);
}

}  // namespace
}  // namespace sslic

// The Cluster Update Unit's datapath blocks in synthesizable-C style
// (paper Fig. 4): pixel/center register files, the bank of nine color
// distance calculators, the 9:1 minimum function, and the sigma register
// file. Everything is fixed-size, allocation-free, and integer-only — the
// shapes Catapult maps to registers and combinational logic.
#pragma once

#include <array>
#include <cstdint>

#include "common/check.h"
#include "slic/hw_datapath.h"

namespace sslic::hls {

/// The five 8-bit pixel registers of Fig. 4: L, a, b plus the pixel
/// coordinates supplied by the FSM.
struct PixelRegs {
  std::uint8_t L = 0;
  std::uint8_t a = 0;
  std::uint8_t b = 0;
  std::int32_t x = 0;
  std::int32_t y = 0;
};

/// One center's five registers (Lab8 color + position).
struct CenterRegs {
  std::int32_t L = 0;
  std::int32_t a = 0;
  std::int32_t b = 0;
  std::int32_t x = 0;
  std::int32_t y = 0;
  std::int32_t global_id = -1;  ///< which SP these registers currently hold
};

/// The 9-entry center register file ("45 (5x9) registers", Section 4.3).
class CenterRegisterFile {
 public:
  void load(int slot, const CenterRegs& regs) {
    SSLIC_DCHECK(slot >= 0 && slot < 9);
    regs_[static_cast<std::size_t>(slot)] = regs;
  }
  [[nodiscard]] const CenterRegs& at(int slot) const {
    SSLIC_DCHECK(slot >= 0 && slot < 9);
    return regs_[static_cast<std::size_t>(slot)];
  }

 private:
  std::array<CenterRegs, 9> regs_{};
};

/// One color distance calculator (Fig. 4 instantiates nine): Eq. 5 in
/// integer arithmetic, optionally reduced to an n-bit distance register.
struct ColorDistanceCalculator {
  std::int32_t weight_q8 = 64;  ///< round(m^2/S^2 * 256)
  int register_bits = 0;        ///< 0 = exact; 8 models the paper's register
  int register_shift = 0;

  [[nodiscard]] std::int32_t compute(const PixelRegs& pixel,
                                     const CenterRegs& center) const {
    const Lab8 color{pixel.L, pixel.a, pixel.b};
    const HwCenter hw_center{center.L, center.a, center.b, center.x, center.y};
    return HwSlic::quantize_distance(
        HwSlic::integer_distance(color, pixel.x, pixel.y, hw_center, weight_q8),
        register_bits, register_shift);
  }
};

/// The 9:1 minimum function: returns the slot of the smallest distance,
/// lowest slot winning ties (as a comparator tree does).
class MinimumFunction9 {
 public:
  [[nodiscard]] static int select(const std::array<std::int32_t, 9>& distances) {
    int best_slot = 0;
    std::int32_t best = distances[0];
    for (int slot = 1; slot < 9; ++slot) {
      if (distances[static_cast<std::size_t>(slot)] < best) {
        best = distances[static_cast<std::size_t>(slot)];
        best_slot = slot;
      }
    }
    return best_slot;
  }
};

/// One sigma register: six fields (Section 4.3) — accumulated L, a, b,
/// x, y and the member-pixel count.
struct SigmaRegs {
  std::int64_t L = 0;
  std::int64_t a = 0;
  std::int64_t b = 0;
  std::int64_t x = 0;
  std::int64_t y = 0;
  std::int64_t count = 0;

  void accumulate(const PixelRegs& pixel) {
    L += pixel.L;
    a += pixel.a;
    b += pixel.b;
    x += pixel.x;
    y += pixel.y;
    count += 1;
  }

  SigmaRegs& operator+=(const SigmaRegs& other) {
    L += other.L;
    a += other.a;
    b += other.b;
    x += other.x;
    y += other.y;
    count += other.count;
    return *this;
  }

  void clear() { *this = SigmaRegs{}; }
};

/// The cluster update unit's local 9-entry sigma register file; spilled to
/// the center update unit after each tile.
class SigmaRegisterFile {
 public:
  void clear() {
    for (auto& s : regs_) s.clear();
  }
  void accumulate(int slot, const PixelRegs& pixel) {
    SSLIC_DCHECK(slot >= 0 && slot < 9);
    regs_[static_cast<std::size_t>(slot)].accumulate(pixel);
  }
  [[nodiscard]] const SigmaRegs& at(int slot) const {
    SSLIC_DCHECK(slot >= 0 && slot < 9);
    return regs_[static_cast<std::size_t>(slot)];
  }

 private:
  std::array<SigmaRegs, 9> regs_{};
};

/// The center update unit's divider: rounded integer division, one field
/// at a time (iterative in hardware).
struct CenterUpdateDivider {
  [[nodiscard]] static std::int32_t divide(std::int64_t sum, std::int64_t count) {
    SSLIC_DCHECK(count > 0);
    return static_cast<std::int32_t>((sum + count / 2) / count);
  }
};

}  // namespace sslic::hls

// External-memory model (paper Section 6.3).
//
// The paper assumes a peak external bandwidth of 256 bits per interface
// cycle with a 50-cycle access latency, and observes that at the chosen
// 4 kB channel buffers memory access is ~35% of execution time. A 256-bit
// datapath at the 1.6 GHz core clock (51.2 GB/s) would make memory time
// negligible and contradict that 35% figure, so — as EXPERIMENTS.md
// documents — we interpret the interface as a mobile-class LPDDR channel:
// 256 bits per *interface* cycle at 400 MHz, i.e. 12.8 GB/s effective
// (8 bytes per core cycle at 1.6 GHz).
//
// Transfer model: the scratch-pad buffers are filled in chunks of the
// per-channel buffer size; each fill pays the access latency (partially
// hidden by prefetch) plus the burst time at peak bandwidth. Larger
// buffers amortize the latency over more bytes — the Fig. 6 effect.
#pragma once

#include <cstdint>

namespace sslic::hw {

struct DramModel {
  /// Effective peak bandwidth in bytes per core cycle (8 B/cycle at
  /// 1.6 GHz = 12.8 GB/s, LPDDR3 class).
  double bytes_per_cycle = 8.0;
  /// Access latency per buffer fill, core cycles (paper: 50).
  double latency_cycles = 50.0;
  /// Fraction of the fill latency hidden by prefetching the next chunk
  /// while the current one is processed.
  double latency_hidden_fraction = 0.35;

  /// Core cycles to move `total_bytes` using fills of `chunk_bytes`.
  [[nodiscard]] double transfer_cycles(double total_bytes,
                                       double chunk_bytes) const {
    if (total_bytes <= 0.0) return 0.0;
    const double chunk = chunk_bytes < 32.0 ? 32.0 : chunk_bytes;
    const double fills = total_bytes / chunk;
    const double exposed_latency =
        latency_cycles * (1.0 - latency_hidden_fraction);
    return total_bytes / bytes_per_cycle + fills * exposed_latency;
  }

  /// Seconds for the same transfer at `clock_hz`.
  [[nodiscard]] double transfer_seconds(double total_bytes, double chunk_bytes,
                                        double clock_hz) const {
    return transfer_cycles(total_bytes, chunk_bytes) / clock_hz;
  }
};

const DramModel& default_dram_model();

}  // namespace sslic::hw

#include "image/gradient.h"

#include <algorithm>
#include <cmath>

namespace sslic {

Image<float> lab_gradient_magnitude(const LabImage& lab) {
  Image<float> grad;
  lab_gradient_magnitude(lab, grad);
  return grad;
}

void lab_gradient_magnitude(const LabImage& lab, Image<float>& grad) {
  const int w = lab.width();
  const int h = lab.height();
  if (grad.width() != w || grad.height() != h) grad = Image<float>(w, h);
  const auto view = lab.view();
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      const LabF& xp = view.at_clamped(x + 1, y);
      const LabF& xm = view.at_clamped(x - 1, y);
      const LabF& yp = view.at_clamped(x, y + 1);
      const LabF& ym = view.at_clamped(x, y - 1);
      const float dx_l = xp.L - xm.L, dx_a = xp.a - xm.a, dx_b = xp.b - xm.b;
      const float dy_l = yp.L - ym.L, dy_a = yp.a - ym.a, dy_b = yp.b - ym.b;
      grad(x, y) = dx_l * dx_l + dx_a * dx_a + dx_b * dx_b + dy_l * dy_l +
                   dy_a * dy_a + dy_b * dy_b;
    }
  }
}

Image<float> sobel_magnitude(const Image<std::uint8_t>& grey) {
  const int w = grey.width();
  const int h = grey.height();
  Image<float> grad(w, h);
  const auto view = grey.view();
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      const auto px = [&](int dx, int dy) {
        return static_cast<float>(view.at_clamped(x + dx, y + dy));
      };
      const float gx = (px(1, -1) + 2.0f * px(1, 0) + px(1, 1)) -
                       (px(-1, -1) + 2.0f * px(-1, 0) + px(-1, 1));
      const float gy = (px(-1, 1) + 2.0f * px(0, 1) + px(1, 1)) -
                       (px(-1, -1) + 2.0f * px(0, -1) + px(1, -1));
      grad(x, y) = std::sqrt(gx * gx + gy * gy);
    }
  }
  return grad;
}

Point argmin_gradient_3x3(const Image<float>& gradient, int x, int y) {
  const int w = gradient.width();
  const int h = gradient.height();
  // Clamp the centre so the full 3x3 window lies inside the image.
  const int cx = std::clamp(x, 1, std::max(1, w - 2));
  const int cy = std::clamp(y, 1, std::max(1, h - 2));
  Point best{cx, cy};
  float best_val = gradient(cx, cy);
  for (int dy = -1; dy <= 1; ++dy) {
    for (int dx = -1; dx <= 1; ++dx) {
      const int nx = cx + dx;
      const int ny = cy + dy;
      if (nx < 0 || nx >= w || ny < 0 || ny >= h) continue;
      if (gradient(nx, ny) < best_val) {
        best_val = gradient(nx, ny);
        best = {nx, ny};
      }
    }
  }
  return best;
}

}  // namespace sslic

#!/usr/bin/env python3
"""Bench regression gate: compare BENCH_*.json artifacts against baselines.

Every bench binary emits a normalized ``gate`` section (see
``bench/bench_common.h``, ``GateMetrics``)::

    "gate": {
      "schema_version": 1,
      "metrics": {
        "fused_ms_per_frame": {
          "value": 12.3, "unit": "ms",
          "direction": "lower_is_better", "tolerance": 0.10
        }, ...
      }
    }

plus a top-level ``machine`` block (CPU model, hardware threads, selected
SIMD ISA, kernel release, page size, cpufreq governor) that acts as the
machine fingerprint. This tool pairs each current artifact with the
checked-in baseline of the same name under ``bench/baselines/`` and fails
(exit 2) when any metric regresses beyond its tolerance in its bad
direction. Improvements beyond tolerance are reported but never fail.

Noise handling is two-level: each metric carries its own relative
tolerance (wall-clock metrics are wide, deterministic analytic metrics are
tight), and the recommended workflow feeds the gate median-of-N artifacts
(run the bench N times, pass ``--median-of`` the run directories or let the
bench itself report medians, as this repo's benches do).

Machine fingerprints guard against comparing apples to oranges:
``--fingerprint-policy strict`` fails on mismatch, ``warn`` (default)
reports and widens nothing, ``ignore`` skips the check. Wall-clock
comparisons across different CPU models are meaningless; CI pins the
runner type and uses ``warn`` so a fleet change is visible in the log.

Exit codes: 0 ok, 1 usage/IO error, 2 regression (or strict fingerprint
mismatch).

Usage:
  bench_gate.py --current DIR --baseline DIR [--report out.md]
                [--fingerprint-policy strict|warn|ignore]
                [--inject-slowdown BENCH:METRIC:FACTOR]
  bench_gate.py --self-test
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import tempfile

SCHEMA_VERSION = 1

# Fingerprint fields, in severity order. A cpu_model or simd mismatch makes
# wall-clock comparison meaningless; kernel/page-size/governor changes are
# softer but worth surfacing.
FINGERPRINT_FIELDS = (
    "cpu_model",
    "hardware_threads",
    "simd_isa_selected",
    "kernel_release",
    "page_size_bytes",
    "cpufreq_governor",
)


class GateError(Exception):
    pass


def load_artifact(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as err:
        raise GateError(f"{path}: unreadable artifact: {err}")
    gate = doc.get("gate")
    if not isinstance(gate, dict):
        return None  # artifact predates the gate schema; skipped
    version = gate.get("schema_version")
    if version != SCHEMA_VERSION:
        raise GateError(
            f"{path}: gate schema_version {version} (tool speaks {SCHEMA_VERSION})"
        )
    metrics = gate.get("metrics")
    if not isinstance(metrics, dict):
        raise GateError(f"{path}: gate.metrics missing")
    for name, m in metrics.items():
        for field in ("value", "unit", "direction", "tolerance"):
            if field not in m:
                raise GateError(f"{path}: metric {name!r} lacks {field!r}")
        if m["direction"] not in ("lower_is_better", "higher_is_better"):
            raise GateError(
                f"{path}: metric {name!r} direction {m['direction']!r} unknown"
            )
    return {"metrics": metrics, "machine": doc.get("machine", {})}


def discover(directory):
    """Maps bench name -> artifact path for every BENCH_*.json in directory."""
    found = {}
    try:
        entries = sorted(os.listdir(directory))
    except OSError as err:
        raise GateError(f"{directory}: {err}")
    for entry in entries:
        if entry.startswith("BENCH_") and entry.endswith(".json"):
            found[entry] = os.path.join(directory, entry)
    return found


def median_merge(artifacts):
    """Merges N same-bench artifacts into one by per-metric median."""
    merged = {"metrics": {}, "machine": artifacts[0]["machine"]}
    names = artifacts[0]["metrics"].keys()
    for name in names:
        entries = [a["metrics"][name] for a in artifacts if name in a["metrics"]]
        m = dict(entries[0])
        m["value"] = statistics.median(e["value"] for e in entries)
        merged["metrics"][name] = m
    return merged


def compare_fingerprint(name, baseline, current):
    mismatches = []
    base_machine = baseline.get("machine", {})
    cur_machine = current.get("machine", {})
    for field in FINGERPRINT_FIELDS:
        b, c = base_machine.get(field), cur_machine.get(field)
        if b is not None and c is not None and b != c:
            mismatches.append((name, field, b, c))
    return mismatches


def compare_metrics(name, baseline, current):
    """Returns a list of row dicts, one per metric present in both."""
    rows = []
    base_metrics = baseline["metrics"]
    cur_metrics = current["metrics"]
    for metric, base in sorted(base_metrics.items()):
        cur = cur_metrics.get(metric)
        if cur is None:
            rows.append({
                "bench": name, "metric": metric, "status": "MISSING",
                "baseline": base["value"], "current": None,
                "delta_pct": None, "tolerance_pct": base["tolerance"] * 100.0,
                "unit": base["unit"],
            })
            continue
        bval, cval = float(base["value"]), float(cur["value"])
        tolerance = float(base["tolerance"])
        direction = base["direction"]
        if bval != 0.0:
            rel = (cval - bval) / abs(bval)
        else:
            rel = 0.0 if cval == 0.0 else float("inf")
        # Normalize so positive `worse` means regression.
        worse = rel if direction == "lower_is_better" else -rel
        if worse > tolerance:
            status = "REGRESSION"
        elif worse < -tolerance:
            status = "improved"
        else:
            status = "ok"
        rows.append({
            "bench": name, "metric": metric, "status": status,
            "baseline": bval, "current": cval,
            "delta_pct": rel * 100.0, "tolerance_pct": tolerance * 100.0,
            "unit": base["unit"],
        })
    for metric in sorted(set(cur_metrics) - set(base_metrics)):
        rows.append({
            "bench": name, "metric": metric, "status": "new",
            "baseline": None, "current": cur_metrics[metric]["value"],
            "delta_pct": None,
            "tolerance_pct": cur_metrics[metric]["tolerance"] * 100.0,
            "unit": cur_metrics[metric]["unit"],
        })
    return rows


def fmt_value(v):
    if v is None:
        return "-"
    if abs(v) >= 1000:
        return f"{v:.0f}"
    return f"{v:.4g}"


def render_table(rows, fingerprint_mismatches, policy):
    lines = []
    lines.append("| bench | metric | baseline | current | delta | tolerance | status |")
    lines.append("|---|---|---:|---:|---:|---:|---|")
    for r in rows:
        delta = "-" if r["delta_pct"] is None else f"{r['delta_pct']:+.1f}%"
        status = r["status"]
        marker = {"REGRESSION": "❌ REGRESSION", "improved": "✅ improved",
                  "MISSING": "⚠️ MISSING"}.get(status, status)
        lines.append(
            f"| {r['bench']} | {r['metric']} | {fmt_value(r['baseline'])}"
            f" {r['unit']} | {fmt_value(r['current'])} {r['unit']} | {delta}"
            f" | ±{r['tolerance_pct']:.0f}% | {marker} |"
        )
    if fingerprint_mismatches:
        lines.append("")
        lines.append(f"Machine fingerprint mismatches (policy: {policy}):")
        for bench, field, b, c in fingerprint_mismatches:
            lines.append(f"- {bench}: {field}: baseline `{b}` vs current `{c}`")
    return "\n".join(lines)


def run_gate(args):
    current_dir = args.current
    baseline_dir = args.baseline
    current_map = discover(current_dir)
    baseline_map = discover(baseline_dir)
    if not baseline_map:
        raise GateError(f"no BENCH_*.json baselines in {baseline_dir}")

    inject = {}
    for spec in args.inject_slowdown or []:
        try:
            bench, metric, factor = spec.split(":")
            inject[(bench, metric)] = float(factor)
        except ValueError:
            raise GateError(
                f"--inject-slowdown {spec!r}: expected BENCH_file.json:metric:factor"
            )

    rows = []
    fingerprint_mismatches = []
    compared = 0
    for name, base_path in sorted(baseline_map.items()):
        baseline = load_artifact(base_path)
        if baseline is None:
            print(f"note: baseline {name} has no gate section; skipped")
            continue
        cur_path = current_map.get(name)
        if cur_path is None:
            print(f"warning: no current artifact for baseline {name}")
            rows.append({
                "bench": name, "metric": "(artifact)", "status": "MISSING",
                "baseline": None, "current": None, "delta_pct": None,
                "tolerance_pct": 0.0, "unit": "",
            })
            continue
        current = load_artifact(cur_path)
        if current is None:
            raise GateError(f"{cur_path}: current artifact has no gate section")
        for (bench, metric), factor in inject.items():
            if bench == name and metric in current["metrics"]:
                m = current["metrics"][metric]
                direction = m["direction"]
                # "Slowdown" worsens the metric in its bad direction.
                m["value"] = (m["value"] * factor
                              if direction == "lower_is_better"
                              else m["value"] / factor)
                print(f"note: injected x{factor} slowdown into {name}:{metric}")
        fingerprint_mismatches += compare_fingerprint(name, baseline, current)
        rows += compare_metrics(name, baseline, current)
        compared += 1

    table = render_table(rows, fingerprint_mismatches, args.fingerprint_policy)
    print()
    print(table)
    if args.report:
        with open(args.report, "w", encoding="utf-8") as f:
            f.write("# Bench gate report\n\n" + table + "\n")
        print(f"\nwrote {args.report}")

    regressions = [r for r in rows if r["status"] in ("REGRESSION", "MISSING")]
    if fingerprint_mismatches and args.fingerprint_policy == "strict":
        print(f"\nFAIL: machine fingerprint mismatch under strict policy")
        return 2
    if regressions:
        print(f"\nFAIL: {len(regressions)} regression(s) across "
              f"{compared} bench artifact(s)")
        return 2
    print(f"\nOK: {compared} bench artifact(s) within tolerance")
    return 0


def make_synthetic_artifact(path, value_scale=1.0, machine=None):
    doc = {
        "bench": "synthetic",
        "gate": {
            "schema_version": SCHEMA_VERSION,
            "metrics": {
                "frame_ms": {
                    "value": 10.0 * value_scale, "unit": "ms",
                    "direction": "lower_is_better", "tolerance": 0.10,
                },
                "throughput_fps": {
                    "value": 100.0 / value_scale, "unit": "fps",
                    "direction": "higher_is_better", "tolerance": 0.10,
                },
                "model_bytes": {
                    "value": 1234.0, "unit": "bytes",
                    "direction": "lower_is_better", "tolerance": 0.01,
                },
            },
        },
        "machine": machine or {
            "cpu_model": "SelfTest CPU", "hardware_threads": 4,
            "simd_isa_selected": "avx2", "kernel_release": "6.0-selftest",
            "page_size_bytes": 4096, "cpufreq_governor": "performance",
        },
    }
    with open(path, "w", encoding="utf-8") as f:
        json.dump(doc, f, indent=2)


def self_test():
    """End-to-end check: identical artifacts pass; a 20% slowdown fails."""
    failures = []
    with tempfile.TemporaryDirectory() as tmp:
        base_dir = os.path.join(tmp, "baseline")
        cur_dir = os.path.join(tmp, "current")
        os.mkdir(base_dir)
        os.mkdir(cur_dir)
        make_synthetic_artifact(os.path.join(base_dir, "BENCH_selftest.json"))
        make_synthetic_artifact(os.path.join(cur_dir, "BENCH_selftest.json"))

        ns = argparse.Namespace(current=cur_dir, baseline=base_dir,
                                report=None, fingerprint_policy="warn",
                                inject_slowdown=[])
        print("--- self-test 1: identical artifacts must pass ---")
        if run_gate(ns) != 0:
            failures.append("identical artifacts did not pass")

        print("\n--- self-test 2: 5% drift inside 10% tolerance must pass ---")
        make_synthetic_artifact(
            os.path.join(cur_dir, "BENCH_selftest.json"), value_scale=1.05)
        if run_gate(ns) != 0:
            failures.append("5% drift within tolerance did not pass")

        print("\n--- self-test 3: 20% slowdown must fail ---")
        make_synthetic_artifact(
            os.path.join(cur_dir, "BENCH_selftest.json"), value_scale=1.20)
        if run_gate(ns) != 2:
            failures.append("20% slowdown did not fail the gate")

        print("\n--- self-test 4: injected slowdown on clean artifacts must fail ---")
        make_synthetic_artifact(os.path.join(cur_dir, "BENCH_selftest.json"))
        ns.inject_slowdown = ["BENCH_selftest.json:frame_ms:1.2"]
        if run_gate(ns) != 2:
            failures.append("--inject-slowdown did not fail the gate")
        ns.inject_slowdown = []

        print("\n--- self-test 5: fingerprint mismatch fails only under strict ---")
        make_synthetic_artifact(
            os.path.join(cur_dir, "BENCH_selftest.json"),
            machine={"cpu_model": "Different CPU", "hardware_threads": 4,
                     "simd_isa_selected": "avx2",
                     "kernel_release": "6.0-selftest",
                     "page_size_bytes": 4096,
                     "cpufreq_governor": "performance"})
        if run_gate(ns) != 0:
            failures.append("fingerprint mismatch failed under warn policy")
        ns.fingerprint_policy = "strict"
        if run_gate(ns) != 2:
            failures.append("fingerprint mismatch passed under strict policy")

    print()
    if failures:
        for f in failures:
            print(f"SELF-TEST FAIL: {f}")
        return 2
    print("SELF-TEST OK: all 5 scenarios behaved")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--current", help="directory with current BENCH_*.json")
    parser.add_argument("--baseline", help="directory with baseline BENCH_*.json")
    parser.add_argument("--report", help="write the diff table to this markdown file")
    parser.add_argument("--fingerprint-policy",
                        choices=("strict", "warn", "ignore"), default="warn")
    parser.add_argument("--inject-slowdown", action="append", metavar="BENCH:METRIC:FACTOR",
                        help="multiply a current metric into its bad direction "
                             "(demonstrates the gate fails; repeatable)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the built-in end-to-end scenarios and exit")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()
    if not args.current or not args.baseline:
        parser.error("--current and --baseline are required (or --self-test)")
    try:
        return run_gate(args)
    except GateError as err:
        print(f"bench_gate: error: {err}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

// Component area model, 16 nm FinFET (paper Tables 3-4).
//
// Component areas are calibrated so the five Table-3 cluster-unit
// configurations and the Table-4 totals (0.066 mm^2 at 4 kB buffers,
// 0.053 mm^2 at 1 kB) are reproduced; the decomposition is additive, which
// the published Table-3 numbers support to within one least significant
// digit (see EXPERIMENTS.md).
#pragma once

namespace sslic::hw {

/// Areas in mm^2 at 16 nm.
struct AreaModel {
  // --- Cluster update unit (Table 3 decomposition). ---
  double dist_calculator_per_way = 0.0016125;  ///< one 5-D distance calculator
  double min_unit_iterative = 0.0001;          ///< single compare ALU + loop
  double min_unit_tree9 = 0.0004;              ///< 9:1 comparator tree
  double adder_per_way = 0.0001;               ///< one sigma-accumulation adder
  double cluster_control = 0.0002;             ///< registers + local FSM

  // --- Other accelerator units (Table 4 decomposition). ---
  double color_conversion_unit = 0.012;  ///< LUTs + matrix multipliers
  double center_update_unit = 0.008;     ///< iterative divider + sequencing
  double host_fsm = 0.005;               ///< top-level FSM controller
  double dram_interface = 0.008;         ///< PHY/IO share

  /// Scratch-pad SRAM: ~1.08 um^2 per byte at 16 nm (includes periphery),
  /// calibrated from the Table-4 delta 0.066 - 0.053 mm^2 for 3 kB x 4 pads.
  double sram_mm2_per_byte = 1.08e-6;

  [[nodiscard]] double scratchpad(double bytes) const {
    return sram_mm2_per_byte * bytes;
  }
};

const AreaModel& default_area_model();

}  // namespace sslic::hw

// Pixel Perspective Architecture (PPA) S-SLIC — the paper's core
// contribution (Sections 3, 4.2, 4.3, Fig. 1b).
//
// Each pixel carries a static precomputed list of its 9 candidate centers
// (the grid cell's center and its 8 neighbours). Per iteration, a
// round-robin subset of the pixels (ratio 1, 1/2, or 1/4) computes its 9
// color-space distances, takes the minimum, updates its label and running
// minimum distance, and accumulates into the winning center's sigma
// registers; all centers are then recomputed from the subset's
// contributions (the OS-EM-style update of Section 3).
//
// The optional data-width quantization reproduces the Section 6.1 bit-width
// exploration; the optional preemptive extension freezes converged centers
// and skips tiles whose 9 candidates are all frozen (Section 8's
// "orthogonal, combinable" Preemptive SLIC idea).
#pragma once

#include "color/color_convert.h"
#include "common/stopwatch.h"
#include "slic/distance.h"
#include "slic/instrumentation.h"
#include "slic/iteration_scratch.h"
#include "slic/types.h"

namespace sslic {

/// PPA S-SLIC segmenter (gSLIC-style full PPA when subsample_ratio == 1).
class PpaSlic {
 public:
  explicit PpaSlic(SlicParams params, DataWidth data_width = DataWidth::float64());

  [[nodiscard]] Segmentation segment(const RgbImage& image,
                                     const IterationCallback& callback = {},
                                     Instrumentation* instrumentation = nullptr,
                                     PhaseTimer* phases = nullptr) const;

  [[nodiscard]] Segmentation segment_lab(const LabImage& lab,
                                         const IterationCallback& callback = {},
                                         Instrumentation* instrumentation = nullptr,
                                         PhaseTimer* phases = nullptr) const;

  /// Temporal warm start: like segment_lab, but cluster centers start from
  /// `initial_centers` (e.g. the previous video frame's result) instead of
  /// the grid seeding. The center count must match this image's grid
  /// (same resolution and K); positions are clamped into the image.
  [[nodiscard]] Segmentation segment_lab_warm(
      const LabImage& lab, const std::vector<ClusterCenter>& initial_centers,
      const IterationCallback& callback = {},
      Instrumentation* instrumentation = nullptr,
      PhaseTimer* phases = nullptr) const;

  /// Buffer-reusing variants: write into `result` and draw every working
  /// buffer from `scratch`. Repeated calls at an unchanged geometry make
  /// the run allocation-free (TemporalSlic's steady state; asserted by
  /// tests/test_fused.cpp). Results are identical to the value-returning
  /// overloads.
  void segment_lab_into(const LabImage& lab, Segmentation& result,
                        IterationScratch& scratch,
                        const IterationCallback& callback = {},
                        Instrumentation* instrumentation = nullptr,
                        PhaseTimer* phases = nullptr) const;
  void segment_lab_warm_into(const LabImage& lab,
                             const std::vector<ClusterCenter>& initial_centers,
                             Segmentation& result, IterationScratch& scratch,
                             const IterationCallback& callback = {},
                             Instrumentation* instrumentation = nullptr,
                             PhaseTimer* phases = nullptr) const;

  [[nodiscard]] const SlicParams& params() const { return params_; }
  [[nodiscard]] const DataWidth& data_width() const { return data_width_; }

 private:
  void segment_impl(const LabImage& lab,
                    const std::vector<ClusterCenter>* warm_centers,
                    Segmentation& result, IterationScratch& scratch,
                    const IterationCallback& callback,
                    Instrumentation* instrumentation,
                    PhaseTimer* phases) const;

  SlicParams params_;
  DataWidth data_width_;
};

}  // namespace sslic

// Reproduces paper Table 1: per-phase time breakdown of SLIC and S-SLIC on
// the CPU (the paper profiled an i7-4600M on the Berkeley benchmark).
//
// Phases: color conversion / distance+min / center update / other
// (initialization + connectivity enforcement).
#include <iostream>

#include "bench_common.h"
#include "slic/fusion.h"
#include "slic/slic_baseline.h"
#include "slic/subsampled.h"

int main(int argc, char** argv) {
  using namespace sslic;
  bench::BenchConfig config = bench::BenchConfig::parse(argc, argv);
  // Paper-model table: the paper profiled the classic two-pass loop, where
  // sigma accumulation is a separate center-update phase. The fused loop
  // moves that work into the assignment phase and would skew the per-phase
  // percentages; pin it off (bench/fused_iteration measures the fused win).
  set_fusion(false);
  // Same reasoning for the assignment schedule: the row sweep's
  // window-based traffic charges are the paper's convention; the cluster
  // schedule's once-per-pixel accounting would skew the modelled bytes.
  set_assign_strategy(AssignStrategy::kRow);
  bench::banner("Table 1 — time breakdown of SLIC and S-SLIC (CPU)", config);

  const SyntheticCorpus corpus(config.dataset_params(), config.images,
                               config.seed);

  PhaseTimer slic_phases;
  PhaseTimer sslic_phases;
  for (int i = 0; i < corpus.size(); ++i) {
    const GroundTruthImage gt = corpus.generate(i);

    SlicParams slic_params = config.slic_params();
    (void)CpaSlic(slic_params).segment(gt.image, {}, nullptr, &slic_phases);

    SlicParams sslic_params = config.slic_params();
    sslic_params.subsample_ratio = 0.5;
    // "the same number of full iterations": subset iterations doubled so
    // centers update twice as often (the Table-1 observation).
    sslic_params.max_iterations = config.iterations * 2;
    (void)PpaSlic(sslic_params).segment(gt.image, {}, nullptr, &sslic_phases);
  }

  struct PaperRow {
    const char* phase;
    const char* key;
    double slic_pct;
    double sslic_pct;
  };
  const PaperRow rows[] = {
      {"Color Conversion", CpaSlic::kPhaseColorConversion, 23.4, 18.7},
      {"Distance + Min", CpaSlic::kPhaseDistanceMin, 65.9, 59.7},
      {"Center Update", CpaSlic::kPhaseCenterUpdate, 10.2, 17.9},
      {"Other", CpaSlic::kPhaseOther, 0.5, 3.7},
  };

  Table table("Phase breakdown (measured vs paper)");
  table.set_header({"phase", "SLIC %", "(paper)", "S-SLIC %", "(paper)"});
  for (const auto& row : rows) {
    table.add_row({row.phase,
                   Table::num(slic_phases.phase_fraction(row.key) * 100.0, 1),
                   Table::num(row.slic_pct, 1),
                   Table::num(sslic_phases.phase_fraction(row.key) * 100.0, 1),
                   Table::num(row.sslic_pct, 1)});
  }
  table.add_note("mean over " + std::to_string(config.images) +
                 " images; S-SLIC = pixel-perspective, ratio 0.5, same "
                 "number of full iterations (2x subset iterations).");
  table.add_note("paper observations to check: distance+min dominates both; "
                 "center update roughly doubles for S-SLIC (centers update "
                 "more frequently); 'other' grows.");
  std::cout << table;

  std::cout << "\ntotal mean per-image time: SLIC "
            << Table::num(slic_phases.total_ms() / config.images, 1)
            << " ms, S-SLIC(0.5) "
            << Table::num(sslic_phases.total_ms() / config.images, 1)
            << " ms\n";
  return 0;
}

// Ablation (paper Section 3): "Choosing the proper subsampling strategy is
// fundamental to guaranteeing the convergence of the iterative algorithm."
//
// Compares the statistically-uniform dithered subsets (checkerboard/Bayer)
// against row-interleaved subsets (whole rows round-robin — the DRAM-burst-
// friendly pattern the accelerator's bandwidth saving relies on), at
// ratios 0.5 and 0.25.
#include <iostream>

#include "bench_common.h"
#include "slic/subsampled.h"

int main(int argc, char** argv) {
  using namespace sslic;
  bench::BenchConfig config = bench::BenchConfig::parse(argc, argv);
  bench::banner("Ablation — subset pattern: dithered vs row-interleaved (CPU)",
                config);

  struct Row {
    std::string name;
    double ratio;
    SubsetPattern pattern;
    bench::Quality quality;
    double movement_last = 0.0;  // residual center movement at the end
  };
  std::vector<Row> rows = {
      {"S-SLIC(0.5) dithered", 0.5, SubsetPattern::kDithered, {}, 0},
      {"S-SLIC(0.5) row-interleaved", 0.5, SubsetPattern::kRowInterleaved, {}, 0},
      {"S-SLIC(0.25) dithered", 0.25, SubsetPattern::kDithered, {}, 0},
      {"S-SLIC(0.25) row-interleaved", 0.25, SubsetPattern::kRowInterleaved, {}, 0},
  };

  const SyntheticCorpus corpus(config.dataset_params(), config.images,
                               config.seed);
  for (int i = 0; i < corpus.size(); ++i) {
    const GroundTruthImage gt = corpus.generate(i);
    for (auto& row : rows) {
      SlicParams params = config.slic_params();
      params.subsample_ratio = row.ratio;
      params.subset_pattern = row.pattern;
      params.max_iterations = static_cast<int>(config.iterations / row.ratio);
      const Segmentation seg = PpaSlic(params).segment(gt.image);
      row.quality += bench::measure_quality(seg.labels, gt.truth);
      row.movement_last += seg.trace.back().center_movement;
    }
  }

  Table table("Subset pattern vs quality (same full-sweep budget)");
  table.set_header({"variant", "USE", "USE(min)", "recall", "ASA",
                    "residual movement px"});
  for (auto& row : rows) {
    row.quality /= config.images;
    table.add_row({row.name, Table::num(row.quality.use, 4),
                   Table::num(row.quality.use_min, 4),
                   Table::num(row.quality.recall, 4),
                   Table::num(row.quality.asa, 4),
                   Table::num(row.movement_last / config.images, 3)});
  }
  table.add_note("row-interleaved subsets let the accelerator skip whole "
                 "DRAM bursts for inactive rows (the 1.8x bandwidth saving); "
                 "this bench quantifies what that costs in estimator "
                 "uniformity — Section 3's 'proper subsampling strategy' "
                 "requirement.");
  std::cout << table;
  return 0;
}

#include "hw/cluster_unit.h"

#include <cstdint>
#include <sstream>

#include "common/check.h"

namespace sslic::hw {
namespace {

int ceil_div(int a, int b) { return (a + b - 1) / b; }

}  // namespace

std::string ClusterUnitConfig::name() const {
  std::ostringstream os;
  os << distance_ways << '-' << min_ways << '-' << adder_ways;
  return os.str();
}

ClusterUnit::ClusterUnit(ClusterUnitConfig config, const EnergyModel& energy,
                         const AreaModel& area)
    : config_(config) {
  SSLIC_CHECK(config.distance_ways >= 1 && config.distance_ways <= 9);
  SSLIC_CHECK(config.min_ways >= 1 && config.min_ways <= 9);
  SSLIC_CHECK(config.adder_ways >= 1 && config.adder_ways <= 6);

  const int dist_iters = ceil_div(9, config.distance_ways);
  const int min_iters = ceil_div(9, config.min_ways);
  const int add_iters = ceil_div(6, config.adder_ways);

  // Latency: 3 fixed stages + per-function stage counts. A fully parallel
  // distance/adder stage costs 1 cycle; the parallel 9:1 minimum is a
  // 2-stage comparator tree. (Matches Table 3 for all five configs.)
  const int dist_stages = dist_iters == 1 ? 1 : dist_iters;
  const int min_stages = min_iters == 1 ? 2 : min_iters;
  const int add_stages = add_iters == 1 ? 1 : add_iters;
  latency_ = 3 + dist_stages + min_stages + add_stages;
  ii_ = std::max(dist_iters, std::max(min_iters, add_iters));

  // Area: additive component model (Table 3 decomposition).
  area_mm2_ = area.cluster_control +
              config.distance_ways * area.dist_calculator_per_way +
              (config.min_ways == 9 ? area.min_unit_tree9
                                    : config.min_ways * area.min_unit_iterative) +
              config.adder_ways * area.adder_per_way;

  // Per-pixel dynamic energy: the arithmetic work is configuration-
  // independent (always 9 distances, 8 compares, 6 adds); configurations
  // differ in staging-register energy (parallel ways), sequencing energy
  // (iteration cycles of each time-multiplexed function), and a
  // producer/consumer buffering term when parallel distance calculators
  // feed an iterative minimum. Constants calibrated against Table 3 —
  // every published cell reproduces within 5% (see EXPERIMENTS.md).
  const int extra_ways = (config.distance_ways - 1) +
                         (config.min_ways == 9 ? 1 : config.min_ways - 1) +
                         (config.adder_ways - 1);
  const int seq_cycles = (dist_iters - 1) + (min_iters - 1) + (add_iters - 1);
  const bool rate_mismatch = dist_iters == 1 && min_iters > 1;
  const double min_cmp = config.min_ways == 9 ? energy.min_compare_tree_pj
                                              : energy.min_compare_iterative_pj;
  energy_px_pj_ = 9.0 * energy.distance_eval_pj + 8.0 * min_cmp +
                  6.0 * energy.sigma_add_pj + energy.pixel_slot_base_pj +
                  extra_ways * energy.parallel_stage_pj +
                  seq_cycles * energy.iterative_seq_pj +
                  (rate_mismatch ? energy.rate_mismatch_buffer_pj : 0.0);
}

double ClusterUnit::active_power_w(double clock_hz) const {
  // Streaming back-to-back: one pixel every II cycles.
  const double pixel_rate = clock_hz / ii_;
  return energy_px_pj_ * 1e-12 * pixel_rate;
}

double ClusterUnit::iteration_compute_seconds(std::uint64_t pixels,
                                              std::uint64_t tiles,
                                              double clock_hz) const {
  const double cycles = static_cast<double>(pixels) * ii_ +
                        static_cast<double>(tiles) * latency_;
  return cycles / clock_hz;
}

double ClusterUnit::iteration_energy_j(std::uint64_t pixels) const {
  return energy_px_pj_ * 1e-12 * static_cast<double>(pixels);
}

}  // namespace sslic::hw

// Reproduces paper Section 6.1: bit-width exploration of the S-SLIC
// datapath. The paper reduces numerical precision from 64-bit floating
// point to fixed point and reports that at 8 bits the undersegmentation
// error grows by only 0.003 and boundary recall drops by only 0.001, with
// degradation becoming noticeable at 7 bits and below.
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "slic/hw_datapath.h"
#include "slic/subsampled.h"

int main(int argc, char** argv) {
  using namespace sslic;
  bench::BenchConfig config = bench::BenchConfig::parse(argc, argv);
  if (config.images > 10) config.images = 10;  // width sweep is 8x the work
  bench::banner("Section 6.1 — data bit-width exploration (CPU)", config);

  const SyntheticCorpus corpus(config.dataset_params(), config.images,
                               config.seed);

  struct Row {
    std::string name;
    DataWidth width;
    bench::Quality quality;
  };
  std::vector<Row> rows;
  rows.push_back({"float64 (reference)", DataWidth::float64(), {}});
  for (const int bits : {12, 10, 8, 7, 6, 5, 4})
    rows.push_back({std::to_string(bits) + "-bit fixed", DataWidth::fixed(bits), {}});

  for (int i = 0; i < corpus.size(); ++i) {
    const GroundTruthImage gt = corpus.generate(i);
    SlicParams params = config.slic_params();
    params.subsample_ratio = 0.5;
    params.max_iterations = config.iterations * 2;
    for (auto& row : rows) {
      const Segmentation seg = PpaSlic(params, row.width).segment(gt.image);
      row.quality += bench::measure_quality(seg.labels, gt.truth);
    }
  }
  for (auto& row : rows) row.quality /= config.images;

  const bench::Quality& ref = rows.front().quality;
  Table table("Quality vs datapath width, S-SLIC(0.5) (measured)");
  table.set_header({"datapath", "USE", "dUSE vs f64", "recall", "drecall",
                    "ASA", "dASA"});
  for (const auto& row : rows) {
    table.add_row({row.name, Table::num(row.quality.use, 4),
                   Table::num(row.quality.use - ref.use, 4),
                   Table::num(row.quality.recall, 4),
                   Table::num(row.quality.recall - ref.recall, 4),
                   Table::num(row.quality.asa, 4),
                   Table::num(row.quality.asa - ref.asa, 4)});
  }
  table.add_note("paper: 8-bit fixed point costs only +0.003 USE / -0.001 "
                 "recall vs float64; error becomes noticeable below 7 bits.");
  table.add_note("robustness argument: accuracy depends on *relative* "
                 "distance comparisons, not absolute distance values "
                 "(Section 6.1).");
  std::cout << table;

  // Companion sweep: the color-conversion unit's PWL segment count on the
  // full integer golden model. The paper fixes 8 segments (Section 6.1);
  // this quantifies what that choice costs on weak-contrast boundaries.
  struct PwlRow {
    std::string name;
    int segments;
    bench::Quality quality;
  };
  std::vector<PwlRow> pwl_rows = {
      {"4 segments", 4, {}},
      {"8 segments (paper)", 8, {}},
      {"12 segments", 12, {}},
      {"16 segments", 16, {}},
  };
  for (int i = 0; i < corpus.size(); ++i) {
    const GroundTruthImage gt = corpus.generate(i);
    for (auto& row : pwl_rows) {
      HwConfig hw;
      hw.num_superpixels = config.superpixels;
      hw.compactness = config.compactness;
      hw.iterations = config.iterations * 2;
      hw.subsample_ratio = 0.5;
      hw.color.pwl_segments = row.segments;
      const Segmentation seg = HwSlic(hw).segment(gt.image);
      row.quality += bench::measure_quality(seg.labels, gt.truth);
    }
  }
  Table pwl_table("Golden model quality vs color-conversion PWL segments");
  pwl_table.set_header({"conversion unit", "USE", "recall", "ASA"});
  for (auto& row : pwl_rows) {
    row.quality /= config.images;
    pwl_table.add_row({row.name, Table::num(row.quality.use, 4),
                       Table::num(row.quality.recall, 4),
                       Table::num(row.quality.asa, 4)});
  }
  pwl_table.add_note("reproduction finding: 8-bit *storage* is nearly free "
                     "(table above), but the 8-segment PWL conversion's a/b "
                     "error (up to ~6 LSB) costs quality on boundaries whose "
                     "contrast is below a couple of Lab8 steps; BSDS's "
                     "stronger photometric boundaries mask this in the paper.");
  std::cout << '\n' << pwl_table;

  const auto find8 = [&]() -> const Row& {
    for (const auto& row : rows)
      if (row.name.rfind("8-bit", 0) == 0) return row;
    return rows.front();
  };
  const Row& r8 = find8();
  std::cout << "\n8-bit verdict: dUSE = " << Table::num(r8.quality.use - ref.use, 4)
            << " (paper +0.003), drecall = "
            << Table::num(r8.quality.recall - ref.recall, 4)
            << " (paper -0.001) -> the 8-bit datapath choice "
            << ((std::abs(r8.quality.use - ref.use) < 0.01) ? "reproduces"
                                                            : "DEVIATES")
            << ".\n";
  return 0;
}

// Tests for the unified telemetry layer: metrics registry (counters,
// gauges, percentile histograms), the PhaseTimer/ThreadPool/Instrumentation
// exporters, and the tracing-span session (recording, nesting, Chrome
// trace-event serialization). Telemetry must observe without perturbing:
// the golden-run test cross-checks exported counters against the
// Instrumentation record itself.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/stopwatch.h"
#include "common/telemetry.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "dataset/synthetic.h"
#include "slic/slic_baseline.h"
#include "slic/telemetry_bridge.h"

namespace sslic {
namespace {

using telemetry::Counter;
using telemetry::Gauge;
using telemetry::Histogram;
using telemetry::MetricsRegistry;

TEST(Counter, AddAndSet) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.set(7);
  EXPECT_EQ(c.value(), 7u);
}

TEST(Gauge, SetAndAdd) {
  Gauge g;
  g.set(1.5);
  g.add(2.25);
  EXPECT_DOUBLE_EQ(g.value(), 3.75);
}

TEST(Histogram, BasicStatistics) {
  Histogram h(telemetry::linear_buckets(1.0, 1.0, 10));
  for (const double v : {2.5, 4.5, 6.5}) h.record(v);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 13.5);
  EXPECT_DOUBLE_EQ(h.mean(), 4.5);
  EXPECT_DOUBLE_EQ(h.min(), 2.5);
  EXPECT_DOUBLE_EQ(h.max(), 6.5);
}

TEST(Histogram, EmptyIsZero) {
  Histogram h(telemetry::linear_buckets(1.0, 1.0, 4));
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

// Percentiles against the sorted-vector nearest-rank reference. With one
// integer value per unit-wide bucket, the interpolated estimate must land
// within one bucket width of the exact answer.
TEST(Histogram, PercentilesMatchSortedReference) {
  Histogram h(telemetry::linear_buckets(0.5, 1.0, 1000));
  std::vector<double> values;
  // Deterministic non-uniform sample: quadratic spread over [1, 1000].
  for (int i = 1; i <= 2000; ++i) {
    const double v = 1.0 + 999.0 * (i * i) / (2000.0 * 2000.0);
    values.push_back(std::floor(v));
    h.record(std::floor(v));
  }
  std::sort(values.begin(), values.end());
  for (const double p : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0}) {
    const std::size_t rank = static_cast<std::size_t>(std::max(
        1.0, std::ceil(p / 100.0 * static_cast<double>(values.size()))));
    const double reference = values[rank - 1];
    EXPECT_NEAR(h.percentile(p), reference, 1.0) << "p" << p;
  }
  // The extremes interpolate within the first/last occupied bucket, so they
  // match min/max only to bucket resolution.
  EXPECT_NEAR(h.percentile(0.0), h.min(), 1.0);
  EXPECT_NEAR(h.percentile(100.0), h.max(), 1.0);
}

TEST(Histogram, OverflowBucketClampsToObservedMax) {
  Histogram h(telemetry::linear_buckets(1.0, 1.0, 4));  // last bound: 4.0
  h.record(1000.0);
  EXPECT_DOUBLE_EQ(h.percentile(99.0), 1000.0);
  EXPECT_DOUBLE_EQ(h.max(), 1000.0);
}

TEST(Histogram, ExponentialBucketsAreStrictlyIncreasing) {
  const std::vector<double> bounds = telemetry::exponential_buckets(0.01, 10000.0, 128);
  ASSERT_EQ(bounds.size(), 128u);
  EXPECT_DOUBLE_EQ(bounds.front(), 0.01);
  EXPECT_NEAR(bounds.back(), 10000.0, 1e-6);
  for (std::size_t i = 1; i < bounds.size(); ++i)
    EXPECT_GT(bounds[i], bounds[i - 1]);
}

TEST(MetricsRegistry, ReturnsStableReferencesAndFlushes) {
  MetricsRegistry registry;
  Counter& c = registry.counter("sslic.test.count");
  EXPECT_EQ(&c, &registry.counter("sslic.test.count"));
  c.add(5);
  registry.gauge("sslic.test.gauge").set(2.5);
  registry.histogram("sslic.test.hist").record(10.0);

  std::map<std::string, telemetry::MetricSample> seen;
  struct CaptureSink : telemetry::TelemetrySink {
    std::map<std::string, telemetry::MetricSample>& out;
    explicit CaptureSink(std::map<std::string, telemetry::MetricSample>& o)
        : out(o) {}
    void write(const telemetry::MetricSample& sample) override {
      out[sample.name] = sample;
    }
  } sink{seen};
  registry.flush_to(sink);

  ASSERT_EQ(seen.size(), 3u);
  EXPECT_DOUBLE_EQ(seen.at("sslic.test.count").value, 5.0);
  EXPECT_DOUBLE_EQ(seen.at("sslic.test.gauge").value, 2.5);
  EXPECT_EQ(seen.at("sslic.test.hist").count, 1u);
  EXPECT_DOUBLE_EQ(seen.at("sslic.test.hist").sum, 10.0);
}

TEST(MetricsRegistry, ConcurrentMutationFromPoolThreads) {
  MetricsRegistry registry;
  Counter& hits = registry.counter("sslic.test.hits");
  Histogram& hist = registry.histogram(
      "sslic.test.values", telemetry::linear_buckets(0.5, 1.0, 128));
  ThreadPool pool(4);
  constexpr std::size_t kChunks = 128;
  pool.run_chunks(kChunks, [&](std::size_t c) {
    hits.add();
    hist.record(static_cast<double>(c % 100) + 1.0);
  });
  EXPECT_EQ(hits.value(), kChunks);
  EXPECT_EQ(hist.count(), kChunks);
}

TEST(JsonSink, ProducesBalancedJson) {
  MetricsRegistry registry;
  registry.counter("a.count").add(3);
  registry.gauge("b.gauge").set(1.25);
  registry.histogram("c.hist").record(5.0);
  telemetry::JsonSink sink;
  registry.flush_to(sink);
  const std::string text = sink.text();
  EXPECT_EQ(std::count(text.begin(), text.end(), '{'),
            std::count(text.begin(), text.end(), '}'));
  EXPECT_NE(text.find("\"a.count\""), std::string::npos);
  EXPECT_NE(text.find("\"b.gauge\""), std::string::npos);
  EXPECT_NE(text.find("\"c.hist\""), std::string::npos);
  EXPECT_NE(text.find("\"p99\""), std::string::npos);
}

// Satellite (b): PhaseTimer::add must be safe when worker threads attribute
// time concurrently.
TEST(PhaseTimer, ConcurrentAddAccumulatesExactly) {
  PhaseTimer timer;
  ThreadPool pool(4);
  constexpr std::size_t kChunks = 64;
  pool.run_chunks(kChunks, [&](std::size_t) { timer.add("phase", 1.0); });
  EXPECT_DOUBLE_EQ(timer.phase_ms("phase"), 64.0);
  EXPECT_DOUBLE_EQ(timer.total_ms(), 64.0);
}

TEST(ThreadPoolStats, ChunkTotalsMatchSubmittedWork) {
  ThreadPool pool(4);
  const std::uint64_t jobs_before = pool.jobs_run();
  constexpr std::size_t kChunks = 97;
  std::atomic<int> ran{0};
  pool.run_chunks(kChunks, [&](std::size_t) {
    ran.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(ran.load(), static_cast<int>(kChunks));
  EXPECT_EQ(pool.jobs_run(), jobs_before + 1);

  const std::vector<ThreadPool::WorkerStats> stats = pool.stats();
  ASSERT_EQ(stats.size(), 4u);  // slot 0 = caller, 1..3 = workers
  std::uint64_t chunks = 0;
  for (const ThreadPool::WorkerStats& s : stats) chunks += s.chunks_executed;
  // Every chunk of every job this pool ever ran is attributed to exactly
  // one slot; this pool ran exactly one job.
  EXPECT_EQ(chunks, kChunks);
}

TEST(Exporters, ThreadPoolMetricsLandInRegistry) {
  ThreadPool pool(2);
  pool.run_chunks(16, [](std::size_t) {});
  MetricsRegistry registry;
  telemetry::export_thread_pool(pool, registry);
  EXPECT_EQ(registry.counter("sslic.pool.threads").value(), 2u);
  EXPECT_EQ(registry.counter("sslic.pool.jobs").value(), 1u);
  std::uint64_t chunks = 0;
  for (int i = 0; i < 2; ++i) {
    chunks += registry
                  .counter("sslic.pool.worker." + std::to_string(i) + ".chunks")
                  .value();
  }
  EXPECT_EQ(chunks, 16u);
}

TEST(Exporters, PhaseTimerMetricsLandInRegistry) {
  PhaseTimer timer;
  timer.add("assign", 12.0);
  timer.add("update", 3.0);
  MetricsRegistry registry;
  telemetry::export_phase_timer(timer, "cpa", registry);
  EXPECT_DOUBLE_EQ(registry.gauge("sslic.cpa.phase_ms.assign").value(), 12.0);
  EXPECT_DOUBLE_EQ(registry.gauge("sslic.cpa.phase_ms.update").value(), 3.0);
  EXPECT_DOUBLE_EQ(registry.gauge("sslic.cpa.total_ms").value(), 15.0);
}

// Tentpole acceptance: counters exported from a golden CPA run must agree
// with the Instrumentation record exactly.
TEST(Exporters, InstrumentationCountersMatchGoldenCpaRun) {
  SyntheticParams scene;
  scene.width = 160;
  scene.height = 120;
  const GroundTruthImage gt = generate_synthetic(scene, 1234);

  SlicParams params;
  params.num_superpixels = 64;
  params.max_iterations = 4;
  Instrumentation instr;
  const CpaSlic slic(params);
  const Segmentation seg = slic.segment(gt.image, {}, &instr);
  ASSERT_FALSE(seg.labels.empty());
  ASSERT_GT(instr.ops.distance_evals, 0u);

  MetricsRegistry registry;
  telemetry::export_instrumentation(instr, "cpa", registry);
  EXPECT_EQ(registry.counter("sslic.cpa.ops.distance_evals").value(),
            instr.ops.distance_evals);
  EXPECT_EQ(registry.counter("sslic.cpa.ops.distance_ops").value(),
            instr.ops.distance_ops());
  EXPECT_EQ(registry.counter("sslic.cpa.ops.compare").value(),
            instr.ops.compare_ops);
  EXPECT_EQ(registry.counter("sslic.cpa.ops.accumulate").value(),
            instr.ops.accumulate_ops);
  EXPECT_EQ(registry.counter("sslic.cpa.ops.divide").value(),
            instr.ops.divide_ops);
  EXPECT_EQ(registry.counter("sslic.cpa.traffic.total").value(),
            instr.traffic.total());
  EXPECT_EQ(registry.counter("sslic.cpa.iterations").value(),
            instr.iterations);
}

#if SSLIC_TRACING_ENABLED

/// Minimal parser for the serializer's one-event-per-line output.
struct ParsedEvent {
  std::string name;
  std::string ph;
  int tid = -1;
  double ts = -1.0;
  double dur = -1.0;
  std::int64_t arg = trace::kNoArg;
};

std::vector<ParsedEvent> parse_trace(const std::string& json) {
  const auto field = [](const std::string& line, const std::string& key,
                        std::string* out) {
    const std::string tag = "\"" + key + "\": ";
    const std::size_t pos = line.find(tag);
    if (pos == std::string::npos) return false;
    std::size_t begin = pos + tag.size();
    std::size_t end = begin;
    if (line[begin] == '"') {
      ++begin;
      end = line.find('"', begin);
    } else {
      end = line.find_first_of(",}", begin);
    }
    *out = line.substr(begin, end - begin);
    return true;
  };

  std::vector<ParsedEvent> events;
  std::istringstream in(json);
  std::string line;
  while (std::getline(in, line)) {
    ParsedEvent e;
    std::string value;
    if (!field(line, "ph", &value)) continue;
    e.ph = value;
    if (field(line, "name", &value)) e.name = value;
    if (field(line, "tid", &value)) e.tid = std::stoi(value);
    if (field(line, "ts", &value)) e.ts = std::stod(value);
    if (field(line, "dur", &value)) e.dur = std::stod(value);
    if (field(line, "n", &value)) e.arg = std::stoll(value);
    events.push_back(e);
  }
  return events;
}

/// Serializes the current session and returns the parsed events. Disarms
/// first so recording threads are quiescent, as serialize() requires.
std::string serialize_session() {
  trace::set_armed(false);
  std::ostringstream os;
  trace::serialize(os);
  return os.str();
}

TEST(Trace, DisarmedSpansRecordNothing) {
  trace::reset();
  trace::set_armed(false);
  { SSLIC_TRACE_SCOPE("should.not.appear"); }
  const std::vector<ParsedEvent> events = parse_trace(serialize_session());
  for (const ParsedEvent& e : events) EXPECT_NE(e.name, "should.not.appear");
}

TEST(Trace, NestedSpansPairAndContain) {
  trace::reset();
  trace::set_armed(true);
  {
    SSLIC_TRACE_SCOPE("outer", 7);
    { SSLIC_TRACE_SCOPE("inner.a"); }
    { SSLIC_TRACE_SCOPE("inner.b"); }
  }
  const std::vector<ParsedEvent> events = parse_trace(serialize_session());

  const auto find = [&](const std::string& name) -> const ParsedEvent* {
    for (const ParsedEvent& e : events)
      if (e.name == name) return &e;
    return nullptr;
  };
  const ParsedEvent* outer = find("outer");
  const ParsedEvent* inner_a = find("inner.a");
  const ParsedEvent* inner_b = find("inner.b");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner_a, nullptr);
  ASSERT_NE(inner_b, nullptr);

  EXPECT_EQ(outer->ph, "X");
  EXPECT_EQ(outer->arg, 7);
  EXPECT_EQ(outer->tid, inner_a->tid);
  // Containment, with epsilon for the µs rounding of the serializer.
  constexpr double kEps = 0.002;
  for (const ParsedEvent* inner : {inner_a, inner_b}) {
    EXPECT_GE(inner->ts, outer->ts - kEps);
    EXPECT_LE(inner->ts + inner->dur, outer->ts + outer->dur + kEps);
  }
  // inner.b begins after inner.a ends (sequential blocks).
  EXPECT_GE(inner_b->ts, inner_a->ts + inner_a->dur - kEps);
}

TEST(Trace, SpansAcrossPoolThreadsSerializeWellFormed) {
  trace::reset();
  trace::set_armed(true);
  ThreadPool pool(4);
  pool.run_chunks(64, [](std::size_t c) {
    SSLIC_TRACE_SCOPE("chunk", static_cast<std::int64_t>(c));
  });
  const std::string json = serialize_session();
  const std::vector<ParsedEvent> events = parse_trace(json);

  // Well-formed JSON shell (python -m json.tool validates this in CI).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);

  std::size_t chunk_events = 0;
  std::map<int, double> last_end_by_tid;
  for (const ParsedEvent& e : events) {
    if (e.ph == "M") continue;  // thread_name metadata
    EXPECT_EQ(e.ph, "X");
    EXPECT_GE(e.ts, 0.0);
    EXPECT_GE(e.dur, 0.0);
    ASSERT_GE(e.tid, 0);
    // Per-thread completion times are strictly increasing (the recorder
    // monotonizes equal-nanosecond stamps).
    const double end = e.ts + e.dur;
    const auto it = last_end_by_tid.find(e.tid);
    if (it != last_end_by_tid.end()) {
      EXPECT_GT(end, it->second);
    }
    last_end_by_tid[e.tid] = end;
    if (e.name == "chunk") ++chunk_events;
  }
  EXPECT_EQ(chunk_events, 64u);
}

TEST(Trace, ResetDropsRecordedEvents) {
  trace::reset();
  trace::set_armed(true);
  { SSLIC_TRACE_SCOPE("ephemeral"); }
  trace::set_armed(false);
  trace::reset();
  const std::vector<ParsedEvent> events = parse_trace(serialize_session());
  for (const ParsedEvent& e : events) EXPECT_NE(e.name, "ephemeral");
}

TEST(Trace, DetailSpansRespectThreshold) {
  trace::reset();
  trace::set_armed(true);
  trace::set_detail_level(0);
  { SSLIC_TRACE_SCOPE_AT(1, "detail.skipped"); }
  trace::set_detail_level(1);
  { SSLIC_TRACE_SCOPE_AT(1, "detail.recorded"); }
  trace::set_detail_level(0);
  const std::vector<ParsedEvent> events = parse_trace(serialize_session());
  bool recorded = false;
  for (const ParsedEvent& e : events) {
    EXPECT_NE(e.name, "detail.skipped");
    if (e.name == "detail.recorded") recorded = true;
  }
  EXPECT_TRUE(recorded);
}

// Telemetry must not perturb: a traced golden run produces byte-identical
// labels and centers to an untraced one.
TEST(Trace, ArmedRunMatchesUntracedRun) {
  SyntheticParams scene;
  scene.width = 160;
  scene.height = 120;
  const GroundTruthImage gt = generate_synthetic(scene, 99);
  SlicParams params;
  params.num_superpixels = 64;
  params.max_iterations = 4;
  const CpaSlic slic(params);

  trace::reset();
  trace::set_armed(false);
  const Segmentation plain = slic.segment(gt.image);
  trace::set_armed(true);
  const Segmentation traced = slic.segment(gt.image);
  trace::set_armed(false);
  trace::reset();

  EXPECT_EQ(plain.labels.pixels(), traced.labels.pixels());
  ASSERT_EQ(plain.centers.size(), traced.centers.size());
  for (std::size_t i = 0; i < plain.centers.size(); ++i) {
    EXPECT_EQ(plain.centers[i].x, traced.centers[i].x);
    EXPECT_EQ(plain.centers[i].y, traced.centers[i].y);
    EXPECT_EQ(plain.centers[i].L, traced.centers[i].L);
  }
}

#endif  // SSLIC_TRACING_ENABLED

}  // namespace
}  // namespace sslic

// The S-SLIC accelerator top in synthesizable-C style (paper Fig. 4,
// Section 4.3) — the closest thing in this repository to the C++ source
// the paper fed to Catapult.
//
// Differences from the algorithmic golden model (slic/hw_datapath.h):
//   * explicit bounded scratch pads (four, sized by the per-channel buffer
//     of the design point) with capacity contracts — a tile group that
//     does not fit is a hardware bug and throws;
//   * the cluster update unit really owns only 9 center-register slots and
//     9 six-field sigma registers, loaded per tile and spilled to the
//     center update unit afterwards (Fig. 4's structure), instead of
//     global arrays;
//   * the FSM walks the Section-4.3 schedule (load tile group -> process
//     pixels -> store index -> ... -> center update) and counts cycles as
//     it goes, so the run produces the *label map and the cycle count from
//     one execution* — like an RTL simulation of the netlist.
//
// The label map is bit-exact with HwSlic; the cycle count agrees with the
// standalone CycleSimulator (both are checked by tests/test_hls.cpp).
#pragma once

#include <cstdint>
#include <vector>

#include "hw/accelerator_model.h"
#include "hw/cycle_sim.h"
#include "hw/dram_model.h"
#include "slic/hw_datapath.h"
#include "slic/types.h"

namespace sslic::hls {

/// Result of one frame: the segmentation and where the cycles went.
struct HlsRunResult {
  Segmentation segmentation;
  hw::CycleReport cycles;

  [[nodiscard]] double seconds(double clock_hz) const {
    return cycles.seconds(clock_hz);
  }
};

/// The accelerator top: algorithm configuration (HwConfig) plus the
/// physical design point (buffer size and micro-architecture constants
/// from AcceleratorDesign; resolution fields of the design are ignored —
/// the frame defines them).
class AcceleratorTop {
 public:
  AcceleratorTop(HwConfig algorithm, hw::AcceleratorDesign design,
                 const hw::DramModel& dram = hw::default_dram_model());

  /// Executes one frame through the FSM schedule.
  [[nodiscard]] HlsRunResult run(const RgbImage& frame) const;

  [[nodiscard]] const HwConfig& algorithm() const { return algorithm_; }
  [[nodiscard]] const hw::AcceleratorDesign& design() const { return design_; }

 private:
  HwConfig algorithm_;
  hw::AcceleratorDesign design_;
  hw::DramModel dram_;
};

}  // namespace sslic::hls

// Shared infrastructure for the paper-reproduction bench harness.
//
// Every bench binary accepts:
//   --images=N   corpus size for CPU experiments (default kept small enough
//                for a quick full-harness run; raise to the paper's 100-200
//                for publication-grade statistics)
//   --width/--height/--superpixels/--compactness to override the workload.
// Each binary prints the paper's published values next to the measured ones
// so the reproduction can be eyeballed directly.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/cli.h"
#include "common/simd.h"
#include "common/stopwatch.h"
#include "common/table.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "dataset/synthetic.h"
#include "metrics/segmentation_metrics.h"
#include "slic/assign_kernels.h"
#include "slic/segmenter.h"

namespace sslic::bench {

/// Common workload configuration parsed from the command line.
struct BenchConfig {
  int images = 20;           ///< corpus size (paper: 100-200 BSDS images)
  int width = 481;           ///< BSDS image size
  int height = 321;
  int superpixels = 900;     ///< K for the quality experiments (Fig. 2)
  double compactness = 10.0;
  int iterations = 10;
  int annotators = 1;  ///< ground-truth annotations per image (BSDS has ~5)
  int threads = 0;     ///< worker threads; 0 = SSLIC_THREADS env or all cores
  std::uint64_t seed = 1000;

  /// Parses the common flags. As a side effect, `--threads=N` (or the
  /// `SSLIC_THREADS` environment variable when the flag is absent) resizes
  /// the global thread pool, `--simd=scalar|sse2|avx2|neon` (or the
  /// `SSLIC_SIMD` environment variable) selects the assignment-kernel ISA
  /// for the whole bench run, and `--trace=out.json` arms the tracing
  /// session (dumped at process exit; see common/trace.h).
  static BenchConfig parse(int argc, const char* const* argv) {
    const CliArgs args(argc, argv);
    BenchConfig config;
    config.images = args.get_int("images", config.images);
    config.width = args.get_int("width", config.width);
    config.height = args.get_int("height", config.height);
    config.superpixels = args.get_int("superpixels", config.superpixels);
    config.compactness = args.get_double("compactness", config.compactness);
    config.iterations = args.get_int("iterations", config.iterations);
    config.annotators = args.get_int("annotators", config.annotators);
    config.threads = args.get_int("threads", config.threads);
    config.seed = static_cast<std::uint64_t>(args.get_int("seed", 1000));
    ThreadPool::set_global_threads(config.threads);
    config.threads = ThreadPool::global().threads();
    const std::string simd_request = args.get_string("simd", "");
    if (!simd_request.empty() && !simd::set_preferred_isa(simd_request)) {
      std::cerr << "unknown --simd value '" << simd_request
                << "' (expected scalar|sse2|avx2|neon)\n";
      std::exit(2);
    }
    const std::string trace_path = args.get_string("trace", "");
    if (!trace_path.empty()) {
      if (trace::compiled()) {
        trace::arm(trace_path);
      } else {
        std::cerr << "warning: --trace requested but this binary was built "
                     "with -DSSLIC_TRACING=OFF; no spans will be recorded\n";
      }
    }
    return config;
  }

  [[nodiscard]] SyntheticParams dataset_params() const {
    SyntheticParams p;
    p.width = width;
    p.height = height;
    return p;
  }

  [[nodiscard]] SlicParams slic_params() const {
    SlicParams p;
    p.num_superpixels = superpixels;
    p.compactness = compactness;
    p.max_iterations = iterations;
    return p;
  }
};

/// The CPU model string from /proc/cpuinfo ("unknown" when unavailable).
inline std::string cpu_model_name() {
  std::ifstream cpuinfo("/proc/cpuinfo");
  std::string line;
  while (std::getline(cpuinfo, line)) {
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    if (line.rfind("model name", 0) == 0)
      return line.substr(line.find_first_not_of(" \t", colon + 1));
  }
  return "unknown";
}

/// Prints the standard bench banner.
inline void banner(const std::string& title, const BenchConfig& config) {
  std::cout << "==================================================================\n"
            << title << '\n'
            << "workload: " << config.images << " synthetic Berkeley-like images, "
            << config.width << 'x' << config.height << ", K=" << config.superpixels
            << ", m=" << config.compactness << ", threads=" << config.threads
            << ", simd=" << simd::isa_name(kernels::active_isa()) << '\n'
            << "(see DESIGN.md §1 for the BSDS substitution; --images=N to scale)\n"
            << "==================================================================\n";
}

/// Minimal JSON value tree for machine-readable bench artifacts
/// (BENCH_*.json). Supports exactly what the benches need: objects with
/// insertion-ordered keys, arrays, numbers, strings, and booleans.
class Json {
 public:
  static Json object() { return Json(Kind::kObject); }
  static Json array() { return Json(Kind::kArray); }
  Json(double v) : kind_(Kind::kNumber), number_(v) {}                // NOLINT
  Json(int v) : Json(static_cast<double>(v)) {}                      // NOLINT
  Json(std::int64_t v) : Json(static_cast<double>(v)) {}             // NOLINT
  Json(std::uint64_t v) : Json(static_cast<double>(v)) {}            // NOLINT
  Json(bool v) : kind_(Kind::kBool), bool_(v) {}                     // NOLINT
  Json(std::string v) : kind_(Kind::kString), string_(std::move(v)) {}  // NOLINT
  Json(const char* v) : Json(std::string(v)) {}                      // NOLINT

  Json& set(const std::string& key, Json value) {
    members_.emplace_back(key, std::make_shared<Json>(std::move(value)));
    return *this;
  }
  Json& push(Json value) {
    elements_.push_back(std::make_shared<Json>(std::move(value)));
    return *this;
  }

  void dump(std::ostream& out, int indent = 0) const {
    const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
    const std::string pad_in(static_cast<std::size_t>(indent + 1) * 2, ' ');
    switch (kind_) {
      case Kind::kObject: {
        out << "{";
        for (std::size_t i = 0; i < members_.size(); ++i) {
          out << (i == 0 ? "\n" : ",\n") << pad_in << '"'
              << escaped(members_[i].first) << "\": ";
          members_[i].second->dump(out, indent + 1);
        }
        out << (members_.empty() ? "" : "\n" + pad) << "}";
        break;
      }
      case Kind::kArray: {
        out << "[";
        for (std::size_t i = 0; i < elements_.size(); ++i) {
          out << (i == 0 ? "\n" : ",\n") << pad_in;
          elements_[i]->dump(out, indent + 1);
        }
        out << (elements_.empty() ? "" : "\n" + pad) << "]";
        break;
      }
      case Kind::kNumber: {
        std::ostringstream s;
        s.precision(12);
        s << number_;
        out << s.str();
        break;
      }
      case Kind::kString:
        out << '"' << escaped(string_) << '"';
        break;
      case Kind::kBool:
        out << (bool_ ? "true" : "false");
        break;
    }
  }

  /// Writes the tree to `path`; reports the artifact on stdout.
  void write_file(const std::string& path) const {
    std::ofstream out(path);
    dump(out);
    out << '\n';
    std::cout << "wrote " << path << '\n';
  }

 private:
  enum class Kind { kObject, kArray, kNumber, kString, kBool };
  explicit Json(Kind kind) : kind_(kind) {}

  static std::string escaped(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
      switch (c) {
        case '"':
          out += "\\\"";
          break;
        case '\\':
          out += "\\\\";
          break;
        case '\n':
          out += "\\n";
          break;
        case '\t':
          out += "\\t";
          break;
        case '\r':
          out += "\\r";
          break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x",
                          static_cast<unsigned>(static_cast<unsigned char>(c)));
            out += buf;
          } else {
            out.push_back(c);
          }
      }
    }
    return out;
  }

  Kind kind_ = Kind::kObject;
  double number_ = 0.0;
  std::string string_;
  bool bool_ = false;
  std::vector<std::pair<std::string, std::shared_ptr<Json>>> members_;
  std::vector<std::shared_ptr<Json>> elements_;
};

/// Standard machine-description block for BENCH_*.json artifacts: CPU
/// model, hardware thread count, and the assignment-kernel ISA actually
/// selected (after env/flag override and CPU/binary clamping).
inline Json machine_json() {
  Json backends = Json::array();
  for (const simd::Isa isa : {simd::Isa::kScalar, simd::Isa::kSse2,
                              simd::Isa::kAvx2, simd::Isa::kNeon}) {
    if (kernels::backend_compiled(isa) && simd::cpu_supports(isa))
      backends.push(simd::isa_name(isa));
  }
  return Json::object()
      .set("cpu_model", cpu_model_name())
      .set("hardware_threads",
           static_cast<int>(std::thread::hardware_concurrency()))
      .set("simd_isa_selected", simd::isa_name(kernels::active_isa()))
      .set("simd_isas_available", std::move(backends));
}

/// Quality metrics of one segmentation against ground truth.
struct Quality {
  double use = 0.0;       ///< Achanta undersegmentation error
  double use_min = 0.0;   ///< Neubert min-variant
  double recall = 0.0;    ///< boundary recall, tolerance 2
  double asa = 0.0;

  Quality& operator+=(const Quality& other) {
    use += other.use;
    use_min += other.use_min;
    recall += other.recall;
    asa += other.asa;
    return *this;
  }
  Quality& operator/=(double n) {
    use /= n;
    use_min /= n;
    recall /= n;
    asa /= n;
    return *this;
  }
};

inline Quality measure_quality(const LabelImage& labels, const LabelImage& truth) {
  const OverlapTable table(labels, truth);
  Quality q;
  q.use = undersegmentation_error(table);
  q.use_min = undersegmentation_error_min(table);
  q.recall = boundary_recall(labels, truth, 2);
  q.asa = achievable_segmentation_accuracy(table);
  return q;
}

/// Quality averaged over several annotators (the BSDS protocol).
inline Quality measure_quality(const LabelImage& labels,
                               const std::vector<LabelImage>& truths) {
  const MultiGroundTruthQuality m = evaluate_against_annotators(labels, truths, 2);
  Quality q;
  q.use = m.use_mean;
  q.use_min = m.use_min_mean;
  q.recall = m.recall_mean;
  q.asa = m.asa_mean;
  return q;
}

/// One point of a quality-versus-time curve (Fig. 2 axes).
struct CurvePoint {
  double time_ms = 0.0;  ///< cumulative iteration wall time (mean per image)
  Quality quality;
  std::size_t pixels_visited = 0;  ///< cumulative, mean per image
};

}  // namespace sslic::bench

// Cross-module integration tests: full pipelines from synthetic corpus
// through segmentation to quality metrics, software/hardware agreement,
// and small-scale versions of the paper's headline experiments.
#include <gtest/gtest.h>

#include <cmath>

#include "dataset/synthetic.h"
#include "hw/accelerator_model.h"
#include "image/draw.h"
#include "metrics/segmentation_metrics.h"
#include "slic/grid.h"
#include "slic/hw_datapath.h"
#include "slic/segmenter.h"

namespace sslic {
namespace {

SyntheticParams corpus_params() {
  SyntheticParams p;
  p.width = 128;
  p.height = 96;
  p.min_regions = 4;
  p.max_regions = 9;
  return p;
}

// -------------------------------------------------- corpus-level pipeline

TEST(Integration, CorpusSegmentationQualityIsConsistent) {
  const SyntheticCorpus corpus(corpus_params(), 4, 2000);
  SlicParams params;
  params.num_superpixels = 48;
  params.max_iterations = 8;

  double mean_use = 0.0, mean_recall = 0.0, mean_asa = 0.0;
  for (int i = 0; i < corpus.size(); ++i) {
    const GroundTruthImage gt = corpus.generate(i);
    const Segmentation seg = run_segmenter(Algorithm::kSslicPpa, params, gt.image);
    mean_use += undersegmentation_error_min(seg.labels, gt.truth);
    mean_recall += boundary_recall(seg.labels, gt.truth, 2);
    mean_asa += achievable_segmentation_accuracy(seg.labels, gt.truth);
  }
  mean_use /= corpus.size();
  mean_recall /= corpus.size();
  mean_asa /= corpus.size();

  // Superpixels on piecewise-smooth images must be good at these sizes.
  EXPECT_LT(mean_use, 0.08);
  EXPECT_GT(mean_recall, 0.80);
  EXPECT_GT(mean_asa, 0.92);
}

TEST(Integration, MoreSuperpixelsImproveBoundaryRecall) {
  const GroundTruthImage gt = generate_synthetic(corpus_params(), 5);
  double prev = -1.0;
  for (const int k : {16, 48, 120}) {
    SlicParams params;
    params.num_superpixels = k;
    params.max_iterations = 8;
    const Segmentation seg = run_segmenter(Algorithm::kSslicPpa, params, gt.image);
    const double recall = boundary_recall(seg.labels, gt.truth, 2);
    EXPECT_GT(recall, prev - 0.02) << "K=" << k;  // near-monotone
    prev = recall;
  }
}

TEST(Integration, CompactnessWeightControlsShape) {
  // The m parameter of Eq. 5 trades color adherence for spatial
  // regularity: superpixel compactness must increase monotonically in m.
  const GroundTruthImage gt = generate_synthetic(corpus_params(), 6);
  double prev = -1.0;
  for (const double m : {5.0, 15.0, 40.0}) {
    SlicParams params;
    params.num_superpixels = 48;
    params.max_iterations = 8;
    params.compactness = m;
    const Segmentation seg = run_segmenter(Algorithm::kSslicPpa, params, gt.image);
    const double c = compactness(seg.labels);
    EXPECT_GT(c, prev) << "m=" << m;
    prev = c;
  }
}

// -------------------------------------- Fig. 2 in miniature: equal quality,
// fewer distance computations for S-SLIC

TEST(Integration, SubsamplingReachesQualityWithLessWork) {
  const GroundTruthImage gt = generate_synthetic(corpus_params(), 8);

  SlicParams full;
  full.num_superpixels = 48;
  full.max_iterations = 8;
  full.subsample_ratio = 1.0;
  Instrumentation instr_full;
  const Segmentation seg_full =
      run_segmenter(Algorithm::kSslicPpa, full, gt.image, DataWidth::float64(),
                    {}, &instr_full);
  const double use_full = undersegmentation_error_min(seg_full.labels, gt.truth);

  SlicParams half = full;
  half.subsample_ratio = 0.5;
  half.max_iterations = 12;  // 6 full sweeps — still 25% fewer pixel visits
  Instrumentation instr_half;
  const Segmentation seg_half =
      run_segmenter(Algorithm::kSslicPpa, half, gt.image, DataWidth::float64(),
                    {}, &instr_half);
  const double use_half = undersegmentation_error_min(seg_half.labels, gt.truth);

  EXPECT_LT(instr_half.ops.distance_evals,
            instr_full.ops.distance_evals * 80 / 100);
  EXPECT_LT(use_half, use_full + 0.01);
}

// ------------------------------------------- hardware/software consistency

TEST(Integration, GoldenModelStatsMatchPerfModelSchedule) {
  // The golden datapath and the analytical model must agree on the FSM
  // schedule structure: tiles per iteration, iterations, center updates.
  const GroundTruthImage gt = generate_synthetic(corpus_params(), 9);
  HwConfig config;
  config.num_superpixels = 48;
  config.iterations = 6;
  config.subsample_ratio = 0.5;
  HwRunStats stats;
  (void)HwSlic(config).segment(gt.image, &stats);

  const CenterGrid grid(128, 96, 48);
  EXPECT_EQ(stats.tiles_processed,
            static_cast<std::uint64_t>(grid.num_centers()) * 6u);
  EXPECT_EQ(stats.iterations, 6u);
  EXPECT_LE(stats.center_updates,
            static_cast<std::uint64_t>(grid.num_centers()) * 6u);
}

TEST(Integration, HwSegmentationFeedsMetricsAndDrawing) {
  const GroundTruthImage gt = generate_synthetic(corpus_params(), 11);
  HwConfig config;
  config.num_superpixels = 48;
  config.iterations = 10;
  const Segmentation seg = HwSlic(config).segment(gt.image);

  const double asa = achievable_segmentation_accuracy(seg.labels, gt.truth);
  EXPECT_GT(asa, 0.88);

  const RgbImage overlay = overlay_boundaries(gt.image, seg.labels);
  EXPECT_EQ(overlay.width(), gt.image.width());
  const RgbImage abstraction = mean_color_abstraction(gt.image, seg.labels);
  EXPECT_EQ(abstraction.height(), gt.image.height());
}

// ------------------------------------------------- model-level sanity ties

TEST(Integration, AcceleratorRealTimeImpliesVideoRate) {
  // The end-to-end story: the chosen design segments HD at 30+ fps, i.e.
  // a 1-second 30-frame stream completes within a second.
  const hw::FrameReport r =
      hw::AcceleratorModel(hw::AcceleratorDesign{}).evaluate();
  EXPECT_TRUE(r.real_time());
  EXPECT_LT(30.0 * r.total_s, 1.0);
}

TEST(Integration, SubsamplingReducesModelledBandwidth) {
  // The abstract's 1.8x bandwidth claim, in the paper's Table-1 framing
  // ("the same number of full iterations"): S-SLIC(0.5) running N subset
  // iterations moves substantially less DRAM data than full-sampling PPA
  // running N full iterations, because the image-channel stream halves
  // while the index stream and center records do not.
  hw::AcceleratorDesign full;
  full.subsample_ratio = 1.0;
  full.full_sweeps = 8;  // 8 full iterations
  hw::AcceleratorDesign half;
  half.subsample_ratio = 0.5;
  half.full_sweeps = 4;  // also 8 subset iterations
  const auto r_full = hw::AcceleratorModel(full).evaluate();
  const auto r_half = hw::AcceleratorModel(half).evaluate();
  EXPECT_LT(r_half.dram_bytes, r_full.dram_bytes);
  const double reduction = r_full.dram_bytes / r_half.dram_bytes;
  EXPECT_GT(reduction, 1.2);
  EXPECT_LT(reduction, 2.0);
}

}  // namespace
}  // namespace sslic

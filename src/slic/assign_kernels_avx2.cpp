// AVX2 backend: 4 f64 lanes / 8 i32 lanes. This TU is the only code in the
// binary compiled with -mavx2; dispatch never selects it unless the CPU
// reports AVX2 at runtime (common/simd.cpp), so no AVX instruction can
// execute on an older machine. -ffp-contract=off keeps the multiply/add
// sequence identical to the scalar reference (no FMA even though the ISA
// has it).
#include <immintrin.h>

#include <cstring>

#include "slic/assign_kernels_impl.h"

namespace sslic::kernels {
namespace {

struct Avx2Backend {
  static constexpr int kLanesF64 = 4;
  static constexpr int kLanesI32 = 8;
  using VD = __m256d;
  using VL = __m128i;  // 4 labels
  using MD = __m256d;
  using VI = __m256i;
  using MI = __m256i;

  static VD load_f32(const float* p) {
    return _mm256_cvtps_pd(_mm_loadu_ps(p));
  }
  static VD loadu_f64(const double* p) { return _mm256_loadu_pd(p); }
  static void storeu_f64(double* p, VD v) { _mm256_storeu_pd(p, v); }
  static VD set1_f64(double v) { return _mm256_set1_pd(v); }
  static VD iota_f64(double base) {
    return _mm256_add_pd(_mm256_set1_pd(base),
                         _mm256_setr_pd(0.0, 1.0, 2.0, 3.0));
  }
  static VD add(VD a, VD b) { return _mm256_add_pd(a, b); }
  static VD sub(VD a, VD b) { return _mm256_sub_pd(a, b); }
  static VD mul(VD a, VD b) { return _mm256_mul_pd(a, b); }
  static MD cmplt_f64(VD a, VD b) { return _mm256_cmp_pd(a, b, _CMP_LT_OQ); }
  static VD select_f64(MD m, VD a, VD b) { return _mm256_blendv_pd(b, a, m); }
  static VL loadu_lab(const std::int32_t* p) {
    return _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
  }
  static void storeu_lab(std::int32_t* p, VL v) {
    _mm_storeu_si128(reinterpret_cast<__m128i*>(p), v);
  }
  static VL set1_lab(std::int32_t v) { return _mm_set1_epi32(v); }
  static VL select_lab(MD m, VL a, VL b) {
    // Compress the four 64-bit f64 mask lanes to four 32-bit label lanes.
    const __m256i m64 = _mm256_castpd_si256(m);
    const __m128i m32 = _mm256_castsi256_si128(_mm256_permutevar8x32_epi32(
        m64, _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0)));
    return _mm_blendv_epi8(b, a, m32);
  }
  static MD mask_f64_from_bytes(const std::uint8_t* p) {
    std::uint32_t packed;
    std::memcpy(&packed, p, sizeof(packed));
    const __m256i wide = _mm256_cvtepi32_epi64(
        _mm_cvtepu8_epi32(_mm_cvtsi32_si128(static_cast<int>(packed))));
    return _mm256_castsi256_pd(
        _mm256_cmpgt_epi64(wide, _mm256_setzero_si256()));
  }

  static VI load_u8_i32(const std::uint8_t* p) {
    return _mm256_cvtepu8_epi32(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(p)));
  }
  static VI loadu_i32(const std::int32_t* p) {
    return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  }
  static void storeu_i32(std::int32_t* p, VI v) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
  }
  static VI set1_i32(std::int32_t v) { return _mm256_set1_epi32(v); }
  static VI iota_i32(std::int32_t base) {
    return _mm256_add_epi32(_mm256_set1_epi32(base),
                            _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7));
  }
  static VI add_i32(VI a, VI b) { return _mm256_add_epi32(a, b); }
  static VI sub_i32(VI a, VI b) { return _mm256_sub_epi32(a, b); }
  static VI mul_i32(VI a, VI b) { return _mm256_mullo_epi32(a, b); }
  static VI mulw_shr8(VI v, std::int32_t weight) {
    // Exact (int64)weight * v >> 8 per lane via even/odd widening products
    // (both operands non-negative, so unsigned widening is exact).
    const __m256i w = _mm256_set1_epi32(weight);
    const __m256i even = _mm256_srli_epi64(_mm256_mul_epu32(v, w), 8);
    const __m256i odd = _mm256_srli_epi64(
        _mm256_mul_epu32(_mm256_srli_epi64(v, 32), w), 8);
    return _mm256_blend_epi32(even, _mm256_slli_epi64(odd, 32), 0b10101010);
  }
  static VI sra_i32(VI v, int count) {
    return _mm256_sra_epi32(v, _mm_cvtsi32_si128(count));
  }
  static VI min_i32(VI a, VI b) { return _mm256_min_epi32(a, b); }
  static MI cmplt_i32(VI a, VI b) { return _mm256_cmpgt_epi32(b, a); }
  static VI select_i32(MI m, VI a, VI b) {
    return _mm256_blendv_epi8(b, a, m);
  }
  static MI mask_i32_from_bytes(const std::uint8_t* p) {
    return _mm256_cmpgt_epi32(load_u8_i32(p), _mm256_setzero_si256());
  }
  static bool all_eq_i32(VI a, VI b) {
    return _mm256_movemask_epi8(_mm256_cmpeq_epi32(a, b)) == -1;
  }
};

}  // namespace

const KernelTable& avx2_table() {
  static const KernelTable table = make_table<Avx2Backend>();
  return table;
}

}  // namespace sslic::kernels

// Reusable per-run working state of the SLIC segmenters.
//
// Every buffer a segmentation run needs — the min-distance plane, planar
// channel splits, per-band sigma pools, subset masks, connectivity
// worklists — lives here instead of on the stack of segment_lab(), so a
// caller that keeps one IterationScratch across frames (TemporalSlic, the
// video pipeline, the fused-iteration bench) pays the allocations once and
// runs every later frame of the same geometry with zero heap allocations
// (tests/test_fused.cpp asserts this with a counting operator new).
//
// All sizing is idempotent: buffers are grown on first use per geometry and
// merely re-filled afterwards (std::vector::assign and Image::fill do not
// reallocate at an unchanged size). The scratch carries no results — the
// labels/centers live in the caller's Segmentation — and one scratch can be
// shared between CPA and PPA runs (unused fields stay empty).
#pragma once

#include <cstdint>
#include <vector>

#include "image/image.h"
#include "image/planar.h"
#include "slic/center_update.h"
#include "slic/connectivity.h"
#include "slic/grid.h"

namespace sslic {

/// Clamped 2Sx2S scan rectangle of one center (CPA assignment).
struct ScanWindow {
  int x0 = 0;
  int x1 = -1;
  int y0 = 0;
  int y1 = -1;

  [[nodiscard]] std::uint64_t pixels() const {
    return static_cast<std::uint64_t>(x1 - x0 + 1) *
           static_cast<std::uint64_t>(y1 - y0 + 1);
  }
};

/// Working buffers of one segmentation run; see the header comment.
struct IterationScratch {
  // --- Shared by CPA and PPA ---
  std::vector<double> min_dist;  ///< running minimum-distance plane
  std::vector<Sigma> sigmas;     ///< merged sigma registers (K entries)
  LabPlanes planes;              ///< planar split feeding the row kernels
  ConnectivityScratch connectivity;

  // --- CPA (slic_baseline.cpp) ---
  std::vector<std::uint8_t> active;  ///< per-center subset activity flags
  std::vector<ScanWindow> windows;   ///< clamped scan windows, K entries
  /// Fused iteration: one sigma pool per row band, merged in ascending
  /// band order after the band sweep (same reduction tree as the two-pass
  /// parallel_reduce, so centers match it bit for bit).
  std::vector<std::vector<Sigma>> band_sigmas;

  // --- PPA (subsampled.cpp) ---
  LabImage stored;  ///< quantized image copy (data widths below float only)
  std::vector<std::uint8_t> row_active;  ///< per-row subset mask
  std::vector<std::uint8_t> frozen;      ///< preemptive: converged centers
  std::vector<std::uint8_t> calm_streak;
  std::vector<std::uint8_t> tile_skipped;
  /// Static 9-candidate map, cached per (width, height, K) geometry.
  std::vector<CandidateList> candidates;
  int candidates_width = 0;
  int candidates_height = 0;
  int candidates_k = 0;

  /// Sizes the per-band sigma pools (fused CPA path). The pools are
  /// re-zeroed by the band bodies each iteration; this only shapes them.
  void ensure_band_sigmas(std::size_t bands, std::size_t num_centers) {
    if (band_sigmas.size() != bands) band_sigmas.resize(bands);
    for (auto& pool : band_sigmas)
      if (pool.size() != num_centers) pool.resize(num_centers);
  }

  /// Rebuilds the candidate map only when the grid geometry changed.
  const std::vector<CandidateList>& candidate_map(const CenterGrid& grid) {
    if (candidates_width != grid.width() ||
        candidates_height != grid.height() ||
        candidates_k != grid.num_centers()) {
      candidates = build_candidate_map(grid);
      candidates_width = grid.width();
      candidates_height = grid.height();
      candidates_k = grid.num_centers();
    }
    return candidates;
  }
};

}  // namespace sslic

#include "hw/area_model.h"

namespace sslic::hw {

const AreaModel& default_area_model() {
  static const AreaModel model{};
  return model;
}

}  // namespace sslic::hw

// Visualization helpers used by the examples: boundary overlays and
// mean-color abstraction of a segmentation.
#pragma once

#include "image/image.h"

namespace sslic {

/// Returns a copy of `image` with superpixel boundary pixels painted
/// `color`. A pixel is a boundary pixel when its label differs from its
/// right or bottom neighbour.
RgbImage overlay_boundaries(const RgbImage& image, const LabelImage& labels,
                            Rgb8 color = {255, 40, 40});

/// Returns the "abstracted" image: every pixel replaced by the mean RGB of
/// its superpixel (a classic downstream use of superpixels).
RgbImage mean_color_abstraction(const RgbImage& image, const LabelImage& labels);

/// Boolean boundary mask: true where the label differs from the right or
/// bottom neighbour.
Image<std::uint8_t> boundary_mask(const LabelImage& labels);

}  // namespace sslic

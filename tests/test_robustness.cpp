// Failure-injection tests: the file parsers (PPM/PGM/.seg) must never
// crash or corrupt state on malformed input — every mutation of a valid
// file either parses to a well-formed object or throws a clean
// std::exception. Mutations are deterministic (seeded Rng).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "dataset/bsds.h"
#include "dataset/synthetic.h"
#include "image/io.h"

namespace sslic {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Applies one random mutation: byte flip, truncation, or duplication.
std::string mutate(const std::string& original, Rng& rng) {
  std::string bytes = original;
  switch (rng.next_int(0, 2)) {
    case 0: {  // flip a byte
      if (!bytes.empty()) {
        const auto pos = static_cast<std::size_t>(
            rng.next_below(static_cast<std::uint64_t>(bytes.size())));
        bytes[pos] = static_cast<char>(rng.next_int(0, 255));
      }
      break;
    }
    case 1: {  // truncate
      const auto keep = static_cast<std::size_t>(
          rng.next_below(static_cast<std::uint64_t>(bytes.size()) + 1));
      bytes.resize(keep);
      break;
    }
    default: {  // duplicate a chunk in the middle
      if (bytes.size() > 8) {
        const auto pos = static_cast<std::size_t>(
            rng.next_below(static_cast<std::uint64_t>(bytes.size() - 4)));
        bytes.insert(pos, bytes.substr(pos, 4));
      }
      break;
    }
  }
  return bytes;
}

template <typename Parser>
void fuzz_parser(const std::string& valid_bytes, const std::string& path,
                 std::uint64_t seed, int rounds, Parser parse) {
  Rng rng(seed);
  int parsed_ok = 0;
  for (int i = 0; i < rounds; ++i) {
    write_file(path, mutate(valid_bytes, rng));
    try {
      parse(path);
      ++parsed_ok;  // mutation happened to stay valid — fine
    } catch (const std::exception&) {
      // clean failure — fine
    }
  }
  std::remove(path.c_str());
  // Not every mutation can invalidate the file, but most should; this
  // guards against a parser that silently accepts garbage.
  EXPECT_LT(parsed_ok, rounds);
}

TEST(Robustness, PpmParserSurvivesMutations) {
  SyntheticParams p;
  p.width = 48;
  p.height = 32;
  const GroundTruthImage gt = generate_synthetic(p, 1);
  const std::string path = temp_path("sslic_fuzz.ppm");
  write_ppm(path, gt.image);
  const std::string valid = read_file(path);
  fuzz_parser(valid, path, 101, 200,
              [](const std::string& file) { (void)read_ppm(file); });
}

TEST(Robustness, PgmParserSurvivesMutations) {
  Image<std::uint8_t> grey(40, 24);
  for (std::size_t i = 0; i < grey.size(); ++i)
    grey.pixels()[i] = static_cast<std::uint8_t>(i * 7);
  const std::string path = temp_path("sslic_fuzz.pgm");
  write_pgm(path, grey);
  const std::string valid = read_file(path);
  fuzz_parser(valid, path, 102, 200,
              [](const std::string& file) { (void)read_pgm(file); });
}

TEST(Robustness, SegParserSurvivesMutations) {
  SyntheticParams p;
  p.width = 48;
  p.height = 32;
  const GroundTruthImage gt = generate_synthetic(p, 2);
  const std::string path = temp_path("sslic_fuzz.seg");
  write_bsds_seg(path, gt.truth);
  const std::string valid = read_file(path);
  fuzz_parser(valid, path, 103, 200,
              [](const std::string& file) { (void)read_bsds_seg(file); });
}

TEST(Robustness, PgmRoundTrip) {
  Image<std::uint8_t> grey(17, 9);
  Rng rng(5);
  for (auto& px : grey.pixels())
    px = static_cast<std::uint8_t>(rng.next_int(0, 255));
  const std::string path = temp_path("sslic_pgm_rt.pgm");
  write_pgm(path, grey);
  EXPECT_EQ(read_pgm(path), grey);
  std::remove(path.c_str());
}

TEST(Robustness, PgmAsciiP2Parses) {
  const std::string path = temp_path("sslic_p2.pgm");
  write_file(path, "P2\n3 2\n255\n0 128 255\n10 20 30\n");
  const Image<std::uint8_t> grey = read_pgm(path);
  EXPECT_EQ(grey(1, 0), 128);
  EXPECT_EQ(grey(2, 1), 30);
  std::remove(path.c_str());
}

TEST(Robustness, EmptyFilesThrowCleanly) {
  const std::string path = temp_path("sslic_empty");
  write_file(path, "");
  EXPECT_THROW(read_ppm(path), std::runtime_error);
  EXPECT_THROW(read_pgm(path), std::runtime_error);
  EXPECT_THROW(read_bsds_seg(path), std::runtime_error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sslic

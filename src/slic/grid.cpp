#include "slic/grid.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "image/gradient.h"

namespace sslic {

CenterGrid::CenterGrid(int width, int height, int num_superpixels)
    : width_(width), height_(height) {
  SSLIC_CHECK(width >= 2 && height >= 2);
  SSLIC_CHECK(num_superpixels >= 1);
  const double n = static_cast<double>(width) * static_cast<double>(height);
  spacing_ = std::sqrt(n / num_superpixels);
  nx_ = std::max(1, static_cast<int>(std::lround(width / spacing_)));
  ny_ = std::max(1, static_cast<int>(std::lround(height / spacing_)));
}

int CenterGrid::cell_x(int x) const {
  SSLIC_DCHECK(x >= 0 && x < width_);
  const auto gx = static_cast<int>(static_cast<std::int64_t>(x) * nx_ / width_);
  return std::min(gx, nx_ - 1);
}

int CenterGrid::cell_y(int y) const {
  SSLIC_DCHECK(y >= 0 && y < height_);
  const auto gy = static_cast<int>(static_cast<std::int64_t>(y) * ny_ / height_);
  return std::min(gy, ny_ - 1);
}

std::int32_t CenterGrid::center_index(int gx, int gy) const {
  SSLIC_DCHECK(gx >= 0 && gx < nx_ && gy >= 0 && gy < ny_);
  return static_cast<std::int32_t>(gy) * nx_ + gx;
}

double CenterGrid::center_pos_x(int gx) const {
  return (gx + 0.5) * static_cast<double>(width_) / nx_;
}

double CenterGrid::center_pos_y(int gy) const {
  return (gy + 0.5) * static_cast<double>(height_) / ny_;
}

std::vector<ClusterCenter> seed_centers(const CenterGrid& grid,
                                        const LabImage& lab,
                                        bool perturb_to_gradient_minimum) {
  std::vector<ClusterCenter> centers;
  Image<float> gradient;
  seed_centers(grid, lab, perturb_to_gradient_minimum, centers, gradient);
  return centers;
}

void seed_centers(const CenterGrid& grid, const LabImage& lab,
                  bool perturb_to_gradient_minimum,
                  std::vector<ClusterCenter>& centers,
                  Image<float>& gradient_scratch) {
  SSLIC_CHECK(lab.width() == grid.width() && lab.height() == grid.height());
  const Image<float>& gradient = gradient_scratch;
  if (perturb_to_gradient_minimum)
    lab_gradient_magnitude(lab, gradient_scratch);

  centers.resize(static_cast<std::size_t>(grid.num_centers()));
  for (int gy = 0; gy < grid.ny(); ++gy) {
    for (int gx = 0; gx < grid.nx(); ++gx) {
      int px = std::clamp(static_cast<int>(grid.center_pos_x(gx)), 0,
                          grid.width() - 1);
      int py = std::clamp(static_cast<int>(grid.center_pos_y(gy)), 0,
                          grid.height() - 1);
      if (perturb_to_gradient_minimum) {
        const Point p = argmin_gradient_3x3(gradient, px, py);
        px = p.x;
        py = p.y;
      }
      const LabF& color = lab(px, py);
      ClusterCenter& c =
          centers[static_cast<std::size_t>(grid.center_index(gx, gy))];
      c = {static_cast<double>(color.L), static_cast<double>(color.a),
           static_cast<double>(color.b), static_cast<double>(px),
           static_cast<double>(py)};
    }
  }
}

std::vector<CandidateList> build_candidate_map(const CenterGrid& grid) {
  std::vector<CandidateList> map(
      static_cast<std::size_t>(grid.nx()) * static_cast<std::size_t>(grid.ny()));
  for (int gy = 0; gy < grid.ny(); ++gy) {
    for (int gx = 0; gx < grid.nx(); ++gx) {
      CandidateList& list =
          map[static_cast<std::size_t>(grid.center_index(gx, gy))];
      std::size_t slot = 0;
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
          const int cx = std::clamp(gx + dx, 0, grid.nx() - 1);
          const int cy = std::clamp(gy + dy, 0, grid.ny() - 1);
          list[slot++] = grid.center_index(cx, cy);
        }
      }
    }
  }
  return map;
}

LabelImage initial_labels(const CenterGrid& grid) {
  LabelImage labels;
  initial_labels(grid, labels);
  return labels;
}

void initial_labels(const CenterGrid& grid, LabelImage& labels) {
  if (labels.width() != grid.width() || labels.height() != grid.height())
    labels = LabelImage(grid.width(), grid.height());
  for (int y = 0; y < grid.height(); ++y) {
    const int gy = grid.cell_y(y);
    for (int x = 0; x < grid.width(); ++x)
      labels(x, y) = grid.center_index(grid.cell_x(x), gy);
  }
}

}  // namespace sslic

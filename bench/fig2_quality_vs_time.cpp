// Reproduces paper Fig. 2: undersegmentation error versus runtime (2a) and
// boundary recall versus runtime (2b) for SLIC, S-SLIC(0.5), and
// S-SLIC(0.25) on a Berkeley-like corpus with K = 900 superpixels.
//
// Time is wall-clock on this CPU (the paper used an i7-4600M); the claims
// under reproduction are relative — S-SLIC reaches SLIC's quality in ~25%
// (USE) / ~15% (recall) less time. The bench also quantifies the
// abstract's memory-bandwidth-reduction claim with the instrumented
// DRAM-traffic counters.
#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "slic/connectivity.h"
#include "slic/instrumentation.h"
#include "slic/fusion.h"
#include "slic/slic_baseline.h"
#include "slic/subsampled.h"

namespace {

using namespace sslic;
using bench::CurvePoint;

struct Variant {
  std::string name;
  bool cpa = false;    // true = original SLIC (center perspective)
  double ratio = 1.0;  // pixel subsampling ratio for PPA variants
  int iterations = 0;  // subset iterations (scaled by 1/ratio)
  std::vector<CurvePoint> curve;
  double traffic_bytes_per_image = 0.0;
};

// Runs one variant over the corpus, accumulating per-iteration curves.
void run_variant(Variant& variant, const bench::BenchConfig& config) {
  variant.curve.assign(static_cast<std::size_t>(variant.iterations), {});

  for (int i = 0; i < config.images; ++i) {
    const MultiAnnotatorImage gt = generate_multi_annotator(
        config.dataset_params(), config.seed + static_cast<std::uint64_t>(i),
        config.annotators);
    SlicParams params = config.slic_params();
    params.subsample_ratio = variant.ratio;
    params.max_iterations = variant.iterations;
    params.enforce_connectivity = false;  // applied per snapshot instead

    double cumulative_ms = 0.0;
    std::size_t cumulative_visited = 0;
    Instrumentation instr;
    const auto callback = [&](const IterationStats& stats,
                              const LabelImage& labels,
                              const std::vector<ClusterCenter>&) {
      cumulative_ms += stats.elapsed_ms;
      cumulative_visited += stats.pixels_visited;
      LabelImage snapshot = labels;
      enforce_connectivity(snapshot, params.num_superpixels);
      CurvePoint& point = variant.curve[static_cast<std::size_t>(stats.iteration)];
      point.time_ms += cumulative_ms;
      point.pixels_visited += cumulative_visited;
      point.quality += bench::measure_quality(snapshot, gt.truths);
    };

    if (variant.cpa) {
      (void)CpaSlic(params).segment(gt.image, callback, &instr);
    } else {
      (void)PpaSlic(params).segment(gt.image, callback, &instr);
    }
    variant.traffic_bytes_per_image += static_cast<double>(instr.traffic.total());
  }
  for (auto& point : variant.curve) {
    point.time_ms /= config.images;
    point.pixels_visited /= static_cast<std::size_t>(config.images);
    point.quality /= config.images;
  }
  variant.traffic_bytes_per_image /= config.images;
}

// Earliest mean time at which the variant's metric reaches `target`
// (<= for USE, >= for recall); negative if never.
double time_to_reach(const Variant& v, double target, bool smaller_is_better) {
  // 2% slack keeps asymptote ties from hiding a parity that is reached for
  // all practical purposes.
  for (const auto& point : v.curve) {
    const double value = smaller_is_better ? point.quality.use : point.quality.recall;
    if (smaller_is_better ? value <= target * 1.02 : value >= target * 0.98)
      return point.time_ms;
  }
  return -1.0;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchConfig config = bench::BenchConfig::parse(argc, argv);
  // Traffic columns use the paper's two-pass accounting; pin fusion off
  // so the CPA/PPA traffic ratios stay comparable to Table 2.
  set_fusion(false);
  // Same reasoning for the assignment schedule: the row sweep's
  // window-based traffic charges are the paper's convention; the cluster
  // schedule's once-per-pixel accounting would skew the modelled bytes.
  set_assign_strategy(AssignStrategy::kRow);
  bench::banner("Fig. 2 — quality vs runtime: SLIC vs S-SLIC (CPU)", config);
  std::cout << "annotators per image: " << config.annotators
            << " (use --annotators=4 for BSDS-like human-disagreement "
               "statistics; default 1 keeps the bench fast)\n";

  std::vector<Variant> variants;
  variants.push_back({"SLIC", true, 1.0, config.iterations, {}, 0.0});
  variants.push_back({"gSLIC-PPA (1.0)", false, 1.0, config.iterations, {}, 0.0});
  variants.push_back({"S-SLIC (0.5)", false, 0.5, config.iterations * 2, {}, 0.0});
  variants.push_back({"S-SLIC (0.25)", false, 0.25, config.iterations * 4, {}, 0.0});
  for (auto& v : variants) run_variant(v, config);

  for (const char* which : {"use", "recall"}) {
    const bool use_metric = std::string(which) == "use";
    Table table(use_metric
                    ? "Fig. 2a — undersegmentation error vs time (mean over corpus)"
                    : "Fig. 2b — boundary recall vs time (mean over corpus)");
    table.set_header({"variant", "iter", "time ms", use_metric ? "USE" : "recall",
                      "USE(min)", "ASA"});
    for (const auto& v : variants) {
      // Print every full-sweep-equivalent point to keep the table compact.
      const int stride = std::max(1, static_cast<int>(std::lround(1.0 / v.ratio)));
      for (std::size_t i = static_cast<std::size_t>(stride) - 1;
           i < v.curve.size(); i += static_cast<std::size_t>(stride)) {
        const CurvePoint& p = v.curve[i];
        table.add_row({v.name, std::to_string(i + 1), Table::num(p.time_ms, 1),
                       Table::num(use_metric ? p.quality.use : p.quality.recall, 4),
                       Table::num(p.quality.use_min, 4),
                       Table::num(p.quality.asa, 4)});
      }
      table.add_separator();
    }
    std::cout << table << '\n';
  }

  // Headline relative claims.
  const Variant& slic = variants[0];
  const double final_use = slic.curve.back().quality.use;
  const double final_recall = slic.curve.back().quality.recall;
  const double slic_use_time = time_to_reach(slic, final_use, true);
  const double slic_recall_time = time_to_reach(slic, final_recall, false);

  Table summary("Time to reach SLIC's converged quality (paper: -25% USE, -15% recall)");
  summary.set_header({"variant", "t(USE parity) ms", "saving", "t(recall parity) ms",
                      "saving", "DRAM bytes/frame", "vs SLIC"});
  for (const auto& v : variants) {
    const double t_use = time_to_reach(v, final_use, true);
    const double t_recall = time_to_reach(v, final_recall, false);
    const auto saving = [](double t, double base) {
      if (t < 0.0 || base <= 0.0) return std::string("n/a");
      return Table::num((1.0 - t / base) * 100.0, 0) + "%";
    };
    summary.add_row(
        {v.name, t_use < 0 ? "n/a" : Table::num(t_use, 1),
         saving(t_use, slic_use_time),
         t_recall < 0 ? "n/a" : Table::num(t_recall, 1),
         saving(t_recall, slic_recall_time),
         Table::si(v.traffic_bytes_per_image, 1) + "B",
         Table::num(variants[0].traffic_bytes_per_image /
                        std::max(1.0, v.traffic_bytes_per_image), 2) + "x"});
  }
  summary.add_note("traffic uses the software-prototype DRAM convention of "
                   "slic/instrumentation.h. The abstract's 1.8x bandwidth-"
                   "reduction claim is the gSLIC-PPA(1.0) row divided by the "
                   "S-SLIC(0.5) row at the same subset-iteration count "
                   "(subsampling halves the per-iteration pixel stream; "
                   "fixed streams keep it below 2x).");
  const double ppa_full = variants[1].traffic_bytes_per_image *
                          (static_cast<double>(variants[2].iterations) /
                           variants[1].iterations) / 2.0;
  std::cout << summary;
  std::cout << "\nsubsampling bandwidth reduction, PPA(1.0) vs S-SLIC(0.5) at "
               "equal subset-iteration count: "
            << Table::num(variants[1].traffic_bytes_per_image /
                          std::max(1.0, variants[2].traffic_bytes_per_image / 2.0), 2)
            << "x (paper abstract: 1.8x)\n";
  (void)ppa_full;
  return 0;
}

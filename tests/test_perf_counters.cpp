// Tests for the hardware perf-counter layer (common/perf_counters.h).
//
// The contract under test is graceful degradation: every API must behave
// identically — same metric label sets, same program results, no crashes —
// whether perf_event_open is live (bare-metal Linux with a PMU) or degraded
// (containers, PMU-less VMs, SSLIC_PERF=0, non-Linux). The suite therefore
// asserts exact values only where they are hardware-independent (manually
// constructed Deltas, the no-op paths, export naming through PhaseAccum)
// and containment/monotonicity elsewhere, so it is green in both worlds.
// The TSan job runs ConcurrentSampling and ConcurrentEnableToggle to prove
// scoped sampling from pool workers is race-free.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/perf_counters.h"
#include "common/telemetry.h"
#include "common/thread_pool.h"

namespace sslic {
namespace {

/// Sink that records only the metric names it sees.
class NameSink : public telemetry::TelemetrySink {
 public:
  void write(const telemetry::MetricSample& sample) override {
    names.insert(sample.name);
  }
  std::set<std::string> names;
};

std::set<std::string> metric_names(const telemetry::MetricsRegistry& registry) {
  NameSink sink;
  registry.flush_to(sink);
  return sink.names;
}

/// Restores the enabled flag (and drops phase accumulations) on scope exit
/// so tests compose in any order.
struct PerfStateGuard {
  bool enabled = perf::enabled();
  ~PerfStateGuard() {
    perf::set_enabled(enabled);
    perf::reset_phases();
  }
};

/// A fully valid Delta with event i holding `base * (i + 1)`.
perf::Delta make_delta(double base) {
  perf::Delta d;
  for (int i = 0; i < perf::kNumEvents; ++i) {
    d.value[static_cast<std::size_t>(i)] = base * (i + 1);
    d.valid[static_cast<std::size_t>(i)] = true;
  }
  return d;
}

TEST(PerfCounters, StatusIsNonEmptyAndStable) {
  const std::string& first = perf::status();
  EXPECT_FALSE(first.empty());
  // Detection runs once; repeated queries return the same line.
  EXPECT_EQ(&perf::status(), &first);
  EXPECT_EQ(perf::status(), first);
}

TEST(PerfCounters, EnabledImpliesAvailable) {
  // enabled() can never be true while the backend is unavailable; arming an
  // unavailable backend must stay a no-op instead of faulting.
  PerfStateGuard guard;
  perf::set_enabled(true);
  if (!perf::available()) {
    EXPECT_FALSE(perf::enabled());
  }
  perf::set_enabled(false);
  EXPECT_FALSE(perf::enabled());
}

TEST(PerfCounters, DisabledScopedSampleIsInert) {
  PerfStateGuard guard;
  perf::set_enabled(false);
  perf::reset_phases();
  {
    SSLIC_PERF_SCOPE("test.inert");
    volatile int sink = 0;
    for (int i = 0; i < 1000; ++i) sink = sink + i;
  }
  EXPECT_EQ(perf::phase("test.inert").samples(), 0u);
  EXPECT_FALSE(perf::phase("test.inert").total().has(perf::Event::kCycles));
}

TEST(PerfCounters, DisabledDeltaOutIsAllInvalid) {
  PerfStateGuard guard;
  perf::set_enabled(false);
  perf::Delta delta = make_delta(1.0);  // must be overwritten, not merged
  {
    perf::ScopedSample sample(&delta);
    volatile int sink = 0;
    for (int i = 0; i < 1000; ++i) sink = sink + i;
  }
  for (int i = 0; i < perf::kNumEvents; ++i)
    EXPECT_FALSE(delta.valid[static_cast<std::size_t>(i)]) << "event " << i;
  EXPECT_TRUE(std::isnan(delta.ipc()));
}

// The fallback-parity contract: the set of NON-perf metric labels a
// workload exports must be byte-identical with counters armed or disarmed,
// and any additional armed-only metrics must live under the reserved
// `sslic.perf.` prefix. (With SSLIC_PERF=0 or no PMU, both runs are the
// no-op backend and the sets match trivially — which is itself the point.)
TEST(PerfCounters, FallbackParityOfExportedLabels) {
  PerfStateGuard guard;
  const auto run_workload = [](bool armed) {
    perf::set_enabled(armed);
    perf::reset_phases();
    telemetry::MetricsRegistry registry;
    registry.counter("sslic.app.frames").add(3);
    registry.gauge("sslic.app.fps").set(30.0);
    {
      SSLIC_PERF_SCOPE("parity.work");
      volatile double sink = 0.0;
      for (int i = 0; i < 20000; ++i) sink = sink + i * 0.5;
    }
    perf::export_phases(registry);
    return metric_names(registry);
  };
  const std::set<std::string> disarmed = run_workload(false);
  const std::set<std::string> armed = run_workload(true);

  std::set<std::string> armed_only;
  for (const std::string& name : armed)
    if (disarmed.find(name) == disarmed.end()) armed_only.insert(name);
  for (const std::string& name : armed_only)
    EXPECT_EQ(name.rfind("sslic.perf.", 0), 0u)
        << "armed-only metric outside the sslic.perf. namespace: " << name;
  for (const std::string& name : disarmed)
    EXPECT_TRUE(armed.find(name) != armed.end())
        << "metric lost when arming counters: " << name;
}

TEST(PerfCounters, ReadsAreMonotonicAndNonNegative) {
  PerfStateGuard guard;
  perf::set_enabled(perf::available());
  perf::CounterGroup& group = perf::this_thread_group();
  if (!group.active()) {
    const perf::Sample s = group.read();
    EXPECT_FALSE(s.any_valid());
    return;  // degraded environment: the inactive contract is the test
  }
  perf::Sample previous = group.read();
  for (int rep = 0; rep < 5; ++rep) {
    volatile double sink = 0.0;
    for (int i = 0; i < 50000; ++i) sink = sink + i * 0.5;
    const perf::Sample current = group.read();
    for (int e = 0; e < perf::kNumEvents; ++e) {
      const auto idx = static_cast<std::size_t>(e);
      if (!previous.valid[idx] || !current.valid[idx]) continue;
      EXPECT_GE(current.raw[idx], previous.raw[idx]) << "event " << e;
      EXPECT_GE(current.time_enabled[idx], previous.time_enabled[idx]);
    }
    const perf::Delta d = perf::CounterGroup::delta(previous, current);
    for (int e = 0; e < perf::kNumEvents; ++e) {
      const auto idx = static_cast<std::size_t>(e);
      if (d.valid[idx]) {
        EXPECT_GE(d.value[idx], 0.0) << "event " << e;
      }
    }
    previous = current;
  }
}

TEST(PerfCounters, ScopedNestingMatchesSpanPairing) {
  PerfStateGuard guard;
  perf::set_enabled(perf::available());
  perf::Delta outer, inner;
  {
    perf::ScopedSample outer_sample(&outer);
    volatile double sink = 0.0;
    for (int i = 0; i < 10000; ++i) sink = sink + i;
    {
      perf::ScopedSample inner_sample(&inner);
      for (int i = 0; i < 10000; ++i) sink = sink + i;
    }
    for (int i = 0; i < 10000; ++i) sink = sink + i;
  }
  // Containment: whatever the inner scope counted, the outer scope counted
  // at least as much — the same pairing contract as nested trace spans.
  // In a degraded environment both deltas are all-invalid and the loop is
  // vacuous, which is exactly the no-op parity the layer promises.
  for (int e = 0; e < perf::kNumEvents; ++e) {
    const auto idx = static_cast<std::size_t>(e);
    EXPECT_EQ(outer.valid[idx], inner.valid[idx]) << "event " << e;
    if (outer.valid[idx] && inner.valid[idx]) {
      EXPECT_GE(outer.value[idx], inner.value[idx]) << "event " << e;
    }
  }
}

TEST(PerfCounters, DeltaDerivedMetrics) {
  perf::Delta d;
  d.value[static_cast<std::size_t>(perf::Event::kCycles)] = 1000.0;
  d.valid[static_cast<std::size_t>(perf::Event::kCycles)] = true;
  d.value[static_cast<std::size_t>(perf::Event::kInstructions)] = 2500.0;
  d.valid[static_cast<std::size_t>(perf::Event::kInstructions)] = true;
  d.value[static_cast<std::size_t>(perf::Event::kLlcMisses)] = 5.0;
  d.valid[static_cast<std::size_t>(perf::Event::kLlcMisses)] = true;
  EXPECT_DOUBLE_EQ(d.ipc(), 2.5);
  EXPECT_DOUBLE_EQ(d.mpki(perf::Event::kLlcMisses), 2.0);
  EXPECT_DOUBLE_EQ(d.dram_bytes(), 5.0 * perf::kCacheLineBytes);
  EXPECT_DOUBLE_EQ(d.bytes_per_instruction(), 5.0 * perf::kCacheLineBytes / 2500.0);
  // Events that never opened poison only their own derived metrics.
  EXPECT_TRUE(std::isnan(d.stalled_fraction()));
  EXPECT_TRUE(std::isnan(d.mpki(perf::Event::kBranchMisses)));

  perf::Delta empty;
  EXPECT_TRUE(std::isnan(empty.ipc()));
  EXPECT_TRUE(std::isnan(empty.dram_bytes()));
}

TEST(PerfCounters, DeltaAccumulateMergesValidity) {
  perf::Delta total;
  perf::Delta partial;
  partial.value[static_cast<std::size_t>(perf::Event::kCycles)] = 10.0;
  partial.valid[static_cast<std::size_t>(perf::Event::kCycles)] = true;
  total += partial;
  total += partial;
  total += perf::Delta{};  // all-invalid: must not disturb the totals
  EXPECT_DOUBLE_EQ(total[perf::Event::kCycles], 20.0);
  EXPECT_TRUE(total.has(perf::Event::kCycles));
  EXPECT_FALSE(total.has(perf::Event::kInstructions));
}

TEST(PerfCounters, PhaseAccumAndExportNaming) {
  PerfStateGuard guard;
  perf::reset_phases();
  // Hardware-independent: feed a hand-built Delta through the accumulator
  // and check the exported metric names and values exactly.
  perf::phase("unit.test_phase").add(make_delta(100.0));
  perf::phase("unit.test_phase").add(make_delta(10.0));
  EXPECT_EQ(perf::phase("unit.test_phase").samples(), 2u);
  const perf::Delta total = perf::phase("unit.test_phase").total();
  EXPECT_DOUBLE_EQ(total[perf::Event::kCycles], 110.0);
  EXPECT_DOUBLE_EQ(total[perf::Event::kInstructions], 220.0);

  telemetry::MetricsRegistry registry;
  perf::export_phases(registry);
  const std::set<std::string> names = metric_names(registry);
  for (const char* expected :
       {"sslic.perf.unit.test_phase.cycles",
        "sslic.perf.unit.test_phase.instructions",
        "sslic.perf.unit.test_phase.l1d_misses",
        "sslic.perf.unit.test_phase.llc_misses",
        "sslic.perf.unit.test_phase.branch_misses",
        "sslic.perf.unit.test_phase.stalled_cycles",
        "sslic.perf.unit.test_phase.ipc",
        "sslic.perf.unit.test_phase.llc_mpki",
        "sslic.perf.unit.test_phase.dram_bytes",
        "sslic.perf.unit.test_phase.samples"}) {
    EXPECT_TRUE(names.find(expected) != names.end()) << expected;
  }
  EXPECT_DOUBLE_EQ(
      registry.gauge("sslic.perf.unit.test_phase.ipc").value(),
      220.0 / 110.0);
}

TEST(PerfCounters, ResetPhasesKeepsReferencesValid) {
  PerfStateGuard guard;
  perf::PhaseAccum& accum = perf::phase("unit.reset_phase");
  accum.add(make_delta(5.0));
  EXPECT_EQ(accum.samples(), 1u);
  perf::reset_phases();
  EXPECT_EQ(accum.samples(), 0u);  // same object, zeroed
  EXPECT_FALSE(accum.total().has(perf::Event::kCycles));
  accum.add(make_delta(2.0));
  EXPECT_DOUBLE_EQ(perf::phase("unit.reset_phase").total()[perf::Event::kCycles],
                   2.0);
}

TEST(PerfCounters, IntervalSampleAccumulatesBackToBack) {
  PerfStateGuard guard;
  perf::set_enabled(perf::available());
  perf::reset_phases();
  perf::IntervalSample interval;
  volatile double sink = 0.0;
  for (int i = 0; i < 10000; ++i) sink = sink + i;
  interval.complete("unit.interval_a");
  for (int i = 0; i < 10000; ++i) sink = sink + i;
  interval.complete("unit.interval_b");
  if (perf::enabled() && perf::this_thread_group().active()) {
    EXPECT_EQ(perf::phase("unit.interval_a").samples(), 1u);
    EXPECT_EQ(perf::phase("unit.interval_b").samples(), 1u);
  } else {
    EXPECT_EQ(perf::phase("unit.interval_a").samples(), 0u);
    EXPECT_EQ(perf::phase("unit.interval_b").samples(), 0u);
  }
}

// Each thread samples through its own thread_local CounterGroup into the
// shared phase registry; TSan must see no races. Runs in every world: the
// degraded path still exercises the shared registry and the atomic
// enabled-flag loads.
TEST(PerfCounters, ConcurrentSampling) {
  PerfStateGuard guard;
  perf::set_enabled(perf::available());
  perf::reset_phases();
  constexpr int kThreads = 4;
  constexpr int kScopesPerThread = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kScopesPerThread; ++i) {
        SSLIC_PERF_SCOPE("unit.concurrent");
        volatile int sink = 0;
        for (int k = 0; k < 100; ++k) sink = sink + k;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const std::uint64_t samples = perf::phase("unit.concurrent").samples();
  if (perf::enabled())
    EXPECT_EQ(samples, static_cast<std::uint64_t>(kThreads) * kScopesPerThread);
  else
    EXPECT_EQ(samples, 0u);
}

TEST(PerfCounters, ConcurrentSamplingInsideParallelFor) {
  PerfStateGuard guard;
  perf::set_enabled(perf::available());
  perf::reset_phases();
  std::atomic<std::int64_t> work{0};
  parallel_for(0, 64, [&](std::int64_t lo, std::int64_t hi) {
    SSLIC_PERF_SCOPE("unit.pool_chunk");
    std::int64_t local = 0;
    for (std::int64_t i = lo; i < hi; ++i) local += i;
    work.fetch_add(local, std::memory_order_relaxed);
  });
  EXPECT_EQ(work.load(), 64 * 63 / 2);
}

TEST(PerfCounters, ConcurrentEnableToggle) {
  PerfStateGuard guard;
  std::atomic<bool> stop{false};
  std::thread toggler([&] {
    for (int i = 0; i < 500 && !stop.load(std::memory_order_relaxed); ++i)
      perf::set_enabled(i % 2 == 0);
  });
  for (int i = 0; i < 500; ++i) {
    SSLIC_PERF_SCOPE("unit.toggle");
    volatile int sink = 0;
    for (int k = 0; k < 50; ++k) sink = sink + k;
  }
  stop.store(true, std::memory_order_relaxed);
  toggler.join();
  // No assertion on the sample count (it races with the toggler by design);
  // the test is that TSan sees no data race and nothing crashes.
  SUCCEED();
}

}  // namespace
}  // namespace sslic

// Tests for the accelerator golden model (slic/hw_datapath): integer
// distance datapath, distance-register quantization, FSM schedule, and
// agreement with the floating-point PPA reference.
#include <gtest/gtest.h>

#include "dataset/synthetic.h"
#include "metrics/segmentation_metrics.h"
#include "slic/connectivity.h"
#include "slic/hw_datapath.h"
#include "slic/subsampled.h"

namespace sslic {
namespace {

GroundTruthImage make_case() {
  SyntheticParams p;
  p.width = 128;
  p.height = 96;
  p.min_regions = 4;
  p.max_regions = 8;
  return generate_synthetic(p, 21);
}

HwConfig quick_config() {
  HwConfig config;
  config.num_superpixels = 48;
  config.iterations = 8;
  config.subsample_ratio = 0.5;
  return config;
}

// --------------------------------------------------------- integer distance

TEST(IntegerDistance, ZeroForIdenticalOperands) {
  const Lab8 pixel{100, 120, 140};
  const HwCenter center{100, 120, 140, 10, 20};
  EXPECT_EQ(HwSlic::integer_distance(pixel, 10, 20, center, 64), 0);
}

TEST(IntegerDistance, ColorTermIsSumOfSquares) {
  const Lab8 pixel{110, 120, 140};
  const HwCenter center{100, 125, 141, 10, 20};
  // dl=10, da=-5, db=-1 -> 100+25+1 = 126; no spatial offset.
  EXPECT_EQ(HwSlic::integer_distance(pixel, 10, 20, center, 64), 126);
}

TEST(IntegerDistance, SpatialTermScaledByWeight) {
  const Lab8 pixel{0, 0, 0};
  const HwCenter center{0, 0, 0, 0, 0};
  // ds2 = 3^2+4^2 = 25; weight 256 (Q8 of 1.0) -> term = 25.
  EXPECT_EQ(HwSlic::integer_distance(pixel, 3, 4, center, 256), 25);
  // weight 128 (Q8 of 0.5) -> floor(25*128/256) = 12.
  EXPECT_EQ(HwSlic::integer_distance(pixel, 3, 4, center, 128), 12);
}

TEST(IntegerDistance, MonotoneInColorGap) {
  const HwCenter center{100, 128, 128, 0, 0};
  int prev = -1;
  for (int l = 100; l <= 200; l += 10) {
    const Lab8 pixel{static_cast<std::uint8_t>(l), 128, 128};
    const int d = HwSlic::integer_distance(pixel, 0, 0, center, 64);
    EXPECT_GT(d, prev);
    prev = d;
  }
}

// ----------------------------------------------------- distance quantization

TEST(QuantizeDistance, ZeroBitsIsIdentity) {
  EXPECT_EQ(HwSlic::quantize_distance(123456, 0, 10), 123456);
}

TEST(QuantizeDistance, KeepsTopBitsAndSaturates) {
  EXPECT_EQ(HwSlic::quantize_distance(0x3FF, 8, 2), 0xFF);       // exact top bits
  EXPECT_EQ(HwSlic::quantize_distance(0x40000, 8, 2), 0xFF);     // saturates
  EXPECT_EQ(HwSlic::quantize_distance(16, 8, 2), 4);
}

TEST(QuantizeDistance, PreservesWeakOrder) {
  // Quantization may merge values but must never invert an ordering.
  for (int a = 0; a < 2000; a += 37) {
    for (int b = a; b < 2000; b += 91) {
      EXPECT_LE(HwSlic::quantize_distance(a, 8, 3),
                HwSlic::quantize_distance(b, 8, 3));
    }
  }
}

// ------------------------------------------------------------ golden model

TEST(HwSlic, ProducesValidSegmentation) {
  const GroundTruthImage gt = make_case();
  const Segmentation seg = HwSlic(quick_config()).segment(gt.image);
  EXPECT_EQ(seg.labels.width(), 128);
  EXPECT_EQ(seg.labels.height(), 96);
  for (const auto label : seg.labels.pixels()) EXPECT_GE(label, 0);
  EXPECT_TRUE(is_fully_connected(seg.labels));
}

TEST(HwSlic, RunsExactlyConfiguredIterations) {
  const GroundTruthImage gt = make_case();
  HwConfig config = quick_config();
  config.iterations = 5;
  const Segmentation seg = HwSlic(config).segment(gt.image);
  EXPECT_EQ(seg.iterations_run, 5);  // fixed FSM schedule: no early exit
  EXPECT_EQ(seg.trace.size(), 5u);
}

TEST(HwSlic, StatsAccounting) {
  const GroundTruthImage gt = make_case();
  HwConfig config = quick_config();
  config.iterations = 4;
  config.subsample_ratio = 0.5;
  HwRunStats stats;
  (void)HwSlic(config).segment(gt.image, &stats);

  const std::uint64_t n = 128 * 96;
  EXPECT_EQ(stats.pixels_converted, n);
  EXPECT_EQ(stats.iterations, 4u);
  // Half the pixels visited per iteration (checkerboard subsets).
  EXPECT_NEAR(static_cast<double>(stats.pixels_visited),
              static_cast<double>(4 * n / 2), static_cast<double>(n) * 0.02);
  // Index map streams in and out fully every iteration.
  EXPECT_EQ(stats.dram_index_read, 4 * n);
  EXPECT_EQ(stats.dram_index_write, 4 * n);
  EXPECT_GT(stats.dram_center_read, 0u);
  EXPECT_GT(stats.center_updates, 0u);
}

TEST(HwSlic, MatchesFloatPpaQuality) {
  // The integer datapath must track the float PPA closely. Tolerances are
  // looser than Section 6.1's data-width deltas because the golden model
  // also includes the LUT color-conversion unit, whose 8-segment PWL
  // introduces a/b errors of a few LSB — enough to blur the synthetic
  // corpus's weakest (sub-LSB contrast) region boundaries. The pure
  // storage-width effect is tested separately (PpaSlic.EightBitMatches-
  // FloatClosely) and the conversion-accuracy trade-off is quantified in
  // bench/sec61_bitwidth.
  const GroundTruthImage gt = make_case();

  HwConfig config = quick_config();
  config.iterations = 12;
  const Segmentation hw = HwSlic(config).segment(gt.image);

  SlicParams p;
  p.num_superpixels = config.num_superpixels;
  p.compactness = config.compactness;
  p.max_iterations = config.iterations;
  p.subsample_ratio = config.subsample_ratio;
  p.perturb_centers = false;  // the accelerator uses static init
  const Segmentation sw = PpaSlic(p).segment(gt.image);

  const double asa_hw = achievable_segmentation_accuracy(hw.labels, gt.truth);
  const double asa_sw = achievable_segmentation_accuracy(sw.labels, gt.truth);
  EXPECT_GT(asa_hw, 0.94);
  EXPECT_NEAR(asa_hw, asa_sw, 0.05);

  const double use_hw = undersegmentation_error_min(hw.labels, gt.truth);
  const double use_sw = undersegmentation_error_min(sw.labels, gt.truth);
  EXPECT_LT(use_hw, use_sw + 0.08);
}

TEST(HwSlic, EightBitDistanceRegisterStillAccurate) {
  // "Each unit ... returns the 8-bit distance": keeping only the top 8 bits
  // of the combined metric must not change quality materially (the paper's
  // relative-comparison robustness argument).
  const GroundTruthImage gt = make_case();

  HwConfig exact = quick_config();
  exact.iterations = 12;
  HwConfig reg8 = exact;
  reg8.distance_register_bits = 8;

  const Segmentation a = HwSlic(exact).segment(gt.image);
  const Segmentation b = HwSlic(reg8).segment(gt.image);

  const double asa_a = achievable_segmentation_accuracy(a.labels, gt.truth);
  const double asa_b = achievable_segmentation_accuracy(b.labels, gt.truth);
  EXPECT_NEAR(asa_b, asa_a, 0.05);
}

TEST(HwSlic, Deterministic) {
  const GroundTruthImage gt = make_case();
  const Segmentation a = HwSlic(quick_config()).segment(gt.image);
  const Segmentation b = HwSlic(quick_config()).segment(gt.image);
  EXPECT_EQ(a.labels, b.labels);
}

TEST(HwSlic, SubsampleRatioReducesImageTraffic) {
  const GroundTruthImage gt = make_case();
  HwConfig full = quick_config();
  full.subsample_ratio = 1.0;
  HwConfig half = quick_config();
  half.subsample_ratio = 0.5;
  HwRunStats stats_full, stats_half;
  (void)HwSlic(full).segment(gt.image, &stats_full);
  (void)HwSlic(half).segment(gt.image, &stats_half);
  // Same iteration count: image-channel traffic should not grow; the
  // bandwidth reduction claim of the abstract is quantified in the bench.
  EXPECT_LE(stats_half.dram_total(), stats_full.dram_total());
}

TEST(HwSlic, CentersStayInsideImage) {
  const GroundTruthImage gt = make_case();
  const Segmentation seg = HwSlic(quick_config()).segment(gt.image);
  for (const auto& c : seg.centers) {
    EXPECT_GE(c.x, 0.0);
    EXPECT_LT(c.x, 128.0);
    EXPECT_GE(c.y, 0.0);
    EXPECT_LT(c.y, 96.0);
  }
}

TEST(HwSlic, InvalidConfigThrows) {
  HwConfig config = quick_config();
  config.iterations = 0;
  EXPECT_THROW(HwSlic{config}, ContractViolation);
  config = quick_config();
  config.distance_register_bits = 2;
  EXPECT_THROW(HwSlic{config}, ContractViolation);
}

}  // namespace
}  // namespace sslic

// ASCII table rendering for the benchmark harness. Every paper table/figure
// bench prints its rows through this type so output is uniform and easy to
// diff against the paper's published cells.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace sslic {

/// Column-aligned ASCII table with an optional title and footnotes.
class Table {
 public:
  explicit Table(std::string title = {});

  /// Sets the header row. Must be called before adding rows.
  void set_header(std::vector<std::string> header);

  /// Adds one data row; its size must match the header (if set).
  void add_row(std::vector<std::string> row);

  /// Adds a horizontal separator between the rows added so far and later rows.
  void add_separator();

  /// Adds a footnote line printed under the table.
  void add_note(std::string note);

  /// Renders the table.
  [[nodiscard]] std::string to_string() const;

  /// Convenience: renders to a stream.
  friend std::ostream& operator<<(std::ostream& os, const Table& t);

  /// Formats a double with `digits` digits after the decimal point.
  static std::string num(double v, int digits = 2);

  /// Formats a value with an SI-style suffix (e.g. 1.5M, 318.0M).
  static std::string si(double v, int digits = 1);

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator = false;
  };

  std::string title_;
  std::vector<std::string> header_;
  std::vector<Row> rows_;
  std::vector<std::string> notes_;
};

}  // namespace sslic

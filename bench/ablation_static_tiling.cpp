// Ablation (paper Section 4.3): the accelerator precomputes the 9-nearest-
// center tiling statically and skips the gradient-based center
// perturbation; the paper states this has "minimal effect on the accuracy
// of the algorithm". This bench quantifies that claim.
#include <iostream>

#include "bench_common.h"
#include "slic/subsampled.h"

int main(int argc, char** argv) {
  using namespace sslic;
  bench::BenchConfig config = bench::BenchConfig::parse(argc, argv);
  bench::banner("Ablation — static tiling / gradient perturbation (CPU)", config);

  const SyntheticCorpus corpus(config.dataset_params(), config.images,
                               config.seed);

  struct Row {
    std::string name;
    bool perturb;
    bench::Quality quality;
  };
  std::vector<Row> rows = {
      {"gradient-perturbed init (SLIC reference)", true, {}},
      {"static grid init (accelerator)", false, {}},
  };

  for (int i = 0; i < corpus.size(); ++i) {
    const GroundTruthImage gt = corpus.generate(i);
    for (auto& row : rows) {
      SlicParams params = config.slic_params();
      params.subsample_ratio = 0.5;
      params.max_iterations = config.iterations * 2;
      params.perturb_centers = row.perturb;
      const Segmentation seg = PpaSlic(params).segment(gt.image);
      row.quality += bench::measure_quality(seg.labels, gt.truth);
    }
  }

  Table table("Initialization strategy: quality impact");
  table.set_header({"initialization", "USE", "USE(min)", "recall", "ASA"});
  for (auto& row : rows) {
    row.quality /= config.images;
    table.add_row({row.name, Table::num(row.quality.use, 4),
                   Table::num(row.quality.use_min, 4),
                   Table::num(row.quality.recall, 4),
                   Table::num(row.quality.asa, 4)});
  }
  const double d_use = rows[1].quality.use - rows[0].quality.use;
  table.add_note("paper Section 4.3: 'statically assigning these values has "
                 "minimal effect on the accuracy'. Measured dUSE = " +
                 Table::num(d_use, 4) + ".");
  std::cout << table;
  return 0;
}

// Fixed-capacity FIFO stream, the inter-process channel primitive of
// HLS-style hardware descriptions (ac_channel / hls::stream equivalents).
//
// Capacity is a compile-time constant (a real FIFO's depth); overflow and
// underflow are contract violations, exactly as an ac_channel assert would
// fire in C simulation.
#pragma once

#include <array>
#include <cstddef>

#include "common/check.h"

namespace sslic::hls {

/// Bounded single-producer single-consumer FIFO.
template <typename T, std::size_t Depth>
class Stream {
  static_assert(Depth >= 1, "a FIFO needs at least one slot");

 public:
  [[nodiscard]] bool empty() const { return count_ == 0; }
  [[nodiscard]] bool full() const { return count_ == Depth; }
  [[nodiscard]] std::size_t size() const { return count_; }
  [[nodiscard]] static constexpr std::size_t depth() { return Depth; }

  /// Writes one element; a full FIFO is a deadlock in hardware -> contract
  /// violation in simulation.
  void write(const T& value) {
    SSLIC_CHECK_MSG(!full(), "FIFO overflow (depth " << Depth << ")");
    buffer_[(head_ + count_) % Depth] = value;
    ++count_;
  }

  /// Reads one element; reading an empty FIFO is likewise a deadlock.
  T read() {
    SSLIC_CHECK_MSG(!empty(), "FIFO underflow");
    T value = buffer_[head_];
    head_ = (head_ + 1) % Depth;
    --count_;
    return value;
  }

  /// Non-destructive front access.
  [[nodiscard]] const T& front() const {
    SSLIC_CHECK_MSG(!empty(), "FIFO underflow (front)");
    return buffer_[head_];
  }

  void clear() {
    head_ = 0;
    count_ = 0;
  }

 private:
  std::array<T, Depth> buffer_{};
  std::size_t head_ = 0;
  std::size_t count_ = 0;
};

}  // namespace sslic::hls

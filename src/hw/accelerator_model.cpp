#include "hw/accelerator_model.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "slic/grid.h"

namespace sslic::hw {

AcceleratorModel::AcceleratorModel(AcceleratorDesign design,
                                   const EnergyModel& energy,
                                   const AreaModel& area, const DramModel& dram)
    : design_(design), energy_(energy), area_model_(area), dram_(dram) {
  SSLIC_CHECK(design_.width >= 16 && design_.height >= 16);
  SSLIC_CHECK(design_.num_superpixels >= 1);
  SSLIC_CHECK(design_.subsample_ratio > 0.0 && design_.subsample_ratio <= 1.0);
  SSLIC_CHECK(design_.full_sweeps >= 1);
  SSLIC_CHECK(design_.channel_buffer_bytes >= 256.0);
  SSLIC_CHECK(design_.num_cores >= 1);
  SSLIC_CHECK(design_.clock_hz > 0.0);
  SSLIC_CHECK_MSG(design_.voltage_v >= 0.4 && design_.voltage_v <= 1.0,
                  "voltage " << design_.voltage_v << " outside [0.4, 1.0]");
}

double AcceleratorModel::area_mm2() const {
  const ClusterUnit cluster(design_.cluster, energy_, area_model_);
  const double pads = 4.0 * area_model_.scratchpad(design_.channel_buffer_bytes);
  const double per_core = cluster.area_mm2() + pads;
  return design_.num_cores * per_core + area_model_.color_conversion_unit +
         area_model_.center_update_unit + area_model_.host_fsm +
         area_model_.dram_interface;
}

FrameReport AcceleratorModel::evaluate() const {
  const ClusterUnit cluster(design_.cluster, energy_, area_model_);
  FrameReport r;

  const double n =
      static_cast<double>(design_.width) * static_cast<double>(design_.height);
  const CenterGrid grid(design_.width, design_.height, design_.num_superpixels);
  r.grid_nx = grid.nx();
  r.grid_ny = grid.ny();
  r.num_centers = static_cast<std::uint64_t>(grid.num_centers());
  const double tiles = static_cast<double>(grid.num_centers());

  const double subset_count = std::round(1.0 / design_.subsample_ratio);
  r.subset_iterations =
      static_cast<std::uint64_t>(design_.full_sweeps * subset_count);
  const double iters = static_cast<double>(r.subset_iterations);
  const double visited_per_iter = n * design_.subsample_ratio;

  const double f = design_.clock_hz;
  const double cores = design_.num_cores;

  // --- Color conversion: streaming unit, II = 1; DRAM in (RGB, 3 B/px) and
  // out (Lab planes, 3 B/px) overlap with compute. ---
  const double conv_compute_s = (n + 16.0) / f;  // small pipeline fill
  const double conv_bytes = 6.0 * n;
  const double conv_mem_s =
      dram_.transfer_seconds(conv_bytes, design_.channel_buffer_bytes, f);
  r.color_conversion_s = std::max(conv_compute_s, conv_mem_s);

  // --- Cluster update: per subset iteration. ---
  const double pixel_cycles =
      visited_per_iter * cluster.initiation_interval() / cores;
  const double tile_overhead_cycles =
      tiles * (cluster.latency_cycles() +
               design_.sigma_transfer_cycles_per_tile +
               design_.center_load_cycles_per_tile) / cores;
  const double cluster_compute_per_iter_s =
      (pixel_cycles + tile_overhead_cycles) / f;

  const double center_cycles_per_iter =
      tiles * design_.divisions_per_center * design_.divider_steps_per_division;
  const double center_per_iter_s = center_cycles_per_iter / f;

  // DRAM per iteration: channel data for visited pixels (the row-interleaved
  // subsets let whole bursts be skipped), the index map in and out for the
  // whole frame, and the center records (16 B each, read + write).
  const double cluster_bytes_per_iter =
      3.0 * visited_per_iter + 2.0 * n + 16.0 * tiles;
  const double cluster_mem_per_iter_s = dram_.transfer_seconds(
      cluster_bytes_per_iter, design_.channel_buffer_bytes, f);

  r.cluster_compute_s = iters * cluster_compute_per_iter_s;
  r.center_update_s = iters * center_per_iter_s;
  r.cluster_memory_s = iters * cluster_mem_per_iter_s;

  // Single-buffered scratch pads: load, process, store are serial (the
  // rate-matching role of the buffers, Section 6.3).
  r.total_s = r.color_conversion_s + r.cluster_compute_s + r.center_update_s +
              r.cluster_memory_s;
  r.fps = 1.0 / r.total_s;
  r.memory_time_fraction = r.cluster_memory_s / r.total_s;
  r.dram_bytes = conv_bytes + iters * cluster_bytes_per_iter;

  // --- Energy. ---
  const double visited_total = iters * visited_per_iter;
  r.cluster_energy_j = cluster.energy_per_pixel_pj() * 1e-12 * visited_total;
  r.conv_energy_j = design_.conv_energy_per_pixel_pj * 1e-12 * n;
  r.center_energy_j = energy_.divider_step_pj * 1e-12 * iters * tiles *
                      design_.divisions_per_center *
                      design_.divider_steps_per_division;

  // Full-utilization assumption for scratch pads and the DRAM interface
  // (paper Section 6.3): power = peak, energy = peak power * frame time.
  const double pad_kb = design_.channel_buffer_bytes / 1024.0;
  const double sram_peak_w = 4.0 * cores *
                             energy_.sram_access_pj_per_byte(pad_kb) * 1e-12 * f;
  r.sram_energy_j = sram_peak_w * r.total_s;
  const double phy_peak_w =
      dram_.bytes_per_cycle * f * energy_.dram_phy_pj_per_byte * 1e-12;
  r.phy_energy_j = phy_peak_w * r.total_s;

  // DVFS: all dynamic energies scale with (V/Vnom)^2, leakage ~linearly.
  const double v_ratio = design_.voltage_v / 0.72;
  const double dvfs_dynamic = v_ratio * v_ratio;
  r.cluster_energy_j *= dvfs_dynamic;
  r.conv_energy_j *= dvfs_dynamic;
  r.center_energy_j *= dvfs_dynamic;
  r.sram_energy_j *= dvfs_dynamic;
  r.phy_energy_j *= dvfs_dynamic;

  const double compute_dynamic =
      r.cluster_energy_j + r.conv_energy_j + r.center_energy_j;
  r.clock_energy_j = energy_.clock_overhead_fraction * compute_dynamic;
  r.area_mm2 = area_mm2();
  r.leakage_energy_j =
      energy_.leakage_mw_per_mm2 * 1e-3 * r.area_mm2 * r.total_s * v_ratio;

  r.energy_per_frame_j = compute_dynamic + r.sram_energy_j + r.phy_energy_j +
                         r.clock_energy_j + r.leakage_energy_j;
  r.average_power_w = r.energy_per_frame_j / r.total_s;
  r.dram_device_energy_j = r.dram_bytes * energy_.dram_device_pj_per_byte * 1e-12;

  r.fps_per_mm2 = r.fps / r.area_mm2;
  // 4 scratch pads + color LUTs (~0.5 kB) + pipeline registers (~0.5 kB).
  r.onchip_storage_bytes = 4.0 * design_.channel_buffer_bytes * cores + 1024.0;
  return r;
}

}  // namespace sslic::hw

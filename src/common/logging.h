// Minimal leveled logging to stderr. Benches and examples use INFO for
// progress; libraries only log at WARN and above.
#pragma once

#include <sstream>
#include <string>

namespace sslic {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global log threshold; messages below it are dropped. Default: kInfo.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_emit(LogLevel level, const std::string& message);
}

}  // namespace sslic

#define SSLIC_LOG(level, expr)                                           \
  do {                                                                   \
    if (static_cast<int>(level) >= static_cast<int>(::sslic::log_level())) { \
      std::ostringstream sslic_log_os_;                                  \
      sslic_log_os_ << expr;                                             \
      ::sslic::detail::log_emit(level, sslic_log_os_.str());             \
    }                                                                    \
  } while (false)

#define SSLIC_INFO(expr) SSLIC_LOG(::sslic::LogLevel::kInfo, expr)
#define SSLIC_WARN(expr) SSLIC_LOG(::sslic::LogLevel::kWarn, expr)
#define SSLIC_ERROR(expr) SSLIC_LOG(::sslic::LogLevel::kError, expr)

// SIMD assignment-kernel benchmark: scalar vs every vector backend this
// binary + CPU can run, for the four hot row kernels (CPA running-min,
// PPA 9-candidate argmin, seeded cluster-span argmin, 8-bit datapath
// 9-candidate argmin), plus an end-to-end CPA comparison of the row-sweep
// and cluster-centric assignment schedules per ISA (DESIGN.md §4g).
//
// Reports ns/pixel and effective GB/s per backend, the speedup of the best
// vector backend over scalar, and — before any timing is trusted — a
// byte-identity cross-check of every backend's output against the scalar
// reference on the same inputs (nonzero exit on mismatch: a fast wrong
// kernel is worthless).
//
// Emits BENCH_simd_kernels.json with the numbers plus machine metadata
// (CPU model, selected ISA), so CI and plotting scripts can consume them.
//
//   simd_kernels [--width=1920] [--rows=256] [--reps=40] [--simd=...]
#include <array>
#include <cstring>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "bench_common.h"
#include "color/color_convert.h"
#include "common/rng.h"
#include "common/simd.h"
#include "slic/assign_kernels.h"
#include "slic/iteration_scratch.h"
#include "slic/slic_baseline.h"

namespace {

using namespace sslic;

/// Backends runnable in this process, scalar first (the baseline).
std::vector<simd::Isa> runnable_isas() {
  std::vector<simd::Isa> isas = {simd::Isa::kScalar};
  for (const simd::Isa isa : {simd::Isa::kSse2, simd::Isa::kAvx2,
                              simd::Isa::kAvx512, simd::Isa::kNeon}) {
    if (kernels::backend_compiled(isa) && simd::cpu_supports(isa))
      isas.push_back(isa);
  }
  return isas;
}

/// Shared random workload: `rows` independent row segments of `width`
/// pixels, with float and u8 channel planes, running-min state, and 9
/// candidate operands per row block.
struct Workload {
  int width = 0;
  int rows = 0;
  std::vector<float> L, a, b;
  std::vector<std::uint8_t> L8, a8, b8;
  std::vector<double> min_dist;
  std::vector<std::int32_t> labels;
  std::vector<kernels::CenterOperand> centers;        // one per row
  std::array<kernels::CenterOperand, 9> cands{};
  std::array<kernels::HwCenterOperand, 9> hw_cands{};
  double spatial_weight = 0.25;
  std::int32_t weight_q8 = 64;

  Workload(int width_, int rows_) : width(width_), rows(rows_) {
    const std::size_t n =
        static_cast<std::size_t>(width) * static_cast<std::size_t>(rows);
    L.resize(n);
    a.resize(n);
    b.resize(n);
    L8.resize(n);
    a8.resize(n);
    b8.resize(n);
    min_dist.resize(n);
    labels.resize(n);
    Rng rng(20260807);
    for (std::size_t i = 0; i < n; ++i) {
      L[i] = static_cast<float>(rng.next_double(0.0, 100.0));
      a[i] = static_cast<float>(rng.next_double(-90.0, 90.0));
      b[i] = static_cast<float>(rng.next_double(-90.0, 90.0));
      L8[i] = static_cast<std::uint8_t>(rng.next_int(0, 255));
      a8[i] = static_cast<std::uint8_t>(rng.next_int(0, 255));
      b8[i] = static_cast<std::uint8_t>(rng.next_int(0, 255));
      min_dist[i] = rng.next_bool(0.5)
                        ? std::numeric_limits<double>::infinity()
                        : rng.next_double(0.0, 4000.0);
      labels[i] = rng.next_int(0, 2000);
    }
    centers.resize(static_cast<std::size_t>(rows));
    for (int r = 0; r < rows; ++r) {
      centers[static_cast<std::size_t>(r)] = {
          rng.next_double(0.0, 100.0), rng.next_double(-90.0, 90.0),
          rng.next_double(-90.0, 90.0),
          rng.next_double(0.0, static_cast<double>(width)),
          static_cast<double>(r), r};
    }
    for (int k = 0; k < 9; ++k) {
      cands[static_cast<std::size_t>(k)] = {
          rng.next_double(0.0, 100.0), rng.next_double(-90.0, 90.0),
          rng.next_double(-90.0, 90.0),
          rng.next_double(0.0, static_cast<double>(width)),
          rng.next_double(0.0, static_cast<double>(rows)), k * 3};
      hw_cands[static_cast<std::size_t>(k)] = {
          rng.next_int(0, 255),       rng.next_int(0, 255),
          rng.next_int(0, 255),       rng.next_int(0, width - 1),
          rng.next_int(0, rows - 1),  k * 3};
    }
  }
};

/// Mutable per-run state (the buffers a kernel writes).
struct RunState {
  std::vector<double> min_dist;
  std::vector<std::int32_t> labels;
};

enum class Kernel {
  kCenterRow,
  kCandidatesRow,
  kCandidatesRowSeeded,
  kCandidatesRowU8
};

const char* kernel_name(Kernel k) {
  switch (k) {
    case Kernel::kCenterRow:
      return "assign_center_row";
    case Kernel::kCandidatesRow:
      return "assign_candidates_row";
    case Kernel::kCandidatesRowSeeded:
      return "assign_candidates_row_seeded";
    case Kernel::kCandidatesRowU8:
      return "assign_candidates_row_u8";
  }
  return "?";
}

/// Bytes streamed per pixel (reads + writes, nominal): used for the GB/s
/// column so backends are comparable; absolute bandwidth is approximate.
double bytes_per_pixel(Kernel k) {
  switch (k) {
    case Kernel::kCenterRow:
      return 3 * 4 + 8 + 4 + 8 + 4;  // 3 floats + min r/w + label r/w
    case Kernel::kCandidatesRow:
      return 3 * 4 + 8 + 4;  // 3 floats in, min + label out
    case Kernel::kCandidatesRowSeeded:
      return 3 * 4 + 8 + 4 + 8 + 4;  // 3 floats + min r/w + label r/w
    case Kernel::kCandidatesRowU8:
      return 3 * 1 + 4;  // 3 channel bytes in, label out
  }
  return 1.0;
}

/// Runs one full pass of `kernel` under `table` over the workload,
/// mutating `state`. One pass = every row once.
void run_pass(const kernels::KernelTable& table, Kernel kernel,
              const Workload& wl, RunState& state) {
  const std::int32_t width = wl.width;
  for (int r = 0; r < wl.rows; ++r) {
    const std::size_t off =
        static_cast<std::size_t>(r) * static_cast<std::size_t>(width);
    switch (kernel) {
      case Kernel::kCenterRow:
        table.assign_center_row(
            wl.L.data() + off, wl.a.data() + off, wl.b.data() + off, 0, width,
            static_cast<double>(r), wl.centers[static_cast<std::size_t>(r)],
            wl.spatial_weight, state.min_dist.data() + off,
            state.labels.data() + off);
        break;
      case Kernel::kCandidatesRow:
        table.assign_candidates_row(
            wl.L.data() + off, wl.a.data() + off, wl.b.data() + off, 0, width,
            static_cast<double>(r), wl.cands.data(), 9, wl.spatial_weight,
            nullptr, state.min_dist.data() + off, state.labels.data() + off);
        break;
      case Kernel::kCandidatesRowSeeded:
        table.assign_candidates_row_seeded(
            wl.L.data() + off, wl.a.data() + off, wl.b.data() + off, 0, width,
            static_cast<double>(r), wl.cands.data(), 9, wl.spatial_weight,
            state.min_dist.data() + off, state.labels.data() + off);
        break;
      case Kernel::kCandidatesRowU8:
        table.assign_candidates_row_u8(
            wl.L8.data() + off, wl.a8.data() + off, wl.b8.data() + off, 0,
            width, r, wl.hw_cands.data(), 9, wl.weight_q8, 8, 6, nullptr,
            state.labels.data() + off);
        break;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const int width = args.get_int("width", 1920);
  const int rows = args.get_int("rows", 256);
  const int reps = args.get_int("reps", 40);
  const std::string simd_request = args.get_string("simd", "");
  if (!simd_request.empty() && !simd::set_preferred_isa(simd_request)) {
    std::cerr << "unknown --simd value '" << simd_request << "'\n";
    return 2;
  }

  const std::vector<simd::Isa> isas = runnable_isas();
  const Workload wl(width, rows);
  const double total_pixels = static_cast<double>(width) *
                              static_cast<double>(rows) *
                              static_cast<double>(reps);

  std::cout << "==================================================================\n"
            << "SIMD assignment kernels — scalar vs vector backends\n"
            << "workload: " << rows << " rows x " << width << " px, " << reps
            << " passes per kernel\n"
            << "cpu: " << bench::cpu_model_name() << '\n'
            << "selected isa (dispatch default): "
            << simd::isa_name(kernels::active_isa()) << '\n'
            << "==================================================================\n";

  bool all_identical = true;
  bench::GateMetrics gate;
  bench::Json kernels_json = bench::Json::array();
  Table table("ns/pixel by backend (speedup vs scalar)");
  {
    std::vector<std::string> header = {"kernel"};
    for (const simd::Isa isa : isas) header.emplace_back(simd::isa_name(isa));
    header.emplace_back("best speedup");
    table.set_header(header);
  }

  for (const Kernel kernel :
       {Kernel::kCenterRow, Kernel::kCandidatesRow,
        Kernel::kCandidatesRowSeeded, Kernel::kCandidatesRowU8}) {
    // Identity cross-check first: every backend, same inputs, one pass.
    RunState ref{wl.min_dist, wl.labels};
    run_pass(kernels::scalar_table(), kernel, wl, ref);
    for (const simd::Isa isa : isas) {
      RunState got{wl.min_dist, wl.labels};
      run_pass(kernels::table_for(isa), kernel, wl, got);
      const bool same =
          got.labels == ref.labels &&
          std::memcmp(got.min_dist.data(), ref.min_dist.data(),
                      ref.min_dist.size() * sizeof(double)) == 0;
      if (!same) {
        std::cerr << "MISMATCH: " << kernel_name(kernel) << " on "
                  << simd::isa_name(isa) << " diverges from scalar\n";
        all_identical = false;
      }
    }

    // Timing: median-of-3 of `reps` passes per backend.
    double scalar_ns = 0.0;
    double best_vector_ns = std::numeric_limits<double>::infinity();
    std::string best_vector = "none";
    std::vector<std::string> row = {kernel_name(kernel)};
    bench::Json backends_json = bench::Json::array();
    for (const simd::Isa isa : isas) {
      const kernels::KernelTable& kt = kernels::table_for(isa);
      RunState state{wl.min_dist, wl.labels};
      run_pass(kt, kernel, wl, state);  // warm-up
      std::array<double, 3> samples{};
      for (double& sample : samples) {
        Stopwatch watch;
        for (int rep = 0; rep < reps; ++rep) run_pass(kt, kernel, wl, state);
        sample = watch.elapsed_ms();
      }
      std::sort(samples.begin(), samples.end());
      const double ns_per_pixel = samples[1] * 1e6 / total_pixels;
      const double gbps =
          bytes_per_pixel(kernel) / ns_per_pixel;  // B/ns == GB/s
      if (isa == simd::Isa::kScalar) {
        scalar_ns = ns_per_pixel;
      } else if (ns_per_pixel < best_vector_ns) {
        best_vector_ns = ns_per_pixel;
        best_vector = simd::isa_name(isa);
      }
      row.push_back(Table::num(ns_per_pixel, 3));
      backends_json.push(bench::Json::object()
                             .set("isa", simd::isa_name(isa))
                             .set("ns_per_pixel", ns_per_pixel)
                             .set("gb_per_s", gbps)
                             .set("speedup_vs_scalar",
                                  isa == simd::Isa::kScalar
                                      ? 1.0
                                      : scalar_ns / ns_per_pixel));
    }
    const double best_speedup =
        best_vector_ns < std::numeric_limits<double>::infinity()
            ? scalar_ns / best_vector_ns
            : 1.0;
    row.push_back(Table::num(best_speedup, 2) + "x (" + best_vector + ")");
    table.add_row(row);
    gate.lower_is_better(std::string(kernel_name(kernel)) + "_scalar_ns_per_pixel",
                         scalar_ns, "ns", 0.35)
        .higher_is_better(std::string(kernel_name(kernel)) + "_best_speedup",
                          best_speedup, "x", 0.35);
    kernels_json.push(bench::Json::object()
                          .set("kernel", kernel_name(kernel))
                          .set("bytes_per_pixel", bytes_per_pixel(kernel))
                          .set("backends", std::move(backends_json))
                          .set("best_vector_isa", best_vector)
                          .set("best_speedup_vs_scalar", best_speedup)
                          .set("outputs_identical", all_identical));
  }
  std::cout << table;
  std::cout << "identity cross-check: "
            << (all_identical ? "all backends byte-identical to scalar"
                              : "MISMATCH (see above)")
            << '\n';

  // --- End-to-end CPA schedule comparison (DESIGN.md §4g) ---
  // One full segmentation per sample, row-sweep vs cluster-centric
  // schedule under every runnable ISA. Byte-identity of labels and centers
  // is asserted before any timing is trusted, and the per-ISA cluster
  // frame time + cluster/row speedup feed the gate so a cluster-schedule
  // regression fails CI even while auto keeps picking it.
  const int e2e_width = width;
  const int e2e_height = std::max(64, width * 2 / 3);
  const int e2e_k = args.get_int("superpixels", 400);
  const int e2e_iters = args.get_int("iterations", 5);
  SyntheticParams synth;
  synth.width = e2e_width;
  synth.height = e2e_height;
  const GroundTruthImage sample = generate_synthetic(synth, 20260810);
  const LabImage lab = srgb_to_lab(sample.image);
  SlicParams slic_params;
  slic_params.num_superpixels = e2e_k;
  slic_params.max_iterations = e2e_iters;
  const CpaSlic cpa(slic_params);

  bench::Json strategy_isas_json = bench::Json::array();
  Table e2e_table("CPA full segmentation, ms/frame by assignment schedule");
  e2e_table.set_header({"isa", "row", "cluster", "cluster speedup"});
  const simd::Isa restore_isa = simd::preferred_isa();
  for (const simd::Isa isa : isas) {
    simd::set_preferred_isa(isa);
    Segmentation row_result;
    Segmentation cluster_result;
    IterationScratch scratch;
    double ms_row = 0.0;
    double ms_cluster = 0.0;
    for (const AssignStrategy strategy :
         {AssignStrategy::kRow, AssignStrategy::kCluster}) {
      const AssignStrategyGuard guard(strategy);
      const bool cluster = strategy == AssignStrategy::kCluster;
      Segmentation& result = cluster ? cluster_result : row_result;
      cpa.segment_lab_into(lab, result, scratch);  // warm-up (+ result)
      std::array<double, 3> samples{};
      for (double& s : samples) {
        Stopwatch watch;
        cpa.segment_lab_into(lab, result, scratch);
        s = watch.elapsed_ms();
      }
      std::sort(samples.begin(), samples.end());
      (cluster ? ms_cluster : ms_row) = samples[1];
    }
    const bool same =
        std::memcmp(row_result.labels.data(), cluster_result.labels.data(),
                    static_cast<std::size_t>(e2e_width) *
                        static_cast<std::size_t>(e2e_height) *
                        sizeof(std::int32_t)) == 0 &&
        row_result.centers.size() == cluster_result.centers.size() &&
        std::memcmp(row_result.centers.data(), cluster_result.centers.data(),
                    row_result.centers.size() * sizeof(ClusterCenter)) == 0;
    if (!same) {
      std::cerr << "MISMATCH: cluster schedule diverges from row on "
                << simd::isa_name(isa) << '\n';
      all_identical = false;
    }
    const double speedup = ms_cluster > 0.0 ? ms_row / ms_cluster : 0.0;
    e2e_table.add_row({simd::isa_name(isa), Table::num(ms_row, 2),
                       Table::num(ms_cluster, 2),
                       Table::num(speedup, 2) + "x"});
    strategy_isas_json.push(
        bench::Json::object()
            .set("isa", simd::isa_name(isa))
            .set("row_ms_per_frame", ms_row)
            .set("cluster_ms_per_frame", ms_cluster)
            .set("cluster_speedup_vs_row", speedup)
            .set("outputs_identical", same));
    // Full segmentations on shared runners swing harder than the pinned
    // row-kernel loops above; the wall-clock tolerance is wider, and the
    // deterministic cluster-traffic model gates tightly in
    // bench/fused_iteration instead.
    gate.lower_is_better(std::string("cpa_cluster_ms_per_frame_") +
                             simd::isa_name(isa),
                         ms_cluster, "ms", 0.50)
        .higher_is_better(std::string("cpa_cluster_speedup_vs_row_") +
                              simd::isa_name(isa),
                          speedup, "x", 0.50);
  }
  simd::set_preferred_isa(restore_isa);
  std::cout << e2e_table;

  bench::Json::object()
      .set("bench", "simd_kernels")
      .set("workload", bench::Json::object()
                           .set("width", width)
                           .set("rows", rows)
                           .set("reps", reps)
                           .set("candidates", 9))
      .set("machine", bench::machine_json())
      .set("kernels", std::move(kernels_json))
      .set("cpa_strategies",
           bench::Json::object()
               .set("width", e2e_width)
               .set("height", e2e_height)
               .set("superpixels", e2e_k)
               .set("iterations", e2e_iters)
               .set("isas", std::move(strategy_isas_json)))
      .set("all_outputs_identical", all_identical)
      .set("gate", gate.json())
      .write_file("BENCH_simd_kernels.json");
  return all_identical ? 0 : 1;
}

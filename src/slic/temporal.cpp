#include "slic/temporal.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "slic/subset_schedule.h"

namespace sslic {

TemporalSlic::TemporalSlic(SlicParams params, DataWidth data_width,
                           int warm_iterations)
    : params_(params), data_width_(data_width), warm_iterations_(warm_iterations) {
  SSLIC_CHECK(warm_iterations >= 0);
  if (warm_iterations_ == 0) {
    const int subsets =
        SubsetSchedule::from_ratio(params_.subsample_ratio).count();
    warm_iterations_ = std::max(subsets, params_.max_iterations / 2);
  }
}

Segmentation TemporalSlic::next_frame(const RgbImage& frame) {
  const bool can_warm = has_state() && frame.width() == state_width_ &&
                        frame.height() == state_height_;

  Segmentation result;
  if (can_warm) {
    SlicParams warm_params = params_;
    warm_params.max_iterations = warm_iterations_;
    const PpaSlic segmenter(warm_params, data_width_);
    const LabImage lab = srgb_to_lab(frame);
    result = segmenter.segment_lab_warm(lab, previous_centers_);
  } else {
    result = PpaSlic(params_, data_width_).segment(frame);
  }

  previous_centers_ = result.centers;
  state_width_ = frame.width();
  state_height_ = frame.height();
  return result;
}

}  // namespace sslic

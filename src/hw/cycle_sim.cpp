#include "hw/cycle_sim.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/trace.h"
#include "hw/cluster_unit.h"
#include "slic/grid.h"

namespace sslic::hw {

CycleSimulator::CycleSimulator(AcceleratorDesign design, const DramModel& dram)
    : design_(design), dram_(dram) {
  SSLIC_CHECK(design_.width >= 16 && design_.height >= 16);
  SSLIC_CHECK(design_.subsample_ratio > 0.0 && design_.subsample_ratio <= 1.0);
  SSLIC_CHECK(design_.channel_buffer_bytes >= 256.0);
}

CycleReport CycleSimulator::run() const {
  SSLIC_TRACE_SCOPE("hw.cycle_sim");
  const ClusterUnit cluster(design_.cluster);
  const CenterGrid grid(design_.width, design_.height, design_.num_superpixels);
  CycleReport report;

  const auto n = static_cast<std::uint64_t>(design_.width) *
                 static_cast<std::uint64_t>(design_.height);
  const double bw = dram_.bytes_per_cycle;
  const auto latency = static_cast<std::uint64_t>(dram_.latency_cycles);

  // --- Color conversion: a streaming pipeline. DRAM in (RGB) and out (Lab
  // planes) run concurrently with the 1-pixel/cycle converter; the phase
  // ends when the slower of the two finishes. ---
  {
    const std::uint64_t conv_bytes = 6 * n;
    const auto dram_cycles =
        latency + static_cast<std::uint64_t>(static_cast<double>(conv_bytes) / bw);
    const std::uint64_t compute_cycles = n + 16;
    report.conv_cycles = std::max(compute_cycles, dram_cycles);
    report.dram_bytes += conv_bytes;
    report.dram_requests += 1;
  }

  // --- Cluster update iterations. ---
  const double subset_count = std::round(1.0 / design_.subsample_ratio);
  const auto iterations =
      static_cast<std::uint64_t>(design_.full_sweeps * subset_count);
  report.iterations = iterations;

  // Per-tile geometry (exact, from the grid).
  struct TileShape {
    std::uint64_t pixels = 0;
    std::uint64_t active = 0;  // pixels in the current subset
  };
  std::vector<TileShape> tiles;
  tiles.reserve(static_cast<std::size_t>(grid.num_centers()));
  for (int gy = 0; gy < grid.ny(); ++gy) {
    const int y0 = gy * design_.height / grid.ny();
    const int y1 = (gy + 1) * design_.height / grid.ny();
    for (int gx = 0; gx < grid.nx(); ++gx) {
      const int x0 = gx * design_.width / grid.nx();
      const int x1 = (gx + 1) * design_.width / grid.nx();
      TileShape shape;
      shape.pixels = static_cast<std::uint64_t>(x1 - x0) *
                     static_cast<std::uint64_t>(y1 - y0);
      shape.active = static_cast<std::uint64_t>(
          std::llround(static_cast<double>(shape.pixels) * design_.subsample_ratio));
      tiles.push_back(shape);
    }
  }

  const auto per_tile_overhead = static_cast<std::uint64_t>(
      cluster.latency_cycles() + design_.sigma_transfer_cycles_per_tile +
      design_.center_load_cycles_per_tile);

  for (std::uint64_t iter = 0; iter < iterations; ++iter) {
    // Tiles stream through the single-buffered scratch pads in groups: the
    // per-channel buffer holds `group` tiles' channel data; each group is
    // loaded, processed, and stored back serially (the rate-matching role
    // of the buffers, Section 6.3).
    std::size_t t = 0;
    while (t < tiles.size()) {
      std::uint64_t group_channel_bytes = 0;
      std::uint64_t in_bytes = 0;
      std::uint64_t out_bytes = 0;
      std::uint64_t process_cycles = 0;
      std::size_t group_tiles = 0;
      while (t < tiles.size()) {
        const TileShape& shape = tiles[t];
        if (group_tiles > 0 &&
            static_cast<double>(group_channel_bytes + shape.pixels) >
                design_.channel_buffer_bytes) {
          break;  // buffer full — this group is complete
        }
        group_channel_bytes += shape.pixels;
        // Subset-aware channel fetch (3 B per active pixel) plus the full
        // index map in; index map out after processing.
        in_bytes += 3 * shape.active + shape.pixels + 16;
        out_bytes += shape.pixels;
        process_cycles += shape.active * static_cast<std::uint64_t>(
                                              cluster.initiation_interval()) +
                          per_tile_overhead;
        ++group_tiles;
        ++t;
      }
      const std::uint64_t fill_cycles =
          latency + static_cast<std::uint64_t>(static_cast<double>(in_bytes) / bw);
      const std::uint64_t store_cycles =
          latency + static_cast<std::uint64_t>(static_cast<double>(out_bytes) / bw);
      process_cycles /= static_cast<std::uint64_t>(design_.num_cores);

      report.dram_stall_cycles += fill_cycles + store_cycles;
      report.cluster_pixel_cycles +=
          process_cycles -
          group_tiles * per_tile_overhead / static_cast<std::uint64_t>(design_.num_cores);
      report.tile_overhead_cycles +=
          group_tiles * per_tile_overhead / static_cast<std::uint64_t>(design_.num_cores);
      report.dram_bytes += in_bytes + out_bytes;
      report.dram_requests += 2;
      report.tiles_processed += group_tiles;
    }

    // Center update unit: sequential divider over all centers.
    report.center_update_cycles += static_cast<std::uint64_t>(grid.num_centers()) *
                                   static_cast<std::uint64_t>(design_.divisions_per_center) *
                                   static_cast<std::uint64_t>(design_.divider_steps_per_division);
    // New centers written back.
    report.dram_bytes += static_cast<std::uint64_t>(grid.num_centers()) * 8;
  }

  report.total_cycles = report.conv_cycles + report.cluster_pixel_cycles +
                        report.tile_overhead_cycles +
                        report.center_update_cycles + report.dram_stall_cycles;
  return report;
}

}  // namespace sslic::hw

#include "common/table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "common/check.h"

namespace sslic {

Table::Table(std::string title) : title_(std::move(title)) {}

void Table::set_header(std::vector<std::string> header) {
  SSLIC_CHECK_MSG(rows_.empty(), "set_header must precede add_row");
  header_ = std::move(header);
}

void Table::add_row(std::vector<std::string> row) {
  if (!header_.empty()) {
    SSLIC_CHECK_MSG(row.size() == header_.size(),
                    "row has " << row.size() << " cells, header has "
                               << header_.size());
  }
  rows_.push_back({std::move(row), false});
}

void Table::add_separator() { rows_.push_back({{}, true}); }

void Table::add_note(std::string note) { notes_.push_back(std::move(note)); }

std::string Table::num(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, v);
  return buf;
}

std::string Table::si(double v, int digits) {
  const char* suffix = "";
  double scaled = v;
  const double mag = std::fabs(v);
  if (mag >= 1e9) {
    scaled = v / 1e9;
    suffix = "G";
  } else if (mag >= 1e6) {
    scaled = v / 1e6;
    suffix = "M";
  } else if (mag >= 1e3) {
    scaled = v / 1e3;
    suffix = "k";
  }
  return num(scaled, digits) + suffix;
}

std::string Table::to_string() const {
  // Column widths over header + all rows.
  std::size_t ncols = header_.size();
  for (const auto& r : rows_) ncols = std::max(ncols, r.cells.size());

  std::vector<std::size_t> width(ncols, 0);
  const auto widen = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i)
      width[i] = std::max(width[i], cells[i].size());
  };
  widen(header_);
  for (const auto& r : rows_)
    if (!r.separator) widen(r.cells);

  std::size_t total = 0;
  for (const auto w : width) total += w + 3;  // " | " separators
  if (total > 0) total -= 1;

  std::ostringstream os;
  const auto hline = [&] { os << std::string(total, '-') << '\n'; };

  if (!title_.empty()) {
    os << title_ << '\n';
    hline();
  }
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < ncols; ++i) {
      const std::string& cell = i < cells.size() ? cells[i] : std::string{};
      os << cell << std::string(width[i] - cell.size(), ' ');
      os << (i + 1 < ncols ? " | " : "\n");
    }
  };
  if (!header_.empty()) {
    emit(header_);
    hline();
  }
  for (const auto& r : rows_) {
    if (r.separator)
      hline();
    else
      emit(r.cells);
  }
  for (const auto& note : notes_) os << "  * " << note << '\n';
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Table& t) {
  return os << t.to_string();
}

}  // namespace sslic

// Wall-clock timing utilities used by the CPU-side experiments
// (Fig. 2 quality-vs-time curves, Table 1 phase breakdown).
#pragma once

#include <chrono>
#include <map>
#include <mutex>
#include <string>

namespace sslic {

/// Monotonic wall-clock stopwatch.
class Stopwatch {
 public:
  Stopwatch();

  /// Restarts the stopwatch.
  void reset();

  /// Elapsed time since construction/reset, in milliseconds.
  [[nodiscard]] double elapsed_ms() const;

  /// Elapsed time since construction/reset, in seconds.
  [[nodiscard]] double elapsed_s() const;

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Accumulates wall-clock time per named phase. Used by the instrumented
/// SLIC implementations to reproduce Table 1's per-phase breakdown.
///
/// Thread-safe: `add` may be called concurrently (e.g. from pool workers
/// inside a parallel_for body); accumulation is guarded by an internal
/// mutex, which is uncontended in the phase-granular use the segmenters
/// make of it. Readers see a consistent snapshot; `phases()` returns a
/// copy for the same reason.
class PhaseTimer {
 public:
  /// Adds `ms` milliseconds to phase `name`.
  void add(const std::string& name, double ms);

  /// Total across all phases, in milliseconds.
  [[nodiscard]] double total_ms() const;

  /// Accumulated milliseconds for `name` (0 if never recorded).
  [[nodiscard]] double phase_ms(const std::string& name) const;

  /// Fraction of the total spent in `name` (0 if total is 0).
  [[nodiscard]] double phase_fraction(const std::string& name) const;

  /// Snapshot of every phase's accumulated milliseconds.
  [[nodiscard]] std::map<std::string, double> phases() const;

  void clear();

  /// Merges another timer's accumulations into this one.
  void merge(const PhaseTimer& other);

 private:
  mutable std::mutex mutex_;
  std::map<std::string, double> ms_;  // guarded by mutex_
};

/// RAII helper: adds the scope's duration to `timer[name]` on destruction.
class ScopedPhase {
 public:
  ScopedPhase(PhaseTimer& timer, std::string name)
      : timer_(timer), name_(std::move(name)) {}
  ~ScopedPhase() { timer_.add(name_, watch_.elapsed_ms()); }

  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  PhaseTimer& timer_;
  std::string name_;
  Stopwatch watch_;
};

}  // namespace sslic

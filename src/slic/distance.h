// The 5-D color-space distance of Eq. 5 and the data-width quantization
// used by the bit-width exploration (paper Section 6.1).
//
// All implementations compare *squared* combined distances: Eq. 5's square
// root is monotonic, so omitting it never changes an argmin. This is also
// what the hardware does — the paper notes S-SLIC accuracy depends only on
// relative distance comparisons.
#pragma once

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "image/image.h"
#include "slic/types.h"

namespace sslic {

/// Uniform quantizer over a fixed component range: models storing a value
/// in `bits` bits. bits == 0 means identity (the 64-bit float reference).
class RangeQuantizer {
 public:
  RangeQuantizer() = default;  // identity

  RangeQuantizer(double lo, double hi, int bits) : lo_(lo), hi_(hi), bits_(bits) {
    SSLIC_CHECK(hi > lo);
    SSLIC_CHECK(bits >= 1 && bits <= 16);
    levels_ = static_cast<double>((1 << bits) - 1);
    step_ = (hi_ - lo_) / levels_;
  }

  [[nodiscard]] bool is_identity() const { return bits_ == 0; }
  [[nodiscard]] int bits() const { return bits_; }
  [[nodiscard]] double step() const { return step_; }

  [[nodiscard]] double apply(double v) const {
    if (is_identity()) return v;
    const double clamped = std::clamp(v, lo_, hi_);
    return lo_ + std::round((clamped - lo_) / step_) * step_;
  }

 private:
  double lo_ = 0.0;
  double hi_ = 1.0;
  int bits_ = 0;
  double levels_ = 1.0;
  double step_ = 0.0;
};

/// Quantization policy for the pixel/center data representation.
/// `color_bits == 0` is the floating-point reference. The component ranges
/// follow the 8-bit Lab encoding the accelerator stores in its scratch pads
/// (L in [0,100]; a,b in [-128,127]).
struct DataWidth {
  int color_bits = 0;

  [[nodiscard]] static DataWidth float64() { return {0}; }
  [[nodiscard]] static DataWidth fixed(int bits) { return {bits}; }
};

/// Evaluates Eq. 5 (squared form) with optional data-width quantization
/// applied to the color components of both operands.
class DistanceCalculator {
 public:
  /// `spacing` is the grid interval S; `compactness` is m.
  DistanceCalculator(double compactness, double spacing,
                     DataWidth width = DataWidth::float64())
      : spatial_weight_(compactness * compactness / (spacing * spacing)) {
    SSLIC_CHECK(compactness > 0.0 && spacing > 0.0);
    if (width.color_bits != 0) {
      quantize_l_ = RangeQuantizer(0.0, 100.0, width.color_bits);
      quantize_ab_ = RangeQuantizer(-128.0, 127.0, width.color_bits);
    }
  }

  /// Quantizes one Lab value to the configured data width (identity for the
  /// float reference). Applied to the image once per run and to centers
  /// after each update, modelling n-bit storage.
  [[nodiscard]] LabF quantize(const LabF& lab) const {
    if (quantize_l_.is_identity()) return lab;
    return {static_cast<float>(quantize_l_.apply(static_cast<double>(lab.L))),
            static_cast<float>(quantize_ab_.apply(static_cast<double>(lab.a))),
            static_cast<float>(quantize_ab_.apply(static_cast<double>(lab.b)))};
  }

  /// Quantizes a center's color fields in place.
  void quantize_center(ClusterCenter& c) const {
    if (quantize_l_.is_identity()) return;
    c.L = quantize_l_.apply(c.L);
    c.a = quantize_ab_.apply(c.a);
    c.b = quantize_ab_.apply(c.b);
  }

  /// Squared combined distance: dc^2 + (m/S)^2 * ds^2 (Eq. 5, squared).
  [[nodiscard]] double squared(const LabF& color, double x, double y,
                               const ClusterCenter& c) const {
    const double dl = static_cast<double>(color.L) - c.L;
    const double da = static_cast<double>(color.a) - c.a;
    const double db = static_cast<double>(color.b) - c.b;
    const double dx = x - c.x;
    const double dy = y - c.y;
    const double dc2 = dl * dl + da * da + db * db;
    const double ds2 = dx * dx + dy * dy;
    return dc2 + spatial_weight_ * ds2;
  }

  [[nodiscard]] double spatial_weight() const { return spatial_weight_; }

 private:
  double spatial_weight_;  // m^2 / S^2
  RangeQuantizer quantize_l_;
  RangeQuantizer quantize_ab_;
};

}  // namespace sslic

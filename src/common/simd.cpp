#include "common/simd.h"

#include <cstdlib>
#include <mutex>

namespace sslic::simd {
namespace {

std::string to_lower(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

/// Process-wide preference state. A plain mutex-guarded value: selection
/// happens at startup / between runs, never on the hot path (callers cache
/// the resolved kernel table per segmentation run).
struct Preference {
  std::mutex mutex;
  bool overridden = false;
  Isa value = Isa::kScalar;
};

Preference& preference_state() {
  static Preference p;
  return p;
}

/// Clamps a requested ISA to what the CPU can execute: on x86 an AVX2
/// request degrades to SSE2 before scalar; a cross-architecture request
/// (NEON on x86, SSE/AVX on ARM) degrades straight to scalar.
Isa clamp_to_cpu(Isa want) {
  if (cpu_supports(want)) return want;
  if (want == Isa::kAvx2 && cpu_supports(Isa::kSse2)) return Isa::kSse2;
  return Isa::kScalar;
}

Isa env_or_detected() {
  const char* env = std::getenv("SSLIC_SIMD");
  if (env != nullptr && env[0] != '\0') {
    Isa parsed = Isa::kScalar;
    if (parse_isa(env, &parsed)) return parsed;
  }
  return detect_cpu_isa();
}

}  // namespace

const char* isa_name(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kSse2:
      return "sse2";
    case Isa::kAvx2:
      return "avx2";
    case Isa::kNeon:
      return "neon";
  }
  return "scalar";
}

bool parse_isa(const std::string& text, Isa* out) {
  const std::string name = to_lower(text);
  if (name == "scalar" || name == "off" || name == "none") {
    *out = Isa::kScalar;
  } else if (name == "sse2") {
    *out = Isa::kSse2;
  } else if (name == "avx2") {
    *out = Isa::kAvx2;
  } else if (name == "neon") {
    *out = Isa::kNeon;
  } else {
    return false;
  }
  return true;
}

Isa detect_cpu_isa() {
  static const Isa detected = [] {
#if defined(__aarch64__)
    return Isa::kNeon;  // Advanced SIMD is baseline on AArch64
#elif defined(__x86_64__) || defined(__i386__)
#if defined(__GNUC__) || defined(__clang__)
    if (__builtin_cpu_supports("avx2")) return Isa::kAvx2;
    if (__builtin_cpu_supports("sse2")) return Isa::kSse2;
    return Isa::kScalar;
#else
    return Isa::kSse2;  // x86-64 baseline
#endif
#else
    return Isa::kScalar;
#endif
  }();
  return detected;
}

bool cpu_supports(Isa isa) {
  if (isa == Isa::kScalar) return true;
  const Isa best = detect_cpu_isa();
  if (isa == Isa::kNeon) return best == Isa::kNeon;
  if (best == Isa::kNeon) return false;
  return static_cast<int>(isa) <= static_cast<int>(best);
}

Isa preferred_isa() {
  Preference& p = preference_state();
  const std::lock_guard<std::mutex> lock(p.mutex);
  if (!p.overridden) {
    p.value = env_or_detected();
    p.overridden = true;
  }
  return clamp_to_cpu(p.value);
}

void set_preferred_isa(Isa isa) {
  Preference& p = preference_state();
  const std::lock_guard<std::mutex> lock(p.mutex);
  p.overridden = true;
  p.value = isa;
}

bool set_preferred_isa(const std::string& text) {
  Isa parsed = Isa::kScalar;
  if (!parse_isa(text, &parsed)) return false;
  set_preferred_isa(parsed);
  return true;
}

void reset_preferred_isa() {
  Preference& p = preference_state();
  const std::lock_guard<std::mutex> lock(p.mutex);
  p.overridden = false;
}

}  // namespace sslic::simd

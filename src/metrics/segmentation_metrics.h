// Superpixel quality metrics (paper Section 3, citing Achanta et al. [1]):
// undersegmentation error (USE) and boundary recall, plus the standard
// companions (achievable segmentation accuracy, compactness) used by the
// extended experiments.
#pragma once

#include <cstdint>
#include <vector>

#include "image/image.h"

namespace sslic {

/// Contingency table between a superpixel labelling and a ground-truth
/// partition: overlap counts |s_j ∩ g_i| for all co-occurring (j, i) pairs.
class OverlapTable {
 public:
  OverlapTable(const LabelImage& superpixels, const LabelImage& ground_truth);

  [[nodiscard]] int num_superpixels() const { return num_sp_; }
  [[nodiscard]] int num_regions() const { return num_gt_; }
  [[nodiscard]] std::size_t num_pixels() const { return num_pixels_; }

  struct Overlap {
    std::int32_t sp = 0;
    std::int32_t gt = 0;
    std::int64_t count = 0;
  };
  [[nodiscard]] const std::vector<Overlap>& overlaps() const { return overlaps_; }

  /// |s_j| for each superpixel j.
  [[nodiscard]] const std::vector<std::int64_t>& superpixel_sizes() const {
    return sp_size_;
  }
  /// |g_i| for each ground-truth region i.
  [[nodiscard]] const std::vector<std::int64_t>& region_sizes() const {
    return gt_size_;
  }

 private:
  int num_sp_ = 0;
  int num_gt_ = 0;
  std::size_t num_pixels_ = 0;
  std::vector<Overlap> overlaps_;
  std::vector<std::int64_t> sp_size_;
  std::vector<std::int64_t> gt_size_;
};

/// Achanta-style undersegmentation error:
///   USE = (1/N) * [ Σ_i Σ_{j : |s_j ∩ g_i| >= min_overlap_fraction*|s_j|} |s_j| ] - 1.
/// Superpixels "leaking" across a ground-truth boundary are charged their
/// full size against every region they materially overlap. 0 is perfect;
/// typical BSDS values for K≈900 are 0.1-0.25.
double undersegmentation_error(const OverlapTable& table,
                               double min_overlap_fraction = 0.05);

/// Neubert/Protzel corrected USE: charges each (superpixel, region) pair
/// min(|s_j ∩ g_i|, |s_j \ g_i|) — insensitive to the overlap threshold.
double undersegmentation_error_min(const OverlapTable& table);

/// Boundary recall: the fraction of ground-truth boundary pixels that have
/// a superpixel boundary pixel within Chebyshev distance `tolerance`.
/// 1 is perfect.
double boundary_recall(const LabelImage& superpixels,
                       const LabelImage& ground_truth, int tolerance = 2);

/// Boundary precision: fraction of superpixel boundary pixels within
/// `tolerance` of a ground-truth boundary pixel.
double boundary_precision(const LabelImage& superpixels,
                          const LabelImage& ground_truth, int tolerance = 2);

/// Achievable segmentation accuracy: the best achievable accuracy when each
/// superpixel is assigned wholesale to its dominant ground-truth region.
double achievable_segmentation_accuracy(const OverlapTable& table);

/// Mean isoperimetric compactness of the superpixels:
/// mean over j of 4π|s_j| / P_j² where P_j is the 4-connected perimeter.
double compactness(const LabelImage& superpixels);

/// Explained variation (Moore et al.): the fraction of image color
/// variance captured by replacing each pixel with its superpixel's mean
/// color — 1 means superpixels explain the image perfectly. Computed on
/// CIELAB.
double explained_variation(const LabelImage& superpixels, const LabImage& lab);

/// Contour density: superpixel boundary pixels as a fraction of all pixels
/// (a cost measure — more boundary means more downstream work).
double contour_density(const LabelImage& superpixels);

/// Variation of information between two partitions (Meilă): H(A|B)+H(B|A)
/// in nats; 0 means identical partitions (up to relabeling). Symmetric.
double variation_of_information(const LabelImage& a, const LabelImage& b);

/// Convenience wrappers constructing the overlap table internally.
double undersegmentation_error(const LabelImage& superpixels,
                               const LabelImage& ground_truth,
                               double min_overlap_fraction = 0.05);
double undersegmentation_error_min(const LabelImage& superpixels,
                                   const LabelImage& ground_truth);
double achievable_segmentation_accuracy(const LabelImage& superpixels,
                                        const LabelImage& ground_truth);

/// Number of distinct labels present (labels must be non-negative).
int count_labels(const LabelImage& labels);

/// Aggregate quality against several ground-truth annotations (BSDS images
/// carry ~5 human segmentations; the evaluation protocol averages over
/// them, and "best" columns show the most favourable annotator).
struct MultiGroundTruthQuality {
  double use_mean = 0.0;
  double use_best = 0.0;       ///< minimum USE over annotators
  double use_min_mean = 0.0;   ///< Neubert min-variant, mean
  double recall_mean = 0.0;
  double recall_best = 0.0;    ///< maximum recall over annotators
  double asa_mean = 0.0;
  int annotators = 0;
};

/// Evaluates one superpixel labelling against every annotation.
MultiGroundTruthQuality evaluate_against_annotators(
    const LabelImage& superpixels, const std::vector<LabelImage>& truths,
    int boundary_tolerance = 2);

}  // namespace sslic

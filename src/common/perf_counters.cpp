#include "common/perf_counters.h"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <map>
#include <memory>
#include <mutex>

#include "common/logging.h"
#include "common/telemetry.h"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/syscall.h>
#include <unistd.h>
#define SSLIC_PERF_HAVE_SYSCALL 1
#else
#define SSLIC_PERF_HAVE_SYSCALL 0
#endif

namespace sslic::perf {

namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

void atomic_add_double(std::atomic<double>& target, double delta) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

#if SSLIC_PERF_HAVE_SYSCALL

/// type/config pair for each Event, in enum order.
struct EventSpec {
  std::uint32_t type;
  std::uint64_t config;
};

const std::array<EventSpec, kNumEvents>& event_specs() {
  static const std::array<EventSpec, kNumEvents> specs = {{
      {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES},
      {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS},
      {PERF_TYPE_HW_CACHE,
       PERF_COUNT_HW_CACHE_L1D | (PERF_COUNT_HW_CACHE_OP_READ << 8) |
           (PERF_COUNT_HW_CACHE_RESULT_MISS << 16)},
      {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES},
      {PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES},
      {PERF_TYPE_HARDWARE, PERF_COUNT_HW_STALLED_CYCLES_BACKEND},
  }};
  return specs;
}

/// Opens one event counting the calling thread; returns the fd or -1.
/// `exclude_kernel` keeps the open permissible under
/// perf_event_paranoid <= 2 (the unprivileged default on most distros).
int open_event(const EventSpec& spec) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.size = sizeof(attr);
  attr.type = spec.type;
  attr.config = spec.config;
  attr.disabled = 0;
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  attr.read_format =
      PERF_FORMAT_TOTAL_TIME_ENABLED | PERF_FORMAT_TOTAL_TIME_RUNNING;
  const long fd = syscall(SYS_perf_event_open, &attr, /*pid=*/0, /*cpu=*/-1,
                          /*group_fd=*/-1, /*flags=*/0);
  return static_cast<int>(fd);
}

#endif  // SSLIC_PERF_HAVE_SYSCALL

/// One-time availability probe. Opens (and closes) each event once on the
/// detecting thread; `usable[i]` then governs which events later
/// CounterGroups attempt.
struct Detection {
  bool available = false;
  std::array<bool, kNumEvents> usable{};
  std::string status;
};

Detection detect() {
  Detection d;
  const char* env = std::getenv("SSLIC_PERF");
  if (env != nullptr && std::string(env) == "0") {
    d.status = "perf counters disabled by SSLIC_PERF=0; "
               "IPC/miss-rate telemetry degrades to no-op";
    return d;
  }
#if !SSLIC_PERF_HAVE_SYSCALL
  d.status = "perf counters unavailable on this platform (not Linux); "
             "IPC/miss-rate telemetry degrades to no-op";
  return d;
#else
  int opened = 0;
  int first_errno = 0;
  for (int i = 0; i < kNumEvents; ++i) {
    const int fd = open_event(event_specs()[static_cast<std::size_t>(i)]);
    if (fd >= 0) {
      d.usable[static_cast<std::size_t>(i)] = true;
      ++opened;
      close(fd);
    } else if (first_errno == 0) {
      first_errno = errno;
    }
  }
  // Cycles or instructions must count for any derived metric to mean
  // anything; a PMU that only exposes e.g. branch misses is treated as
  // absent rather than half-armed.
  d.available = d.usable[static_cast<std::size_t>(Event::kCycles)] ||
                d.usable[static_cast<std::size_t>(Event::kInstructions)];
  if (d.available) {
    d.status = "perf counters active (" + std::to_string(opened) + "/" +
               std::to_string(kNumEvents) + " events)";
  } else {
    d.usable = {};
    d.status = std::string("perf counters unavailable: perf_event_open: ") +
               std::strerror(first_errno == 0 ? ENOENT : first_errno) +
               "; IPC/miss-rate telemetry degrades to no-op";
  }
  return d;
#endif
}

const Detection& detection() {
  static const Detection d = [] {
    Detection result = detect();
    // The one-line degradation/activation notice, logged exactly once.
    if (result.available) {
      SSLIC_INFO(result.status);
    } else {
      SSLIC_WARN(result.status);
    }
    return result;
  }();
  return d;
}

/// Runtime arm state: -1 = not yet initialized from detection.
std::atomic<int> g_enabled{-1};

/// Phase registry. Values are stable pointers (like MetricsRegistry).
struct PhaseRegistry {
  std::mutex mutex;
  std::map<std::string, std::unique_ptr<PhaseAccum>> phases;
};

PhaseRegistry& phase_registry() {
  static PhaseRegistry registry;
  return registry;
}

}  // namespace

const char* event_name(Event e) {
  switch (e) {
    case Event::kCycles: return "cycles";
    case Event::kInstructions: return "instructions";
    case Event::kL1dMisses: return "l1d_misses";
    case Event::kLlcMisses: return "llc_misses";
    case Event::kBranchMisses: return "branch_misses";
    case Event::kStalledCycles: return "stalled_cycles";
  }
  return "unknown";
}

double Delta::ipc() const {
  if (!has(Event::kInstructions) || !has(Event::kCycles)) return kNan;
  const double cycles = (*this)[Event::kCycles];
  return cycles <= 0.0 ? kNan : (*this)[Event::kInstructions] / cycles;
}

double Delta::mpki(Event miss_event) const {
  if (!has(miss_event) || !has(Event::kInstructions)) return kNan;
  const double instructions = (*this)[Event::kInstructions];
  return instructions <= 0.0 ? kNan
                             : 1000.0 * (*this)[miss_event] / instructions;
}

double Delta::stalled_fraction() const {
  if (!has(Event::kStalledCycles) || !has(Event::kCycles)) return kNan;
  const double cycles = (*this)[Event::kCycles];
  return cycles <= 0.0 ? kNan : (*this)[Event::kStalledCycles] / cycles;
}

double Delta::dram_bytes() const {
  return has(Event::kLlcMisses) ? (*this)[Event::kLlcMisses] * kCacheLineBytes
                                : kNan;
}

double Delta::bytes_per_instruction() const {
  if (!has(Event::kLlcMisses) || !has(Event::kInstructions)) return kNan;
  const double instructions = (*this)[Event::kInstructions];
  return instructions <= 0.0 ? kNan : dram_bytes() / instructions;
}

Delta& Delta::operator+=(const Delta& other) {
  for (int i = 0; i < kNumEvents; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    if (!other.valid[idx]) continue;
    value[idx] += other.value[idx];
    valid[idx] = true;
  }
  return *this;
}

bool available() { return detection().available; }

const std::string& status() { return detection().status; }

bool enabled() {
  int state = g_enabled.load(std::memory_order_relaxed);
  if (state < 0) {
    state = available() ? 1 : 0;
    g_enabled.store(state, std::memory_order_relaxed);
  }
  return state == 1;
}

void set_enabled(bool enable) {
  // Enabling cannot conjure counters that detection found absent.
  g_enabled.store(enable && available() ? 1 : 0, std::memory_order_relaxed);
}

CounterGroup::CounterGroup() {
  fd_.fill(-1);
#if SSLIC_PERF_HAVE_SYSCALL
  if (!detection().available) return;
  for (int i = 0; i < kNumEvents; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    if (!detection().usable[idx]) continue;
    fd_[idx] = open_event(event_specs()[idx]);
    if (fd_[idx] >= 0) active_ = true;
  }
#endif
}

CounterGroup::~CounterGroup() {
#if SSLIC_PERF_HAVE_SYSCALL
  for (const int fd : fd_)
    if (fd >= 0) close(fd);
#endif
}

Sample CounterGroup::read() const {
  Sample sample;
#if SSLIC_PERF_HAVE_SYSCALL
  for (int i = 0; i < kNumEvents; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    if (fd_[idx] < 0) continue;
    std::uint64_t buf[3] = {0, 0, 0};  // value, time_enabled, time_running
    if (::read(fd_[idx], buf, sizeof(buf)) !=
        static_cast<ssize_t>(sizeof(buf)))
      continue;
    sample.raw[idx] = buf[0];
    sample.time_enabled[idx] = buf[1];
    sample.time_running[idx] = buf[2];
    sample.valid[idx] = true;
  }
#endif
  return sample;
}

Delta CounterGroup::delta(const Sample& begin, const Sample& end) {
  Delta d;
  for (int i = 0; i < kNumEvents; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    if (!begin.valid[idx] || !end.valid[idx]) continue;
    if (end.raw[idx] < begin.raw[idx]) continue;  // defensive: never negative
    const auto raw = static_cast<double>(end.raw[idx] - begin.raw[idx]);
    const auto enabled_ns =
        static_cast<double>(end.time_enabled[idx] - begin.time_enabled[idx]);
    const auto running_ns =
        static_cast<double>(end.time_running[idx] - begin.time_running[idx]);
    if (running_ns > 0.0) {
      // Multiplex correction: extrapolate the counted slice to the window.
      d.value[idx] = raw * (enabled_ns / running_ns);
      d.valid[idx] = true;
    } else if (raw == 0.0) {
      // Not scheduled during the window and nothing counted: an exact zero.
      d.value[idx] = 0.0;
      d.valid[idx] = true;
    }
  }
  return d;
}

CounterGroup& this_thread_group() {
  thread_local CounterGroup group;
  return group;
}

PhaseAccum::PhaseAccum(std::string name) : name_(std::move(name)) {
  for (auto& v : value_) v.store(0.0, std::memory_order_relaxed);
  for (auto& v : valid_) v.store(false, std::memory_order_relaxed);
}

void PhaseAccum::reset() {
  for (auto& v : value_) v.store(0.0, std::memory_order_relaxed);
  for (auto& v : valid_) v.store(false, std::memory_order_relaxed);
  samples_.store(0, std::memory_order_relaxed);
}

void PhaseAccum::add(const Delta& delta) {
  for (int i = 0; i < kNumEvents; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    if (!delta.valid[idx]) continue;
    atomic_add_double(value_[idx], delta.value[idx]);
    valid_[idx].store(true, std::memory_order_relaxed);
  }
  samples_.fetch_add(1, std::memory_order_relaxed);
}

Delta PhaseAccum::total() const {
  Delta d;
  for (int i = 0; i < kNumEvents; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    d.value[idx] = value_[idx].load(std::memory_order_relaxed);
    d.valid[idx] = valid_[idx].load(std::memory_order_relaxed);
  }
  return d;
}

PhaseAccum& phase(const std::string& name) {
  PhaseRegistry& registry = phase_registry();
  const std::lock_guard<std::mutex> lock(registry.mutex);
  auto& slot = registry.phases[name];
  if (slot == nullptr) slot = std::make_unique<PhaseAccum>(name);
  return *slot;
}

std::vector<const PhaseAccum*> phases() {
  PhaseRegistry& registry = phase_registry();
  const std::lock_guard<std::mutex> lock(registry.mutex);
  std::vector<const PhaseAccum*> result;
  result.reserve(registry.phases.size());
  for (const auto& entry : registry.phases)
    result.push_back(entry.second.get());
  return result;
}

void reset_phases() {
  PhaseRegistry& registry = phase_registry();
  const std::lock_guard<std::mutex> lock(registry.mutex);
  for (auto& entry : registry.phases) entry.second->reset();
}

void export_phases(telemetry::MetricsRegistry& registry) {
  for (const PhaseAccum* accum : phases()) {
    if (accum->samples() == 0) continue;
    const Delta total = accum->total();
    const std::string prefix = "sslic.perf." + accum->name();
    registry.counter(prefix + ".samples").set(accum->samples());
    for (int i = 0; i < kNumEvents; ++i) {
      const auto e = static_cast<Event>(i);
      if (!total.has(e)) continue;
      registry.counter(prefix + "." + event_name(e))
          .set(static_cast<std::uint64_t>(total[e]));
    }
    const auto set_gauge = [&](const char* suffix, double value) {
      if (!std::isnan(value)) registry.gauge(prefix + suffix).set(value);
    };
    set_gauge(".ipc", total.ipc());
    set_gauge(".l1d_mpki", total.mpki(Event::kL1dMisses));
    set_gauge(".llc_mpki", total.mpki(Event::kLlcMisses));
    set_gauge(".branch_mpki", total.mpki(Event::kBranchMisses));
    set_gauge(".stalled_frac", total.stalled_fraction());
    set_gauge(".dram_bytes", total.dram_bytes());
  }
}

ScopedSample::ScopedSample(const char* name) : name_(name) {
  if (!enabled()) return;
  const CounterGroup& group = this_thread_group();
  if (!group.active()) return;
  armed_ = true;
  begin_ = group.read();
}

ScopedSample::ScopedSample(Delta* out) : out_(out) {
  if (!enabled()) return;
  const CounterGroup& group = this_thread_group();
  if (!group.active()) return;
  armed_ = true;
  begin_ = group.read();
}

ScopedSample::~ScopedSample() {
  if (!armed_) {
    if (out_ != nullptr) *out_ = Delta{};  // all-invalid: reads as degraded
    return;
  }
  const Delta d = CounterGroup::delta(begin_, this_thread_group().read());
  if (out_ != nullptr) {
    *out_ = d;
  } else if (name_ != nullptr) {
    phase(name_).add(d);
  }
}

IntervalSample::IntervalSample() {
  if (!enabled()) return;
  const CounterGroup& group = this_thread_group();
  if (!group.active()) return;
  armed_ = true;
  begin_ = group.read();
}

void IntervalSample::complete(const char* name) {
  if (armed_) {
    const Sample now = this_thread_group().read();
    phase(name).add(CounterGroup::delta(begin_, now));
    begin_ = now;
    return;
  }
  // Re-arm in case sampling was enabled between regions.
  if (enabled() && this_thread_group().active()) {
    armed_ = true;
    begin_ = this_thread_group().read();
  }
}

}  // namespace sslic::perf

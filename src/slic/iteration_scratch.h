// Reusable per-run working state of the SLIC segmenters.
//
// Every buffer a segmentation run needs — the min-distance plane, planar
// channel splits, per-band sigma pools, subset masks, connectivity
// worklists — lives here instead of on the stack of segment_lab(), so a
// caller that keeps one IterationScratch across frames (TemporalSlic, the
// video pipeline, the fused-iteration bench) pays the allocations once and
// runs every later frame of the same geometry with zero heap allocations
// (tests/test_fused.cpp asserts this with a counting operator new).
//
// All sizing is idempotent: buffers are grown on first use per geometry and
// merely re-filled afterwards (std::vector::assign and Image::fill do not
// reallocate at an unchanged size). The scratch carries no results — the
// labels/centers live in the caller's Segmentation — and one scratch can be
// shared between CPA and PPA runs (unused fields stay empty).
#pragma once

#include <cstdint>
#include <vector>

#include "image/image.h"
#include "image/planar.h"
#include "slic/assign_kernels.h"
#include "slic/center_update.h"
#include "slic/connectivity.h"
#include "slic/grid.h"

namespace sslic {

/// Clamped 2Sx2S scan rectangle of one center (CPA assignment).
struct ScanWindow {
  int x0 = 0;
  int x1 = -1;
  int y0 = 0;
  int y1 = -1;

  [[nodiscard]] std::uint64_t pixels() const {
    return static_cast<std::uint64_t>(x1 - x0 + 1) *
           static_cast<std::uint64_t>(y1 - y0 + 1);
  }
};

/// Per-band working set of the cluster-centric CPA schedule (DESIGN.md
/// §4g): block candidate gathers, per-row span partitioning, and the
/// deterministic traffic tallies the instrumentation sums in ascending
/// band order after the sweep. One instance per row band — bands run on
/// different workers, so nothing here is shared.
struct ClusterBandScratch {
  /// Centers whose windows intersect the current block, ascending index.
  std::vector<std::int32_t> block_cands;
  /// Kernel operands of block_cands (built once per block).
  std::vector<kernels::CenterOperand> block_ops;
  /// Per-row covering candidates: index into block_ops + clamped x-range.
  struct RowCand {
    std::int32_t op = 0;
    std::int32_t xa = 0;
    std::int32_t xb = 0;
  };
  std::vector<RowCand> row_cands;
  std::vector<std::int32_t> ybounds;  ///< y-run breakpoints of the block
  std::vector<std::int32_t> bounds;   ///< span breakpoints of the y-run
  /// One span of a y-run: constant covering set, operands pre-gathered
  /// into the flat span_ops pool (so the per-row loop is kernel calls
  /// only).
  struct Span {
    std::int32_t x0 = 0;
    std::int32_t x1 = 0;        ///< exclusive
    std::int32_t ops_begin = 0; ///< offset into span_ops
    std::int32_t ncand = 0;
  };
  std::vector<Span> spans;
  std::vector<kernels::CenterOperand> span_ops;  ///< flat per-span operand pool
  // Tallies for the honest cluster-mode traffic accounting; integer sums,
  // so the post-sweep ascending merge is order-independent and exact.
  std::uint64_t covered_pixels = 0;  ///< pixels with >= 1 covering center
  std::uint64_t center_loads = 0;    ///< block-candidate operand gathers
};

/// Working buffers of one segmentation run; see the header comment.
struct IterationScratch {
  // --- Shared by CPA and PPA ---
  std::vector<double> min_dist;  ///< running minimum-distance plane
  std::vector<Sigma> sigmas;     ///< merged sigma registers (K entries)
  LabPlanes planes;              ///< planar split feeding the row kernels
  Image<float> gradient;         ///< center-perturbation pass (seed_centers)
  ConnectivityScratch connectivity;

  // --- CPA (slic_baseline.cpp) ---
  std::vector<std::uint8_t> active;  ///< per-center subset activity flags
  std::vector<ScanWindow> windows;   ///< clamped scan windows, K entries
  /// Fused iteration: one sigma pool per row band, merged in ascending
  /// band order after the band sweep (same reduction tree as the two-pass
  /// parallel_reduce, so centers match it bit for bit).
  std::vector<std::vector<Sigma>> band_sigmas;
  /// Cluster-centric schedule: per-grid-column buckets of the active
  /// centers whose windows x-intersect the column (rebuilt each iteration
  /// in the serial prelude; ascending center index by construction).
  std::vector<std::vector<std::int32_t>> column_buckets;
  /// Cluster-centric schedule: per-band block/span working set.
  std::vector<ClusterBandScratch> cluster_bands;

  // --- PPA (subsampled.cpp) ---
  LabImage stored;  ///< quantized image copy (data widths below float only)
  std::vector<std::uint8_t> row_active;  ///< per-row subset mask
  std::vector<std::uint8_t> frozen;      ///< preemptive: converged centers
  std::vector<std::uint8_t> calm_streak;
  std::vector<std::uint8_t> tile_skipped;
  /// Static 9-candidate map, cached per (width, height, K) geometry.
  std::vector<CandidateList> candidates;
  int candidates_width = 0;
  int candidates_height = 0;
  int candidates_k = 0;

  /// Sizes the per-band sigma pools (fused CPA path). The pools are
  /// re-zeroed by the band bodies each iteration; this only shapes them.
  void ensure_band_sigmas(std::size_t bands, std::size_t num_centers) {
    if (band_sigmas.size() != bands) band_sigmas.resize(bands);
    for (auto& pool : band_sigmas)
      if (pool.size() != num_centers) pool.resize(num_centers);
  }

  /// Sizes the cluster-centric working set (buckets and per-band scratch).
  /// Contents are rebuilt every iteration; this only shapes the outer
  /// vectors so steady-state frames allocate nothing new.
  void ensure_cluster_scratch(std::size_t columns, std::size_t bands) {
    if (column_buckets.size() != columns) column_buckets.resize(columns);
    if (cluster_bands.size() != bands) cluster_bands.resize(bands);
  }

  /// Rebuilds the candidate map only when the grid geometry changed.
  const std::vector<CandidateList>& candidate_map(const CenterGrid& grid) {
    if (candidates_width != grid.width() ||
        candidates_height != grid.height() ||
        candidates_k != grid.num_centers()) {
      candidates = build_candidate_map(grid);
      candidates_width = grid.width();
      candidates_height = grid.height();
      candidates_k = grid.num_centers();
    }
    return candidates;
  }
};

}  // namespace sslic

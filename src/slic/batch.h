// Batched multi-frame segmentation — the seam for the multi-stream
// service (ROADMAP item 1): N independent frames segmented as one job.
//
// A single-frame call pays per-frame overheads that a batch can amortize:
// one thread-pool drain per parallel region (several regions per frame),
// kernel-table/strategy resolution, trace-span and telemetry arming, and
// cold working buffers. BatchSegmenter instead dispatches *frames* across
// the pool — one run_chunks drain per batch — and runs each frame's inner
// segmenter serially (nested parallel regions fall back to serial via
// ThreadPool::in_parallel_region()). Each frame therefore takes the serial
// code path, which is bit-identical to every parallel path by the
// determinism contract, so batch results are byte-equal to the
// corresponding single-frame segmentations at any thread count.
//
// Per-stream state (Segmentation, IterationScratch, Lab buffer,
// Instrumentation) is pooled by slot index: a steady-state caller that
// feeds batches of the same size and geometry runs allocation-free after
// the first batch (asserted by tests/test_fused.cpp).
#pragma once

#include <cstddef>
#include <vector>

#include "common/telemetry.h"
#include "slic/slic_baseline.h"
#include "slic/subsampled.h"

namespace sslic {

/// Multi-frame batch front end over CpaSlic / PpaSlic.
class BatchSegmenter {
 public:
  /// Which segmenter runs each frame of the batch.
  enum class Algorithm {
    kCpa = 0,  ///< center-perspective baseline (slic_baseline.h)
    kPpa = 1,  ///< pixel-perspective architecture (subsampled.h)
  };

  explicit BatchSegmenter(SlicParams params, Algorithm algorithm = Algorithm::kCpa,
                          DataWidth data_width = DataWidth::float64());

  /// Segments `frames[0..count)` (Lab input — the kernel-facing format).
  /// After the call, results()[i] and instrumentation()[i] describe
  /// frames[i]. The returned spans stay valid until the next segment call
  /// or destruction. Frames may differ in geometry; only same-geometry
  /// steady state is allocation-free.
  void segment_lab_batch(const LabImage* frames, std::size_t count);

  /// Convenience overload.
  void segment_lab_batch(const std::vector<LabImage>& frames) {
    segment_lab_batch(frames.data(), frames.size());
  }

  /// RGB batch: converts each frame into a per-slot Lab buffer (reused
  /// across batches), then segments as above.
  void segment_batch(const RgbImage* frames, std::size_t count);
  void segment_batch(const std::vector<RgbImage>& frames) {
    segment_batch(frames.data(), frames.size());
  }

  /// Results of the last batch, one entry per input frame.
  [[nodiscard]] const std::vector<Segmentation>& results() const {
    return results_;
  }
  /// Per-frame instrumentation of the last batch (parallel to results()).
  [[nodiscard]] const std::vector<Instrumentation>& instrumentation() const {
    return instrumentation_;
  }

  [[nodiscard]] const SlicParams& params() const { return params_; }
  [[nodiscard]] Algorithm algorithm() const { return algorithm_; }

 private:
  void ensure_slots(std::size_t count);
  void run_batch(std::size_t count, bool frames_are_rgb,
                 const LabImage* lab_frames, const RgbImage* rgb_frames);

  SlicParams params_;
  Algorithm algorithm_;
  CpaSlic cpa_;
  PpaSlic ppa_;
  // Telemetry counters, resolved once at construction so per-batch calls
  // skip the registry's string-key lookup (it allocates, and steady-state
  // batches must not). MetricsRegistry::clear() invalidates these like any
  // cached metric reference — construct the segmenter after registry
  // resets, not before.
  telemetry::Counter* batch_runs_;
  telemetry::Counter* batch_frames_;

  // Slot-indexed per-stream state; grows to the largest batch seen.
  std::vector<Segmentation> results_;
  std::vector<Instrumentation> instrumentation_;
  std::vector<IterationScratch> scratch_;
  std::vector<LabImage> lab_;  ///< RGB-path conversion buffers
};

}  // namespace sslic

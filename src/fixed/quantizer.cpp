#include "fixed/quantizer.h"

#include <cmath>
#include <limits>

namespace sslic {

Quantizer::Quantizer(int total_bits, int frac_bits, Rounding rounding)
    : total_bits_(total_bits), frac_bits_(frac_bits), rounding_(rounding) {
  SSLIC_CHECK_MSG(total_bits >= 2 && total_bits <= 62,
                  "total_bits=" << total_bits << " out of [2,62]");
  SSLIC_CHECK(frac_bits >= 0 && frac_bits < total_bits);
  scale_ = std::ldexp(1.0, frac_bits);
  raw_max_ = std::ldexp(1.0, total_bits - 1) - 1.0;
  raw_min_ = -std::ldexp(1.0, total_bits - 1);
}

double Quantizer::max_value() const {
  return is_identity() ? std::numeric_limits<double>::max() : raw_max_ / scale_;
}

double Quantizer::min_value() const {
  return is_identity() ? std::numeric_limits<double>::lowest() : raw_min_ / scale_;
}

double Quantizer::resolution() const { return is_identity() ? 0.0 : 1.0 / scale_; }

double Quantizer::apply(double v) const {
  if (is_identity()) return v;
  double raw = v * scale_;
  switch (rounding_) {
    case Rounding::kNearest:
      raw = raw >= 0.0 ? std::floor(raw + 0.5) : std::ceil(raw - 0.5);
      break;
    case Rounding::kTruncate:
      raw = std::trunc(raw);
      break;
  }
  if (raw > raw_max_) raw = raw_max_;
  if (raw < raw_min_) raw = raw_min_;
  return raw / scale_;
}

std::string Quantizer::name() const {
  if (is_identity()) return "float64";
  return "fx" + std::to_string(total_bits_ - frac_bits_) + "." +
         std::to_string(frac_bits_);
}

}  // namespace sslic

// Vectorized distance/assignment kernels with runtime ISA dispatch.
//
// These row kernels are the software hot path of every segmenter in
// the family — the per-pixel 5-D distance + argmin that the accelerator
// implements as parallel distance calculators feeding a minimum tree:
//
//   * assign_center_row       CPA/SLIC: one center's running-min update
//                             over a row segment of its 2Sx2S window.
//   * assign_candidates_row   PPA: best-of-9-candidates per pixel over a
//                             tile row, with the round-robin subset mask.
//                             Also the cluster-centric CPA span kernel for
//                             full SLIC (running min seeded from infinity).
//   * assign_candidates_row_seeded  Cluster-centric CPA for the subsampled
//                             variant: the running min is seeded from the
//                             persistent min-distance plane, so each
//                             covering center applies the same strict-<
//                             update the row-sweep performs — but held in
//                             registers across the whole candidate list.
//   * assign_candidates_row_u8  The 8-bit integer datapath variant of the
//                             same (HwSlic golden model).
//   * accumulate_row          Fused-iteration sigma accumulation: scatters
//                             one row's Lab/x/y contributions into the
//                             per-label sigma registers (the software
//                             analogue of the accelerator's tile-resident
//                             cluster update unit).
//
// Bit-identical contract (carried over from the threading layer, DESIGN.md
// "Parallel execution"): every pixel's arithmetic is lane-independent and
// performs the *same operation sequence* as the scalar reference — plain
// IEEE multiplies and adds in the association order of
// DistanceCalculator::squared / HwSlic::integer_distance, no FMA
// contraction (kernel TUs build with -ffp-contract=off), strict `<`
// comparisons so distance ties keep the lowest center index in every lane.
// Labels, min-distances, and therefore centers are byte-identical across
// scalar/SSE2/AVX2/AVX-512/NEON backends, tail lengths, and thread counts;
// tests/test_simd.cpp asserts this exhaustively.
//
// Each backend lives in its own translation unit compiled with the
// matching architecture flags (assign_kernels_{scalar,sse2,avx2,neon}.cpp)
// and instantiates one shared template algorithm
// (assign_kernels_impl.h), so the operation sequence cannot drift between
// backends. Dispatch is a function-pointer table selected from
// simd::preferred_isa() clamped to the backends compiled into the binary.
#pragma once

#include <cstdint>

#include "common/simd.h"
#include "slic/center_update.h"

namespace sslic::kernels {

/// One 5-D cluster center plus its index, in the double-precision form the
/// floating-point kernels consume.
struct CenterOperand {
  double L = 0.0;
  double a = 0.0;
  double b = 0.0;
  double x = 0.0;
  double y = 0.0;
  std::int32_t index = 0;
};

/// Integer center operand of the 8-bit datapath kernel (Lab8-encoded color
/// plus pixel coordinates, as the hardware center registers hold them).
struct HwCenterOperand {
  std::int32_t L = 0;
  std::int32_t a = 0;
  std::int32_t b = 0;
  std::int32_t x = 0;
  std::int32_t y = 0;
  std::int32_t index = 0;
};

/// Function-pointer table of one backend's kernels. All row pointers are
/// pre-offset to the segment start (pixel x0 of row y); `count` is the
/// segment length in pixels. None of the kernels require alignment.
struct KernelTable {
  /// CPA running-min update: for i in [0, count), computes the squared
  /// Eq.-5 distance of pixel (x0+i, y) to `center` and, where it is
  /// strictly below min_dist[i], stores it and center.index.
  void (*assign_center_row)(const float* L, const float* a, const float* b,
                            std::int32_t x0, std::int32_t count, double y,
                            const CenterOperand& center, double spatial_weight,
                            double* min_dist, std::int32_t* labels);

  /// PPA best-of-candidates: for i in [0, count) with active[i] != 0 (a
  /// null `active` means every pixel), finds the candidate with the
  /// minimum distance (ties keep the earliest list slot) and stores the
  /// distance into min_dist[i] and the candidate index into labels[i].
  /// Inactive pixels are left untouched. `ncand` must be >= 1.
  void (*assign_candidates_row)(const float* L, const float* a, const float* b,
                                std::int32_t x0, std::int32_t count, double y,
                                const CenterOperand* cands, std::int32_t ncand,
                                double spatial_weight,
                                const std::uint8_t* active, double* min_dist,
                                std::int32_t* labels);

  /// Seeded best-of-candidates (cluster-centric subsampled CPA): like
  /// assign_candidates_row, but the running minimum starts from the
  /// existing (min_dist[i], labels[i]) pair instead of infinity, and both
  /// are stored back unconditionally. Ties keep the seed (strict `<`), so
  /// one call over an ascending candidate list produces exactly the bytes
  /// the row-sweep kernel leaves after visiting the same centers one by
  /// one. `ncand` must be >= 1.
  void (*assign_candidates_row_seeded)(const float* L, const float* a,
                                       const float* b, std::int32_t x0,
                                       std::int32_t count, double y,
                                       const CenterOperand* cands,
                                       std::int32_t ncand,
                                       double spatial_weight, double* min_dist,
                                       std::int32_t* labels);

  /// 8-bit integer datapath best-of-candidates (HwSlic::integer_distance
  /// followed by HwSlic::quantize_distance when dist_bits != 0); stores
  /// the winning candidate index into labels[i] for active pixels.
  void (*assign_candidates_row_u8)(const std::uint8_t* L,
                                   const std::uint8_t* a,
                                   const std::uint8_t* b, std::int32_t x0,
                                   std::int32_t count, std::int32_t y,
                                   const HwCenterOperand* cands,
                                   std::int32_t ncand, std::int32_t weight_q8,
                                   std::int32_t dist_bits,
                                   std::int32_t dist_shift,
                                   const std::uint8_t* active,
                                   std::int32_t* labels);

  /// Fused-iteration sigma scatter: for i in [0, count), adds pixel
  /// (x0+i, y)'s Lab color and coordinates into sigmas[labels[i]] in the
  /// exact field order of Sigma::add (L, a, b, x, y, count). Vector
  /// backends widen `kLanesF64` floats at a time but always scatter in
  /// ascending lane order — the f32->f64 widening is exact and the
  /// accumulation order matches the scalar loop, so sigma sums are
  /// bit-equal to the scalar reference on every backend.
  void (*accumulate_row)(const float* L, const float* a, const float* b,
                         std::int32_t x0, std::int32_t count, std::int32_t y,
                         const std::int32_t* labels, Sigma* sigmas);
};

/// True when the backend for `isa` was compiled into this binary (the
/// scalar backend always is; vector backends depend on the target
/// architecture and the SSLIC_SIMD build option).
bool backend_compiled(simd::Isa isa);

/// The kernel table of `isa`; falls back to the scalar table when that
/// backend is not compiled in. Calling a vector table on a CPU that lacks
/// the instruction set is undefined — resolve through `active_isa()`
/// unless the caller has checked `simd::cpu_supports` itself.
const KernelTable& table_for(simd::Isa isa);

/// The ISA actually used: simd::preferred_isa() (env/flag override, CPU
/// clamped) further clamped to the compiled backends, degrading
/// avx512 -> avx2 -> sse2 -> scalar and neon -> scalar. Publishes the
/// resolved value as the telemetry gauge `sslic.simd.active_isa` (the
/// numeric Isa enum value) so runs can report which backend executed.
simd::Isa active_isa();

/// Kernel table of `active_isa()` — what the segmenters call. Resolve once
/// per run, outside the pixel loops.
const KernelTable& active();

// Per-backend tables, defined in assign_kernels_<isa>.cpp. Internal —
// callers use table_for()/active().
const KernelTable& scalar_table();
#if defined(SSLIC_KERNELS_SSE2)
const KernelTable& sse2_table();
#endif
#if defined(SSLIC_KERNELS_AVX2)
const KernelTable& avx2_table();
#endif
#if defined(SSLIC_KERNELS_NEON)
const KernelTable& neon_table();
#endif
#if defined(SSLIC_KERNELS_AVX512)
const KernelTable& avx512_table();
#endif

}  // namespace sslic::kernels

#include "slic/batch.h"

#include <cstdint>

#include "color/color_convert.h"
#include "common/telemetry.h"
#include "common/thread_pool.h"
#include "common/trace.h"

namespace sslic {

BatchSegmenter::BatchSegmenter(SlicParams params, Algorithm algorithm,
                               DataWidth data_width)
    : params_(params),
      algorithm_(algorithm),
      cpa_(params),
      ppa_(params, data_width),
      batch_runs_(
          &telemetry::MetricsRegistry::global().counter("sslic.batch.runs")),
      batch_frames_(&telemetry::MetricsRegistry::global().counter(
          "sslic.batch.frames")) {}

void BatchSegmenter::ensure_slots(std::size_t count) {
  // Grow-only: shrinking would free the very buffers a steady-state caller
  // is reusing. Slots beyond the current batch just sit idle.
  if (results_.size() < count) {
    results_.resize(count);
    instrumentation_.resize(count);
    scratch_.resize(count);
    lab_.resize(count);
  }
}

void BatchSegmenter::run_batch(std::size_t count, bool frames_are_rgb,
                               const LabImage* lab_frames,
                               const RgbImage* rgb_frames) {
  if (count == 0) return;
  SSLIC_TRACE_SCOPE("batch.segment", static_cast<std::int64_t>(count));
  ensure_slots(count);
  batch_runs_->add();
  batch_frames_->add(count);

  // One pool drain for the whole batch: frames are the chunks. Inside a
  // worker the inner segmenter sees in_parallel_region() and runs its
  // serial path, which the determinism contract makes bit-identical to
  // every parallel path — so batch results match single-frame runs byte
  // for byte at any thread count.
  const auto run_frame = [&](std::size_t i) {
    SSLIC_TRACE_SCOPE_AT(1, "batch.frame", static_cast<std::int64_t>(i));
    const LabImage* frame = nullptr;
    if (frames_are_rgb) {
      srgb_to_lab(rgb_frames[i], lab_[i]);
      frame = &lab_[i];
    } else {
      frame = lab_frames + i;
    }
    if (algorithm_ == Algorithm::kCpa) {
      cpa_.segment_lab_into(*frame, results_[i], scratch_[i], {},
                            &instrumentation_[i], nullptr);
    } else {
      ppa_.segment_lab_into(*frame, results_[i], scratch_[i], {},
                            &instrumentation_[i], nullptr);
    }
  };
  ThreadPool& pool = ThreadPool::global();
  if (pool.threads() <= 1 || count <= 1 || ThreadPool::in_parallel_region()) {
    for (std::size_t i = 0; i < count; ++i) run_frame(i);
  } else {
    pool.run_chunks(count, run_frame);
  }
}

void BatchSegmenter::segment_lab_batch(const LabImage* frames,
                                       std::size_t count) {
  run_batch(count, /*frames_are_rgb=*/false, frames, nullptr);
}

void BatchSegmenter::segment_batch(const RgbImage* frames, std::size_t count) {
  run_batch(count, /*frames_are_rgb=*/true, nullptr, frames);
}

}  // namespace sslic

// Per-event energy constants for the 16 nm FinFET / 0.72 V / 1.6 GHz design
// point (paper Section 5), with provenance.
//
// The paper evaluates energy with Synopsys PrimeTime-PX on a gate-level
// netlist; that flow is not reproducible offline, so this model composes
// per-event energies instead — exactly the style of argument the paper
// itself uses in Section 4.2 ("the energy of an 8b DRAM reference is 2500x
// larger than the energy of an 8b add", citing Horowitz ISSCC'14).
//
// Base constants derive from Horowitz's published 45 nm / 0.9 V numbers
// (8-bit add 0.03 pJ, 8-bit multiply 0.2 pJ, SRAM and DRAM access ranges),
// scaled to 16 nm / 0.72 V by a capacitance factor of ~0.36 and a voltage
// factor of (0.72/0.9)^2 = 0.64, i.e. ~0.23x overall. Composite per-event
// energies (a full 5-D distance evaluation, per-pixel register/control
// overhead) are calibrated so the model reproduces the paper's Table 3
// within ~5%; EXPERIMENTS.md records the calibration residuals.
#pragma once

namespace sslic::hw {

/// Energy constants in picojoules (pJ) unless noted. 16 nm, 0.72 V.
struct EnergyModel {
  // --- Primitive operations (Horowitz ISSCC'14, scaled to 16 nm). ---
  double add8_pj = 0.007;   ///< 8-bit integer add
  double mul8_pj = 0.045;   ///< 8-bit integer multiply

  // --- Composite datapath events (calibrated against Table 3). ---
  /// One 5-D color-space distance evaluation (Eq. 5): 5 subtract-square-
  /// accumulate steps, spatial scaling, final add, local wiring.
  double distance_eval_pj = 1.40;
  /// One comparison step of an iterative 9:1 minimum (includes the loop
  /// register update).
  double min_compare_iterative_pj = 0.11;
  /// One comparison node of a parallel 9:1 minimum tree. The published
  /// Table-3 cells are consistent with tree and iterative compares costing
  /// the same energy (the tree saves *sequencing*, not compare, energy).
  double min_compare_tree_pj = 0.11;
  /// One sigma-register accumulation add (wide accumulator).
  double sigma_add_pj = 0.115;
  /// Per-pixel-slot overhead: pixel-register load, scratch-pad channel
  /// reads, index write, FSM control.
  double pixel_slot_base_pj = 2.49;
  /// Extra pipeline-staging energy per additional parallel way.
  double parallel_stage_pj = 0.20;
  /// Sequencing energy per extra iteration cycle of each time-multiplexed
  /// function, per pixel (loop counters, operand muxing).
  double iterative_seq_pj = 0.10;
  /// Result-buffering energy when 9 parallel distance results must be held
  /// for an iterative minimum unit to consume over 9 cycles (the 9-1-1
  /// producer/consumer rate mismatch).
  double rate_mismatch_buffer_pj = 1.0;
  /// One iteration step of the center-update divider.
  double divider_step_pj = 0.10;

  // --- Memories and interfaces. ---
  /// DRAM *device+channel* energy per byte: the paper's own 2500x-an-8b-add
  /// model (Section 4.2). Used for the CPA-vs-PPA architectural energy
  /// argument; not part of accelerator chip power.
  double dram_device_pj_per_byte = 2500.0 * 0.007;
  /// DRAM interface (PHY + IO) energy per byte, charged to the accelerator.
  double dram_phy_pj_per_byte = 2.5;
  /// Scratch-pad SRAM access energy per byte for a pad of `kbytes`
  /// capacity (grows slowly with capacity: longer bitlines).
  [[nodiscard]] double sram_access_pj_per_byte(double kbytes) const;

  // --- Static / clock. ---
  /// Leakage per mm^2 of logic+SRAM at 16 nm, 0.72 V, in mW.
  double leakage_mw_per_mm2 = 20.0;
  /// Clock-tree and idle-pipeline power as a fraction of peak dynamic
  /// power of the clocked unit.
  double clock_overhead_fraction = 0.10;
};

/// The model used throughout the repository (default-constructed constants).
const EnergyModel& default_energy_model();

}  // namespace sslic::hw

#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/trace.h"

namespace sslic {
namespace {

constexpr int kUninitialized = -1;

// -1 until the first query resolves the SSLIC_LOG_LEVEL environment
// override (idempotent, so the benign first-use race is harmless).
std::atomic<int> g_level{kUninitialized};

int level_from_env() {
  const char* env = std::getenv("SSLIC_LOG_LEVEL");
  if (env == nullptr) return static_cast<int>(LogLevel::kInfo);
  if (std::strcmp(env, "debug") == 0 || std::strcmp(env, "0") == 0)
    return static_cast<int>(LogLevel::kDebug);
  if (std::strcmp(env, "info") == 0 || std::strcmp(env, "1") == 0)
    return static_cast<int>(LogLevel::kInfo);
  if (std::strcmp(env, "warn") == 0 || std::strcmp(env, "2") == 0)
    return static_cast<int>(LogLevel::kWarn);
  if (std::strcmp(env, "error") == 0 || std::strcmp(env, "3") == 0)
    return static_cast<int>(LogLevel::kError);
  return static_cast<int>(LogLevel::kInfo);
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

// Compact per-thread id for log correlation (assignment order, not OS tid).
int log_thread_id() {
  static std::atomic<int> next{0};
  thread_local const int id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  int level = g_level.load(std::memory_order_relaxed);
  if (level == kUninitialized) {
    level = level_from_env();
    g_level.store(level, std::memory_order_relaxed);
  }
  return static_cast<LogLevel>(level);
}

namespace detail {

void log_emit(LogLevel level, const std::string& message) {
  // One formatted line, one fwrite, one flush: concurrent workers cannot
  // shear each other's messages mid-line. The timestamp shares the trace
  // clock so log lines line up with trace spans.
  const double t_ms = static_cast<double>(trace::now_ns()) / 1e6;
  char prefix[64];
  const int prefix_len =
      std::snprintf(prefix, sizeof(prefix), "[%-5s %10.3fms t%02d] ",
                    level_name(level), t_ms, log_thread_id());
  std::string line;
  line.reserve(static_cast<std::size_t>(prefix_len) + message.size() + 1);
  line += prefix;
  line += message;
  line += '\n';
  std::fwrite(line.data(), 1, line.size(), stderr);
  std::fflush(stderr);
}

}  // namespace detail

}  // namespace sslic

// Image gradients for SLIC center perturbation (paper Section 2: each
// initial superpixel center is moved to the lowest-gradient position in its
// 3x3 neighbourhood so it does not start on an edge or a noisy pixel).
#pragma once

#include "image/image.h"

namespace sslic {

/// Squared CIELAB gradient magnitude, the quantity the SLIC paper perturbs
/// on: G(x,y) = |I(x+1,y) - I(x-1,y)|^2 + |I(x,y+1) - I(x,y-1)|^2 where
/// |.| is the L2 norm over (L,a,b). Border pixels use clamped neighbours.
Image<float> lab_gradient_magnitude(const LabImage& lab);

/// In-place variant: fills `grad`, reallocating only when the dimensions
/// change (allocation-free at steady state — per-frame seeding paths).
void lab_gradient_magnitude(const LabImage& lab, Image<float>& grad);

/// Luminance Sobel gradient magnitude (utility; used by examples and the
/// dataset generator's self-checks).
Image<float> sobel_magnitude(const Image<std::uint8_t>& grey);

/// Returns the position of the minimum of `gradient` within the 3x3
/// neighbourhood of (x, y), clamped to the image interior.
struct Point {
  int x = 0;
  int y = 0;
  friend bool operator==(const Point&, const Point&) = default;
};
Point argmin_gradient_3x3(const Image<float>& gradient, int x, int y);

}  // namespace sslic

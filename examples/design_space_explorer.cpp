// Interactive design-space exploration: given a target resolution, frame
// rate, and superpixel count, sweep the accelerator design space (cluster
// parallelism x buffer size x cores) and report the Pareto-optimal and
// selected configurations — the Section-6 methodology as a reusable tool.
//
//   design_space_explorer [--width=1920 --height=1080] [--superpixels=5000]
//                         [--fps=30] [--ratio=0.5]
#include <algorithm>
#include <iostream>
#include <vector>

#include "common/cli.h"
#include "common/table.h"
#include "hw/dse.h"

int main(int argc, char** argv) {
  using namespace sslic;
  using namespace sslic::hw;
  const CliArgs args(argc, argv);

  AcceleratorDesign base;
  base.width = args.get_int("width", 1920);
  base.height = args.get_int("height", 1080);
  base.num_superpixels = args.get_int("superpixels", 5000);
  base.subsample_ratio = args.get_double("ratio", 0.5);
  const double target_fps = args.get_double("fps", 30.0);

  std::cout << "exploring S-SLIC accelerator designs for " << base.width << 'x'
            << base.height << ", K=" << base.num_superpixels << ", target "
            << target_fps << " fps\n\n";

  const DesignSpaceExplorer dse(base);
  const std::vector<ClusterUnitConfig> configs = {
      ClusterUnitConfig::way_111(), ClusterUnitConfig{3, 3, 2},
      ClusterUnitConfig{9, 3, 3},   ClusterUnitConfig{9, 9, 1},
      ClusterUnitConfig::way_996(),
  };
  const std::vector<double> buffers = {1024, 2048, 4096, 8192, 16384};
  std::vector<DsePoint> points = dse.full_grid(configs, buffers);
  for (const int cores : {2, 4}) {
    AcceleratorDesign d = base;
    d.num_cores = cores;
    for (const auto& cfg : configs) {
      d.cluster = cfg;
      points.push_back(DesignSpaceExplorer::evaluate(d));
    }
  }

  // Pareto front over (fps maximized, energy minimized).
  const auto dominated = [&](const DsePoint& p) {
    return std::any_of(points.begin(), points.end(), [&](const DsePoint& q) {
      return q.report.fps >= p.report.fps &&
             q.report.energy_per_frame_j <= p.report.energy_per_frame_j &&
             (q.report.fps > p.report.fps ||
              q.report.energy_per_frame_j < p.report.energy_per_frame_j);
    });
  };

  Table table("Design space (Pareto-optimal points marked *)");
  table.set_header({"cluster", "buffer", "cores", "fps", "meets target",
                    "power mW", "energy mJ", "area mm2", "pareto"});
  std::sort(points.begin(), points.end(), [](const DsePoint& a, const DsePoint& b) {
    return a.report.fps < b.report.fps;
  });
  for (const auto& p : points) {
    table.add_row({p.design.cluster.name(),
                   Table::num(p.design.channel_buffer_bytes / 1024.0, 0) + "kB",
                   std::to_string(p.design.num_cores),
                   Table::num(p.report.fps, 1),
                   p.report.fps >= target_fps ? "yes" : "no",
                   Table::num(p.report.average_power_w * 1e3, 1),
                   Table::num(p.report.energy_per_frame_j * 1e3, 2),
                   Table::num(p.report.area_mm2, 4),
                   dominated(p) ? "" : "*"});
  }
  std::cout << table;

  // Selection rule: minimum energy among target-meeting points.
  const DsePoint* best = nullptr;
  for (const auto& p : points) {
    if (p.report.fps < target_fps) continue;
    if (best == nullptr ||
        p.report.energy_per_frame_j < best->report.energy_per_frame_j)
      best = &p;
  }
  if (best == nullptr) {
    std::cout << "\nno explored design meets " << target_fps
              << " fps — raise cores/clock or reduce the workload.\n";
    return 1;
  }
  std::cout << "\nselected design: cluster " << best->design.cluster.name()
            << ", " << best->design.channel_buffer_bytes / 1024.0
            << " kB/channel, " << best->design.num_cores << " core(s) -> "
            << Table::num(best->report.fps, 1) << " fps, "
            << Table::num(best->report.energy_per_frame_j * 1e3, 2) << " mJ/frame, "
            << Table::num(best->report.area_mm2, 4) << " mm2\n"
            << "(the paper's Section-6 flow selects 9-9-6 with 4 kB buffers "
               "for 1080p30)\n";
  return 0;
}

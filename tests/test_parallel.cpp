// Tests for the multithreaded execution layer (thread pool, parallel_for,
// parallel_reduce) and the determinism contract of the parallelized SLIC
// paths: results must be bit-identical at every thread count.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/thread_pool.h"
#include "dataset/synthetic.h"
#include "slic/slic_baseline.h"
#include "slic/types.h"

namespace sslic {
namespace {

/// Restores the global pool to the environment default on scope exit so
/// tests cannot leak a thread-count override into each other.
struct GlobalThreadsGuard {
  ~GlobalThreadsGuard() { ThreadPool::set_global_threads(0); }
};

TEST(ThreadPool, RunsEveryChunkExactlyOnce) {
  GlobalThreadsGuard guard;
  for (const int threads : {1, 2, 4, 8}) {
    ThreadPool pool(threads);
    constexpr std::size_t kChunks = 97;
    std::vector<std::atomic<int>> hits(kChunks);
    pool.run_chunks(kChunks, [&](std::size_t c) {
      hits[c].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t c = 0; c < kChunks; ++c)
      EXPECT_EQ(hits[c].load(), 1) << "chunk " << c << ", threads " << threads;
  }
}

TEST(ThreadPool, BackToBackTinyJobsTolerateLateWakers) {
  // Regression test for a late-waker race: a worker that slept through a
  // completed job could satisfy its wake predicate late, enter drain()
  // concurrently with the next run_chunks call's state reset, double-run a
  // chunk, and overshoot done_chunks so the caller hung. Rapid tiny jobs
  // maximize the window — the caller usually drains both chunks itself
  // before any worker wakes, so stragglers arrive during later jobs.
  ThreadPool pool(8);
  for (int job = 0; job < 2000; ++job) {
    std::atomic<int> total{0};
    pool.run_chunks(2, [&](std::size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
    ASSERT_EQ(total.load(), 2) << "job " << job;
  }
}

TEST(ThreadPool, EmptyJobIsANoOp) {
  ThreadPool pool(4);
  bool ran = false;
  pool.run_chunks(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, PropagatesExceptionAndStaysUsable) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.run_chunks(32,
                               [&](std::size_t c) {
                                 if (c == 7) throw std::runtime_error("chunk 7");
                               }),
               std::runtime_error);

  // The pool must be fully quiescent and reusable after a failed job.
  std::atomic<int> total{0};
  pool.run_chunks(32, [&](std::size_t) {
    total.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(total.load(), 32);
}

TEST(ThreadPool, NestedCallsDegradeToSerial) {
  GlobalThreadsGuard guard;
  ThreadPool::set_global_threads(4);
  std::atomic<std::int64_t> total{0};
  parallel_for(0, 64, [&](std::int64_t lo, std::int64_t hi) {
    // Nested parallel primitives must run inline instead of deadlocking
    // against the in-flight outer job.
    EXPECT_TRUE(ThreadPool::in_parallel_region());
    parallel_for(lo, hi, [&](std::int64_t ilo, std::int64_t ihi) {
      total.fetch_add(ihi - ilo, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ParallelFor, CoversRangeExactlyOnce) {
  GlobalThreadsGuard guard;
  for (const int threads : {1, 3, 8}) {
    ThreadPool::set_global_threads(threads);
    constexpr std::int64_t kN = 10007;
    std::vector<std::atomic<int>> hits(kN);
    parallel_for(0, kN, [&](std::int64_t lo, std::int64_t hi) {
      for (std::int64_t i = lo; i < hi; ++i)
        hits[static_cast<std::size_t>(i)].fetch_add(1,
                                                    std::memory_order_relaxed);
    });
    std::int64_t total = 0;
    for (const auto& h : hits) {
      EXPECT_EQ(h.load(), 1);
      total += h.load();
    }
    EXPECT_EQ(total, kN);
  }
}

TEST(ParallelReduce, BitIdenticalAcrossThreadCounts) {
  GlobalThreadsGuard guard;
  // A floating-point sum whose value depends on association order: if the
  // chunk structure or merge order varied with the thread count, the totals
  // would drift.
  const auto sum_under = [](int threads) {
    ThreadPool::set_global_threads(threads);
    return parallel_reduce<double>(
        1, 200000,
        [](double& partial, std::int64_t lo, std::int64_t hi) {
          for (std::int64_t i = lo; i < hi; ++i)
            partial += 1.0 / static_cast<double>(i * i);
        },
        [](double& into, double from) { into += from; });
  };
  const double serial = sum_under(1);
  for (const int threads : {2, 4, 8}) {
    const double parallel = sum_under(threads);
    EXPECT_EQ(serial, parallel) << "threads=" << threads;
  }
}

struct SegCase {
  std::uint64_t seed;
  double ratio;  // 1.0 = full SLIC, < 1 = subsampled CPA
};

TEST(Determinism, SlicLabelsAndCentersMatchSerial) {
  GlobalThreadsGuard guard;
  SyntheticParams scene;
  scene.width = 96;
  scene.height = 64;
  scene.min_regions = 4;
  scene.max_regions = 8;

  const SegCase cases[] = {{11, 1.0}, {12, 1.0}, {13, 1.0},
                           {11, 0.5}, {12, 0.5}, {13, 0.5}};
  for (const SegCase& c : cases) {
    const GroundTruthImage gt = generate_synthetic(scene, c.seed);

    SlicParams params;
    params.num_superpixels = 40;
    params.subsample_ratio = c.ratio;
    const CpaSlic slic(params);

    ThreadPool::set_global_threads(1);
    const Segmentation serial = slic.segment(gt.image);
    ThreadPool::set_global_threads(8);
    const Segmentation parallel = slic.segment(gt.image);

    EXPECT_EQ(serial.labels.pixels(), parallel.labels.pixels())
        << "seed=" << c.seed << " ratio=" << c.ratio;
    EXPECT_EQ(serial.centers, parallel.centers)
        << "seed=" << c.seed << " ratio=" << c.ratio;
  }
}

TEST(Determinism, SyntheticGeneratorMatchesSerial) {
  GlobalThreadsGuard guard;
  SyntheticParams scene;
  scene.width = 96;
  scene.height = 64;

  ThreadPool::set_global_threads(1);
  const GroundTruthImage serial = generate_synthetic(scene, 99);
  ThreadPool::set_global_threads(8);
  const GroundTruthImage parallel = generate_synthetic(scene, 99);

  EXPECT_EQ(serial.truth.pixels(), parallel.truth.pixels());
  EXPECT_EQ(serial.image.pixels(), parallel.image.pixels());
  EXPECT_EQ(serial.num_regions, parallel.num_regions);
}

}  // namespace
}  // namespace sslic

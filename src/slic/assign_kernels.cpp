#include "slic/assign_kernels.h"

namespace sslic::kernels {

bool backend_compiled(simd::Isa isa) {
  switch (isa) {
    case simd::Isa::kScalar:
      return true;
    case simd::Isa::kSse2:
#if defined(SSLIC_KERNELS_SSE2)
      return true;
#else
      return false;
#endif
    case simd::Isa::kAvx2:
#if defined(SSLIC_KERNELS_AVX2)
      return true;
#else
      return false;
#endif
    case simd::Isa::kNeon:
#if defined(SSLIC_KERNELS_NEON)
      return true;
#else
      return false;
#endif
  }
  return false;
}

const KernelTable& table_for(simd::Isa isa) {
  switch (isa) {
    case simd::Isa::kScalar:
      break;
    case simd::Isa::kSse2:
#if defined(SSLIC_KERNELS_SSE2)
      return sse2_table();
#else
      break;
#endif
    case simd::Isa::kAvx2:
#if defined(SSLIC_KERNELS_AVX2)
      return avx2_table();
#else
      break;
#endif
    case simd::Isa::kNeon:
#if defined(SSLIC_KERNELS_NEON)
      return neon_table();
#else
      break;
#endif
  }
  return scalar_table();
}

simd::Isa active_isa() {
  simd::Isa isa = simd::preferred_isa();
  // Degrade along the same ladder the CPU clamp uses, but against the
  // backends compiled into this binary.
  if (isa == simd::Isa::kAvx2 && !backend_compiled(isa)) isa = simd::Isa::kSse2;
  if (!backend_compiled(isa)) isa = simd::Isa::kScalar;
  return isa;
}

const KernelTable& active() { return table_for(active_isa()); }

}  // namespace sslic::kernels

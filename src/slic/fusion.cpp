#include "slic/fusion.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace sslic {
namespace {

// -1 = no override (use the environment), 0 = forced off, 1 = forced on.
std::atomic<int> g_override{-1};

bool env_default() {
  static const bool value = [] {
    const char* env = std::getenv("SSLIC_FUSE");
    if (env == nullptr) return true;
    return !(std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0 ||
             std::strcmp(env, "false") == 0);
  }();
  return value;
}

}  // namespace

bool fusion_enabled() {
  const int override_value = g_override.load(std::memory_order_relaxed);
  if (override_value >= 0) return override_value != 0;
  return env_default();
}

void set_fusion(bool enabled) {
  g_override.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

void clear_fusion_override() {
  g_override.store(-1, std::memory_order_relaxed);
}

FusionGuard::FusionGuard(bool enabled)
    : previous_override_(g_override.load(std::memory_order_relaxed)) {
  set_fusion(enabled);
}

FusionGuard::~FusionGuard() {
  g_override.store(previous_override_, std::memory_order_relaxed);
}

}  // namespace sslic

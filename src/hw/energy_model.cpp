#include "hw/energy_model.h"

#include <algorithm>
#include <cmath>

namespace sslic::hw {

double EnergyModel::sram_access_pj_per_byte(double kbytes) const {
  // ~0.25 pJ/B for a 1 kB pad, growing ~15% per doubling of capacity
  // (bitline/wordline capacitance); floor at 1 kB.
  const double k = std::max(1.0, kbytes);
  return 0.25 + 0.05 * std::log2(k);
}

const EnergyModel& default_energy_model() {
  static const EnergyModel model{};
  return model;
}

}  // namespace sslic::hw

#include "metrics/segmentation_metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "common/check.h"
#include "common/thread_pool.h"
#include "image/draw.h"

namespace sslic {
namespace {

int max_label(const LabelImage& labels) {
  // Order-free max reduction over disjoint ranges.
  struct MaxPartial {
    std::int32_t m = -1;
  };
  const MaxPartial result = parallel_reduce<MaxPartial>(
      0, static_cast<std::int64_t>(labels.size()),
      [&](MaxPartial& partial, std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i) {
          const std::int32_t v = labels.pixels()[static_cast<std::size_t>(i)];
          SSLIC_CHECK_MSG(v >= 0, "negative label " << v);
          partial.m = std::max(partial.m, v);
        }
      },
      [](MaxPartial& into, MaxPartial&& from) {
        into.m = std::max(into.m, from.m);
      });
  return result.m;
}

}  // namespace

OverlapTable::OverlapTable(const LabelImage& superpixels,
                           const LabelImage& ground_truth) {
  SSLIC_CHECK(superpixels.width() == ground_truth.width() &&
              superpixels.height() == ground_truth.height());
  SSLIC_CHECK(!superpixels.empty());
  num_pixels_ = superpixels.size();
  num_sp_ = max_label(superpixels) + 1;
  num_gt_ = max_label(ground_truth) + 1;

  // Histogramming is parallel over disjoint pixel ranges with per-chunk
  // size vectors and overlap maps; all merged quantities are integer
  // counts, so the merge order cannot affect the result, and the final
  // sort below fixes the overlap ordering regardless of hash iteration.
  struct CountPartial {
    std::vector<std::int64_t> sp_size;
    std::vector<std::int64_t> gt_size;
    std::unordered_map<std::uint64_t, std::int64_t> counts;
  };
  CountPartial merged = parallel_reduce<CountPartial>(
      0, static_cast<std::int64_t>(num_pixels_),
      [&](CountPartial& partial, std::int64_t lo, std::int64_t hi) {
        partial.sp_size.assign(static_cast<std::size_t>(num_sp_), 0);
        partial.gt_size.assign(static_cast<std::size_t>(num_gt_), 0);
        partial.counts.reserve(static_cast<std::size_t>(num_sp_));
        for (std::int64_t i = lo; i < hi; ++i) {
          const auto idx = static_cast<std::size_t>(i);
          const std::int32_t sp = superpixels.pixels()[idx];
          const std::int32_t gt = ground_truth.pixels()[idx];
          partial.sp_size[static_cast<std::size_t>(sp)] += 1;
          partial.gt_size[static_cast<std::size_t>(gt)] += 1;
          const std::uint64_t key =
              (static_cast<std::uint64_t>(static_cast<std::uint32_t>(sp)) << 32) |
              static_cast<std::uint32_t>(gt);
          partial.counts[key] += 1;
        }
      },
      [](CountPartial& into, CountPartial&& from) {
        if (from.sp_size.empty()) return;
        if (into.sp_size.empty()) {
          into = std::move(from);
          return;
        }
        for (std::size_t i = 0; i < into.sp_size.size(); ++i)
          into.sp_size[i] += from.sp_size[i];
        for (std::size_t i = 0; i < into.gt_size.size(); ++i)
          into.gt_size[i] += from.gt_size[i];
        for (const auto& [key, count] : from.counts) into.counts[key] += count;
      });
  sp_size_ = std::move(merged.sp_size);
  gt_size_ = std::move(merged.gt_size);
  overlaps_.reserve(merged.counts.size());
  for (const auto& [key, count] : merged.counts) {
    overlaps_.push_back({static_cast<std::int32_t>(key >> 32),
                         static_cast<std::int32_t>(key & 0xffffffffu), count});
  }
  // Deterministic order for reproducible reductions.
  std::sort(overlaps_.begin(), overlaps_.end(), [](const Overlap& a, const Overlap& b) {
    return a.sp != b.sp ? a.sp < b.sp : a.gt < b.gt;
  });
}

double undersegmentation_error(const OverlapTable& table,
                               double min_overlap_fraction) {
  SSLIC_CHECK(min_overlap_fraction >= 0.0 && min_overlap_fraction <= 1.0);
  const auto& sp_size = table.superpixel_sizes();
  std::int64_t charged = 0;
  for (const auto& o : table.overlaps()) {
    const std::int64_t size = sp_size[static_cast<std::size_t>(o.sp)];
    if (static_cast<double>(o.count) >=
        min_overlap_fraction * static_cast<double>(size)) {
      charged += size;
    }
  }
  return static_cast<double>(charged) / static_cast<double>(table.num_pixels()) -
         1.0;
}

double undersegmentation_error_min(const OverlapTable& table) {
  const auto& sp_size = table.superpixel_sizes();
  std::int64_t charged = 0;
  for (const auto& o : table.overlaps()) {
    const std::int64_t size = sp_size[static_cast<std::size_t>(o.sp)];
    charged += std::min(o.count, size - o.count);
  }
  return static_cast<double>(charged) / static_cast<double>(table.num_pixels());
}

double achievable_segmentation_accuracy(const OverlapTable& table) {
  std::vector<std::int64_t> best(static_cast<std::size_t>(table.num_superpixels()),
                                 0);
  for (const auto& o : table.overlaps()) {
    auto& b = best[static_cast<std::size_t>(o.sp)];
    b = std::max(b, o.count);
  }
  std::int64_t total = 0;
  for (const auto b : best) total += b;
  return static_cast<double>(total) / static_cast<double>(table.num_pixels());
}

namespace {

/// Computes recall of `reference` boundary pixels by `candidate` boundary
/// pixels within Chebyshev distance `tolerance`.
double boundary_match_fraction(const LabelImage& reference,
                               const LabelImage& candidate, int tolerance) {
  SSLIC_CHECK(reference.width() == candidate.width() &&
              reference.height() == candidate.height());
  SSLIC_CHECK(tolerance >= 0);
  const Image<std::uint8_t> ref_mask = boundary_mask(reference);
  const Image<std::uint8_t> cand_mask = boundary_mask(candidate);
  const int w = reference.width();
  const int h = reference.height();

  // Row-parallel: each boundary pixel's tolerance search only reads the
  // candidate mask, and the matched/total tallies are integer sums, so the
  // reduction is order-free.
  struct MatchPartial {
    std::int64_t total = 0;
    std::int64_t matched = 0;
  };
  const MatchPartial result = parallel_reduce<MatchPartial>(
      0, h,
      [&](MatchPartial& partial, std::int64_t ylo, std::int64_t yhi) {
        for (int y = static_cast<int>(ylo); y < static_cast<int>(yhi); ++y) {
          for (int x = 0; x < w; ++x) {
            if (ref_mask(x, y) == 0) continue;
            ++partial.total;
            bool hit = false;
            for (int dy = -tolerance; dy <= tolerance && !hit; ++dy) {
              const int ny = y + dy;
              if (ny < 0 || ny >= h) continue;
              for (int dx = -tolerance; dx <= tolerance; ++dx) {
                const int nx = x + dx;
                if (nx < 0 || nx >= w) continue;
                if (cand_mask(nx, ny) != 0) {
                  hit = true;
                  break;
                }
              }
            }
            if (hit) ++partial.matched;
          }
        }
      },
      [](MatchPartial& into, MatchPartial&& from) {
        into.total += from.total;
        into.matched += from.matched;
      });
  return result.total == 0 ? 1.0
                           : static_cast<double>(result.matched) /
                                 static_cast<double>(result.total);
}

}  // namespace

double boundary_recall(const LabelImage& superpixels,
                       const LabelImage& ground_truth, int tolerance) {
  return boundary_match_fraction(ground_truth, superpixels, tolerance);
}

double boundary_precision(const LabelImage& superpixels,
                          const LabelImage& ground_truth, int tolerance) {
  return boundary_match_fraction(superpixels, ground_truth, tolerance);
}

double compactness(const LabelImage& superpixels) {
  const int n = max_label(superpixels) + 1;
  const int w = superpixels.width();
  const int h = superpixels.height();
  // Row-parallel integer histograms (reads may cross band borders, writes
  // are chunk-local); integer merge is order-free.
  struct AreaPerimeter {
    std::vector<std::int64_t> area;
    std::vector<std::int64_t> perimeter;
  };
  AreaPerimeter acc = parallel_reduce<AreaPerimeter>(
      0, h,
      [&](AreaPerimeter& partial, std::int64_t ylo, std::int64_t yhi) {
        partial.area.assign(static_cast<std::size_t>(n), 0);
        partial.perimeter.assign(static_cast<std::size_t>(n), 0);
        for (int y = static_cast<int>(ylo); y < static_cast<int>(yhi); ++y) {
          for (int x = 0; x < w; ++x) {
            const std::int32_t label = superpixels(x, y);
            partial.area[static_cast<std::size_t>(label)] += 1;
            // 4-connected perimeter; image border counts as boundary.
            const auto differs = [&](int nx, int ny) {
              return nx < 0 || nx >= w || ny < 0 || ny >= h ||
                     superpixels(nx, ny) != label;
            };
            partial.perimeter[static_cast<std::size_t>(label)] +=
                static_cast<int>(differs(x - 1, y)) +
                static_cast<int>(differs(x + 1, y)) +
                static_cast<int>(differs(x, y - 1)) +
                static_cast<int>(differs(x, y + 1));
          }
        }
      },
      [](AreaPerimeter& into, AreaPerimeter&& from) {
        if (from.area.empty()) return;
        if (into.area.empty()) {
          into = std::move(from);
          return;
        }
        for (std::size_t i = 0; i < into.area.size(); ++i) {
          into.area[i] += from.area[i];
          into.perimeter[i] += from.perimeter[i];
        }
      });
  const std::vector<std::int64_t>& area = acc.area;
  const std::vector<std::int64_t>& perimeter = acc.perimeter;
  constexpr double kPi = 3.14159265358979323846;
  double sum = 0.0;
  int counted = 0;
  for (std::size_t i = 0; i < area.size(); ++i) {
    if (area[i] == 0) continue;
    const double q = 4.0 * kPi * static_cast<double>(area[i]) /
                     (static_cast<double>(perimeter[i]) *
                      static_cast<double>(perimeter[i]));
    sum += std::min(1.0, q);
    ++counted;
  }
  return counted == 0 ? 0.0 : sum / counted;
}

double explained_variation(const LabelImage& superpixels, const LabImage& lab) {
  SSLIC_CHECK(superpixels.width() == lab.width() &&
              superpixels.height() == lab.height());
  const int n_labels = max_label(superpixels) + 1;
  struct Acc {
    double L = 0, a = 0, b = 0;
    std::int64_t n = 0;
  };
  // Both passes are chunk-parallel with partials merged in fixed chunk
  // order: the floating-point reduction tree depends only on the pixel
  // count, so the metric is bit-identical at every thread count.
  struct MeanPartial {
    std::vector<Acc> per_label;
    Acc global;
  };
  MeanPartial means = parallel_reduce<MeanPartial>(
      0, static_cast<std::int64_t>(lab.size()),
      [&](MeanPartial& partial, std::int64_t lo, std::int64_t hi) {
        partial.per_label.assign(static_cast<std::size_t>(n_labels), Acc{});
        for (std::int64_t i = lo; i < hi; ++i) {
          const auto idx = static_cast<std::size_t>(i);
          const LabF& px = lab.pixels()[idx];
          Acc& s = partial.per_label[static_cast<std::size_t>(
              superpixels.pixels()[idx])];
          s.L += static_cast<double>(px.L);
          s.a += static_cast<double>(px.a);
          s.b += static_cast<double>(px.b);
          s.n += 1;
          partial.global.L += static_cast<double>(px.L);
          partial.global.a += static_cast<double>(px.a);
          partial.global.b += static_cast<double>(px.b);
          partial.global.n += 1;
        }
      },
      [](MeanPartial& into, MeanPartial&& from) {
        if (from.per_label.empty()) return;
        if (into.per_label.empty()) {
          into = std::move(from);
          return;
        }
        for (std::size_t i = 0; i < into.per_label.size(); ++i) {
          into.per_label[i].L += from.per_label[i].L;
          into.per_label[i].a += from.per_label[i].a;
          into.per_label[i].b += from.per_label[i].b;
          into.per_label[i].n += from.per_label[i].n;
        }
        into.global.L += from.global.L;
        into.global.a += from.global.a;
        into.global.b += from.global.b;
        into.global.n += from.global.n;
      });
  const std::vector<Acc>& acc = means.per_label;
  const double gl = means.global.L / static_cast<double>(means.global.n);
  const double ga = means.global.a / static_cast<double>(means.global.n);
  const double gb = means.global.b / static_cast<double>(means.global.n);

  struct VarPartial {
    double between = 0.0;  // variance of the superpixel means
    double total = 0.0;    // total variance
  };
  const VarPartial var = parallel_reduce<VarPartial>(
      0, static_cast<std::int64_t>(lab.size()),
      [&](VarPartial& partial, std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i) {
          const auto idx = static_cast<std::size_t>(i);
          const LabF& px = lab.pixels()[idx];
          const Acc& s =
              acc[static_cast<std::size_t>(superpixels.pixels()[idx])];
          const double ml = s.L / static_cast<double>(s.n);
          const double ma = s.a / static_cast<double>(s.n);
          const double mb = s.b / static_cast<double>(s.n);
          partial.between += (ml - gl) * (ml - gl) + (ma - ga) * (ma - ga) +
                             (mb - gb) * (mb - gb);
          const double dl = static_cast<double>(px.L) - gl;
          const double da = static_cast<double>(px.a) - ga;
          const double db = static_cast<double>(px.b) - gb;
          partial.total += dl * dl + da * da + db * db;
        }
      },
      [](VarPartial& into, VarPartial&& from) {
        into.between += from.between;
        into.total += from.total;
      });
  return var.total <= 0.0 ? 1.0 : var.between / var.total;
}

double contour_density(const LabelImage& superpixels) {
  SSLIC_CHECK(!superpixels.empty());
  const Image<std::uint8_t> mask = boundary_mask(superpixels);
  std::int64_t boundary = 0;
  for (const auto v : mask.pixels()) boundary += v;
  return static_cast<double>(boundary) / static_cast<double>(mask.size());
}

double variation_of_information(const LabelImage& a, const LabelImage& b) {
  const OverlapTable table(a, b);
  const auto n = static_cast<double>(table.num_pixels());
  // VI = H(A) + H(B) - 2 I(A;B), computed from the joint distribution.
  double h_a = 0.0;
  for (const auto size : table.superpixel_sizes()) {
    if (size == 0) continue;
    const double p = static_cast<double>(size) / n;
    h_a -= p * std::log(p);
  }
  double h_b = 0.0;
  for (const auto size : table.region_sizes()) {
    if (size == 0) continue;
    const double p = static_cast<double>(size) / n;
    h_b -= p * std::log(p);
  }
  double mutual = 0.0;
  for (const auto& o : table.overlaps()) {
    const double p_joint = static_cast<double>(o.count) / n;
    const double p_a =
        static_cast<double>(table.superpixel_sizes()[static_cast<std::size_t>(o.sp)]) / n;
    const double p_b =
        static_cast<double>(table.region_sizes()[static_cast<std::size_t>(o.gt)]) / n;
    mutual += p_joint * std::log(p_joint / (p_a * p_b));
  }
  return std::max(0.0, h_a + h_b - 2.0 * mutual);
}

double undersegmentation_error(const LabelImage& superpixels,
                               const LabelImage& ground_truth,
                               double min_overlap_fraction) {
  return undersegmentation_error(OverlapTable(superpixels, ground_truth),
                                 min_overlap_fraction);
}

double undersegmentation_error_min(const LabelImage& superpixels,
                                   const LabelImage& ground_truth) {
  return undersegmentation_error_min(OverlapTable(superpixels, ground_truth));
}

double achievable_segmentation_accuracy(const LabelImage& superpixels,
                                        const LabelImage& ground_truth) {
  return achievable_segmentation_accuracy(OverlapTable(superpixels, ground_truth));
}

MultiGroundTruthQuality evaluate_against_annotators(
    const LabelImage& superpixels, const std::vector<LabelImage>& truths,
    int boundary_tolerance) {
  SSLIC_CHECK(!truths.empty());
  MultiGroundTruthQuality q;
  q.annotators = static_cast<int>(truths.size());
  q.use_best = std::numeric_limits<double>::max();
  q.recall_best = 0.0;
  // Annotators are independent, so each ground truth is scored in parallel
  // (the per-truth metrics fall back to serial when called from a worker);
  // results land in per-truth slots and are folded in annotator order, so
  // the means are bit-identical to a serial evaluation.
  struct TruthScore {
    double use = 0.0, use_min = 0.0, recall = 0.0, asa = 0.0;
  };
  std::vector<TruthScore> scores(truths.size());
  parallel_for(0, static_cast<std::int64_t>(truths.size()),
               [&](std::int64_t lo, std::int64_t hi) {
                 for (std::int64_t i = lo; i < hi; ++i) {
                   const auto idx = static_cast<std::size_t>(i);
                   const LabelImage& truth = truths[idx];
                   const OverlapTable table(superpixels, truth);
                   scores[idx].use = undersegmentation_error(table);
                   scores[idx].use_min = undersegmentation_error_min(table);
                   scores[idx].recall =
                       boundary_recall(superpixels, truth, boundary_tolerance);
                   scores[idx].asa = achievable_segmentation_accuracy(table);
                 }
               });
  for (const TruthScore& s : scores) {
    q.use_mean += s.use;
    q.use_min_mean += s.use_min;
    q.recall_mean += s.recall;
    q.asa_mean += s.asa;
    q.use_best = std::min(q.use_best, s.use);
    q.recall_best = std::max(q.recall_best, s.recall);
  }
  const auto n = static_cast<double>(truths.size());
  q.use_mean /= n;
  q.use_min_mean /= n;
  q.recall_mean /= n;
  q.asa_mean /= n;
  return q;
}

int count_labels(const LabelImage& labels) {
  std::vector<bool> seen(static_cast<std::size_t>(max_label(labels)) + 1, false);
  int count = 0;
  for (const auto v : labels.pixels()) {
    auto idx = static_cast<std::size_t>(v);
    if (!seen[idx]) {
      seen[idx] = true;
      ++count;
    }
  }
  return count;
}

}  // namespace sslic

// 8-bit CIELAB encoding used by the accelerator datapath.
//
// The bit-width exploration (paper Section 6.1) selects an 8-bit fixed-point
// datapath; the scratch-pad channel memories hold one byte per pixel per
// channel. The encoding follows the common "Lab8" convention:
//   L8 = L * 255 / 100          (L in [0,100]   -> [0,255])
//   a8 = a + 128                (a in [-128,127] -> [0,255], clamped)
//   b8 = b + 128                (b in [-128,127] -> [0,255], clamped)
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "image/image.h"

namespace sslic {

/// One 8-bit encoded CIELAB pixel (the scratch-pad storage format).
struct Lab8 {
  std::uint8_t L = 0;
  std::uint8_t a = 128;
  std::uint8_t b = 128;

  friend bool operator==(const Lab8&, const Lab8&) = default;
};

namespace lab8_detail {
inline std::uint8_t clamp_byte(double v) {
  return static_cast<std::uint8_t>(std::clamp(std::lround(v), 0l, 255l));
}
}  // namespace lab8_detail

/// Reference quantization of a floating-point Lab value to the 8-bit
/// encoding (round-to-nearest). The LUT unit's output is compared against
/// this in the unit tests.
inline Lab8 encode_lab8(const LabF& lab) {
  return {lab8_detail::clamp_byte(static_cast<double>(lab.L) * 255.0 / 100.0),
          lab8_detail::clamp_byte(static_cast<double>(lab.a) + 128.0),
          lab8_detail::clamp_byte(static_cast<double>(lab.b) + 128.0)};
}

/// Decodes the 8-bit encoding back to floating point Lab.
inline LabF decode_lab8(const Lab8& lab) {
  return {static_cast<float>(lab.L * 100.0 / 255.0),
          static_cast<float>(static_cast<int>(lab.a) - 128),
          static_cast<float>(static_cast<int>(lab.b) - 128)};
}

}  // namespace sslic

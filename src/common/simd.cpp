#include "common/simd.h"

#include <cstdlib>
#include <mutex>

#include "common/logging.h"

namespace sslic::simd {
namespace {

/// Every name parse_isa accepts, for the unknown-SSLIC_SIMD warning.
constexpr const char* kAcceptedNames =
    "scalar|off|none|sse2|avx2|avx512|neon";

std::string to_lower(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

/// Process-wide preference state. A plain mutex-guarded value: selection
/// happens at startup / between runs, never on the hot path (callers cache
/// the resolved kernel table per segmentation run).
struct Preference {
  std::mutex mutex;
  bool overridden = false;
  Isa value = Isa::kScalar;
};

Preference& preference_state() {
  static Preference p;
  return p;
}

/// Position on the x86 preference ladder (-1 for the ARM lane).
int x86_rank(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return 0;
    case Isa::kSse2:
      return 1;
    case Isa::kAvx2:
      return 2;
    case Isa::kAvx512:
      return 3;
    case Isa::kNeon:
      return -1;
  }
  return 0;
}

/// Clamps a requested ISA to what the CPU can execute: an x86 request
/// degrades down the ladder avx512 -> avx2 -> sse2 -> scalar; a
/// cross-architecture request (NEON on x86, SSE/AVX on ARM) degrades
/// straight to scalar.
Isa clamp_to_cpu(Isa want) {
  if (cpu_supports(want)) return want;
  for (const Isa step : {Isa::kAvx2, Isa::kSse2}) {
    if (x86_rank(step) < x86_rank(want) && cpu_supports(step)) return step;
  }
  return Isa::kScalar;
}

Isa env_or_detected() {
  const char* env = std::getenv("SSLIC_SIMD");
  if (env != nullptr && env[0] != '\0') {
    Isa parsed = Isa::kScalar;
    if (parse_isa(env, &parsed)) return parsed;
    // One warning per process: the preference is memoized by the caller,
    // so a typo would otherwise silently fall back to auto-detection.
    static const bool warned = [&] {
      SSLIC_WARN("unknown SSLIC_SIMD value \""
                 << env << "\"; accepted: " << kAcceptedNames
                 << " — falling back to CPU detection");
      return true;
    }();
    (void)warned;
  }
  return detect_cpu_isa();
}

}  // namespace

const char* isa_name(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kSse2:
      return "sse2";
    case Isa::kAvx2:
      return "avx2";
    case Isa::kNeon:
      return "neon";
    case Isa::kAvx512:
      return "avx512";
  }
  return "scalar";
}

bool parse_isa(const std::string& text, Isa* out) {
  const std::string name = to_lower(text);
  if (name == "scalar" || name == "off" || name == "none") {
    *out = Isa::kScalar;
  } else if (name == "sse2") {
    *out = Isa::kSse2;
  } else if (name == "avx2") {
    *out = Isa::kAvx2;
  } else if (name == "neon") {
    *out = Isa::kNeon;
  } else if (name == "avx512") {
    *out = Isa::kAvx512;
  } else {
    return false;
  }
  return true;
}

Isa detect_cpu_isa() {
  static const Isa detected = [] {
#if defined(__aarch64__)
    return Isa::kNeon;  // Advanced SIMD is baseline on AArch64
#elif defined(__x86_64__) || defined(__i386__)
#if defined(__GNUC__) || defined(__clang__)
    // The AVX-512 backend uses F (f64/i32 math, masks), BW (byte-mask
    // loads), DQ, and VL (256-bit label blends) — the Skylake-SP set.
    if (__builtin_cpu_supports("avx512f") &&
        __builtin_cpu_supports("avx512bw") &&
        __builtin_cpu_supports("avx512dq") &&
        __builtin_cpu_supports("avx512vl")) {
      return Isa::kAvx512;
    }
    if (__builtin_cpu_supports("avx2")) return Isa::kAvx2;
    if (__builtin_cpu_supports("sse2")) return Isa::kSse2;
    return Isa::kScalar;
#else
    return Isa::kSse2;  // x86-64 baseline
#endif
#else
    return Isa::kScalar;
#endif
  }();
  return detected;
}

bool cpu_supports(Isa isa) {
  if (isa == Isa::kScalar) return true;
  const Isa best = detect_cpu_isa();
  if (isa == Isa::kNeon) return best == Isa::kNeon;
  if (best == Isa::kNeon) return false;
  return x86_rank(isa) <= x86_rank(best);
}

Isa preferred_isa() {
  Preference& p = preference_state();
  const std::lock_guard<std::mutex> lock(p.mutex);
  if (!p.overridden) {
    p.value = env_or_detected();
    p.overridden = true;
  }
  return clamp_to_cpu(p.value);
}

void set_preferred_isa(Isa isa) {
  Preference& p = preference_state();
  const std::lock_guard<std::mutex> lock(p.mutex);
  p.overridden = true;
  p.value = isa;
}

bool set_preferred_isa(const std::string& text) {
  Isa parsed = Isa::kScalar;
  if (!parse_isa(text, &parsed)) return false;
  set_preferred_isa(parsed);
  return true;
}

void reset_preferred_isa() {
  Preference& p = preference_state();
  const std::lock_guard<std::mutex> lock(p.mutex);
  p.overridden = false;
}

}  // namespace sslic::simd

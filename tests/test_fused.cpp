// Golden tests for the fused iteration loop (assignment + sigma
// accumulation in one band sweep) against the two-pass loop it replaced:
//
//  - labels AND centers must be byte-identical between the two paths for
//    every algorithm variant (exact CPA, subsampled CPA, PPA with both
//    subset patterns, preemptive PPA), every compiled SIMD backend, and
//    several thread counts — the determinism contract of DESIGN.md §4e.
//  - the accumulate_row kernel of every vector backend must bit-equal the
//    scalar reference on fuzzed rows (same contract as the assign kernels).
//  - TemporalSlic's steady state (frame 2 onward at fixed geometry) must
//    perform zero heap allocations per frame, proven by a counting global
//    operator new installed in this binary.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/alloc_counter.h"
#include "common/rng.h"
#include "common/simd.h"
#include "common/thread_pool.h"
#include "dataset/synthetic.h"
#include "slic/assign_kernels.h"
#include "slic/assign_strategy.h"
#include "slic/batch.h"
#include "slic/center_update.h"
#include "slic/fusion.h"
#include "slic/slic_baseline.h"
#include "slic/subsampled.h"
#include "slic/temporal.h"
#include "slic/types.h"

// Every allocation in this binary bumps sslic::alloc_counter — the
// zero-allocation steady-state assertions below depend on it.
SSLIC_INSTALL_COUNTING_ALLOCATOR();

namespace sslic {
namespace {

struct IsaGuard {
  ~IsaGuard() { simd::reset_preferred_isa(); }
};

struct GlobalThreadsGuard {
  ~GlobalThreadsGuard() { ThreadPool::set_global_threads(0); }
};

/// Scalar plus every vector backend this binary compiled in and this CPU
/// can execute.
std::vector<simd::Isa> testable_isas() {
  std::vector<simd::Isa> isas{simd::Isa::kScalar};
  for (const simd::Isa isa :
       {simd::Isa::kSse2, simd::Isa::kAvx2, simd::Isa::kAvx512,
        simd::Isa::kNeon}) {
    if (kernels::backend_compiled(isa) && simd::cpu_supports(isa))
      isas.push_back(isa);
  }
  return isas;
}

/// One algorithm variant of the identity matrix.
struct Variant {
  std::string name;
  bool cpa = false;
  SlicParams params;
};

std::vector<Variant> variants() {
  std::vector<Variant> out;
  {
    Variant v{"cpa-exact", true, {}};
    v.params.num_superpixels = 80;
    v.params.max_iterations = 5;
    out.push_back(v);
  }
  {
    Variant v{"cpa-subsampled-0.5", true, {}};
    v.params.num_superpixels = 80;
    v.params.max_iterations = 6;
    v.params.subsample_ratio = 0.5;
    out.push_back(v);
  }
  {
    Variant v{"ppa-dithered-0.5", false, {}};
    v.params.num_superpixels = 80;
    v.params.max_iterations = 6;
    v.params.subsample_ratio = 0.5;
    out.push_back(v);
  }
  {
    Variant v{"ppa-rows-0.25", false, {}};
    v.params.num_superpixels = 80;
    v.params.max_iterations = 8;
    v.params.subsample_ratio = 0.25;
    v.params.subset_pattern = SubsetPattern::kRowInterleaved;
    out.push_back(v);
  }
  {
    Variant v{"ppa-preemptive-0.5", false, {}};
    v.params.num_superpixels = 80;
    v.params.max_iterations = 8;
    v.params.subsample_ratio = 0.5;
    v.params.preemptive = true;
    out.push_back(v);
  }
  return out;
}

Segmentation run_variant(const Variant& v, const LabImage& lab, bool fused) {
  FusionGuard guard(fused);
  if (v.cpa) return CpaSlic(v.params).segment_lab(lab);
  return PpaSlic(v.params).segment_lab(lab);
}

static_assert(sizeof(ClusterCenter) == 5 * sizeof(double),
              "memcmp center comparison assumes a packed layout");
static_assert(sizeof(Sigma) == 5 * sizeof(double) + sizeof(std::uint64_t),
              "memcmp sigma comparison assumes a packed layout");

/// Byte-level equality: operator== on doubles would let -0.0 pass for
/// +0.0 and hide a summation-order change.
void expect_identical(const Segmentation& fused, const Segmentation& two_pass,
                      const std::string& what) {
  EXPECT_EQ(fused.iterations_run, two_pass.iterations_run) << what;
  ASSERT_EQ(fused.labels.width(), two_pass.labels.width()) << what;
  ASSERT_EQ(fused.labels.height(), two_pass.labels.height()) << what;
  EXPECT_TRUE(std::equal(fused.labels.pixels().begin(),
                         fused.labels.pixels().end(),
                         two_pass.labels.pixels().begin()))
      << what << ": labels differ";
  ASSERT_EQ(fused.centers.size(), two_pass.centers.size()) << what;
  EXPECT_EQ(0, std::memcmp(fused.centers.data(), two_pass.centers.data(),
                           fused.centers.size() * sizeof(ClusterCenter)))
      << what << ": centers differ at the byte level";
}

TEST(FusedIteration, MatchesTwoPassAcrossVariantsIsasThreadsAndStrategies) {
  // The full identity matrix: every algorithm variant x every compiled
  // backend x thread counts x both assignment schedules. Within one
  // (variant, isa, threads) cell the four runs — {row, cluster} x
  // {fused, two-pass} — must all be byte-identical: fusion by the §4e
  // contract, and the cluster schedule by the §4g argument (same centers
  // per pixel, same ascending order, same strict-< arithmetic). PPA
  // ignores the strategy switch (it is natively cluster-centric), so for
  // PPA variants the strategy loop doubles as an invariance check.
  const GroundTruthImage gt = generate_synthetic({160, 120}, 41);
  const LabImage lab = srgb_to_lab(gt.image);
  IsaGuard isa_guard;
  GlobalThreadsGuard threads_guard;
  for (const Variant& v : variants()) {
    for (const simd::Isa isa : testable_isas()) {
      simd::set_preferred_isa(isa);
      for (const int threads : {1, 3, 7}) {
        ThreadPool::set_global_threads(threads);
        Segmentation baseline;
        for (const AssignStrategy strategy :
             {AssignStrategy::kRow, AssignStrategy::kCluster}) {
          AssignStrategyGuard strategy_guard(strategy);
          const std::string what = v.name + " isa=" + simd::isa_name(isa) +
                                   " threads=" + std::to_string(threads) +
                                   " assign=" + assign_strategy_name(strategy);
          const Segmentation fused = run_variant(v, lab, true);
          const Segmentation two_pass = run_variant(v, lab, false);
          expect_identical(fused, two_pass, what);
          if (strategy == AssignStrategy::kRow) {
            baseline = two_pass;
          } else {
            expect_identical(two_pass, baseline, what + " vs row baseline");
          }
        }
      }
    }
  }
}

TEST(FusedIteration, WarmStartMatchesTwoPass) {
  const GroundTruthImage gt = generate_synthetic({160, 120}, 43);
  const LabImage lab = srgb_to_lab(gt.image);
  SlicParams params;
  params.num_superpixels = 80;
  params.max_iterations = 4;
  params.subsample_ratio = 0.5;
  const PpaSlic segmenter(params);
  const std::vector<ClusterCenter> warm =
      segmenter.segment_lab(lab).centers;
  Segmentation fused, two_pass;
  {
    FusionGuard guard(true);
    fused = segmenter.segment_lab_warm(lab, warm);
  }
  {
    FusionGuard guard(false);
    two_pass = segmenter.segment_lab_warm(lab, warm);
  }
  expect_identical(fused, two_pass, "ppa-warm");
}

TEST(FusedIteration, QuantizedDataWidthMatchesTwoPass) {
  const GroundTruthImage gt = generate_synthetic({160, 120}, 47);
  const LabImage lab = srgb_to_lab(gt.image);
  SlicParams params;
  params.num_superpixels = 80;
  params.max_iterations = 5;
  params.subsample_ratio = 0.5;
  const PpaSlic segmenter(params, DataWidth::fixed(8));
  Segmentation fused, two_pass;
  {
    FusionGuard guard(true);
    fused = segmenter.segment_lab(lab);
  }
  {
    FusionGuard guard(false);
    two_pass = segmenter.segment_lab(lab);
  }
  expect_identical(fused, two_pass, "ppa-quantized-8bit");
}

TEST(FusedIteration, IntoVariantMatchesValueOverload) {
  const GroundTruthImage gt = generate_synthetic({120, 90}, 53);
  const LabImage lab = srgb_to_lab(gt.image);
  SlicParams params;
  params.num_superpixels = 60;
  params.max_iterations = 4;
  const CpaSlic cpa(params);
  const Segmentation by_value = cpa.segment_lab(lab);
  Segmentation into;
  IterationScratch scratch;
  // Run twice through the same scratch: the second (fully warm) run must
  // still match, proving reused buffers carry no state across calls.
  cpa.segment_lab_into(lab, into, scratch);
  cpa.segment_lab_into(lab, into, scratch);
  expect_identical(into, by_value, "cpa-into");
}

TEST(AccumulateRowKernel, VectorBackendsBitEqualScalar) {
  IsaGuard isa_guard;
  Rng rng(97);
  const kernels::KernelTable& scalar = kernels::scalar_table();
  for (const simd::Isa isa : testable_isas()) {
    if (isa == simd::Isa::kScalar) continue;
    const kernels::KernelTable& vec = kernels::table_for(isa);
    for (int width : {1, 2, 3, 7, 8, 9, 15, 16, 17, 64, 129}) {
      const auto n = static_cast<std::size_t>(width);
      std::vector<float> L(n), a(n), b(n);
      std::vector<std::int32_t> labels(n);
      for (std::size_t i = 0; i < n; ++i) {
        L[i] = static_cast<float>(rng.next_double(0.0, 100.0));
        a[i] = static_cast<float>(rng.next_double(-128.0, 127.0));
        b[i] = static_cast<float>(rng.next_double(-128.0, 127.0));
        labels[i] = static_cast<std::int32_t>(rng.next_below(5));
      }
      std::vector<Sigma> want(5), got(5);
      scalar.accumulate_row(L.data(), a.data(), b.data(), 3, width, 11,
                            labels.data(), want.data());
      vec.accumulate_row(L.data(), a.data(), b.data(), 3, width, 11,
                         labels.data(), got.data());
      EXPECT_EQ(0, std::memcmp(want.data(), got.data(),
                               want.size() * sizeof(Sigma)))
          << "isa=" << simd::isa_name(isa) << " width=" << width;
    }
  }
}

TEST(TemporalSlicAllocations, SteadyStateFramesAreAllocationFree) {
  SlicParams params;
  params.num_superpixels = 120;
  params.max_iterations = 8;
  params.subsample_ratio = 0.5;
  TemporalSlic video(params);

  // A few same-geometry frames with different content.
  std::vector<RgbImage> frames;
  for (int f = 0; f < 5; ++f) {
    frames.push_back(
        generate_synthetic({160, 120}, 900 + static_cast<std::uint64_t>(f))
            .image);
  }

  for (std::size_t f = 0; f < frames.size(); ++f) {
    const std::uint64_t allocs = alloc_counter::count_allocations(
        [&] { (void)video.next_frame(frames[f]); });
    if (f >= 2) {
      EXPECT_EQ(allocs, 0u)
          << "frame " << f << " touched the heap in steady state";
    }
  }

  // A geometry change re-allocates (cold again), then settles back to zero.
  const RgbImage bigger = generate_synthetic({200, 150}, 77).image;
  (void)video.next_frame(bigger);
  (void)video.next_frame(bigger);
  const std::uint64_t allocs = alloc_counter::count_allocations(
      [&] { (void)video.next_frame(bigger); });
  EXPECT_EQ(allocs, 0u) << "steady state not re-reached after resize";
}

TEST(BatchSegmenter, MatchesSingleFrameRunsAcrossThreads) {
  // Batch dispatch parallelizes across frames (each frame's inner
  // segmenter runs serially inside a worker); the determinism contract
  // makes that byte-identical to the plain single-frame calls at any
  // thread count, for both algorithms.
  GlobalThreadsGuard threads_guard;
  std::vector<LabImage> frames;
  for (int f = 0; f < 4; ++f) {
    frames.push_back(srgb_to_lab(
        generate_synthetic({160, 120}, 700 + static_cast<std::uint64_t>(f))
            .image));
  }
  SlicParams params;
  params.num_superpixels = 80;
  params.max_iterations = 5;
  params.subsample_ratio = 0.5;

  for (const BatchSegmenter::Algorithm algorithm :
       {BatchSegmenter::Algorithm::kCpa, BatchSegmenter::Algorithm::kPpa}) {
    std::vector<Segmentation> refs;
    for (const LabImage& lab : frames) {
      refs.push_back(algorithm == BatchSegmenter::Algorithm::kCpa
                         ? CpaSlic(params).segment_lab(lab)
                         : PpaSlic(params).segment_lab(lab));
    }
    for (const int threads : {1, 3, 7}) {
      ThreadPool::set_global_threads(threads);
      BatchSegmenter batch(params, algorithm);
      batch.segment_lab_batch(frames);
      ASSERT_EQ(batch.results().size(), frames.size());
      for (std::size_t i = 0; i < frames.size(); ++i) {
        expect_identical(
            batch.results()[i], refs[i],
            std::string("batch ") +
                (algorithm == BatchSegmenter::Algorithm::kCpa ? "cpa" : "ppa") +
                " frame=" + std::to_string(i) +
                " threads=" + std::to_string(threads));
      }
    }
  }
}

TEST(BatchSegmenter, SteadyStateBatchesAreAllocationFree) {
  // Same-geometry batches reuse every per-slot buffer: after the first
  // batch warms the pools, a batch performs zero heap allocations (the
  // amortization the multi-stream seam exists for). The cluster schedule
  // is pinned so its span/bucket scratch reuse is covered too.
  const AssignStrategyGuard strategy_guard(AssignStrategy::kCluster);
  SlicParams params;
  params.num_superpixels = 80;
  params.max_iterations = 5;
  BatchSegmenter batch(params, BatchSegmenter::Algorithm::kCpa);
  std::vector<LabImage> frames;
  for (int f = 0; f < 3; ++f) {
    frames.push_back(srgb_to_lab(
        generate_synthetic({160, 120}, 800 + static_cast<std::uint64_t>(f))
            .image));
  }
  batch.segment_lab_batch(frames);
  batch.segment_lab_batch(frames);
  const std::uint64_t allocs = alloc_counter::count_allocations(
      [&] { batch.segment_lab_batch(frames); });
  EXPECT_EQ(allocs, 0u) << "steady-state batch touched the heap";
}

TEST(TemporalSlicAllocations, SteadyStateHoldsAtEveryThreadCount) {
  GlobalThreadsGuard threads_guard;
  for (const int threads : {1, 4}) {
    ThreadPool::set_global_threads(threads);
    SlicParams params;
    params.num_superpixels = 120;
    params.max_iterations = 6;
    TemporalSlic video(params);
    const RgbImage frame = generate_synthetic({160, 120}, 321).image;
    (void)video.next_frame(frame);
    (void)video.next_frame(frame);
    const std::uint64_t allocs = alloc_counter::count_allocations(
        [&] { (void)video.next_frame(frame); });
    EXPECT_EQ(allocs, 0u) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace sslic

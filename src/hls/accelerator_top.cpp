#include "hls/accelerator_top.h"

#include <algorithm>
#include <cmath>

#include "color/lut_color_unit.h"
#include "common/check.h"
#include "hls/datapath_units.h"
#include "slic/connectivity.h"
#include "slic/grid.h"
#include "slic/subset_schedule.h"

namespace sslic::hls {
namespace {

/// Distance-register reduction shift, identical to HwSlic's derivation.
int derive_distance_shift(int register_bits, double spacing,
                          std::int32_t weight_q8) {
  if (register_bits == 0) return 0;
  const double max_ds2 = 2.0 * (2.0 * spacing) * (2.0 * spacing);
  const double max_combined = 3.0 * 255.0 * 255.0 + (weight_q8 * max_ds2) / 256.0;
  int bits_needed = 1;
  while (std::ldexp(1.0, bits_needed) <= max_combined) ++bits_needed;
  return std::max(0, bits_needed - register_bits);
}

}  // namespace

AcceleratorTop::AcceleratorTop(HwConfig algorithm, hw::AcceleratorDesign design,
                               const hw::DramModel& dram)
    : algorithm_(algorithm), design_(design), dram_(dram) {
  SSLIC_CHECK(algorithm_.num_superpixels >= 1);
  SSLIC_CHECK(algorithm_.iterations >= 1);
  SSLIC_CHECK(design_.channel_buffer_bytes >= 64.0);
}

HlsRunResult AcceleratorTop::run(const RgbImage& frame) const {
  SSLIC_CHECK(!frame.empty());
  const int w = frame.width();
  const int h = frame.height();
  const auto n = static_cast<std::uint64_t>(frame.size());
  const double bw = dram_.bytes_per_cycle;
  const auto latency = static_cast<std::uint64_t>(dram_.latency_cycles);

  HlsRunResult result;
  hw::CycleReport& cyc = result.cycles;

  // ------------------------------------------------------------------
  // FSM state 1: color conversion. RGB streams from external memory
  // through the LUT unit into Lab planes (external memory holds the planes
  // between phases — the 20 kB of pads cannot hold a frame).
  // ------------------------------------------------------------------
  const LutColorUnit color_unit(algorithm_.color);
  const Planar8 planes = color_unit.convert(frame);
  {
    const std::uint64_t conv_bytes = 6 * n;
    cyc.conv_cycles = std::max<std::uint64_t>(
        n + 16,
        latency + static_cast<std::uint64_t>(static_cast<double>(conv_bytes) / bw));
    cyc.dram_bytes += conv_bytes;
    cyc.dram_requests += 1;
  }

  // ------------------------------------------------------------------
  // FSM state 2: static initialization (precomputed offline per Section
  // 4.3 — not charged cycles).
  // ------------------------------------------------------------------
  const CenterGrid grid(w, h, algorithm_.num_superpixels);
  const std::vector<CandidateList> candidates = build_candidate_map(grid);
  const SubsetSchedule schedule =
      SubsetSchedule::from_ratio(algorithm_.subsample_ratio);
  const auto weight_q8 = std::max<std::int32_t>(
      1, static_cast<std::int32_t>(std::lround(
             algorithm_.compactness * algorithm_.compactness /
             (grid.spacing() * grid.spacing()) * 256.0)));
  ColorDistanceCalculator distance_unit;
  distance_unit.weight_q8 = weight_q8;
  distance_unit.register_bits = algorithm_.distance_register_bits;
  distance_unit.register_shift = derive_distance_shift(
      algorithm_.distance_register_bits, grid.spacing(), weight_q8);

  const int num_centers = grid.num_centers();
  std::vector<CenterRegs> center_table(static_cast<std::size_t>(num_centers));
  for (int gy = 0; gy < grid.ny(); ++gy) {
    for (int gx = 0; gx < grid.nx(); ++gx) {
      const int px = std::clamp(static_cast<int>(grid.center_pos_x(gx)), 0, w - 1);
      const int py = std::clamp(static_cast<int>(grid.center_pos_y(gy)), 0, h - 1);
      CenterRegs& c =
          center_table[static_cast<std::size_t>(grid.center_index(gx, gy))];
      c.L = planes.ch1(px, py);
      c.a = planes.ch2(px, py);
      c.b = planes.ch3(px, py);
      c.x = px;
      c.y = py;
      c.global_id = grid.center_index(gx, gy);
    }
  }
  result.segmentation.labels = initial_labels(grid);
  LabelImage& labels = result.segmentation.labels;

  // Center update unit's accumulation table (one entry per SP).
  std::vector<SigmaRegs> accumulation(static_cast<std::size_t>(num_centers));

  // The four scratch pads (ch1/ch2/ch3/index), each channel_buffer_bytes.
  const auto pad_capacity = static_cast<std::size_t>(design_.channel_buffer_bytes);
  std::vector<std::uint8_t> pad_ch1(pad_capacity), pad_ch2(pad_capacity),
      pad_ch3(pad_capacity);
  std::vector<std::int32_t> pad_index(pad_capacity);

  // Tile geometry in raster order.
  struct Tile {
    int x0, x1, y0, y1;
    std::int32_t id;
  };
  std::vector<Tile> tiles;
  tiles.reserve(static_cast<std::size_t>(num_centers));
  for (int gy = 0; gy < grid.ny(); ++gy) {
    const int y0 = gy * h / grid.ny();
    const int y1 = (gy + 1) * h / grid.ny();
    for (int gx = 0; gx < grid.nx(); ++gx) {
      tiles.push_back({gx * w / grid.nx(), (gx + 1) * w / grid.nx(), y0, y1,
                       grid.center_index(gx, gy)});
    }
  }

  const auto per_tile_fill = static_cast<std::uint64_t>(
      hw::ClusterUnit(design_.cluster).latency_cycles());
  const auto ii =
      static_cast<std::uint64_t>(hw::ClusterUnit(design_.cluster).initiation_interval());

  CenterRegisterFile center_regs;
  SigmaRegisterFile sigma_regs;

  // ------------------------------------------------------------------
  // FSM state 3: cluster update iterations.
  // ------------------------------------------------------------------
  for (int iter = 0; iter < algorithm_.iterations; ++iter) {
    std::size_t t = 0;
    while (t < tiles.size()) {
      // --- Load a tile group into the pads (single-buffered). ---
      std::size_t group_begin = t;
      std::size_t fill = 0;
      std::uint64_t in_bytes = 0;
      while (t < tiles.size()) {
        const Tile& tile = tiles[t];
        const auto tile_pixels = static_cast<std::size_t>(
            (tile.x1 - tile.x0) * (tile.y1 - tile.y0));
        SSLIC_CHECK_MSG(tile_pixels <= pad_capacity,
                        "tile (" << tile_pixels
                                 << " px) exceeds the channel buffer ("
                                 << pad_capacity << " B)");
        if (t > group_begin && fill + tile_pixels > pad_capacity) break;

        std::uint64_t active = 0;
        for (int y = tile.y0; y < tile.y1; ++y) {
          for (int x = tile.x0; x < tile.x1; ++x) {
            const std::size_t slot = fill++;
            pad_ch1[slot] = planes.ch1(x, y);
            pad_ch2[slot] = planes.ch2(x, y);
            pad_ch3[slot] = planes.ch3(x, y);
            pad_index[slot] = labels(x, y);
            active += schedule.active(x, y, iter) ? 1u : 0u;
          }
        }
        // DRAM charge: subset-aware channel rows + full index + centers.
        in_bytes += 3 * active + tile_pixels + 16;
        ++t;
      }
      const std::size_t group_end = t;
      cyc.dram_stall_cycles +=
          latency + static_cast<std::uint64_t>(static_cast<double>(in_bytes) / bw);
      cyc.dram_bytes += in_bytes;
      cyc.dram_requests += 1;

      // --- Process each resident tile through the cluster update unit. ---
      std::size_t base = 0;
      for (std::size_t g = group_begin; g < group_end; ++g) {
        const Tile& tile = tiles[g];
        const CandidateList& cand = candidates[static_cast<std::size_t>(tile.id)];
        for (int slot = 0; slot < 9; ++slot)
          center_regs.load(slot,
                           center_table[static_cast<std::size_t>(
                               cand[static_cast<std::size_t>(slot)])]);
        sigma_regs.clear();
        cyc.tile_overhead_cycles +=
            per_tile_fill +
            static_cast<std::uint64_t>(design_.center_load_cycles_per_tile);

        std::size_t offset = base;
        for (int y = tile.y0; y < tile.y1; ++y) {
          for (int x = tile.x0; x < tile.x1; ++x) {
            const std::size_t slot_addr = offset++;
            if (!schedule.active(x, y, iter)) continue;

            PixelRegs pixel;
            pixel.L = pad_ch1[slot_addr];
            pixel.a = pad_ch2[slot_addr];
            pixel.b = pad_ch3[slot_addr];
            pixel.x = x;
            pixel.y = y;

            std::array<std::int32_t, 9> distances{};
            for (int slot = 0; slot < 9; ++slot)
              distances[static_cast<std::size_t>(slot)] =
                  distance_unit.compute(pixel, center_regs.at(slot));
            const int winner = MinimumFunction9::select(distances);

            pad_index[slot_addr] = center_regs.at(winner).global_id;
            sigma_regs.accumulate(winner, pixel);
            cyc.cluster_pixel_cycles += ii;
          }
        }
        base += static_cast<std::size_t>((tile.x1 - tile.x0) *
                                         (tile.y1 - tile.y0));

        // Spill the 9 sigma registers to the center update unit. Duplicate
        // candidate slots (clamped borders) hold zero except the lowest.
        for (int slot = 0; slot < 9; ++slot) {
          const std::int32_t id = cand[static_cast<std::size_t>(slot)];
          accumulation[static_cast<std::size_t>(id)] += sigma_regs.at(slot);
        }
        cyc.tile_overhead_cycles +=
            static_cast<std::uint64_t>(design_.sigma_transfer_cycles_per_tile);
        cyc.tiles_processed += 1;
      }

      // --- Store the index pad back to external memory. ---
      std::uint64_t out_bytes = 0;
      std::size_t store_offset = 0;
      for (std::size_t g = group_begin; g < group_end; ++g) {
        const Tile& tile = tiles[g];
        for (int y = tile.y0; y < tile.y1; ++y)
          for (int x = tile.x0; x < tile.x1; ++x)
            labels(x, y) = pad_index[store_offset++];
        out_bytes += static_cast<std::uint64_t>((tile.x1 - tile.x0) *
                                                (tile.y1 - tile.y0));
      }
      cyc.dram_stall_cycles +=
          latency + static_cast<std::uint64_t>(static_cast<double>(out_bytes) / bw);
      cyc.dram_bytes += out_bytes;
      cyc.dram_requests += 1;
    }

    // --- FSM state 4: center update unit. ---
    IterationStats stats;
    stats.iteration = iter;
    double movement = 0.0;
    std::size_t updated = 0;
    for (auto& center : center_table) {
      SigmaRegs& s = accumulation[static_cast<std::size_t>(center.global_id)];
      if (s.count == 0) continue;
      const CenterRegs next{CenterUpdateDivider::divide(s.L, s.count),
                            CenterUpdateDivider::divide(s.a, s.count),
                            CenterUpdateDivider::divide(s.b, s.count),
                            CenterUpdateDivider::divide(s.x, s.count),
                            CenterUpdateDivider::divide(s.y, s.count),
                            center.global_id};
      movement += std::abs(next.x - center.x) + std::abs(next.y - center.y);
      center = next;
      ++updated;
      s.clear();
    }
    stats.center_movement = updated == 0 ? 0.0 : movement / static_cast<double>(updated);
    result.segmentation.trace.push_back(stats);
    result.segmentation.iterations_run = iter + 1;
    cyc.center_update_cycles +=
        static_cast<std::uint64_t>(num_centers) *
        static_cast<std::uint64_t>(design_.divisions_per_center) *
        static_cast<std::uint64_t>(design_.divider_steps_per_division);
    cyc.dram_bytes += static_cast<std::uint64_t>(num_centers) * 8;
    cyc.iterations += 1;
  }

  cyc.total_cycles = cyc.conv_cycles + cyc.cluster_pixel_cycles +
                     cyc.tile_overhead_cycles + cyc.center_update_cycles +
                     cyc.dram_stall_cycles;

  // Export final centers (decoded Lab8) like the golden model does.
  result.segmentation.centers.resize(center_table.size());
  for (std::size_t i = 0; i < center_table.size(); ++i) {
    const LabF lab = decode_lab8({static_cast<std::uint8_t>(center_table[i].L),
                                  static_cast<std::uint8_t>(center_table[i].a),
                                  static_cast<std::uint8_t>(center_table[i].b)});
    result.segmentation.centers[i] = {
        static_cast<double>(lab.L), static_cast<double>(lab.a),
        static_cast<double>(lab.b), static_cast<double>(center_table[i].x),
        static_cast<double>(center_table[i].y)};
  }

  if (algorithm_.enforce_connectivity)
    enforce_connectivity(result.segmentation.labels, algorithm_.num_superpixels);
  return result;
}

}  // namespace sslic::hls

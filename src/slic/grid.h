// Superpixel center-grid initialization and the static 9-nearest-center
// tiling (paper Sections 2 and 4.3).
//
// Centers are seeded on a regular grid with spacing S = sqrt(N/K). The
// accelerator's PPA assigns each pixel a precomputed list of 9 candidate
// centers — the centers of the pixel's grid cell and its 8 neighbours —
// which is "the minimum number of nearest centers that can be considered to
// cover all possible pairs of center and pixel in the original CPA SLIC".
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "image/image.h"
#include "slic/types.h"

namespace sslic {

/// Regular initialization grid for K superpixels over a WxH image.
class CenterGrid {
 public:
  CenterGrid(int width, int height, int num_superpixels);

  [[nodiscard]] int width() const { return width_; }
  [[nodiscard]] int height() const { return height_; }
  [[nodiscard]] int nx() const { return nx_; }
  [[nodiscard]] int ny() const { return ny_; }
  /// Actual number of centers placed (nx*ny ≈ requested K).
  [[nodiscard]] int num_centers() const { return nx_ * ny_; }
  /// Grid interval S = sqrt(N/K) (paper Section 2).
  [[nodiscard]] double spacing() const { return spacing_; }

  /// Grid-cell coordinates containing pixel (x, y).
  [[nodiscard]] int cell_x(int x) const;
  [[nodiscard]] int cell_y(int y) const;

  /// Flat center index of grid cell (gx, gy).
  [[nodiscard]] std::int32_t center_index(int gx, int gy) const;

  /// Ideal (pre-perturbation) center position of grid cell (gx, gy).
  [[nodiscard]] double center_pos_x(int gx) const;
  [[nodiscard]] double center_pos_y(int gy) const;

 private:
  int width_;
  int height_;
  int nx_;
  int ny_;
  double spacing_;
};

/// Initial cluster centers: grid positions with colors sampled from the Lab
/// image; optionally perturbed to the 3x3 gradient minimum (paper Sec. 2).
std::vector<ClusterCenter> seed_centers(const CenterGrid& grid,
                                        const LabImage& lab,
                                        bool perturb_to_gradient_minimum);

/// In-place variant: fills `centers` (resized to the grid's center count)
/// and uses `gradient_scratch` for the perturbation pass, so per-frame
/// callers (BatchSegmenter, TemporalSlic cold starts) re-seed without heap
/// allocations once the buffers are warm.
void seed_centers(const CenterGrid& grid, const LabImage& lab,
                  bool perturb_to_gradient_minimum,
                  std::vector<ClusterCenter>& centers,
                  Image<float>& gradient_scratch);

/// The 9 candidate center indices of one tile (grid cell). Border tiles
/// clamp out-of-range neighbours, producing duplicate candidates — exactly
/// what the hardware's fixed 9-entry center registers do.
using CandidateList = std::array<std::int32_t, 9>;

/// Static tile -> 9-candidate map ("computed offline and stored in external
/// memory", paper Section 4.3). Tile (gx, gy) is stored at gy*nx + gx.
std::vector<CandidateList> build_candidate_map(const CenterGrid& grid);

/// Initial label map: every pixel starts assigned to the center of its own
/// grid cell (the accelerator initializes assignments before iterating).
LabelImage initial_labels(const CenterGrid& grid);

/// In-place variant: fills `labels`, resizing only when the dimensions
/// change (allocation-free at steady state).
void initial_labels(const CenterGrid& grid, LabelImage& labels);

}  // namespace sslic

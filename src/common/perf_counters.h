// Hardware performance counters via perf_event_open, with graceful
// degradation to a no-op backend.
//
// The paper's claims are cycle and memory-traffic counts, and the energy
// model is calibrated from per-operation costs (Horowitz, ISSCC'14) — so the
// observatory needs ground-truth microarchitectural counters next to the
// wall-clock spans and the analytic byte counts. A `CounterGroup` opens six
// events for the calling thread (cycles, instructions, L1D-read misses,
// LLC misses, branch misses, stalled backend cycles); `ScopedSample` is the
// RAII sampler that rides the same scopes as `SSLIC_TRACE_SCOPE` spans and
// the PhaseTimer phases, accumulating deltas into named `PhaseAccum`s that
// `export_phases` publishes through the MetricsRegistry as raw counters plus
// derived IPC / misses-per-kiloinstruction / stalled-fraction gauges.
//
// Availability is detected ONCE at first use and is never fatal: inside
// containers (seccomp), on kernels without a PMU (cloud VMs report ENOENT),
// on non-Linux hosts, or with `SSLIC_PERF=0` in the environment, every
// sampler degrades to a no-op — one relaxed atomic load per scope, zero
// syscalls — and a single log line reports the degradation (`status()`).
// Results must be byte-identical with counters armed or degraded; the
// counters observe, never perturb (tests/test_perf_counters.cpp).
//
// Counting semantics: events count the OPENING THREAD only (pid=0, no
// inherit), mirroring the per-thread recording model of trace.h. Pool
// workers that sample inside a parallel region each use their own lazily
// opened `this_thread_group()`, so concurrent sampling is race-free by
// construction. Multiplexing (more events than PMU slots) is corrected by
// scaling each raw delta by its window's time_enabled/time_running ratio.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace sslic::telemetry {
class MetricsRegistry;
}

namespace sslic::perf {

/// The fixed counter set. Events that fail to open individually (e.g.
/// stalled-cycles on many PMUs) are simply marked invalid; the rest count.
enum class Event : int {
  kCycles = 0,
  kInstructions,
  kL1dMisses,      ///< L1 data-cache read misses
  kLlcMisses,      ///< last-level cache misses (~DRAM line fetches)
  kBranchMisses,
  kStalledCycles,  ///< backend-stall cycles
};
inline constexpr int kNumEvents = 6;

/// Metric-name suffix for an event ("cycles", "instructions", ...).
[[nodiscard]] const char* event_name(Event e);

/// Approximate DRAM line size used to convert LLC misses to bytes.
inline constexpr double kCacheLineBytes = 64.0;

/// One point-in-time reading of a CounterGroup. Raw values are monotonic
/// non-decreasing; the enabled/running times support multiplex scaling of a
/// delta between two samples.
struct Sample {
  std::array<std::uint64_t, kNumEvents> raw{};
  std::array<std::uint64_t, kNumEvents> time_enabled{};
  std::array<std::uint64_t, kNumEvents> time_running{};
  std::array<bool, kNumEvents> valid{};

  [[nodiscard]] bool any_valid() const {
    for (const bool v : valid)
      if (v) return true;
    return false;
  }
};

/// Difference between two Samples, multiplex-scaled. All derived metrics
/// return a quiet NaN when their inputs are unavailable, so exporters can
/// distinguish "zero" from "degraded" (soak JSONL emits null).
struct Delta {
  std::array<double, kNumEvents> value{};
  std::array<bool, kNumEvents> valid{};

  [[nodiscard]] bool has(Event e) const {
    return valid[static_cast<std::size_t>(e)];
  }
  [[nodiscard]] double operator[](Event e) const {
    return value[static_cast<std::size_t>(e)];
  }

  /// Instructions per cycle (NaN when either event is unavailable).
  [[nodiscard]] double ipc() const;
  /// Misses per kilo-instruction for a miss-type event (NaN if unavailable).
  [[nodiscard]] double mpki(Event miss_event) const;
  /// Stalled-backend-cycle fraction of total cycles (NaN if unavailable).
  [[nodiscard]] double stalled_fraction() const;
  /// LLC misses * cache line size: the counter-measured DRAM byte estimate
  /// to set against the analytic Instrumentation traffic (NaN if degraded).
  [[nodiscard]] double dram_bytes() const;
  /// dram_bytes()/instructions (NaN if unavailable).
  [[nodiscard]] double bytes_per_instruction() const;

  Delta& operator+=(const Delta& other);
};

/// True when the process can count at least cycles or instructions.
/// Detection runs once, on the first call of any query here, and logs a
/// single status line; it is never fatal.
[[nodiscard]] bool available();

/// One-line human-readable availability report, e.g.
/// "perf counters active (5/6 events)" or
/// "perf counters unavailable: perf_event_open: No such file or directory".
[[nodiscard]] const std::string& status();

/// Runtime arm/disarm on top of availability (tests and overhead benches).
/// Disabled samplers cost one relaxed load; enabling when unavailable stays
/// a no-op. Initial state: enabled iff available (and `SSLIC_PERF=0` forces
/// unavailable).
[[nodiscard]] bool enabled();
void set_enabled(bool enabled);

/// A set of per-thread counter file descriptors. Opens every usable event
/// for the calling thread at construction (no-op when degraded); reads are
/// one syscall per event. Destruction closes the fds.
class CounterGroup {
 public:
  CounterGroup();
  ~CounterGroup();

  CounterGroup(const CounterGroup&) = delete;
  CounterGroup& operator=(const CounterGroup&) = delete;

  /// True when at least one event is counting.
  [[nodiscard]] bool active() const { return active_; }

  /// Current counter values (all-invalid Sample when inactive).
  [[nodiscard]] Sample read() const;

  /// Multiplex-scaled difference `end - begin` between two reads of this
  /// group. Raw counters are monotonic, so values are always >= 0.
  [[nodiscard]] static Delta delta(const Sample& begin, const Sample& end);

 private:
  std::array<int, kNumEvents> fd_;
  bool active_ = false;
};

/// The calling thread's lazily opened group (thread_local).
[[nodiscard]] CounterGroup& this_thread_group();

/// Named accumulation target for scoped samples: one per phase/span name,
/// accumulating deltas from any thread (relaxed atomics; totals are exact
/// at quiescent points, like every other statistic in the telemetry layer).
class PhaseAccum {
 public:
  explicit PhaseAccum(std::string name);

  [[nodiscard]] const std::string& name() const { return name_; }
  void add(const Delta& delta);
  /// Zeroes the accumulated totals (used by reset_phases()).
  void reset();
  [[nodiscard]] Delta total() const;
  [[nodiscard]] std::uint64_t samples() const {
    return samples_.load(std::memory_order_relaxed);
  }

 private:
  std::string name_;
  std::array<std::atomic<double>, kNumEvents> value_{};
  std::array<std::atomic<bool>, kNumEvents> valid_{};
  std::atomic<std::uint64_t> samples_{0};
};

/// The process-wide accumulator registry (stable references, like
/// MetricsRegistry). Creates the phase on first use.
[[nodiscard]] PhaseAccum& phase(const std::string& name);

/// Snapshot of every registered phase, in name order.
[[nodiscard]] std::vector<const PhaseAccum*> phases();

/// Drops all accumulated phase totals (references stay valid).
void reset_phases();

/// Publishes every phase with samples through the registry:
/// `sslic.perf.<phase>.<event>` counters plus derived gauges
/// `.ipc`, `.l1d_mpki`, `.llc_mpki`, `.branch_mpki`, `.stalled_frac`,
/// `.dram_bytes`, and a `.samples` counter. Degraded events are omitted
/// entirely rather than published as zero.
void export_phases(telemetry::MetricsRegistry& registry);

/// RAII scoped sampler. Construction snapshots the calling thread's group;
/// destruction accumulates the delta into a named phase (or writes it to an
/// out-param). Costs one relaxed load when disabled/degraded. Nesting is
/// well-defined: the outer delta contains the inner one, matching the
/// containment contract of trace spans.
class ScopedSample {
 public:
  /// Accumulates into `phase(name)` at scope exit.
  explicit ScopedSample(const char* name);
  /// Writes the delta to `*out` at scope exit (no registry involvement).
  explicit ScopedSample(Delta* out);
  ~ScopedSample();

  ScopedSample(const ScopedSample&) = delete;
  ScopedSample& operator=(const ScopedSample&) = delete;

 private:
  const char* name_ = nullptr;
  Delta* out_ = nullptr;
  bool armed_ = false;
  Sample begin_{};
};

/// Manual begin/complete sampling for back-to-back regions that straddle
/// block boundaries — the perf analogue of trace::Interval, placed next to
/// it so counters and spans stay in one taxonomy. complete(name)
/// accumulates the delta since construction (or the previous complete())
/// into `phase(name)` and re-arms for the next region.
class IntervalSample {
 public:
  IntervalSample();

  void complete(const char* name);

 private:
  bool armed_ = false;
  Sample begin_{};
};

}  // namespace sslic::perf

#define SSLIC_PERF_CONCAT2(a, b) a##b
#define SSLIC_PERF_CONCAT(a, b) SSLIC_PERF_CONCAT2(a, b)

/// Drops an RAII counter sample into the surrounding scope, accumulating
/// under `sslic.perf.<name>`. Place next to the matching SSLIC_TRACE_SCOPE
/// (or PhaseTimer region) so counters and spans share one taxonomy.
#define SSLIC_PERF_SCOPE(name)                                     \
  ::sslic::perf::ScopedSample SSLIC_PERF_CONCAT(sslic_perf_scope_, \
                                                __LINE__)(name)

#include "hw/gpu_reference.h"

namespace sslic::hw {

GpuReference tesla_k20() {
  GpuReference gpu;
  gpu.name = "Tesla K20";
  gpu.algorithm = "SLIC";
  gpu.technology_nm = 28;
  gpu.voltage_v = 0.81;
  gpu.onchip_memory_kb = 6320.0;
  gpu.core_count = 2496;
  gpu.average_power_w = 86.0;
  gpu.latency_ms = 22.3;
  return gpu;
}

GpuReference tegra_k1() {
  GpuReference gpu;
  gpu.name = "Tegra K1";
  gpu.algorithm = "SLIC";
  gpu.technology_nm = 28;
  gpu.voltage_v = 0.81;
  gpu.onchip_memory_kb = 368.0;
  gpu.core_count = 192;
  gpu.average_power_w = 0.332;
  gpu.latency_ms = 2713.0;
  return gpu;
}

double normalized_power_w(const GpuReference& gpu) {
  return gpu.average_power_w / kProcessNormalization;
}

double normalized_energy_per_frame_j(const GpuReference& gpu) {
  return normalized_power_w(gpu) * gpu.latency_ms * 1e-3;
}

}  // namespace sslic::hw

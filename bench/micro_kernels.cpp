// google-benchmark microbenchmarks of the hot kernels: color conversion
// (reference float and LUT integer), the 9-way distance + 9:1 minimum inner
// loop, the SIMD assignment row kernels per backend, full algorithm
// iterations, the quality metrics, and connectivity enforcement.
//
// After the google-benchmark pass, a custom main() runs one instrumented
// CPA and PPA frame with perf counters armed and prints a per-phase
// roofline summary: counter-measured cycles/IPC/DRAM bytes per phase next
// to the analytic Instrumentation op and byte counts. Degrades to the
// analytic-only view when the perf backend is unavailable.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <array>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "bench_common.h"
#include "color/color_convert.h"
#include "color/lut_color_unit.h"
#include "common/rng.h"
#include "common/simd.h"
#include "dataset/synthetic.h"
#include "metrics/segmentation_metrics.h"
#include "slic/assign_kernels.h"
#include "slic/connectivity.h"
#include "slic/hw_datapath.h"
#include "slic/slic_baseline.h"
#include "slic/subsampled.h"

namespace {

using namespace sslic;

const GroundTruthImage& test_image() {
  static const GroundTruthImage gt = [] {
    SyntheticParams p;  // BSDS-sized
    return generate_synthetic(p, 42);
  }();
  return gt;
}

void BM_ColorConvertReference(benchmark::State& state) {
  const RgbImage& img = test_image().image;
  for (auto _ : state) {
    LabImage lab = srgb_to_lab(img);
    benchmark::DoNotOptimize(lab.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(img.size()));
}
BENCHMARK(BM_ColorConvertReference);

void BM_ColorConvertLut(benchmark::State& state) {
  const RgbImage& img = test_image().image;
  const LutColorUnit unit;
  for (auto _ : state) {
    Planar8 planes = unit.convert(img);
    benchmark::DoNotOptimize(planes.ch1.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(img.size()));
}
BENCHMARK(BM_ColorConvertLut);

void BM_NineWayIntegerDistanceMin(benchmark::State& state) {
  // The cluster-update inner loop: 9 distances + 9:1 min per pixel.
  std::vector<HwCenter> centers(9);
  for (int i = 0; i < 9; ++i)
    centers[static_cast<std::size_t>(i)] = {i * 20, 128 - i, 128 + i, i * 10,
                                            i * 7};
  const Lab8 pixel{90, 130, 120};
  for (auto _ : state) {
    std::int32_t best = INT32_MAX;
    std::int32_t best_i = 0;
    for (std::int32_t i = 0; i < 9; ++i) {
      const std::int32_t d = HwSlic::integer_distance(
          pixel, 45, 33, centers[static_cast<std::size_t>(i)], 64);
      if (d < best) {
        best = d;
        best_i = i;
      }
    }
    benchmark::DoNotOptimize(best_i);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_NineWayIntegerDistanceMin);

/// Registers one Arg per ISA this binary + CPU can execute (scalar always);
/// the per-run label names the backend.
void SimdIsaArgs(benchmark::internal::Benchmark* b) {
  b->Arg(static_cast<int>(simd::Isa::kScalar));
  for (const simd::Isa isa : {simd::Isa::kSse2, simd::Isa::kAvx2,
                              simd::Isa::kAvx512, simd::Isa::kNeon}) {
    if (kernels::backend_compiled(isa) && simd::cpu_supports(isa))
      b->Arg(static_cast<int>(isa));
  }
}

/// Fixed row workload shared by the SIMD kernel benchmarks (one 481-px
/// BSDS-width row, 9 candidates).
struct KernelRow {
  static constexpr int kWidth = 481;
  std::vector<float> L, a, b;
  std::vector<std::uint8_t> L8, a8, b8;
  std::vector<double> min_dist;
  std::vector<std::int32_t> labels;
  kernels::CenterOperand center{50.0, 5.0, -3.0, 240.0, 160.0, 7};
  std::array<kernels::CenterOperand, 9> cands{};
  std::array<kernels::HwCenterOperand, 9> hw_cands{};

  KernelRow() {
    Rng rng(77);
    L.resize(kWidth);
    a.resize(kWidth);
    b.resize(kWidth);
    L8.resize(kWidth);
    a8.resize(kWidth);
    b8.resize(kWidth);
    min_dist.assign(kWidth, std::numeric_limits<double>::infinity());
    labels.assign(kWidth, 0);
    for (int i = 0; i < kWidth; ++i) {
      const auto idx = static_cast<std::size_t>(i);
      L[idx] = static_cast<float>(rng.next_double(0.0, 100.0));
      a[idx] = static_cast<float>(rng.next_double(-90.0, 90.0));
      b[idx] = static_cast<float>(rng.next_double(-90.0, 90.0));
      L8[idx] = static_cast<std::uint8_t>(rng.next_int(0, 255));
      a8[idx] = static_cast<std::uint8_t>(rng.next_int(0, 255));
      b8[idx] = static_cast<std::uint8_t>(rng.next_int(0, 255));
    }
    for (int k = 0; k < 9; ++k) {
      const auto idx = static_cast<std::size_t>(k);
      cands[idx] = {rng.next_double(0.0, 100.0), rng.next_double(-90.0, 90.0),
                    rng.next_double(-90.0, 90.0),
                    rng.next_double(0.0, kWidth),  rng.next_double(0.0, 321.0),
                    k};
      hw_cands[idx] = {rng.next_int(0, 255), rng.next_int(0, 255),
                       rng.next_int(0, 255), rng.next_int(0, kWidth - 1),
                       rng.next_int(0, 320), k};
    }
  }
};

const KernelRow& kernel_row() {
  static const KernelRow row;
  return row;
}

void BM_SimdAssignCenterRow(benchmark::State& state) {
  const auto isa = static_cast<simd::Isa>(state.range(0));
  const kernels::KernelTable& kt = kernels::table_for(isa);
  const KernelRow& row = kernel_row();
  std::vector<double> min_dist = row.min_dist;
  std::vector<std::int32_t> labels = row.labels;
  for (auto _ : state) {
    kt.assign_center_row(row.L.data(), row.a.data(), row.b.data(), 0,
                         KernelRow::kWidth, 160.0, row.center, 0.25,
                         min_dist.data(), labels.data());
    benchmark::DoNotOptimize(labels.data());
  }
  state.SetLabel(simd::isa_name(isa));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          KernelRow::kWidth);
}
BENCHMARK(BM_SimdAssignCenterRow)->Apply(SimdIsaArgs);

void BM_SimdAssignCandidatesRow(benchmark::State& state) {
  const auto isa = static_cast<simd::Isa>(state.range(0));
  const kernels::KernelTable& kt = kernels::table_for(isa);
  const KernelRow& row = kernel_row();
  std::vector<double> min_dist = row.min_dist;
  std::vector<std::int32_t> labels = row.labels;
  for (auto _ : state) {
    kt.assign_candidates_row(row.L.data(), row.a.data(), row.b.data(), 0,
                             KernelRow::kWidth, 160.0, row.cands.data(), 9,
                             0.25, nullptr, min_dist.data(), labels.data());
    benchmark::DoNotOptimize(labels.data());
  }
  state.SetLabel(simd::isa_name(isa));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          KernelRow::kWidth);
}
BENCHMARK(BM_SimdAssignCandidatesRow)->Apply(SimdIsaArgs);

void BM_SimdAssignCandidatesRowSeeded(benchmark::State& state) {
  // The cluster-centric CPA span kernel (DESIGN.md §4g): running minimum
  // seeded from the persistent plane, held in registers across the
  // candidate list, stored back once. Cluster-mode spans are shorter than
  // a full row, but the per-pixel work is identical.
  const auto isa = static_cast<simd::Isa>(state.range(0));
  const kernels::KernelTable& kt = kernels::table_for(isa);
  const KernelRow& row = kernel_row();
  std::vector<double> min_dist = row.min_dist;
  std::vector<std::int32_t> labels = row.labels;
  for (auto _ : state) {
    kt.assign_candidates_row_seeded(row.L.data(), row.a.data(), row.b.data(),
                                    0, KernelRow::kWidth, 160.0,
                                    row.cands.data(), 9, 0.25, min_dist.data(),
                                    labels.data());
    benchmark::DoNotOptimize(labels.data());
  }
  state.SetLabel(simd::isa_name(isa));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          KernelRow::kWidth);
}
BENCHMARK(BM_SimdAssignCandidatesRowSeeded)->Apply(SimdIsaArgs);

void BM_SimdAssignCandidatesRowU8(benchmark::State& state) {
  const auto isa = static_cast<simd::Isa>(state.range(0));
  const kernels::KernelTable& kt = kernels::table_for(isa);
  const KernelRow& row = kernel_row();
  std::vector<std::int32_t> labels = row.labels;
  for (auto _ : state) {
    kt.assign_candidates_row_u8(row.L8.data(), row.a8.data(), row.b8.data(),
                                0, KernelRow::kWidth, 160, row.hw_cands.data(),
                                9, 64, 8, 6, nullptr, labels.data());
    benchmark::DoNotOptimize(labels.data());
  }
  state.SetLabel(simd::isa_name(isa));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          KernelRow::kWidth);
}
BENCHMARK(BM_SimdAssignCandidatesRowU8)->Apply(SimdIsaArgs);

void BM_PpaIteration(benchmark::State& state) {
  const GroundTruthImage& gt = test_image();
  const LabImage lab = srgb_to_lab(gt.image);
  SlicParams params;
  params.num_superpixels = 900;
  params.max_iterations = static_cast<int>(state.range(0));
  params.subsample_ratio = 0.5;
  params.enforce_connectivity = false;
  const PpaSlic slic(params);
  for (auto _ : state) {
    Segmentation seg = slic.segment_lab(lab);
    benchmark::DoNotOptimize(seg.labels.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(lab.size()) *
                          state.range(0) / 2);
}
BENCHMARK(BM_PpaIteration)->Arg(1)->Arg(4);

void BM_CpaIteration(benchmark::State& state) {
  const GroundTruthImage& gt = test_image();
  const LabImage lab = srgb_to_lab(gt.image);
  SlicParams params;
  params.num_superpixels = 900;
  params.max_iterations = 1;
  params.enforce_connectivity = false;
  const CpaSlic slic(params);
  for (auto _ : state) {
    Segmentation seg = slic.segment_lab(lab);
    benchmark::DoNotOptimize(seg.labels.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(lab.size()));
}
BENCHMARK(BM_CpaIteration);

void BM_HwGoldenModelFrame(benchmark::State& state) {
  const GroundTruthImage& gt = test_image();
  HwConfig config;
  config.num_superpixels = 900;
  config.iterations = 4;
  for (auto _ : state) {
    Segmentation seg = HwSlic(config).segment(gt.image);
    benchmark::DoNotOptimize(seg.labels.data());
  }
}
BENCHMARK(BM_HwGoldenModelFrame);

void BM_UndersegmentationError(benchmark::State& state) {
  const GroundTruthImage& gt = test_image();
  SlicParams params;
  params.num_superpixels = 900;
  params.max_iterations = 2;
  const Segmentation seg = PpaSlic(params).segment(gt.image);
  for (auto _ : state) {
    const double use = undersegmentation_error(seg.labels, gt.truth);
    benchmark::DoNotOptimize(use);
  }
}
BENCHMARK(BM_UndersegmentationError);

void BM_BoundaryRecall(benchmark::State& state) {
  const GroundTruthImage& gt = test_image();
  SlicParams params;
  params.num_superpixels = 900;
  params.max_iterations = 2;
  const Segmentation seg = PpaSlic(params).segment(gt.image);
  for (auto _ : state) {
    const double recall = boundary_recall(seg.labels, gt.truth, 2);
    benchmark::DoNotOptimize(recall);
  }
}
BENCHMARK(BM_BoundaryRecall);

void BM_ConnectivityEnforcement(benchmark::State& state) {
  const GroundTruthImage& gt = test_image();
  SlicParams params;
  params.num_superpixels = 900;
  params.max_iterations = 2;
  params.enforce_connectivity = false;
  const Segmentation seg = PpaSlic(params).segment(gt.image);
  for (auto _ : state) {
    LabelImage labels = seg.labels;
    enforce_connectivity(labels, 900);
    benchmark::DoNotOptimize(labels.data());
  }
}
BENCHMARK(BM_ConnectivityEnforcement);

// Runs one instrumented CPA frame and one PPA frame with perf counters
// armed, then prints every recorded perf phase (cycles, IPC, cache misses,
// measured DRAM bytes) next to the analytic per-frame op/byte totals.
void roofline_summary() {
  std::cout << "\n==================================================================\n"
            << "per-phase roofline summary (BSDS frame, K=900, 4 iterations)\n"
            << "perf: " << perf::status() << '\n'
            << "==================================================================\n";
  perf::reset_phases();

  const GroundTruthImage& gt = test_image();
  SlicParams params;
  params.num_superpixels = 900;
  params.max_iterations = 4;

  Instrumentation cpa_instr;
  Stopwatch cpa_watch;
  (void)CpaSlic(params).segment(gt.image, {}, &cpa_instr);
  const double cpa_ms = cpa_watch.elapsed_ms();

  params.subsample_ratio = 0.5;
  Instrumentation ppa_instr;
  Stopwatch ppa_watch;
  (void)PpaSlic(params).segment(gt.image, {}, &ppa_instr);
  const double ppa_ms = ppa_watch.elapsed_ms();

  const bool counters = perf::available();
  Table table("counter-measured phases (calling thread)");
  table.set_header({"phase", "samples", "cycles", "IPC", "LLC mpki",
                    "DRAM bytes"});
  for (const perf::PhaseAccum* accum : perf::phases()) {
    if (accum->samples() == 0) continue;
    const perf::Delta d = accum->total();
    const auto cell = [](double v, int digits) {
      return v != v ? std::string("-") : Table::num(v, digits);
    };
    table.add_row({accum->name(), std::to_string(accum->samples()),
                   d.has(perf::Event::kCycles)
                       ? Table::si(d[perf::Event::kCycles], 1)
                       : "-",
                   cell(d.ipc(), 2), cell(d.mpki(perf::Event::kLlcMisses), 2),
                   d.has(perf::Event::kLlcMisses)
                       ? Table::si(d.dram_bytes(), 1) + "B"
                       : "-"});
  }
  if (counters)
    std::cout << table;
  else
    std::cout << "(counter table skipped — analytic roofline only)\n";

  Table analytic("analytic roofline per frame (Instrumentation convention)");
  analytic.set_header(
      {"impl", "ms", "ops", "bytes", "ops/B", "GOP/s", "GB/s"});
  const auto add = [&](const char* name, const Instrumentation& instr,
                       double ms) {
    const auto ops = static_cast<double>(instr.ops.total_ops());
    const auto bytes = static_cast<double>(instr.traffic.total());
    analytic.add_row({name, Table::num(ms, 1), Table::si(ops, 1),
                      Table::si(bytes, 1) + "B",
                      Table::num(ops / std::max(1.0, bytes), 2),
                      Table::num(ops / (ms / 1e3) / 1e9, 2),
                      Table::num(bytes / (ms / 1e3) / 1e9, 2)});
  };
  add("CPA", cpa_instr, cpa_ms);
  add("PPA(0.5)", ppa_instr, ppa_ms);
  std::cout << analytic;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  roofline_summary();
  return 0;
}

// Reproduces paper Table 3: Cluster Update Unit configurations.
//
// For each d-m-a parallelism configuration, reports area, power, latency,
// throughput, and the time/energy to process one iteration of a 1920x1080
// image at 1.6 GHz, next to the paper's published cells.
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "hw/cluster_unit.h"
#include "slic/grid.h"

namespace {

struct PaperRow {
  sslic::hw::ClusterUnitConfig config;
  double area;
  double power;
  int latency;
  const char* throughput;
  double time_ms;
  double energy_uj;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace sslic;
  using namespace sslic::hw;
  bench::BenchConfig config = bench::BenchConfig::parse(argc, argv);
  config.width = 1920;
  config.height = 1080;
  config.superpixels = 5000;
  bench::banner("Table 3 — Cluster Update Unit configurations (model)", config);

  const PaperRow rows[] = {
      {ClusterUnitConfig::way_111(), 0.0020, 3.3, 27, "1/9", 11.8, 38.9},
      {ClusterUnitConfig::way_911(), 0.0149, 3.6, 19, "1/9", 11.8, 42.5},
      {ClusterUnitConfig::way_191(), 0.0023, 3.2, 20, "1/9", 11.8, 37.5},
      {ClusterUnitConfig::way_116(), 0.0025, 3.25, 22, "1/9", 11.8, 38.3},
      {ClusterUnitConfig::way_996(), 0.0156, 30.9, 7, "1", 1.3, 40.6},
  };

  const auto pixels = static_cast<std::uint64_t>(config.width) *
                      static_cast<std::uint64_t>(config.height);
  const CenterGrid grid(config.width, config.height, config.superpixels);
  const auto tiles = static_cast<std::uint64_t>(grid.num_centers());
  constexpr double kClock = 1.6e9;

  Table table("Cluster Update Unit design points (measured model vs paper)");
  table.set_header({"config", "area mm2", "(paper)", "power mW", "(paper)",
                    "latency cyc", "(paper)", "px/cycle", "time ms", "(paper)",
                    "energy uJ", "(paper)"});
  for (const auto& row : rows) {
    const ClusterUnit unit(row.config);
    const double time_s = unit.iteration_compute_seconds(pixels, tiles, kClock);
    const double energy_j = unit.iteration_energy_j(pixels);
    table.add_row({row.config.name(), Table::num(unit.area_mm2(), 4),
                   Table::num(row.area, 4),
                   Table::num(unit.active_power_w(kClock) * 1e3, 2),
                   Table::num(row.power, 2),
                   std::to_string(unit.latency_cycles()),
                   std::to_string(row.latency),
                   Table::num(unit.throughput_pixels_per_cycle(), 3),
                   Table::num(time_s * 1e3, 1), Table::num(row.time_ms, 1),
                   Table::num(energy_j * 1e6, 1), Table::num(row.energy_uj, 1)});
  }
  table.add_note("1 iteration of a 1920x1080 frame at 1.6 GHz, " +
                 std::to_string(tiles) + " tiles.");
  table.add_note("paper throughput: 1/9 px/cycle for all but 9-9-6 (1 px/cycle).");
  table.add_note("chosen configuration: 9-9-6 (9x throughput for 7.8x area, "
                 "marginal energy increase) — Section 6.2.");
  std::cout << table;

  // Extension: intermediate design points the paper did not publish.
  Table extra("Extension: intermediate parallelism points (model only)");
  extra.set_header({"config", "area mm2", "power mW", "II cyc/px", "time ms",
                    "energy uJ"});
  for (const auto& cfg :
       {ClusterUnitConfig{3, 3, 2}, ClusterUnitConfig{3, 9, 6},
        ClusterUnitConfig{9, 9, 1}, ClusterUnitConfig{9, 3, 3}}) {
    const ClusterUnit unit(cfg);
    extra.add_row({cfg.name(), Table::num(unit.area_mm2(), 4),
                   Table::num(unit.active_power_w(kClock) * 1e3, 2),
                   std::to_string(unit.initiation_interval()),
                   Table::num(unit.iteration_compute_seconds(pixels, tiles,
                                                             kClock) * 1e3, 1),
                   Table::num(unit.iteration_energy_j(pixels) * 1e6, 1)});
  }
  std::cout << '\n' << extra;
  return 0;
}
